// Regenerates the Section 3 validation result (Figure 5 setup): up to
// 10,000 echo frames through the switch, every reply cross-checked against
// host-side recomputation — plus packet-processing micro-benchmarks of the
// echo pipeline.
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "baseline/exact_stats.hpp"
#include "netsim/rng.hpp"
#include "p4sim/craft.hpp"
#include "stat4/approx_math.hpp"
#include "stat4p4/stat4p4.hpp"

namespace {

void print_validation() {
  std::puts("=== Section 3 validation (Figure 5): switch vs host, 10,000 "
            "frames ===\n");
  stat4p4::EchoApp app;
  netsim::Rng rng(0xF16E5);
  std::vector<std::uint64_t> freqs(511, 0);

  long mismatches = 0;
  const int kPackets = 10000;
  for (int i = 0; i < kPackets; ++i) {
    const std::int64_t value = static_cast<std::int64_t>(rng.below(511)) - 255;
    auto out = app.sw().process(p4sim::make_echo_packet(value));
    ++freqs[static_cast<std::size_t>(value + 255)];

    const auto reply = p4sim::parse(out.packets.at(0).second);
    std::vector<std::uint64_t> nonzero;
    for (const auto f : freqs) {
      if (f > 0) nonzero.push_back(f);
    }
    const auto truth = baseline::compute_nx_stats(nonzero);
    if (reply.echo->n != truth.n ||
        reply.echo->xsum != static_cast<std::uint64_t>(truth.xsum) ||
        reply.echo->xsumsq != static_cast<std::uint64_t>(truth.xsumsq) ||
        reply.echo->var_nx != static_cast<std::uint64_t>(truth.variance_nx) ||
        reply.echo->sd_nx !=
            stat4::approx_sqrt(
                static_cast<std::uint64_t>(truth.variance_nx))) {
      ++mismatches;
    }
  }
  std::printf("frames checked      : %d\n", kPackets);
  std::printf("N/Xsum/Xsumsq/var/sd mismatches : %ld\n", mismatches);
  std::printf("result              : %s\n\n",
              mismatches == 0
                  ? "switch state == host state on every packet (matches "
                    "the paper)"
                  : "MISMATCH — regression!");
}

void BM_EchoPipelinePerPacket(benchmark::State& state) {
  stat4p4::EchoApp app;
  netsim::Rng rng(9);
  for (auto _ : state) {
    const std::int64_t v = static_cast<std::int64_t>(rng.below(511)) - 255;
    benchmark::DoNotOptimize(app.sw().process(p4sim::make_echo_packet(v)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EchoPipelinePerPacket);

void BM_EchoPipelineNoAlloc(benchmark::State& state) {
  // Packet construction excluded: process the same frame repeatedly.
  stat4p4::EchoApp app;
  const p4sim::Packet pkt = p4sim::make_echo_packet(42);
  for (auto _ : state) {
    p4sim::Packet copy = pkt;
    benchmark::DoNotOptimize(app.sw().process(std::move(copy)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EchoPipelineNoAlloc);

}  // namespace

int main(int argc, char** argv) {
  print_validation();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Regenerates Table 2: percentage error of the approximate square root
// (Figure 2 algorithm) with respect to the fractional square root, per
// input range — plus the Figure 2 worked example and micro-benchmarks of
// approx_sqrt vs exact integer sqrt vs std::sqrt.
//
// The paper's printed numbers are reproduced alongside the measured ones;
// EXPERIMENTS.md discusses where and why they differ (the algorithm as
// specified has a 6.07% worst case at odd powers of two, which the paper's
// table understates — its own footnote, sqrt(3)->1 = 42%, already exceeds
// the printed 20% max for the 1-10 row).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/exact_stats.hpp"
#include "stat4/approx_math.hpp"

namespace {

struct Row {
  std::uint64_t lo;
  std::uint64_t hi;
  const char* paper_p50;
  const char* paper_p90;
  const char* paper_max;
};

void print_table2() {
  std::puts("=== Table 2: % error in square root estimation vs fractional "
            "sqrt ===");
  std::puts("(measured = exhaustive sweep of every integer in the range)\n");
  std::printf("%-14s | %-26s | %-26s\n", "", "measured", "paper");
  std::printf("%-14s | %7s %7s %8s | %7s %7s %8s\n", "input y", "50th",
              "90th", "max", "50th", "90th", "max");
  std::puts("---------------+----------------------------+-----------------"
            "-----------");

  const Row rows[] = {
      {1, 10, "3%", "10%", "20%"},
      {10, 100, "0.4%", "1.4%", "3.8%"},
      {100, 1000, "<0.05%", "0.14%", "0.44%"},
      {1000, 10000, "<0.01%", "<0.01%", "0.05%"},
  };
  for (const auto& row : rows) {
    std::vector<double> errs;
    errs.reserve(static_cast<std::size_t>(row.hi - row.lo + 1));
    for (std::uint64_t y = row.lo; y <= row.hi; ++y) {
      const double truth = std::sqrt(static_cast<double>(y));
      const double est = static_cast<double>(stat4::approx_sqrt(y));
      errs.push_back(100.0 * std::abs(est - truth) / truth);
    }
    const double p50 = baseline::sample_percentile(errs, 50.0);
    const double p90 = baseline::sample_percentile(errs, 90.0);
    const double mx = *std::max_element(errs.begin(), errs.end());
    std::printf("%6llu-%-7llu | %6.2f%% %6.2f%% %7.2f%% | %7s %7s %8s\n",
                static_cast<unsigned long long>(row.lo),
                static_cast<unsigned long long>(row.hi), p50, p90, mx,
                row.paper_p50, row.paper_p90, row.paper_max);
  }

  std::puts("\nFigure 2 worked example:");
  std::printf("  approx_sqrt(106) = %llu   (paper: 10; true sqrt = %.3f)\n",
              static_cast<unsigned long long>(stat4::approx_sqrt(106)),
              std::sqrt(106.0));
  std::printf("  approx_sqrt(3)   = %llu   (paper footnote: sqrt(3) "
              "approximated to 1)\n\n",
              static_cast<unsigned long long>(stat4::approx_sqrt(3)));
}

void BM_ApproxSqrt(benchmark::State& state) {
  std::uint64_t y = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stat4::approx_sqrt(y));
    y = y * 2862933555777941757ull + 3037000493ull;  // cheap LCG walk
  }
}
BENCHMARK(BM_ApproxSqrt);

void BM_ExactIsqrt(benchmark::State& state) {
  std::uint64_t y = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stat4::exact_isqrt(y));
    y = y * 2862933555777941757ull + 3037000493ull;
  }
}
BENCHMARK(BM_ExactIsqrt);

void BM_StdSqrtDouble(benchmark::State& state) {
  std::uint64_t y = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(std::sqrt(static_cast<double>(y)));
    y = y * 2862933555777941757ull + 3037000493ull;
  }
}
BENCHMARK(BM_StdSqrtDouble);

void BM_MsbIfLadder(benchmark::State& state) {
  // The per-check cost the lazy evaluation amortizes (Section 3).
  std::uint64_t y = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(stat4::msb_index_if_ladder(y | 1));
    y = y * 2862933555777941757ull + 3037000493ull;
  }
}
BENCHMARK(BM_MsbIfLadder);

}  // namespace

int main(int argc, char** argv) {
  print_table2();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Ablations of the design choices DESIGN.md calls out:
//
//  1. Multiplication strategy on no-mul hardware: native kMul vs exact
//     shift-add ladder vs the paper's single-MSB shift approximation.
//     Measures variance accuracy (the identity N*Xsumsq - Xsum^2 cancels
//     two large terms, so approximate products destroy it), false alerts
//     on balanced traffic, and program size / dependency-chain cost.
//
//  2. Integer-quantization slack (+N) in the frequency outlier check:
//     false-positive rate on perfectly balanced round-robin traffic with
//     and without the slack.
//
//  3. Approximate vs exact square root inside the outlier threshold:
//     how much the sd approximation moves the alert threshold.
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cmath>
#include <cstdio>
#include <vector>

#include "p4sim/p4sim.hpp"
#include "stat4/stat4.hpp"
#include "stat4p4/stat4p4.hpp"

namespace {

using p4sim::ipv4;
using stat4p4::MulStrategy;

/// Minimal one-table switch running track_freq with a chosen mul strategy.
struct MiniFreqSwitch {
  explicit MiniFreqSwitch(MulStrategy strategy, bool check_enabled) {
    cfg.counter_num = 1;
    cfg.counter_size = 64;
    regs = stat4p4::declare_registers(sw, cfg);
    stat4p4::BuildOptions opt;
    opt.mul = strategy;
    const auto track = sw.add_action(stat4p4::build_track_freq(
        regs, cfg, p4sim::FieldRef::kIpv4Dst, opt));
    table = sw.add_table("bind", {p4sim::KeySpec{p4sim::FieldRef::kIpv4Dst,
                                                 p4sim::MatchKind::kLpm}});
    p4sim::TableEntry e;
    p4sim::KeyMatch km;
    km.prefix_len = 0;  // wildcard
    e.key = {km};
    e.action = track;
    e.action_data.assign(stat4p4::kAdWordCount, 0);
    e.action_data[stat4p4::kAdMask] = 0x3F;  // last 6 bits of dst
    e.action_data[stat4p4::kAdCheck] = check_enabled ? 1 : 0;
    e.action_data[stat4p4::kAdMinTotal] = 64;
    sw.table(table).insert(e);
    sw.add_table_stage(table);
  }

  std::uint64_t process(std::uint32_t dst, stat4::TimeNs ts) {
    p4sim::Packet pkt = p4sim::make_udp_packet(1, dst, 2, 3);
    pkt.ingress_ts = ts;
    const auto out = sw.process(std::move(pkt));
    if (!out.digests.empty()) {
      // Re-arm immediately so every spurious trip is counted, not just the
      // first (the latch would otherwise cap the count at one).
      sw.registers().write(regs.alerted, 0, 0);
    }
    return out.digests.size();
  }

  stat4p4::Stat4Config cfg;
  p4sim::P4Switch sw{"mini"};
  stat4p4::Stat4Registers regs;
  p4sim::TableId table = 0;
};

const char* strategy_name(MulStrategy s) {
  switch (s) {
    case MulStrategy::kNative: return "native mul";
    case MulStrategy::kShiftAddExact: return "shift-add exact";
    case MulStrategy::kApproxMsb: return "approx MSB (paper [7])";
  }
  return "?";
}

void ablation_mul_strategy() {
  std::puts("--- ablation 1: product strategy for the variance identity ---");
  std::puts("(phase A: 9600 round-robin packets over 48 values; phase B: one"
            " value goes hot)");
  std::printf("%-24s | %9s %9s | %11s %11s | %12s %10s\n", "strategy",
              "instrs", "chain", "var err avg", "var err max", "false alerts",
              "hot found");
  std::puts("-------------------------+---------------------+--------------"
            "-----------+------------------------");

  for (const MulStrategy strategy :
       {MulStrategy::kNative, MulStrategy::kShiftAddExact,
        MulStrategy::kApproxMsb}) {
    MiniFreqSwitch mini(strategy, /*check_enabled=*/true);

    // Reference: the exact C++ library fed the same stream.
    stat4::FreqDist lib(64);

    // Phase A: perfectly balanced round-robin over 48 values — with the
    // quantization slack a correct variance yields ZERO false alerts.
    double err_sum = 0;
    double err_max = 0;
    std::uint64_t samples = 0;
    std::uint64_t false_alerts = 0;
    int t = 0;
    for (int i = 0; i < 9600; ++i, ++t) {
      const auto v = static_cast<std::uint32_t>(i % 48);
      false_alerts += mini.process(v, t);
      lib.observe(v);
      const auto var_sw = mini.sw.registers().read(mini.regs.var, 0);
      const auto var_exact =
          static_cast<std::uint64_t>(lib.stats().variance_nx());
      if (var_exact > 100) {
        const double rel =
            std::abs(static_cast<double>(var_sw) -
                     static_cast<double>(var_exact)) /
            static_cast<double>(var_exact);
        err_sum += rel;
        err_max = std::max(err_max, rel);
        ++samples;
      }
    }

    // Phase B: one value goes hot; a correct detector fires quickly.
    long detect_after = -1;
    for (int i = 0; i < 4000; ++i, ++t) {
      if (mini.process(7, t) > 0 && detect_after < 0) detect_after = i + 1;
    }

    const auto analysis = p4sim::analyze_program(mini.sw.action(0));
    char detect_buf[32];
    if (detect_after < 0) {
      std::snprintf(detect_buf, sizeof detect_buf, "MISSED");
    } else {
      std::snprintf(detect_buf, sizeof detect_buf, "%ld pkts", detect_after);
    }
    std::printf("%-24s | %9zu %9zu | %10.2f%% %10.2f%% | %12" PRIu64
                " %10s\n",
                strategy_name(strategy), analysis.instructions,
                analysis.longest_chain,
                samples ? 100.0 * err_sum / static_cast<double>(samples) : 0,
                100.0 * err_max, false_alerts, detect_buf);
  }
  std::puts("\nfinding: the paper's cheap MSB-shift approximation ([7]) is "
            "fine for sd itself\nbut unusable inside the variance identity "
            "N*Xsumsq - Xsum^2: the two large\nterms no longer cancel, so "
            "the stored variance is off by orders of magnitude\n(here "
            "overestimated -> detection delayed 39 packets vs 2; "
            "underestimates cause\nfalse alerts instead).  The exact "
            "shift-add ladder restores bit-exact variance\nat ~4x the "
            "instructions and ~2x the dependency-chain depth.\n");
}

void ablation_quantization_slack() {
  std::puts("--- ablation 2: +N integer-quantization slack in the outlier "
            "check ---");
  // Round-robin across 8 values: counters leapfrog by one; the just-bumped
  // counter always leads.  Without slack, mean + 2 sd is crossed on nearly
  // every packet once sd ~ 1.
  stat4::FreqDist dist(8);
  std::uint64_t with_slack = 0;
  std::uint64_t without_slack = 0;
  for (int i = 0; i < 8000; ++i) {
    const auto v = static_cast<stat4::Value>(i % 8);
    dist.observe(v);
    if (i < 64) continue;  // warmup
    // With slack: the shipped check.
    if (dist.frequency_outlier(v).is_outlier) ++with_slack;
    // Without slack: the raw mean + 2 sd comparison.
    if (dist.stats().upper_outlier(dist.frequency(v)).is_outlier) {
      ++without_slack;
    }
  }
  std::printf("  false positives on 8000 round-robin packets: with +N slack "
              "= %" PRIu64 ", without = %" PRIu64 "\n\n",
              with_slack, without_slack);
}

void ablation_sqrt_choice() {
  std::puts("--- ablation 3: approximate vs exact sqrt in the alert "
            "threshold ---");
  stat4::RunningStats s;
  std::uint64_t lcg = 99;
  for (int i = 0; i < 200; ++i) {
    lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
    s.add(900 + (lcg >> 33) % 200);
  }
  const auto sd_approx = s.stddev_nx();
  const auto sd_exact = s.stddev_nx_exact();
  const auto thr_approx = s.xsum() + 2 * static_cast<stat4::Accum>(sd_approx);
  const auto thr_exact = s.xsum() + 2 * static_cast<stat4::Accum>(sd_exact);
  std::printf("  sd(NX): approx=%" PRIu64 " exact=%" PRIu64
              " (%.2f%% apart)\n",
              sd_approx, sd_exact,
              100.0 *
                  std::abs(static_cast<double>(sd_approx) -
                           static_cast<double>(sd_exact)) /
                  static_cast<double>(sd_exact));
  std::printf("  threshold Xsum+2sd: approx=%" PRId64 " exact=%" PRId64
              " -> threshold shift %.3f%%\n\n",
              thr_approx, thr_exact,
              100.0 *
                  std::abs(static_cast<double>(thr_approx) -
                           static_cast<double>(thr_exact)) /
                  static_cast<double>(thr_exact));
}

void BM_TrackFreqNative(benchmark::State& state) {
  MiniFreqSwitch mini(MulStrategy::kNative, true);
  std::uint64_t i = 0;
  for (auto _ : state) {
    mini.process(static_cast<std::uint32_t>(i % 48), static_cast<long>(i));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackFreqNative);

void BM_TrackFreqShiftAdd(benchmark::State& state) {
  MiniFreqSwitch mini(MulStrategy::kShiftAddExact, true);
  std::uint64_t i = 0;
  for (auto _ : state) {
    mini.process(static_cast<std::uint32_t>(i % 48), static_cast<long>(i));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackFreqShiftAdd);

void BM_TrackFreqApproxMsb(benchmark::State& state) {
  MiniFreqSwitch mini(MulStrategy::kApproxMsb, true);
  std::uint64_t i = 0;
  for (auto _ : state) {
    mini.process(static_cast<std::uint32_t>(i % 48), static_cast<long>(i));
    ++i;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TrackFreqApproxMsb);

}  // namespace

int main(int argc, char** argv) {
  std::puts("=== Design-choice ablations ===\n");
  ablation_mul_strategy();
  ablation_quantization_slack();
  ablation_sqrt_choice();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

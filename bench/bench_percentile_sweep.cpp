// Extension figure: percentile-tracker error across the whole percentile
// range and across distribution shapes.
//
// Table 3 evaluates the median on uniform streams; this harness sweeps
// P in {5..99} over uniform, Zipf-like (the Section 5 remark that traffic
// per prefix may be zipfian) and bimodal streams, reporting the tracked
// position vs the exact percentile after 50k observations.  The takeaway
// mirrors the paper's: dense regions track tightly; the sparse tail of a
// skewed distribution is where the one-step-per-packet movement pays its
// price.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>
#include <vector>

#include "baseline/exact_stats.hpp"
#include "netsim/rng.hpp"
#include "stat4/freq_dist.hpp"

namespace {

constexpr std::size_t kDomain = 256;
constexpr int kObservations = 50000;

/// Draws one value in [0, kDomain) for each shape.
std::uint64_t draw(netsim::Rng& rng, int shape) {
  switch (shape) {
    case 0:  // uniform
      return rng.below(kDomain);
    case 1: {  // zipf-ish: value ~ rank with p(r) ~ 1/r
      const double u = rng.uniform01();
      const auto v = static_cast<std::uint64_t>(
          std::pow(static_cast<double>(kDomain), u)) - 1;
      return v < kDomain ? v : kDomain - 1;
    }
    default: {  // bimodal: two tight modes at 40 and 200
      const auto base = rng.below(2) == 0 ? 40u : 200u;
      return base + rng.below(9);
    }
  }
}

void print_sweep() {
  std::puts("=== Extension: percentile-tracker error across P and shapes ===");
  std::puts("(error = |tracked - exact| in domain slots of 256; 'early' = "
            "after 1k\n observations, 'conv' = after 50k — Table 3's "
            "before/after split, swept)\n");
  std::printf("%6s | %s\n", "",
              "uniform          zipf             bimodal");
  std::printf("%6s | %7s %6s  %7s %6s  %7s %6s\n", "P", "early", "conv",
              "early", "conv", "early", "conv");
  std::puts("-------+---------------------------------------------------");

  for (const unsigned p : {5u, 10u, 25u, 50u, 75u, 90u, 95u, 99u}) {
    std::printf("%5u%% |", p);
    for (int shape = 0; shape < 3; ++shape) {
      stat4::FreqDist dist(kDomain);
      const auto ti = dist.attach_percentile(stat4::Percentile{p});
      netsim::Rng rng(p * 17 + static_cast<unsigned>(shape));
      auto error_now = [&]() {
        const auto exact = baseline::exact_percentile(dist.frequencies(), p);
        const auto tracked = dist.percentile(ti).position();
        return tracked > exact ? tracked - exact : exact - tracked;
      };
      std::uint64_t early = 0;
      for (int i = 0; i < kObservations; ++i) {
        dist.observe(draw(rng, shape));
        if (i == 999) early = error_now();
      }
      std::printf(" %7llu %6llu ", static_cast<unsigned long long>(early),
                  static_cast<unsigned long long>(error_now()));
    }
    std::puts("");
  }
  std::puts("\nreading: after convergence the tracker is exact for every P "
            "and shape; the\nearly phase shows the one-step-per-packet "
            "catch-up cost, largest for tail\npercentiles of skewed "
            "distributions (the Section 2 sparse-distribution caveat).\n");
}

void BM_PercentileSweepObserve(benchmark::State& state) {
  stat4::FreqDist dist(kDomain);
  dist.attach_percentile(stat4::Percentile{50});
  dist.attach_percentile(stat4::Percentile{90});
  dist.attach_percentile(stat4::Percentile{99});
  netsim::Rng rng(1);
  for (auto _ : state) {
    dist.observe(rng.below(kDomain));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_PercentileSweepObserve);

}  // namespace

int main(int argc, char** argv) {
  print_sweep();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

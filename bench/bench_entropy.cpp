// Extension: online entropy estimation accuracy and detection latency
// (the Ding et al. [7] direction; see EXPERIMENTS.md).
//
// Two tables:
//  1. accuracy of the fixed-point shift-based entropy estimate vs exact
//     Shannon entropy across distribution shapes;
//  2. packets-to-detection when a uniform aggregate collapses onto one
//     value, as a function of the threshold theta.
#include <benchmark/benchmark.h>

#include <cmath>
#include <cstdio>

#include "netsim/rng.hpp"
#include "stat4/approx_math.hpp"
#include "stat4/entropy.hpp"

namespace {

double exact_entropy(const stat4::EntropyEstimator& e) {
  const double total = static_cast<double>(e.total());
  if (total == 0) return 0.0;
  double h = 0.0;
  for (stat4::Value v = 0; v < e.domain_size(); ++v) {
    const auto f = e.frequency(v);
    if (f == 0) continue;
    const double p = static_cast<double>(f) / total;
    h -= p * std::log2(p);
  }
  return h;
}

void print_accuracy() {
  std::puts("=== Entropy estimate vs exact Shannon entropy (64-value "
            "domain, 50k obs) ===\n");
  std::printf("%-22s | %9s %9s %9s\n", "distribution", "exact", "online",
              "error");
  std::puts("-----------------------+------------------------------");

  struct Shape {
    const char* name;
    int kind;
  };
  const Shape shapes[] = {{"uniform", 0},
                          {"80/20 skew", 1},
                          {"two modes", 2},
                          {"point mass", 3}};
  for (const auto& shape : shapes) {
    stat4::EntropyEstimator e(64);
    netsim::Rng rng(99);
    for (int i = 0; i < 50000; ++i) {
      stat4::Value v = 0;
      switch (shape.kind) {
        case 0: v = rng.below(64); break;
        case 1: v = rng.below(10) < 8 ? rng.below(4) : rng.below(64); break;
        case 2: v = (rng.below(2) ? 10 : 50) + rng.below(4); break;
        default: v = 7; break;
      }
      e.observe(v);
    }
    const double exact = exact_entropy(e);
    const double online = e.entropy_bits();
    std::printf("%-22s | %8.3f  %8.3f  %8.3f bits\n", shape.name, exact,
                online, std::abs(exact - online));
  }
  std::puts("");
}

void print_detection_latency() {
  std::puts("=== Packets to detect an entropy collapse, by threshold ===");
  std::puts("(baseline: uniform over 64 values, H ~ 6 bits; attack: all "
            "packets to one value)\n");
  std::printf("%8s | %s\n", "theta", "packets of attack traffic until "
                                     "entropy_below(theta) fires");
  std::puts("---------+------------------------------------------------");
  for (const double theta : {4.0, 3.0, 2.0, 1.0}) {
    stat4::EntropyEstimator e(64);
    netsim::Rng rng(7);
    for (int i = 0; i < 6400; ++i) e.observe(rng.below(64));
    const auto theta_fp = static_cast<std::uint64_t>(
        theta * (1u << stat4::kLog2FracBits));
    long packets = -1;
    for (long i = 1; i <= 3'000'000; ++i) {
      e.observe(9);
      if (e.entropy_below(theta_fp)) {
        packets = i;
        break;
      }
    }
    if (packets < 0) {
      std::printf("%6.1f b | not reached\n", theta);
    } else {
      std::printf("%6.1f b | %ld  (%.1fx the baseline volume)\n", theta,
                  packets, static_cast<double>(packets) / 6400.0);
    }
  }
  std::puts("\nreading: lower thresholds demand deeper collapse; the check "
            "itself is one\nmultiply + compare per packet, division-free "
            "(H < theta <=> S > T*(log2 T - theta)).\n");
}

void BM_EntropyObserve(benchmark::State& state) {
  stat4::EntropyEstimator e(256);
  netsim::Rng rng(1);
  for (auto _ : state) {
    e.observe(rng.below(256));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EntropyObserve);

void BM_EntropyThresholdCheck(benchmark::State& state) {
  stat4::EntropyEstimator e(256);
  netsim::Rng rng(2);
  for (int i = 0; i < 10000; ++i) e.observe(rng.below(256));
  const std::uint64_t theta = 3u << stat4::kLog2FracBits;
  for (auto _ : state) {
    benchmark::DoNotOptimize(e.entropy_below(theta));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EntropyThresholdCheck);

}  // namespace

int main(int argc, char** argv) {
  print_accuracy();
  print_detection_latency();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

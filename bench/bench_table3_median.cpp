// Regenerates Table 3: median estimation error of the one-step-per-packet
// tracker (Figure 3) for distributions of N elements, over 20 repetitions
// per value of N, split into "before N/2 samples" and "after N/2 samples".
//
// Setup per the paper: "we feed our median computation algorithm with values
// extracted from a range [1, ..., N]".  Error is the distance between the
// tracked median and the exact median, as a percentage of the domain size N.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <random>
#include <vector>

#include "baseline/exact_stats.hpp"
#include "stat4/freq_dist.hpp"

namespace {

struct MedianErrors {
  std::vector<double> before;  ///< % errors sampled before N/2 observations
  std::vector<double> after;   ///< % errors sampled after N/2 observations
};

/// One repetition: stream 4N uniform values from [0, N), sampling the
/// tracked-vs-exact median error at regular checkpoints.
MedianErrors run_once(std::size_t n, std::uint64_t seed) {
  stat4::FreqDist dist(n);
  const auto mi = dist.attach_percentile(stat4::Percentile{50});
  std::mt19937_64 rng(seed);

  MedianErrors out;
  const std::size_t total = 4 * n;
  const std::size_t checkpoint = std::max<std::size_t>(1, n / 64);
  for (std::size_t i = 1; i <= total; ++i) {
    dist.observe(rng() % n);
    if (i % checkpoint != 0) continue;
    const auto exact = baseline::exact_median(dist.frequencies());
    const auto tracked = dist.percentile(mi).position();
    const double err =
        100.0 *
        std::abs(static_cast<double>(tracked) - static_cast<double>(exact)) /
        static_cast<double>(n);
    (i <= n / 2 ? out.before : out.after).push_back(err);
  }
  return out;
}

void print_table3() {
  std::puts("=== Table 3: median estimation error, 20 repetitions per N ===");
  std::puts("(error = |tracked - exact| / N, sampled at checkpoints; the");
  std::puts(" paper's example use cases per row are kept for reference)\n");
  std::printf("%-8s %-18s | %-17s | %-17s | %-17s | %-17s\n", "", "", "",
              "", "", "");
  std::printf("%-8s %-18s | %8s %8s | %8s %8s\n", "N", "example use case",
              "bef 50th", "bef 90th", "aft 50th", "aft 90th");
  std::puts("---------------------------+-------------------+---------------"
            "----");

  struct Case {
    std::size_t n;
    const char* use;
    const char* paper;
  };
  const Case cases[] = {
      {100, "packet types", "4.5% / 34.5% -> 0% / 1%"},
      {1000, "per-ms traffic", "3.6% / 29.6% -> 0% / 0.1%"},
      {65536, "16-bit field", "<1% / 23% -> 0% / 0.01%"},
  };
  for (const auto& c : cases) {
    std::vector<double> before;
    std::vector<double> after;
    for (std::uint64_t rep = 0; rep < 20; ++rep) {
      auto errs = run_once(c.n, 0xBEEF00 + rep * 7919 + c.n);
      before.insert(before.end(), errs.before.begin(), errs.before.end());
      after.insert(after.end(), errs.after.begin(), errs.after.end());
    }
    std::printf("%-8zu %-18s | %7.2f%% %7.2f%% | %7.3f%% %7.3f%%   (paper: "
                "%s)\n",
                c.n, c.use, baseline::sample_percentile(before, 50.0),
                baseline::sample_percentile(before, 90.0),
                baseline::sample_percentile(after, 50.0),
                baseline::sample_percentile(after, 90.0), c.paper);
  }
  std::puts("");
}

void BM_MedianTrackerObserve(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  stat4::FreqDist dist(n);
  dist.attach_percentile(stat4::Percentile{50});
  std::mt19937_64 rng(1);
  for (auto _ : state) {
    dist.observe(rng() % n);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MedianTrackerObserve)->Arg(100)->Arg(1000)->Arg(65536);

void BM_ExactMedianRecompute(benchmark::State& state) {
  // What the controller (or a naive implementation) would pay instead.
  const auto n = static_cast<std::size_t>(state.range(0));
  stat4::FreqDist dist(n);
  std::mt19937_64 rng(1);
  for (std::size_t i = 0; i < 4 * n; ++i) dist.observe(rng() % n);
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::exact_median(dist.frequencies()));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ExactMedianRecompute)->Arg(100)->Arg(1000)->Arg(65536);

}  // namespace

int main(int argc, char** argv) {
  print_table3();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Regenerates the Section 4 case-study results (Figure 6 setup):
//
//   "We repeat the above experiment many times, with time intervals ranging
//    from 8 ms to 2 seconds, and number of intervals between 10 and 100.
//    In all the experiments, the switch detects the traffic spike in the
//    first interval after the start of the spike.  It also generates alerts
//    as expected, and correctly identifies the destination of the traffic
//    spike, which varies between simulation runs.  Pinpointing the
//    destination of each spike typically takes 2-3 seconds because of the
//    interaction between the control and data planes."
//
// One row per (interval, window) configuration, several seeds each.
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "control/control.hpp"

namespace {

using control::CaseStudyParams;
using stat4::kMillisecond;
using stat4::kSecond;
using stat4::TimeNs;

struct SweepPoint {
  TimeNs interval;
  std::uint64_t window;
};

void print_case_study() {
  std::puts("=== Section 4 case study: detection + drill-down sweep ===");
  std::puts("(each row: 3 seeds; detection must land in the first interval "
            "after spike onset)\n");
  std::printf("%10s %7s | %9s %12s %13s %7s %6s\n", "interval", "window",
              "detected", "det. delay", "pinpoint", "subnet", "host");
  std::puts("-------------------+------------------------------------------"
            "--------");

  const SweepPoint sweep[] = {
      {8 * kMillisecond, 100},  // the paper's default
      {8 * kMillisecond, 10},
      {100 * kMillisecond, 50},
      {500 * kMillisecond, 20},
      {2000 * kMillisecond, 10},
  };
  int failures = 0;
  for (const auto& point : sweep) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      CaseStudyParams params;
      params.seed = seed * 1000 + static_cast<std::uint64_t>(
                                      point.interval / kMillisecond);
      params.interval_len = point.interval;
      params.window_size = point.window;
      params.min_history = std::min<std::uint64_t>(8, point.window - 2);
      // Keep per-interval packet counts in the low hundreds regardless of
      // interval length (the paper stores orders of magnitude for the same
      // reason), and give long-interval runs enough warmup + deadline.
      params.base_pps =
          25000.0 * (8.0 * static_cast<double>(kMillisecond) /
                     static_cast<double>(point.interval));
      if (params.base_pps < 500.0) params.base_pps = 500.0;
      params.min_warmup =
          static_cast<TimeNs>(params.min_history + 3) * point.interval;
      params.max_warmup = params.min_warmup + 10 * point.interval;
      params.deadline =
          params.max_warmup + 40 * point.interval + 30 * kSecond;

      const auto out = control::run_case_study(params);
      const bool first_interval =
          out.drill.spike_digest_time.has_value() &&
          out.detection_delay < 2 * point.interval;
      const bool ok = out.drill.done() && out.subnet_correct &&
                      out.host_correct && first_interval;
      if (!ok) ++failures;
      std::printf("%7lld ms %7llu | %9s %9.1f ms %10.1f ms %7s %6s\n",
                  static_cast<long long>(point.interval / kMillisecond),
                  static_cast<unsigned long long>(point.window),
                  first_interval ? "1st ivl" : "LATE",
                  static_cast<double>(out.detection_delay) / 1e6,
                  static_cast<double>(out.pinpoint_delay) / 1e6,
                  out.subnet_correct ? "ok" : "WRONG",
                  out.host_correct ? "ok" : "WRONG");
    }
  }
  std::printf("\nfailures: %d (paper: none across all runs)\n\n", failures);
}

void print_poisson_robustness() {
  std::puts("=== Robustness extension: Poisson arrivals (real per-interval "
            "variance) ===");
  std::puts("(the paper's CBR-style generator has near-zero per-interval "
            "variance; Poisson\n arrivals expose the per-interval "
            "multiple-comparisons problem of 2-sigma checks)\n");
  std::printf("%22s | %6s %12s %12s %6s\n", "configuration", "FP?",
              "det. delay", "pinpoint", "host");
  std::puts("-----------------------+------------------------------------"
            "-----");
  for (const unsigned k_rate : {2u, 4u}) {
    for (std::uint64_t seed = 1; seed <= 3; ++seed) {
      CaseStudyParams params;
      params.seed = seed;
      params.poisson_arrivals = true;
      params.k_sigma = 2;
      params.k_sigma_rate = k_rate;
      const auto out = control::run_case_study(params);
      std::printf("poisson, rate k=%u s=%llu | %6s %9.1f ms %9.1f ms %6s\n",
                  k_rate, static_cast<unsigned long long>(seed),
                  out.false_positive ? "YES" : "no",
                  static_cast<double>(out.detection_delay) / 1e6,
                  static_cast<double>(out.pinpoint_delay) / 1e6,
                  out.host_correct ? "ok" : "-");
    }
  }
  std::puts("\nfindings: at k=2 every Poisson run false-alerts during "
            "warmup (negative\ndelay = alert before the spike); k=4 on the "
            "rate check restores clean\nfirst-interval detection.  The "
            "frequency checks must stay at k<=2: with N\ncategories the "
            "max achievable z is sqrt(N-1) (2.24 for six /24s).\n");
}

void BM_CaseStudyEndToEnd(benchmark::State& state) {
  std::uint64_t seed = 42;
  for (auto _ : state) {
    CaseStudyParams params;
    params.seed = seed++;
    benchmark::DoNotOptimize(control::run_case_study(params));
  }
}
BENCHMARK(BM_CaseStudyEndToEnd)->Unit(benchmark::kMillisecond)->Iterations(2);

}  // namespace

int main(int argc, char** argv) {
  print_case_study();
  print_poisson_robustness();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Regenerates the Section 4 "Resource Consumption" analysis:
//
//   "The case-study application occupies 3.1KB.  It entails at most one
//    dependency between match-action rules, since at most two rules with
//    independent actions match each packet.  The longest dependency chain
//    in our code has 12 sequential steps, used to override the oldest
//    counter in distributions of traffic over time."
//
// We cannot run the authors' Tofino mapping, so the comparable quantities
// come from static analysis of the p4sim programs: register state bytes,
// match dependencies between pipeline stages, and the longest def-use chain
// per action (our IR is finer-grained than P4 statements, so chains are
// reported at both granularities).
#include <benchmark/benchmark.h>

#include <cstdio>

#include "p4sim/p4sim.hpp"
#include "stat4p4/stat4p4.hpp"

namespace {

void analyze(const char* title, const stat4p4::MonitorApp& app) {
  const auto a = p4sim::analyze_switch(app.sw());
  std::printf("--- %s ---\n", title);
  std::printf("  tables                     : %zu\n", a.tables);
  std::printf("  table entries installed    : %zu\n", a.table_entries);
  std::printf("  register arrays            : %zu\n", a.register_arrays);
  std::printf("  register state             : %zu bytes (%.1f KB)   "
              "[paper: 3.1KB total program]\n",
              a.state_bytes, static_cast<double>(a.state_bytes) / 1024.0);
  std::printf("  pipeline stages            : %zu\n", a.pipeline_stages);
  std::printf("  match dependencies         : %zu   [paper: at most 1]\n",
              a.match_dependencies);
  std::printf("  longest action chain       : %zu IR steps (in '%s')   "
              "[paper: 12 P4 steps]\n",
              a.longest_action_chain, a.longest_chain_action.c_str());
  std::puts("  per-action detail:");
  for (const auto& p : a.programs) {
    std::printf("    %-12s %4zu instructions, chain %3zu, reg R/W %zu/%zu%s\n",
                p.name.c_str(), p.instructions, p.longest_chain,
                p.register_reads, p.register_writes,
                p.uses_mul ? ", uses mul" : "");
  }
  std::puts("");
}

void print_resources() {
  std::puts("=== Section 4 resource consumption (static analysis) ===\n");

  // The case-study application exactly as the controller configures it.
  stat4p4::MonitorApp bmv2_app;  // default profile: bmv2 (has multiply)
  bmv2_app.install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
  bmv2_app.install_rate_monitor(p4sim::ipv4(10, 0, 0, 0), 8, 0,
                                8 * static_cast<std::uint64_t>(
                                        stat4::kMillisecond),
                                100, 8);
  stat4p4::FreqBindingSpec per24;
  per24.dst_prefix = p4sim::ipv4(10, 0, 0, 0);
  per24.dst_prefix_len = 8;
  per24.dist = 1;
  per24.shift = 8;
  bmv2_app.install_freq_binding(per24);
  analyze("case-study app, bmv2 profile (native multiply)", bmv2_app);

  stat4p4::MonitorApp nomul_app({4, 256, 2},
                                p4sim::AluProfile::hardware_no_mul());
  nomul_app.install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
  nomul_app.install_rate_monitor(p4sim::ipv4(10, 0, 0, 0), 8, 0,
                                 8 * static_cast<std::uint64_t>(
                                         stat4::kMillisecond),
                                 100, 8);
  nomul_app.install_freq_binding(per24);
  analyze("case-study app, no-mul profile (exact shift-add products)",
          nomul_app);

  std::puts("interpretation: the bmv2-profile window_tick chain is the "
            "structural analogue of the paper's 12-step oldest-counter "
            "override; the no-mul profile shows the chain cost of exact "
            "shift-add products that targets without multiply would pay "
            "(see EXPERIMENTS.md).\n");
}

void BM_AnalyzeSwitch(benchmark::State& state) {
  stat4p4::MonitorApp app;
  for (auto _ : state) {
    benchmark::DoNotOptimize(p4sim::analyze_switch(app.sw()));
  }
}
BENCHMARK(BM_AnalyzeSwitch);

}  // namespace

int main(int argc, char** argv) {
  print_resources();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Regenerates the Section 1 architectural argument (Figure 1b vs 1c):
// for any sketch-only pull system, detection delay is inversely
// proportional to standing overhead and floor-bounded by network
// characteristics; the in-switch push architecture detects at the interval
// boundary with zero standing overhead.
//
// The rows sweep the controller pull period; the in-switch line uses the
// case study's 8 ms interval on the same link.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <vector>

#include "baseline/sketch_only.hpp"
#include "netsim/rng.hpp"

namespace {

using baseline::SketchOnlyConfig;
using stat4::kMillisecond;
using stat4::kSecond;
using stat4::TimeNs;

void print_reactivity() {
  std::puts("=== Section 1: sketch-only pull vs in-switch push ===");
  std::puts("(1000 random change times per row; link delay 1 ms, 1000 "
            "registers per pull)\n");
  std::printf("%-26s | %12s %12s | %14s\n", "architecture", "mean delay",
              "worst delay", "overhead");
  std::puts("---------------------------+---------------------------+------"
            "---------");

  netsim::Rng rng(2021);
  std::vector<TimeNs> changes;
  for (int i = 0; i < 1000; ++i) {
    changes.push_back(static_cast<TimeNs>(rng.below(10u * kSecond)));
  }

  for (const TimeNs period :
       {5 * kMillisecond, 20 * kMillisecond, 100 * kMillisecond,
        500 * kMillisecond, 2000 * kMillisecond}) {
    SketchOnlyConfig cfg;
    cfg.pull_period = period;
    double sum = 0;
    TimeNs worst = 0;
    double overhead = 0;
    for (const TimeNs t : changes) {
      const auto out = baseline::sketch_only_detection(cfg, t);
      sum += static_cast<double>(out.detection_delay);
      worst = std::max(worst, out.detection_delay);
      overhead = out.overhead_bytes_per_second;
    }
    std::printf("sketch-only, pull %5lld ms | %9.2f ms %9.2f ms | %8.1f "
                "KB/s\n",
                static_cast<long long>(period / kMillisecond),
                sum / 1000.0 / 1e6, static_cast<double>(worst) / 1e6,
                overhead / 1024.0);
  }

  // The envisioned architecture: detection at the first interval boundary,
  // one alert packet total — no standing overhead.
  {
    double sum = 0;
    TimeNs worst = 0;
    for (const TimeNs t : changes) {
      const TimeNs d = baseline::in_switch_detection_delay(
          8 * kMillisecond, kMillisecond, t);
      sum += static_cast<double>(d);
      worst = std::max(worst, d);
    }
    std::printf("%-26s | %9.2f ms %9.2f ms | %8.1f KB/s\n",
                "in-switch push, 8 ms ivl", sum / 1000.0 / 1e6,
                static_cast<double>(worst) / 1e6, 0.0);
  }

  std::puts("\nshape check: halving the pull period halves the delay but "
            "doubles the overhead; the push architecture beats every pull "
            "configuration at zero standing cost (Figure 1c).\n");
}

void BM_SketchOnlyModel(benchmark::State& state) {
  SketchOnlyConfig cfg;
  TimeNs t = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(baseline::sketch_only_detection(cfg, t));
    t += 37 * kMillisecond;
  }
}
BENCHMARK(BM_SketchOnlyModel);

}  // namespace

int main(int argc, char** argv) {
  print_reactivity();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

// Per-update cost of the Stat4 primitives vs the floating-point baseline
// the paper cannot use on a switch (Welford), plus per-packet cost of the
// switch-side programs.  Also measures the lazy-vs-eager standard-deviation
// trade-off of Section 3.
#include <benchmark/benchmark.h>

#include <random>

#include "baseline/welford.hpp"
#include "netsim/rng.hpp"
#include "p4sim/craft.hpp"
#include "stat4/stat4.hpp"
#include "stat4p4/stat4p4.hpp"

namespace {

// ------------------------------------------------------ library primitives

void BM_RunningStatsAdd(benchmark::State& state) {
  stat4::RunningStats s;
  std::uint64_t x = 1;
  for (auto _ : state) {
    s.add(x % 1000);
    x = x * 2862933555777941757ull + 3037000493ull;
    if (s.n() > 1'000'000) s.reset();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunningStatsAdd);

void BM_WelfordAdd(benchmark::State& state) {
  baseline::Welford w;
  std::uint64_t x = 1;
  for (auto _ : state) {
    w.add(static_cast<double>(x % 1000));
    benchmark::DoNotOptimize(w);  // keep the accumulator live
    x = x * 2862933555777941757ull + 3037000493ull;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WelfordAdd);

void BM_FreqDistObserve(benchmark::State& state) {
  stat4::FreqDist d(256);
  std::uint64_t x = 1;
  for (auto _ : state) {
    d.observe(x % 256);
    x = x * 2862933555777941757ull + 3037000493ull;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreqDistObserve);

void BM_FreqDistObserveWithMedian(benchmark::State& state) {
  stat4::FreqDist d(256);
  d.attach_percentile(stat4::Percentile{50});
  std::uint64_t x = 1;
  for (auto _ : state) {
    d.observe(x % 256);
    x = x * 2862933555777941757ull + 3037000493ull;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreqDistObserveWithMedian);

void BM_IntervalWindowRecord(benchmark::State& state) {
  stat4::IntervalWindow w(100, 8 * stat4::kMillisecond);
  stat4::TimeNs t = 0;
  for (auto _ : state) {
    w.record(t);
    t += 40'000;  // ~200 packets per interval
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntervalWindowRecord);

// -------------------------------------------------- lazy vs eager stddev

void BM_StdDevLazy(benchmark::State& state) {
  // Update-heavy workload, sd read once per 200 updates (one check per
  // interval): the design the paper advocates.
  stat4::RunningStats s;
  std::uint64_t x = 1;
  std::uint64_t i = 0;
  for (auto _ : state) {
    s.add(x % 1000);
    x = x * 2862933555777941757ull + 3037000493ull;
    if (++i % 200 == 0) benchmark::DoNotOptimize(s.stddev_nx());
    if (s.n() > 1'000'000) s.reset();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdDevLazy);

void BM_StdDevEager(benchmark::State& state) {
  // sd recomputed on every update — what lazy evaluation avoids.
  stat4::RunningStats s;
  std::uint64_t x = 1;
  for (auto _ : state) {
    s.add(x % 1000);
    benchmark::DoNotOptimize(s.stddev_nx());
    x = x * 2862933555777941757ull + 3037000493ull;
    if (s.n() > 1'000'000) s.reset();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdDevEager);

// ------------------------------------------------- switch-side programs

void BM_SwitchTrackFreqPacket(benchmark::State& state) {
  stat4p4::MonitorApp app;
  app.install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
  stat4p4::FreqBindingSpec spec;
  spec.dst_prefix = p4sim::ipv4(10, 0, 0, 0);
  spec.dst_prefix_len = 8;
  spec.dist = 1;
  spec.shift = 8;
  app.install_freq_binding(spec);

  netsim::Rng rng(1);
  for (auto _ : state) {
    const auto subnet = 1 + static_cast<unsigned>(rng.below(6));
    benchmark::DoNotOptimize(app.sw().process(p4sim::make_udp_packet(
        p4sim::ipv4(8, 8, 8, 8), p4sim::ipv4(10, 0, subnet, 1), 1, 2)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchTrackFreqPacket);

void BM_SwitchWindowTickPacket(benchmark::State& state) {
  stat4p4::MonitorApp app;
  app.install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
  app.install_rate_monitor(p4sim::ipv4(10, 0, 0, 0), 8, 0,
                           8 * static_cast<std::uint64_t>(
                                   stat4::kMillisecond),
                           100, 8);
  stat4::TimeNs t = 0;
  for (auto _ : state) {
    p4sim::Packet pkt = p4sim::make_udp_packet(
        p4sim::ipv4(8, 8, 8, 8), p4sim::ipv4(10, 0, 1, 1), 1, 2);
    pkt.ingress_ts = t;
    t += 40'000;
    benchmark::DoNotOptimize(app.sw().process(std::move(pkt)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchWindowTickPacket);

void BM_SwitchForwardOnlyPacket(benchmark::State& state) {
  // Baseline: a switch doing pure L3 forwarding, no Stat4.
  stat4p4::MonitorApp app;
  app.install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(app.sw().process(p4sim::make_udp_packet(
        p4sim::ipv4(8, 8, 8, 8), p4sim::ipv4(10, 0, 1, 1), 1, 2)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchForwardOnlyPacket);

}  // namespace

BENCHMARK_MAIN();

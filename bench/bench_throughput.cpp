// Per-update cost of the Stat4 primitives vs the floating-point baseline
// the paper cannot use on a switch (Welford), plus per-packet cost of the
// switch-side programs.  Also measures the lazy-vs-eager standard-deviation
// trade-off of Section 3.
//
// Unlike the other bench harnesses this one has a custom main: alongside
// the console table it always writes machine-readable
// `BENCH_throughput.json` — every benchmark's timings plus a full
// telemetry snapshot (the instrumented engine/runtime counters the
// benchmarks just exercised) — so the repo accumulates a comparable perf
// trajectory per PR.  Flags, consumed before google-benchmark sees them:
//   --quick        CI smoke mode (min_time 0.01s)
//   --json=FILE    write the JSON somewhere other than the default
#include <benchmark/benchmark.h>

#include <algorithm>
#include <array>
#include <chrono>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <limits>
#include <memory>
#include <random>
#include <string>
#include <vector>

#include "telemetry/telemetry.hpp"

#include "analysis/pass_manager.hpp"
#include "control/ml/ml.hpp"
#include "baseline/welford.hpp"
#include "netsim/rng.hpp"
#include "p4sim/craft.hpp"
#include "runtime/runtime.hpp"
#include "sketch/apps.hpp"
#include "stat4/stat4.hpp"
#include "stat4p4/stat4p4.hpp"

namespace {

// ------------------------------------------------------ library primitives

void BM_RunningStatsAdd(benchmark::State& state) {
  stat4::RunningStats s;
  std::uint64_t x = 1;
  for (auto _ : state) {
    s.add(x % 1000);
    x = x * 2862933555777941757ull + 3037000493ull;
    if (s.n() > 1'000'000) s.reset();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_RunningStatsAdd);

void BM_WelfordAdd(benchmark::State& state) {
  baseline::Welford w;
  std::uint64_t x = 1;
  for (auto _ : state) {
    w.add(static_cast<double>(x % 1000));
    benchmark::DoNotOptimize(w);  // keep the accumulator live
    x = x * 2862933555777941757ull + 3037000493ull;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_WelfordAdd);

void BM_FreqDistObserve(benchmark::State& state) {
  stat4::FreqDist d(256);
  std::uint64_t x = 1;
  for (auto _ : state) {
    d.observe(x % 256);
    x = x * 2862933555777941757ull + 3037000493ull;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreqDistObserve);

void BM_FreqDistObserveWithMedian(benchmark::State& state) {
  stat4::FreqDist d(256);
  d.attach_percentile(stat4::Percentile{50});
  std::uint64_t x = 1;
  for (auto _ : state) {
    d.observe(x % 256);
    x = x * 2862933555777941757ull + 3037000493ull;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FreqDistObserveWithMedian);

void BM_IntervalWindowRecord(benchmark::State& state) {
  stat4::IntervalWindow w(100, 8 * stat4::kMillisecond);
  stat4::TimeNs t = 0;
  for (auto _ : state) {
    w.record(t);
    t += 40'000;  // ~200 packets per interval
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IntervalWindowRecord);

// -------------------------------------------------- lazy vs eager stddev

void BM_StdDevLazy(benchmark::State& state) {
  // Update-heavy workload, sd read once per 200 updates (one check per
  // interval): the design the paper advocates.
  stat4::RunningStats s;
  std::uint64_t x = 1;
  std::uint64_t i = 0;
  for (auto _ : state) {
    s.add(x % 1000);
    x = x * 2862933555777941757ull + 3037000493ull;
    if (++i % 200 == 0) benchmark::DoNotOptimize(s.stddev_nx());
    if (s.n() > 1'000'000) s.reset();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdDevLazy);

void BM_StdDevEager(benchmark::State& state) {
  // sd recomputed on every update — what lazy evaluation avoids.
  stat4::RunningStats s;
  std::uint64_t x = 1;
  for (auto _ : state) {
    s.add(x % 1000);
    benchmark::DoNotOptimize(s.stddev_nx());
    x = x * 2862933555777941757ull + 3037000493ull;
    if (s.n() > 1'000'000) s.reset();
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_StdDevEager);

// ------------------------------------------------- switch-side programs

namespace {

void track_freq_setup(stat4p4::MonitorApp& app) {
  app.install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
  stat4p4::FreqBindingSpec spec;
  spec.dst_prefix = p4sim::ipv4(10, 0, 0, 0);
  spec.dst_prefix_len = 8;
  spec.dist = 1;
  spec.shift = 8;
  app.install_freq_binding(spec);
}

/// Per-packet loop matching the committed-baseline structure: a freshly
/// crafted packet and a fresh SwitchOutput per packet through process().
void track_freq_loop(benchmark::State& state, stat4p4::MonitorApp& app) {
  netsim::Rng rng(1);
  for (auto _ : state) {
    const auto subnet = 1 + static_cast<unsigned>(rng.below(6));
    benchmark::DoNotOptimize(app.sw().process(p4sim::make_udp_packet(
        p4sim::ipv4(8, 8, 8, 8), p4sim::ipv4(10, 0, subnet, 1), 1, 2)));
  }
  state.SetItemsProcessed(state.iterations());
}

/// Steady-state drain loop — the structure FleetRunner's worker actually
/// runs (fleet_runner.cpp): process_into() with ONE SwitchOutput whose
/// vectors are reused, the forwarded packet's buffer recycled as the next
/// input.  Same traffic as track_freq_loop (dst subnet varies 1..6), but
/// zero per-packet allocation, so this isolates parse → match → action →
/// deparse cost — the number the execution tiers compete on.
void track_freq_drain_loop(benchmark::State& state, stat4p4::MonitorApp& app) {
  // dst byte 2 lives at eth(14) + ipv4 dst offset(16) + 2.
  constexpr std::size_t kDstSubnetByte = 14 + 16 + 2;
  p4sim::Packet pkt = p4sim::make_udp_packet(
      p4sim::ipv4(8, 8, 8, 8), p4sim::ipv4(10, 0, 1, 1), 1, 2);
  p4sim::SwitchOutput out;
  // The subnet sequence is pre-drawn so the timed region contains only the
  // switch (the RNG draw is harness, not data path).
  std::array<p4sim::Byte, 256> subnets;
  netsim::Rng rng(1);
  for (auto& b : subnets) b = static_cast<p4sim::Byte>(1 + rng.below(6));
  std::size_t i = 0;
  for (auto _ : state) {
    pkt.data[kDstSubnetByte] = subnets[i++ & 255];
    app.sw().process_into(std::move(pkt), out);
    pkt = std::move(out.packets[0].second);  // recycle the buffer
  }
  state.SetItemsProcessed(state.iterations());
}

}  // namespace

void BM_SwitchTrackFreqPacket(benchmark::State& state) {
  stat4p4::MonitorApp app;
  track_freq_setup(app);
  // Pinned to the interpreter tier: this is the baseline the Threaded/Jit
  // variants (and the CI tier-speedup gate) divide against, so it must not
  // silently ride the default tier.
  app.sw().set_exec_tier(p4sim::ExecTier::kInterpreter);
  track_freq_loop(state, app);
}
BENCHMARK(BM_SwitchTrackFreqPacket);

void BM_SwitchTrackFreqPacketDrain(benchmark::State& state) {
  // Interpreter tier, drain structure: the denominator for per-tier
  // speedups with the allocation overhead already out of the picture.
  stat4p4::MonitorApp app;
  track_freq_setup(app);
  app.sw().set_exec_tier(p4sim::ExecTier::kInterpreter);
  track_freq_drain_loop(state, app);
}
BENCHMARK(BM_SwitchTrackFreqPacketDrain);

void BM_SwitchTrackFreqPacketThreaded(benchmark::State& state) {
  stat4p4::MonitorApp app;
  track_freq_setup(app);
  app.sw().set_exec_tier(p4sim::ExecTier::kThreaded);
  track_freq_drain_loop(state, app);
}
BENCHMARK(BM_SwitchTrackFreqPacketThreaded);

void BM_SwitchTrackFreqPacketJit(benchmark::State& state) {
  stat4p4::MonitorApp app;
  track_freq_setup(app);
  app.sw().set_exec_tier(p4sim::ExecTier::kNative);
  // One warm-up packet triggers the transpile + host-compile outside the
  // timed loop (the unit is memoized process-wide afterwards).
  (void)app.sw().process(p4sim::make_udp_packet(
      p4sim::ipv4(8, 8, 8, 8), p4sim::ipv4(10, 0, 1, 1), 1, 2));
  if (app.sw().active_tier() != p4sim::ExecTier::kNative) {
    state.SkipWithError("native tier unavailable (no host compiler?)");
    return;
  }
  track_freq_drain_loop(state, app);
}
BENCHMARK(BM_SwitchTrackFreqPacketJit);

void BM_SwitchTrackFreqPacketOptimized(benchmark::State& state) {
  // The same workload after the dataflow optimizer (stat4_opt) rewrote the
  // pipeline: fewer IR instructions and a smaller per-packet scratch span.
  // Comparing against BM_SwitchTrackFreqPacket gives the dynamic payoff of
  // the static instruction-count reduction stat4_opt --json reports.
  stat4p4::MonitorApp app;
  app.install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
  stat4p4::FreqBindingSpec spec;
  spec.dst_prefix = p4sim::ipv4(10, 0, 0, 0);
  spec.dst_prefix_len = 8;
  spec.dist = 1;
  spec.shift = 8;
  app.install_freq_binding(spec);
  (void)analysis::optimize_switch(app.sw());

  netsim::Rng rng(1);
  for (auto _ : state) {
    const auto subnet = 1 + static_cast<unsigned>(rng.below(6));
    benchmark::DoNotOptimize(app.sw().process(p4sim::make_udp_packet(
        p4sim::ipv4(8, 8, 8, 8), p4sim::ipv4(10, 0, subnet, 1), 1, 2)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchTrackFreqPacketOptimized);

void BM_SwitchWindowTickPacket(benchmark::State& state) {
  stat4p4::MonitorApp app;
  app.install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
  app.install_rate_monitor(p4sim::ipv4(10, 0, 0, 0), 8, 0,
                           8 * static_cast<std::uint64_t>(
                                   stat4::kMillisecond),
                           100, 8);
  stat4::TimeNs t = 0;
  for (auto _ : state) {
    p4sim::Packet pkt = p4sim::make_udp_packet(
        p4sim::ipv4(8, 8, 8, 8), p4sim::ipv4(10, 0, 1, 1), 1, 2);
    pkt.ingress_ts = t;
    t += 40'000;
    benchmark::DoNotOptimize(app.sw().process(std::move(pkt)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchWindowTickPacket);

void BM_SwitchForwardOnlyPacket(benchmark::State& state) {
  // Baseline: a switch doing pure L3 forwarding, no Stat4.
  stat4p4::MonitorApp app;
  app.install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(app.sw().process(p4sim::make_udp_packet(
        p4sim::ipv4(8, 8, 8, 8), p4sim::ipv4(10, 0, 1, 1), 1, 2)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchForwardOnlyPacket);

void BM_SwitchSketchHHPacket(benchmark::State& state) {
  // Heavy-hitter path (src/sketch/): count-min update + threshold digest
  // arming per packet.  Versus BM_SwitchForwardOnlyPacket this prices the
  // whole sketch stage; versus BM_SwitchTrackFreqPacket it compares the
  // sketch against the sparse tracker on the same traffic shape.  The
  // threshold is high enough that the digest never fires — steady-state
  // cost, not the alert path.
  sketch::SketchApp app(sketch::SketchKind::kCountMin);
  app.install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
  app.install_sketch(0, 0, 0, 0xFFFFFFFFull,
                     std::numeric_limits<std::uint64_t>::max());
  netsim::Rng rng(1);
  for (auto _ : state) {
    const auto subnet = 1 + static_cast<unsigned>(rng.below(6));
    benchmark::DoNotOptimize(app.sw().process(p4sim::make_udp_packet(
        p4sim::ipv4(8, 8, 8, 8), p4sim::ipv4(10, 0, subnet, 1), 1, 2)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SwitchSketchHHPacket);

void BM_AnomalyScorePacket(benchmark::State& state) {
  // Controller-side ML ensemble cost per fed sample (docs/ML.md): with the
  // model pool full, every feed extracts the 6-dim feature vector, scores
  // all 4 k-means models, and amortizes a Lloyd's retrain every
  // train_stagger samples.  This is the per-telemetry-window cost on the
  // controller, NOT a packet hot-path stage — it bounds how many metrics a
  // controller can watch per second.
  control::ml::AnomalyDetector det;
  const control::ml::MetricId m = det.register_metric("bench");
  netsim::Rng rng(42);
  for (int i = 0; i < 512; ++i) det.feed(m, 1000 + rng.below(64));
  for (auto _ : state) {
    benchmark::DoNotOptimize(det.feed(m, 1000 + rng.below(64)));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_AnomalyScorePacket);

// ------------------------------------------------- batched engine ingest

// Scalar-vs-batched ingestion on ONE engine: the same 8-distribution
// workload as the scaling benchmark, fed per packet vs in 256-packet
// batches through process_batch() (resolved-binding cache + amortized
// bookkeeping).  The gap between these two is the per-packet overhead the
// batch path removes.
void engine_bench_setup(stat4::Stat4Engine& engine) {
  constexpr std::size_t kDists = 8;
  for (std::size_t i = 0; i < kDists; ++i) {
    const auto id = engine.add_freq_dist(1024);
    stat4::BindingEntry entry;
    entry.dist = id;
    entry.match.dst_prefix = stat4::Prefix{p4sim::ipv4(10, 0, 0, 0), 8};
    entry.extractor.field = stat4::Field::kSrcPort;
    entry.extractor.shift = static_cast<std::uint8_t>(i % 4);
    entry.extractor.mask = 1023;
    entry.kind = stat4::UpdateKind::kFrequencyObserve;
    engine.add_binding(entry);
  }
}

std::vector<stat4::PacketFields> engine_bench_trace(std::size_t n) {
  std::vector<stat4::PacketFields> trace(n);
  std::uint64_t x = 1;
  for (auto& pkt : trace) {
    pkt.dst_ip = p4sim::ipv4(10, 0, 1, 1);
    pkt.src_port = static_cast<std::uint16_t>(x);
    x = x * 2862933555777941757ull + 3037000493ull;
  }
  return trace;
}

void BM_EngineProcessScalar(benchmark::State& state) {
  stat4::Stat4Engine engine(stat4::OverflowPolicy::kSaturate);
  engine_bench_setup(engine);
  const auto trace = engine_bench_trace(256);
  std::size_t i = 0;
  for (auto _ : state) {
    engine.process(trace[i]);
    i = (i + 1) & 255;
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_EngineProcessScalar);

void BM_EngineProcessBatch(benchmark::State& state) {
  stat4::Stat4Engine engine(stat4::OverflowPolicy::kSaturate);
  engine_bench_setup(engine);
  const auto trace = engine_bench_trace(256);
  // Manual timing divides each 256-packet batch down to per-packet ns, so
  // this reports in the same unit as BM_EngineProcessScalar and the
  // per-packet switch benchmarks instead of per-batch time.
  for (auto _ : state) {
    const auto t0 = std::chrono::steady_clock::now();
    engine.process_batch(trace.data(), trace.size());
    const auto t1 = std::chrono::steady_clock::now();
    state.SetIterationTime(std::chrono::duration<double>(t1 - t0).count() /
                           static_cast<double>(trace.size()));
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(trace.size()));
}
BENCHMARK(BM_EngineProcessBatch)->UseManualTime();

// ------------------------------------------------ multi-threaded scaling

// ShardedEngine throughput as the shard count grows, 1..8 worker threads,
// through the batched ingestion path (producer-side staging + burst ring
// I/O + process_batch drains).  The workload — 8 frequency distributions,
// every packet updating all 8 — splits evenly across shards, so on
// multi-core hardware throughput should scale with the shard count until
// broadcast overhead dominates.  The JSON report derives per-shard scaling
// efficiency throughput_N / (N * throughput_1) from these runs — see
// results_json().  On a single core the numbers only show the fan-out
// overhead (efficiency ~1/N is the physical ceiling there); run on real
// hardware for scaling claims.
void BM_ShardedEngineScaling(benchmark::State& state) {
  const auto shards = static_cast<std::size_t>(state.range(0));
  runtime::ShardedEngine engine(shards, stat4::OverflowPolicy::kSaturate,
                                4096);
  constexpr std::size_t kDists = 8;
  for (std::size_t i = 0; i < kDists; ++i) {
    const auto id = engine.add_freq_dist(1024);
    stat4::BindingEntry entry;
    entry.dist = id;
    entry.match.dst_prefix = stat4::Prefix{p4sim::ipv4(10, 0, 0, 0), 8};
    entry.extractor.field = stat4::Field::kSrcPort;
    entry.extractor.shift = static_cast<std::uint8_t>(i % 4);
    entry.extractor.mask = 1023;
    entry.kind = stat4::UpdateKind::kFrequencyObserve;
    engine.add_binding(entry);
  }
  engine.start();
  std::uint64_t x = 1;
  for (auto _ : state) {
    stat4::PacketFields pkt;
    pkt.dst_ip = p4sim::ipv4(10, 0, 1, 1);
    pkt.src_port = static_cast<std::uint16_t>(x);
    engine.submit(pkt);
    x = x * 2862933555777941757ull + 3037000493ull;
  }
  engine.stop();
  state.SetItemsProcessed(state.iterations());
  state.counters["backpressure_waits"] =
      static_cast<double>(engine.backpressure_waits());
}
BENCHMARK(BM_ShardedEngineScaling)->DenseRange(1, 8)->UseRealTime();

// FleetRunner fan-out: one full MonitorApp switch per worker thread, packets
// round-robined across the fleet.  Unlike sharding (which splits one
// switch's work), this scales the number of independent switches — the
// Figure 1c deployment shape.
void BM_FleetRunnerFanOut(benchmark::State& state) {
  const auto switches = static_cast<std::size_t>(state.range(0));
  runtime::FleetRunner::Config cfg;
  cfg.queue_capacity = 4096;
  cfg.policy = runtime::FleetRunner::Policy::kBlock;
  runtime::FleetRunner runner(cfg);
  std::vector<std::unique_ptr<stat4p4::MonitorApp>> apps;
  for (std::size_t i = 0; i < switches; ++i) {
    apps.push_back(std::make_unique<stat4p4::MonitorApp>());
    apps.back()->install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
    stat4p4::FreqBindingSpec spec;
    spec.dst_prefix = p4sim::ipv4(10, 0, 0, 0);
    spec.dst_prefix_len = 8;
    spec.dist = 1;
    spec.shift = 8;
    spec.check = false;
    apps.back()->install_freq_binding(spec);
    runner.add_switch(*apps.back());
  }
  runner.start();
  std::uint64_t x = 1;
  std::size_t next = 0;
  for (auto _ : state) {
    p4sim::Packet pkt = p4sim::make_udp_packet(
        p4sim::ipv4(8, 8, 8, 8),
        p4sim::ipv4(10, 0, 1 + static_cast<unsigned>(x % 6), 1), 1, 2);
    runner.inject(static_cast<control::SwitchId>(next), std::move(pkt));
    next = (next + 1) % switches;
    x = x * 2862933555777941757ull + 3037000493ull;
  }
  runner.stop();
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_FleetRunnerFanOut)->DenseRange(1, 4)->UseRealTime();

// ------------------------------------------------ machine-readable output

/// Console output as usual, but also keep every completed run so main()
/// can serialize them next to the telemetry snapshot.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  void ReportRuns(const std::vector<Run>& reports) override {
    for (const auto& run : reports) runs_.push_back(run);
    ConsoleReporter::ReportRuns(reports);
  }

  [[nodiscard]] const std::vector<Run>& runs() const noexcept {
    return runs_;
  }

 private:
  std::vector<Run> runs_;
};

void append_double(std::string& out, double v) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  out += buf;
}

/// Derives per-shard scaling efficiency from the BM_ShardedEngineScaling
/// runs:  efficiency_N = throughput_N / (N * throughput_1)  — 1.0 is
/// perfect linear scaling, 1/N is "no parallel speedup at all" (the
/// single-core ceiling).  Emitted as its own JSON object so
/// scripts/bench_compare.py and humans can read the scaling shape without
/// re-deriving it from raw timings.
std::string scaling_json(
    const std::vector<benchmark::BenchmarkReporter::Run>& runs) {
  struct Point {
    int shards;
    double ns_per_iter;
  };
  std::vector<Point> points;
  for (const auto& run : runs) {
    if (run.error_occurred) continue;
    const std::string name = run.benchmark_name();
    const std::string prefix = "BM_ShardedEngineScaling/";
    if (name.rfind(prefix, 0) != 0) continue;
    const int shards = std::atoi(name.c_str() + prefix.size());
    if (shards <= 0 || run.iterations <= 0) continue;
    points.push_back({shards, run.real_accumulated_time /
                                  static_cast<double>(run.iterations) * 1e9});
  }
  std::sort(points.begin(), points.end(),
            [](const Point& a, const Point& b) { return a.shards < b.shards; });
  double t1 = 0;
  for (const auto& p : points) {
    if (p.shards == 1) t1 = p.ns_per_iter;
  }
  std::string out = "{\"benchmark\":\"BM_ShardedEngineScaling\",\"shards\":[";
  bool first = true;
  for (const auto& p : points) {
    if (!first) out += ',';
    first = false;
    out += "{\"n\":" + std::to_string(p.shards) + ",\"ns_per_iter\":";
    append_double(out, p.ns_per_iter);
    out += ",\"speedup_vs_1\":";
    append_double(out, p.ns_per_iter > 0 && t1 > 0 ? t1 / p.ns_per_iter : 0);
    out += ",\"efficiency\":";
    append_double(out, p.ns_per_iter > 0 && t1 > 0
                           ? t1 / (p.shards * p.ns_per_iter)
                           : 0);
    out += '}';
  }
  out += "]}";
  return out;
}

std::string results_json(const std::vector<benchmark::BenchmarkReporter::Run>&
                             runs,
                         bool quick) {
  std::string out = "{\"bench\":\"bench_throughput\",\"quick\":";
  out += quick ? "true" : "false";
  out += ",\"telemetry_enabled\":";
  out += STAT4_TELEMETRY_ENABLED ? "true" : "false";
  out += ",\"benchmarks\":[";
  bool first = true;
  for (const auto& run : runs) {
    if (run.error_occurred) continue;
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"" + run.benchmark_name() + "\",\"iterations\":" +
           std::to_string(run.iterations) + ",\"real_time_ns_per_iter\":";
    const double iters =
        run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
    append_double(out, run.real_accumulated_time / iters * 1e9);
    out += ",\"cpu_time_ns_per_iter\":";
    append_double(out, run.cpu_accumulated_time / iters * 1e9);
    for (const auto& [name, counter] : run.counters) {
      out += ",\"" + name + "\":";
      append_double(out, counter.value);
    }
    out += '}';
  }
  out += "],\"scaling\":";
  out += scaling_json(runs);
  out += ",\"telemetry\":";
  out += telemetry::MetricsRegistry::global().snapshot().to_json();
  out += '}';
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  bool quick = false;
  std::string json_path = "BENCH_throughput.json";
  std::vector<char*> bench_args;
  bench_args.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quick") {
      quick = true;
    } else if (arg.rfind("--json=", 0) == 0) {
      json_path = arg.substr(std::string("--json=").size());
    } else {
      bench_args.push_back(argv[i]);
    }
  }
  // Plain-seconds spelling: accepted by google-benchmark both before and
  // after the 1.8 "0.01s" suffix syntax.
  std::string min_time = "--benchmark_min_time=0.01";
  if (quick) bench_args.push_back(min_time.data());

  int bench_argc = static_cast<int>(bench_args.size());
  benchmark::Initialize(&bench_argc, bench_args.data());
  if (benchmark::ReportUnrecognizedArguments(bench_argc,
                                             bench_args.data())) {
    return 1;
  }
  CollectingReporter reporter;
  benchmark::RunSpecifiedBenchmarks(&reporter);
  benchmark::Shutdown();

  std::ofstream json(json_path, std::ios::trunc);
  if (!json) {
    std::cerr << "bench_throughput: cannot write " << json_path << '\n';
    return 1;
  }
  json << results_json(reporter.runs(), quick) << '\n';
  std::cerr << "wrote " << json_path << '\n';
  return 0;
}

// Sparse vs dense tracking (Section 5 future work): memory footprint,
// overflow behaviour under load, and update cost.
//
// Sweep: a stream of packets over K distinct 32-bit keys is tracked (a) by
// the dense per-value scheme (impossible beyond small domains — the row is
// the memory a /32 domain would need) and (b) by the sparse hash table at
// several capacities.  The table shows tracked coverage and memory.
#include <benchmark/benchmark.h>

#include <cinttypes>
#include <cstdio>
#include <vector>

#include "netsim/rng.hpp"
#include "stat4/sparse_freq.hpp"

namespace {

void print_sparse_table() {
  std::puts("=== Sparse (hash-table) tracking vs dense allocation ===");
  std::puts("(workload: 100k observations over K distinct random 32-bit "
            "keys, 2 probes)\n");
  std::printf("%8s %10s | %12s %12s %10s\n", "keys K", "capacity",
              "tracked", "overflow", "memory");
  std::puts("--------------------+---------------------------------------");

  netsim::Rng rng(0x5AA5);
  for (const std::size_t keys : {64u, 256u, 1024u}) {
    std::vector<std::uint64_t> key_set;
    for (std::size_t i = 0; i < keys; ++i) {
      key_set.push_back(rng.next() & 0xFFFFFFFF);
    }
    for (const std::size_t capacity : {256u, 1024u, 4096u}) {
      stat4::SparseFreqDist d(capacity, 2);
      for (int i = 0; i < 100000; ++i) {
        d.observe(key_set[rng.below(key_set.size())]);
      }
      const double coverage =
          100.0 * static_cast<double>(d.total()) /
          static_cast<double>(d.total() + d.overflow());
      std::printf("%8zu %10zu | %10.2f%% %12" PRIu64 " %7zu B\n", keys,
                  capacity, coverage, d.overflow(), d.state_bytes());
    }
  }
  std::puts("\ndense equivalent for 32-bit keys: 2^32 counters = 32 GB — the"
            " allocation\nSection 2 called impractical; the hash table "
            "tracks the same keys in KBs.\n");
}

void BM_SparseObserve(benchmark::State& state) {
  stat4::SparseFreqDist d(static_cast<std::size_t>(state.range(0)), 2);
  netsim::Rng rng(7);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 256; ++i) keys.push_back(rng.next());
  std::size_t i = 0;
  for (auto _ : state) {
    d.observe(keys[i++ & 255]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseObserve)->Arg(1024)->Arg(65536);

void BM_SparseObserveFourProbes(benchmark::State& state) {
  stat4::SparseFreqDist d(1024, 4);
  netsim::Rng rng(7);
  std::vector<std::uint64_t> keys;
  for (int i = 0; i < 256; ++i) keys.push_back(rng.next());
  std::size_t i = 0;
  for (auto _ : state) {
    d.observe(keys[i++ & 255]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SparseObserveFourProbes);

}  // namespace

int main(int argc, char** argv) {
  print_sparse_table();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}

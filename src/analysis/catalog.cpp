#include "analysis/catalog.hpp"

#include <stdexcept>

#include "p4sim/craft.hpp"
#include "sketch/apps.hpp"
#include "stat4/types.hpp"
#include "stat4p4/apps.hpp"

namespace analysis {

namespace {

using stat4p4::FreqBindingSpec;
using stat4p4::MonitorApp;

FreqBindingSpec per24_binding() {
  FreqBindingSpec spec;
  spec.dst_prefix = p4sim::ipv4(10, 0, 0, 0);
  spec.dst_prefix_len = 8;
  spec.dist = 1;
  spec.shift = 8;
  return spec;
}

/// The Section 4 case study, exactly as examples/emit_p4_source.cpp emits
/// it: forwarding, an 8 ms x 100-interval rate monitor, and a per-/24
/// frequency binding.
void configure_case_study(MonitorApp& app) {
  app.install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
  app.install_rate_monitor(
      p4sim::ipv4(10, 0, 0, 0), 8, 0,
      8 * static_cast<std::uint64_t>(stat4::kMillisecond), 100, 8);
  app.install_freq_binding(per24_binding());
}

/// The Table 1 SYN-flood binding: ternary match on the TCP SYN bit,
/// frequencies keyed by the low destination-address byte.
FreqBindingSpec syn_flood_binding() {
  FreqBindingSpec spec;
  spec.protocol = 6;  // TCP
  spec.flag_mask = 0x02;
  spec.flag_value = 0x02;  // SYN set
  spec.priority = 10;
  spec.dist = 1;
  spec.mask = 0xFF;
  return spec;
}

template <typename App>
std::shared_ptr<p4sim::P4Switch> hold(std::shared_ptr<App> app) {
  p4sim::P4Switch* sw = &app->sw();
  return {std::move(app), sw};
}

}  // namespace

const std::vector<ExampleApp>& example_apps() {
  static const std::vector<ExampleApp> apps = {
      {"echo", "Figure 5 validation program: echo frames annotated with "
               "N/Xsum/Xsumsq/var/sd"},
      {"case_study", "Section 4 case study: forwarding + rate monitor + "
                     "per-/24 frequency binding"},
      {"case_study_nomul", "case study built for a no-multiplier target "
                           "(shift-based squaring)"},
      {"syn_flood", "Table 1 SYN flood: ternary TCP-flag frequency binding"},
      {"sparse", "hash-table tracker over whole /32 source addresses"},
      {"entropy", "entropy binding: alert on frequency concentration"},
      {"value", "value-sample binding over packet lengths"},
      {"mitigation", "in-switch drop of the captured hot value"},
      {"reroute", "in-switch rerouting of a surge to a backup port"},
      {"sketch_hh", "count-min sketch with heavy-hitter threshold digests"},
      {"sketch_changer", "count-sketch over interval windows with "
                         "heavy-changer digests"},
      {"sketch_netwide", "invertible sketch + epoch ticks for controller-"
                         "side network-wide merge/decode"},
  };
  return apps;
}

std::shared_ptr<const p4sim::P4Switch> build_example(const std::string& name) {
  return build_example_mutable(name);
}

std::shared_ptr<p4sim::P4Switch> build_example_mutable(
    const std::string& name) {
  if (name == "echo") {
    return hold(std::make_shared<stat4p4::EchoApp>());
  }
  if (name == "case_study") {
    auto app = std::make_shared<MonitorApp>();
    configure_case_study(*app);
    return hold(std::move(app));
  }
  if (name == "case_study_nomul") {
    auto app = std::make_shared<MonitorApp>(
        stat4p4::Stat4Config{4, 256, 2}, p4sim::AluProfile::hardware_no_mul());
    configure_case_study(*app);
    return hold(std::move(app));
  }
  if (name == "syn_flood") {
    auto app = std::make_shared<MonitorApp>();
    app->install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
    app->install_freq_binding(syn_flood_binding());
    return hold(std::move(app));
  }
  if (name == "sparse") {
    auto app = std::make_shared<MonitorApp>();
    FreqBindingSpec spec = per24_binding();
    spec.shift = 0;
    spec.mask = ~std::uint64_t{0};  // whole address into the hash tracker
    app->install_sparse_binding(spec);
    return hold(std::move(app));
  }
  if (name == "entropy") {
    auto app = std::make_shared<MonitorApp>();
    app->install_entropy_binding(per24_binding(), 2u << 8);
    return hold(std::move(app));
  }
  if (name == "value") {
    auto app = std::make_shared<MonitorApp>();
    FreqBindingSpec spec = per24_binding();
    spec.median = false;
    app->install_value_binding(spec);
    return hold(std::move(app));
  }
  if (name == "mitigation") {
    auto app = std::make_shared<MonitorApp>();
    app->install_freq_binding(per24_binding());
    app->install_mitigation(per24_binding());
    return hold(std::move(app));
  }
  if (name == "reroute") {
    auto app = std::make_shared<MonitorApp>();
    app->install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
    app->install_freq_binding(per24_binding());
    app->install_reroute(per24_binding(), 7);
    return hold(std::move(app));
  }
  if (name == "sketch_hh") {
    // Heavy hitters over whole destination addresses: alert at 64 packets.
    auto app =
        std::make_shared<sketch::SketchApp>(sketch::SketchKind::kCountMin);
    app->install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
    app->install_sketch(0, 0, 0, 0xFFFFFFFFull, 64);
    return hold(std::move(app));
  }
  if (name == "sketch_changer") {
    // Heavy changers per /24 across 256-packet interval windows.
    auto app = std::make_shared<sketch::SketchApp>(
        sketch::SketchKind::kCountSketch);
    app->install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
    app->install_sketch(0, 0, 8, 0xFFFFFFull, 24);
    return hold(std::move(app));
  }
  if (name == "sketch_netwide") {
    // Per-switch invertible sketch snapshots, merged and decoded by
    // control::SketchAggregator at every epoch tick.
    auto app = std::make_shared<sketch::SketchApp>(
        sketch::SketchKind::kInvertible);
    app->install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
    app->install_sketch(0, 0, 0, 0xFFFFFFFFull, 0);
    return hold(std::move(app));
  }
  throw std::invalid_argument("analysis: unknown example app '" + name + "'");
}

}  // namespace analysis

// PassManager: runs the transform passes (passes.hpp) to fixpoint over a
// program or a fully configured switch.
//
// Each iteration applies every enabled pass in canonical order — constprop,
// strength, cse, dce, then (switch-level) pack — to every registered
// action, under the cross-stage PassContext derived from the pipeline:
// which temps an earlier stage may have written (not zero on entry) and
// which temps a later stage may read (must survive).  Actions are treated
// as dispatchable from every table stage, because the controller can
// table_add any action at runtime — so every rewrite stays valid under
// future table mutations.  Iterations repeat until a full round applies no
// rewrite (the fixpoint) or the iteration budget runs out (S4-OPT-007).
//
// Results carry per-pass rewrite statistics, S4-OPT diagnostics in the
// shared DiagnosticEngine, and a static cost report (instructions, stages,
// temps, registers, state bytes) measured before and after — the artifact
// stat4_opt/stat4_lint expose and scripts/bench_compare.py tracks.
#pragma once

#include <cstddef>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/passes.hpp"
#include "analysis/verifier.hpp"
#include "p4sim/action.hpp"
#include "p4sim/switch.hpp"

namespace analysis {

/// Canonical pass order; `passes` selections run in this order regardless
/// of how they are listed.
[[nodiscard]] const std::vector<std::string>& pass_names();

/// Per-pass translation validation (validate.hpp) as a post-condition.
enum class ValidateMode : std::uint8_t {
  kOff,
  kOn,      ///< validate every pass; sampling fallback is a warning
  kStrict,  ///< sampling fallback and budget exhaustion are errors
};

struct PassManagerOptions {
  TargetProfile profile = TargetProfile::bmv2();
  /// Subset of pass_names() to run; empty = all.  Unknown names throw
  /// std::invalid_argument.
  std::vector<std::string> passes;
  /// Fixpoint iteration budget; exceeded => S4-OPT-007 warning.
  std::size_t max_iterations = 8;
  /// Re-prove every pass's output equivalent to its input (S4-TV-*
  /// diagnostics); refuted rewrites are reverted, not installed.
  ValidateMode validate = ValidateMode::kOff;
  /// Concrete valuations drawn per residual obligation set.
  std::size_t validate_samples = 4096;
  /// TEST HOOK: runs on each pass's output (program, pass name) before it
  /// is validated — lets tests break a pass (drop a store, flip an opcode)
  /// and assert the validator refutes it.  Setting it forces validation on.
  std::function<void(p4sim::Program&, const std::string&)> post_pass_mutation;
};

/// Static cost of a pipeline — the resource axes the paper budgets.
struct CostSummary {
  std::size_t instructions = 0;  ///< over pipeline-reachable actions
  std::size_t stages = 0;
  std::size_t temps = 0;      ///< PHV scratch words (highest temp + 1)
  std::size_t registers = 0;  ///< register arrays referenced
  std::size_t state_bytes = 0;
};

/// Cost of the currently reachable pipeline: direct-stage actions plus
/// every action a table stage can currently dispatch (live entries and the
/// default), counted once each.
[[nodiscard]] CostSummary measure_cost(const p4sim::P4Switch& sw);
/// Program-level cost (stages/registers/state not applicable).
[[nodiscard]] CostSummary measure_cost(const p4sim::Program& program);

struct PassStats {
  std::string pass;
  std::size_t rewrites = 0;
};

/// Evidence-tier tally of the per-pass translation validation.
struct ValidationStats {
  std::size_t checked = 0;  ///< (pass, program) pairs validated
  std::size_t proved = 0;   ///< closed by canonicalization alone
  std::size_t sampled = 0;  ///< needed the randomized-valuation fallback
  std::size_t refuted = 0;  ///< disproven (rewrite reverted, S4-TV error)
  std::size_t budget = 0;   ///< DAG budget exhausted, nothing proven
  std::size_t packs = 0;    ///< stage-pack merges validated
};

struct OptimizeResult {
  DiagnosticEngine diags;              ///< S4-OPT/S4-TV diagnostics, sorted
  std::vector<PassStats> pass_stats;   ///< canonical order, enabled passes
  CostSummary before;
  CostSummary after;
  ValidationStats validation;          ///< zeros when validation is off
  std::size_t iterations = 0;
  bool fixpoint = false;

  [[nodiscard]] std::size_t total_rewrites() const noexcept;
  [[nodiscard]] bool changed() const noexcept { return total_rewrites() != 0; }
};

/// Optimizes every action of the switch in place (plus the pipeline, when
/// stage packing is enabled).  The switch keeps working mid-stream: rewrites
/// go through P4Switch::replace_action / set_pipeline, which invalidate the
/// compiled fast path.
OptimizeResult optimize_switch(p4sim::P4Switch& sw,
                               const PassManagerOptions& options = {});

/// Optimizes one standalone program (context: all temps zero on entry,
/// nothing live out — the contract of a program that fills a whole stage).
OptimizeResult optimize_program(p4sim::Program& program,
                                const PassManagerOptions& options = {});

/// Same, with the register declarations the program runs against — enables
/// width/bounds-aware rewrites (CSE store-to-load forwarding) and gives
/// validation the exact register model.
OptimizeResult optimize_program(p4sim::Program& program,
                                const p4sim::RegisterFile& registers,
                                const PassManagerOptions& options = {});

/// Renders `{"instructions":{"before":N,"after":M},...}` for the cost pair —
/// the schema stat4_opt --json and stat4_lint --json share.
void render_cost_json(std::ostream& os, const CostSummary& before,
                      const CostSummary& after);

}  // namespace analysis

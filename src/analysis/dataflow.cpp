#include "analysis/dataflow.hpp"

#include <algorithm>
#include <array>

#include "stat4/sparse_freq.hpp"

namespace analysis {

using p4sim::Instruction;
using p4sim::Op;
using p4sim::Program;
using p4sim::TempId;
using p4sim::Word;

namespace {

constexpr std::size_t kOpCount = static_cast<std::size_t>(Op::kDigest) + 1;

std::array<OpEffects, kOpCount> build_effects() {
  std::array<OpEffects, kOpCount> fx{};
  auto at = [](std::array<OpEffects, kOpCount>& t, Op op) -> OpEffects& {
    return t[static_cast<std::size_t>(op)];
  };
  // Value producers from immediates / action data.
  at(fx, Op::kConst) = {.writes_dst = true, .pure = true};
  at(fx, Op::kParam) = {.writes_dst = true};  // reads action data, not pure
  // Unary over a.
  for (Op op : {Op::kMov, Op::kNot}) {
    at(fx, op) = {.writes_dst = true, .reads_a = true, .pure = true};
  }
  // Binary over a, b.
  for (Op op : {Op::kAdd, Op::kSub, Op::kMul, Op::kShl, Op::kShr, Op::kAnd,
                Op::kOr, Op::kXor, Op::kEq, Op::kNe, Op::kLt, Op::kGt,
                Op::kLe, Op::kGe}) {
    at(fx, op) = {.writes_dst = true, .reads_a = true, .reads_b = true,
                  .pure = true};
  }
  at(fx, Op::kSelect) = {.writes_dst = true, .reads_a = true, .reads_b = true,
                         .reads_c = true, .pure = true};
  // Hash externs: deterministic pure mixes (stat4::sparse_hash1/2).
  for (Op op : {Op::kHash1, Op::kHash2}) {
    at(fx, op) = {.writes_dst = true, .reads_a = true, .pure = true};
  }
  // Packet / register state.
  at(fx, Op::kLoadField) = {.writes_dst = true, .reads_field = true};
  at(fx, Op::kStoreField) = {.reads_a = true, .writes_field = true};
  at(fx, Op::kLoadReg) = {.writes_dst = true, .reads_a = true,
                          .reads_reg = true};
  at(fx, Op::kStoreReg) = {.reads_a = true, .reads_b = true,
                           .writes_reg = true};
  // kDigest reads a, b, c AND dst (the payload is [t[a], t[b], t[dst]],
  // gated on t[c] != 0) and writes nothing.
  at(fx, Op::kDigest) = {.reads_a = true, .reads_b = true, .reads_c = true,
                         .reads_dst = true, .digest = true};
  return fx;
}

}  // namespace

const OpEffects& op_effects(Op op) noexcept {
  static const std::array<OpEffects, kOpCount> kTable = build_effects();
  return kTable[static_cast<std::size_t>(op)];
}

bool has_side_effect(Op op) noexcept {
  const OpEffects& fx = op_effects(op);
  return fx.writes_field || fx.writes_reg || fx.digest;
}

bool ProgramFacts::registers_conflict(const ProgramFacts& other) const {
  for (const p4sim::RegisterId r : regs_read) {
    if (other.touches_register(r)) return true;
  }
  for (const p4sim::RegisterId r : regs_written) {
    if (other.touches_register(r)) return true;
  }
  return false;
}

ProgramFacts collect_facts(const Program& program) {
  ProgramFacts facts;
  auto note_temp = [&facts](TempId t) {
    facts.max_temp_plus_one =
        std::max(facts.max_temp_plus_one, static_cast<std::size_t>(t) + 1);
  };
  auto read = [&facts, &note_temp](TempId t) {
    if (!facts.written.test(t)) facts.upward_exposed.set(t);
    note_temp(t);
  };
  for (const Instruction& ins : program.code) {
    const OpEffects& fx = op_effects(ins.op);
    if (fx.reads_a) read(ins.a);
    if (fx.reads_b) read(ins.b);
    if (fx.reads_c) read(ins.c);
    if (fx.reads_dst) read(ins.dst);
    if (fx.reads_field) facts.fields_read.set(static_cast<std::size_t>(ins.field));
    if (fx.writes_field) {
      facts.fields_written.set(static_cast<std::size_t>(ins.field));
    }
    if (fx.reads_reg) facts.regs_read.insert(ins.reg);
    if (fx.writes_reg) facts.regs_written.insert(ins.reg);
    if (fx.writes_dst) {
      facts.written.set(ins.dst);
      note_temp(ins.dst);
    }
  }
  return facts;
}

std::vector<TempSet> liveness_after(const Program& program,
                                    const TempSet& live_out) {
  std::vector<TempSet> after(program.code.size());
  TempSet live = live_out;
  for (std::size_t i = program.code.size(); i-- > 0;) {
    after[i] = live;
    const Instruction& ins = program.code[i];
    const OpEffects& fx = op_effects(ins.op);
    if (fx.writes_dst) live.reset(ins.dst);
    if (fx.reads_a) live.set(ins.a);
    if (fx.reads_b) live.set(ins.b);
    if (fx.reads_c) live.set(ins.c);
    if (fx.reads_dst) live.set(ins.dst);
  }
  return after;
}

std::optional<Word> fold_instruction(const Instruction& ins, Word a, Word b,
                                     Word c) {
  switch (ins.op) {
    case Op::kConst: return ins.imm;
    case Op::kMov: return a;
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kMul: return a * b;
    case Op::kShl: return a << (b & 63);
    case Op::kShr: return a >> (b & 63);
    case Op::kAnd: return a & b;
    case Op::kOr: return a | b;
    case Op::kXor: return a ^ b;
    case Op::kNot: return ~a;
    case Op::kEq: return a == b ? 1 : 0;
    case Op::kNe: return a != b ? 1 : 0;
    case Op::kLt: return a < b ? 1 : 0;
    case Op::kGt: return a > b ? 1 : 0;
    case Op::kLe: return a <= b ? 1 : 0;
    case Op::kGe: return a >= b ? 1 : 0;
    case Op::kSelect: return a != 0 ? b : c;
    case Op::kHash1: return stat4::sparse_hash1(a);
    case Op::kHash2: return stat4::sparse_hash2(a);
    default: return std::nullopt;
  }
}

Instruction make_const(TempId dst, Word v) {
  Instruction ins;
  ins.op = Op::kConst;
  ins.dst = dst;
  ins.imm = v;
  return ins;
}

Instruction make_mov(TempId dst, TempId src) {
  Instruction ins;
  ins.op = Op::kMov;
  ins.dst = dst;
  ins.a = src;
  return ins;
}

bool same_instruction(const Instruction& lhs, const Instruction& rhs) {
  if (lhs.op != rhs.op) return false;
  const OpEffects& fx = op_effects(lhs.op);
  if ((fx.writes_dst || fx.reads_dst) && lhs.dst != rhs.dst) return false;
  if (fx.reads_a && lhs.a != rhs.a) return false;
  if (fx.reads_b && lhs.b != rhs.b) return false;
  if (fx.reads_c && lhs.c != rhs.c) return false;
  if ((lhs.op == Op::kConst || lhs.op == Op::kParam ||
       lhs.op == Op::kDigest) &&
      lhs.imm != rhs.imm) {
    return false;
  }
  if ((fx.reads_field || fx.writes_field) && lhs.field != rhs.field) {
    return false;
  }
  if ((fx.reads_reg || fx.writes_reg) && lhs.reg != rhs.reg) return false;
  return true;
}

}  // namespace analysis

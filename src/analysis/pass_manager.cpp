#include "analysis/pass_manager.hpp"

#include <algorithm>
#include <map>
#include <optional>
#include <ostream>
#include <set>
#include <stdexcept>
#include <utility>

#include "analysis/dataflow.hpp"
#include "analysis/validate.hpp"
#include "p4sim/register_file.hpp"
#include "p4sim/table.hpp"

namespace analysis {

using p4sim::ActionId;
using p4sim::P4Switch;
using p4sim::Program;
using p4sim::RegisterId;

namespace {

/// Which of the canonical passes are enabled.
struct PassSet {
  bool constprop = false;
  bool strength = false;
  bool cse = false;
  bool dce = false;
  bool pack = false;
};

PassSet resolve_passes(const std::vector<std::string>& names) {
  PassSet set;
  if (names.empty()) {
    set.constprop = set.strength = set.cse = set.dce = set.pack = true;
    return set;
  }
  for (const std::string& n : names) {
    if (n == "constprop") {
      set.constprop = true;
    } else if (n == "strength") {
      set.strength = true;
    } else if (n == "cse") {
      set.cse = true;
    } else if (n == "dce") {
      set.dce = true;
    } else if (n == "pack") {
      set.pack = true;
    } else {
      throw std::invalid_argument("unknown pass: " + n);
    }
  }
  return set;
}

const char* rule_for_pass(const std::string& pass) {
  if (pass == "constprop") return "S4-OPT-001";
  if (pass == "dce") return "S4-OPT-002";
  if (pass == "cse") return "S4-OPT-003";
  if (pass == "strength") return "S4-OPT-004";
  return "S4-OPT-005";  // pack
}

/// Cross-stage temp context for every registered action, computed
/// pessimistically: a table stage may dispatch ANY action (the controller
/// can table_add at runtime), so each table stage contributes the union of
/// all actions' written / upward-exposed sets at its pipeline position.
struct ActionContexts {
  std::vector<PassContext> ctx;
  std::vector<bool> shared;  ///< temps genuinely cross this action's bounds
};

ActionContexts compute_contexts(const P4Switch& sw) {
  const std::size_t n = sw.action_count();
  std::vector<ProgramFacts> facts;
  facts.reserve(n);
  TempSet all_written;
  TempSet all_exposed;
  for (ActionId id = 0; id < n; ++id) {
    facts.push_back(collect_facts(sw.action(id)));
    all_written |= facts.back().written;
    all_exposed |= facts.back().upward_exposed;
  }

  const auto& pipe = sw.pipeline();
  const std::size_t stages = pipe.size();
  const TempSet empty;
  auto stage_written = [&](std::size_t si) -> const TempSet& {
    if (pipe[si].table) return all_written;
    return pipe[si].action ? facts[*pipe[si].action].written : empty;
  };
  auto stage_exposed = [&](std::size_t si) -> const TempSet& {
    if (pipe[si].table) return all_exposed;
    return pipe[si].action ? facts[*pipe[si].action].upward_exposed : empty;
  };

  // prefix[si] = temps some stage BEFORE si may write;
  // suffix[si] = temps some stage AT OR AFTER si may read before writing.
  std::vector<TempSet> prefix(stages + 1);
  std::vector<TempSet> suffix(stages + 1);
  for (std::size_t si = 0; si < stages; ++si) {
    prefix[si + 1] = prefix[si] | stage_written(si);
  }
  for (std::size_t si = stages; si-- > 0;) {
    suffix[si] = suffix[si + 1] | stage_exposed(si);
  }

  ActionContexts out;
  out.ctx.resize(n);
  out.shared.assign(n, false);
  for (std::size_t si = 0; si < stages; ++si) {
    if (pipe[si].action) {
      PassContext& c = out.ctx[*pipe[si].action];
      c.dirty_on_entry |= prefix[si];
      c.live_out |= suffix[si + 1];
    }
    if (pipe[si].table) {
      for (ActionId id = 0; id < n; ++id) {
        out.ctx[id].dirty_on_entry |= prefix[si];
        out.ctx[id].live_out |= suffix[si + 1];
      }
    }
  }
  for (ActionId id = 0; id < n; ++id) {
    out.ctx[id].registers = &sw.registers();
    // "Shared" = the context actually constrains rewrites: the action reads
    // temps an earlier stage may have written, or a later stage reads temps
    // past this one.  Self-contained builder programs never trip this.
    const bool reads_dirty =
        (facts[id].upward_exposed & out.ctx[id].dirty_on_entry).any();
    out.shared[id] = reads_dirty || out.ctx[id].live_out.any();
  }
  return out;
}

void add_register_costs(const P4Switch& sw, const std::set<RegisterId>& regs,
                        CostSummary& cost) {
  cost.registers = regs.size();
  for (const RegisterId r : regs) {
    const p4sim::RegisterArrayInfo& info = sw.registers().info(r);
    cost.state_bytes += static_cast<std::size_t>(info.size) *
                        ((static_cast<std::size_t>(info.width_bits) + 7) / 8);
  }
}

/// Per-pass translation validation: re-proves each pass's output against
/// its input, reverts refuted rewrites, tallies evidence tiers, and turns
/// outcomes into S4-TV diagnostics (strict mode escalates the sampling
/// fallback and budget exhaustion from warning to error).
class PassValidator {
 public:
  PassValidator(const PassManagerOptions& options,
                const p4sim::RegisterFile* registers, OptimizeResult& res)
      : options_(options), registers_(registers), res_(res) {}

  [[nodiscard]] bool enabled() const {
    return options_.validate != ValidateMode::kOff ||
           static_cast<bool>(options_.post_pass_mutation);
  }

  /// Validates `after` (the pass output, possibly test-mutated via the
  /// post_pass_mutation hook) against `before`.  Returns false when the
  /// rewrite was refuted — the caller must revert to `before`.
  [[nodiscard]] bool check_rewrite(const Program& before, Program& after,
                                   const PassContext& ctx,
                                   const std::string& pass) {
    if (options_.post_pass_mutation) options_.post_pass_mutation(after, pass);
    const ValidationOutcome out =
        validate_rewrite(before, after, make_opts(ctx));
    record(out, pass, after.name, "S4-TV-001");
    return out.method != ValidationMethod::kRefuted;
  }

  /// Validates one stage-pack merge: the packed program against first-then-
  /// second concatenation, plus the commutation claim when the stages are
  /// state-disjoint.  Returns false when the concatenation was refuted.
  [[nodiscard]] bool check_pack(const Program& first, const Program& second,
                                const Program& packed, const PassContext& ctx) {
    ++res_.validation.packs;
    Program subject = packed;
    if (options_.post_pass_mutation) {
      options_.post_pass_mutation(subject, "pack");
    }
    const ValidationOutcome conc =
        validate_pack(first, second, subject, make_opts(ctx));
    record(conc, "pack", subject.name, "S4-TV-003");
    const ValidationOutcome comm =
        validate_commute(first, second, make_opts(ctx));
    record(comm, "pack(commute)", subject.name, "S4-TV-003");
    return conc.method != ValidationMethod::kRefuted;
  }

  void note_summary() {
    if (!enabled()) return;
    const ValidationStats& v = res_.validation;
    res_.diags.report(
        "S4-TV-004", Severity::kNote,
        "translation validation: " + std::to_string(v.checked) +
            " rewrite(s) checked, " + std::to_string(v.proved) + " proved, " +
            std::to_string(v.sampled) + " sampled, " +
            std::to_string(v.refuted) + " refuted, " +
            std::to_string(v.budget) + " budget-capped (" +
            std::to_string(v.packs) + " pack merge(s))",
        SourceLoc{});
  }

 private:
  [[nodiscard]] ValidateOptions make_opts(const PassContext& ctx) const {
    ValidateOptions v;
    v.registers = registers_;
    v.dirty_on_entry = ctx.dirty_on_entry;
    v.live_out = ctx.live_out;
    v.samples = options_.validate_samples;
    return v;
  }

  void record(const ValidationOutcome& out, const std::string& pass,
              const std::string& program, const char* refute_rule) {
    if (out.method == ValidationMethod::kInapplicable) return;  // no claim
    ++res_.validation.checked;
    SourceLoc loc;
    loc.program = program;
    const bool strict = options_.validate == ValidateMode::kStrict;
    switch (out.method) {
      case ValidationMethod::kProved:
        ++res_.validation.proved;
        break;
      case ValidationMethod::kSampled:
        ++res_.validation.sampled;
        res_.diags.report(
            "S4-TV-002", strict ? Severity::kError : Severity::kWarning,
            pass + ": equivalence established only by randomized sampling (" +
                std::to_string(out.residual) +
                " residual obligation(s) of " +
                std::to_string(out.obligations) + ")",
            loc);
        break;
      case ValidationMethod::kRefuted:
        ++res_.validation.refuted;
        res_.diags.report(refute_rule, Severity::kError,
                          pass + ": rewrite refuted, reverted — " +
                              out.counterexample->render(),
                          loc);
        break;
      case ValidationMethod::kBudget:
        ++res_.validation.budget;
        res_.diags.report(
            "S4-TV-005", strict ? Severity::kError : Severity::kWarning,
            pass + ": symbolic execution budget exceeded (" +
                std::to_string(out.dag_nodes) + " DAG nodes); nothing proven",
            loc);
        break;
      case ValidationMethod::kInapplicable:
        break;
    }
  }

  const PassManagerOptions& options_;
  const p4sim::RegisterFile* registers_;
  OptimizeResult& res_;
};

void note_pass_totals(
    const std::map<std::pair<std::string, std::string>, std::size_t>& counts,
    DiagnosticEngine& diags) {
  for (const auto& [key, n] : counts) {
    const auto& [pass, program] = key;
    SourceLoc loc;
    loc.program = program;
    diags.report(rule_for_pass(pass), Severity::kNote,
                 pass + " applied " + std::to_string(n) + " rewrite(s)", loc);
  }
}

}  // namespace

const std::vector<std::string>& pass_names() {
  static const std::vector<std::string> kNames = {"constprop", "strength",
                                                  "cse", "dce", "pack"};
  return kNames;
}

std::size_t OptimizeResult::total_rewrites() const noexcept {
  std::size_t total = 0;
  for (const PassStats& s : pass_stats) total += s.rewrites;
  return total;
}

CostSummary measure_cost(const P4Switch& sw) {
  CostSummary cost;
  cost.stages = sw.pipeline().size();

  std::set<ActionId> reachable;
  for (const P4Switch::Stage& stage : sw.pipeline()) {
    if (stage.action) reachable.insert(*stage.action);
    if (stage.table) {
      const p4sim::MatchActionTable& table = sw.table(*stage.table);
      reachable.insert(table.default_action());
      for (const p4sim::TableEntry* entry : table.live_entries()) {
        reachable.insert(entry->action);
      }
    }
  }

  std::set<RegisterId> regs;
  for (const ActionId id : reachable) {
    const Program& program = sw.action(id);
    cost.instructions += program.code.size();
    const ProgramFacts facts = collect_facts(program);
    cost.temps = std::max(cost.temps, facts.max_temp_plus_one);
    regs.insert(facts.regs_read.begin(), facts.regs_read.end());
    regs.insert(facts.regs_written.begin(), facts.regs_written.end());
  }
  add_register_costs(sw, regs, cost);
  return cost;
}

CostSummary measure_cost(const Program& program) {
  CostSummary cost;
  cost.instructions = program.code.size();
  cost.stages = 1;
  const ProgramFacts facts = collect_facts(program);
  cost.temps = facts.max_temp_plus_one;
  std::set<RegisterId> regs = facts.regs_read;
  regs.insert(facts.regs_written.begin(), facts.regs_written.end());
  cost.registers = regs.size();
  return cost;
}

OptimizeResult optimize_switch(P4Switch& sw,
                               const PassManagerOptions& options) {
  const PassSet enabled = resolve_passes(options.passes);
  OptimizeResult res;
  res.before = measure_cost(sw);
  PassValidator validator(options, &sw.registers(), res);

  // (pass, program) -> cumulative rewrites, for the S4-OPT notes.
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  std::map<std::string, std::size_t> totals;
  std::set<std::string> warned_shared;
  auto account = [&](const char* pass, const std::string& program,
                     std::size_t n) {
    if (n == 0) return;
    counts[{pass, program}] += n;
    totals[pass] += n;
  };

  for (std::size_t round = 0; round < options.max_iterations; ++round) {
    const ActionContexts actx = compute_contexts(sw);
    for (ActionId id = 0; id < sw.action_count(); ++id) {
      if (!actx.shared[id]) continue;
      const std::string& name = sw.action(id).name;
      if (!warned_shared.insert(name).second) continue;
      SourceLoc loc;
      loc.program = name;
      res.diags.report(
          "S4-OPT-006", Severity::kWarning,
          "temps cross this action's stage boundary; constant seeding and "
          "temp compaction are suppressed",
          loc);
    }

    std::size_t round_rewrites = 0;
    for (ActionId id = 0; id < sw.action_count(); ++id) {
      Program program = sw.action(id);  // work on a copy, install on change
      const PassContext& ctx = actx.ctx[id];
      std::size_t n = 0;
      // Runs one pass, then (when validation is on) re-proves its output;
      // a refuted rewrite is reverted and contributes no rewrites.
      auto run_checked = [&](const char* pass,
                             std::size_t (*fn)(Program&, const PassContext&)) {
        std::optional<Program> snapshot;
        if (validator.enabled()) snapshot = program;
        std::size_t k = fn(program, ctx);
        if (snapshot && (k != 0 || options.post_pass_mutation) &&
            !validator.check_rewrite(*snapshot, program, ctx, pass)) {
          program = std::move(*snapshot);
          k = 0;
        }
        account(pass, program.name, k);
        n += k;
      };
      if (enabled.constprop) run_checked("constprop", run_constprop);
      if (enabled.strength) run_checked("strength", run_strength_reduction);
      if (enabled.cse) run_checked("cse", run_cse);
      if (enabled.dce) run_checked("dce", run_dce);
      if (n != 0) {
        // Rewrites invalidate the builder-recorded approx-span instruction
        // ranges; drop them rather than ship stale accuracy metadata.
        program.approx_spans.clear();
        sw.replace_action(id, std::move(program));
      }
      round_rewrites += n;
    }
    if (enabled.pack) {
      // Snapshot the pre-pack pipeline so each merged stage can be diffed
      // back to the pair of stages it replaced — and recompute contexts
      // first: the per-action rewrites above may have renamed temps, so the
      // round-start contexts are stale for the packing proof.
      std::optional<std::vector<P4Switch::Stage>> pre_pipe;
      std::optional<ActionContexts> pre_ctx;
      std::size_t pre_actions = 0;
      if (validator.enabled()) {
        pre_pipe = sw.pipeline();
        pre_actions = sw.action_count();
        pre_ctx = compute_contexts(sw);
      }
      std::size_t k = run_stage_packing(sw, options.profile);
      if (k != 0 && validator.enabled()) {
        // Diff walk: stage packing only creates pairwise merges per call,
        // so a new stage dispatching an action registered by this call maps
        // to exactly the next two pre-pack stages.
        bool revert = false;
        std::size_t old_i = 0;
        for (const P4Switch::Stage& st : sw.pipeline()) {
          if (st.action && *st.action >= pre_actions) {
            const P4Switch::Stage& s1 = (*pre_pipe)[old_i];
            const P4Switch::Stage& s2 = (*pre_pipe)[old_i + 1];
            PassContext pack_ctx;
            pack_ctx.dirty_on_entry = pre_ctx->ctx[*s1.action].dirty_on_entry;
            pack_ctx.live_out = pre_ctx->ctx[*s2.action].live_out;
            pack_ctx.registers = &sw.registers();
            if (!validator.check_pack(sw.action(*s1.action),
                                      sw.action(*s2.action),
                                      sw.action(*st.action), pack_ctx)) {
              revert = true;
            }
            old_i += 2;
          } else {
            ++old_i;
          }
        }
        if (revert) {
          // A disproven merge never ships: restore the unpacked pipeline
          // (the merged actions stay registered but undispatched).
          sw.set_pipeline(std::move(*pre_pipe));
          k = 0;
        }
      }
      account("pack", sw.name(), k);
      round_rewrites += k;
    }
    ++res.iterations;
    if (round_rewrites == 0) {
      res.fixpoint = true;
      break;
    }
  }

  if (!res.fixpoint) {
    res.diags.report("S4-OPT-007", Severity::kWarning,
                     "fixpoint not reached within " +
                         std::to_string(options.max_iterations) +
                         " iteration(s)",
                     SourceLoc{});
  }
  note_pass_totals(counts, res.diags);
  validator.note_summary();
  res.diags.sort();

  for (const std::string& pass : pass_names()) {
    const bool on = (pass == "constprop" && enabled.constprop) ||
                    (pass == "strength" && enabled.strength) ||
                    (pass == "cse" && enabled.cse) ||
                    (pass == "dce" && enabled.dce) ||
                    (pass == "pack" && enabled.pack);
    if (on) res.pass_stats.push_back({pass, totals[pass]});
  }
  res.after = measure_cost(sw);
  return res;
}

namespace {

OptimizeResult optimize_program_impl(Program& program,
                                     const p4sim::RegisterFile* registers,
                                     const PassManagerOptions& options) {
  PassSet enabled = resolve_passes(options.passes);
  enabled.pack = false;  // pipeline-level; meaningless for one program
  OptimizeResult res;
  res.before = measure_cost(program);
  PassValidator validator(options, registers, res);

  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  std::map<std::string, std::size_t> totals;
  PassContext ctx;  // standalone: zero on entry, nothing live out
  ctx.registers = registers;
  auto account = [&](const char* pass, std::size_t n) {
    if (n == 0) return;
    counts[{pass, program.name}] += n;
    totals[pass] += n;
  };

  for (std::size_t round = 0; round < options.max_iterations; ++round) {
    std::size_t round_rewrites = 0;
    auto run_checked = [&](const char* pass,
                           std::size_t (*fn)(Program&, const PassContext&)) {
      std::optional<Program> snapshot;
      if (validator.enabled()) snapshot = program;
      std::size_t k = fn(program, ctx);
      if (snapshot && (k != 0 || options.post_pass_mutation) &&
          !validator.check_rewrite(*snapshot, program, ctx, pass)) {
        program = std::move(*snapshot);
        k = 0;
      }
      account(pass, k);
      round_rewrites += k;
    };
    if (enabled.constprop) run_checked("constprop", run_constprop);
    if (enabled.strength) run_checked("strength", run_strength_reduction);
    if (enabled.cse) run_checked("cse", run_cse);
    if (enabled.dce) run_checked("dce", run_dce);
    ++res.iterations;
    if (round_rewrites == 0) {
      res.fixpoint = true;
      break;
    }
    // Any rewrite invalidates builder-recorded approx-span ranges.
    program.approx_spans.clear();
  }

  if (!res.fixpoint) {
    SourceLoc loc;
    loc.program = program.name;
    res.diags.report("S4-OPT-007", Severity::kWarning,
                     "fixpoint not reached within " +
                         std::to_string(options.max_iterations) +
                         " iteration(s)",
                     loc);
  }
  note_pass_totals(counts, res.diags);
  validator.note_summary();
  res.diags.sort();

  for (const std::string& pass : pass_names()) {
    const bool on = (pass == "constprop" && enabled.constprop) ||
                    (pass == "strength" && enabled.strength) ||
                    (pass == "cse" && enabled.cse) ||
                    (pass == "dce" && enabled.dce);
    if (on) res.pass_stats.push_back({pass, totals[pass]});
  }
  res.after = measure_cost(program);
  return res;
}

}  // namespace

OptimizeResult optimize_program(Program& program,
                                const PassManagerOptions& options) {
  return optimize_program_impl(program, nullptr, options);
}

OptimizeResult optimize_program(Program& program,
                                const p4sim::RegisterFile& registers,
                                const PassManagerOptions& options) {
  return optimize_program_impl(program, &registers, options);
}

void render_cost_json(std::ostream& os, const CostSummary& before,
                      const CostSummary& after) {
  auto axis = [&os](const char* key, std::size_t b, std::size_t a,
                    bool last = false) {
    os << '"' << key << "\":{\"before\":" << b << ",\"after\":" << a << '}';
    if (!last) os << ',';
  };
  os << '{';
  axis("instructions", before.instructions, after.instructions);
  axis("stages", before.stages, after.stages);
  axis("temps", before.temps, after.temps);
  axis("registers", before.registers, after.registers);
  axis("state_bytes", before.state_bytes, after.state_bytes, true);
  os << '}';
}

}  // namespace analysis

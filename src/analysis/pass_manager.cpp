#include "analysis/pass_manager.hpp"

#include <algorithm>
#include <map>
#include <ostream>
#include <set>
#include <stdexcept>
#include <utility>

#include "analysis/dataflow.hpp"
#include "p4sim/register_file.hpp"
#include "p4sim/table.hpp"

namespace analysis {

using p4sim::ActionId;
using p4sim::P4Switch;
using p4sim::Program;
using p4sim::RegisterId;

namespace {

/// Which of the canonical passes are enabled.
struct PassSet {
  bool constprop = false;
  bool strength = false;
  bool cse = false;
  bool dce = false;
  bool pack = false;
};

PassSet resolve_passes(const std::vector<std::string>& names) {
  PassSet set;
  if (names.empty()) {
    set.constprop = set.strength = set.cse = set.dce = set.pack = true;
    return set;
  }
  for (const std::string& n : names) {
    if (n == "constprop") {
      set.constprop = true;
    } else if (n == "strength") {
      set.strength = true;
    } else if (n == "cse") {
      set.cse = true;
    } else if (n == "dce") {
      set.dce = true;
    } else if (n == "pack") {
      set.pack = true;
    } else {
      throw std::invalid_argument("unknown pass: " + n);
    }
  }
  return set;
}

const char* rule_for_pass(const std::string& pass) {
  if (pass == "constprop") return "S4-OPT-001";
  if (pass == "dce") return "S4-OPT-002";
  if (pass == "cse") return "S4-OPT-003";
  if (pass == "strength") return "S4-OPT-004";
  return "S4-OPT-005";  // pack
}

/// Cross-stage temp context for every registered action, computed
/// pessimistically: a table stage may dispatch ANY action (the controller
/// can table_add at runtime), so each table stage contributes the union of
/// all actions' written / upward-exposed sets at its pipeline position.
struct ActionContexts {
  std::vector<PassContext> ctx;
  std::vector<bool> shared;  ///< temps genuinely cross this action's bounds
};

ActionContexts compute_contexts(const P4Switch& sw) {
  const std::size_t n = sw.action_count();
  std::vector<ProgramFacts> facts;
  facts.reserve(n);
  TempSet all_written;
  TempSet all_exposed;
  for (ActionId id = 0; id < n; ++id) {
    facts.push_back(collect_facts(sw.action(id)));
    all_written |= facts.back().written;
    all_exposed |= facts.back().upward_exposed;
  }

  const auto& pipe = sw.pipeline();
  const std::size_t stages = pipe.size();
  const TempSet empty;
  auto stage_written = [&](std::size_t si) -> const TempSet& {
    if (pipe[si].table) return all_written;
    return pipe[si].action ? facts[*pipe[si].action].written : empty;
  };
  auto stage_exposed = [&](std::size_t si) -> const TempSet& {
    if (pipe[si].table) return all_exposed;
    return pipe[si].action ? facts[*pipe[si].action].upward_exposed : empty;
  };

  // prefix[si] = temps some stage BEFORE si may write;
  // suffix[si] = temps some stage AT OR AFTER si may read before writing.
  std::vector<TempSet> prefix(stages + 1);
  std::vector<TempSet> suffix(stages + 1);
  for (std::size_t si = 0; si < stages; ++si) {
    prefix[si + 1] = prefix[si] | stage_written(si);
  }
  for (std::size_t si = stages; si-- > 0;) {
    suffix[si] = suffix[si + 1] | stage_exposed(si);
  }

  ActionContexts out;
  out.ctx.resize(n);
  out.shared.assign(n, false);
  for (std::size_t si = 0; si < stages; ++si) {
    if (pipe[si].action) {
      PassContext& c = out.ctx[*pipe[si].action];
      c.dirty_on_entry |= prefix[si];
      c.live_out |= suffix[si + 1];
    }
    if (pipe[si].table) {
      for (ActionId id = 0; id < n; ++id) {
        out.ctx[id].dirty_on_entry |= prefix[si];
        out.ctx[id].live_out |= suffix[si + 1];
      }
    }
  }
  for (ActionId id = 0; id < n; ++id) {
    // "Shared" = the context actually constrains rewrites: the action reads
    // temps an earlier stage may have written, or a later stage reads temps
    // past this one.  Self-contained builder programs never trip this.
    const bool reads_dirty =
        (facts[id].upward_exposed & out.ctx[id].dirty_on_entry).any();
    out.shared[id] = reads_dirty || out.ctx[id].live_out.any();
  }
  return out;
}

void add_register_costs(const P4Switch& sw, const std::set<RegisterId>& regs,
                        CostSummary& cost) {
  cost.registers = regs.size();
  for (const RegisterId r : regs) {
    const p4sim::RegisterArrayInfo& info = sw.registers().info(r);
    cost.state_bytes += static_cast<std::size_t>(info.size) *
                        ((static_cast<std::size_t>(info.width_bits) + 7) / 8);
  }
}

void note_pass_totals(
    const std::map<std::pair<std::string, std::string>, std::size_t>& counts,
    DiagnosticEngine& diags) {
  for (const auto& [key, n] : counts) {
    const auto& [pass, program] = key;
    SourceLoc loc;
    loc.program = program;
    diags.report(rule_for_pass(pass), Severity::kNote,
                 pass + " applied " + std::to_string(n) + " rewrite(s)", loc);
  }
}

}  // namespace

const std::vector<std::string>& pass_names() {
  static const std::vector<std::string> kNames = {"constprop", "strength",
                                                  "cse", "dce", "pack"};
  return kNames;
}

std::size_t OptimizeResult::total_rewrites() const noexcept {
  std::size_t total = 0;
  for (const PassStats& s : pass_stats) total += s.rewrites;
  return total;
}

CostSummary measure_cost(const P4Switch& sw) {
  CostSummary cost;
  cost.stages = sw.pipeline().size();

  std::set<ActionId> reachable;
  for (const P4Switch::Stage& stage : sw.pipeline()) {
    if (stage.action) reachable.insert(*stage.action);
    if (stage.table) {
      const p4sim::MatchActionTable& table = sw.table(*stage.table);
      reachable.insert(table.default_action());
      for (const p4sim::TableEntry* entry : table.live_entries()) {
        reachable.insert(entry->action);
      }
    }
  }

  std::set<RegisterId> regs;
  for (const ActionId id : reachable) {
    const Program& program = sw.action(id);
    cost.instructions += program.code.size();
    const ProgramFacts facts = collect_facts(program);
    cost.temps = std::max(cost.temps, facts.max_temp_plus_one);
    regs.insert(facts.regs_read.begin(), facts.regs_read.end());
    regs.insert(facts.regs_written.begin(), facts.regs_written.end());
  }
  add_register_costs(sw, regs, cost);
  return cost;
}

CostSummary measure_cost(const Program& program) {
  CostSummary cost;
  cost.instructions = program.code.size();
  cost.stages = 1;
  const ProgramFacts facts = collect_facts(program);
  cost.temps = facts.max_temp_plus_one;
  std::set<RegisterId> regs = facts.regs_read;
  regs.insert(facts.regs_written.begin(), facts.regs_written.end());
  cost.registers = regs.size();
  return cost;
}

OptimizeResult optimize_switch(P4Switch& sw,
                               const PassManagerOptions& options) {
  const PassSet enabled = resolve_passes(options.passes);
  OptimizeResult res;
  res.before = measure_cost(sw);

  // (pass, program) -> cumulative rewrites, for the S4-OPT notes.
  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  std::map<std::string, std::size_t> totals;
  std::set<std::string> warned_shared;
  auto account = [&](const char* pass, const std::string& program,
                     std::size_t n) {
    if (n == 0) return;
    counts[{pass, program}] += n;
    totals[pass] += n;
  };

  for (std::size_t round = 0; round < options.max_iterations; ++round) {
    const ActionContexts actx = compute_contexts(sw);
    for (ActionId id = 0; id < sw.action_count(); ++id) {
      if (!actx.shared[id]) continue;
      const std::string& name = sw.action(id).name;
      if (!warned_shared.insert(name).second) continue;
      SourceLoc loc;
      loc.program = name;
      res.diags.report(
          "S4-OPT-006", Severity::kWarning,
          "temps cross this action's stage boundary; constant seeding and "
          "temp compaction are suppressed",
          loc);
    }

    std::size_t round_rewrites = 0;
    for (ActionId id = 0; id < sw.action_count(); ++id) {
      Program program = sw.action(id);  // work on a copy, install on change
      const PassContext& ctx = actx.ctx[id];
      std::size_t n = 0;
      if (enabled.constprop) {
        const std::size_t k = run_constprop(program, ctx);
        account("constprop", program.name, k);
        n += k;
      }
      if (enabled.strength) {
        const std::size_t k = run_strength_reduction(program, ctx);
        account("strength", program.name, k);
        n += k;
      }
      if (enabled.cse) {
        const std::size_t k = run_cse(program, ctx);
        account("cse", program.name, k);
        n += k;
      }
      if (enabled.dce) {
        const std::size_t k = run_dce(program, ctx);
        account("dce", program.name, k);
        n += k;
      }
      if (n != 0) sw.replace_action(id, std::move(program));
      round_rewrites += n;
    }
    if (enabled.pack) {
      const std::size_t k = run_stage_packing(sw, options.profile);
      account("pack", sw.name(), k);
      round_rewrites += k;
    }
    ++res.iterations;
    if (round_rewrites == 0) {
      res.fixpoint = true;
      break;
    }
  }

  if (!res.fixpoint) {
    res.diags.report("S4-OPT-007", Severity::kWarning,
                     "fixpoint not reached within " +
                         std::to_string(options.max_iterations) +
                         " iteration(s)",
                     SourceLoc{});
  }
  note_pass_totals(counts, res.diags);
  res.diags.sort();

  for (const std::string& pass : pass_names()) {
    const bool on = (pass == "constprop" && enabled.constprop) ||
                    (pass == "strength" && enabled.strength) ||
                    (pass == "cse" && enabled.cse) ||
                    (pass == "dce" && enabled.dce) ||
                    (pass == "pack" && enabled.pack);
    if (on) res.pass_stats.push_back({pass, totals[pass]});
  }
  res.after = measure_cost(sw);
  return res;
}

OptimizeResult optimize_program(Program& program,
                                const PassManagerOptions& options) {
  PassSet enabled = resolve_passes(options.passes);
  enabled.pack = false;  // pipeline-level; meaningless for one program
  OptimizeResult res;
  res.before = measure_cost(program);

  std::map<std::pair<std::string, std::string>, std::size_t> counts;
  std::map<std::string, std::size_t> totals;
  const PassContext ctx;  // standalone: zero on entry, nothing live out
  auto account = [&](const char* pass, std::size_t n) {
    if (n == 0) return;
    counts[{pass, program.name}] += n;
    totals[pass] += n;
  };

  for (std::size_t round = 0; round < options.max_iterations; ++round) {
    std::size_t round_rewrites = 0;
    if (enabled.constprop) {
      const std::size_t k = run_constprop(program, ctx);
      account("constprop", k);
      round_rewrites += k;
    }
    if (enabled.strength) {
      const std::size_t k = run_strength_reduction(program, ctx);
      account("strength", k);
      round_rewrites += k;
    }
    if (enabled.cse) {
      const std::size_t k = run_cse(program, ctx);
      account("cse", k);
      round_rewrites += k;
    }
    if (enabled.dce) {
      const std::size_t k = run_dce(program, ctx);
      account("dce", k);
      round_rewrites += k;
    }
    ++res.iterations;
    if (round_rewrites == 0) {
      res.fixpoint = true;
      break;
    }
  }

  if (!res.fixpoint) {
    SourceLoc loc;
    loc.program = program.name;
    res.diags.report("S4-OPT-007", Severity::kWarning,
                     "fixpoint not reached within " +
                         std::to_string(options.max_iterations) +
                         " iteration(s)",
                     loc);
  }
  note_pass_totals(counts, res.diags);
  res.diags.sort();

  for (const std::string& pass : pass_names()) {
    const bool on = (pass == "constprop" && enabled.constprop) ||
                    (pass == "strength" && enabled.strength) ||
                    (pass == "cse" && enabled.cse) ||
                    (pass == "dce" && enabled.dce);
    if (on) res.pass_stats.push_back({pass, totals[pass]});
  }
  res.after = measure_cost(program);
  return res;
}

void render_cost_json(std::ostream& os, const CostSummary& before,
                      const CostSummary& after) {
  auto axis = [&os](const char* key, std::size_t b, std::size_t a,
                    bool last = false) {
    os << '"' << key << "\":{\"before\":" << b << ",\"after\":" << a << '}';
    if (!last) os << ',';
  };
  os << '{';
  axis("instructions", before.instructions, after.instructions);
  axis("stages", before.stages, after.stages);
  axis("temps", before.temps, after.temps);
  axis("registers", before.registers, after.registers);
  axis("state_bytes", before.state_bytes, after.state_bytes, true);
  os << '}';
}

}  // namespace analysis

// Umbrella header for the Stat4 static verifier.
#pragma once

#include "analysis/catalog.hpp"       // IWYU pragma: export
#include "analysis/constraints.hpp"   // IWYU pragma: export
#include "analysis/dataflow.hpp"      // IWYU pragma: export
#include "analysis/diagnostics.hpp"   // IWYU pragma: export
#include "analysis/hazards.hpp"       // IWYU pragma: export
#include "analysis/interval.hpp"      // IWYU pragma: export
#include "analysis/overflow.hpp"      // IWYU pragma: export
#include "analysis/pass_manager.hpp"  // IWYU pragma: export
#include "analysis/passes.hpp"        // IWYU pragma: export
#include "analysis/pipeline_model.hpp"  // IWYU pragma: export
#include "analysis/precision.hpp"     // IWYU pragma: export
#include "analysis/symbolic.hpp"      // IWYU pragma: export
#include "analysis/validate.hpp"      // IWYU pragma: export
#include "analysis/verifier.hpp"      // IWYU pragma: export

// Catalog of the shipped example applications, by name.
//
// stat4_lint and the analysis tests verify every configuration the repo
// actually ships — the Figure 5 echo program, the Section 4 case study (the
// exact setup examples/emit_p4_source.cpp emits), the Table 1 use-case
// bindings, and a no-multiplier build — rather than ad-hoc toys, so "zero
// error diagnostics over all example programs" means something.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "p4sim/switch.hpp"

namespace analysis {

struct ExampleApp {
  std::string name;
  std::string description;
  /// Verifier observation bound (AnalysisOptions::max_observations) the
  /// app is certified against — the single source both stat4_lint and
  /// stat4_opt must resolve through, so the tools can never drift apart.
  std::uint64_t max_observations = std::uint64_t{1} << 20;
};

/// Every lintable example configuration, in catalog order.
[[nodiscard]] const std::vector<ExampleApp>& example_apps();

/// Builds the named example; the returned pointer keeps the owning app
/// alive.  Throws std::invalid_argument for unknown names.
[[nodiscard]] std::shared_ptr<const p4sim::P4Switch> build_example(
    const std::string& name);

/// Like build_example, but the switch is mutable — the handle the dataflow
/// optimizer (stat4_opt, the optimizer tests) rewrites in place.
[[nodiscard]] std::shared_ptr<p4sim::P4Switch> build_example_mutable(
    const std::string& name);

}  // namespace analysis

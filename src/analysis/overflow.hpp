// Interval / value-range propagation over p4sim action programs.
//
// Models the per-packet pipeline abstractly: one "abstract packet" applies
// every stage's possible actions (or skips them) to a register-state map of
// one interval per register array, then joins with the previous state.  The
// iteration is monotone (state only widens), so:
//
//   * a FIXPOINT proves the bounds hold for ANY number of packets;
//   * otherwise the pass iterates `warmup_iterations` exact steps and, when
//     each still-growing register's upper bound follows a degree<=2
//     polynomial in the packet count (constant second difference — exactly
//     the shape of Xsum (linear) and Xsumsq (quadratic) accumulators), jumps
//     the closed form to `max_observations` packets;
//   * irregular growth falls back to exact iteration up to
//     `max_exact_iterations`, after which the register is widened to its
//     full declared width and S4-OVF-005 reports the proof gap.
//
// Diagnostics are emitted in one final reporting pass over the
// post-iteration state, so every witness range reflects the configured
// observation count.  Bounds are 128-bit ideal values (interval.hpp): a
// 64-bit wrap or a store wider than the declared register/field width is
// exactly the class of silent corruption the paper's N-scaled variance
// identity risks (Section 2.2), and what S4-OVF-001/002/003 refute with a
// concrete witness.
#pragma once

#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/interval.hpp"
#include "analysis/verifier.hpp"
#include "p4sim/action.hpp"
#include "p4sim/register_file.hpp"

namespace analysis {

/// One alternative of a pipeline stage: a program plus the joined value
/// bounds of its action data (over every installed entry that dispatches to
/// it, or the fixture-supplied bounds).
struct StageAlternative {
  const p4sim::Program* program = nullptr;
  std::vector<Interval> params;
};

/// The abstract pipeline: ordered stages, each with its possible programs
/// (every stage is also skippable — guards and table misses need no
/// modelling beyond that).
struct AbstractPipeline {
  std::string name;  ///< program/switch label for diagnostics
  std::vector<std::vector<StageAlternative>> stages;
  const p4sim::RegisterFile* registers = nullptr;
};

/// Runs the pass; fills result.register_bounds / iterations / fixpoint /
/// extrapolated and reports S4-OVF-* diagnostics into result.diags.
void run_overflow_pass(const AbstractPipeline& pipeline,
                       const AnalysisOptions& options, AnalysisResult& result);

/// Natural value-width (bits) of a packet/metadata field, as the overflow
/// pass assumes when no override is configured.
[[nodiscard]] unsigned field_bits(p4sim::FieldRef f) noexcept;

}  // namespace analysis

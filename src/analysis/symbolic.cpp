#include "analysis/symbolic.hpp"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstdio>
#include <string>
#include <utility>

#include "analysis/dataflow.hpp"
#include "stat4/sparse_freq.hpp"

namespace analysis::sym {

using p4sim::FieldInfo;
using p4sim::FieldRef;
using p4sim::Instruction;
using p4sim::Op;
using p4sim::Program;

namespace {

constexpr NodeId kZero = 0;  // Dag() interns constant 0 first
constexpr Word kAllOnes = ~Word{0};

/// Sets every bit at or below the operand's highest set bit, so the mask
/// read as a number stays an upper bound on any value bounded by `m`.
constexpr Word smear(Word m) {
  m |= m >> 1;
  m |= m >> 2;
  m |= m >> 4;
  m |= m >> 8;
  m |= m >> 16;
  m |= m >> 32;
  return m;
}

constexpr Word width_mask(std::uint32_t bits) {
  return bits >= 64 ? kAllOnes : (Word{1} << bits) - 1;
}

std::uint64_t splitmix64(std::uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

void append_u32(std::string& key, std::uint32_t v) {
  for (int i = 0; i < 4; ++i) key.push_back(static_cast<char>(v >> (8 * i)));
}

void append_u64(std::string& key, std::uint64_t v) {
  for (int i = 0; i < 8; ++i) key.push_back(static_cast<char>(v >> (8 * i)));
}

}  // namespace

std::string VarRef::name() const {
  switch (origin) {
    case Origin::kDirtyTemp: return "t" + std::to_string(index);
    case Origin::kParam: return "param" + std::to_string(index);
    case Origin::kField:
      return p4sim::field_info(static_cast<FieldRef>(index)).name;
    case Origin::kValidity:
      return p4sim::field_info(static_cast<FieldRef>(index)).name;
  }
  return "?";
}

Dag::Dag() {
  const NodeId zero = constant(0);
  (void)zero;
  assert(zero == kZero);
}

NodeId Dag::intern(Node n) {
  std::string key;
  key.reserve(16 + 12 * n.ops.size());
  key.push_back(static_cast<char>(n.kind));
  append_u32(key, n.aux);
  append_u64(key, n.imm);
  for (const NodeId op : n.ops) append_u32(key, op);
  for (const Word c : n.coeffs) append_u64(key, c);
  const auto [it, inserted] =
      interned_.emplace(std::move(key), static_cast<NodeId>(nodes_.size()));
  if (inserted) nodes_.push_back(std::move(n));
  return it->second;
}

NodeId Dag::constant(Word v) {
  Node n;
  n.kind = Kind::kConst;
  n.imm = v;
  n.bits = v;
  return intern(std::move(n));
}

NodeId Dag::variable(VarRef ref) {
  const std::uint64_t key =
      (static_cast<std::uint64_t>(ref.origin) << 32) | ref.index;
  if (const auto it = var_index_.find(key); it != var_index_.end()) {
    Node n;
    n.kind = Kind::kVar;
    n.aux = it->second;
    n.bits = vars_[it->second].mask;
    return intern(std::move(n));
  }
  if (ref.mask == 0) return kZero;  // a variable that can only be 0
  const auto idx = static_cast<std::uint32_t>(vars_.size());
  vars_.push_back(ref);
  var_index_.emplace(key, idx);
  Node n;
  n.kind = Kind::kVar;
  n.aux = idx;
  n.bits = ref.mask;
  return intern(std::move(n));
}

void Dag::decompose(NodeId id, Word scale, Word& c0,
                    std::vector<std::pair<Word, NodeId>>& terms) const {
  if (scale == 0) return;
  const Node& n = nodes_[id];
  if (n.kind == Kind::kConst) {
    c0 += scale * n.imm;
    return;
  }
  if (n.kind == Kind::kLinear) {
    c0 += scale * n.imm;
    for (std::size_t i = 0; i < n.ops.size(); ++i) {
      terms.emplace_back(scale * n.coeffs[i], n.ops[i]);
    }
    return;
  }
  terms.emplace_back(scale, id);
}

NodeId Dag::linear(Word c0, std::vector<std::pair<Word, NodeId>> terms) {
  std::sort(terms.begin(), terms.end(),
            [](const auto& x, const auto& y) { return x.second < y.second; });
  std::vector<std::pair<Word, NodeId>> merged;
  merged.reserve(terms.size());
  for (const auto& [k, t] : terms) {
    if (!merged.empty() && merged.back().second == t) {
      merged.back().first += k;
    } else {
      merged.emplace_back(k, t);
    }
  }
  std::erase_if(merged, [](const auto& kt) { return kt.first == 0; });
  if (merged.empty()) return constant(c0);
  if (c0 == 0 && merged.size() == 1 && merged[0].first == 1) {
    return merged[0].second;
  }

  Node n;
  n.kind = Kind::kLinear;
  n.imm = c0;
  n.ops.reserve(merged.size());
  n.coeffs.reserve(merged.size());
  Word max = c0;
  bool bounded = true;
  for (const auto& [k, t] : merged) {
    n.ops.push_back(t);
    n.coeffs.push_back(k);
    Word prod = 0;
    if (bounded && (__builtin_mul_overflow(k, nodes_[t].bits, &prod) ||
                    __builtin_add_overflow(max, prod, &max))) {
      bounded = false;  // the sum can wrap: no useful bound
    }
  }
  // Divisibility survives wrapping: if every term (and the constant) is a
  // multiple of 2^z, so is the sum mod 2^64 — which proves the low z bits
  // zero even when the magnitude bound above is useless.  This is what
  // lets the precision pass see that (x << s) >> s divides exactly.
  unsigned tz = c0 == 0 ? 64 : static_cast<unsigned>(std::countr_zero(c0));
  for (std::size_t i = 0; i < n.ops.size() && tz > 0; ++i) {
    const Word tb = nodes_[n.ops[i]].bits;
    const unsigned term_tz =
        static_cast<unsigned>(std::countr_zero(n.coeffs[i])) +
        (tb == 0 ? 64u : static_cast<unsigned>(std::countr_zero(tb)));
    tz = std::min(tz, term_tz);
  }
  n.bits = bounded ? smear(max) : kAllOnes;
  n.bits &= tz >= 64 ? Word{0} : ~((Word{1} << tz) - 1);
  return intern(std::move(n));
}

NodeId Dag::scaled(NodeId a, Word k) {
  if (k == 0) return kZero;
  if (k == 1) return a;
  Word c0 = 0;
  std::vector<std::pair<Word, NodeId>> terms;
  decompose(a, k, c0, terms);
  return linear(c0, std::move(terms));
}

NodeId Dag::add(NodeId a, NodeId b) {
  Word c0 = 0;
  std::vector<std::pair<Word, NodeId>> terms;
  decompose(a, 1, c0, terms);
  decompose(b, 1, c0, terms);
  return linear(c0, std::move(terms));
}

NodeId Dag::sub(NodeId a, NodeId b) {
  Word c0 = 0;
  std::vector<std::pair<Word, NodeId>> terms;
  decompose(a, 1, c0, terms);
  decompose(b, ~Word{0}, c0, terms);  // scale by -1 (mod 2^64)
  return linear(c0, std::move(terms));
}

NodeId Dag::mul(NodeId a, NodeId b) {
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  if (na.kind == Kind::kConst) return scaled(b, na.imm);
  if (nb.kind == Kind::kConst) return scaled(a, nb.imm);

  Node n;
  n.kind = Kind::kMul;
  auto flatten = [this, &n](NodeId x) {
    const Node& nx = nodes_[x];
    if (nx.kind == Kind::kMul) {
      n.ops.insert(n.ops.end(), nx.ops.begin(), nx.ops.end());
    } else {
      n.ops.push_back(x);
    }
  };
  flatten(a);
  flatten(b);
  std::sort(n.ops.begin(), n.ops.end());
  Word max = 1;
  bool bounded = true;
  for (const NodeId t : n.ops) {
    if (__builtin_mul_overflow(max, nodes_[t].bits, &max)) {
      bounded = false;
      break;
    }
  }
  n.bits = bounded ? smear(max) : kAllOnes;
  return intern(std::move(n));
}

NodeId Dag::band(NodeId a, NodeId b) {
  Word imm = kAllOnes;
  std::vector<NodeId> ops;
  auto collect = [this, &imm, &ops](NodeId x) {
    const Node& nx = nodes_[x];
    if (nx.kind == Kind::kConst) {
      imm &= nx.imm;
    } else if (nx.kind == Kind::kAnd) {
      imm &= nx.imm;
      ops.insert(ops.end(), nx.ops.begin(), nx.ops.end());
    } else {
      ops.push_back(x);
    }
  };
  collect(a);
  collect(b);
  if (imm == 0) return kZero;
  std::sort(ops.begin(), ops.end());
  ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
  Word opbits = kAllOnes;
  for (const NodeId t : ops) opbits &= nodes_[t].bits;
  // The constant conjunct is redundant once it covers every bit the
  // variable part can set (x & m == x) — the AND-elimination that
  // discharges `hash & (size-1)` style masking proofs.
  if ((opbits & ~imm) == 0) imm = kAllOnes;
  if (ops.empty()) return constant(imm);
  if (ops.size() == 1 && imm == kAllOnes) return ops[0];
  Node n;
  n.kind = Kind::kAnd;
  n.imm = imm;
  n.ops = std::move(ops);
  n.bits = imm & opbits;
  return intern(std::move(n));
}

NodeId Dag::bor(NodeId a, NodeId b) {
  Word imm = 0;
  std::vector<NodeId> ops;
  auto collect = [this, &imm, &ops](NodeId x) {
    const Node& nx = nodes_[x];
    if (nx.kind == Kind::kConst) {
      imm |= nx.imm;
    } else if (nx.kind == Kind::kOr) {
      imm |= nx.imm;
      ops.insert(ops.end(), nx.ops.begin(), nx.ops.end());
    } else {
      ops.push_back(x);
    }
  };
  collect(a);
  collect(b);
  if (imm == kAllOnes) return constant(kAllOnes);
  std::sort(ops.begin(), ops.end());
  ops.erase(std::unique(ops.begin(), ops.end()), ops.end());
  // x | m == m when every possibly-set bit of x is already in m.
  std::erase_if(ops,
                [this, imm](NodeId t) { return (nodes_[t].bits & ~imm) == 0; });
  if (ops.empty()) return constant(imm);
  if (ops.size() == 1 && imm == 0) return ops[0];
  Word opbits = 0;
  for (const NodeId t : ops) opbits |= nodes_[t].bits;
  Node n;
  n.kind = Kind::kOr;
  n.imm = imm;
  n.ops = std::move(ops);
  n.bits = imm | opbits;
  return intern(std::move(n));
}

NodeId Dag::bxor(NodeId a, NodeId b) {
  Word imm = 0;
  std::vector<NodeId> ops;
  auto collect = [this, &imm, &ops](NodeId x) {
    const Node& nx = nodes_[x];
    if (nx.kind == Kind::kConst) {
      imm ^= nx.imm;
    } else if (nx.kind == Kind::kXor) {
      imm ^= nx.imm;
      ops.insert(ops.end(), nx.ops.begin(), nx.ops.end());
    } else {
      ops.push_back(x);
    }
  };
  collect(a);
  collect(b);
  std::sort(ops.begin(), ops.end());
  // Equal operands cancel in pairs: x ^ x == 0.
  std::vector<NodeId> kept;
  kept.reserve(ops.size());
  for (std::size_t i = 0; i < ops.size();) {
    if (i + 1 < ops.size() && ops[i] == ops[i + 1]) {
      i += 2;
    } else {
      kept.push_back(ops[i]);
      ++i;
    }
  }
  if (kept.empty()) return constant(imm);
  if (kept.size() == 1 && imm == 0) return kept[0];
  Word opbits = 0;
  for (const NodeId t : kept) opbits |= nodes_[t].bits;
  Node n;
  n.kind = Kind::kXor;
  n.imm = imm;
  n.ops = std::move(kept);
  n.bits = imm | opbits;
  return intern(std::move(n));
}

NodeId Dag::bnot(NodeId a) { return bxor(a, constant(kAllOnes)); }

NodeId Dag::shl(NodeId a, NodeId b) {
  const Node& nb = nodes_[b];
  if (nb.kind == Kind::kConst) {
    const Word s = nb.imm & 63;
    if (s == 0) return a;
    return scaled(a, Word{1} << s);  // x << s == x * 2^s (mod 2^64)
  }
  if (a == kZero) return kZero;
  const NodeId amount = band(b, constant(63));
  if (nodes_[amount].kind == Kind::kConst) return shl(a, amount);
  Node n;
  n.kind = Kind::kShl;
  n.ops = {a, amount};
  n.bits = nodes_[a].bits == 0 ? 0 : kAllOnes;
  return intern(std::move(n));
}

NodeId Dag::shr(NodeId a, NodeId b) {
  const Node& nb = nodes_[b];
  if (nb.kind == Kind::kConst) {
    const Word s = nb.imm & 63;
    if (s == 0) return a;
    const Node& na = nodes_[a];
    if (na.kind == Kind::kConst) return constant(na.imm >> s);
    if ((na.bits >> s) == 0) return kZero;
    Node n;
    n.kind = Kind::kShr;
    n.ops = {a, constant(s)};  // amount normalized to s & 63
    n.bits = na.bits >> s;
    return intern(std::move(n));
  }
  if (a == kZero) return kZero;
  const NodeId amount = band(b, constant(63));
  if (nodes_[amount].kind == Kind::kConst) return shr(a, amount);
  Node n;
  n.kind = Kind::kShr;
  n.ops = {a, amount};
  n.bits = smear(nodes_[a].bits);
  return intern(std::move(n));
}

NodeId Dag::eq(NodeId a, NodeId b) {
  if (a == b) return constant(1);
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  if (na.kind == Kind::kConst && nb.kind == Kind::kConst) {
    return constant(na.imm == nb.imm ? 1 : 0);
  }
  // A constant with a bit the other side can never set disproves equality.
  if (na.kind == Kind::kConst && (na.imm & ~nb.bits) != 0) return kZero;
  if (nb.kind == Kind::kConst && (nb.imm & ~na.bits) != 0) return kZero;
  // The linear normal form of the difference catches x+1 == 1+x shapes.
  const NodeId d = sub(a, b);
  if (nodes_[d].kind == Kind::kConst) {
    return constant(nodes_[d].imm == 0 ? 1 : 0);
  }
  Node n;
  n.kind = Kind::kEq;
  n.ops = {std::min(a, b), std::max(a, b)};
  n.bits = 1;
  return intern(std::move(n));
}

NodeId Dag::ne(NodeId a, NodeId b) { return bxor(eq(a, b), constant(1)); }

NodeId Dag::lt(NodeId a, NodeId b) {
  if (a == b) return kZero;
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  if (na.kind == Kind::kConst && nb.kind == Kind::kConst) {
    return constant(na.imm < nb.imm ? 1 : 0);
  }
  if (nb.kind == Kind::kConst) {
    if (nb.imm == 0) return kZero;           // nothing is < 0 unsigned
    if (na.bits < nb.imm) return constant(1);  // max(a) < b
  }
  if (na.kind == Kind::kConst && na.imm >= nb.bits) return kZero;  // a >= max(b)
  Node n;
  n.kind = Kind::kLt;
  n.ops = {a, b};
  n.bits = 1;
  return intern(std::move(n));
}

NodeId Dag::le(NodeId a, NodeId b) {
  if (a == b) return constant(1);
  const Node& na = nodes_[a];
  const Node& nb = nodes_[b];
  if (na.kind == Kind::kConst && nb.kind == Kind::kConst) {
    return constant(na.imm <= nb.imm ? 1 : 0);
  }
  if (na.kind == Kind::kConst) {
    if (na.imm == 0) return constant(1);       // 0 <= everything
    if (na.imm > nb.bits) return kZero;        // a > max(b)
  }
  if (nb.kind == Kind::kConst && na.bits <= nb.imm) return constant(1);
  Node n;
  n.kind = Kind::kLe;
  n.ops = {a, b};
  n.bits = 1;
  return intern(std::move(n));
}

NodeId Dag::ite(NodeId c, NodeId t, NodeId e) {
  if (t == e) return t;
  const Node& nc = nodes_[c];
  if (nc.kind == Kind::kConst) return nc.imm != 0 ? t : e;
  // Nested selects on the same condition collapse: the inner branch the
  // outer condition excludes can never be taken.
  if (nodes_[t].kind == Kind::kIte && nodes_[t].ops[0] == c) {
    t = nodes_[t].ops[1];
  }
  if (nodes_[e].kind == Kind::kIte && nodes_[e].ops[0] == c) {
    e = nodes_[e].ops[2];
  }
  if (t == e) return t;
  // select(c, 1, 0) of a 0/1 condition is the condition itself.
  if (nc.bits == 1 && nodes_[t].kind == Kind::kConst && nodes_[t].imm == 1 &&
      e == kZero) {
    return c;
  }
  Node n;
  n.kind = Kind::kIte;
  n.ops = {c, t, e};
  n.bits = nodes_[t].bits | nodes_[e].bits;
  return intern(std::move(n));
}

NodeId Dag::hash1(NodeId a) {
  const Node& na = nodes_[a];
  if (na.kind == Kind::kConst) return constant(stat4::sparse_hash1(na.imm));
  Node n;
  n.kind = Kind::kHash1;
  n.ops = {a};
  return intern(std::move(n));
}

NodeId Dag::hash2(NodeId a) {
  const Node& na = nodes_[a];
  if (na.kind == Kind::kConst) return constant(stat4::sparse_hash2(na.imm));
  Node n;
  n.kind = Kind::kHash2;
  n.ops = {a};
  return intern(std::move(n));
}

NodeId Dag::reg_init(std::uint32_t reg, NodeId idx, Word mask) {
  if (mask == 0) return kZero;
  Node n;
  n.kind = Kind::kRegInit;
  n.aux = reg;
  n.imm = mask;
  n.ops = {idx};
  n.bits = mask;
  return intern(std::move(n));
}

NodeId Dag::truthy(NodeId a) {
  const Node& na = nodes_[a];
  if (na.kind == Kind::kConst) return constant(na.imm != 0 ? 1 : 0);
  if (na.bits <= 1) return a;  // already 0/1-valued
  return ne(a, kZero);
}

std::string Dag::render(NodeId id, std::size_t max_depth) const {
  const Node& n = nodes_[id];
  auto hex = [](Word v) {
    if (v <= 9) return std::to_string(v);
    char buf[19];
    std::snprintf(buf, sizeof buf, "0x%llx",
                  static_cast<unsigned long long>(v));
    return std::string(buf);
  };
  if (max_depth == 0) return "...";
  auto child = [this, max_depth](NodeId c) { return render(c, max_depth - 1); };
  switch (n.kind) {
    case Kind::kConst: return hex(n.imm);
    case Kind::kVar: return vars_[n.aux].name();
    case Kind::kLinear: {
      std::string out = "(+ " + hex(n.imm);
      for (std::size_t i = 0; i < n.ops.size(); ++i) {
        out += " (* " + hex(n.coeffs[i]) + " " + child(n.ops[i]) + ")";
      }
      return out + ")";
    }
    case Kind::kMul:
    case Kind::kAnd:
    case Kind::kOr:
    case Kind::kXor: {
      const char* op = n.kind == Kind::kMul  ? "*"
                       : n.kind == Kind::kAnd ? "&"
                       : n.kind == Kind::kOr  ? "|"
                                              : "^";
      std::string out = "(" + std::string(op);
      const bool has_imm = (n.kind == Kind::kAnd && n.imm != kAllOnes) ||
                           (n.kind != Kind::kAnd && n.kind != Kind::kMul &&
                            n.imm != 0);
      if (has_imm) out += " " + hex(n.imm);
      for (const NodeId op_id : n.ops) out += " " + child(op_id);
      return out + ")";
    }
    case Kind::kShl: return "(<< " + child(n.ops[0]) + " " + child(n.ops[1]) + ")";
    case Kind::kShr: return "(>> " + child(n.ops[0]) + " " + child(n.ops[1]) + ")";
    case Kind::kEq: return "(== " + child(n.ops[0]) + " " + child(n.ops[1]) + ")";
    case Kind::kLt: return "(< " + child(n.ops[0]) + " " + child(n.ops[1]) + ")";
    case Kind::kLe: return "(<= " + child(n.ops[0]) + " " + child(n.ops[1]) + ")";
    case Kind::kIte:
      return "(if " + child(n.ops[0]) + " " + child(n.ops[1]) + " " +
             child(n.ops[2]) + ")";
    case Kind::kHash1: return "(hash1 " + child(n.ops[0]) + ")";
    case Kind::kHash2: return "(hash2 " + child(n.ops[0]) + ")";
    case Kind::kRegInit:
      return "(reg" + std::to_string(n.aux) + "0 " + child(n.ops[0]) + ")";
  }
  return "?";
}

// ---- concrete valuation ----------------------------------------------------

namespace {

std::uint64_t var_key(const VarRef& ref) {
  return (static_cast<std::uint64_t>(ref.origin) << 32) | ref.index;
}

/// Seeded value with a bias toward collision-friendly shapes: small values
/// and near-mask values show up often enough that index equality, boundary
/// wraps, and guard flips all get exercised within a few thousand samples.
Word shaped_value(std::uint64_t raw, Word mask) {
  switch (raw & 3) {
    case 0: return (raw >> 2) & 0x7 & mask;
    case 1: return (mask - ((raw >> 2) & 0x3)) & mask;
    default: return (raw >> 2) & mask;
  }
}

}  // namespace

Word Valuation::var_value(const VarRef& ref) const {
  const std::uint64_t key = var_key(ref);
  if (const auto it = vars_.find(key); it != vars_.end()) {
    return it->second.second;
  }
  const Word v = shaped_value(splitmix64(seed_ ^ splitmix64(key)), ref.mask);
  vars_.emplace(key, std::make_pair(ref, v));
  return v;
}

Word Valuation::reg_value(std::uint32_t reg, Word index, Word mask) const {
  const std::uint64_t key =
      splitmix64((static_cast<std::uint64_t>(reg) << 48) ^ index ^
                 0xA5A5'0000'0000'0000ull);
  if (const auto it = regs_.find(key); it != regs_.end()) {
    return it->second.value;
  }
  const Word v = shaped_value(splitmix64(seed_ ^ key), mask);
  regs_.emplace(key, RegCell{reg, index, v});
  return v;
}

void Valuation::pin_var(VarRef ref, Word value) {
  vars_[var_key(ref)] = {ref, value & ref.mask};
}

void Valuation::pin_reg(std::uint32_t reg, Word index, Word value) {
  const std::uint64_t key =
      splitmix64((static_cast<std::uint64_t>(reg) << 48) ^ index ^
                 0xA5A5'0000'0000'0000ull);
  regs_[key] = RegCell{reg, index, value};
}

std::vector<std::pair<VarRef, Word>> Valuation::used_vars() const {
  std::vector<std::pair<VarRef, Word>> out;
  out.reserve(vars_.size());
  for (const auto& [key, entry] : vars_) out.push_back(entry);
  std::sort(out.begin(), out.end(), [](const auto& x, const auto& y) {
    return var_key(x.first) < var_key(y.first);
  });
  return out;
}

std::vector<Valuation::RegCell> Valuation::used_regs() const {
  std::vector<RegCell> out;
  out.reserve(regs_.size());
  for (const auto& [key, cell] : regs_) out.push_back(cell);
  std::sort(out.begin(), out.end(), [](const RegCell& x, const RegCell& y) {
    return std::make_pair(x.reg, x.index) < std::make_pair(y.reg, y.index);
  });
  return out;
}

Word evaluate(const Dag& dag, NodeId id, const Valuation& val,
              std::vector<std::optional<Word>>& cache) {
  if (cache.size() < dag.size()) cache.resize(dag.size());
  if (cache[id]) return *cache[id];
  const Node& n = dag.node(id);
  auto ev = [&dag, &val, &cache](NodeId c) {
    return evaluate(dag, c, val, cache);
  };
  Word out = 0;
  switch (n.kind) {
    case Kind::kConst: out = n.imm; break;
    case Kind::kVar: out = val.var_value(dag.variables()[n.aux]); break;
    case Kind::kLinear: {
      out = n.imm;
      for (std::size_t i = 0; i < n.ops.size(); ++i) {
        out += n.coeffs[i] * ev(n.ops[i]);
      }
      break;
    }
    case Kind::kMul: {
      out = 1;
      for (const NodeId t : n.ops) out *= ev(t);
      break;
    }
    case Kind::kAnd: {
      out = n.imm;
      for (const NodeId t : n.ops) out &= ev(t);
      break;
    }
    case Kind::kOr: {
      out = n.imm;
      for (const NodeId t : n.ops) out |= ev(t);
      break;
    }
    case Kind::kXor: {
      out = n.imm;
      for (const NodeId t : n.ops) out ^= ev(t);
      break;
    }
    case Kind::kShl: out = ev(n.ops[0]) << (ev(n.ops[1]) & 63); break;
    case Kind::kShr: out = ev(n.ops[0]) >> (ev(n.ops[1]) & 63); break;
    case Kind::kEq: out = ev(n.ops[0]) == ev(n.ops[1]) ? 1 : 0; break;
    case Kind::kLt: out = ev(n.ops[0]) < ev(n.ops[1]) ? 1 : 0; break;
    case Kind::kLe: out = ev(n.ops[0]) <= ev(n.ops[1]) ? 1 : 0; break;
    case Kind::kIte:
      out = ev(n.ops[0]) != 0 ? ev(n.ops[1]) : ev(n.ops[2]);
      break;
    case Kind::kHash1: out = stat4::sparse_hash1(ev(n.ops[0])); break;
    case Kind::kHash2: out = stat4::sparse_hash2(ev(n.ops[0])); break;
    case Kind::kRegInit: out = val.reg_value(n.aux, ev(n.ops[0]), n.imm); break;
  }
  cache[id] = out;
  return out;
}

// ---- symbolic execution ----------------------------------------------------

const std::vector<RegStore>* SymState::stores_for(p4sim::RegisterId reg) const {
  for (const auto& [r, seq] : stores) {
    if (r == reg) return &seq;
  }
  return nullptr;
}

namespace {

struct RegModel {
  bool bounded = false;
  Word size = 0;
  Word mask = kAllOnes;
};

RegModel model_of(const SymEnv& env, p4sim::RegisterId reg) {
  if (env.registers == nullptr || reg >= env.registers->array_count()) {
    return {};  // unbounded width-64 model
  }
  const p4sim::RegisterArrayInfo& info = env.registers->info(reg);
  return {true, info.size, width_mask(std::min(info.width_bits, 64u))};
}

std::vector<RegStore>& stores_for_mut(SymState& st, p4sim::RegisterId reg) {
  for (auto& [r, seq] : st.stores) {
    if (r == reg) return seq;
  }
  st.stores.emplace_back(reg, std::vector<RegStore>{});
  return st.stores.back().second;
}

NodeId initial_field(Dag& dag, FieldRef f) {
  const FieldInfo& fi = p4sim::field_info(f);
  const auto idx = static_cast<std::uint32_t>(f);
  if (fi.is_validity) {
    return dag.variable({VarRef::Origin::kValidity, idx, 1});
  }
  const Word mask = width_mask(fi.width_bits);
  const NodeId raw = dag.variable({VarRef::Origin::kField, idx, mask});
  if (fi.always_valid) return raw;
  const NodeId valid = dag.variable(
      {VarRef::Origin::kValidity, static_cast<std::uint32_t>(fi.validity), 1});
  return dag.ite(valid, raw, dag.constant(0));
}

}  // namespace

SymState sym_execute(const Program& program, Dag& dag, const SymEnv& env) {
  SymState st;
  st.temps.resize(p4sim::kTempCount);
  for (std::size_t t = 0; t < p4sim::kTempCount; ++t) {
    st.temps[t] =
        env.dirty_on_entry.test(t)
            ? dag.variable({VarRef::Origin::kDirtyTemp,
                            static_cast<std::uint32_t>(t), kAllOnes})
            : kZero;
  }
  st.fields.resize(p4sim::kFieldCount);
  for (std::size_t f = 0; f < p4sim::kFieldCount; ++f) {
    st.fields[f] = initial_field(dag, static_cast<FieldRef>(f));
  }
  sym_execute_onto(program, dag, env, st);
  return st;
}

void sym_execute_onto(const Program& program, Dag& dag, const SymEnv& env,
                      SymState& st) {
  std::vector<NodeId>& t = st.temps;
  for (const Instruction& ins : program.code) {
    bool writes_temp = true;
    switch (ins.op) {
      case Op::kStoreField:
      case Op::kStoreReg:
      case Op::kDigest: writes_temp = false; break;
      default: break;
    }
    switch (ins.op) {
      case Op::kConst: t[ins.dst] = dag.constant(ins.imm); break;
      case Op::kParam:
        // Missing action-data words read 0 — subsumed by the free variable.
        t[ins.dst] = dag.variable({VarRef::Origin::kParam,
                                   static_cast<std::uint32_t>(ins.imm),
                                   kAllOnes});
        break;
      case Op::kMov: t[ins.dst] = t[ins.a]; break;
      case Op::kAdd: t[ins.dst] = dag.add(t[ins.a], t[ins.b]); break;
      case Op::kSub: t[ins.dst] = dag.sub(t[ins.a], t[ins.b]); break;
      case Op::kMul: t[ins.dst] = dag.mul(t[ins.a], t[ins.b]); break;
      case Op::kShl: t[ins.dst] = dag.shl(t[ins.a], t[ins.b]); break;
      case Op::kShr: t[ins.dst] = dag.shr(t[ins.a], t[ins.b]); break;
      case Op::kAnd: t[ins.dst] = dag.band(t[ins.a], t[ins.b]); break;
      case Op::kOr: t[ins.dst] = dag.bor(t[ins.a], t[ins.b]); break;
      case Op::kXor: t[ins.dst] = dag.bxor(t[ins.a], t[ins.b]); break;
      case Op::kNot: t[ins.dst] = dag.bnot(t[ins.a]); break;
      case Op::kEq: t[ins.dst] = dag.eq(t[ins.a], t[ins.b]); break;
      case Op::kNe: t[ins.dst] = dag.ne(t[ins.a], t[ins.b]); break;
      case Op::kLt: t[ins.dst] = dag.lt(t[ins.a], t[ins.b]); break;
      case Op::kGt: t[ins.dst] = dag.gt(t[ins.a], t[ins.b]); break;
      case Op::kLe: t[ins.dst] = dag.le(t[ins.a], t[ins.b]); break;
      case Op::kGe: t[ins.dst] = dag.ge(t[ins.a], t[ins.b]); break;
      case Op::kSelect:
        t[ins.dst] = dag.ite(dag.truthy(t[ins.a]), t[ins.b], t[ins.c]);
        break;
      case Op::kLoadField:
        t[ins.dst] = st.fields[static_cast<std::size_t>(ins.field)];
        break;
      case Op::kStoreField: {
        const FieldInfo& fi = p4sim::field_info(ins.field);
        if (!fi.writable) break;  // PacketView::set no-op
        const NodeId v =
            dag.band(t[ins.a], dag.constant(width_mask(fi.width_bits)));
        NodeId& slot = st.fields[static_cast<std::size_t>(ins.field)];
        if (fi.always_valid) {
          slot = v;
        } else {
          const NodeId valid = dag.variable(
              {VarRef::Origin::kValidity,
               static_cast<std::uint32_t>(fi.validity), 1});
          slot = dag.ite(valid, v, slot);
        }
        break;
      }
      case Op::kLoadReg: {
        const RegModel m = model_of(env, ins.reg);
        const NodeId idx = t[ins.a];
        NodeId chain = dag.reg_init(ins.reg, idx, m.mask);
        if (const std::vector<RegStore>* seq = st.stores_for(ins.reg)) {
          for (const RegStore& s : *seq) {
            chain = dag.ite(dag.eq(s.index, idx), s.value, chain);
          }
        }
        if (m.bounded) {
          chain = dag.ite(dag.lt(idx, dag.constant(m.size)), chain,
                          dag.constant(0));
        }
        t[ins.dst] = chain;
        break;
      }
      case Op::kStoreReg: {
        const RegModel m = model_of(env, ins.reg);
        // Record the width-masked value; bounds drop is resolved at reads
        // and in the final-state comparison (an OOB index never matches an
        // in-bounds read, and the final-state map applies the bound).
        stores_for_mut(st, ins.reg)
            .push_back({t[ins.a], dag.band(t[ins.b], dag.constant(m.mask))});
        break;
      }
      case Op::kHash1: t[ins.dst] = dag.hash1(t[ins.a]); break;
      case Op::kHash2: t[ins.dst] = dag.hash2(t[ins.a]); break;
      case Op::kDigest:
        st.digests.push_back({static_cast<std::uint32_t>(ins.imm),
                              dag.truthy(t[ins.c]), t[ins.a], t[ins.b],
                              t[ins.dst]});
        break;
    }
    if (env.dst_bits != nullptr) {
      env.dst_bits->push_back(writes_temp ? dag.node(t[ins.dst]).bits
                                          : kAllOnes);
    }
  }
}

}  // namespace analysis::sym

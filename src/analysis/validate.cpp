#include "analysis/validate.hpp"

#include <algorithm>
#include <cstdio>
#include <map>
#include <utility>
#include <vector>

#include "analysis/dataflow.hpp"

namespace analysis {

using sym::Dag;
using sym::DigestEvent;
using sym::NodeId;
using sym::RegStore;
using sym::SymEnv;
using sym::SymState;
using sym::Valuation;
using sym::VarRef;
using sym::Word;

namespace {

std::string hex(Word v) {
  if (v <= 9) return std::to_string(v);
  char buf[19];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return std::string(buf);
}

/// One observable pair that must evaluate equal under every input.
struct NodeObligation {
  std::string name;
  NodeId before = 0;
  NodeId after = 0;
};

/// A register whose store sequences did not match structurally: compared by
/// concrete final-cell state (store order applied, bounds and widths
/// honored), which is the honest observable when a store was dropped,
/// duplicated, or had its operands rewritten past canonical form.
struct RegObligation {
  p4sim::RegisterId reg = 0;
  std::string name;
  std::vector<RegStore> before;
  std::vector<RegStore> after;
  bool bounded = false;
  Word size = 0;
  Word mask = ~Word{0};
};

struct Mismatch {
  std::string observable;
  Word before_value = 0;
  Word after_value = 0;
};

/// All collected obligations plus the DAG they refer into.
struct Obligations {
  std::size_t total = 0;
  std::vector<NodeObligation> residual;  ///< node pairs with different ids
  std::vector<RegObligation> regs;

  [[nodiscard]] bool proved() const noexcept {
    return residual.empty() && regs.empty();
  }
  [[nodiscard]] std::size_t residual_count() const noexcept {
    return residual.size() + regs.size();
  }
};

void compare_nodes(Obligations& out, std::string name, NodeId before,
                   NodeId after) {
  ++out.total;
  if (before != after) {
    out.residual.push_back({std::move(name), before, after});
  }
}

/// Digest streams: walk both event lists (events whose condition normalized
/// to constant 0 can never fire and are skipped — this is how constprop's
/// provably-dead digest removal is proven).  Same-id events pair up as
/// condition + condition-gated payload obligations; an event left without a
/// partner must be provably silent (condition == 0).
void compare_digests(Obligations& out, Dag& dag,
                     const std::vector<DigestEvent>& before,
                     const std::vector<DigestEvent>& after) {
  auto live = [](const std::vector<DigestEvent>& events) {
    std::vector<const DigestEvent*> kept;
    for (const DigestEvent& e : events) {
      if (e.cond != 0) kept.push_back(&e);  // node 0 == constant 0
    }
    return kept;
  };
  const std::vector<const DigestEvent*> b = live(before);
  const std::vector<const DigestEvent*> a = live(after);

  const NodeId zero = dag.constant(0);
  std::size_t i = 0;
  std::size_t j = 0;
  std::size_t k = 0;
  while (i < b.size() || j < a.size()) {
    const std::string tag = "digest#" + std::to_string(k++);
    if (i < b.size() && j < a.size() && b[i]->id == a[j]->id) {
      compare_nodes(out, tag + ".cond", b[i]->cond, a[j]->cond);
      // Payloads only observable when the digest fires.
      const NodeId pb0 = dag.ite(b[i]->cond, b[i]->payload0, zero);
      const NodeId pa0 = dag.ite(a[j]->cond, a[j]->payload0, zero);
      const NodeId pb1 = dag.ite(b[i]->cond, b[i]->payload1, zero);
      const NodeId pa1 = dag.ite(a[j]->cond, a[j]->payload1, zero);
      const NodeId pb2 = dag.ite(b[i]->cond, b[i]->payload2, zero);
      const NodeId pa2 = dag.ite(a[j]->cond, a[j]->payload2, zero);
      compare_nodes(out, tag + ".payload0", pb0, pa0);
      compare_nodes(out, tag + ".payload1", pb1, pa1);
      compare_nodes(out, tag + ".payload2", pb2, pa2);
      ++i;
      ++j;
    } else if (i < b.size()) {
      compare_nodes(out, tag + ".dropped(id=" + std::to_string(b[i]->id) + ")",
                    b[i]->cond, zero);
      ++i;
    } else {
      compare_nodes(out, tag + ".added(id=" + std::to_string(a[j]->id) + ")",
                    zero, a[j]->cond);
      ++j;
    }
  }
}

std::string register_name(const ValidateOptions& opts, p4sim::RegisterId reg) {
  if (opts.registers != nullptr && reg < opts.registers->array_count()) {
    return opts.registers->info(reg).name;
  }
  return "reg" + std::to_string(reg);
}

/// Per-register store sequences.  Equal length with identical (index, value)
/// node pairs is a structural proof (passes never reorder stores, so order
/// preservation is part of the contract); anything else falls back to a
/// concrete final-cell-state comparison so reorderings and overwrites are
/// judged by what the RegisterFile would actually hold.
void compare_registers(Obligations& out, const ValidateOptions& opts,
                       const SymState& before, const SymState& after) {
  std::vector<p4sim::RegisterId> touched;
  for (const auto& [reg, seq] : before.stores) touched.push_back(reg);
  for (const auto& [reg, seq] : after.stores) touched.push_back(reg);
  std::sort(touched.begin(), touched.end());
  touched.erase(std::unique(touched.begin(), touched.end()), touched.end());

  static const std::vector<RegStore> kEmpty;
  for (const p4sim::RegisterId reg : touched) {
    const std::vector<RegStore>* sb = before.stores_for(reg);
    const std::vector<RegStore>* sa = after.stores_for(reg);
    if (sb == nullptr) sb = &kEmpty;
    if (sa == nullptr) sa = &kEmpty;
    ++out.total;
    const bool structural =
        sb->size() == sa->size() &&
        std::equal(sb->begin(), sb->end(), sa->begin(),
                   [](const RegStore& x, const RegStore& y) {
                     return x.index == y.index && x.value == y.value;
                   });
    if (structural) continue;

    RegObligation ob;
    ob.reg = reg;
    ob.name = register_name(opts, reg);
    ob.before = *sb;
    ob.after = *sa;
    if (opts.registers != nullptr && reg < opts.registers->array_count()) {
      const p4sim::RegisterArrayInfo& info = opts.registers->info(reg);
      ob.bounded = true;
      ob.size = info.size;
      const std::uint32_t w = std::min(info.width_bits, 64u);
      ob.mask = w >= 64 ? ~Word{0} : (Word{1} << w) - 1;
    }
    out.regs.push_back(std::move(ob));
  }
}

/// Evaluates every obligation under one valuation; returns the first
/// disagreement (nullopt = this input cannot tell the programs apart).
std::optional<Mismatch> check(const Dag& dag, const Obligations& obs,
                              const Valuation& val) {
  std::vector<std::optional<Word>> cache(dag.size());
  for (const NodeObligation& ob : obs.residual) {
    const Word vb = sym::evaluate(dag, ob.before, val, cache);
    const Word va = sym::evaluate(dag, ob.after, val, cache);
    if (vb != va) return Mismatch{ob.name, vb, va};
  }
  for (const RegObligation& ob : obs.regs) {
    auto final_cells = [&](const std::vector<RegStore>& seq) {
      std::map<Word, Word> cells;
      for (const RegStore& s : seq) {
        const Word idx = sym::evaluate(dag, s.index, val, cache);
        if (ob.bounded && idx >= ob.size) continue;  // OOB writes drop
        cells[idx] = sym::evaluate(dag, s.value, val, cache);
      }
      return cells;
    };
    const std::map<Word, Word> cb = final_cells(ob.before);
    const std::map<Word, Word> ca = final_cells(ob.after);
    std::vector<Word> indexes;
    for (const auto& [idx, v] : cb) indexes.push_back(idx);
    for (const auto& [idx, v] : ca) indexes.push_back(idx);
    std::sort(indexes.begin(), indexes.end());
    indexes.erase(std::unique(indexes.begin(), indexes.end()), indexes.end());
    for (const Word idx : indexes) {
      // A cell one side never stored keeps its initial value.
      const Word init = val.reg_value(ob.reg, idx, ob.mask);
      const auto ib = cb.find(idx);
      const auto ia = ca.find(idx);
      const Word vb = ib != cb.end() ? ib->second : init;
      const Word va = ia != ca.end() ? ia->second : init;
      if (vb != va) {
        return Mismatch{ob.name + "[" + std::to_string(idx) + "]", vb, va};
      }
    }
  }
  return std::nullopt;
}

Valuation with_pins(std::uint64_t seed,
                    const std::vector<std::pair<VarRef, Word>>& vars,
                    const std::vector<Valuation::RegCell>& regs) {
  Valuation val(seed);
  for (const auto& [ref, v] : vars) val.pin_var(ref, v);
  for (const Valuation::RegCell& c : regs) val.pin_reg(c.reg, c.index, c.value);
  return val;
}

/// Shrinks a failing valuation: every input read by the failing check is
/// pinned, then values are zeroed and individual bits cleared as long as
/// the disagreement survives.  The result is the smallest assignment (by
/// popcount) this greedy walk reaches — typically one or two live inputs.
Counterexample minimize(const Dag& dag, const Obligations& obs,
                        std::uint64_t seed) {
  Valuation base(seed);
  const std::optional<Mismatch> first = check(dag, obs, base);
  std::vector<std::pair<VarRef, Word>> vars = base.used_vars();
  std::vector<Valuation::RegCell> regs = base.used_regs();

  auto still_fails = [&](const std::vector<std::pair<VarRef, Word>>& v,
                         const std::vector<Valuation::RegCell>& r) {
    const Valuation trial = with_pins(seed, v, r);
    return check(dag, obs, trial).has_value();
  };

  for (std::size_t i = 0; i < vars.size(); ++i) {
    if (vars[i].second == 0) continue;
    const Word saved = vars[i].second;
    vars[i].second = 0;
    if (!still_fails(vars, regs)) vars[i].second = saved;
  }
  for (std::size_t i = 0; i < regs.size(); ++i) {
    if (regs[i].value == 0) continue;
    const Word saved = regs[i].value;
    regs[i].value = 0;
    if (!still_fails(vars, regs)) regs[i].value = saved;
  }
  for (auto& [ref, value] : vars) {
    for (int bit = 63; bit >= 0 && value != 0; --bit) {
      const Word m = Word{1} << bit;
      if ((value & m) == 0) continue;
      value &= ~m;
      if (!still_fails(vars, regs)) value |= m;
    }
  }
  for (Valuation::RegCell& cell : regs) {
    for (int bit = 63; bit >= 0 && cell.value != 0; --bit) {
      const Word m = Word{1} << bit;
      if ((cell.value & m) == 0) continue;
      cell.value &= ~m;
      if (!still_fails(vars, regs)) cell.value |= m;
    }
  }

  const Valuation final_val = with_pins(seed, vars, regs);
  const std::optional<Mismatch> mism = check(dag, obs, final_val);

  Counterexample ce;
  ce.seed = seed;
  const Mismatch& m = mism ? *mism : *first;
  ce.observable = m.observable;
  ce.before_value = m.before_value;
  ce.after_value = m.after_value;
  std::string bind;
  for (const auto& [ref, v] : vars) {
    if (v == 0) continue;  // zeros are the default reading; keep it short
    if (!bind.empty()) bind += ", ";
    bind += ref.name() + "=" + hex(v);
  }
  for (const Valuation::RegCell& c : regs) {
    if (c.value == 0) continue;
    if (!bind.empty()) bind += ", ";
    bind += "reg" + std::to_string(c.reg) + "[" + std::to_string(c.index) +
            "]=" + hex(c.value);
  }
  if (bind.empty()) bind = "all inputs zero";
  ce.bindings = std::move(bind);
  return ce;
}

/// Shared tail: collect obligations from two final states, prove or sample.
ValidationOutcome judge(Dag& dag, const ValidateOptions& opts,
                        const SymState& before, const SymState& after) {
  Obligations obs;
  for (std::size_t t = 0; t < p4sim::kTempCount; ++t) {
    if (opts.live_out.test(t)) {
      compare_nodes(obs, "t" + std::to_string(t), before.temps[t],
                    after.temps[t]);
    }
  }
  for (std::size_t f = 0; f < p4sim::kFieldCount; ++f) {
    compare_nodes(obs, p4sim::field_info(static_cast<p4sim::FieldRef>(f)).name,
                  before.fields[f], after.fields[f]);
  }
  compare_digests(obs, dag, before.digests, after.digests);
  compare_registers(obs, opts, before, after);

  ValidationOutcome out;
  out.obligations = obs.total;
  out.residual = obs.residual_count();
  out.dag_nodes = dag.size();
  if (obs.proved()) {
    out.method = ValidationMethod::kProved;
    return out;
  }
  for (std::size_t s = 0; s < opts.samples; ++s) {
    const std::uint64_t seed = opts.seed + 0x9E3779B97F4A7C15ull * (s + 1);
    const Valuation val(seed);
    if (check(dag, obs, val)) {
      out.method = ValidationMethod::kRefuted;
      out.counterexample = minimize(dag, obs, seed);
      return out;
    }
  }
  out.method = ValidationMethod::kSampled;
  return out;
}

ValidationOutcome budget_outcome(const Dag& dag) {
  ValidationOutcome out;
  out.method = ValidationMethod::kBudget;
  out.dag_nodes = dag.size();
  return out;
}

}  // namespace

const char* to_string(ValidationMethod m) noexcept {
  switch (m) {
    case ValidationMethod::kProved: return "proved";
    case ValidationMethod::kSampled: return "sampled";
    case ValidationMethod::kRefuted: return "refuted";
    case ValidationMethod::kBudget: return "budget";
    case ValidationMethod::kInapplicable: return "inapplicable";
  }
  return "?";
}

std::string Counterexample::render() const {
  return "observable '" + observable + "': before=" + hex(before_value) +
         " after=" + hex(after_value) + " when " + bindings +
         " (seed " + hex(seed) + ")";
}

ValidationOutcome validate_rewrite(const p4sim::Program& before,
                                   const p4sim::Program& after,
                                   const ValidateOptions& opts) {
  Dag dag;
  const SymEnv env{opts.registers, opts.dirty_on_entry};
  const SymState sb = sym::sym_execute(before, dag, env);
  if (dag.size() > opts.max_dag_nodes) return budget_outcome(dag);
  const SymState sa = sym::sym_execute(after, dag, env);
  if (dag.size() > opts.max_dag_nodes) return budget_outcome(dag);
  return judge(dag, opts, sb, sa);
}

ValidationOutcome validate_pack(const p4sim::Program& first,
                                const p4sim::Program& second,
                                const p4sim::Program& packed,
                                const ValidateOptions& opts) {
  Dag dag;
  const SymEnv env{opts.registers, opts.dirty_on_entry};
  SymState sb = sym::sym_execute(first, dag, env);
  sym::sym_execute_onto(second, dag, env, sb);
  if (dag.size() > opts.max_dag_nodes) return budget_outcome(dag);
  const SymState sa = sym::sym_execute(packed, dag, env);
  if (dag.size() > opts.max_dag_nodes) return budget_outcome(dag);
  return judge(dag, opts, sb, sa);
}

ValidationOutcome validate_commute(const p4sim::Program& first,
                                   const p4sim::Program& second,
                                   const ValidateOptions& opts) {
  // Commutation is only claimed for fully state-disjoint stages: no shared
  // register arrays, no field one writes and the other touches, no temp one
  // writes and the other reads on entry, and no shared written temp that a
  // later stage still observes.  Anything else: no claim (kInapplicable) —
  // the concatenation proof from validate_pack carries correctness.
  const ProgramFacts f1 = collect_facts(first);
  const ProgramFacts f2 = collect_facts(second);
  ValidationOutcome out;
  const auto fields_overlap = [](const ProgramFacts& w, const ProgramFacts& r) {
    return (w.fields_written & (r.fields_read | r.fields_written)).any();
  };
  if (f1.registers_conflict(f2) || fields_overlap(f1, f2) ||
      fields_overlap(f2, f1) || (f1.written & f2.upward_exposed).any() ||
      (f2.written & f1.upward_exposed).any() ||
      (f1.written & f2.written & opts.live_out).any()) {
    out.method = ValidationMethod::kInapplicable;
    return out;
  }

  Dag dag;
  const SymEnv env{opts.registers, opts.dirty_on_entry};
  SymState s12 = sym::sym_execute(first, dag, env);
  const std::size_t first_digests = s12.digests.size();
  sym::sym_execute_onto(second, dag, env, s12);
  SymState s21 = sym::sym_execute(second, dag, env);
  const std::size_t second_digests = s21.digests.size();
  sym::sym_execute_onto(first, dag, env, s21);
  if (dag.size() > opts.max_dag_nodes) return budget_outcome(dag);

  // Digest ordering across the two programs necessarily differs between the
  // two run orders; the per-program subsequences are the real observable.
  // Split each stream at the first program's recorded event count and
  // compare program-wise.
  auto split = [](const SymState& st, std::size_t n, bool first_part) {
    const auto cut =
        st.digests.begin() + static_cast<std::ptrdiff_t>(n);
    const auto begin = first_part ? st.digests.begin() : cut;
    const auto end = first_part ? cut : st.digests.end();
    return std::vector<DigestEvent>(begin, end);
  };
  SymState sb = s12;
  SymState sa = s21;
  sb.digests = split(s12, first_digests, true);
  sa.digests = split(s21, second_digests, false);  // first's events in s21
  auto first_part = judge(dag, opts, sb, sa);
  if (!first_part.equivalent()) return first_part;

  SymState sb2 = s12;
  SymState sa2 = s21;
  sb2.digests = split(s12, first_digests, false);  // second's events in s12
  sa2.digests = split(s21, second_digests, true);
  // Registers/fields/temps were already compared in first_part; clearing
  // stores here would erase information, so re-judging full states is fine
  // (structural comparisons are cheap and cached by the shared DAG).
  auto second_part = judge(dag, opts, sb2, sa2);
  second_part.obligations += first_part.obligations;
  second_part.residual += first_part.residual;
  return second_part;
}

}  // namespace analysis

// Error-bound abstract interpretation: how WRONG can an output be?
//
// The overflow pass (overflow.hpp) proves values FIT; this pass proves they
// are CLOSE to the computation the program approximates.  Every abstract
// value carries, next to its implemented-value interval, a proven bound on
// the distance between the implemented integer and the *ideal* real-valued
// computation — the same instruction sequence with exact arithmetic on the
// data path (shr as true division, approx-helper spans as their real
// functions) while control flow, table/register indexing, hashing and
// masking follow the implementation ("mixed semantics", the standard way to
// give a floating-point-style error meaning to an integer kernel).
//
// The error metric is the distance on the ring R/2^64*Z (and R/2^w*Z at
// every width-w register/field store): wrapping adds and subs translate the
// ring, so exact integer chains keep error ZERO across wraps — modular
// arithmetic is its own spec, not an approximation.  Consequences:
//
//   * every bound is finite: half the ring (2^63, `kErrTop` in Q32) is the
//     vacuous worst case, and a vacuous OUTPUT bound is what S4-PREC-001
//     reports;
//   * subtraction never poisons (window expiry, variance identities);
//   * truncating shifts add at most one unit (shr approximates division);
//   * the approx sqrt/square/mul/log2 expansions contribute exactly their
//     builder-declared contracts (p4sim::ApproxSpan) plus a Lipschitz term
//     for any error already present on their inputs.
//
// Error bounds are Q32 fixed point (32 fractional bits) in saturating U128
// arithmetic, so sub-unit contributions (truncation terms, declared
// fractional error) accumulate without rounding to zero or overflowing.
//
// The fixpoint engine mirrors the overflow pass: one abstract packet per
// iteration, monotone joins, polynomial (degree <= 2) acceleration of both
// the value and the error histories to the observation budget, and a
// widen-to-vacuous fallback (S4-PREC-002) when growth is irregular.
//
// Every bound this pass proves is empirically falsifiable: the
// precision_differential_test replays random streams against a long-double
// oracle implementing the mixed semantics and asserts measured <= proven.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/interval.hpp"
#include "analysis/overflow.hpp"
#include "analysis/verifier.hpp"
#include "p4sim/switch.hpp"
#include "sketch/sizing.hpp"

namespace analysis {

/// Fractional bits of the Q32 error fixed point.
inline constexpr unsigned kErrFracBits = 32;
/// One value unit of error, in Q32.
inline constexpr U128 kErrOne = static_cast<U128>(1) << kErrFracBits;
/// Half the 2^64 ring in Q32: the vacuous "no information" error bound.
/// Sound for ANY value (ring distance cannot exceed half the ring), so the
/// domain needs no poison element — only this finite top.
inline constexpr U128 kErrTop = static_cast<U128>(1)
                                << (63 + kErrFracBits);

/// Half the 2^w ring in Q32 — the vacuous bound for a width-w cell.
[[nodiscard]] constexpr U128 err_ring_half(unsigned width_bits) noexcept {
  const unsigned w = width_bits >= 64 ? 64 : width_bits;
  return w == 0 ? 0 : static_cast<U128>(1) << (w - 1 + kErrFracBits);
}

/// Pass-specific knobs.  `unsound_drop_shr_truncation` deliberately breaks
/// the kShr transfer function (drops the truncation term) so the
/// differential harness can prove it catches unsound bounds; never set it
/// outside tests.
struct PrecisionOptions {
  bool unsound_drop_shr_truncation = false;
};

/// Proven error bound for one output cell (register array, index-joined,
/// or packet field at end of pipeline).
struct ErrorBound {
  std::string name;
  unsigned width_bits = 64;
  std::uint64_t value_hi = 0;  ///< implemented-value upper bound (clamped)
  U128 err_q32 = 0;            ///< proven max |impl - ideal|, Q32
  bool vacuous = false;        ///< err_q32 >= half the width-w ring
  bool assumed = false;        ///< widened, not proven (S4-PREC-002)

  /// Error in value units, rounded up.
  [[nodiscard]] std::uint64_t err_units() const noexcept {
    const U128 u = (err_q32 + kErrOne - 1) >> kErrFracBits;
    return clamp_u64(u);
  }
  /// Relative error vs the proven value bound (0 when the cell is 0).
  [[nodiscard]] double relative() const noexcept;
};

struct PrecisionResult {
  DiagnosticEngine diags;
  std::vector<ErrorBound> register_bounds;  ///< one per register array
  std::vector<ErrorBound> field_bounds;     ///< fields the pipeline writes
  std::size_t iterations = 0;
  bool fixpoint = false;
  bool extrapolated = false;
  [[nodiscard]] bool ok() const noexcept { return !diags.has_errors(); }
};

/// Runs the pass over an abstract pipeline (fixture entry point).
[[nodiscard]] PrecisionResult run_precision_pass(
    const AbstractPipeline& pipeline, const AnalysisOptions& options,
    const PrecisionOptions& popts = {});

/// Analyzes a fully configured switch (build_pipeline_model + pass).
[[nodiscard]] PrecisionResult analyze_precision(
    const p4sim::P4Switch& sw, const AnalysisOptions& options,
    const PrecisionOptions& popts = {});

/// Runs the sketch auto-sizer for one app's observation budget and reports
/// the outcome through the diagnostic engine: S4-PREC-006 (note) with the
/// recommended count-min/count-sketch geometry when the eps-delta target is
/// achievable, S4-PREC-005 (error) when it is not.
sketch::SketchSizing report_sketch_sizing(double eps, double delta,
                                          std::uint64_t observations,
                                          const std::string& app,
                                          DiagnosticEngine& diags);

/// Renders a Q32 error bound as a decimal string with two fractional
/// digits ("1.25", "0.00"), exact for the integer part (128-bit safe).
[[nodiscard]] std::string err_q32_str(U128 err_q32);

/// Renders a Q32 error bound as a full-precision decimal integer string of
/// the raw Q32 value (for JSON interchange; Python reads it arbitrary-
/// precision).
[[nodiscard]] std::string err_q32_raw_str(U128 err_q32);

}  // namespace analysis

#include "analysis/diagnostics.hpp"

#include <algorithm>
#include <ostream>
#include <tuple>

namespace analysis {

const char* severity_name(Severity s) noexcept {
  switch (s) {
    case Severity::kNote: return "note";
    case Severity::kWarning: return "warning";
    case Severity::kError: return "error";
  }
  return "?";
}

const std::vector<RuleInfo>& rule_catalogue() {
  static const std::vector<RuleInfo> kRules = {
      // ---- overflow / value-range pass (overflow.cpp) ----------------------
      {"S4-OVF-001", Severity::kError,
       "register write may exceed the array's declared width (value is "
       "truncated; the accumulator silently wraps)"},
      {"S4-OVF-002", Severity::kError,
       "packet/metadata field write may exceed the field's width"},
      {"S4-OVF-003", Severity::kError,
       "64-bit arithmetic overflow: an add/mul/shl result can exceed "
       "2^64-1 and wraps (the N*Xsumsq-style product hazard)"},
      {"S4-OVF-004", Severity::kNote,
       "subtraction may wrap below zero (unsigned modular arithmetic); "
       "benign when algebraically guarded, but intervals cannot prove it"},
      {"S4-OVF-005", Severity::kWarning,
       "register growth did not stabilize and does not fit a polynomial "
       "pattern; width-compliance at the configured observation count is "
       "unproven"},
      // ---- register hazard pass (hazards.cpp) ------------------------------
      {"S4-HAZ-001", Severity::kWarning,
       "register array is accessed through more than one index expression "
       "in a single action (hardware stateful ALUs allow one indexed "
       "read-modify-write per packet)"},
      {"S4-HAZ-002", Severity::kWarning,
       "register array is re-accessed after a write in the same action "
       "(read-after-write: the access cannot fold into one RMW operation)"},
      {"S4-HAZ-003", Severity::kNote,
       "register array is accessed from actions in more than one pipeline "
       "stage (hardware pins an array to a single stage)"},
      // ---- target-profile constraint linter (constraints.cpp) --------------
      {"S4-TGT-001", Severity::kError,
       "runtime multiplication on a target without a multiplier (use "
       "mul_shift_add or approx_square)"},
      {"S4-TGT-002", Severity::kError,
       "program exceeds the target's instruction budget"},
      {"S4-TGT-003", Severity::kWarning,
       "dependency chain exceeds the target's pipeline stage budget"},
      {"S4-TGT-004", Severity::kError,
       "shift by a runtime-variable amount on a target that only shifts by "
       "compile-time constants"},
      {"S4-TGT-005", Severity::kWarning,
       "register state exceeds the target's stateful memory budget"},
      {"S4-TGT-006", Severity::kWarning,
       "program uses more scratch temps (PHV containers) than the target "
       "provides"},
      // ---- emitted-P4 source lint (constraints.cpp) ------------------------
      {"S4-SRC-001", Severity::kError,
       "division or modulo operator in emitted P4 source (no P4 target "
       "divides)"},
      {"S4-SRC-002", Severity::kError,
       "floating-point type in emitted P4 source"},
      {"S4-SRC-003", Severity::kError,
       "loop construct in emitted P4 source (P4 control flow is loop-free)"},
      // ---- dataflow optimizer (pass_manager.cpp) ---------------------------
      {"S4-OPT-001", Severity::kNote,
       "constant propagation folded or simplified instructions"},
      {"S4-OPT-002", Severity::kNote,
       "dead-code elimination removed or renumbered instructions"},
      {"S4-OPT-003", Severity::kNote,
       "common-subexpression elimination reused earlier results"},
      {"S4-OPT-004", Severity::kNote,
       "strength reduction rewrote multiplications as shifts"},
      {"S4-OPT-005", Severity::kNote,
       "stage packing merged adjacent non-conflicting stages"},
      {"S4-OPT-006", Severity::kWarning,
       "temps cross a stage boundary; zero-seeding and temp compaction are "
       "suppressed for the action"},
      {"S4-OPT-007", Severity::kWarning,
       "optimizer stopped before reaching a fixpoint (iteration budget)"},
      {"S4-TV-001", Severity::kError,
       "translation validation refuted an optimizer rewrite; a concrete "
       "counterexample valuation is attached and the rewrite was reverted"},
      {"S4-TV-002", Severity::kWarning,
       "equivalence established only by randomized sampling of a residual "
       "obligation, not by canonicalization proof (error under strict)"},
      {"S4-TV-003", Severity::kError,
       "stage-packing validation failed: the packed stage is not equivalent "
       "to running the original stages in sequence"},
      {"S4-TV-004", Severity::kNote,
       "translation validation summary (checked/proved/sampled/refuted)"},
      {"S4-TV-005", Severity::kWarning,
       "symbolic execution node budget exceeded before the pass could be "
       "validated (error under strict)"},
      {"S4-PREC-001", Severity::kError,
       "an output register or field carries a vacuous error bound (half its "
       "ring): the precision analysis proves nothing about its accuracy"},
      {"S4-PREC-002", Severity::kWarning,
       "error growth did not stabilize and is not polynomial; the bound at "
       "the observation budget is assumed at the vacuous half-ring"},
      {"S4-PREC-003", Severity::kNote,
       "proven per-output max |error| and value bound under the configured "
       "observation budget"},
      {"S4-PREC-004", Severity::kError,
       "approx-span accuracy metadata is invalid (bad instruction range, "
       "output temp, or zero denominator); the span is ignored"},
      {"S4-PREC-005", Severity::kError,
       "no sketch geometry can meet the requested eps-delta target within "
       "the hash layout's width/depth caps"},
      {"S4-PREC-006", Severity::kNote,
       "recommended count-min/count-sketch width and depth for the "
       "requested eps-delta target and observation budget"},
  };
  return kRules;
}

void DiagnosticEngine::report(std::string rule, Severity severity,
                              std::string message, SourceLoc loc) {
  diags_.push_back(Diagnostic{std::move(rule), severity, std::move(message),
                              std::move(loc)});
}

std::size_t DiagnosticEngine::count(Severity s) const noexcept {
  std::size_t n = 0;
  for (const auto& d : diags_) {
    if (d.severity == s) ++n;
  }
  return n;
}

void DiagnosticEngine::sort() {
  std::stable_sort(diags_.begin(), diags_.end(),
                   [](const Diagnostic& a, const Diagnostic& b) {
                     return std::make_tuple(
                                static_cast<int>(b.severity), a.loc.program,
                                a.loc.instruction, a.rule, a.loc.object) <
                            std::make_tuple(
                                static_cast<int>(a.severity), b.loc.program,
                                b.loc.instruction, b.rule, b.loc.object);
                   });
}

std::size_t DiagnosticEngine::render_text(std::ostream& os,
                                          Severity min) const {
  std::size_t lines = 0;
  std::size_t suppressed = 0;
  for (const auto& d : diags_) {
    if (d.severity < min) {
      ++suppressed;
      continue;
    }
    os << d.loc.program;
    if (d.loc.instruction >= 0) os << ':' << d.loc.instruction;
    os << ": " << severity_name(d.severity) << ": " << d.message << " ["
       << d.rule;
    if (!d.loc.object.empty()) os << ": " << d.loc.object;
    os << "]\n";
    ++lines;
  }
  os << count(Severity::kError) << " error(s), " << count(Severity::kWarning)
     << " warning(s), " << count(Severity::kNote) << " note(s)";
  if (suppressed != 0) os << " (" << suppressed << " below threshold)";
  os << '\n';
  return lines;
}

void DiagnosticEngine::render_json(std::ostream& os) const {
  os << "{\"diagnostics\":[";
  bool first = true;
  for (const auto& d : diags_) {
    if (!first) os << ',';
    first = false;
    os << "{\"rule\":\"" << json_escape(d.rule) << "\",\"severity\":\""
       << severity_name(d.severity) << "\",\"message\":\""
       << json_escape(d.message) << "\",\"program\":\""
       << json_escape(d.loc.program) << "\",\"instruction\":"
       << d.loc.instruction << ",\"object\":\"" << json_escape(d.loc.object)
       << "\"}";
  }
  os << "],\"counts\":{\"error\":" << count(Severity::kError)
     << ",\"warning\":" << count(Severity::kWarning)
     << ",\"note\":" << count(Severity::kNote) << "}}";
}

std::string json_escape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          constexpr char kHex[] = "0123456789abcdef";
          out += "\\u00";
          out += kHex[(c >> 4) & 0xF];
          out += kHex[c & 0xF];
        } else {
          out += c;
        }
    }
  }
  return out;
}

}  // namespace analysis

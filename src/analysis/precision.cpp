#include "analysis/precision.hpp"

#include <algorithm>
#include <array>
#include <map>
#include <set>
#include <tuple>

#include "analysis/acceleration.hpp"
#include "analysis/pipeline_model.hpp"
#include "analysis/symbolic.hpp"
#include "p4sim/disasm.hpp"

namespace analysis {

namespace {

using p4sim::ApproxSpan;
using p4sim::FieldRef;
using p4sim::Instruction;
using p4sim::Op;
using p4sim::Program;
using p4sim::Word;

/// One abstract value: implemented-value interval (ideal-integer 128-bit,
/// as in the overflow pass) + proven error vs the mixed-semantics ideal.
///
/// `absolute` records whether `err` bounds the REAL difference
/// |ideal - impl|, not merely the ring distance.  Ring-only errors survive
/// translation (add/sub/shl/mask) but cannot be divided (shr) or scaled
/// (mul): a ring representative may be off by a multiple of 2^64, which
/// division smears into a non-multiple.  Absolute bounds are restored at
/// every width-masked store, where the ideal is re-anchored to the
/// representative nearest the implementation (modular reduction is the
/// declared meaning of masking).
struct PrecVal {
  Interval iv;
  U128 err = 0;  ///< Q32, always <= kErrTop
  bool absolute = true;

  bool operator==(const PrecVal& o) const {
    return iv == o.iv && err == o.err && absolute == o.absolute;
  }
};

U128 e_clamp(U128 v) { return v < kErrTop ? v : kErrTop; }

PrecVal join_val(const PrecVal& a, const PrecVal& b) {
  PrecVal out;
  out.iv = join(a.iv, b.iv);
  out.err = std::max(a.err, b.err);
  out.absolute = a.absolute && b.absolute;
  return out;
}

struct State {
  std::vector<PrecVal> regs;
  bool operator==(const State& o) const { return regs == o.regs; }
};

State join_state(const State& a, const State& b) {
  State out = a;
  for (std::size_t i = 0; i < out.regs.size(); ++i) {
    out.regs[i] = join_val(out.regs[i], b.regs[i]);
  }
  return out;
}

using FieldState = std::array<PrecVal, p4sim::kFieldCount>;

FieldState join_fields(const FieldState& a, const FieldState& b) {
  FieldState out;
  for (std::size_t i = 0; i < out.size(); ++i) {
    out[i] = join_val(a[i], b[i]);
  }
  return out;
}

std::string u128_str(U128 v) {
  if (v == 0) return "0";
  std::string s;
  while (v != 0) {
    s += static_cast<char>('0' + static_cast<unsigned>(v % 10));
    v /= 10;
  }
  std::reverse(s.begin(), s.end());
  return s;
}

/// Integer square root of a U128, rounded down.
U128 isqrt_u128(U128 v) {
  if (v == 0) return 0;
  U128 r = 0;
  // Highest power of four <= v.
  U128 bit = static_cast<U128>(1) << ((bit_length(v) - 1) & ~1u);
  while (bit != 0) {
    if (v >= r + bit) {
      v -= r + bit;
      r = (r >> 1) + bit;
    } else {
      r >>= 1;
    }
    bit >>= 2;
  }
  return r;
}

bool writes_temp(Op op) {
  switch (op) {
    case Op::kStoreField:
    case Op::kStoreReg:
    case Op::kDigest: return false;
    default: return true;
  }
}

/// Implemented-value cap: the 64-bit machine word the target holds, even
/// when the ideal-integer interval ran past 2^64.
U128 impl_cap(const Interval& iv) { return std::min(iv.hi, kMax64); }

/// Truncation contribution of `shr` by up to `s` bits: (2^s - 1)/2^s < 1
/// value unit, exact in Q32 for s <= 32.
U128 shr_trunc_term(U128 s) {
  if (s == 0) return 0;
  const unsigned sh = s >= 32 ? 32u : static_cast<unsigned>(s);
  return kErrOne - (kErrOne >> sh);
}

/// Width in bits that provably contains a temp's implemented value: the
/// tighter of its interval bound and its possible-bits mask from the DAG.
unsigned value_width(const Interval& iv, Word bits) {
  return std::min(bit_length(impl_cap(iv)),
                  static_cast<unsigned>(bit_length(static_cast<U128>(bits))));
}

/// Per-program facts computed once: per-instruction possible-bits of the
/// dst temp (from the symbolic DAG) and the validated approx spans.
struct PrecFacts {
  std::vector<Word> bits;  ///< one per instruction; all-ones for stores
  std::vector<ApproxSpan> spans;
  std::vector<int> span_ending_at;  ///< code idx -> span idx, -1 if none
};

PrecFacts build_facts(const Program& p, const p4sim::RegisterFile& rf,
                         DiagnosticEngine* diags) {
  PrecFacts facts;
  {
    sym::Dag dag;
    sym::SymEnv env;
    env.registers = &rf;
    env.dst_bits = &facts.bits;
    (void)sym::sym_execute(p, dag, env);
  }
  facts.span_ending_at.assign(p.code.size(), -1);
  for (const ApproxSpan& span : p.approx_spans) {
    const bool range_ok = span.begin < span.end && span.end <= p.code.size();
    const bool out_ok =
        range_ok && writes_temp(p.code[span.end - 1].op) &&
        p.code[span.end - 1].dst == span.out && span.out < p4sim::kTempCount &&
        span.in_a < p4sim::kTempCount && span.in_b < p4sim::kTempCount;
    if (!range_ok || !out_ok || span.rel_den == 0) {
      if (diags != nullptr) {
        diags->report(
            "S4-PREC-004", Severity::kError,
            "approx-span metadata is invalid (range [" +
                std::to_string(span.begin) + ", " + std::to_string(span.end) +
                "), out t" + std::to_string(span.out) +
                "); the span is ignored and its body analyzed literally",
            SourceLoc{p.name, static_cast<int>(span.begin), "approx_span"});
      }
      continue;
    }
    facts.span_ending_at[span.end - 1] = static_cast<int>(facts.spans.size());
    facts.spans.push_back(span);
  }
  return facts;
}

/// Error bound for the declared contract of `span` applied to inputs whose
/// abstract values (captured at span.begin) are `in_a` / `in_b`, with the
/// implemented result interval `out_iv`.  Returns kErrTop when the inputs
/// carry error the contract's Lipschitz terms cannot absorb.
U128 span_error(const ApproxSpan& span, const PrecVal& in_a,
                const PrecVal& in_b, const Interval& out_iv) {
  // Lipschitz terms need real (absolute) input error, not just ring.
  const bool a_ok = in_a.err == 0 || in_a.absolute;
  const bool b_ok = in_b.err == 0 || in_b.absolute;
  if (!a_ok || !b_ok || in_a.err >= kErrTop || in_b.err >= kErrTop) {
    return kErrTop;
  }
  const U128 ea = in_a.err;
  const U128 eb = in_b.err;
  const U128 cap_a = impl_cap(in_a.iv);
  const U128 cap_b = impl_cap(in_b.iv);
  U128 err = sat_mul(span.abs, kErrOne);
  switch (span.fn) {
    case ApproxSpan::Fn::kSqrt: {
      // |approx - sqrt(x)| <= sqrt(x)*rel + abs, plus |sqrt(x) - sqrt(x^)|
      // <= sqrt(|x - x^|).
      const U128 s_max = sat_add(isqrt_u128(cap_a), 1);
      err = sat_add(err, sat_mul(sat_mul(s_max, kErrOne), span.rel_num) /
                             span.rel_den);
      if (ea != 0) {
        err = sat_add(err, sat_add(isqrt_u128(sat_shl(ea, kErrFracBits)), 1));
      }
      break;
    }
    case ApproxSpan::Fn::kSquare: {
      // |approx - x^2| <= x^2*rel, plus |x^2 - x^^2| <= e*(2x + e).
      const U128 sq = sat_mul(cap_a, cap_a);
      err = sat_add(err, sat_shl(sat_mul(sq, span.rel_num) / span.rel_den,
                                 kErrFracBits));
      if (ea != 0) {
        err = sat_add(err, sat_mul(ea, sat_mul(cap_a, 2)));
        err = sat_add(err, sat_mul(ea, ea) >> kErrFracBits);
      }
      break;
    }
    case ApproxSpan::Fn::kMul: {
      // |approx - a*b| <= a*b*rel, plus the exact-product drift
      // ea*b + eb*a + ea*eb.
      const U128 prod = sat_mul(cap_a, cap_b);
      err = sat_add(err, sat_shl(sat_mul(prod, span.rel_num) / span.rel_den,
                                 kErrFracBits));
      err = sat_add(err, sat_mul(ea, cap_b));
      err = sat_add(err, sat_mul(eb, cap_a));
      err = sat_add(err, sat_mul(ea, eb) >> kErrFracBits);
      break;
    }
    case ApproxSpan::Fn::kLog2: {
      // Output units are 2^kLog2FracBits per bit; d/dy 256*log2(y) =
      // 256/(ln2 * y) <= 370/y, bounded with the smallest ideal input.
      if (ea != 0) {
        const U128 e_units = ea >> kErrFracBits;
        if (in_a.iv.lo <= sat_add(e_units, 1)) return kErrTop;
        const U128 denom = in_a.iv.lo - e_units - 1;
        err = sat_add(err, sat_add(sat_mul(ea, 370) / denom, kErrOne));
      }
      break;
    }
    case ApproxSpan::Fn::kTableLookup: {
      // Declared per-entry error vs the implemented output scale; the
      // lookup key must be exact (no Lipschitz contract for a table).
      if (ea != 0 || eb != 0) return kErrTop;
      err = sat_add(err, sat_shl(sat_mul(impl_cap(out_iv), span.rel_num) /
                                     span.rel_den,
                                 kErrFracBits));
      break;
    }
  }
  return e_clamp(err);
}

/// One abstract execution of a program under the error domain.
void transfer(const Program& p, const PrecFacts& facts,
              const std::vector<Interval>& params,
              const p4sim::RegisterFile& rf, const PrecisionOptions& popts,
              State& s, FieldState& fs, std::vector<PrecVal>& temps,
              std::vector<Word>& temp_bits) {
  temps.assign(p4sim::kTempCount, PrecVal{});
  temp_bits.assign(p4sim::kTempCount, 0);
  // Input snapshots for spans whose end we have not reached yet.
  std::vector<std::pair<PrecVal, PrecVal>> span_in(facts.spans.size());
  std::vector<bool> span_in_set(facts.spans.size(), false);

  for (std::size_t i = 0; i < p.code.size(); ++i) {
    for (std::size_t k = 0; k < facts.spans.size(); ++k) {
      if (facts.spans[k].begin == i) {
        span_in[k] = {temps[facts.spans[k].in_a], temps[facts.spans[k].in_b]};
        span_in_set[k] = true;
      }
    }
    const Instruction& ins = p.code[i];
    const PrecVal a = temps[ins.a];
    const PrecVal b = temps[ins.b];
    bool ovf = false;
    bool wrap = false;
    PrecVal r;
    switch (ins.op) {
      case Op::kConst: r.iv = Interval::constant(ins.imm); break;
      case Op::kParam:
        r.iv =
            ins.imm < params.size() ? params[ins.imm] : Interval::constant(0);
        break;
      case Op::kMov: r = a; break;
      case Op::kAdd:
        // Ring translation: wrapping changes nothing mod 2^64.
        r.iv = iv_add(a.iv, b.iv, &ovf);
        r.err = e_clamp(sat_add(a.err, b.err));
        r.absolute = a.absolute && b.absolute && !ovf;
        break;
      case Op::kSub:
        r.iv = iv_sub(a.iv, b.iv, &wrap);
        r.err = e_clamp(sat_add(a.err, b.err));
        r.absolute = a.absolute && b.absolute && !wrap;
        break;
      case Op::kMul:
        r.iv = iv_mul(a.iv, b.iv, &ovf);
        if (a.err == 0 && b.err == 0) {
          r.err = 0;
        } else if (a.absolute && b.absolute) {
          // |a^b^ - ab| <= ea*b + eb*a + ea*eb, impl values capped at 2^64.
          r.err = sat_mul(a.err, impl_cap(b.iv));
          r.err = sat_add(r.err, sat_mul(b.err, impl_cap(a.iv)));
          r.err = sat_add(r.err, sat_mul(a.err, b.err) >> kErrFracBits);
          r.err = e_clamp(r.err);
          r.absolute = !ovf;
        } else {
          r.err = kErrTop;
          r.absolute = false;
        }
        break;
      case Op::kShl: {
        r.iv = iv_shl(a.iv, b.iv, &ovf);
        const Interval sh = iv_shift_amount(b.iv);
        const unsigned s_hi = static_cast<unsigned>(sh.hi);
        // (d + k*2^64)*2^s keeps the multiple, so ring errors scale too.
        r.err = e_clamp(sat_shl(a.err, s_hi));
        r.absolute = a.absolute && !ovf;
        break;
      }
      case Op::kShr: {
        r.iv = iv_shr(a.iv, b.iv);
        const Interval sh = iv_shift_amount(b.iv);
        const unsigned s_lo = static_cast<unsigned>(sh.lo);
        const unsigned s_hi = static_cast<unsigned>(sh.hi);
        // Exact division when the DAG proves the shifted-out bits are 0.
        const Word low_mask =
            s_hi >= 64 ? ~Word{0} : ((Word{1} << s_hi) - 1);
        const bool impl_exact = (temp_bits[ins.a] & low_mask) == 0;
        if (a.err == 0) {
          r.err = impl_exact ? 0 : shr_trunc_term(s_hi);
        } else if (a.absolute) {
          // ideal/2^s vs impl>>s: input error divides (floored: +1 ulp),
          // truncation adds.
          r.err = sat_add(a.err >> s_lo, 1);
          if (!impl_exact) r.err = sat_add(r.err, shr_trunc_term(s_hi));
        } else {
          // A ring-only representative divided by 2^s is meaningless.
          r.err = kErrTop;
        }
        if (popts.unsound_drop_shr_truncation && a.err == 0) {
          r.err = 0;  // deliberately wrong; see PrecisionOptions
        }
        r.err = e_clamp(r.err);
        r.absolute = r.err < kErrTop;
        break;
      }
      // Bitwise ops with one error-free operand are re-anchoring points:
      // the ideal is redefined as the implemented result plus the input
      // deviation wrapped onto the 2^k ring that provably contains the
      // result (the oracle implements exactly this).  Multiples of 2^64
      // vanish under the wrap, so even ring-only input errors come out
      // absolute.  For AND the result fits the narrower operand; for OR
      // and XOR it fits the union of both operands' bit ranges.
      case Op::kAnd: {
        r.iv = iv_and(a.iv, b.iv);
        if (a.err == 0 && b.err == 0) {
          r.err = 0;
        } else if (a.err == 0 || b.err == 0) {
          const PrecVal& x = a.err == 0 ? b : a;
          const unsigned k =
              std::min(value_width(a.iv, temp_bits[ins.a]),
                       value_width(b.iv, temp_bits[ins.b]));
          r.err = std::min(x.err, err_ring_half(k));
          r.absolute = r.err < kErrTop;
        } else {
          r.err = kErrTop;
          r.absolute = false;
        }
        break;
      }
      case Op::kOr:
      case Op::kXor: {
        r.iv = ins.op == Op::kOr ? iv_or(a.iv, b.iv) : iv_xor(a.iv, b.iv);
        if (a.err == 0 && b.err == 0) {
          r.err = 0;
        } else if (a.err == 0 || b.err == 0) {
          const PrecVal& x = a.err == 0 ? b : a;
          const unsigned k =
              std::max(value_width(a.iv, temp_bits[ins.a]),
                       value_width(b.iv, temp_bits[ins.b]));
          r.err = std::min(x.err, err_ring_half(k));
          r.absolute = r.err < kErrTop;
        } else {
          r.err = kErrTop;
          r.absolute = false;
        }
        break;
      }
      case Op::kNot:
        // ~x = 2^64-1-x in both worlds: error passes through.
        r.iv = iv_not(a.iv);
        r.err = a.err;
        r.absolute = a.absolute;
        break;
      // Mixed semantics: the ideal follows the implementation's control
      // decisions, so comparison outputs are exact by definition.
      case Op::kEq: r.iv = iv_eq(a.iv, b.iv); break;
      case Op::kNe: {
        const Interval e = iv_eq(a.iv, b.iv);
        r.iv = iv_bool(e.hi == 0, e.lo == 1);
        break;
      }
      case Op::kLt: r.iv = iv_lt(a.iv, b.iv); break;
      case Op::kGt: r.iv = iv_lt(b.iv, a.iv); break;
      case Op::kLe: r.iv = iv_le(a.iv, b.iv); break;
      case Op::kGe: r.iv = iv_le(b.iv, a.iv); break;
      case Op::kSelect: {
        const PrecVal& c = temps[ins.c];
        r.iv = iv_select(a.iv, b.iv, c.iv);
        if (a.iv.lo >= 1) {
          r.err = b.err;
          r.absolute = b.absolute;
        } else if (a.iv.hi == 0) {
          r.err = c.err;
          r.absolute = c.absolute;
        } else {
          r.err = std::max(b.err, c.err);
          r.absolute = b.absolute && c.absolute;
        }
        break;
      }
      case Op::kLoadField:
        r = fs[static_cast<std::size_t>(ins.field)];
        break;
      case Op::kStoreField: {
        const unsigned w = field_bits(ins.field);
        PrecVal stored = a;
        stored.err = std::min(stored.err, err_ring_half(w));
        stored.absolute = true;  // width-masked store re-anchors the ideal
        fs[static_cast<std::size_t>(ins.field)] = stored;
        continue;
      }
      case Op::kLoadReg:
        if (ins.reg < s.regs.size()) {
          r = s.regs[ins.reg];
        } else {
          r.iv = Interval::top64();
          r.err = kErrTop;
          r.absolute = false;
        }
        break;
      case Op::kStoreReg: {
        if (ins.reg >= s.regs.size()) continue;
        const unsigned w = rf.info(ins.reg).width_bits;
        PrecVal stored = b;
        stored.iv = b.iv;
        stored.err = std::min(stored.err, err_ring_half(w));
        stored.absolute = true;  // width-masked store re-anchors the ideal
        s.regs[ins.reg] = join_val(s.regs[ins.reg], stored);
        continue;
      }
      // Hashing selects indices; the ideal uses the same hash of the same
      // implemented key (mixed semantics), so the result is exact.
      case Op::kHash1:
      case Op::kHash2: r.iv = Interval::top64(); break;
      case Op::kDigest: continue;
    }
    temps[ins.dst] = r;
    if (i < facts.bits.size()) temp_bits[ins.dst] = facts.bits[i];
    const int span_idx = facts.span_ending_at[i];
    if (span_idx >= 0 && span_in_set[static_cast<std::size_t>(span_idx)]) {
      // The span's declared contract replaces whatever the literal shift
      // body would prove: the ORACLE's ideal applies the real function at
      // this point, so the bound must be against that ideal.
      const ApproxSpan& span = facts.spans[static_cast<std::size_t>(span_idx)];
      const auto& [in_a, in_b] = span_in[static_cast<std::size_t>(span_idx)];
      PrecVal& out = temps[span.out];
      out.err = span_error(span, in_a, in_b, out.iv);
      out.absolute = out.err < kErrTop;
    }
  }
}

struct Stepper {
  const AbstractPipeline* pipe = nullptr;
  const AnalysisOptions* options = nullptr;
  const PrecisionOptions* popts = nullptr;
  const std::map<const Program*, PrecFacts>* facts = nullptr;
  std::vector<PrecVal> temps;
  std::vector<Word> temp_bits;

  FieldState initial_fields() const {
    FieldState fs;
    for (std::size_t i = 0; i < fs.size(); ++i) {
      const auto f = static_cast<FieldRef>(i);
      fs[i].iv = Interval::width(field_bits(f));
      if (f == FieldRef::kMetaIngressTs) {
        fs[i].iv = Interval{0, options->timestamp_bound_ns};
      }
    }
    for (const auto& [field, hi] : options->field_bounds) {
      fs[static_cast<std::size_t>(field)].iv = Interval{0, hi};
    }
    return fs;
  }

  State step(const State& s, FieldState* final_fields = nullptr) {
    State cur = s;
    FieldState fs = initial_fields();
    for (const auto& stage : pipe->stages) {
      State merged = cur;
      FieldState fmerged = fs;
      for (const auto& alt : stage) {
        State t = cur;
        FieldState ft = fs;
        transfer(*alt.program, facts->at(alt.program), alt.params,
                 *pipe->registers, *popts, t, ft, temps, temp_bits);
        merged = join_state(merged, t);
        fmerged = join_fields(fmerged, ft);
      }
      cur = merged;
      fs = fmerged;
    }
    if (final_fields != nullptr) *final_fields = fs;
    return join_state(s, cur);
  }
};

}  // namespace

double ErrorBound::relative() const noexcept {
  if (err_q32 == 0) return 0.0;
  const double err = static_cast<double>(err_q32) /
                     static_cast<double>(kErrOne);
  const double scale =
      value_hi == 0 ? 1.0 : static_cast<double>(value_hi);
  return err / scale;
}

std::string err_q32_str(U128 err_q32) {
  const U128 ip = err_q32 >> kErrFracBits;
  const unsigned frac = static_cast<unsigned>(
      ((err_q32 & (kErrOne - 1)) * 100) >> kErrFracBits);
  std::string s = u128_str(ip) + ".";
  s += static_cast<char>('0' + frac / 10);
  s += static_cast<char>('0' + frac % 10);
  return s;
}

std::string err_q32_raw_str(U128 err_q32) { return u128_str(err_q32); }

PrecisionResult run_precision_pass(const AbstractPipeline& pipeline,
                                   const AnalysisOptions& options,
                                   const PrecisionOptions& popts) {
  PrecisionResult result;
  const std::size_t arrays = pipeline.registers->array_count();

  // Per-program facts: possible-bits + validated spans (S4-PREC-004).
  std::map<const Program*, PrecFacts> facts;
  std::bitset<p4sim::kFieldCount> written_fields;
  for (const auto& stage : pipeline.stages) {
    for (const auto& alt : stage) {
      if (facts.count(alt.program) == 0) {
        facts.emplace(alt.program,
                      build_facts(*alt.program, *pipeline.registers,
                                  &result.diags));
      }
      for (const Instruction& ins : alt.program->code) {
        if (ins.op == Op::kStoreField) {
          written_fields.set(static_cast<std::size_t>(ins.field));
        }
      }
    }
  }

  State s;
  s.regs.assign(arrays, PrecVal{});
  Stepper stepper{&pipeline, &options, &popts, &facts, {}, {}};

  const std::uint64_t target =
      std::max<std::uint64_t>(1, options.max_observations);
  // Two accelerated histories per array: value high bound and error bound.
  std::vector<AccelHistory> hist_hi(arrays);
  std::vector<AccelHistory> hist_err(arrays);
  for (auto& h : hist_hi) h.fill(0);
  for (auto& h : hist_err) h.fill(0);

  std::uint64_t iter = 0;   // observations covered (jumps count in full)
  std::uint64_t steps = 0;  // abstract packets actually executed
  bool fixpoint = false;
  bool extrapolated = false;
  std::vector<std::size_t> unproven;

  const auto exact_steps = [&](std::uint64_t until) {
    while (iter < until) {
      State next = stepper.step(s);
      ++iter;
      ++steps;
      for (std::size_t r = 0; r < arrays; ++r) {
        accel_push(hist_hi[r], next.regs[r].iv.hi);
        accel_push(hist_err[r], next.regs[r].err);
      }
      if (next == s) {
        fixpoint = true;
        return;
      }
      s = std::move(next);
    }
  };

  exact_steps(std::min<std::uint64_t>(target, options.warmup_iterations));

  if (!fixpoint && iter < target) {
    bool all_poly = true;
    std::vector<std::array<U128, 4>> fits(arrays, {0, 0, 0, 0});
    for (std::size_t r = 0; r < arrays && all_poly; ++r) {
      auto& f = fits[r];
      if (hist_hi[r][kAccelWindow - 1] != hist_hi[r][0]) {
        all_poly = poly_fit(hist_hi[r], &f[0], &f[1]);
      }
      if (all_poly && hist_err[r][kAccelWindow - 1] != hist_err[r][0]) {
        all_poly = poly_fit(hist_err[r], &f[2], &f[3]);
      }
    }
    if (all_poly && iter >= kAccelWindow) {
      const U128 remaining = target - iter;
      for (std::size_t r = 0; r < arrays; ++r) {
        s.regs[r].iv.hi =
            poly_jump(s.regs[r].iv.hi, fits[r][0], fits[r][1], remaining);
        s.regs[r].err = e_clamp(
            poly_jump(s.regs[r].err, fits[r][2], fits[r][3], remaining));
      }
      iter = target;
      extrapolated = true;
      for (int settle = 0; settle < 4 && !fixpoint; ++settle) {
        State next = stepper.step(s);
        ++steps;
        if (next == s) fixpoint = true;
        s = std::move(next);
      }
    } else {
      exact_steps(
          std::min<std::uint64_t>(target, options.max_exact_iterations));
      if (!fixpoint && iter < target) {
        State probe = stepper.step(s);
        ++steps;
        for (std::size_t r = 0; r < arrays; ++r) {
          if (!(probe.regs[r] == s.regs[r])) {
            unproven.push_back(r);
            const unsigned w =
                pipeline.registers->info(static_cast<p4sim::RegisterId>(r))
                    .width_bits;
            probe.regs[r].iv = join(probe.regs[r].iv, Interval::width(w));
            probe.regs[r].err = err_ring_half(w);
          }
        }
        s = std::move(probe);
        iter = target;
        for (int settle = 0; settle < 2; ++settle) {
          s = stepper.step(s);
          ++steps;
        }
      }
    }
  }

  // Final abstract packet: captures end-of-pipeline field state.
  FieldState fields;
  s = stepper.step(s, &fields);
  ++steps;

  const std::string scope =
      fixpoint ? "for any packet count"
               : "within " + std::to_string(target) + " observations";

  std::set<std::size_t> assumed(unproven.begin(), unproven.end());
  for (std::size_t r = 0; r < arrays; ++r) {
    const auto& info =
        pipeline.registers->info(static_cast<p4sim::RegisterId>(r));
    ErrorBound eb;
    eb.name = info.name;
    eb.width_bits = info.width_bits;
    eb.value_hi = clamp_u64(s.regs[r].iv.hi);
    eb.err_q32 = s.regs[r].err;
    eb.vacuous = eb.err_q32 >= err_ring_half(info.width_bits);
    eb.assumed = assumed.count(r) != 0;
    if (eb.assumed) {
      result.diags.report(
          "S4-PREC-002", Severity::kWarning,
          "register '" + eb.name + "' error growth did not stabilize and is "
              "not polynomial; its error bound at " + std::to_string(target) +
              " observations is assumed at the vacuous half-ring, not proven",
          SourceLoc{pipeline.name, -1, eb.name});
    }
    if (eb.vacuous) {
      result.diags.report(
          "S4-PREC-001", Severity::kError,
          "register '" + eb.name + "' carries a vacuous error bound (half "
              "the " + std::to_string(info.width_bits) + "-bit ring): the "
              "analysis proves nothing about its accuracy " + scope,
          SourceLoc{pipeline.name, -1, eb.name});
    } else if (eb.err_q32 != 0) {
      result.diags.report(
          "S4-PREC-003", Severity::kNote,
          "register '" + eb.name + "' proven max |error| " +
              err_q32_str(eb.err_q32) + " vs implemented bound " +
              std::to_string(eb.value_hi) + " " + scope,
          SourceLoc{pipeline.name, -1, eb.name});
    }
    result.register_bounds.push_back(std::move(eb));
  }

  for (std::size_t f = 0; f < p4sim::kFieldCount; ++f) {
    if (!written_fields.test(f)) continue;
    const auto field = static_cast<FieldRef>(f);
    const unsigned w = field_bits(field);
    ErrorBound eb;
    eb.name = p4sim::field_name(field);
    eb.width_bits = w;
    eb.value_hi = clamp_u64(fields[f].iv.hi);
    eb.err_q32 = fields[f].err;
    eb.vacuous = eb.err_q32 >= err_ring_half(w);
    if (eb.vacuous) {
      result.diags.report(
          "S4-PREC-001", Severity::kError,
          "field '" + eb.name + "' carries a vacuous error bound (half the " +
              std::to_string(w) + "-bit ring): the analysis proves nothing "
              "about its accuracy " + scope,
          SourceLoc{pipeline.name, -1, eb.name});
    } else if (eb.err_q32 != 0) {
      result.diags.report(
          "S4-PREC-003", Severity::kNote,
          "field '" + eb.name + "' proven max |error| " +
              err_q32_str(eb.err_q32) + " vs implemented bound " +
              std::to_string(eb.value_hi) + " " + scope,
          SourceLoc{pipeline.name, -1, eb.name});
    }
    result.field_bounds.push_back(std::move(eb));
  }

  result.iterations = steps;
  result.fixpoint = fixpoint;
  result.extrapolated = extrapolated;
  result.diags.sort();
  return result;
}

PrecisionResult analyze_precision(const p4sim::P4Switch& sw,
                                  const AnalysisOptions& options,
                                  const PrecisionOptions& popts) {
  const PipelineModel model = build_pipeline_model(sw);
  return run_precision_pass(model.pipe, options, popts);
}

sketch::SketchSizing report_sketch_sizing(double eps, double delta,
                                          std::uint64_t observations,
                                          const std::string& app,
                                          DiagnosticEngine& diags) {
  const sketch::SketchSizing s =
      sketch::suggest_sizing(eps, delta, observations);
  if (!s.feasible) {
    diags.report("S4-PREC-005", Severity::kError,
                 "no sketch geometry meets eps=" + std::to_string(eps) +
                     " delta=" + std::to_string(delta) + ": " + s.note,
                 SourceLoc{app, -1, "sketch_sizing"});
    return s;
  }
  diags.report(
      "S4-PREC-006", Severity::kNote,
      "for eps=" + std::to_string(eps) + " delta=" + std::to_string(delta) +
          " over " + std::to_string(observations) +
          " observations: count-min " + std::to_string(s.cm_depth) + "x" +
          std::to_string(s.cm_width) + " (" +
          std::to_string(s.cm_memory_bytes) + " B, excess <= " +
          std::to_string(s.cm_max_excess) + "), count-sketch " +
          std::to_string(s.cs_depth) + "x" + std::to_string(s.cs_width) +
          " (" + std::to_string(s.cs_memory_bytes) + " B)",
      SourceLoc{app, -1, "sketch_sizing"});
  return s;
}

}  // namespace analysis

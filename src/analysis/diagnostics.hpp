// Shared diagnostics engine for the Stat4 static verifier.
//
// Every analysis pass (overflow, hazards, target constraints, source lint)
// reports through this layer: a diagnostic carries a STABLE rule id (the
// contract CI and golden tests key on), a severity, a human message, and an
// IR location (program name + instruction index + the object concerned, e.g.
// a register array name).  The engine renders reports as text (compiler
// style, one line per finding) and as JSON (for CI tooling); the rule
// catalogue documents every id the verifier can emit and backs
// `stat4_lint --list-rules` and docs/ANALYSIS.md.
#pragma once

#include <cstdint>
#include <iosfwd>
#include <string>
#include <vector>

namespace analysis {

enum class Severity : std::uint8_t { kNote, kWarning, kError };

[[nodiscard]] const char* severity_name(Severity s) noexcept;

/// Where a finding anchors.  instruction < 0 means "whole program" (or whole
/// switch when program is empty).
struct SourceLoc {
  std::string program;
  int instruction = -1;
  std::string object;  ///< register / field / rule-specific object name
};

struct Diagnostic {
  std::string rule;  ///< stable id, e.g. "S4-OVF-001"
  Severity severity = Severity::kWarning;
  std::string message;
  SourceLoc loc;
};

/// One catalogue entry per rule id the verifier can emit.
struct RuleInfo {
  const char* id;
  Severity default_severity;
  const char* summary;
};

/// The full rule catalogue (stable ids, documented in docs/ANALYSIS.md).
[[nodiscard]] const std::vector<RuleInfo>& rule_catalogue();

/// Collects diagnostics across passes; severity-ordered rendering.
class DiagnosticEngine {
 public:
  void report(std::string rule, Severity severity, std::string message,
              SourceLoc loc = {});

  [[nodiscard]] const std::vector<Diagnostic>& diagnostics() const noexcept {
    return diags_;
  }
  [[nodiscard]] std::size_t count(Severity s) const noexcept;
  [[nodiscard]] bool has_errors() const noexcept {
    return count(Severity::kError) != 0;
  }

  /// Stable ordering: severity (errors first), then program, instruction,
  /// rule id — so text and JSON output are deterministic golden-testable.
  void sort();

  /// Compiler-style text report; diagnostics below `min` are summarized but
  /// not listed.  Returns the number of lines printed.
  std::size_t render_text(std::ostream& os,
                          Severity min = Severity::kNote) const;

  /// JSON report: {"diagnostics":[...],"counts":{...}} (schema in
  /// docs/ANALYSIS.md).  Always includes every severity.
  void render_json(std::ostream& os) const;

 private:
  std::vector<Diagnostic> diags_;
};

/// JSON string escaping shared by the renderers.
[[nodiscard]] std::string json_escape(const std::string& s);

}  // namespace analysis

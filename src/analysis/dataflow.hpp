// Reusable dataflow analyses over the p4sim straight-line IR.
//
// Everything the transform passes (passes.hpp) need to reason about a
// program lives here, factored so each analysis is independently testable:
//
//   op_effects()        — per-opcode metadata: which operand slots are read,
//                         whether dst is written, purity, state access.  The
//                         one subtle entry is kDigest, which READS a, b, c
//                         AND dst (the payload) and writes nothing;
//   collect_facts()     — per-program summaries (written / upward-exposed
//                         temp sets, register and field access sets) used by
//                         liveness seeding, stage packing, and the pipeline
//                         temp-sharing analysis in pass_manager.cpp;
//   liveness_after()    — backward temp liveness, the basis of dead-code
//                         elimination;
//   fold_instruction()  — compile-time evaluation mirroring execute()
//                         bit-exactly (wrapping uint64 arithmetic, shift
//                         amounts masked & 63, 0/1 comparisons, the real
//                         hash externs), so constant folding can never
//                         diverge from the interpreter.
//
// Temps persist across pipeline stages within one packet (stages share the
// ExecutionContext), so per-program results are only safe to act on
// together with the cross-stage context computed by the PassManager.
#pragma once

#include <bitset>
#include <cstdint>
#include <optional>
#include <set>
#include <vector>

#include "p4sim/action.hpp"
#include "p4sim/parser.hpp"

namespace analysis {

/// Set of scratch temps (PHV containers).
using TempSet = std::bitset<p4sim::kTempCount>;

/// Static effects of one opcode.  `pure` means the result is a function of
/// the read temps and the immediate only — no packet, register, or digest
/// state involved — so the instruction is removable when dead and foldable
/// when its inputs are known.  kParam is NOT pure (it reads action data)
/// but is still CSE-able within one execution; the passes special-case it.
struct OpEffects {
  bool writes_dst = false;
  bool reads_a = false;
  bool reads_b = false;
  bool reads_c = false;
  bool reads_dst = false;  ///< kDigest only: dst is a payload *source*
  bool pure = false;
  bool reads_field = false;
  bool writes_field = false;
  bool reads_reg = false;
  bool writes_reg = false;
  /// Emits into the digest stream — never removable, never mergeable.
  bool digest = false;
};

[[nodiscard]] const OpEffects& op_effects(p4sim::Op op) noexcept;

/// True when the instruction has an observable effect beyond writing its
/// dst temp (field/register store, digest emission).
[[nodiscard]] bool has_side_effect(p4sim::Op op) noexcept;

/// Per-program dataflow summary.
struct ProgramFacts {
  TempSet written;         ///< temps the program may write
  TempSet upward_exposed;  ///< temps read before any write (stage inputs)
  std::set<p4sim::RegisterId> regs_read;
  std::set<p4sim::RegisterId> regs_written;
  std::bitset<p4sim::kFieldCount> fields_read;
  std::bitset<p4sim::kFieldCount> fields_written;
  std::size_t max_temp_plus_one = 0;  ///< 1 + highest temp referenced

  [[nodiscard]] bool touches_register(p4sim::RegisterId r) const {
    return regs_read.count(r) != 0 || regs_written.count(r) != 0;
  }
  /// True when the program shares any register array with `other` — the
  /// hazard condition stage packing must avoid (a merged action would gain
  /// S4-HAZ-001/002 multi-access findings the split stages did not have).
  [[nodiscard]] bool registers_conflict(const ProgramFacts& other) const;
};

[[nodiscard]] ProgramFacts collect_facts(const p4sim::Program& program);

/// Backward liveness.  Returns, for each instruction index i, the set of
/// temps live immediately AFTER instruction i executes; `live_out` seeds
/// the set at the end of the program (temps later pipeline stages may read).
/// An instruction defining a temp not live after it, with no side effect,
/// is dead.
[[nodiscard]] std::vector<TempSet> liveness_after(
    const p4sim::Program& program, const TempSet& live_out);

/// Evaluates a pure instruction whose temp operands hold the given values,
/// mirroring execute() exactly (wrapping arithmetic, `& 63` shift masking,
/// 0/1 comparisons, the stat4 hash externs).  Returns nullopt for opcodes
/// whose result depends on runtime state (loads, params, stores, digest).
[[nodiscard]] std::optional<p4sim::Word> fold_instruction(
    const p4sim::Instruction& ins, p4sim::Word a, p4sim::Word b,
    p4sim::Word c);

/// A canonical kConst: every unused operand slot zeroed, so structurally
/// equal rewrites compare equal (CSE keys, golden emissions, idempotence).
[[nodiscard]] p4sim::Instruction make_const(p4sim::TempId dst, p4sim::Word v);

/// A canonical kMov (see make_const).
[[nodiscard]] p4sim::Instruction make_mov(p4sim::TempId dst, p4sim::TempId src);

/// Structural instruction equality over the slots the opcode actually uses.
[[nodiscard]] bool same_instruction(const p4sim::Instruction& lhs,
                                    const p4sim::Instruction& rhs);

}  // namespace analysis

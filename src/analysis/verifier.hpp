// Stat4 static verifier: driver, target profiles, and analysis options.
//
// The verifier runs three IR-level passes over a p4sim program or a fully
// configured switch, all reporting into one DiagnosticEngine:
//
//   overflow    — interval/value-range propagation (overflow.hpp): proves or
//                 refutes, with a concrete witness range, that every register
//                 and field write fits its declared width for the configured
//                 observation count and field bounds;
//   hazards     — register access conflicts (hazards.hpp): multi-address
//                 access, RMW splits, cross-stage sharing;
//   constraints — target-profile lint (constraints.hpp): multiply on
//                 shift-only targets, instruction/stage/PHV/state budgets,
//                 plus a source-level scan of the p4gen emission for
//                 division/modulo/float/loops.
//
// The severity of hazard findings is keyed to the TargetProfile: bmv2 runs
// them as portability notes/warnings, `strict` escalates them to errors
// (single-RMW stateful ALUs, stage-pinned registers).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "analysis/diagnostics.hpp"
#include "analysis/interval.hpp"
#include "p4sim/action.hpp"
#include "p4sim/switch.hpp"

namespace analysis {

/// What the lint target supports.  Extends p4sim::AluProfile (the execution
/// gate) with the pipeline-shaped constraints a hardware compiler enforces.
struct TargetProfile {
  std::string name = "bmv2";
  bool has_mul = true;
  /// Target only shifts by compile-time constants (lookup-table shifters).
  bool const_shift_only = false;
  /// One indexed read-modify-write per register array per packet; violations
  /// (S4-HAZ-001/002) escalate from warning to error.
  bool single_access_registers = false;
  /// A register array is usable from exactly one pipeline stage; S4-HAZ-003
  /// escalates from note to error.
  bool single_stage_registers = false;
  std::size_t max_instructions = 4096;
  std::size_t max_stage_chain = 0;  ///< longest dependency chain; 0 = no cap
  std::size_t max_temps = p4sim::kTempCount;
  std::size_t max_state_bytes = 0;  ///< register memory budget; 0 = no cap

  /// bmv2 software target: everything goes (the profile the simulator runs).
  [[nodiscard]] static TargetProfile bmv2();
  /// A multiplier-less ASIC that still has a barrel shifter (the "some
  /// hardware switches cannot square" target of Section 2).
  [[nodiscard]] static TargetProfile hardware_nomul();
  /// A strict pipeline ASIC: no multiplier, constant shifts only, single-RMW
  /// stage-pinned registers, 12-ish stage budget.  Used to prove programs
  /// portable — and by the seeded-violation fixtures.
  [[nodiscard]] static TargetProfile strict();
  /// Lookup by name ("bmv2", "hardware-nomul", "strict"); throws
  /// std::invalid_argument on anything else.
  [[nodiscard]] static TargetProfile by_name(const std::string& name);

  [[nodiscard]] p4sim::AluProfile alu() const {
    return p4sim::AluProfile{has_mul, max_instructions};
  }
};

struct AnalysisOptions {
  TargetProfile profile = TargetProfile::bmv2();
  /// Observation budget N the overflow pass proves width-compliance for: the
  /// number of packets a distribution absorbs between controller resets.
  /// The paper's variance identity var(NX) = N*Xsumsq - Xsum^2 cubes this
  /// bound (Section 2.2), so 64-bit registers cap it near 2^21 — the default
  /// leaves a 2x margin below that cliff and the analyzer proves it.
  std::uint64_t max_observations = std::uint64_t{1} << 20;
  /// Upper bound on the ingress timestamp (ns since boot); ~78 hours.
  std::uint64_t timestamp_bound_ns = std::uint64_t{1} << 48;
  /// Per-field overrides of the natural header-width value bounds.
  std::vector<std::pair<p4sim::FieldRef, std::uint64_t>> field_bounds;
  /// Program-level entry only: value bounds of action_data words (defaults
  /// to [0,0] like the executor's missing-param behaviour).
  std::vector<Interval> param_bounds;
  bool run_overflow = true;
  bool run_hazards = true;
  bool run_constraints = true;
  /// Switch-level only: also lint the p4gen emission for div/mod/float/loop.
  bool lint_emitted_p4 = true;
  /// Exact abstract iterations before polynomial acceleration kicks in.
  std::size_t warmup_iterations = 128;
  /// Hard cap on exact iterations when growth is not polynomial.
  std::size_t max_exact_iterations = 4096;
};

/// Final proven bound of one register array — the "prove" artifact the CLI
/// prints alongside any diagnostics.
struct RegisterBound {
  std::string name;
  unsigned width_bits = 64;
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;   ///< clamped to 2^64-1 for display
  bool exceeds_width = false;
};

struct AnalysisResult {
  DiagnosticEngine diags;
  std::vector<RegisterBound> register_bounds;
  std::size_t iterations = 0;      ///< abstract packet iterations executed
  bool fixpoint = false;           ///< state stabilized before the budget
  bool extrapolated = false;       ///< polynomial acceleration was applied
  [[nodiscard]] bool ok() const noexcept { return !diags.has_errors(); }
};

/// Analyze one straight-line program against explicitly declared registers.
/// This is the fixture entry point: it works on programs that
/// P4Switch::add_action would reject (e.g. kMul on a no-mul profile), which
/// is exactly what a pre-deployment linter must catch.
[[nodiscard]] AnalysisResult verify_program(const p4sim::Program& program,
                                            const p4sim::RegisterFile& regs,
                                            const AnalysisOptions& options);

/// Analyze a fully configured switch: every action reachable from the
/// pipeline, with action-data bounds joined over the actually installed
/// table entries (plus defaults), hazards across stages, target constraints,
/// and — when enabled — the emitted P4 source.
[[nodiscard]] AnalysisResult verify_switch(const p4sim::P4Switch& sw,
                                           const AnalysisOptions& options);

}  // namespace analysis

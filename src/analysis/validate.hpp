// Translation validation for the optimizer passes.
//
// Instead of trusting a pass, every rewrite it performs is re-proven after
// the fact: the program before and the program after are symbolically
// executed against the SAME hash-consed DAG (symbolic.hpp), and every
// observable — live-out temps, every packet field, the per-register store
// sequences, and the emitted digest stream — must be equivalent.
//
// Two tiers of evidence:
//   kProved   — every observable pair normalized to the identical node id.
//               This is a proof over ALL inputs (the constructors only merge
//               computations equal under every valuation).
//   kSampled  — some pair did not canonicalize together; N seeded concrete
//               valuations of the residual DAG pair all agreed.  Strong
//               evidence, not proof — strict mode treats it as a failure.
// and two failure modes:
//   kRefuted  — a concrete valuation distinguishes the programs; the
//               counterexample is minimized (values zeroed, bits cleared,
//               while the disagreement persists) and attached.
//   kBudget   — the DAG outgrew the node budget before obligations could be
//               collected; nothing was checked.
//
// validate_pack proves stage packing: run(first);run(second) against the
// packed program.  validate_commute additionally proves the packed pair
// order-independent — only applicable when the two stages share no state
// (disjoint registers, fields, and temp flow); it reports kInapplicable
// otherwise, which callers treat as "no claim", not failure, since
// concatenation equivalence from validate_pack already carries correctness.
#pragma once

#include <cstdint>
#include <optional>
#include <string>

#include "analysis/symbolic.hpp"

namespace analysis {

enum class ValidationMethod : std::uint8_t {
  kProved,        ///< all observables canonicalized to identical nodes
  kSampled,       ///< residual pairs agreed under N seeded valuations
  kRefuted,       ///< concrete counterexample found
  kBudget,        ///< DAG node budget exhausted before checking
  kInapplicable,  ///< (commute only) stages share state; no claim made
};

[[nodiscard]] const char* to_string(ValidationMethod m) noexcept;

/// A concrete input on which the two programs disagree.
struct Counterexample {
  std::uint64_t seed = 0;       ///< valuation seed that exposed it
  std::string observable;       ///< which output differs ("ipv4.ttl", ...)
  sym::Word before_value = 0;
  sym::Word after_value = 0;
  std::string bindings;         ///< minimized "var = value" assignment list

  /// One-line diagnostic rendering.
  [[nodiscard]] std::string render() const;
};

struct ValidationOutcome {
  ValidationMethod method = ValidationMethod::kProved;
  std::size_t obligations = 0;  ///< observable pairs compared
  std::size_t residual = 0;     ///< pairs that needed sampling
  std::size_t dag_nodes = 0;    ///< DAG size (proof-effort metric)
  std::optional<Counterexample> counterexample;

  /// True when the programs were shown equivalent (proof or sampling).
  [[nodiscard]] bool equivalent() const noexcept {
    return method == ValidationMethod::kProved ||
           method == ValidationMethod::kSampled;
  }
};

struct ValidateOptions {
  /// Register declarations (exact width/bounds model); nullptr falls back
  /// to an unbounded width-64 model, still sound for structural proofs.
  const p4sim::RegisterFile* registers = nullptr;
  /// Temps an earlier stage may have written (free on entry, not zero).
  TempSet dirty_on_entry;
  /// Temps a later stage may read — compared as observables.
  TempSet live_out;
  /// Concrete valuations drawn when canonicalization leaves residual pairs.
  std::size_t samples = 4096;
  std::uint64_t seed = 0x53544154'34545600ull;  // "STAT4TV"
  /// DAG node budget; exceeding it yields kBudget (nothing proven).
  std::size_t max_dag_nodes = std::size_t{1} << 20;
};

/// Proves `after` observationally equivalent to `before` under the given
/// pipeline context (the per-pass post-condition).
[[nodiscard]] ValidationOutcome validate_rewrite(const p4sim::Program& before,
                                                 const p4sim::Program& after,
                                                 const ValidateOptions& opts);

/// Proves the packed stage equivalent to running `first` then `second`
/// (dirty_on_entry = first stage's entry state, live_out = second's exit).
[[nodiscard]] ValidationOutcome validate_pack(const p4sim::Program& first,
                                              const p4sim::Program& second,
                                              const p4sim::Program& packed,
                                              const ValidateOptions& opts);

/// Proves first;second == second;first for state-disjoint stages (register,
/// field, and temp-flow independence is checked first; kInapplicable when
/// the stages share state — no claim, not a failure).
[[nodiscard]] ValidationOutcome validate_commute(const p4sim::Program& first,
                                                 const p4sim::Program& second,
                                                 const ValidateOptions& opts);

}  // namespace analysis

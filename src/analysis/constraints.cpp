#include "analysis/constraints.hpp"

#include <cctype>
#include <string>
#include <vector>

#include "p4sim/dependency.hpp"
#include "p4sim/disasm.hpp"

namespace analysis {

namespace {

using p4sim::Instruction;
using p4sim::Op;
using p4sim::Program;

}  // namespace

void run_constraint_pass(const Program& program, const TargetProfile& profile,
                         AnalysisResult& result) {
  // Constant-propagation shadow: which temps provably hold compile-time
  // constants (for the const-shift check).  Temps start as the constant 0.
  std::vector<bool> is_const(p4sim::kTempCount, true);
  std::size_t max_temp = 0;

  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const Instruction& ins = program.code[i];
    const int loc = static_cast<int>(i);
    max_temp = std::max<std::size_t>(
        max_temp, std::max({ins.dst, ins.a, ins.b, ins.c}));

    switch (ins.op) {
      case Op::kMul:
        if (!profile.has_mul) {
          result.diags.report(
              "S4-TGT-001", Severity::kError,
              "multiplication on target '" + profile.name +
                  "', which has no multiplier; use the shift-and-add "
                  "approximation (approx_mul / approx_square) instead",
              SourceLoc{program.name, loc, "mul"});
        }
        is_const[ins.dst] = is_const[ins.a] && is_const[ins.b];
        break;
      case Op::kShl:
      case Op::kShr:
        if (profile.const_shift_only && !is_const[ins.b]) {
          result.diags.report(
              "S4-TGT-004", Severity::kError,
              std::string("shift by a run-time amount on target '") +
                  profile.name + "', which only shifts by compile-time "
                  "constants; unroll into an msb_index if-ladder of "
                  "constant shifts",
              SourceLoc{program.name, loc, p4sim::op_name(ins.op)});
        }
        is_const[ins.dst] = is_const[ins.a] && is_const[ins.b];
        break;
      case Op::kConst: is_const[ins.dst] = true; break;
      case Op::kMov: is_const[ins.dst] = is_const[ins.a]; break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kEq:
      case Op::kNe:
      case Op::kLt:
      case Op::kGt:
      case Op::kLe:
      case Op::kGe:
        is_const[ins.dst] = is_const[ins.a] && is_const[ins.b];
        break;
      case Op::kNot: is_const[ins.dst] = is_const[ins.a]; break;
      case Op::kSelect:
        is_const[ins.dst] =
            is_const[ins.a] && is_const[ins.b] && is_const[ins.c];
        break;
      case Op::kParam:
      case Op::kLoadField:
      case Op::kLoadReg:
      case Op::kHash1:
      case Op::kHash2:
        is_const[ins.dst] = false;
        break;
      case Op::kStoreField:
      case Op::kStoreReg:
      case Op::kDigest:
        break;
    }
  }

  if (program.code.size() > profile.max_instructions) {
    result.diags.report(
        "S4-TGT-002", Severity::kError,
        "program has " + std::to_string(program.code.size()) +
            " instructions, over target '" + profile.name + "' budget of " +
            std::to_string(profile.max_instructions),
        SourceLoc{program.name, -1, "instructions"});
  }
  if (max_temp + 1 > profile.max_temps) {
    result.diags.report(
        "S4-TGT-006", Severity::kWarning,
        "program uses temp " + std::to_string(max_temp) + ", over target '" +
            profile.name + "' scratch budget of " +
            std::to_string(profile.max_temps) + " containers",
        SourceLoc{program.name, -1, "temps"});
  }
  if (profile.max_stage_chain > 0) {
    const p4sim::ProgramAnalysis pa = p4sim::analyze_program(program);
    if (pa.longest_chain > profile.max_stage_chain) {
      result.diags.report(
          "S4-TGT-003", Severity::kWarning,
          "longest dependency chain is " + std::to_string(pa.longest_chain) +
              " sequential steps, over target '" + profile.name +
              "' stage budget of " + std::to_string(profile.max_stage_chain),
          SourceLoc{program.name, -1, "chain"});
    }
  }
}

void run_resource_lint(const p4sim::RegisterFile& regs,
                       const std::string& pipeline_name,
                       const TargetProfile& profile, AnalysisResult& result) {
  if (profile.max_state_bytes == 0) return;
  const std::size_t bytes = regs.total_state_bytes();
  if (bytes > profile.max_state_bytes) {
    result.diags.report(
        "S4-TGT-005", Severity::kWarning,
        "register state occupies " + std::to_string(bytes) +
            " bytes, over target '" + profile.name + "' budget of " +
            std::to_string(profile.max_state_bytes),
        SourceLoc{pipeline_name, -1, "state"});
  }
}

namespace {

/// Replaces comments and string/char literals with spaces (newlines kept so
/// line numbers survive).
std::string strip_comments(const std::string& src) {
  std::string out = src;
  enum { kCode, kLine, kBlock, kString } st = kCode;
  for (std::size_t i = 0; i < out.size(); ++i) {
    const char c = out[i];
    const char n = i + 1 < out.size() ? out[i + 1] : '\0';
    switch (st) {
      case kCode:
        if (c == '/' && n == '/') {
          st = kLine;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '/' && n == '*') {
          st = kBlock;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c == '"') {
          st = kString;
          out[i] = ' ';
        }
        break;
      case kLine:
        if (c == '\n') st = kCode;
        else out[i] = ' ';
        break;
      case kBlock:
        if (c == '*' && n == '/') {
          st = kCode;
          out[i] = out[i + 1] = ' ';
          ++i;
        } else if (c != '\n') {
          out[i] = ' ';
        }
        break;
      case kString:
        if (c == '"') st = kCode;
        out[i] = ' ';
        break;
    }
  }
  return out;
}

bool ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

}  // namespace

void lint_p4_source(const std::string& source, const std::string& name,
                    AnalysisResult& result) {
  const std::string code = strip_comments(source);
  int line = 1;
  for (std::size_t i = 0; i < code.size(); ++i) {
    const char c = code[i];
    if (c == '\n') {
      ++line;
      continue;
    }
    if (c == '/' || c == '%') {
      result.diags.report(
          "S4-SRC-001", Severity::kError,
          std::string("'") + c + "' operator in emitted P4: no P4 target "
              "supports division or modulo on run-time values",
          SourceLoc{name, line, std::string(1, c)});
      continue;
    }
    if (!ident_char(c) || (i > 0 && ident_char(code[i - 1]))) continue;
    std::size_t j = i;
    while (j < code.size() && ident_char(code[j])) ++j;
    const std::string word = code.substr(i, j - i);
    i = j - 1;
    if (word == "float" || word == "double" || word == "real") {
      result.diags.report(
          "S4-SRC-002", Severity::kError,
          "floating-point type '" + word + "' in emitted P4: P4 has no "
              "floating point; use fixed-point shifts",
          SourceLoc{name, line, word});
    } else if (word == "while" || word == "for" || word == "do") {
      result.diags.report(
          "S4-SRC-003", Severity::kError,
          "loop keyword '" + word + "' in emitted P4: P4 pipelines execute "
              "straight-line code with no loops",
          SourceLoc{name, line, word});
    }
  }
}

}  // namespace analysis

#include "analysis/hazards.hpp"

#include <array>
#include <map>
#include <set>
#include <string>

#include "p4sim/disasm.hpp"

namespace analysis {

namespace {

using p4sim::Instruction;
using p4sim::Op;
using p4sim::Program;

/// Value numbering over a straight-line program: two temps get the same
/// number iff they provably hold the same value.  Register loads are always
/// fresh (their value depends on mutable state), field loads are versioned
/// by preceding stores.
class ValueNumbering {
 public:
  explicit ValueNumbering(const Program& p) : vn_(p4sim::kTempCount, 0) {
    // Temp 0-state: every temp starts as the constant 0.
    const int zero = number("C0");
    for (auto& v : vn_) v = zero;
    field_version_.fill(0);
    for (std::size_t i = 0; i < p.code.size(); ++i) step(p.code[i], i);
  }

  /// Value number of the index temp of instruction i (filled for every
  /// kLoadReg / kStoreReg during construction).
  [[nodiscard]] int index_vn(std::size_t i) const {
    const auto it = reg_index_vn_.find(i);
    return it == reg_index_vn_.end() ? -1 : it->second;
  }

 private:
  int number(const std::string& key) {
    const auto [it, inserted] = table_.emplace(key, next_);
    if (inserted) ++next_;
    return it->second;
  }

  void step(const Instruction& ins, std::size_t i) {
    const std::string a = std::to_string(vn_[ins.a]);
    const std::string b = std::to_string(vn_[ins.b]);
    const std::string c = std::to_string(vn_[ins.c]);
    switch (ins.op) {
      case Op::kConst:
        vn_[ins.dst] = number("C" + std::to_string(ins.imm));
        break;
      case Op::kParam:
        vn_[ins.dst] = number("P" + std::to_string(ins.imm));
        break;
      case Op::kMov: vn_[ins.dst] = vn_[ins.a]; break;
      case Op::kLoadField: {
        const auto f = static_cast<std::size_t>(ins.field);
        vn_[ins.dst] = number("F" + std::to_string(f) + "v" +
                              std::to_string(field_version_[f]));
        break;
      }
      case Op::kStoreField:
        ++field_version_[static_cast<std::size_t>(ins.field)];
        break;
      case Op::kLoadReg:
        reg_index_vn_[i] = vn_[ins.a];
        vn_[ins.dst] = number("L" + std::to_string(i));  // always fresh
        break;
      case Op::kStoreReg:
        reg_index_vn_[i] = vn_[ins.a];
        break;
      case Op::kHash1:
      case Op::kHash2:
        vn_[ins.dst] =
            number(std::string(p4sim::op_name(ins.op)) + "(" + a + ")");
        break;
      case Op::kDigest: break;
      default:
        vn_[ins.dst] = number(std::string(p4sim::op_name(ins.op)) + "(" + a +
                              "," + b + "," + c + ")");
        break;
    }
  }

  std::map<std::string, int> table_;
  int next_ = 0;
  std::vector<int> vn_;
  std::array<std::size_t, p4sim::kFieldCount> field_version_{};
  std::map<std::size_t, int> reg_index_vn_;
};

Severity escalate(Severity base, bool strict_flag) {
  return strict_flag ? Severity::kError : base;
}

}  // namespace

void run_hazard_pass(const std::vector<HazardScope>& scopes,
                     const p4sim::RegisterFile& regs,
                     const std::string& pipeline_name,
                     const TargetProfile& profile, AnalysisResult& result) {
  // Register array -> set of stages touching it (for S4-HAZ-003).
  std::map<p4sim::RegisterId, std::set<std::size_t>> stages_touching;
  std::map<p4sim::RegisterId, std::set<std::string>> programs_touching;
  // An action placed in several stages is scanned per placement (to record
  // stage touches) but reported once.
  std::set<std::string> reported_programs;

  for (const HazardScope& scope : scopes) {
    const Program& p = *scope.program;
    const ValueNumbering vn(p);
    const bool report = reported_programs.insert(p.name).second;

    struct ArrayUse {
      std::set<int> index_vns;
      std::size_t first_multi_index = 0;  // instruction of 2nd distinct index
      bool written = false;
      bool reaccess_reported = false;
    };
    std::map<p4sim::RegisterId, ArrayUse> uses;

    for (std::size_t i = 0; i < p.code.size(); ++i) {
      const Instruction& ins = p.code[i];
      if (ins.op != Op::kLoadReg && ins.op != Op::kStoreReg) continue;
      if (ins.reg >= regs.array_count()) continue;
      const std::string& reg_name = regs.info(ins.reg).name;
      ArrayUse& use = uses[ins.reg];
      stages_touching[ins.reg].insert(scope.stage);
      programs_touching[ins.reg].insert(p.name);

      if (use.written && !use.reaccess_reported && report) {
        use.reaccess_reported = true;
        result.diags.report(
            "S4-HAZ-002",
            escalate(Severity::kWarning, profile.single_access_registers),
            std::string(ins.op == Op::kLoadReg ? "read" : "write") +
                " of register '" + reg_name +
                "' after an earlier write in the same action: needs more "
                "than one access per packet, which single-RMW stateful ALUs "
                "cannot schedule",
            SourceLoc{p.name, static_cast<int>(i), reg_name});
      }
      if (ins.op == Op::kStoreReg) use.written = true;

      const int idx = vn.index_vn(i);
      if (use.index_vns.insert(idx).second && use.index_vns.size() == 2) {
        use.first_multi_index = i;
      }
    }

    for (const auto& [reg, use] : uses) {
      if (!report || use.index_vns.size() <= 1) continue;
      result.diags.report(
          "S4-HAZ-001",
          escalate(Severity::kWarning, profile.single_access_registers),
          "register '" + regs.info(reg).name + "' is addressed through " +
              std::to_string(use.index_vns.size()) +
              " distinct index expressions in one action; hardware targets "
              "allow a single indexed access per packet",
          SourceLoc{p.name, static_cast<int>(use.first_multi_index),
                    regs.info(reg).name});
    }
  }

  for (const auto& [reg, stages] : stages_touching) {
    if (stages.size() <= 1) continue;
    std::string stage_list;
    for (const std::size_t s : stages) {
      if (!stage_list.empty()) stage_list += ", ";
      stage_list += std::to_string(s);
    }
    std::string prog_list;
    for (const auto& n : programs_touching[reg]) {
      if (!prog_list.empty()) prog_list += ", ";
      prog_list += n;
    }
    result.diags.report(
        "S4-HAZ-003",
        escalate(Severity::kNote, profile.single_stage_registers),
        "register '" + regs.info(reg).name + "' is shared across pipeline "
            "stages " + stage_list + " (actions: " + prog_list +
            "); stage-pinned register files require it to live in one stage",
        SourceLoc{pipeline_name, -1, regs.info(reg).name});
  }
}

}  // namespace analysis

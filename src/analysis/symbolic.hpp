// Bit-vector symbolic execution over the p4sim straight-line IR.
//
// The core object is a hash-consed expression DAG whose smart constructors
// normalize as they build: wrapping add/sub/mul collapse into a linear
// normal form (constant + sorted coefficient*term sum, all mod 2^64),
// shifts by compile-time constants become coefficient scaling, the bitwise
// ops flatten/sort/cancel, comparisons over identical nodes fold, and a
// per-node "possible set bits" over-approximation discharges mask and
// bounds obligations (x & m == x, idx < size).  Two IR computations are
// PROVEN equal exactly when they normalize to the same node id — the
// translation validator (validate.hpp) is built on that test.
//
// The machine-state model mirrors execute() bit for bit:
//   temps      — clean temps enter as constant 0 (per-packet zeroing),
//                temps in PassContext::dirty_on_entry as free variables;
//   params     — kParam reads are free variables keyed by index (a missing
//                action-data word reads 0, a subsumed valuation);
//   fields     — each field carries what PacketView::get would return:
//                width-masked, and gated on the owning header's validity
//                bit where set() is conditional (p4sim::field_info);
//   registers  — reads resolve through the recorded store sequence with
//                RegisterFile semantics: out-of-bounds reads yield 0,
//                out-of-bounds stores drop, stored values mask to the
//                declared width.  Initial cells are per-register
//                uninterpreted functions of the index;
//   hash1/2    — uninterpreted in proofs, but evaluated with the real
//                stat4::sparse_hash mixes under concrete valuations, so
//                sampling can never diverge from the interpreter;
//   digests    — an ordered event list (id, condition truthiness, payload).
//
// Nodes evaluate concretely under a Valuation (seeded assignment of the
// free variables), which is how the validator samples residual pairs and
// renders counterexample valuations.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "analysis/passes.hpp"
#include "p4sim/action.hpp"
#include "p4sim/parser.hpp"
#include "p4sim/register_file.hpp"

namespace analysis::sym {

using p4sim::Word;

/// Index into the DAG's node table.  Node 0 is always constant 0.
using NodeId = std::uint32_t;

enum class Kind : std::uint8_t {
  kConst,    // imm
  kVar,      // free variable: var-table index in aux
  kLinear,   // imm + sum(coeff_i * term_i), wrapping
  kMul,      // product of >= 2 sorted non-constant terms
  kAnd,      // imm & ops[0] & ops[1] ... (sorted, deduped)
  kOr,       // imm | ops...
  kXor,      // imm ^ ops...  (equal pairs cancelled)
  kShl,      // ops[0] << (ops[1] & 63), ops[1] not constant
  kShr,      // ops[0] >> (ops[1] & 63)
  kEq,       // ops sorted; 0/1  (!= normalizes to 1 ^ (a == b))
  kLt,       // unsigned; 0/1
  kLe,       // unsigned; 0/1
  kIte,      // ops[0] truthy ? ops[1] : ops[2]
  kHash1,    // stat4::sparse_hash1(ops[0])
  kHash2,    // stat4::sparse_hash2(ops[0])
  kRegInit,  // initial cells of register `aux` at index ops[0], width-masked
};

/// What a free variable stands for — structured so tests can rebuild a
/// concrete ExecutionContext from a counterexample valuation.
struct VarRef {
  enum class Origin : std::uint8_t {
    kDirtyTemp,  ///< temp left over from an earlier stage; index = temp id
    kParam,      ///< action_data word; index = param index
    kField,      ///< initial header/metadata field; index = FieldRef
    kValidity,   ///< header validity bit; index = the *Valid FieldRef
  };
  Origin origin = Origin::kDirtyTemp;
  std::uint32_t index = 0;
  Word mask = ~Word{0};  ///< values are always a subset of this mask

  [[nodiscard]] std::string name() const;
};

struct Node {
  Kind kind = Kind::kConst;
  std::uint32_t aux = 0;  ///< var-table index (kVar) or register id (kRegInit)
  Word imm = 0;           ///< constant / linear constant term / bitwise seed
  std::vector<NodeId> ops;
  std::vector<Word> coeffs;  ///< kLinear only, parallel to ops
  Word bits = ~Word{0};      ///< over-approximation of possibly-set bits
};

/// Hash-consed DAG with normalizing constructors.  One Dag instance is
/// shared by the two programs being compared so equal computations reach
/// equal node ids.
class Dag {
 public:
  Dag();

  [[nodiscard]] NodeId constant(Word v);
  /// Free variable; hash-consed on (origin, index) so both programs see the
  /// same node.  `mask` bounds the representable values.
  [[nodiscard]] NodeId variable(VarRef ref);

  [[nodiscard]] NodeId add(NodeId a, NodeId b);
  [[nodiscard]] NodeId sub(NodeId a, NodeId b);
  [[nodiscard]] NodeId mul(NodeId a, NodeId b);
  [[nodiscard]] NodeId shl(NodeId a, NodeId b);
  [[nodiscard]] NodeId shr(NodeId a, NodeId b);
  [[nodiscard]] NodeId band(NodeId a, NodeId b);
  [[nodiscard]] NodeId bor(NodeId a, NodeId b);
  [[nodiscard]] NodeId bxor(NodeId a, NodeId b);
  [[nodiscard]] NodeId bnot(NodeId a);
  [[nodiscard]] NodeId eq(NodeId a, NodeId b);
  [[nodiscard]] NodeId ne(NodeId a, NodeId b);
  [[nodiscard]] NodeId lt(NodeId a, NodeId b);
  [[nodiscard]] NodeId gt(NodeId a, NodeId b) { return lt(b, a); }
  [[nodiscard]] NodeId le(NodeId a, NodeId b);
  [[nodiscard]] NodeId ge(NodeId a, NodeId b) { return le(b, a); }
  [[nodiscard]] NodeId ite(NodeId c, NodeId t, NodeId e);
  [[nodiscard]] NodeId hash1(NodeId a);
  [[nodiscard]] NodeId hash2(NodeId a);
  /// select-from-initial-cells of register `reg`; the result is already
  /// masked to `width_mask` (cells can only ever hold masked values).
  [[nodiscard]] NodeId reg_init(std::uint32_t reg, NodeId idx,
                                Word width_mask);
  /// 0/1 truthiness of `a` (identity when `a` is already 0/1-valued).
  [[nodiscard]] NodeId truthy(NodeId a);

  [[nodiscard]] const Node& node(NodeId id) const { return nodes_[id]; }
  [[nodiscard]] std::size_t size() const noexcept { return nodes_.size(); }
  [[nodiscard]] const std::vector<VarRef>& variables() const noexcept {
    return vars_;
  }
  /// Maximum value the node can take (the possible-bits mask read as a
  /// number — every achievable value is <= it).
  [[nodiscard]] Word max_value(NodeId id) const { return nodes_[id].bits; }

  /// Debug/diagnostic rendering (prefix form, shared subtrees re-expanded).
  [[nodiscard]] std::string render(NodeId id, std::size_t max_depth = 6) const;

 private:
  [[nodiscard]] NodeId intern(Node n);
  [[nodiscard]] NodeId linear(Word c0, std::vector<std::pair<Word, NodeId>> terms);
  void decompose(NodeId id, Word scale, Word& c0,
                 std::vector<std::pair<Word, NodeId>>& terms) const;
  [[nodiscard]] NodeId scaled(NodeId a, Word k);

  std::vector<Node> nodes_;
  std::unordered_map<std::string, NodeId> interned_;
  std::vector<VarRef> vars_;
  std::unordered_map<std::uint64_t, std::uint32_t> var_index_;
};

/// Concrete assignment of the DAG's free variables and register cells,
/// derived deterministically from a seed; every value actually used is
/// recorded so counterexamples list exactly the relevant assignment.
class Valuation {
 public:
  explicit Valuation(std::uint64_t seed) : seed_(seed) {}

  [[nodiscard]] Word var_value(const VarRef& ref) const;
  [[nodiscard]] Word reg_value(std::uint32_t reg, Word index,
                               Word width_mask) const;

  /// Pin an explicit value (used by counterexample minimization).
  void pin_var(VarRef ref, Word value);
  void pin_reg(std::uint32_t reg, Word index, Word value);

  struct RegCell {
    std::uint32_t reg = 0;
    Word index = 0;
    Word value = 0;
  };
  /// Everything read so far (lazily filled during evaluation, pins included).
  [[nodiscard]] std::vector<std::pair<VarRef, Word>> used_vars() const;
  [[nodiscard]] std::vector<RegCell> used_regs() const;

  [[nodiscard]] std::uint64_t seed() const noexcept { return seed_; }

 private:
  std::uint64_t seed_;
  mutable std::unordered_map<std::uint64_t, std::pair<VarRef, Word>> vars_;
  mutable std::unordered_map<std::uint64_t, RegCell> regs_;
};

/// Evaluates `id` under the valuation, memoizing across one call (pass a
/// fresh cache sized dag.size(), or reuse between roots of one sample).
[[nodiscard]] Word evaluate(const Dag& dag, NodeId id, const Valuation& val,
                            std::vector<std::optional<Word>>& cache);

/// One recorded digest emission point.
struct DigestEvent {
  std::uint32_t id = 0;
  NodeId cond = 0;  ///< 0/1 truthiness of the gate temp
  NodeId payload0 = 0;
  NodeId payload1 = 0;
  NodeId payload2 = 0;
};

/// One recorded register store (index, width-masked value).
struct RegStore {
  NodeId index = 0;
  NodeId value = 0;
};

/// Machine state after symbolically executing a program.
struct SymState {
  std::vector<NodeId> temps;  ///< size p4sim::kTempCount
  /// What PacketView::get would return per field, post-execution.
  std::vector<NodeId> fields;  ///< size p4sim::kFieldCount
  std::vector<std::pair<p4sim::RegisterId, std::vector<RegStore>>> stores;
  std::vector<DigestEvent> digests;

  [[nodiscard]] const std::vector<RegStore>* stores_for(
      p4sim::RegisterId reg) const;
};

/// Static model of the register arrays the executor runs against.  When no
/// RegisterFile is supplied, referenced arrays are modeled as unbounded
/// width-64 (sound for structural proofs: both programs share the model,
/// and node equality is preserved under any concrete semantics).
struct SymEnv {
  const p4sim::RegisterFile* registers = nullptr;
  /// Temps an earlier stage may have written (free variables instead of 0).
  TempSet dirty_on_entry;
  /// When non-null, sym_execute_onto appends one Word per executed
  /// instruction: the possible-bits over-approximation of the dst temp
  /// after that instruction, or all-ones for instructions that write no
  /// temp (stores, digests).  Lets interval-domain passes (precision)
  /// consume the DAG's bit facts without holding node ids.
  std::vector<Word>* dst_bits = nullptr;
};

/// Symbolically executes `program` from the entry state the environment
/// describes.  Both programs of a validation pair must run against the SAME
/// Dag (and the same env) so common computations hash-cons together.
[[nodiscard]] SymState sym_execute(const p4sim::Program& program, Dag& dag,
                                   const SymEnv& env);

/// Continues execution from `state` (stage sequencing: run A then B).
void sym_execute_onto(const p4sim::Program& program, Dag& dag,
                      const SymEnv& env, SymState& state);

}  // namespace analysis::sym

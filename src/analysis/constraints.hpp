// Target-profile constraint lint.
//
// Two layers:
//
//   IR lint (run_constraint_pass) — checks each program against what the
//   TargetProfile's ALU and pipeline can express: multiplication on
//   shift-only targets (S4-TGT-001 — the paper's "some hardware switches do
//   not support the squaring of values unknown at compile time"),
//   instruction/chain/temps budgets (S4-TGT-002/003/006), variable shift
//   amounts on lookup-table shifters (S4-TGT-004), and — switch level —
//   the register memory budget (S4-TGT-005).
//
//   Source lint (lint_p4_source) — scans the p4gen emission for constructs
//   no P4 target accepts regardless of profile: division/modulo
//   (S4-SRC-001), floating point (S4-SRC-002), loops (S4-SRC-003).  These
//   cannot arise from the IR (it has no such opcodes) but guard the emitter
//   itself and any hand-edited output.
#pragma once

#include <string>

#include "analysis/verifier.hpp"
#include "p4sim/action.hpp"
#include "p4sim/register_file.hpp"

namespace analysis {

/// IR-level profile lint of one program.
void run_constraint_pass(const p4sim::Program& program,
                         const TargetProfile& profile, AnalysisResult& result);

/// Switch-level resource lint (register memory vs the profile's budget).
void run_resource_lint(const p4sim::RegisterFile& regs,
                       const std::string& pipeline_name,
                       const TargetProfile& profile, AnalysisResult& result);

/// Lints a P4_16 translation unit (comment-aware token scan).  `name`
/// labels the diagnostics; instruction locations are 1-based line numbers.
void lint_p4_source(const std::string& source, const std::string& name,
                    AnalysisResult& result);

}  // namespace analysis

// Polynomial fixpoint acceleration shared by the abstract interpreters.
//
// Both the overflow pass and the precision pass iterate an abstract packet
// at a time and watch per-cell scalar histories (interval highs, error
// bounds).  When the last kWindow samples of a history grow with a constant
// non-negative second difference, the remaining budget of iterations can be
// jumped in closed form instead of simulated — the degree<=2 polynomial is
// an upper bound on any further growth with those differences, so the jump
// stays sound (saturating U128 arithmetic caps at kInf).
#pragma once

#include <array>
#include <cstddef>

#include "analysis/interval.hpp"

namespace analysis {

/// Growth samples kept per accelerated history.
inline constexpr std::size_t kAccelWindow = 8;

using AccelHistory = std::array<U128, kAccelWindow>;

/// Shifts the window left and appends the newest sample.
inline void accel_push(AccelHistory& h, U128 sample) {
  for (std::size_t i = 0; i + 1 < kAccelWindow; ++i) h[i] = h[i + 1];
  h[kAccelWindow - 1] = sample;
}

/// Polynomial (degree <= 2) fit of a monotone growth window: true when the
/// second difference is a non-negative constant.  Fills d1 (latest first
/// difference) and d2.
inline bool poly_fit(const AccelHistory& h, U128* d1, U128* d2) {
  std::array<U128, kAccelWindow - 1> diff1{};
  for (std::size_t i = 0; i + 1 < kAccelWindow; ++i) {
    if (h[i + 1] < h[i]) return false;  // not monotone
    diff1[i] = h[i + 1] - h[i];
  }
  for (std::size_t i = 0; i + 2 < kAccelWindow; ++i) {
    if (diff1[i + 1] < diff1[i]) return false;  // concave: do not extrapolate
    if (diff1[i + 1] - diff1[i] != diff1[1] - diff1[0]) return false;
  }
  *d1 = diff1[kAccelWindow - 2];
  *d2 = diff1[1] - diff1[0];
  return true;
}

/// Closed-form jump of R further steps: h += d1*R + d2*R*(R+1)/2.
inline U128 poly_jump(U128 h, U128 d1, U128 d2, U128 r) {
  U128 out = sat_add(h, sat_mul(d1, r));
  const U128 tri = sat_mul(r, sat_add(r, 1)) / 2;
  return sat_add(out, sat_mul(d2, tri));
}

}  // namespace analysis

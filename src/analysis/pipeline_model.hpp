// Shared abstract model of an installed switch pipeline.
//
// verify_switch and analyze_precision both need the same view of a
// P4Switch: per-stage action alternatives whose action-data bounds are
// joined over every installed table entry (plus the default action, which
// the executor runs on a miss), and a per-action scope list for the hazard
// pass.  Building it once here keeps the two analyses from drifting on
// which programs they consider reachable.
#pragma once

#include <vector>

#include "analysis/hazards.hpp"
#include "analysis/overflow.hpp"
#include "p4sim/switch.hpp"

namespace analysis {

struct PipelineModel {
  AbstractPipeline pipe;            ///< references sw's programs/registers
  std::vector<HazardScope> scopes;  ///< one per reachable (stage, action)
};

/// Builds the abstract pipeline for `sw`.  The result borrows `sw`'s
/// actions and register file — keep the switch alive while using it.
[[nodiscard]] PipelineModel build_pipeline_model(const p4sim::P4Switch& sw);

}  // namespace analysis

#include "analysis/verifier.hpp"

#include <map>
#include <stdexcept>

#include "analysis/constraints.hpp"
#include "analysis/hazards.hpp"
#include "analysis/overflow.hpp"
#include "analysis/pipeline_model.hpp"
#include "p4gen/emitter.hpp"

namespace analysis {

TargetProfile TargetProfile::bmv2() { return TargetProfile{}; }

TargetProfile TargetProfile::hardware_nomul() {
  TargetProfile p;
  p.name = "hardware-nomul";
  p.has_mul = false;
  return p;
}

TargetProfile TargetProfile::strict() {
  TargetProfile p;
  p.name = "strict";
  p.has_mul = false;
  p.const_shift_only = true;
  p.single_access_registers = true;
  p.single_stage_registers = true;
  p.max_instructions = 256;
  p.max_stage_chain = 16;
  p.max_temps = 512;
  p.max_state_bytes = 1u << 20;  // 1 MiB of SRAM for registers
  return p;
}

TargetProfile TargetProfile::by_name(const std::string& name) {
  if (name == "bmv2") return bmv2();
  if (name == "hardware-nomul") return hardware_nomul();
  if (name == "strict") return strict();
  throw std::invalid_argument("analysis: unknown target profile '" + name +
                              "' (expected bmv2, hardware-nomul or strict)");
}

AnalysisResult verify_program(const p4sim::Program& program,
                              const p4sim::RegisterFile& regs,
                              const AnalysisOptions& options) {
  AnalysisResult result;

  if (options.run_overflow) {
    AbstractPipeline pipe;
    pipe.name = program.name;
    pipe.registers = &regs;
    pipe.stages.push_back({StageAlternative{&program, options.param_bounds}});
    run_overflow_pass(pipe, options, result);
  }
  if (options.run_hazards) {
    run_hazard_pass({HazardScope{&program, 0}}, regs, program.name,
                    options.profile, result);
  }
  if (options.run_constraints) {
    run_constraint_pass(program, options.profile, result);
    run_resource_lint(regs, program.name, options.profile, result);
  }

  result.diags.sort();
  return result;
}

PipelineModel build_pipeline_model(const p4sim::P4Switch& sw) {
  PipelineModel model;
  model.pipe.name = sw.name();
  model.pipe.registers = &sw.registers();

  for (std::size_t si = 0; si < sw.pipeline().size(); ++si) {
    const p4sim::P4Switch::Stage& stage = sw.pipeline()[si];
    std::vector<StageAlternative> alts;
    if (stage.table) {
      const p4sim::MatchActionTable& table = sw.table(*stage.table);
      // action id -> per-word joined bounds over dispatching entries.
      std::map<p4sim::ActionId, std::vector<Interval>> bounds;
      const auto fold = [&](p4sim::ActionId action,
                            const std::vector<p4sim::Word>& data) {
        auto& params = bounds[action];
        if (params.size() < data.size()) {
          // A shorter entry means the executor reads 0 past its end.
          params.resize(data.size(), Interval::constant(0));
        }
        for (std::size_t w = 0; w < data.size(); ++w) {
          params[w] = join(params[w], Interval::constant(data[w]));
        }
      };
      for (const p4sim::TableEntry* e : table.live_entries()) {
        fold(e->action, e->action_data);
      }
      fold(table.default_action(), table.default_action_data());
      for (auto& [action, params] : bounds) {
        alts.push_back(StageAlternative{&sw.action(action), params});
        model.scopes.push_back(HazardScope{&sw.action(action), si});
      }
    } else if (stage.action) {
      alts.push_back(StageAlternative{&sw.action(*stage.action), {}});
      model.scopes.push_back(HazardScope{&sw.action(*stage.action), si});
    }
    model.pipe.stages.push_back(std::move(alts));
  }
  return model;
}

AnalysisResult verify_switch(const p4sim::P4Switch& sw,
                             const AnalysisOptions& options) {
  AnalysisResult result;

  // Per-stage action alternatives with action-data bounds joined over the
  // actually installed entries (plus the default action, which the executor
  // runs on a miss).
  PipelineModel model = build_pipeline_model(sw);
  const AbstractPipeline& pipe = model.pipe;

  if (options.run_overflow) run_overflow_pass(pipe, options, result);
  if (options.run_hazards) {
    run_hazard_pass(model.scopes, sw.registers(), sw.name(), options.profile,
                    result);
  }
  if (options.run_constraints) {
    // Lint every registered action, reachable or not: dead actions are one
    // table_add away from running.
    for (std::size_t a = 0; a < sw.action_count(); ++a) {
      run_constraint_pass(sw.action(static_cast<p4sim::ActionId>(a)),
                          options.profile, result);
    }
    run_resource_lint(sw.registers(), sw.name(), options.profile, result);
  }
  if (options.lint_emitted_p4) {
    p4gen::EmitOptions emit_options;
    emit_options.program_name = sw.name();
    lint_p4_source(p4gen::emit_p4(sw, emit_options), sw.name() + ".p4",
                   result);
  }

  result.diags.sort();
  return result;
}

}  // namespace analysis

// Transform passes over the p4sim IR.
//
// Each pass takes a Program plus its cross-stage PassContext and rewrites in
// place, returning how many rewrites it applied (0 = already at this pass's
// fixpoint).  Passes are semantics-preserving for ANY runtime table
// configuration: they never change what an action computes, only how — so
// an action rewritten here stays a valid dispatch target for entries the
// controller installs later.  Stage packing is the one pipeline-level
// transform; it adds a merged action and shrinks the stage list without
// touching the original actions (which may still be table-dispatched).
//
// The PassManager (pass_manager.hpp) owns pass ordering, the fixpoint loop,
// cross-stage context computation, and diagnostics.
#pragma once

#include <cstddef>

#include "analysis/dataflow.hpp"
#include "analysis/verifier.hpp"
#include "p4sim/action.hpp"
#include "p4sim/switch.hpp"

namespace analysis {

/// What the surrounding pipeline lets a pass assume about one program.
/// Temps persist across stages within a packet, so:
///   dirty_on_entry — temps an earlier stage may have written: NOT zero on
///                    entry (everything else reads as 0, per-packet init);
///   live_out       — temps a later stage may read before writing: must
///                    hold their final values when the program exits.
/// Both empty (the self-contained common case — every ProgramBuilder
/// program defines temps before use) enables the full rewrite set,
/// including dead-temp compaction.
struct PassContext {
  TempSet dirty_on_entry;
  TempSet live_out;
  /// Register declarations of the owning switch, when known.  Passes use it
  /// to reason about cell widths and array bounds (CSE's store-to-load
  /// forwarding); nullptr disables those rewrites, which is always sound.
  const p4sim::RegisterFile* registers = nullptr;
};

/// Constant propagation + folding: forward constant lattice seeded with
/// zero-initialized temps, pure all-constant instructions folded to kConst
/// (evaluated with execute() semantics), kSelect with a known condition
/// lowered to kMov, algebraic identities (x+0, x<<0, x&0, x*1, ...)
/// simplified, and digests with a provably-false condition removed.
std::size_t run_constprop(p4sim::Program& program, const PassContext& ctx);

/// Local common-subexpression elimination by value numbering: operands are
/// canonicalized to the earliest temp holding the same value (subsuming
/// copy propagation), recomputations of an available expression become
/// kMov, field/register loads participate with store-versioned keys plus
/// store-to-load forwarding, and value-identical operand pairs collapse
/// comparisons/selects (x-x, x==x, select(c,v,v)).  kParam keys on its
/// index — within one execution the same index always yields the same word.
std::size_t run_cse(p4sim::Program& program, const PassContext& ctx);

/// Dead-code and dead-temp elimination: backward liveness seeded from
/// ctx.live_out removes pure instructions whose result is never read (and
/// no-op kMov t,t); when the context is self-contained, surviving temps are
/// compacted to a dense prefix — shrinking the emitted P4 scratch struct
/// and the fast path's per-packet zeroing span (scratch_words_).
std::size_t run_dce(p4sim::Program& program, const PassContext& ctx);

/// Strength reduction: kMul with a power-of-two constant operand becomes a
/// kShl (exact under wrapping arithmetic), mul by 0/1 simplifies away —
/// the rewrite that ports kMul programs to `hardware-nomul` targets.
std::size_t run_strength_reduction(p4sim::Program& program,
                                   const PassContext& ctx);

/// Hazard-aware stage packing: merges adjacent direct-program stages whose
/// guards agree (and whose first program cannot flip the shared guard) and
/// whose register access sets are disjoint — concatenation is bit-exact
/// because stages already share the packet's temp context, and register
/// disjointness keeps the merged action free of new S4-HAZ multi-access
/// findings.  The merged program is registered as a NEW action (originals
/// stay valid dispatch targets); returns the number of merges.
std::size_t run_stage_packing(p4sim::P4Switch& sw,
                              const TargetProfile& profile);

}  // namespace analysis

#include "analysis/overflow.hpp"

#include <algorithm>
#include <array>
#include <set>
#include <tuple>

#include "analysis/acceleration.hpp"
#include "p4sim/disasm.hpp"

namespace analysis {

namespace {

using p4sim::FieldRef;
using p4sim::Instruction;
using p4sim::Op;
using p4sim::Program;

constexpr std::size_t kWindow = kAccelWindow;  ///< samples per register

/// Abstract register state: one interval of IDEAL (unwrapped, 128-bit)
/// accumulated values per register array, index-insensitive.
struct State {
  std::vector<Interval> regs;
  bool operator==(const State& o) const { return regs == o.regs; }
};

State join_state(const State& a, const State& b) {
  State out = a;
  for (std::size_t i = 0; i < out.regs.size(); ++i) {
    out.regs[i] = join(out.regs[i], b.regs[i]);
  }
  return out;
}

using FieldState = std::array<Interval, p4sim::kFieldCount>;

FieldState join_fields(const FieldState& a, const FieldState& b) {
  FieldState out;
  for (std::size_t i = 0; i < out.size(); ++i) out[i] = join(a[i], b[i]);
  return out;
}

std::string u128_str(U128 v) {
  if (v == 0) return "0";
  std::string s;
  while (v != 0) {
    s += static_cast<char>('0' + static_cast<unsigned>(v % 10));
    v /= 10;
  }
  std::reverse(s.begin(), s.end());
  return s;
}

std::string bound_str(U128 v) {
  std::string s = u128_str(v);
  if (v > kMax64) s += " (~2^" + std::to_string(bit_length(v) - 1) + ")";
  return s;
}

std::string range_str(const Interval& iv) {
  return "[" + u128_str(iv.lo) + ", " + bound_str(iv.hi) + "]";
}

/// Deduplicating diagnostic emitter for the final reporting pass: the same
/// instruction may be visited once per stage alternative.
struct Emitter {
  DiagnosticEngine* engine = nullptr;  ///< null during iteration
  std::set<std::tuple<std::string, int, std::string, std::string>> seen;
  std::string scope;  ///< "after <=N observations" / "for any packet count"

  void emit(const char* rule, Severity severity, const std::string& program,
            int instruction, const std::string& object, std::string message) {
    if (engine == nullptr) return;
    if (!seen.emplace(program, instruction, rule, object).second) return;
    engine->report(rule, severity, std::move(message),
                   SourceLoc{program, instruction, object});
  }
};

unsigned reg_width(const p4sim::RegisterFile& rf, p4sim::RegisterId id) {
  return rf.info(id).width_bits;
}

/// One abstract execution of a program: propagates intervals through temps,
/// widens register/field state, and (when em.engine is set) reports
/// overflow findings.
void transfer(const Program& p, const std::vector<Interval>& params,
              const p4sim::RegisterFile& rf, State& s, FieldState& fs,
              std::vector<Interval>& temps, Emitter& em) {
  temps.assign(p4sim::kTempCount, Interval{});
  for (std::size_t i = 0; i < p.code.size(); ++i) {
    const Instruction& ins = p.code[i];
    const int loc = static_cast<int>(i);
    const Interval a = temps[ins.a];
    const Interval b = temps[ins.b];
    bool ovf = false;
    bool wrap = false;
    Interval r{};
    switch (ins.op) {
      case Op::kConst: r = Interval::constant(ins.imm); break;
      case Op::kParam:
        r = ins.imm < params.size() ? params[ins.imm] : Interval::constant(0);
        break;
      case Op::kMov: r = a; break;
      case Op::kAdd: r = iv_add(a, b, &ovf); break;
      case Op::kSub: r = iv_sub(a, b, &wrap); break;
      case Op::kMul: r = iv_mul(a, b, &ovf); break;
      case Op::kShl: r = iv_shl(a, b, &ovf); break;
      case Op::kShr: r = iv_shr(a, b); break;
      case Op::kAnd: r = iv_and(a, b); break;
      case Op::kOr: r = iv_or(a, b); break;
      case Op::kXor: r = iv_xor(a, b); break;
      case Op::kNot: r = iv_not(a); break;
      case Op::kEq: r = iv_eq(a, b); break;
      case Op::kNe: {
        const Interval e = iv_eq(a, b);
        r = iv_bool(e.hi == 0, e.lo == 1);
        break;
      }
      case Op::kLt: r = iv_lt(a, b); break;
      case Op::kGt: r = iv_lt(b, a); break;
      case Op::kLe: r = iv_le(a, b); break;
      case Op::kGe: r = iv_le(b, a); break;
      case Op::kSelect: r = iv_select(a, b, temps[ins.c]); break;
      case Op::kLoadField:
        r = fs[static_cast<std::size_t>(ins.field)];
        break;
      case Op::kStoreField: {
        const unsigned w = field_bits(ins.field);
        if (!a.fits(w)) {
          em.emit("S4-OVF-002", Severity::kError, p.name, loc,
                  p4sim::field_name(ins.field),
                  std::string("value range ") + range_str(a) +
                      " cannot fit field '" + p4sim::field_name(ins.field) +
                      "' (" + std::to_string(w) + " bits) " + em.scope);
        }
        fs[static_cast<std::size_t>(ins.field)] = a;
        continue;
      }
      case Op::kLoadReg:
        r = ins.reg < s.regs.size() ? s.regs[ins.reg] : Interval::top64();
        break;
      case Op::kStoreReg: {
        if (ins.reg >= s.regs.size()) continue;
        const unsigned w = reg_width(rf, ins.reg);
        if (!b.fits(w)) {
          em.emit("S4-OVF-001", Severity::kError, p.name, loc,
                  rf.info(ins.reg).name,
                  std::string("value range ") + range_str(b) +
                      " cannot fit register '" + rf.info(ins.reg).name +
                      "' (" + std::to_string(w) + " bits) " + em.scope);
        }
        s.regs[ins.reg] = join(s.regs[ins.reg], b);
        continue;
      }
      case Op::kHash1:
      case Op::kHash2: r = Interval::top64(); break;
      case Op::kDigest: continue;
    }
    if (ovf) {
      em.emit("S4-OVF-003", Severity::kError, p.name, loc,
              p4sim::op_name(ins.op),
              std::string(p4sim::op_name(ins.op)) + " of " + range_str(a) +
                  " and " + range_str(b) + " reaches " + bound_str(r.hi) +
                  " > 2^64-1: the 64-bit word wraps " + em.scope);
    }
    if (wrap) {
      em.emit("S4-OVF-004", Severity::kNote, p.name, loc,
              p4sim::op_name(ins.op),
              std::string("subtraction ") + range_str(a) + " - " +
                  range_str(b) + " may wrap below zero " + em.scope);
    }
    temps[ins.dst] = r;
  }
}

struct Stepper {
  const AbstractPipeline* pipe = nullptr;
  const AnalysisOptions* options = nullptr;
  std::vector<Interval> temps;

  FieldState initial_fields() const {
    FieldState fs;
    for (std::size_t i = 0; i < fs.size(); ++i) {
      const auto f = static_cast<FieldRef>(i);
      fs[i] = Interval::width(field_bits(f));
      if (f == FieldRef::kMetaIngressTs) {
        fs[i] = Interval{0, options->timestamp_bound_ns};
      }
    }
    for (const auto& [field, hi] : options->field_bounds) {
      fs[static_cast<std::size_t>(field)] = Interval{0, hi};
    }
    return fs;
  }

  /// One abstract packet: every stage applies one of its alternatives or is
  /// skipped; the result joins with the incoming state (monotone).
  State step(const State& s, Emitter& em) {
    State cur = s;
    FieldState fs = initial_fields();
    for (const auto& stage : pipe->stages) {
      State merged = cur;
      FieldState fmerged = fs;
      for (const auto& alt : stage) {
        State t = cur;
        FieldState ft = fs;
        transfer(*alt.program, alt.params, *pipe->registers, t, ft, temps,
                 em);
        merged = join_state(merged, t);
        fmerged = join_fields(fmerged, ft);
      }
      cur = merged;
      fs = fmerged;
    }
    return join_state(s, cur);
  }
};

// poly_fit / poly_jump live in analysis/acceleration.hpp, shared with the
// precision pass.

}  // namespace

unsigned field_bits(FieldRef f) noexcept {
  switch (f) {
    case FieldRef::kEthType: return 16;
    case FieldRef::kIpv4Src:
    case FieldRef::kIpv4Dst: return 32;
    case FieldRef::kIpv4Proto:
    case FieldRef::kIpv4Ttl: return 8;
    case FieldRef::kTcpSrcPort:
    case FieldRef::kTcpDstPort: return 16;
    case FieldRef::kTcpFlags: return 8;
    case FieldRef::kUdpSrcPort:
    case FieldRef::kUdpDstPort: return 16;
    case FieldRef::kIpv4Valid:
    case FieldRef::kTcpValid:
    case FieldRef::kUdpValid:
    case FieldRef::kEchoValid: return 1;
    case FieldRef::kEchoValue:
    case FieldRef::kEchoN:
    case FieldRef::kEchoXsum:
    case FieldRef::kEchoXsumsq:
    case FieldRef::kEchoVar:
    case FieldRef::kEchoSd: return 64;
    case FieldRef::kMetaIngressPort: return 16;
    case FieldRef::kMetaIngressTs: return 64;
    case FieldRef::kMetaPacketLength: return 16;
    case FieldRef::kMetaEgressSpec: return 32;
  }
  return 64;
}

void run_overflow_pass(const AbstractPipeline& pipeline,
                       const AnalysisOptions& options,
                       AnalysisResult& result) {
  const std::size_t arrays = pipeline.registers->array_count();
  State s;
  s.regs.assign(arrays, Interval{});

  Stepper stepper{&pipeline, &options, {}};
  Emitter silent;  // no engine: iteration phase stays quiet

  const std::uint64_t target = std::max<std::uint64_t>(
      1, options.max_observations);
  std::vector<std::array<U128, kWindow>> hist(arrays);
  for (auto& h : hist) h.fill(0);

  std::uint64_t iter = 0;
  bool fixpoint = false;
  bool extrapolated = false;
  std::vector<std::string> unproven;

  const auto exact_steps = [&](std::uint64_t until) {
    while (iter < until) {
      State next = stepper.step(s, silent);
      ++iter;
      for (std::size_t r = 0; r < arrays; ++r) {
        auto& h = hist[r];
        std::rotate(h.begin(), h.begin() + 1, h.end());
        h[kWindow - 1] = next.regs[r].hi;
      }
      if (next == s) {
        fixpoint = true;
        return;
      }
      s = std::move(next);
    }
  };

  exact_steps(std::min<std::uint64_t>(target, options.warmup_iterations));

  if (!fixpoint && iter < target) {
    // Try polynomial acceleration over the growth window.
    bool all_poly = true;
    std::vector<std::pair<U128, U128>> fits(arrays, {0, 0});
    for (std::size_t r = 0; r < arrays && all_poly; ++r) {
      if (hist[r][kWindow - 1] == hist[r][0]) continue;  // stable
      all_poly = poly_fit(hist[r], &fits[r].first, &fits[r].second);
    }
    if (all_poly && iter >= kWindow) {
      const U128 remaining = target - iter;
      for (std::size_t r = 0; r < arrays; ++r) {
        s.regs[r].hi =
            poly_jump(s.regs[r].hi, fits[r].first, fits[r].second, remaining);
      }
      iter = target;
      extrapolated = true;
      // Settle: propagate the jumped accumulators into derived registers.
      for (int settle = 0; settle < 4 && !fixpoint; ++settle) {
        State next = stepper.step(s, silent);
        if (next == s) fixpoint = true;
        s = std::move(next);
      }
    } else {
      // Irregular growth: keep iterating exactly, then admit the gap.
      exact_steps(std::min<std::uint64_t>(target,
                                          options.max_exact_iterations));
      if (!fixpoint && iter < target) {
        State probe = stepper.step(s, silent);
        for (std::size_t r = 0; r < arrays; ++r) {
          if (!(probe.regs[r] == s.regs[r])) {
            unproven.push_back(pipeline.registers->info(
                static_cast<p4sim::RegisterId>(r)).name);
            const unsigned w =
                reg_width(*pipeline.registers,
                          static_cast<p4sim::RegisterId>(r));
            probe.regs[r] = join(probe.regs[r], Interval::width(w));
          }
        }
        s = std::move(probe);
        iter = target;
        for (int settle = 0; settle < 2; ++settle) {
          s = stepper.step(s, silent);
        }
      }
    }
  }

  // Reporting pass: re-run every alternative from the final state so each
  // witness range reflects the configured observation count.
  Emitter em;
  em.engine = &result.diags;
  em.scope = fixpoint ? "(holds for any packet count)"
                      : "within " + std::to_string(target) + " observations";
  State report_state = s;
  (void)stepper.step(report_state, em);

  for (const auto& name : unproven) {
    result.diags.report(
        "S4-OVF-005", Severity::kWarning,
        "register '" + name + "' growth did not stabilize within " +
            std::to_string(iter) + " exact iterations and is not "
            "polynomial; its bound at " + std::to_string(target) +
            " observations is assumed, not proven",
        SourceLoc{pipeline.name, -1, name});
  }

  result.iterations = iter;
  result.fixpoint = fixpoint;
  result.extrapolated = extrapolated;
  for (std::size_t r = 0; r < arrays; ++r) {
    const auto& info = pipeline.registers->info(
        static_cast<p4sim::RegisterId>(r));
    RegisterBound rb;
    rb.name = info.name;
    rb.width_bits = info.width_bits;
    rb.lo = clamp_u64(s.regs[r].lo);
    rb.hi = clamp_u64(s.regs[r].hi);
    rb.exceeds_width = !s.regs[r].fits(info.width_bits);
    result.register_bounds.push_back(std::move(rb));
  }
}

}  // namespace analysis

// Unsigned interval domain for the overflow pass.
//
// Bounds are 128-bit so the analysis tracks the IDEAL (un-wrapped) value of
// every expression: the simulator's 64-bit words wrap like P4 `bit<64>`, and
// the whole point of the pass is to detect when the ideal value of an
// accumulator or product exceeds the width it is stored into.  Operations
// are inclusion-isotonic (wider inputs give wider outputs), which makes the
// fixed-point iteration in overflow.cpp monotone.
//
// Wrap-aware special case: once a value has been widened to the full 64-bit
// range because of a possible wrap (e.g. an unprovable guarded subtraction),
// further arithmetic on it stays within [0, 2^64-1] — modular semantics —
// instead of accumulating fictitious >2^64 bounds.  Genuine overflows are
// found on properly-bounded sub-64-bit intervals that grow past the width.
#pragma once

#include <algorithm>
#include <cstdint>

namespace analysis {

// __extension__ keeps -Wpedantic quiet about the GCC/Clang 128-bit type.
__extension__ typedef unsigned __int128 U128;

inline constexpr U128 kMax64 = (static_cast<U128>(1) << 64) - 1;
/// Saturation ceiling: bounds never exceed this, so interval arithmetic on
/// U128 itself cannot overflow (2^96 leaves 32 bits of headroom over any
/// 64x64 product... products saturate here too).
inline constexpr U128 kInf = ~static_cast<U128>(0);

[[nodiscard]] constexpr U128 sat_add(U128 a, U128 b) noexcept {
  return a > kInf - b ? kInf : a + b;
}
[[nodiscard]] constexpr U128 sat_mul(U128 a, U128 b) noexcept {
  if (a == 0 || b == 0) return 0;
  return a > kInf / b ? kInf : a * b;
}
[[nodiscard]] constexpr U128 sat_shl(U128 a, unsigned s) noexcept {
  if (a == 0) return 0;
  if (s >= 128) return kInf;
  return a > (kInf >> s) ? kInf : a << s;
}

/// Number of bits needed to represent v (bit length; 0 for v == 0).
[[nodiscard]] constexpr unsigned bit_length(U128 v) noexcept {
  unsigned n = 0;
  while (v != 0) {
    v >>= 1;
    ++n;
  }
  return n;
}

struct Interval {
  U128 lo = 0;
  U128 hi = 0;

  [[nodiscard]] static constexpr Interval constant(U128 v) noexcept {
    return {v, v};
  }
  /// Full range of a w-bit value.
  [[nodiscard]] static constexpr Interval width(unsigned w) noexcept {
    return {0, w >= 64 ? kMax64 : (static_cast<U128>(1) << w) - 1};
  }
  [[nodiscard]] static constexpr Interval top64() noexcept {
    return {0, kMax64};
  }

  /// Exactly the full modular 64-bit range — the "wrapped / unknown word"
  /// value.  An IDEAL bound that merely exceeds 2^64-1 (hi > kMax64) is NOT
  /// top64: it is a genuine overflow the pass must keep visible.
  [[nodiscard]] constexpr bool is_top64() const noexcept {
    return lo == 0 && hi == kMax64;
  }
  [[nodiscard]] constexpr bool constant_value(U128* v) const noexcept {
    if (lo != hi) return false;
    *v = lo;
    return true;
  }
  [[nodiscard]] constexpr bool operator==(const Interval& o) const noexcept {
    return lo == o.lo && hi == o.hi;
  }
  /// Does every value fit in `w` bits (no truncation on store)?
  [[nodiscard]] constexpr bool fits(unsigned w) const noexcept {
    return hi <= Interval::width(w).hi;
  }
};

[[nodiscard]] constexpr Interval join(const Interval& a,
                                      const Interval& b) noexcept {
  return {std::min(a.lo, b.lo), std::max(a.hi, b.hi)};
}

// ---- transfer functions -----------------------------------------------------
// Each returns the ideal-value interval; `wrapped` (when present) is set to
// true when the modular 64-bit result can differ from the ideal result (the
// caller turns that into a diagnostic).

[[nodiscard]] constexpr Interval iv_add(const Interval& a, const Interval& b,
                                        bool* overflow64) noexcept {
  if (a.is_top64() || b.is_top64()) return Interval::top64();
  const Interval r{sat_add(a.lo, b.lo), sat_add(a.hi, b.hi)};
  if (r.hi > kMax64) *overflow64 = true;
  return r;
}

[[nodiscard]] constexpr Interval iv_sub(const Interval& a, const Interval& b,
                                        bool* may_wrap) noexcept {
  if (a.is_top64() || b.is_top64()) return Interval::top64();
  if (a.lo < b.hi) {
    // Cannot prove the ideal difference stays non-negative: the 64-bit
    // result wraps into the full range.
    *may_wrap = true;
    return Interval::top64();
  }
  return {a.lo - b.hi, a.hi - b.lo};
}

[[nodiscard]] constexpr Interval iv_mul(const Interval& a, const Interval& b,
                                        bool* overflow64) noexcept {
  U128 bc = 0;
  // Multiplying by a provable 0 or 1 is exact even on a top interval.
  if ((a.constant_value(&bc) || b.constant_value(&bc)) && bc <= 1) {
    const Interval& other = (a.lo == bc && a.hi == bc) ? b : a;
    return bc == 0 ? Interval::constant(0) : other;
  }
  if (a.is_top64() || b.is_top64()) return Interval::top64();
  const Interval r{sat_mul(a.lo, b.lo), sat_mul(a.hi, b.hi)};
  if (r.hi > kMax64) *overflow64 = true;
  return r;
}

/// Shift amount is masked to 6 bits, exactly like the executor's `& 63`.
[[nodiscard]] constexpr Interval iv_shift_amount(const Interval& b) noexcept {
  if (b.hi <= 63) return b;
  return {0, 63};
}

[[nodiscard]] constexpr Interval iv_shl(const Interval& a, const Interval& b,
                                        bool* overflow64) noexcept {
  if (a.is_top64()) return Interval::top64();
  const Interval s = iv_shift_amount(b);
  const Interval r{sat_shl(a.lo, static_cast<unsigned>(s.lo)),
                   sat_shl(a.hi, static_cast<unsigned>(s.hi))};
  if (r.hi > kMax64) *overflow64 = true;
  return r;
}

[[nodiscard]] constexpr Interval iv_shr(const Interval& a,
                                        const Interval& b) noexcept {
  const Interval s = iv_shift_amount(b);
  return {a.lo >> static_cast<unsigned>(s.hi),
          a.hi >> static_cast<unsigned>(s.lo)};
}

[[nodiscard]] constexpr Interval iv_and(const Interval& a,
                                        const Interval& b) noexcept {
  U128 av = 0;
  U128 bv = 0;
  if (a.constant_value(&av) && b.constant_value(&bv)) {
    return Interval::constant(av & bv);
  }
  // x & y <= min(x, y) for non-negative values; lo is 0 in general.
  return {0, std::min(a.hi, b.hi)};
}

[[nodiscard]] constexpr Interval iv_or(const Interval& a,
                                       const Interval& b) noexcept {
  // x | y never exceeds the next all-ones value at the wider bit length.
  const unsigned bits = std::max(bit_length(a.hi), bit_length(b.hi));
  const U128 ceiling = bits >= 128 ? kInf : (static_cast<U128>(1) << bits) - 1;
  return {std::max(a.lo, b.lo), ceiling};
}

[[nodiscard]] constexpr Interval iv_xor(const Interval& a,
                                        const Interval& b) noexcept {
  const unsigned bits = std::max(bit_length(a.hi), bit_length(b.hi));
  const U128 ceiling = bits >= 128 ? kInf : (static_cast<U128>(1) << bits) - 1;
  return {0, ceiling};
}

[[nodiscard]] constexpr Interval iv_not(const Interval& a) noexcept {
  if (a.hi > kMax64) return Interval::top64();
  return {kMax64 - a.hi, kMax64 - a.lo};
}

/// Comparison result: [1,1] / [0,0] when provable, else [0,1].
[[nodiscard]] constexpr Interval iv_bool(bool provably_true,
                                         bool provably_false) noexcept {
  if (provably_true) return Interval::constant(1);
  if (provably_false) return Interval::constant(0);
  return {0, 1};
}

[[nodiscard]] constexpr Interval iv_lt(const Interval& a,
                                       const Interval& b) noexcept {
  return iv_bool(a.hi < b.lo, a.lo >= b.hi);
}
[[nodiscard]] constexpr Interval iv_le(const Interval& a,
                                       const Interval& b) noexcept {
  return iv_bool(a.hi <= b.lo, a.lo > b.hi);
}
[[nodiscard]] constexpr Interval iv_eq(const Interval& a,
                                       const Interval& b) noexcept {
  return iv_bool(a.lo == a.hi && b.lo == b.hi && a.lo == b.lo,
                 a.hi < b.lo || b.hi < a.lo);
}

[[nodiscard]] constexpr Interval iv_select(const Interval& cond,
                                           const Interval& t,
                                           const Interval& f) noexcept {
  if (cond.lo > 0) return t;          // provably non-zero
  if (cond.hi == 0) return f;         // provably zero
  return join(t, f);
}

/// Renders an interval bound for witness messages ("[0, 2^72.3]"-style:
/// exact when small, power-of-two magnitude when huge).
[[nodiscard]] inline std::uint64_t clamp_u64(U128 v) noexcept {
  return v > kMax64 ? ~std::uint64_t{0} : static_cast<std::uint64_t>(v);
}

}  // namespace analysis

#include "analysis/passes.hpp"

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <map>
#include <optional>
#include <tuple>
#include <unordered_map>
#include <utility>
#include <vector>

namespace analysis {

using p4sim::Guard;
using p4sim::Instruction;
using p4sim::kTempCount;
using p4sim::Op;
using p4sim::Program;
using p4sim::TempId;
using p4sim::Word;

namespace {

/// Forward constant lattice per temp: nullopt = runtime value, otherwise the
/// exact word the temp holds at this point.  Seeded with 0 for every temp
/// the surrounding pipeline cannot have written (per-packet zero init).
using ConstLattice = std::vector<std::optional<Word>>;

ConstLattice seed_lattice(const PassContext& ctx) {
  ConstLattice val(kTempCount);
  for (std::size_t t = 0; t < kTempCount; ++t) {
    if (!ctx.dirty_on_entry.test(t)) val[t] = 0;
  }
  return val;
}

/// Folds `ins` to a constant when pure with all read operands known.
std::optional<Word> try_fold(const Instruction& ins, const ConstLattice& val) {
  const OpEffects& fx = op_effects(ins.op);
  if (!fx.pure || !fx.writes_dst) return std::nullopt;
  if (fx.reads_a && !val[ins.a]) return std::nullopt;
  if (fx.reads_b && !val[ins.b]) return std::nullopt;
  if (fx.reads_c && !val[ins.c]) return std::nullopt;
  return fold_instruction(ins, fx.reads_a ? *val[ins.a] : 0,
                          fx.reads_b ? *val[ins.b] : 0,
                          fx.reads_c ? *val[ins.c] : 0);
}

/// Algebraic identities over partially known operands (x+0, x<<0, x&0, ...).
Instruction simplify_with_lattice(const Instruction& ins,
                                  const ConstLattice& val) {
  auto is = [&val](TempId t, Word w) { return val[t] && *val[t] == w; };
  switch (ins.op) {
    case Op::kSelect:
      if (val[ins.a]) return make_mov(ins.dst, *val[ins.a] ? ins.b : ins.c);
      break;
    case Op::kAdd:
    case Op::kOr:
    case Op::kXor:
      if (is(ins.a, 0)) return make_mov(ins.dst, ins.b);
      if (is(ins.b, 0)) return make_mov(ins.dst, ins.a);
      break;
    case Op::kSub:
      if (is(ins.b, 0)) return make_mov(ins.dst, ins.a);
      break;
    case Op::kShl:
    case Op::kShr:
      if (val[ins.b] && (*val[ins.b] & 63) == 0) {
        return make_mov(ins.dst, ins.a);
      }
      if (is(ins.a, 0)) return make_const(ins.dst, 0);
      break;
    case Op::kAnd:
      if (is(ins.a, 0) || is(ins.b, 0)) return make_const(ins.dst, 0);
      if (is(ins.a, ~Word{0})) return make_mov(ins.dst, ins.b);
      if (is(ins.b, ~Word{0})) return make_mov(ins.dst, ins.a);
      break;
    case Op::kMul:
      if (is(ins.a, 0) || is(ins.b, 0)) return make_const(ins.dst, 0);
      if (is(ins.a, 1)) return make_mov(ins.dst, ins.b);
      if (is(ins.b, 1)) return make_mov(ins.dst, ins.a);
      break;
    default: break;
  }
  return ins;
}

/// Lattice transfer after an instruction has reached its final form.
void update_lattice(const Instruction& ins, ConstLattice& val) {
  if (!op_effects(ins.op).writes_dst) return;
  if (ins.op == Op::kConst) {
    val[ins.dst] = ins.imm;
  } else if (ins.op == Op::kMov) {
    val[ins.dst] = val[ins.a];
  } else {
    val[ins.dst] = std::nullopt;
  }
}

}  // namespace

std::size_t run_constprop(Program& program, const PassContext& ctx) {
  ConstLattice val = seed_lattice(ctx);
  std::vector<Instruction> out;
  out.reserve(program.code.size());
  std::size_t rewrites = 0;
  for (const Instruction& orig : program.code) {
    if (orig.op == Op::kDigest) {
      // A digest whose condition is provably 0 can never fire.
      if (val[orig.c] && *val[orig.c] == 0) {
        ++rewrites;
        continue;
      }
      out.push_back(orig);
      continue;
    }
    Instruction ins = orig;
    if (const std::optional<Word> folded = try_fold(ins, val)) {
      ins = make_const(ins.dst, *folded);
    } else if (op_effects(ins.op).pure) {
      ins = simplify_with_lattice(ins, val);
    }
    if (!same_instruction(ins, orig)) ++rewrites;
    update_lattice(ins, val);
    out.push_back(ins);
  }
  program.code = std::move(out);
  return rewrites;
}

namespace {

// ---- local value numbering (CSE) -----------------------------------------

/// Value number 0 is the per-packet zero-initialized state every clean temp
/// starts in (identical to `kConst 0`).
constexpr std::uint32_t kZeroVn = 0;

/// Expression key: opcode + up to three operand slots + immediate.  Slots
/// hold operand value numbers for ALU ops, and (object id, version) pairs
/// for the state loads, so a store to a field/array retires prior loads.
using ExprKey = std::tuple<std::uint8_t, std::uint64_t, std::uint64_t,
                           std::uint64_t, Word>;

bool commutative(Op op) {
  switch (op) {
    case Op::kAdd:
    case Op::kMul:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kEq:
    case Op::kNe: return true;
    default: return false;
  }
}

}  // namespace

std::size_t run_cse(Program& program, const PassContext& ctx) {
  std::vector<std::uint32_t> vn(kTempCount, kZeroVn);
  // Per-value-number over-approximation of the possibly-set bits, used to
  // gate store-to-load forwarding on width masks and array bounds.
  std::vector<Word> vnbits{0};
  std::uint32_t next_vn = kZeroVn + 1;
  for (std::size_t t = 0; t < kTempCount; ++t) {
    if (ctx.dirty_on_entry.test(t)) {
      vn[t] = next_vn++;
      vnbits.push_back(~Word{0});
    }
  }

  // holder[v]: the earliest temp still holding value v (validity checked
  // against vn[], since the temp may have been redefined since).
  std::unordered_map<std::uint32_t, TempId> holder;
  auto holder_of = [&](std::uint32_t v) -> std::optional<TempId> {
    const auto it = holder.find(v);
    if (it != holder.end() && vn[it->second] == v) return it->second;
    return std::nullopt;
  };
  auto claim = [&](std::uint32_t v, TempId t) {
    if (!holder_of(v)) holder[v] = t;
  };

  std::array<std::uint32_t, p4sim::kFieldCount> field_ver{};
  std::unordered_map<p4sim::RegisterId, std::uint32_t> reg_ver;

  auto width_mask = [](std::uint32_t bits) {
    return bits >= 64 ? ~Word{0} : (Word{1} << bits) - 1;
  };
  auto bits_of = [&](const Instruction& ins) -> Word {
    switch (ins.op) {
      case Op::kConst: return ins.imm;
      case Op::kLoadField:
        return width_mask(p4sim::field_info(ins.field).width_bits);
      case Op::kLoadReg:
        if (ctx.registers != nullptr &&
            ins.reg < ctx.registers->array_count()) {
          return width_mask(
              std::min(ctx.registers->info(ins.reg).width_bits, 64u));
        }
        return ~Word{0};
      case Op::kEq:
      case Op::kNe:
      case Op::kLt:
      case Op::kGt:
      case Op::kLe:
      case Op::kGe: return 1;
      case Op::kAnd: return vnbits[vn[ins.a]] & vnbits[vn[ins.b]];
      case Op::kOr:
      case Op::kXor: return vnbits[vn[ins.a]] | vnbits[vn[ins.b]];
      case Op::kSelect: return vnbits[vn[ins.b]] | vnbits[vn[ins.c]];
      default: return ~Word{0};
    }
  };

  std::map<ExprKey, std::uint32_t> exprs;
  // Reading an untouched temp and `kConst 0` are the same value.
  exprs[{static_cast<std::uint8_t>(Op::kConst), 0, 0, 0, Word{0}}] = kZeroVn;

  auto make_key = [&](const Instruction& ins) -> ExprKey {
    const auto op = static_cast<std::uint8_t>(ins.op);
    switch (ins.op) {
      case Op::kConst: return {op, 0, 0, 0, ins.imm};
      case Op::kParam: return {op, 0, 0, 0, ins.imm};
      case Op::kLoadField:
        return {op, static_cast<std::uint64_t>(ins.field),
                field_ver[static_cast<std::size_t>(ins.field)], 0, 0};
      case Op::kLoadReg:
        return {op, ins.reg, vn[ins.a], reg_ver[ins.reg], 0};
      case Op::kNot:
      case Op::kHash1:
      case Op::kHash2: return {op, vn[ins.a], 0, 0, 0};
      case Op::kSelect: return {op, vn[ins.a], vn[ins.b], vn[ins.c], 0};
      default: {
        std::uint64_t x = vn[ins.a];
        std::uint64_t y = vn[ins.b];
        if (commutative(ins.op) && y < x) std::swap(x, y);
        return {op, x, y, 0, 0};
      }
    }
  };

  std::size_t rewrites = 0;
  for (Instruction& slot : program.code) {
    const Instruction orig = slot;
    Instruction ins = slot;
    const OpEffects& fx = op_effects(ins.op);

    // Canonicalize every read operand to the earliest live holder of its
    // value (subsumes copy propagation; makes duplicate expressions key
    // equal and later DCE able to drop the forwarding movs).
    auto canon = [&](TempId t) -> TempId {
      if (const auto h = holder_of(vn[t]); h && *h != t) return *h;
      return t;
    };
    if (fx.reads_a) ins.a = canon(ins.a);
    if (fx.reads_b) ins.b = canon(ins.b);
    if (fx.reads_c) ins.c = canon(ins.c);
    if (fx.reads_dst) ins.dst = canon(ins.dst);  // digest payload slot

    // Value-identity simplifications: operands with equal value numbers.
    if (fx.writes_dst && fx.pure) {
      const bool ab_same = fx.reads_b && vn[ins.a] == vn[ins.b];
      switch (ins.op) {
        case Op::kSub:
        case Op::kXor:
          if (ab_same) ins = make_const(ins.dst, 0);
          break;
        case Op::kEq:
        case Op::kLe:
        case Op::kGe:
          if (ab_same) ins = make_const(ins.dst, 1);
          break;
        case Op::kNe:
        case Op::kLt:
        case Op::kGt:
          if (ab_same) ins = make_const(ins.dst, 0);
          break;
        case Op::kAnd:
        case Op::kOr:
          if (ab_same) ins = make_mov(ins.dst, ins.a);
          break;
        case Op::kSelect:
          if (vn[ins.b] == vn[ins.c]) ins = make_mov(ins.dst, ins.b);
          break;
        default: break;
      }
    }

    if (ins.op == Op::kStoreField) {
      const p4sim::FieldInfo& fi = p4sim::field_info(ins.field);
      if (fi.writable) {
        const auto f = static_cast<std::size_t>(ins.field);
        ++field_ver[f];
        // Store-to-load forwarding: a later load sees vn[a] — but only when
        // the store provably round-trips: the field is unconditionally
        // present (a store to an absent header is a no-op, and a load then
        // returns 0, not the stored word) and the stored value already fits
        // the field width (set() truncates to width_bits).
        if (fi.always_valid &&
            (vnbits[vn[ins.a]] & ~width_mask(fi.width_bits)) == 0) {
          exprs[{static_cast<std::uint8_t>(Op::kLoadField),
                 static_cast<std::uint64_t>(ins.field), field_ver[f], 0, 0}] =
              vn[ins.a];
        }
      }
      // Stores to read-only fields are no-ops: no version bump, earlier
      // load keys stay valid.
    } else if (ins.op == Op::kStoreReg) {
      ++reg_ver[ins.reg];
      // Forward only when the RegisterFile semantics provably preserve the
      // word: value fits the declared cell width (writes mask) and the
      // index is provably in bounds (OOB writes drop, OOB reads return 0).
      if (ctx.registers != nullptr && ins.reg < ctx.registers->array_count()) {
        const p4sim::RegisterArrayInfo& info = ctx.registers->info(ins.reg);
        const Word cell_mask = width_mask(std::min(info.width_bits, 64u));
        if ((vnbits[vn[ins.b]] & ~cell_mask) == 0 &&
            vnbits[vn[ins.a]] < info.size) {
          exprs[{static_cast<std::uint8_t>(Op::kLoadReg), ins.reg, vn[ins.a],
                 reg_ver[ins.reg], 0}] = vn[ins.b];
        }
      }
    } else if (ins.op == Op::kMov) {
      vn[ins.dst] = vn[ins.a];
      claim(vn[ins.dst], ins.dst);
    } else if (fx.writes_dst) {
      const ExprKey key = make_key(ins);
      const auto it = exprs.find(key);
      std::uint32_t v = 0;
      if (it != exprs.end()) {
        v = it->second;
        if (const auto h = holder_of(v); h && *h != ins.dst) {
          // The value is already in h: recomputation becomes a copy (which
          // canonicalization retargets and DCE then removes).
          ins = make_mov(ins.dst, *h);
        }
      } else {
        v = next_vn++;
        vnbits.push_back(bits_of(ins));
        exprs.emplace(key, v);
      }
      vn[ins.dst] = v;
      claim(v, ins.dst);
    }

    if (!same_instruction(ins, orig)) ++rewrites;
    slot = ins;
  }
  return rewrites;
}

std::size_t run_dce(Program& program, const PassContext& ctx) {
  const std::vector<TempSet> after = liveness_after(program, ctx.live_out);
  std::vector<Instruction> out;
  out.reserve(program.code.size());
  std::size_t rewrites = 0;
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const Instruction& ins = program.code[i];
    const OpEffects& fx = op_effects(ins.op);
    const bool noop_mov = ins.op == Op::kMov && ins.a == ins.dst;
    const bool dead = fx.writes_dst && !has_side_effect(ins.op) &&
                      !after[i].test(ins.dst);
    if (noop_mov || dead) {
      ++rewrites;
      continue;
    }
    out.push_back(ins);
  }
  program.code = std::move(out);

  // Dead-temp compaction: renumber surviving temps onto a dense prefix.
  // Renaming preserves the def-before-use structure, so it is safe unless
  // a later stage reads this program's temps (live_out), or the program
  // reads temps before writing them AND an earlier stage may have left
  // values there (a renamed read-before-write temp could land on a dirty
  // slot and stop reading zero).
  const bool self_contained =
      collect_facts(program).upward_exposed.none() ||
      ctx.dirty_on_entry.none();
  if (ctx.live_out.none() && self_contained) {
    TempSet used;
    for (const Instruction& ins : program.code) {
      const OpEffects& fx = op_effects(ins.op);
      if (fx.reads_a) used.set(ins.a);
      if (fx.reads_b) used.set(ins.b);
      if (fx.reads_c) used.set(ins.c);
      if (fx.writes_dst || fx.reads_dst) used.set(ins.dst);
    }
    std::vector<TempId> rename(kTempCount, 0);
    TempId next = 0;
    bool identity = true;
    for (std::size_t t = 0; t < kTempCount; ++t) {
      if (!used.test(t)) continue;
      rename[t] = next;
      if (next != t) identity = false;
      ++next;
    }
    if (!identity) {
      for (Instruction& ins : program.code) {
        const Instruction orig = ins;
        const OpEffects& fx = op_effects(ins.op);
        if (fx.reads_a) ins.a = rename[ins.a];
        if (fx.reads_b) ins.b = rename[ins.b];
        if (fx.reads_c) ins.c = rename[ins.c];
        if (fx.writes_dst || fx.reads_dst) ins.dst = rename[ins.dst];
        if (!same_instruction(ins, orig)) ++rewrites;
      }
    }
  }
  return rewrites;
}

std::size_t run_strength_reduction(Program& program, const PassContext& ctx) {
  ConstLattice val = seed_lattice(ctx);

  // Fresh temps for materialized shift amounts: past both this program's
  // temps and anything a later stage reads (clobbering a live-out temp
  // would leak into the next stage).
  std::size_t fresh = collect_facts(program).max_temp_plus_one;
  for (std::size_t t = kTempCount; t-- > 0;) {
    if (ctx.live_out.test(t)) {
      fresh = std::max(fresh, t + 1);
      break;
    }
  }

  std::vector<Instruction> out;
  out.reserve(program.code.size());
  std::size_t rewrites = 0;
  for (const Instruction& orig : program.code) {
    Instruction ins = orig;
    if (ins.op == Op::kMul) {
      const std::optional<Word> va = val[ins.a];
      const std::optional<Word> vb = val[ins.b];
      // Put the constant (if any) on the b side for one rewrite path.
      TempId var_side = ins.a;
      std::optional<Word> k = vb;
      if (!k && va) {
        var_side = ins.b;
        k = va;
      }
      if (k && *k == 0) {
        ins = make_const(ins.dst, 0);
      } else if (k && *k == 1) {
        ins = make_mov(ins.dst, var_side);
      } else if (k && std::has_single_bit(*k) && fresh < kTempCount) {
        // x * 2^s == x << s under the same wrapping arithmetic.
        const auto shift_temp = static_cast<TempId>(fresh++);
        const Word shift = static_cast<Word>(std::countr_zero(*k));
        out.push_back(make_const(shift_temp, shift));
        val[shift_temp] = shift;
        Instruction shl;
        shl.op = Op::kShl;
        shl.dst = ins.dst;
        shl.a = var_side;
        shl.b = shift_temp;
        ins = shl;
      }
    }
    if (!same_instruction(ins, orig)) ++rewrites;
    update_lattice(ins, val);
    out.push_back(ins);
  }
  program.code = std::move(out);
  return rewrites;
}

std::size_t run_stage_packing(p4sim::P4Switch& sw,
                              const TargetProfile& profile) {
  const std::vector<p4sim::P4Switch::Stage>& pipe = sw.pipeline();
  if (pipe.size() < 2) return 0;

  std::vector<std::optional<ProgramFacts>> facts(sw.action_count());
  auto facts_of = [&](p4sim::ActionId id) -> const ProgramFacts& {
    if (!facts[id]) facts[id] = collect_facts(sw.action(id));
    return *facts[id];
  };
  auto guards_equal = [](const std::optional<Guard>& x,
                         const std::optional<Guard>& y) {
    if (x.has_value() != y.has_value()) return false;
    if (!x.has_value()) return true;
    return x->field == y->field && x->cmp == y->cmp && x->value == y->value;
  };

  std::vector<p4sim::P4Switch::Stage> out;
  out.reserve(pipe.size());
  std::size_t merges = 0;
  for (std::size_t i = 0; i < pipe.size();) {
    if (i + 1 < pipe.size()) {
      const p4sim::P4Switch::Stage& s1 = pipe[i];
      const p4sim::P4Switch::Stage& s2 = pipe[i + 1];
      if (s1.action && s2.action && guards_equal(s1.guard, s2.guard)) {
        const ProgramFacts& f1 = facts_of(*s1.action);
        const ProgramFacts& f2 = facts_of(*s2.action);
        // Unmerged, the second guard re-evaluates after the first program
        // ran; merging is only sound when the first program cannot change
        // the guard's field.
        const bool guard_stable =
            !s1.guard ||
            !f1.fields_written.test(static_cast<std::size_t>(s1.guard->field));
        const p4sim::Program& p1 = sw.action(*s1.action);
        const p4sim::Program& p2 = sw.action(*s2.action);
        const bool fits =
            p1.code.size() + p2.code.size() <= profile.max_instructions;
        if (guard_stable && !f1.registers_conflict(f2) && fits) {
          // Concatenation is bit-exact: stages already share the packet's
          // temp context and direct stages run with empty action data, so
          // A;B in one stage executes the identical instruction stream.
          p4sim::Program merged;
          merged.name = p1.name + "+" + p2.name;
          merged.code = p1.code;
          merged.code.insert(merged.code.end(), p2.code.begin(),
                             p2.code.end());
          const p4sim::ActionId mid = sw.add_action(std::move(merged));
          p4sim::P4Switch::Stage st;
          st.guard = s1.guard;
          st.action = mid;
          out.push_back(st);
          ++merges;
          i += 2;
          continue;
        }
      }
    }
    out.push_back(pipe[i]);
    ++i;
  }
  if (merges != 0) sw.set_pipeline(std::move(out));
  return merges;
}

}  // namespace analysis

// Register access-conflict analysis (extends p4sim/dependency.cpp).
//
// A hardware pipeline gives each register array one stateful ALU: a packet
// gets ONE indexed read-modify-write per array, from ONE stage.  bmv2 is
// permissive, so on the default profile these findings are portability
// warnings/notes; the `strict` profile escalates them to errors:
//
//   S4-HAZ-001  one program addresses the same array through more than one
//               distinct index expression (value-numbered: two loads of the
//               same fields/params/constants compare equal, anything
//               data-dependent on a register read is unique);
//   S4-HAZ-002  a program touches an array again after writing it — the
//               second access observes the first write only on targets that
//               allow multiple accesses per packet;
//   S4-HAZ-003  two different pipeline stages share an array (cross-stage
//               access), which stage-pinned register files cannot express.
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/verifier.hpp"
#include "p4sim/action.hpp"
#include "p4sim/register_file.hpp"

namespace analysis {

/// One program occurrence in the analyzed pipeline.  `stage` orders the
/// cross-stage check; program-level entry points pass a single element.
struct HazardScope {
  const p4sim::Program* program = nullptr;
  std::size_t stage = 0;
};

/// Runs all three checks over `scopes`; `pipeline_name` labels switch-level
/// (stage-spanning) findings.
void run_hazard_pass(const std::vector<HazardScope>& scopes,
                     const p4sim::RegisterFile& regs,
                     const std::string& pipeline_name,
                     const TargetProfile& profile, AnalysisResult& result);

}  // namespace analysis

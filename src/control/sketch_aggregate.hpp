// Network-wide heavy-flow aggregation over per-switch invertible sketches.
//
// The Figure 1c loop, scaled out: every switch runs a "sketch_netwide"
// SketchApp whose data plane emits a kDigestSketchEpoch tick each time a
// 2^epoch_shift-packet window closes.  Those ticks travel the ordinary
// FleetRunner digest channel; the aggregator is just another digest sink.
// Once EVERY registered switch has announced an epoch, the aggregator
//
//   1. snapshots each switch's invertible sketch (registers -> C++ engine),
//   2. MERGES the snapshots (elementwise — the mergeability the property
//      tests prove) into one fleet sketch,
//   3. DECODES the merged sketch into named flows (no switch ever kept
//      per-flow state),
//   4. reports flows above `heavy_threshold` to the flow sink, and for
//      flows above `escalate_threshold` drills down: installs an exact-
//      match drop for the decoded key on every switch (the same
//      local-mitigation move as the stat4 drill-down state machine),
//   5. clears every switch's sketch so the next epoch is a fresh delta.
//
// Threading contract: on_digest() runs on whatever thread delivers digests
// (FleetRunner's poll/flush/stop thread).  Snapshot + clear touch switch
// registers, so the fleet must be QUIESCED when epochs complete — inject,
// then flush(), then poll_digests(), the standard single-producer loop
// (examples/netwide_heavy_hitter.cpp).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <utility>
#include <vector>

#include "control/fleet.hpp"
#include "control/ml/detector.hpp"
#include "sketch/apps.hpp"

namespace control {

struct NetHeavyFlow {
  std::uint64_t key = 0;
  std::uint64_t count = 0;  ///< network-wide (merged) count this epoch
  std::uint64_t epoch = 0;
  /// Per-switch upper-bound counts (invertible query), same order as
  /// registration; shows WHERE the flow entered the network.
  std::vector<std::pair<SwitchId, std::uint64_t>> per_switch;
  bool escalated = false;  ///< true when drops were installed for it
};

class SketchAggregator {
 public:
  struct Config {
    std::uint64_t heavy_threshold = 32;     ///< report at this merged count
    std::uint64_t escalate_threshold = 0;   ///< install drops; 0 = never
  };

  SketchAggregator() = default;
  explicit SketchAggregator(Config cfg) : cfg_(cfg) {}

  /// Register a fleet member (a kInvertible SketchApp); `app` must outlive
  /// the aggregator.  `id` is the FleetRunner switch id.
  void add_switch(SwitchId id, sketch::SketchApp& app);

  /// Wire as the FleetRunner digest sink.  Non-epoch digests are ignored
  /// (counted), epoch ticks advance the per-switch epoch table; when the
  /// slowest switch reaches the pending epoch the aggregation step runs.
  void on_digest(SwitchId sw, const p4sim::Digest& digest);

  void set_flow_sink(std::function<void(const NetHeavyFlow&)> sink) {
    sink_ = std::move(sink);
  }

  /// ML-gated escalation (docs/ML.md): each aggregated epoch feeds its
  /// network-wide decoded volume into `detector` under `metric`; on a
  /// consensus anomaly EVERY heavy flow reported that epoch is escalated
  /// (drops installed fleet-wide) even below escalate_threshold — the
  /// ensemble vouching that this epoch's volume is abnormal lowers the
  /// evidence bar for mitigation.  `detector` must outlive the aggregator.
  void attach_anomaly_detector(ml::AnomalyDetector& detector,
                               ml::MetricId metric) {
    detector_ = &detector;
    detector_metric_ = metric;
  }

  /// All flows reported so far, in report order.
  [[nodiscard]] const std::vector<NetHeavyFlow>& flows() const noexcept {
    return flows_;
  }
  [[nodiscard]] const std::set<std::uint64_t>& blocked_keys() const noexcept {
    return blocked_;
  }
  [[nodiscard]] std::uint64_t epochs_aggregated() const noexcept {
    return epochs_aggregated_;
  }
  /// Epochs whose merged sketch did not decode completely (overloaded —
  /// more flows than the sketch can invert; the width needs to grow).
  [[nodiscard]] std::uint64_t incomplete_decodes() const noexcept {
    return incomplete_decodes_;
  }
  [[nodiscard]] std::uint64_t ignored_digests() const noexcept {
    return ignored_digests_;
  }
  /// Epochs the attached detector flagged as consensus-anomalous.
  [[nodiscard]] std::uint64_t ml_anomalous_epochs() const noexcept {
    return ml_anomalous_epochs_;
  }
  /// Flows escalated ONLY because of an ML-anomalous epoch (below the
  /// static escalate_threshold).
  [[nodiscard]] std::uint64_t ml_escalations() const noexcept {
    return ml_escalations_;
  }

 private:
  void aggregate(std::uint64_t epoch);

  Config cfg_;
  std::vector<std::pair<SwitchId, sketch::SketchApp*>> members_;
  std::map<SwitchId, std::uint64_t> latest_epoch_;
  std::uint64_t next_epoch_ = 1;  ///< first data-plane epoch id is 1
  std::vector<NetHeavyFlow> flows_;
  std::set<std::uint64_t> blocked_;
  std::function<void(const NetHeavyFlow&)> sink_;
  std::uint64_t epochs_aggregated_ = 0;
  std::uint64_t incomplete_decodes_ = 0;
  std::uint64_t ignored_digests_ = 0;
  ml::AnomalyDetector* detector_ = nullptr;
  ml::MetricId detector_metric_ = 0;
  std::uint64_t ml_anomalous_epochs_ = 0;
  std::uint64_t ml_escalations_ = 0;
};

}  // namespace control

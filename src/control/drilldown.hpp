// The drill-down controller of the Section 4 case study.
//
// State machine (all transitions triggered by switch digests and executed
// through the latency-modeled control channel):
//
//   WatchingRate --rate-spike digest-->
//       install per-/24 binding            (one table op)
//   WatchingSubnet --imbalance digest (names the hot /24)-->
//       re-target the same entry to per-destination tracking in that /24
//                                          (one table op)
//   WatchingHost --imbalance digest (names the hot destination)--> Done
//
// "Upon receiving a traffic-spike alert, it adds an entry to a binding
// table, requiring the switch to track the traffic per /24 subnet [...] In
// response to this second alert, the controller modifies the previously
// added entry so that the switch tracks the traffic per destination within
// the identified /24."
#pragma once

#include <cstdint>
#include <optional>

#include "netsim/channel.hpp"
#include "stat4p4/apps.hpp"

namespace control {

using stat4::TimeNs;

struct DrillDownResult {
  // Switch-side emission times (digest timestamps).
  std::optional<TimeNs> spike_digest_time;
  std::optional<TimeNs> imbalance_digest_time;
  std::optional<TimeNs> pinpoint_digest_time;
  // Controller-side handling times (after channel latency).
  std::optional<TimeNs> spike_handled_time;
  std::optional<TimeNs> subnet_handled_time;
  std::optional<TimeNs> host_handled_time;
  std::uint32_t identified_subnet = 0;
  std::uint32_t identified_host = 0;

  [[nodiscard]] bool done() const noexcept {
    return host_handled_time.has_value();
  }
};

class DrillDownController {
 public:
  struct Config {
    std::uint32_t monitored_prefix = 0;  ///< e.g. 10.0.0.0
    std::uint8_t prefix_len = 8;
    std::uint32_t rate_dist = 0;
    std::uint32_t subnet_dist = 1;
    std::uint32_t host_dist = 2;
    std::uint64_t min_total = 256;  ///< imbalance-check warmup per binding
  };

  DrillDownController(netsim::ControlChannel& channel,
                      stat4p4::MonitorApp& app, Config cfg);

  /// Wire this as the channel's digest handler (done by the constructor).
  void on_digest(const p4sim::Digest& digest);

  [[nodiscard]] const DrillDownResult& result() const noexcept {
    return result_;
  }
  [[nodiscard]] bool done() const noexcept { return result_.done(); }

 private:
  enum class State : std::uint8_t {
    kWatchingRate,
    kWatchingSubnet,
    kWatchingHost,
    kDone,
  };

  netsim::ControlChannel* channel_;
  stat4p4::MonitorApp* app_;
  Config cfg_;
  State state_ = State::kWatchingRate;
  DrillDownResult result_;
  std::optional<p4sim::EntryHandle> binding_handle_;
};

}  // namespace control

// The drill-down controller of the Section 4 case study.
//
// State machine (all transitions triggered by switch digests and executed
// through the latency-modeled control channel):
//
//   WatchingRate --rate-spike digest-->
//       install per-/24 binding            (one table op)
//   WatchingSubnet --imbalance digest (names the hot /24)-->
//       re-target the same entry to per-destination tracking in that /24
//                                          (one table op)
//   WatchingHost --imbalance digest (names the hot destination)--> Done
//
// "Upon receiving a traffic-spike alert, it adds an entry to a binding
// table, requiring the switch to track the traffic per /24 subnet [...] In
// response to this second alert, the controller modifies the previously
// added entry so that the switch tracks the traffic per destination within
// the identified /24."
//
// Three trigger classes can start the drill-down (all funnel into the same
// per-/24 reaction):
//   * the paper's rate-spike digest (kDigestRateSpike on rate_dist);
//   * a sketch heavy-changer digest (sketch::kDigestHeavyChanger), when
//     Config::accept_heavy_changer is set — the ROADMAP's "changer digests
//     as a trigger distribution" follow-on;
//   * a consensus anomaly from the ML ensemble (docs/ML.md), delivered by
//     on_consensus_anomaly() — typically wired from
//     ml::AnomalyDetector::set_anomaly_callback.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "netsim/channel.hpp"
#include "stat4p4/apps.hpp"

namespace control {

using stat4::TimeNs;

struct DrillDownResult {
  // Switch-side emission times (digest timestamps).
  std::optional<TimeNs> spike_digest_time;
  std::optional<TimeNs> changer_digest_time;  ///< heavy-changer trigger
  std::optional<TimeNs> ml_trigger_time;      ///< consensus-anomaly trigger
  std::optional<TimeNs> imbalance_digest_time;
  std::optional<TimeNs> pinpoint_digest_time;
  // Controller-side handling times (after channel latency).
  std::optional<TimeNs> spike_handled_time;  ///< whichever trigger fired
  std::optional<TimeNs> subnet_handled_time;
  std::optional<TimeNs> host_handled_time;
  std::uint32_t identified_subnet = 0;
  std::uint32_t identified_host = 0;
  std::string ml_metric;  ///< metric name behind an ML trigger

  [[nodiscard]] bool done() const noexcept {
    return host_handled_time.has_value();
  }
};

class DrillDownController {
 public:
  struct Config {
    std::uint32_t monitored_prefix = 0;  ///< e.g. 10.0.0.0
    std::uint8_t prefix_len = 8;
    std::uint32_t rate_dist = 0;
    std::uint32_t subnet_dist = 1;
    std::uint32_t host_dist = 2;
    std::uint64_t min_total = 256;  ///< imbalance-check warmup per binding
    /// Also start the drill-down on a sketch heavy-changer digest (a flow
    /// whose count changed sharply between interval windows).
    bool accept_heavy_changer = false;
  };

  DrillDownController(netsim::ControlChannel& channel,
                      stat4p4::MonitorApp& app, Config cfg);

  /// Wire this as the channel's digest handler (done by the constructor).
  void on_digest(const p4sim::Digest& digest);

  /// ML-ensemble trigger: a consensus anomaly on `metric` observed at
  /// `time` starts the same per-/24 drill-down a rate-spike digest would
  /// (ignored outside the WatchingRate state).
  void on_consensus_anomaly(std::string_view metric, TimeNs time);

  [[nodiscard]] const DrillDownResult& result() const noexcept {
    return result_;
  }
  [[nodiscard]] bool done() const noexcept { return result_.done(); }

 private:
  enum class State : std::uint8_t {
    kWatchingRate,
    kWatchingSubnet,
    kWatchingHost,
    kDone,
  };

  /// The shared first reaction: reset the subnet distribution and install
  /// the per-/24 binding, advancing to WatchingSubnet.
  void react_with_per24(TimeNs handled_at);

  netsim::ControlChannel* channel_;
  stat4p4::MonitorApp* app_;
  Config cfg_;
  State state_ = State::kWatchingRate;
  DrillDownResult result_;
  std::optional<p4sim::EntryHandle> binding_handle_;
};

}  // namespace control

// Umbrella header for the controller library.
#pragma once

#include "control/case_study.hpp"  // IWYU pragma: export
#include "control/drilldown.hpp"   // IWYU pragma: export
#include "control/fleet.hpp"       // IWYU pragma: export
#include "control/inspector.hpp"   // IWYU pragma: export
#include "control/ml/ml.hpp"       // IWYU pragma: export

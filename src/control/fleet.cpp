#include "control/fleet.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace control {

void FleetCorrelator::ingest(SwitchId sw, const p4sim::Digest& digest) {
  STAT4_TELEMETRY_ONLY(
      static telemetry::Counter& t_digests =
          telemetry::MetricsRegistry::global().counter(
              "control.correlator.digests");
      t_digests.add();)
  expire(digest.time);

  for (auto& event : open_) {
    if (event.digest_id != digest.id) continue;
    if (digest.time - event.last_time > window_) continue;
    // Joins the open event; a switch reporting twice still counts once.
    if (std::find(event.switches.begin(), event.switches.end(), sw) ==
        event.switches.end()) {
      event.switches.push_back(sw);
    }
    event.last_time = std::max(event.last_time, digest.time);
    event.first_time = std::min(event.first_time, digest.time);
    event.combined_magnitude += digest.payload[1];
    return;
  }

  FleetEvent event;
  event.digest_id = digest.id;
  event.switches.push_back(sw);
  event.first_time = digest.time;
  event.last_time = digest.time;
  event.combined_magnitude = digest.payload[1];
  open_.push_back(std::move(event));
}

void FleetCorrelator::advance(stat4::TimeNs now) { expire(now); }

void FleetCorrelator::expire(stat4::TimeNs now) {
  for (std::size_t i = 0; i < open_.size();) {
    if (now - open_[i].last_time > window_) {
      complete(i);
    } else {
      ++i;
    }
  }
}

void FleetCorrelator::complete(std::size_t index) {
  const FleetEvent event = std::move(open_[index]);
  open_.erase(open_.begin() + static_cast<std::ptrdiff_t>(index));
  ++emitted_;
  // Event latency = switch-side spread between the first and last digest
  // folded into the event: how long the anomaly took to be seen fleet-wide.
  STAT4_TELEMETRY_ONLY(
      static telemetry::Counter& t_events =
          telemetry::MetricsRegistry::global().counter(
              "control.correlator.events");
      static telemetry::Histogram& t_span =
          telemetry::MetricsRegistry::global().histogram(
              "control.correlator.event_span_ns");
      t_events.add();
      t_span.record(static_cast<std::uint64_t>(
          event.last_time - event.first_time));)
  if (sink_) sink_(event);
}

void FleetCorrelator::flush() {
  while (!open_.empty()) complete(0);
}

}  // namespace control

#include "control/drilldown.hpp"

#include "sketch/programs.hpp"

namespace control {

using stat4p4::FreqBindingSpec;
using stat4p4::kDigestImbalance;
using stat4p4::kDigestRateSpike;

DrillDownController::DrillDownController(netsim::ControlChannel& channel,
                                         stat4p4::MonitorApp& app, Config cfg)
    : channel_(&channel), app_(&app), cfg_(cfg) {
  channel_->set_digest_handler(
      [this](const p4sim::Digest& d) { on_digest(d); });
}

void DrillDownController::react_with_per24(TimeNs handled_at) {
  result_.spike_handled_time = handled_at;

  // React: track traffic per /24 inside the monitored /8 (Figure 6's
  // first drill-down step).  The reset clears any stale state in the
  // target distribution before the binding activates.
  FreqBindingSpec per24;
  per24.dst_prefix = cfg_.monitored_prefix;
  per24.dst_prefix_len = cfg_.prefix_len;
  per24.dist = cfg_.subnet_dist;
  per24.shift = 8;  // third octet = /24 index
  per24.mask = 0xFF;
  per24.check = true;
  per24.min_total = cfg_.min_total;
  channel_->execute_register_op(
      [this]() { app_->reset_distribution(cfg_.subnet_dist); });
  channel_->execute_table_op([this, per24]() {
    binding_handle_ = app_->install_freq_binding(per24);
  });
  state_ = State::kWatchingSubnet;
}

void DrillDownController::on_consensus_anomaly(std::string_view metric,
                                               TimeNs time) {
  if (state_ != State::kWatchingRate) return;
  result_.ml_trigger_time = time;
  result_.ml_metric = std::string(metric);
  react_with_per24(channel_->sim().now());
}

void DrillDownController::on_digest(const p4sim::Digest& digest) {
  const TimeNs now = channel_->sim().now();

  switch (state_) {
    case State::kWatchingRate: {
      if (digest.id == kDigestRateSpike &&
          digest.payload[0] == cfg_.rate_dist) {
        result_.spike_digest_time = digest.time;
      } else if (cfg_.accept_heavy_changer &&
                 digest.id == sketch::kDigestHeavyChanger) {
        result_.changer_digest_time = digest.time;
      } else {
        return;
      }
      react_with_per24(now);
      break;
    }

    case State::kWatchingSubnet: {
      if (digest.id != kDigestImbalance ||
          digest.payload[0] != cfg_.subnet_dist) {
        return;
      }
      result_.imbalance_digest_time = digest.time;
      result_.subnet_handled_time = now;
      result_.identified_subnet =
          static_cast<std::uint32_t>(digest.payload[1]);

      // React: modify the previously added entry so the switch tracks
      // traffic per destination within the identified /24.
      FreqBindingSpec perhost;
      perhost.dst_prefix =
          cfg_.monitored_prefix | (result_.identified_subnet << 8);
      perhost.dst_prefix_len = 24;
      perhost.dist = cfg_.host_dist;
      perhost.shift = 0;  // last octet = destination index
      perhost.mask = 0xFF;
      perhost.check = true;
      perhost.min_total = cfg_.min_total;
      channel_->execute_register_op(
          [this]() { app_->reset_distribution(cfg_.host_dist); });
      channel_->execute_table_op([this, perhost]() {
        app_->modify_freq_binding(*binding_handle_, perhost);
      });
      state_ = State::kWatchingHost;
      break;
    }

    case State::kWatchingHost: {
      if (digest.id != kDigestImbalance ||
          digest.payload[0] != cfg_.host_dist) {
        return;
      }
      result_.pinpoint_digest_time = digest.time;
      result_.host_handled_time = now;
      result_.identified_host = static_cast<std::uint32_t>(digest.payload[1]);
      state_ = State::kDone;
      break;
    }

    case State::kDone:
      break;
  }
}

}  // namespace control

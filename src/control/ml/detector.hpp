// Controller-side online anomaly-detection ensemble (docs/ML.md).
//
// Netdata-style design (SNIPPETS.md snippets 2-3) over the repo's integer
// substrate: every registered metric keeps a ring of recent samples, lifts
// each new sample to the 6-dim fixed-point feature vector (features.hpp),
// and maintains a small pool of k=2 k-means models trained on staggered
// sliding windows of those features (kmeans.hpp).  A sample is scored by
// every model in the pool — min-max-normalized distance to the nearest
// centroid — and an anomaly is raised only on UNANIMOUS consensus: every
// model must score the sample beyond the configured threshold.  With N
// independent models each at a per-model false-positive rate p, consensus
// false positives happen at ~p^N (netdata: 18 models, p=0.01 -> ~10^-36).
//
// Feeds arrive from three directions, all funnelled through one mutex (the
// detector lives on the controller thread boundary, never the packet hot
// path):
//   * feed(metric, sample)        — direct per-window samples;
//   * on_digest(sw, digest)       — the FleetRunner MPSC digest channel
//                                   (set_digest_sink), routed by a
//                                   (switch, digest-id) watch table;
//   * feed_snapshot(snapshot)     — telemetry::Snapshot counter deltas,
//                                   routed by a counter-name watch table.
//
// Everything is deterministic: per-metric RNG streams are derived from the
// config seed and the metric id, training draws exactly one RNG value per
// rotation, and all arithmetic is integer — same seed + same sample stream
// implies bit-identical centroids, scores and anomaly bits (fingerprint()).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "control/fleet.hpp"
#include "control/ml/features.hpp"
#include "control/ml/kmeans.hpp"
#include "netsim/rng.hpp"
#include "p4sim/action.hpp"
#include "telemetry/telemetry.hpp"

namespace control::ml {

using MetricId = std::uint32_t;

struct DetectorConfig {
  /// Models per metric; an anomaly needs unanimous consensus across all.
  std::size_t models = 4;
  /// Feature vectors per training window.
  std::size_t train_window = 96;
  /// New model every this many features (windows overlap by
  /// train_window - train_stagger features).
  std::size_t train_stagger = 32;
  /// Per-model anomaly threshold in Q16; kScoreOne (65536) sits exactly at
  /// the training-distance maximum, so the default demands the sample land
  /// 12.5% beyond everything every model saw in training.
  std::uint32_t threshold_q16 = kScoreOne + kScoreOne / 8;
  /// Root seed; each metric derives an independent RNG stream from it.
  std::uint64_t seed = 1;
  /// Lloyd's iteration budget per training run.
  std::size_t lloyd_iterations = 32;
};

/// Outcome of one feed() (or one routed digest / counter delta).
struct FeedResult {
  MetricId metric = 0;
  bool scored = false;   ///< model pool was full, a score was produced
  bool anomaly = false;  ///< unanimous consensus above threshold
  /// Consensus score: the MINIMUM over the pool's per-model scores (the
  /// score every model is willing to vouch for), Q16.
  std::uint32_t score_q16 = 0;
};

/// Plain-data view of one trained model (for snapshot / determinism tests).
struct ModelState {
  std::array<FeatureVector, 2> centroids{};
  std::uint64_t min_distance = 0;  ///< saturated to 64 bits
  std::uint64_t max_distance = 0;  ///< saturated to 64 bits
};

struct MetricState {
  MetricId id = 0;
  std::string name;
  std::uint64_t samples = 0;
  std::uint64_t scored = 0;
  std::uint64_t anomalies = 0;
  std::uint32_t last_score_q16 = 0;
  /// Timeline of the last 64 scored windows, newest in bit 0 (1 = anomaly).
  std::uint64_t anomaly_bits = 0;
  std::vector<ModelState> models;  ///< oldest first
};

struct DetectorState {
  std::uint64_t samples = 0;
  std::uint64_t anomalies = 0;
  std::uint64_t ignored_digests = 0;
  std::vector<MetricState> metrics;  ///< ordered by id
};

class AnomalyDetector {
 public:
  /// Throws std::invalid_argument on a nonsensical config (zero models,
  /// window smaller than the feature history, zero stagger/iterations).
  explicit AnomalyDetector(DetectorConfig cfg = {});

  AnomalyDetector(const AnomalyDetector&) = delete;
  AnomalyDetector& operator=(const AnomalyDetector&) = delete;

  [[nodiscard]] const DetectorConfig& config() const noexcept { return cfg_; }

  /// Idempotent by name: re-registering returns the existing id.
  MetricId register_metric(std::string name);

  /// Record one sample of `metric`.  Returns the scoring outcome; scored
  /// stays false until the model pool is full (train_window +
  /// (models-1)*train_stagger features).  Thread-safe; feeds to DISTINCT
  /// metrics from concurrent threads leave each metric's state exactly as
  /// single-threaded feeding would (metrics are independent).
  FeedResult feed(MetricId metric, std::uint64_t sample);

  /// Route digests with this (switch, digest-id) to a metric named `name`
  /// (registered on demand); payload[0] must equal `payload0` when
  /// `match_payload0` is set (digest ids are shared across distributions —
  /// payload[0] carries the distribution for the stat4p4 digests).
  MetricId watch_digest(control::SwitchId sw, std::uint32_t digest_id,
                        std::string name, bool match_payload0 = false,
                        std::uint64_t payload0 = 0);

  /// Feed a routed digest (payload[1] is the sample — the magnitude slot of
  /// every stat4p4/sketch digest).  Unwatched digests are counted and
  /// ignored.  Safe to install directly as a FleetRunner digest sink.
  FeedResult on_digest(control::SwitchId sw, const p4sim::Digest& digest);

  /// Watch a telemetry counter by exact name; each feed_snapshot() call
  /// then feeds the counter's delta since the previous snapshot.  The first
  /// sighting only establishes the baseline; a decreasing value re-baselines
  /// without feeding (registry restart).
  MetricId watch_counter(std::string counter_name);

  /// Returns the number of samples fed from this snapshot.
  std::size_t feed_snapshot(const telemetry::Snapshot& snapshot);

  /// Invoked (outside the detector lock) for every consensus anomaly.
  void set_anomaly_callback(
      std::function<void(const FeedResult&, const std::string& name)> cb) {
    std::lock_guard<std::mutex> lock(mu_);
    callback_ = std::move(cb);
  }

  [[nodiscard]] DetectorState snapshot() const;

  /// FNV-1a fingerprint over the complete integer state of one metric /
  /// all metrics — two detectors fed the same streams with the same seed
  /// produce identical fingerprints (bit-identical centroids and scores).
  [[nodiscard]] std::uint64_t fingerprint() const;
  [[nodiscard]] std::uint64_t fingerprint(MetricId metric) const;

 private:
  struct Metric {
    MetricId id = 0;
    std::string name;
    FeatureWindow window;
    std::vector<FeatureVector> features;  ///< most recent <= train_window
    std::vector<KMeans2> pool;            ///< oldest first
    netsim::Rng rng;
    std::uint64_t features_seen = 0;
    std::uint64_t samples = 0;
    std::uint64_t scored = 0;
    std::uint64_t anomalies = 0;
    std::uint32_t last_score_q16 = 0;
    std::uint64_t anomaly_bits = 0;
    telemetry::Counter* t_anomalies = nullptr;
    telemetry::Gauge* t_score = nullptr;
    telemetry::Gauge* t_bits = nullptr;
    std::int64_t exported_score = 0;
    std::int64_t exported_bits = 0;

    explicit Metric(MetricId metric_id, std::string metric_name,
                    std::uint64_t root_seed);
  };

  struct DigestWatch {
    MetricId metric = 0;
    bool match_payload0 = false;
    std::uint64_t payload0 = 0;
  };

  struct CounterWatch {
    MetricId metric = 0;
    bool seen = false;
    std::uint64_t last = 0;
  };

  FeedResult feed_locked(Metric& m, std::uint64_t sample);
  MetricId register_metric_locked(std::string name);
  void mix_metric(std::uint64_t& h, const Metric& m) const;
  void notify(const FeedResult& result, const std::string& name);

  DetectorConfig cfg_;
  mutable std::mutex mu_;
  std::vector<std::unique_ptr<Metric>> metrics_;
  std::map<std::string, MetricId, std::less<>> by_name_;
  std::map<std::pair<control::SwitchId, std::uint32_t>, DigestWatch>
      digest_watch_;
  std::map<std::string, CounterWatch, std::less<>> counter_watch_;
  std::function<void(const FeedResult&, const std::string& name)> callback_;
  std::uint64_t total_samples_ = 0;
  std::uint64_t total_anomalies_ = 0;
  std::uint64_t ignored_digests_ = 0;
  telemetry::Counter* t_samples_ = nullptr;
  telemetry::Counter* t_anomalies_ = nullptr;
  telemetry::Histogram* t_scores_ = nullptr;
};

}  // namespace control::ml

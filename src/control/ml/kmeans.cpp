#include "control/ml/kmeans.hpp"

namespace control::ml {

U128 squared_distance(const FeatureVector& a, const FeatureVector& b) noexcept {
  U128 acc = 0;
  for (std::size_t i = 0; i < kFeatureDims; ++i) {
    const std::int64_t d = a[i] - b[i];
    const auto mag = static_cast<std::uint64_t>(d < 0 ? -d : d);
    acc += static_cast<U128>(mag) * mag;
  }
  return acc;
}

namespace {

/// Index of the point farthest from `from` (first index on ties).
std::size_t farthest(const std::vector<FeatureVector>& points,
                     const FeatureVector& from) {
  std::size_t best = 0;
  U128 best_d = 0;
  for (std::size_t i = 0; i < points.size(); ++i) {
    const U128 d = squared_distance(points[i], from);
    if (d > best_d) {
      best_d = d;
      best = i;
    }
  }
  return best;
}

}  // namespace

void KMeans2::train(const std::vector<FeatureVector>& points, netsim::Rng& rng,
                    std::size_t max_iters) {
  const std::size_t n = points.size();
  // Exactly one RNG draw per train() call, even for degenerate windows, so
  // the per-metric RNG stream advances identically on every run.
  const auto seed_idx = static_cast<std::size_t>(rng.below(n));
  centroids_[0] = points[seed_idx];
  centroids_[1] = points[farthest(points, centroids_[0])];

  std::vector<std::uint8_t> assign(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    assign[i] = squared_distance(points[i], centroids_[1]) <
                        squared_distance(points[i], centroids_[0])
                    ? std::uint8_t{1}
                    : std::uint8_t{0};
  }

  for (std::size_t iter = 0; iter < max_iters; ++iter) {
    // Update: integer centroid means (truncating division — deterministic).
    for (std::size_t c = 0; c < 2; ++c) {
      std::array<std::int64_t, kFeatureDims> sum{};
      std::int64_t count = 0;
      for (std::size_t i = 0; i < n; ++i) {
        if (assign[i] != c) continue;
        for (std::size_t dim = 0; dim < kFeatureDims; ++dim) {
          sum[dim] += points[i][dim];
        }
        ++count;
      }
      if (count == 0) {
        // Re-seed an emptied cluster at the point farthest from its peer.
        centroids_[c] = points[farthest(points, centroids_[c ^ 1])];
        continue;
      }
      for (std::size_t dim = 0; dim < kFeatureDims; ++dim) {
        centroids_[c][dim] = sum[dim] / count;
      }
    }
    // Reassign; converged when nothing moves.
    bool changed = false;
    for (std::size_t i = 0; i < n; ++i) {
      const std::uint8_t a = squared_distance(points[i], centroids_[1]) <
                                     squared_distance(points[i], centroids_[0])
                                 ? std::uint8_t{1}
                                 : std::uint8_t{0};
      if (a != assign[i]) {
        assign[i] = a;
        changed = true;
      }
    }
    if (!changed) break;
  }

  min_dist_ = 0;
  max_dist_ = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const U128 d0 = squared_distance(points[i], centroids_[0]);
    const U128 d1 = squared_distance(points[i], centroids_[1]);
    const U128 d = d1 < d0 ? d1 : d0;
    if (i == 0 || d < min_dist_) min_dist_ = d;
    if (d > max_dist_) max_dist_ = d;
  }
  trained_ = true;
}

U128 KMeans2::distance(const FeatureVector& f) const noexcept {
  const U128 d0 = squared_distance(f, centroids_[0]);
  const U128 d1 = squared_distance(f, centroids_[1]);
  return d1 < d0 ? d1 : d0;
}

std::uint32_t KMeans2::score_q16(const FeatureVector& f) const noexcept {
  if (!trained_) return 0;
  const U128 d = distance(f);
  if (max_dist_ == min_dist_) {
    return d <= max_dist_ ? 0 : kScoreCap;
  }
  if (d <= min_dist_) return 0;
  const U128 scaled = (d - min_dist_) << 16;
  const U128 score = scaled / (max_dist_ - min_dist_);
  return score >= kScoreCap ? kScoreCap : static_cast<std::uint32_t>(score);
}

}  // namespace control::ml

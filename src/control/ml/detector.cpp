#include "control/ml/detector.hpp"

#include <stdexcept>
#include <utility>

namespace control::ml {

namespace {

constexpr std::uint64_t kFnvOffset = 1469598103934665603ULL;
constexpr std::uint64_t kFnvPrime = 1099511628211ULL;
constexpr std::uint64_t kSeedMix = 0x9E3779B97F4A7C15ULL;

void mix(std::uint64_t& h, std::uint64_t v) noexcept {
  h ^= v;
  h *= kFnvPrime;
}

std::uint64_t saturate64(U128 v) noexcept {
  constexpr U128 cap = ~std::uint64_t{0};
  return v > cap ? ~std::uint64_t{0} : static_cast<std::uint64_t>(v);
}

}  // namespace

AnomalyDetector::Metric::Metric(MetricId metric_id, std::string metric_name,
                                std::uint64_t root_seed)
    : id(metric_id),
      name(std::move(metric_name)),
      rng(root_seed ^ (kSeedMix * (std::uint64_t{metric_id} + 1))) {
  auto& reg = telemetry::MetricsRegistry::global();
  t_anomalies = &reg.counter("ml." + name + ".anomalies");
  t_score = &reg.gauge("ml." + name + ".score_q16");
  t_bits = &reg.gauge("ml." + name + ".anomaly_bits");
}

AnomalyDetector::AnomalyDetector(DetectorConfig cfg) : cfg_(cfg) {
  if (cfg_.models == 0) {
    throw std::invalid_argument("ml: ensemble needs at least one model");
  }
  if (cfg_.train_window < kFeatureHistory) {
    throw std::invalid_argument("ml: train_window below feature history");
  }
  if (cfg_.train_stagger == 0 || cfg_.lloyd_iterations == 0) {
    throw std::invalid_argument("ml: stagger and iterations must be positive");
  }
  if (cfg_.threshold_q16 == 0) {
    throw std::invalid_argument("ml: threshold must be positive");
  }
  auto& reg = telemetry::MetricsRegistry::global();
  t_samples_ = &reg.counter("ml.samples");
  t_anomalies_ = &reg.counter("ml.anomalies");
  t_scores_ = &reg.histogram("ml.score_q16");
}

MetricId AnomalyDetector::register_metric_locked(std::string name) {
  if (const auto it = by_name_.find(name); it != by_name_.end()) {
    return it->second;
  }
  const auto id = static_cast<MetricId>(metrics_.size());
  metrics_.push_back(std::make_unique<Metric>(id, name, cfg_.seed));
  by_name_.emplace(std::move(name), id);
  return id;
}

MetricId AnomalyDetector::register_metric(std::string name) {
  std::lock_guard<std::mutex> lock(mu_);
  return register_metric_locked(std::move(name));
}

FeedResult AnomalyDetector::feed_locked(Metric& m, std::uint64_t sample) {
  ++m.samples;
  ++total_samples_;
  t_samples_->add();
  m.window.push(sample);

  FeedResult result;
  result.metric = m.id;
  if (!m.window.ready()) return result;
  const FeatureVector f = m.window.features();
  ++m.features_seen;

  // Score BEFORE this feature can join any training window: the pool is
  // strictly older than the sample it judges.
  if (m.pool.size() == cfg_.models) {
    result.scored = true;
    std::uint32_t consensus = kScoreCap;
    bool unanimous = true;
    for (const KMeans2& model : m.pool) {
      const std::uint32_t s = model.score_q16(f);
      if (s < consensus) consensus = s;
      if (s < cfg_.threshold_q16) unanimous = false;
    }
    result.score_q16 = consensus;
    result.anomaly = unanimous;
    ++m.scored;
    m.last_score_q16 = consensus;
    m.anomaly_bits = (m.anomaly_bits << 1) | (unanimous ? 1u : 0u);
    if (unanimous) {
      ++m.anomalies;
      ++total_anomalies_;
      m.t_anomalies->add();
      t_anomalies_->add();
    }
    t_scores_->record(consensus);
    const auto score_now = static_cast<std::int64_t>(consensus);
    m.t_score->add(score_now - m.exported_score);
    m.exported_score = score_now;
    // The timeline delta must wrap: anomaly_bits is a rolling 64-bit mask
    // whose sign (as the exported gauge) flips freely, so the subtraction
    // is done in unsigned arithmetic and the two's-complement result is
    // what the gauge needs to land on the new value.
    const auto bits_now = static_cast<std::int64_t>(m.anomaly_bits);
    m.t_bits->add(static_cast<std::int64_t>(
        m.anomaly_bits - static_cast<std::uint64_t>(m.exported_bits)));
    m.exported_bits = bits_now;
  }

  m.features.push_back(f);
  if (m.features.size() > cfg_.train_window) {
    m.features.erase(m.features.begin());
  }
  if (m.features_seen >= cfg_.train_window &&
      (m.features_seen - cfg_.train_window) % cfg_.train_stagger == 0) {
    KMeans2 model;
    model.train(m.features, m.rng, cfg_.lloyd_iterations);
    m.pool.push_back(model);
    if (m.pool.size() > cfg_.models) {
      m.pool.erase(m.pool.begin());
    }
  }
  return result;
}

void AnomalyDetector::notify(const FeedResult& result,
                             const std::string& name) {
  std::function<void(const FeedResult&, const std::string&)> cb;
  {
    std::lock_guard<std::mutex> lock(mu_);
    cb = callback_;
  }
  if (cb) cb(result, name);
}

FeedResult AnomalyDetector::feed(MetricId metric, std::uint64_t sample) {
  FeedResult result;
  std::string name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    Metric& m = *metrics_.at(metric);
    result = feed_locked(m, sample);
    if (result.anomaly) name = m.name;
  }
  if (result.anomaly) notify(result, name);
  return result;
}

MetricId AnomalyDetector::watch_digest(control::SwitchId sw,
                                       std::uint32_t digest_id,
                                       std::string name, bool match_payload0,
                                       std::uint64_t payload0) {
  std::lock_guard<std::mutex> lock(mu_);
  const MetricId id = register_metric_locked(std::move(name));
  digest_watch_[{sw, digest_id}] = DigestWatch{id, match_payload0, payload0};
  return id;
}

FeedResult AnomalyDetector::on_digest(control::SwitchId sw,
                                      const p4sim::Digest& digest) {
  FeedResult result;
  std::string name;
  {
    std::lock_guard<std::mutex> lock(mu_);
    const auto it = digest_watch_.find({sw, digest.id});
    if (it == digest_watch_.end() ||
        (it->second.match_payload0 &&
         digest.payload[0] != it->second.payload0)) {
      ++ignored_digests_;
      return result;
    }
    Metric& m = *metrics_.at(it->second.metric);
    result = feed_locked(m, digest.payload[1]);
    if (result.anomaly) name = m.name;
  }
  if (result.anomaly) notify(result, name);
  return result;
}

MetricId AnomalyDetector::watch_counter(std::string counter_name) {
  std::lock_guard<std::mutex> lock(mu_);
  const MetricId id = register_metric_locked(counter_name);
  counter_watch_.emplace(std::move(counter_name), CounterWatch{id, false, 0});
  return id;
}

std::size_t AnomalyDetector::feed_snapshot(
    const telemetry::Snapshot& snapshot) {
  std::size_t fed = 0;
  std::vector<std::pair<FeedResult, std::string>> anomalies;
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (const auto& sample : snapshot.counters) {
      const auto it = counter_watch_.find(sample.name);
      if (it == counter_watch_.end()) continue;
      CounterWatch& watch = it->second;
      if (watch.seen && sample.value >= watch.last) {
        Metric& m = *metrics_.at(watch.metric);
        const FeedResult r = feed_locked(m, sample.value - watch.last);
        ++fed;
        if (r.anomaly) anomalies.emplace_back(r, m.name);
      }
      // First sighting (or a registry restart) only establishes a baseline.
      watch.seen = true;
      watch.last = sample.value;
    }
  }
  for (const auto& [result, name] : anomalies) notify(result, name);
  return fed;
}

DetectorState AnomalyDetector::snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  DetectorState state;
  state.samples = total_samples_;
  state.anomalies = total_anomalies_;
  state.ignored_digests = ignored_digests_;
  state.metrics.reserve(metrics_.size());
  for (const auto& m : metrics_) {
    MetricState ms;
    ms.id = m->id;
    ms.name = m->name;
    ms.samples = m->samples;
    ms.scored = m->scored;
    ms.anomalies = m->anomalies;
    ms.last_score_q16 = m->last_score_q16;
    ms.anomaly_bits = m->anomaly_bits;
    ms.models.reserve(m->pool.size());
    for (const KMeans2& model : m->pool) {
      ModelState model_state;
      model_state.centroids = {model.centroid(0), model.centroid(1)};
      model_state.min_distance = saturate64(model.min_distance());
      model_state.max_distance = saturate64(model.max_distance());
      ms.models.push_back(model_state);
    }
    state.metrics.push_back(std::move(ms));
  }
  return state;
}

void AnomalyDetector::mix_metric(std::uint64_t& h, const Metric& m) const {
  mix(h, m.id);
  mix(h, m.name.size());
  for (const char c : m.name) mix(h, static_cast<std::uint8_t>(c));
  mix(h, m.samples);
  mix(h, m.scored);
  mix(h, m.anomalies);
  mix(h, m.last_score_q16);
  mix(h, m.anomaly_bits);
  mix(h, m.pool.size());
  for (const KMeans2& model : m.pool) {
    for (std::size_t c = 0; c < 2; ++c) {
      for (const std::int64_t v : model.centroid(c)) {
        mix(h, static_cast<std::uint64_t>(v));
      }
    }
    mix(h, static_cast<std::uint64_t>(model.min_distance()));
    mix(h, static_cast<std::uint64_t>(model.min_distance() >> 64));
    mix(h, static_cast<std::uint64_t>(model.max_distance()));
    mix(h, static_cast<std::uint64_t>(model.max_distance() >> 64));
  }
}

std::uint64_t AnomalyDetector::fingerprint() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t h = kFnvOffset;
  mix(h, metrics_.size());
  for (const auto& m : metrics_) mix_metric(h, *m);
  mix(h, total_samples_);
  mix(h, total_anomalies_);
  return h;
}

std::uint64_t AnomalyDetector::fingerprint(MetricId metric) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::uint64_t h = kFnvOffset;
  mix_metric(h, *metrics_.at(metric));
  return h;
}

}  // namespace control::ml

// k=2 Lloyd's k-means over fixed-point feature vectors, with the netdata
// min-max-normalized anomaly score.
//
// Training partitions a window of feature vectors into two clusters and
// records the min/max squared distance-to-nearest-centroid seen across the
// training set.  Scoring a new vector maps its distance onto that range:
//
//   score = (d - dmin) / (dmax - dmin)        (Q16 fixed point)
//
// A score of 1.0 (65536 in Q16) means the point sits exactly at the worst
// distance observed during training; anything above is outside everything
// the model has seen.  Integer-only throughout: squared distances are
// accumulated in unsigned 128-bit (6 dims x (2^40)^2 < 2^83), so the model
// is bit-reproducible given the same window and seed.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "control/ml/features.hpp"
#include "netsim/rng.hpp"

namespace control::ml {

__extension__ typedef unsigned __int128 U128;

/// Q16 score equal to 1.0 — a point at the training-distance maximum.
inline constexpr std::uint32_t kScoreOne = std::uint32_t{1} << 16;
/// Scores are clamped here (16x the training range) to keep them in 32 bits.
inline constexpr std::uint32_t kScoreCap = kScoreOne << 4;

/// Squared Euclidean distance between two feature vectors.
[[nodiscard]] U128 squared_distance(const FeatureVector& a,
                                    const FeatureVector& b) noexcept;

class KMeans2 {
 public:
  /// Lloyd's algorithm over `points` (must be non-empty): seed centroid 0
  /// uniformly from the window via `rng` (exactly one draw — keeps the
  /// detector's RNG stream deterministic), centroid 1 at the farthest point,
  /// then iterate assign/update until stable or `max_iters` rounds.  An
  /// emptied cluster is re-seeded at the point farthest from the other
  /// centroid.  Records the min/max training distance for score().
  void train(const std::vector<FeatureVector>& points, netsim::Rng& rng,
             std::size_t max_iters);

  /// Distance of `f` to the nearest centroid.  Valid after train().
  [[nodiscard]] U128 distance(const FeatureVector& f) const noexcept;

  /// Min-max-normalized anomaly score of `f` in Q16, clamped to kScoreCap.
  /// A degenerate model (dmax == dmin: constant training window) scores 0
  /// within the envelope and kScoreCap beyond it.
  [[nodiscard]] std::uint32_t score_q16(const FeatureVector& f) const noexcept;

  [[nodiscard]] bool trained() const noexcept { return trained_; }
  [[nodiscard]] const FeatureVector& centroid(std::size_t i) const noexcept {
    return centroids_[i];
  }
  [[nodiscard]] U128 min_distance() const noexcept { return min_dist_; }
  [[nodiscard]] U128 max_distance() const noexcept { return max_dist_; }

 private:
  std::array<FeatureVector, 2> centroids_{};
  U128 min_dist_ = 0;
  U128 max_dist_ = 0;
  bool trained_ = false;
};

}  // namespace control::ml

#include "control/ml/features.hpp"

namespace control::ml {

void FeatureWindow::push(std::uint64_t sample) noexcept {
  const std::uint64_t clamped = sample > kMaxSample ? kMaxSample : sample;
  head_ = (head_ + 1) % kFeatureHistory;
  ring_[head_] = static_cast<std::int64_t>(clamped);
  if (count_ < kFeatureHistory) ++count_;
  ++total_;
}

std::int64_t FeatureWindow::latest() const noexcept {
  return count_ == 0 ? 0 : ring_[head_];
}

FeatureVector FeatureWindow::features() const noexcept {
  // lag(0) = newest sample, lag(k) = k samples back.
  const auto lag = [this](std::size_t k) {
    return ring_[(head_ + kFeatureHistory - k) % kFeatureHistory];
  };
  FeatureVector f{};
  f[0] = (lag(0) - lag(1)) * kFracOne;                     // first difference
  f[1] = ((lag(2) + lag(1) + lag(0)) * kFracOne) / 3;      // 3-point SMA
  f[2] = lag(1) * kFracOne;
  f[3] = lag(2) * kFracOne;
  f[4] = lag(3) * kFracOne;
  f[5] = lag(4) * kFracOne;
  return f;
}

}  // namespace control::ml

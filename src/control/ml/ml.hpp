// Umbrella header for the controller-side ML ensemble (docs/ML.md).
#pragma once

#include "control/ml/detector.hpp"  // IWYU pragma: export
#include "control/ml/features.hpp"  // IWYU pragma: export
#include "control/ml/kmeans.hpp"    // IWYU pragma: export

// Fixed-point feature extraction for the controller-side ML ensemble.
//
// Follows the netdata design (SNIPPETS.md snippets 2-3): each raw sample
// x_t of a metric is lifted to a 6-dimensional feature vector
//
//   [ diff(x_t), sma3(x_t), x_{t-1}, x_{t-2}, x_{t-3}, x_{t-4} ]
//
// where diff is the first difference x_t - x_{t-1} and sma3 the 3-point
// simple moving average over {x_{t-2}, x_{t-1}, x_t}.  The preprocessing
// makes the k-means models sensitive to both level shifts (lags) and
// rate-of-change anomalies (diff / smoothed) at once.
//
// All arithmetic is integer fixed-point: raw samples (already integers —
// packet counts, digest payloads, counter deltas) are scaled by 2^8 so the
// /3 in the moving average keeps sub-integer resolution without floating
// point.  This mirrors the repo-wide "everything the pipeline computes is
// integer" rule and makes every downstream centroid/distance/score value
// bit-reproducible across platforms.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>

namespace control::ml {

/// Fixed-point scale: 8 fractional bits (Q8).
inline constexpr std::int64_t kFracBits = 8;
inline constexpr std::int64_t kFracOne = std::int64_t{1} << kFracBits;

/// Raw samples are clamped to this before scaling, bounding every feature
/// dimension to |f| <= 2^39 and every squared distance to < 2^83 — safely
/// inside the unsigned 128-bit accumulator used by the k-means scorer.
inline constexpr std::uint64_t kMaxSample = (std::uint64_t{1} << 31) - 1;

inline constexpr std::size_t kFeatureDims = 6;
inline constexpr std::size_t kFeatureLags = 4;
/// Samples needed before the first feature vector exists (x_{t-4}..x_t).
inline constexpr std::size_t kFeatureHistory = kFeatureLags + 1;

using FeatureVector = std::array<std::int64_t, kFeatureDims>;

/// Ring buffer of the most recent raw samples of one metric, emitting a
/// feature vector per sample once kFeatureHistory samples have arrived.
class FeatureWindow {
 public:
  /// Record one raw sample (clamped to kMaxSample).
  void push(std::uint64_t sample) noexcept;

  /// True once enough history exists for features().
  [[nodiscard]] bool ready() const noexcept { return count_ >= kFeatureHistory; }

  /// Feature vector for the newest sample; only valid when ready().
  [[nodiscard]] FeatureVector features() const noexcept;

  [[nodiscard]] std::uint64_t samples_seen() const noexcept { return total_; }

  /// Newest raw (clamped) sample; 0 before any push.
  [[nodiscard]] std::int64_t latest() const noexcept;

 private:
  std::array<std::int64_t, kFeatureHistory> ring_{};
  std::size_t head_ = 0;   ///< index of the newest sample
  std::size_t count_ = 0;  ///< valid entries, saturates at kFeatureHistory
  std::uint64_t total_ = 0;
};

}  // namespace control::ml

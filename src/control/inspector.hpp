// Distribution inspection: the hybrid in-switch + in-controller design.
//
// Section 5: "In our approach, the controller has access to all the values
// of distributions tracked by switches, as they are stored in switches'
// registers.  It can therefore learn about the distribution at runtime, and
// adapt the switch's anomaly detection approach accordingly.  For example,
// if a distribution is bimodal, the controller can instruct switches to
// separately track and check the two modes" — and, from the same section,
// "use in-switch anomaly detection to decide when a controller should
// extract sketches from switches".
//
// DistributionInspector implements the extraction half: on demand (typically
// after an alert) it pulls a distribution's counters through the
// latency-modeled control channel and produces a snapshot with the analyses
// a controller needs — top-k heavy values, mode count, and summary measures
// recomputed exactly in the control plane.
#pragma once

#include <cstdint>
#include <functional>
#include <vector>

#include "netsim/channel.hpp"
#include "stat4p4/apps.hpp"

namespace control {

using stat4::TimeNs;

struct DistributionSnapshot {
  std::uint32_t dist = 0;
  std::vector<stat4::Count> frequencies;  ///< raw per-value counters
  stat4::Count n = 0;                     ///< switch's N register
  stat4::Count xsum = 0;                  ///< switch's Xsum register
  stat4::Count variance_nx = 0;           ///< switch's var register
  TimeNs pulled_at = 0;                   ///< when the snapshot landed
  TimeNs pull_cost = 0;                   ///< channel time spent pulling

  /// The k most frequent (value, count) pairs, most frequent first.
  [[nodiscard]] std::vector<std::pair<stat4::Value, stat4::Count>> top_k(
      std::size_t k) const;

  /// Number of modes: local maxima of the (lightly smoothed) histogram that
  /// rise above `floor_fraction` of the global peak.  A bimodal result is
  /// the controller's cue to split the tracked distribution (Section 5).
  [[nodiscard]] unsigned mode_count(double floor_fraction = 0.10) const;

  /// Total observations in the snapshot (sum of counters).
  [[nodiscard]] stat4::Count total() const;
};

class DistributionInspector {
 public:
  DistributionInspector(netsim::ControlChannel& channel,
                        stat4p4::MonitorApp& app)
      : channel_(&channel), app_(&app) {}

  /// Pull distribution `dist`'s counters + measures; `done` runs once the
  /// snapshot is back at the controller (after the modeled pull latency).
  void pull(std::uint32_t dist,
            std::function<void(const DistributionSnapshot&)> done);

  [[nodiscard]] std::uint64_t pulls_issued() const noexcept { return pulls_; }

 private:
  netsim::ControlChannel* channel_;
  stat4p4::MonitorApp* app_;
  std::uint64_t pulls_ = 0;
};

}  // namespace control

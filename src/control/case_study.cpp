#include "control/case_study.hpp"

#include <memory>
#include <stdexcept>
#include <vector>

#include "p4sim/craft.hpp"

namespace control {

using netsim::HostNode;
using netsim::Network;
using netsim::P4SwitchNode;
using netsim::PacketPump;
using netsim::Rng;
using netsim::Simulator;
using p4sim::ipv4;

CaseStudyOutcome run_case_study(const CaseStudyParams& params) {
  if (params.num_subnets == 0 || params.num_subnets > 250 ||
      params.hosts_per_subnet == 0 || params.hosts_per_subnet > 250) {
    throw std::invalid_argument("case_study: topology out of range");
  }
  if (params.spike_factor <= 1.0) {
    throw std::invalid_argument("case_study: spike_factor must exceed 1");
  }

  Rng rng(params.seed);
  Simulator sim;
  Network net(sim);

  // --- switch program -------------------------------------------------------
  stat4p4::Stat4Config cfg;
  cfg.counter_num = 4;
  cfg.counter_size = 256;
  cfg.k_sigma = params.k_sigma;
  cfg.k_sigma_rate = params.k_sigma_rate;
  if (params.window_size > cfg.counter_size) {
    throw std::invalid_argument("case_study: window exceeds counter_size");
  }
  stat4p4::MonitorApp app(cfg);
  app.install_forward(ipv4(10, 0, 0, 0), 8, /*port=*/1);
  app.install_rate_monitor(ipv4(10, 0, 0, 0), 8, /*dist=*/0,
                           static_cast<std::uint64_t>(params.interval_len),
                           params.window_size, params.min_history);

  // --- topology --------------------------------------------------------------
  const auto switch_id =
      net.add_node(std::make_unique<P4SwitchNode>(app.sw()));
  const auto source_id = net.add_node(std::make_unique<HostNode>());
  const auto sink_id = net.add_node(std::make_unique<HostNode>());
  net.link(source_id, 0, switch_id, 0, 50 * stat4::kMicrosecond);
  net.link(switch_id, 1, sink_id, 0, 50 * stat4::kMicrosecond);

  // --- control plane ----------------------------------------------------------
  netsim::ControlChannel channel(sim, params.channel);
  auto& sw_node = net.node<P4SwitchNode>(switch_id);
  sw_node.set_digest_sink(
      [&channel](const p4sim::Digest& d) { channel.push_digest(d); });

  DrillDownController::Config ctl_cfg;
  ctl_cfg.monitored_prefix = ipv4(10, 0, 0, 0);
  ctl_cfg.prefix_len = 8;
  ctl_cfg.min_total = params.imbalance_min_total;
  DrillDownController controller(channel, app, ctl_cfg);

  // --- traffic -----------------------------------------------------------------
  std::vector<std::uint32_t> destinations;
  for (std::uint32_t s = 1; s <= params.num_subnets; ++s) {
    for (std::uint32_t h = 1; h <= params.hosts_per_subnet; ++h) {
      destinations.push_back(ipv4(10, 0, s, h));
    }
  }
  CaseStudyOutcome out;
  out.hot_subnet = 1 + static_cast<std::uint32_t>(
                           rng.below(params.num_subnets));
  out.hot_host =
      1 + static_cast<std::uint32_t>(rng.below(params.hosts_per_subnet));
  const std::uint32_t hot_ip = ipv4(10, 0, out.hot_subnet, out.hot_host);

  auto& source = net.node<HostNode>(source_id);
  PacketPump pump(sim, [&source](p4sim::Packet pkt) {
    source.transmit(0, std::move(pkt));
  });

  const auto base_gap = static_cast<TimeNs>(
      static_cast<double>(stat4::kSecond) / params.base_pps);
  const auto spike_gap = static_cast<TimeNs>(
      static_cast<double>(stat4::kSecond) /
      (params.base_pps * (params.spike_factor - 1.0)));

  // Baseline: uniform load-balanced traffic from t=0, forever.
  if (params.poisson_arrivals) {
    pump.launch_poisson(0, 0, base_gap, rng,
                        netsim::uniform_udp_factory(rng, ipv4(172, 16, 0, 1),
                                                    destinations));
  } else {
    pump.launch(0, 0, base_gap,
                netsim::uniform_udp_factory(rng, ipv4(172, 16, 0, 1),
                                            destinations));
  }

  // Spike: starts after a randomized warmup, on top of the baseline.
  const TimeNs warmup_span = params.max_warmup - params.min_warmup;
  out.spike_start =
      params.min_warmup +
      (warmup_span > 0
           ? static_cast<TimeNs>(rng.below(
                 static_cast<std::uint64_t>(warmup_span)))
           : 0);
  if (params.poisson_arrivals) {
    pump.launch_poisson(out.spike_start, 0, spike_gap, rng,
                        netsim::fixed_udp_factory(ipv4(172, 16, 0, 1),
                                                  hot_ip));
  } else {
    pump.launch(out.spike_start, 0, spike_gap,
                netsim::fixed_udp_factory(ipv4(172, 16, 0, 1), hot_ip));
  }

  // --- run ------------------------------------------------------------------
  while (!controller.done() && sim.now() < params.deadline) {
    sim.run_until(sim.now() + 100 * stat4::kMillisecond);
  }
  pump.stop_all();

  out.drill = controller.result();
  out.packets_sent = pump.packets_emitted();
  out.events = sim.events_processed();
  if (out.drill.spike_digest_time) {
    out.detection_delay = *out.drill.spike_digest_time - out.spike_start;
    out.false_positive = *out.drill.spike_digest_time < out.spike_start;
  }
  if (out.drill.host_handled_time) {
    out.pinpoint_delay = *out.drill.host_handled_time - out.spike_start;
  }
  out.subnet_correct =
      out.drill.done() && out.drill.identified_subnet == out.hot_subnet;
  out.host_correct =
      out.drill.done() && out.drill.identified_host == out.hot_host;
  return out;
}

}  // namespace control

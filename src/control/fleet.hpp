// Fleet correlation: network-wide events from per-switch digests.
//
// Section 5 raises "statistical analyses across multiple switches" as a
// future direction.  The reusable half is the controller-side correlator:
// it ingests digests from any number of switches (tagged with a switch id)
// and groups same-kind digests that land within a correlation window into
// one event, distinguishing
//
//   * LOCAL events    — one switch saw the anomaly (a spike behind one
//                       edge: react locally), from
//   * NETWORK events  — several switches saw it nearly simultaneously (a
//                       distributed surge: react globally).
//
// examples/multi_switch.cpp runs this logic end to end over netsim.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "p4sim/action.hpp"
#include "stat4/types.hpp"

namespace control {

using SwitchId = std::uint32_t;

struct FleetEvent {
  std::uint32_t digest_id = 0;      ///< the digest kind being correlated
  std::vector<SwitchId> switches;   ///< who reported, in arrival order
  stat4::TimeNs first_time = 0;     ///< earliest digest timestamp
  stat4::TimeNs last_time = 0;      ///< latest digest timestamp
  std::uint64_t combined_magnitude = 0;  ///< sum of payload[1]

  [[nodiscard]] bool network_wide() const noexcept {
    return switches.size() > 1;
  }
};

class FleetCorrelator {
 public:
  /// Digests of the same kind within `window` of each other (switch-side
  /// timestamps) fold into one event.
  explicit FleetCorrelator(stat4::TimeNs window) : window_(window) {}

  /// Ingest one digest from `sw`.  Events complete when a later digest (of
  /// any kind) arrives more than `window` after an event's last member, or
  /// when flush() is called; completed events go to the sink.
  void ingest(SwitchId sw, const p4sim::Digest& digest);

  /// Let controller time pass without a digest: completes every open event
  /// whose last member is more than `window` before `now`.  Without this, an
  /// event at the end of a trace would stay open until flush() — digests are
  /// rare by design, so "a later digest arrives" is not a completion signal
  /// the controller can rely on.
  void advance(stat4::TimeNs now);

  /// Force-complete every open event (end of run).
  void flush();

  void set_event_sink(std::function<void(const FleetEvent&)> sink) {
    sink_ = std::move(sink);
  }

  [[nodiscard]] std::size_t open_events() const noexcept {
    return open_.size();
  }
  [[nodiscard]] std::uint64_t events_emitted() const noexcept {
    return emitted_;
  }

 private:
  void expire(stat4::TimeNs now);
  void complete(std::size_t index);

  stat4::TimeNs window_;
  std::vector<FleetEvent> open_;
  std::function<void(const FleetEvent&)> sink_;
  std::uint64_t emitted_ = 0;
};

}  // namespace control

#include "control/inspector.hpp"

#include <algorithm>

namespace control {

std::vector<std::pair<stat4::Value, stat4::Count>> DistributionSnapshot::top_k(
    std::size_t k) const {
  std::vector<std::pair<stat4::Value, stat4::Count>> pairs;
  for (stat4::Value v = 0; v < frequencies.size(); ++v) {
    if (frequencies[v] > 0) pairs.emplace_back(v, frequencies[v]);
  }
  std::sort(pairs.begin(), pairs.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  if (pairs.size() > k) pairs.resize(k);
  return pairs;
}

unsigned DistributionSnapshot::mode_count(double floor_fraction) const {
  if (frequencies.size() < 3) return frequencies.empty() ? 0 : 1;

  // Light smoothing (3-bin moving average) so counting noise does not split
  // one mode into many.
  std::vector<double> smooth(frequencies.size(), 0.0);
  for (std::size_t i = 0; i < frequencies.size(); ++i) {
    double sum = static_cast<double>(frequencies[i]);
    double cnt = 1.0;
    if (i > 0) {
      sum += static_cast<double>(frequencies[i - 1]);
      cnt += 1.0;
    }
    if (i + 1 < frequencies.size()) {
      sum += static_cast<double>(frequencies[i + 1]);
      cnt += 1.0;
    }
    smooth[i] = sum / cnt;
  }
  const double peak = *std::max_element(smooth.begin(), smooth.end());
  if (peak <= 0.0) return 0;
  const double floor = peak * floor_fraction;

  // Count ascents above the floor: a mode begins when the curve rises above
  // the floor and ends when it falls back below it.
  unsigned modes = 0;
  bool in_mode = false;
  for (const double s : smooth) {
    if (!in_mode && s >= floor) {
      ++modes;
      in_mode = true;
    } else if (in_mode && s < floor) {
      in_mode = false;
    }
  }
  return modes;
}

stat4::Count DistributionSnapshot::total() const {
  stat4::Count t = 0;
  for (const auto f : frequencies) t += f;
  return t;
}

void DistributionInspector::pull(
    std::uint32_t dist,
    std::function<void(const DistributionSnapshot&)> done) {
  ++pulls_;
  const auto& cfg = app_->config();
  const std::uint64_t cells = cfg.counter_size + 4;  // counters + measures
  const TimeNs issued = channel_->sim().now();
  channel_->execute_register_pull(
      cells, [this, dist, issued, done = std::move(done)]() {
        // Snapshot at delivery time: this is what the controller sees,
        // including any updates that landed during the pull (the same
        // consistency model as reading bmv2 registers via the CLI).
        DistributionSnapshot snap;
        snap.dist = dist;
        const auto& rf = app_->sw().registers();
        const auto& regs = app_->regs();
        const auto& cfg2 = app_->config();
        const std::uint64_t base =
            static_cast<std::uint64_t>(dist) * cfg2.counter_size;
        snap.frequencies.resize(cfg2.counter_size);
        for (std::uint64_t i = 0; i < cfg2.counter_size; ++i) {
          snap.frequencies[i] = rf.read(regs.counters, base + i);
        }
        snap.n = rf.read(regs.n, dist);
        snap.xsum = rf.read(regs.xsum, dist);
        snap.variance_nx = rf.read(regs.var, dist);
        snap.pulled_at = channel_->sim().now();
        snap.pull_cost = snap.pulled_at - issued;
        done(snap);
      });
}

}  // namespace control

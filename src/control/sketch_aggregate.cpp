#include "control/sketch_aggregate.hpp"

#include <algorithm>

#include "stat4/types.hpp"

namespace control {

void SketchAggregator::add_switch(SwitchId id, sketch::SketchApp& app) {
  if (app.kind() != sketch::SketchKind::kInvertible) {
    throw stat4::UsageError(
        "control: SketchAggregator needs kInvertible sketch apps");
  }
  if (!members_.empty() &&
      (app.config().width != members_.front().second->config().width)) {
    throw stat4::UsageError(
        "control: all fleet sketches need identical geometry to merge");
  }
  members_.emplace_back(id, &app);
  latest_epoch_[id] = 0;
}

void SketchAggregator::on_digest(SwitchId sw, const p4sim::Digest& digest) {
  if (digest.id != sketch::kDigestSketchEpoch) {
    ++ignored_digests_;
    return;
  }
  const auto it = latest_epoch_.find(sw);
  if (it == latest_epoch_.end()) {
    ++ignored_digests_;  // a switch we do not aggregate
    return;
  }
  it->second = std::max(it->second, digest.payload[0]);

  // The fleet epoch completes when the SLOWEST member has closed it; ticks
  // from fast switches just advance their row and wait.
  while (true) {
    std::uint64_t slowest = ~std::uint64_t{0};
    for (const auto& [id, epoch] : latest_epoch_) {
      slowest = std::min(slowest, epoch);
    }
    if (slowest < next_epoch_) break;
    aggregate(next_epoch_);
    ++next_epoch_;
  }
}

void SketchAggregator::aggregate(std::uint64_t epoch) {
  if (members_.empty()) return;

  // Snapshot every switch, then merge into the first snapshot.  Snapshots
  // double as the per-switch attribution source below.
  std::vector<sketch::InvertibleSketch> snaps;
  snaps.reserve(members_.size());
  for (const auto& [id, app] : members_) {
    snaps.push_back(app->snapshot_invertible());
  }
  sketch::InvertibleSketch merged = snaps.front();
  for (std::size_t i = 1; i < snaps.size(); ++i) merged.merge(snaps[i]);

  const sketch::DecodeResult decoded = merged.decode();
  if (!decoded.complete) ++incomplete_decodes_;

  // ML gate: feed this epoch's network-wide decoded volume; a consensus
  // anomaly escalates every heavy flow reported below (docs/ML.md).
  bool ml_escalate = false;
  if (detector_ != nullptr) {
    std::uint64_t total = 0;
    for (const sketch::DecodedFlow& flow : decoded.flows) total += flow.count;
    if (detector_->feed(detector_metric_, total).anomaly) {
      ml_escalate = true;
      ++ml_anomalous_epochs_;
    }
  }

  for (const sketch::DecodedFlow& flow : decoded.flows) {
    if (flow.count < cfg_.heavy_threshold) continue;
    NetHeavyFlow out;
    out.key = flow.key;
    out.count = flow.count;
    out.epoch = epoch;
    for (std::size_t i = 0; i < members_.size(); ++i) {
      const std::uint64_t local = snaps[i].query(flow.key);
      if (local > 0) out.per_switch.emplace_back(members_[i].first, local);
    }
    // Drill down: block the decoded key network-wide, once.  Either the
    // static threshold or an ML-anomalous epoch justifies the escalation.
    const bool static_escalate = cfg_.escalate_threshold > 0 &&
                                 flow.count >= cfg_.escalate_threshold;
    if ((static_escalate || ml_escalate) && blocked_.insert(flow.key).second) {
      for (const auto& [id, app] : members_) {
        app->install_drop_exact(static_cast<std::uint32_t>(flow.key));
      }
      out.escalated = true;
      if (!static_escalate) ++ml_escalations_;
    }
    flows_.push_back(out);
    if (sink_) sink_(out);
  }

  // Reset the fleet for the next epoch: each sketch becomes a fresh delta.
  for (const auto& [id, app] : members_) app->clear_sketch();
  ++epochs_aggregated_;
}

}  // namespace control

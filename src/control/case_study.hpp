// The full Section 4 case-study experiment, assembled end to end:
// traffic source -> P4 switch -> destinations, controller on a latency-
// modeled control channel, drill-down state machine, deterministic seeds.
//
// Figure 6: "a network monitoring system aims to quickly detect traffic
// spikes for internal hosts called destinations, across which packets are
// supposed to be load-balanced.  By default, we set 36 destinations in six
// /24 subnets of a /8 prefix."
#pragma once

#include <cstdint>

#include "control/drilldown.hpp"
#include "netsim/netsim.hpp"

namespace control {

struct CaseStudyParams {
  std::uint64_t seed = 1;

  // Switch-side monitoring (paper defaults: 100 intervals of 8 ms).
  TimeNs interval_len = 8 * stat4::kMillisecond;
  std::uint64_t window_size = 100;
  std::uint64_t min_history = 8;
  std::uint64_t imbalance_min_total = 256;

  // Topology (paper defaults: 36 destinations in six /24s of 10.0.0.0/8).
  std::uint32_t num_subnets = 6;
  std::uint32_t hosts_per_subnet = 6;

  // Traffic.
  double base_pps = 25000.0;   ///< ~200 packets per 8 ms interval
  double spike_factor = 10.0;  ///< spike rate relative to base
  /// Deterministic inter-arrival gaps (the paper's CBR-style generator) or
  /// Poisson arrivals.  Poisson gives the per-interval variance real
  /// aggregates have — and makes a 2-sigma per-interval check false-alert
  /// within ~1/0.023 intervals; pick k_sigma >= 4 with it (see
  /// EXPERIMENTS.md, robustness note).
  bool poisson_arrivals = false;
  unsigned k_sigma = 2;        ///< frequency-check multiplier (<= 2 with six
                               ///< subnets: max achievable z is sqrt(N-1))
  unsigned k_sigma_rate = 2;   ///< rate-check multiplier (use 4 with Poisson)
  /// The spike starts at a randomized time after this warmup floor
  /// ("after generating traffic uniformly [...] for a randomized time").
  TimeNs min_warmup = 500 * stat4::kMillisecond;
  TimeNs max_warmup = 1500 * stat4::kMillisecond;

  // Control-plane latencies (defaults reproduce the paper's 2-3 s).
  netsim::ControlChannelConfig channel;

  /// Hard stop for the simulation.
  TimeNs deadline = 30 * stat4::kSecond;
};

struct CaseStudyOutcome {
  DrillDownResult drill;
  TimeNs spike_start = 0;
  std::uint32_t hot_subnet = 0;  ///< ground truth
  std::uint32_t hot_host = 0;
  bool subnet_correct = false;
  bool host_correct = false;
  /// True when the rate digest fired BEFORE the spike began — a false
  /// positive of the per-interval check (happens with Poisson arrivals and
  /// k_sigma = 2; see the robustness note in EXPERIMENTS.md).
  bool false_positive = false;
  /// Switch-side spike detection delay: rate digest time - spike start.
  /// The paper observes detection "in the first interval after the start
  /// of the spike", i.e. this is < 2 * interval_len.
  TimeNs detection_delay = 0;
  /// End-to-end pinpoint time: host-identifying digest handled at the
  /// controller - spike start (the paper's "2-3 seconds").
  TimeNs pinpoint_delay = 0;
  std::uint64_t packets_sent = 0;
  std::uint64_t events = 0;
};

/// Runs one complete detection + drill-down experiment.
[[nodiscard]] CaseStudyOutcome run_case_study(const CaseStudyParams& params);

}  // namespace control

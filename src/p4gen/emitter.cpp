#include "p4gen/emitter.hpp"

#include <algorithm>
#include <set>
#include <sstream>

#include "p4sim/disasm.hpp"

namespace p4gen {

using p4sim::ActionId;
using p4sim::FieldRef;
using p4sim::Instruction;
using p4sim::MatchKind;
using p4sim::Op;
using p4sim::P4Switch;
using p4sim::Program;
using p4sim::TempId;

namespace {

/// P4 lvalue for a packet/metadata field.
const char* p4_field(FieldRef f) {
  switch (f) {
    case FieldRef::kEthType: return "hdr.ethernet.ether_type";
    case FieldRef::kIpv4Src: return "hdr.ipv4.src_addr";
    case FieldRef::kIpv4Dst: return "hdr.ipv4.dst_addr";
    case FieldRef::kIpv4Proto: return "hdr.ipv4.protocol";
    case FieldRef::kIpv4Ttl: return "hdr.ipv4.ttl";
    case FieldRef::kIpv4Valid: return "(bit<64>)(bit<1>)hdr.ipv4.isValid()";
    case FieldRef::kTcpSrcPort: return "hdr.tcp.src_port";
    case FieldRef::kTcpDstPort: return "hdr.tcp.dst_port";
    case FieldRef::kTcpFlags: return "hdr.tcp.flags";
    case FieldRef::kTcpValid: return "(bit<64>)(bit<1>)hdr.tcp.isValid()";
    case FieldRef::kUdpSrcPort: return "hdr.udp.src_port";
    case FieldRef::kUdpDstPort: return "hdr.udp.dst_port";
    case FieldRef::kUdpValid: return "(bit<64>)(bit<1>)hdr.udp.isValid()";
    case FieldRef::kEchoValue: return "hdr.stat4_echo.value";
    case FieldRef::kEchoN: return "hdr.stat4_echo.n";
    case FieldRef::kEchoXsum: return "hdr.stat4_echo.xsum";
    case FieldRef::kEchoXsumsq: return "hdr.stat4_echo.xsumsq";
    case FieldRef::kEchoVar: return "hdr.stat4_echo.var_nx";
    case FieldRef::kEchoSd: return "hdr.stat4_echo.sd_nx";
    case FieldRef::kEchoValid: return "(bit<64>)(bit<1>)hdr.stat4_echo.isValid()";
    case FieldRef::kMetaIngressPort:
      return "(bit<64>)standard_metadata.ingress_port";
    case FieldRef::kMetaIngressTs:
      return "(bit<64>)standard_metadata.ingress_global_timestamp";
    case FieldRef::kMetaPacketLength:
      return "(bit<64>)standard_metadata.packet_length";
    case FieldRef::kMetaEgressSpec:
      return "meta.egress_spec64";
  }
  return "/*?*/0";
}

std::string tname(TempId id) { return "meta.t" + std::to_string(id); }

/// Emits one instruction as a P4 statement (indented, newline-terminated).
void emit_instruction(std::ostringstream& os, const P4Switch& sw,
                      const Instruction& ins, bool annotate) {
  const auto t = tname;
  os << "        ";
  const auto bin = [&](const char* op) {
    os << t(ins.dst) << " = " << t(ins.a) << ' ' << op << ' ' << t(ins.b)
       << ';';
  };
  const auto cmp = [&](const char* op) {
    os << t(ins.dst) << " = (" << t(ins.a) << ' ' << op << ' ' << t(ins.b)
       << ") ? 64w1 : 64w0;";
  };
  switch (ins.op) {
    case Op::kConst:
      os << t(ins.dst) << " = 64w" << ins.imm << ';';
      break;
    case Op::kParam:
      os << t(ins.dst) << " = p" << ins.imm << ';';
      break;
    case Op::kMov:
      os << t(ins.dst) << " = " << t(ins.a) << ';';
      break;
    case Op::kAdd: bin("+"); break;
    case Op::kSub: bin("-"); break;
    case Op::kMul: bin("*"); break;
    case Op::kShl:
      os << t(ins.dst) << " = " << t(ins.a) << " << (bit<8>)(" << t(ins.b)
         << " & 63);";
      break;
    case Op::kShr:
      os << t(ins.dst) << " = " << t(ins.a) << " >> (bit<8>)(" << t(ins.b)
         << " & 63);";
      break;
    case Op::kAnd: bin("&"); break;
    case Op::kOr: bin("|"); break;
    case Op::kXor: bin("^"); break;
    case Op::kNot:
      os << t(ins.dst) << " = ~" << t(ins.a) << ';';
      break;
    case Op::kEq: cmp("=="); break;
    case Op::kNe: cmp("!="); break;
    case Op::kLt: cmp("<"); break;
    case Op::kGt: cmp(">"); break;
    case Op::kLe: cmp("<="); break;
    case Op::kGe: cmp(">="); break;
    case Op::kSelect:
      os << t(ins.dst) << " = (" << t(ins.a) << " != 0) ? " << t(ins.b)
         << " : " << t(ins.c) << ';';
      break;
    case Op::kLoadField:
      os << t(ins.dst) << " = (bit<64>)" << p4_field(ins.field) << ';';
      break;
    case Op::kStoreField:
      if (ins.field == FieldRef::kMetaEgressSpec) {
        os << p4_field(ins.field) << " = " << t(ins.a) << ';';
      } else {
        os << p4_field(ins.field) << " = (bit<"
           << "64>)" << t(ins.a) << ';';
      }
      break;
    case Op::kLoadReg:
      os << sw.registers().info(ins.reg).name << ".read(" << t(ins.dst)
         << ", (bit<32>)" << t(ins.a) << ");";
      break;
    case Op::kStoreReg:
      os << sw.registers().info(ins.reg).name << ".write((bit<32>)"
         << t(ins.a) << ", " << t(ins.b) << ");";
      break;
    case Op::kHash1:
      os << "hash(" << t(ins.dst)
         << ", HashAlgorithm.crc32, 64w0, { " << t(ins.a)
         << " }, 64w0xFFFFFFFFFFFFFFFF); // stat4 hash extern #1";
      break;
    case Op::kHash2:
      os << "hash(" << t(ins.dst)
         << ", HashAlgorithm.crc32_custom, 64w0, { " << t(ins.a)
         << " }, 64w0xFFFFFFFFFFFFFFFF); // stat4 hash extern #2";
      break;
    case Op::kDigest:
      os << "if (" << t(ins.c) << " != 0) { digest<stat4_alert_t>(1, { 32w"
         << ins.imm << ", " << t(ins.a) << ", " << t(ins.b) << ", "
         << t(ins.dst) << " }); }";
      break;
  }
  if (annotate) {
    os << "  // " << p4sim::to_string(ins, &sw.registers());
  }
  os << '\n';
}

/// The action-parameter indices a program reads via kParam.
std::set<std::uint64_t> param_indices(const Program& p) {
  std::set<std::uint64_t> out;
  for (const auto& ins : p.code) {
    if (ins.op == Op::kParam) out.insert(ins.imm);
  }
  return out;
}

/// Highest temp id a program touches (for scratch-struct sizing).
TempId max_temp(const Program& p) {
  TempId mx = 0;
  for (const auto& ins : p.code) {
    mx = std::max({mx, ins.dst, ins.a, ins.b, ins.c});
  }
  return mx;
}

void emit_action_decl(std::ostringstream& os, const P4Switch& sw,
                      ActionId id, const EmitOptions& opt) {
  const Program& prog = sw.action(id);
  os << "    action " << prog.name << '(';
  bool first = true;
  for (const auto idx : param_indices(prog)) {
    if (!first) os << ", ";
    os << "bit<64> p" << idx;
    first = false;
  }
  os << ") {\n";
  for (const auto& ins : prog.code) {
    emit_instruction(os, sw, ins, opt.annotate);
  }
  os << "    }\n\n";
}

const char* match_kind(MatchKind k) {
  switch (k) {
    case MatchKind::kExact: return "exact";
    case MatchKind::kLpm: return "lpm";
    case MatchKind::kTernary: return "ternary";
  }
  return "exact";
}

/// Key expression for a table key field (tables match header fields, not
/// the 64-bit casts used in expressions).
std::string key_field(FieldRef f) {
  const std::string s = p4_field(f);
  // Strip the value-cast wrappers used for expression contexts.
  if (s.rfind("(bit<64>)", 0) == 0) {
    const auto inner = s.substr(9);
    if (inner.rfind("(bit<1>)", 0) == 0) return inner.substr(8);
    return inner;
  }
  return s;
}

constexpr const char* kHeadersAndParser = R"(
// ---- headers -------------------------------------------------------------
header ethernet_t {
    bit<48> dst_addr;
    bit<48> src_addr;
    bit<16> ether_type;
}

header ipv4_t {
    bit<4>  version;
    bit<4>  ihl;
    bit<8>  diffserv;
    bit<16> total_len;
    bit<16> identification;
    bit<3>  flags;
    bit<13> frag_offset;
    bit<8>  ttl;
    bit<8>  protocol;
    bit<16> hdr_checksum;
    bit<32> src_addr;
    bit<32> dst_addr;
}

header tcp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<32> seq_no;
    bit<32> ack_no;
    bit<4>  data_offset;
    bit<4>  res;
    bit<8>  flags;
    bit<16> window;
    bit<16> checksum;
    bit<16> urgent_ptr;
}

header udp_t {
    bit<16> src_port;
    bit<16> dst_port;
    bit<16> length;
    bit<16> checksum;
}

// Stat4 echo header (EtherType 0x88B5): Figure 5 validation application.
header stat4_echo_t {
    bit<64> value;
    bit<64> n;
    bit<64> xsum;
    bit<64> xsumsq;
    bit<64> var_nx;
    bit<64> sd_nx;
}

struct headers_t {
    ethernet_t   ethernet;
    ipv4_t       ipv4;
    tcp_t        tcp;
    udp_t        udp;
    stat4_echo_t stat4_echo;
}

// Alert digest pushed to the controller (Figure 1c).
struct stat4_alert_t {
    bit<32> digest_id;
    bit<64> w0;
    bit<64> w1;
    bit<64> w2;
}

// ---- parser ----------------------------------------------------------------
parser Stat4Parser(packet_in packet, out headers_t hdr,
                   inout metadata_t meta,
                   inout standard_metadata_t standard_metadata) {
    state start {
        packet.extract(hdr.ethernet);
        transition select(hdr.ethernet.ether_type) {
            0x0800: parse_ipv4;
            0x88B5: parse_stat4_echo;
            default: accept;
        }
    }
    state parse_ipv4 {
        packet.extract(hdr.ipv4);
        transition select(hdr.ipv4.protocol) {
            6:  parse_tcp;
            17: parse_udp;
            default: accept;
        }
    }
    state parse_tcp { packet.extract(hdr.tcp); transition accept; }
    state parse_udp { packet.extract(hdr.udp); transition accept; }
    state parse_stat4_echo {
        packet.extract(hdr.stat4_echo);
        transition accept;
    }
}
)";

}  // namespace

std::string emit_action(const P4Switch& sw, ActionId action,
                        const EmitOptions& options) {
  std::ostringstream os;
  emit_action_decl(os, sw, action, options);
  return os.str();
}

std::string emit_p4(const P4Switch& sw, const EmitOptions& options) {
  std::ostringstream os;
  os << "// " << options.program_name
     << " — generated by stat4cpp's P4 emitter from the validated\n"
     << "// p4sim pipeline \"" << sw.name() << "\".  Structure and\n"
     << "// arithmetic are one-to-one with the simulated, tested programs;\n"
     << "// extern signatures may need adaptation to your p4c target.\n";
  if (!options.header_note.empty()) {
    os << "// " << options.header_note << "\n";
  }
  os << "#include <core.p4>\n#include <v1model.p4>\n";

  // Scratch metadata: one 64-bit container per temp any action touches.
  TempId temps = 0;
  for (std::size_t i = 0; i < sw.action_count(); ++i) {
    temps = std::max(temps,
                     static_cast<TempId>(
                         max_temp(sw.action(static_cast<ActionId>(i))) + 1));
  }
  os << "\nstruct metadata_t {\n"
     << "    bit<64> egress_spec64;\n";
  for (TempId i = 0; i < temps; ++i) {
    os << "    bit<64> t" << i << ";\n";
  }
  os << "}\n";

  os << kHeadersAndParser;

  // Ingress control: registers + actions + tables + guarded apply.
  os << "\n// ---- ingress "
        "----------------------------------------------------------\n"
     << "control Stat4Ingress(inout headers_t hdr, inout metadata_t meta,\n"
     << "                     inout standard_metadata_t standard_metadata) "
        "{\n";
  for (std::size_t r = 0; r < sw.registers().array_count(); ++r) {
    const auto& info = sw.registers().info(static_cast<std::uint32_t>(r));
    os << "    register<bit<" << info.width_bits << ">>(" << info.size
       << ") " << info.name << ";\n";
  }
  os << '\n';

  for (std::size_t a = 0; a < sw.action_count(); ++a) {
    emit_action_decl(os, sw, static_cast<ActionId>(a), options);
  }

  for (std::size_t ti = 0; ti < sw.table_count(); ++ti) {
    const auto& table = sw.table(static_cast<std::uint32_t>(ti));
    os << "    table " << table.name() << " {\n        key = {\n";
    for (const auto& k : table.key_layout()) {
      os << "            " << key_field(k.field) << " : "
         << match_kind(k.kind) << ";\n";
    }
    os << "        }\n        actions = {\n";
    for (std::size_t a = 0; a < sw.action_count(); ++a) {
      os << "            " << sw.action(static_cast<ActionId>(a)).name
         << ";\n";
    }
    os << "        }\n        size = " << table.max_entries()
       << ";\n    }\n\n";
  }

  os << "    apply {\n        meta.egress_spec64 = 0; // default drop\n";
  for (const auto& stage : sw.pipeline()) {
    std::string body;
    if (stage.table) {
      body = sw.table(*stage.table).name() + ".apply();";
    } else if (stage.action) {
      body = sw.action(*stage.action).name + "();";
    }
    if (stage.guard) {
      const std::string g = key_field(stage.guard->field);
      const char* cmp =
          stage.guard->cmp == p4sim::Guard::Cmp::kEq ? "==" : "!=";
      // isValid-style guards read naturally; numeric guards compare.
      os << "        if (" << g << ' ' << cmp << ' ' << stage.guard->value
         << ") { " << body << " }\n";
    } else {
      os << "        " << body << '\n';
    }
  }
  os << "        if (meta.egress_spec64 == 0) {\n"
     << "            mark_to_drop(standard_metadata);\n"
     << "        } else {\n"
     << "            standard_metadata.egress_spec =\n"
     << "                (bit<9>)(meta.egress_spec64 - 1);\n"
     << "        }\n    }\n}\n";

  // Boilerplate egress / checksum / deparser.
  os << R"(
// ---- egress / deparser ------------------------------------------------------
control Stat4Egress(inout headers_t hdr, inout metadata_t meta,
                    inout standard_metadata_t standard_metadata) {
    apply { }
}

control Stat4VerifyChecksum(inout headers_t hdr, inout metadata_t meta) {
    apply { }
}

control Stat4ComputeChecksum(inout headers_t hdr, inout metadata_t meta) {
    apply { }
}

control Stat4Deparser(packet_out packet, in headers_t hdr) {
    apply {
        packet.emit(hdr.ethernet);
        packet.emit(hdr.ipv4);
        packet.emit(hdr.tcp);
        packet.emit(hdr.udp);
        packet.emit(hdr.stat4_echo);
    }
}

V1Switch(Stat4Parser(), Stat4VerifyChecksum(), Stat4Ingress(),
         Stat4Egress(), Stat4ComputeChecksum(), Stat4Deparser()) main;
)";
  return os.str();
}

}  // namespace p4gen

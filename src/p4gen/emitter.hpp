// P4_16 source emission: from a configured p4sim switch back to P4.
//
// The reproduction runs Stat4 on a software substrate; this emitter closes
// the loop by generating a P4_16 (v1model) rendering of the same pipeline —
// headers, parser, register declarations, one action per straight-line
// program (temps become scratch-metadata fields, kParam operands become
// action parameters), tables with their match kinds, and the guarded apply
// sequence.
//
// The output is a faithful, readable skeleton for porting to bmv2/Tofino:
// every Stat4 algorithm appears as the exact P4 statements the paper
// describes (shift-based sqrt, MSB if-ladder unrolled into ternaries,
// register read/modify/write).  It is NOT guaranteed to compile unmodified
// under a specific p4c version — targets differ in extern signatures — but
// the structure and arithmetic are one-to-one with what the simulator
// executed and validated.
#pragma once

#include <string>

#include "p4sim/switch.hpp"

namespace p4gen {

struct EmitOptions {
  std::string program_name = "stat4_app";
  /// Emit the per-instruction comments produced by the disassembler.
  bool annotate = true;
  /// Extra line appended to the file banner (e.g. the optimizer pass list
  /// stat4_opt --emit-p4 stamps); empty = no extra line.
  std::string header_note;
};

/// Generates the complete P4_16 translation unit for the switch.
[[nodiscard]] std::string emit_p4(const p4sim::P4Switch& sw,
                                  const EmitOptions& options = {});

/// Generates only the action body for one program (used by tests and for
/// embedding single algorithms into existing P4 code).
[[nodiscard]] std::string emit_action(const p4sim::P4Switch& sw,
                                      p4sim::ActionId action,
                                      const EmitOptions& options = {});

}  // namespace p4gen

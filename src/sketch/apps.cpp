#include "sketch/apps.hpp"

#include <string>

#include "stat4/types.hpp"

namespace sketch {

using p4sim::FieldRef;
using p4sim::Guard;
using p4sim::KeyMatch;
using p4sim::KeySpec;
using p4sim::MatchKind;
using p4sim::Program;
using p4sim::ProgramBuilder;
using p4sim::RegisterId;
using p4sim::TableEntry;
using p4sim::Word;

namespace {

Program build_forward() {
  ProgramBuilder b("forward");
  b.store_field(FieldRef::kMetaEgressSpec, b.param(0));
  return b.take();
}

Program build_drop() {
  ProgramBuilder b("drop");
  b.store_field(FieldRef::kMetaEgressSpec, b.konst(0));
  return b.take();
}

Program build_noop() {
  ProgramBuilder b("noop");
  (void)b.konst(0);
  return b.take();
}

void declare_rows(p4sim::P4Switch& sw, const char* prefix, std::uint64_t size,
                  std::array<RegisterId, kSketchDepth>& out) {
  for (unsigned r = 0; r < kSketchDepth; ++r) {
    out[r] = sw.declare_register(prefix + std::to_string(r),
                                 static_cast<std::uint32_t>(size));
  }
}

}  // namespace

SketchApp::SketchApp(SketchKind kind, SketchConfig cfg,
                     p4sim::AluProfile profile)
    : kind_(kind), cfg_(cfg), sw_("stat4-sketch", profile) {
  switch (kind_) {
    case SketchKind::kCountMin:
      declare_rows(sw_, "cm_row", cfg_.width, regs_.cm_row);
      regs_.hh_seen = sw_.declare_register(
          "hh_seen", static_cast<std::uint32_t>(cfg_.width));
      break;
    case SketchKind::kCountSketch:
      declare_rows(sw_, "cs_cur_plus", cfg_.width, regs_.cs_cur_plus);
      declare_rows(sw_, "cs_cur_minus", cfg_.width, regs_.cs_cur_minus);
      declare_rows(sw_, "cs_prev_plus", cfg_.width, regs_.cs_prev_plus);
      declare_rows(sw_, "cs_prev_minus", cfg_.width, regs_.cs_prev_minus);
      declare_rows(sw_, "cs_epoch", cfg_.width, regs_.cs_epoch);
      regs_.ch_reported = sw_.declare_register(
          "ch_reported", static_cast<std::uint32_t>(cfg_.width));
      break;
    case SketchKind::kInvertible:
      declare_rows(sw_, "inv_count", cfg_.width, regs_.inv_count);
      declare_rows(sw_, "inv_keysum", cfg_.width, regs_.inv_keysum);
      declare_rows(sw_, "inv_checksum", cfg_.width, regs_.inv_checksum);
      break;
  }
  regs_.total = sw_.declare_register("sk_total", 1);

  drop_action_ = sw_.add_action(build_drop());
  noop_action_ = sw_.add_action(build_noop());
  forward_action_ = sw_.add_action(build_forward());
  switch (kind_) {
    case SketchKind::kCountMin:
      update_action_ = sw_.add_action(
          build_count_min_update(regs_, cfg_, FieldRef::kIpv4Dst));
      break;
    case SketchKind::kCountSketch:
      update_action_ = sw_.add_action(
          build_count_sketch_update(regs_, cfg_, FieldRef::kIpv4Dst));
      break;
    case SketchKind::kInvertible:
      update_action_ = sw_.add_action(
          build_invertible_update(regs_, cfg_, FieldRef::kIpv4Dst));
      break;
  }

  forward_table_ = sw_.add_table(
      "ipv4_forward", {KeySpec{FieldRef::kIpv4Dst, MatchKind::kLpm}});
  sw_.table(forward_table_).set_default_action(drop_action_, {});

  block_table_ = sw_.add_table(
      "sketch_block", {KeySpec{FieldRef::kIpv4Dst, MatchKind::kExact}});
  sw_.table(block_table_).set_default_action(noop_action_, {});

  binding_table_ = sw_.add_table(
      "sketch_binding", {KeySpec{FieldRef::kIpv4Dst, MatchKind::kLpm}});
  sw_.table(binding_table_).set_default_action(noop_action_, {});

  Guard ipv4;
  ipv4.field = FieldRef::kIpv4Valid;
  ipv4.cmp = Guard::Cmp::kNe;
  ipv4.value = 0;
  sw_.add_table_stage(forward_table_, ipv4);
  sw_.add_table_stage(block_table_, ipv4);  // later stage: a block wins
  sw_.add_table_stage(binding_table_, ipv4);
}

p4sim::EntryHandle SketchApp::install_forward(std::uint32_t prefix,
                                              std::uint8_t len,
                                              p4sim::PortId port) {
  TableEntry e;
  KeyMatch km;
  km.value = prefix;
  km.prefix_len = len;
  km.field_bits = 32;
  e.key.push_back(km);
  e.action = forward_action_;
  e.action_data = {static_cast<Word>(port) + 1};
  return sw_.table(forward_table_).insert(std::move(e));
}

p4sim::EntryHandle SketchApp::install_sketch(std::uint32_t prefix,
                                             std::uint8_t len,
                                             std::uint8_t shift,
                                             std::uint64_t mask,
                                             std::uint64_t threshold) {
  TableEntry e;
  KeyMatch km;
  km.value = prefix;
  km.prefix_len = len;
  km.field_bits = 32;
  e.key.push_back(km);
  e.action = update_action_;
  e.action_data.assign(kSkAdWordCount, 0);
  e.action_data[kSkAdShift] = shift;
  e.action_data[kSkAdMask] = mask;
  e.action_data[kSkAdThreshold] = threshold;
  return sw_.table(binding_table_).insert(std::move(e));
}

p4sim::EntryHandle SketchApp::install_drop_exact(std::uint32_t key) {
  TableEntry e;
  KeyMatch km;
  km.value = key;
  km.field_bits = 32;
  e.key.push_back(km);
  e.action = drop_action_;
  return sw_.table(block_table_).insert(std::move(e));
}

void SketchApp::rearm() {
  if (kind_ == SketchKind::kInvertible) return;  // nothing latches
  p4sim::RegisterFile& rf = sw_.registers();
  const RegisterId latch =
      kind_ == SketchKind::kCountMin ? regs_.hh_seen : regs_.ch_reported;
  for (std::uint64_t i = 0; i < cfg_.width; ++i) rf.write(latch, i, 0);
}

void SketchApp::require_kind(SketchKind kind, const char* what) const {
  if (kind_ != kind) {
    throw stat4::UsageError(std::string("sketch: ") + what +
                            " needs a different sketch kind");
  }
}

CountMinSketch SketchApp::snapshot_count_min() const {
  require_kind(SketchKind::kCountMin, "snapshot_count_min");
  CountMinSketch out(kSketchDepth, cfg_.width);
  const p4sim::RegisterFile& rf = sw_.registers();
  for (unsigned r = 0; r < kSketchDepth; ++r) {
    for (std::uint64_t c = 0; c < cfg_.width; ++c) {
      out.cell(r, c) = rf.read(regs_.cm_row[r], c);
    }
  }
  return out;
}

CountSketch SketchApp::snapshot_count_sketch_current() const {
  require_kind(SketchKind::kCountSketch, "snapshot_count_sketch");
  CountSketch out(kSketchDepth, cfg_.width);
  const p4sim::RegisterFile& rf = sw_.registers();
  for (unsigned r = 0; r < kSketchDepth; ++r) {
    for (std::uint64_t c = 0; c < cfg_.width; ++c) {
      out.plus(r, c) = rf.read(regs_.cs_cur_plus[r], c);
      out.minus(r, c) = rf.read(regs_.cs_cur_minus[r], c);
    }
  }
  return out;
}

CountSketch SketchApp::snapshot_count_sketch_previous() const {
  require_kind(SketchKind::kCountSketch, "snapshot_count_sketch");
  CountSketch out(kSketchDepth, cfg_.width);
  const p4sim::RegisterFile& rf = sw_.registers();
  for (unsigned r = 0; r < kSketchDepth; ++r) {
    for (std::uint64_t c = 0; c < cfg_.width; ++c) {
      out.plus(r, c) = rf.read(regs_.cs_prev_plus[r], c);
      out.minus(r, c) = rf.read(regs_.cs_prev_minus[r], c);
    }
  }
  return out;
}

InvertibleSketch SketchApp::snapshot_invertible() const {
  require_kind(SketchKind::kInvertible, "snapshot_invertible");
  InvertibleSketch out(kSketchDepth, cfg_.width);
  const p4sim::RegisterFile& rf = sw_.registers();
  for (unsigned r = 0; r < kSketchDepth; ++r) {
    for (std::uint64_t c = 0; c < cfg_.width; ++c) {
      out.count(r, c) = rf.read(regs_.inv_count[r], c);
      out.keysum(r, c) = rf.read(regs_.inv_keysum[r], c);
      out.checksum(r, c) = rf.read(regs_.inv_checksum[r], c);
    }
  }
  return out;
}

void SketchApp::clear_sketch() {
  p4sim::RegisterFile& rf = sw_.registers();
  const auto clear_row = [&](const std::array<RegisterId, kSketchDepth>& rows) {
    for (unsigned r = 0; r < kSketchDepth; ++r) {
      for (std::uint64_t c = 0; c < cfg_.width; ++c) rf.write(rows[r], c, 0);
    }
  };
  const auto clear_one = [&](RegisterId reg) {
    for (std::uint64_t c = 0; c < cfg_.width; ++c) rf.write(reg, c, 0);
  };
  switch (kind_) {
    case SketchKind::kCountMin:
      clear_row(regs_.cm_row);
      clear_one(regs_.hh_seen);
      break;
    case SketchKind::kCountSketch:
      clear_row(regs_.cs_cur_plus);
      clear_row(regs_.cs_cur_minus);
      clear_row(regs_.cs_prev_plus);
      clear_row(regs_.cs_prev_minus);
      clear_row(regs_.cs_epoch);
      clear_one(regs_.ch_reported);
      break;
    case SketchKind::kInvertible:
      clear_row(regs_.inv_count);
      clear_row(regs_.inv_keysum);
      clear_row(regs_.inv_checksum);
      break;
  }
}

}  // namespace sketch

// Sketch auto-sizing: inverting the epsilon-delta guarantees.
//
// docs/SKETCH.md states the forward bounds this module inverts:
//
//   count-min:    excess <= 2N/w with prob >= 1 - 2^-d  ->  w ~ 2/eps
//   count-sketch: |err| <= 2*sqrt(N2)/sqrt(w) w.h.p.    ->  w ~ 4/eps^2
//
// Given a caller's (eps, delta) target and the verifier's observation
// budget N (AnalysisOptions::max_observations, the same N the precision
// pass proves its bounds under), suggest_sizing returns power-of-two
// widths/depths that ACHIEVE the target, re-checks the achieved bounds
// (never trust the inversion: report eps'/delta' actually delivered), and
// flags infeasible requests — a width past hashing.hpp's kMaxWidth cannot
// be indexed by the column-shift hash layout.
#pragma once

#include <cstdint>
#include <string>

namespace sketch {

struct SketchSizing {
  double eps = 0;    ///< requested relative error (of N)
  double delta = 0;  ///< requested failure probability
  std::uint64_t observations = 0;

  // Count-min suggestion.
  std::uint64_t cm_width = 0;
  std::uint64_t cm_depth = 0;
  std::uint64_t cm_memory_bytes = 0;
  double cm_achieved_eps = 0;    ///< 2/width (re-checked, <= eps if feasible)
  double cm_achieved_delta = 0;  ///< 2^-depth
  std::uint64_t cm_max_excess = 0;  ///< ceil(2N/width) in counts

  // Count-sketch suggestion (unbiased; width from the variance bound).
  std::uint64_t cs_width = 0;
  std::uint64_t cs_depth = 0;
  std::uint64_t cs_memory_bytes = 0;
  double cs_achieved_eps = 0;  ///< 2/sqrt(width)

  bool feasible = false;
  std::string note;  ///< human-readable reason when infeasible
};

/// Computes the suggestion.  eps and delta must be in (0, 1); observations
/// is the stream-length budget the bounds are stated against.
[[nodiscard]] SketchSizing suggest_sizing(double eps, double delta,
                                          std::uint64_t observations);

}  // namespace sketch

// P4-form sketch update programs (the data-plane twins of count_min.hpp,
// count_sketch.hpp and invertible.hpp).
//
// Layout discipline, driven by the static verifier and the hardware rules
// it encodes (src/analysis/):
//   * one register array per sketch ROW — each array is then touched by
//     exactly one index expression per packet (no S4-HAZ-001 multi-index
//     access), matching one stateful ALU per stage on real targets;
//   * every array load precedes every array store (single RMW per array);
//   * NO kMul anywhere: row offsets are per-row arrays, probe columns are
//     disjoint bit-windows of h1 (shr + band), so all three programs verify
//     clean under the hardware-nomul profile;
//   * count-sketch cells are (plus, minus) monotone pairs and comparisons
//     run over kSignBias-offset values, so subtraction stays provably
//     wrap-free where it matters (hashing.hpp).
#pragma once

#include <array>
#include <cstdint>

#include "p4sim/action.hpp"
#include "sketch/hashing.hpp"

namespace sketch {

// Digest vocabulary of the sketch apps — disjoint from stat4p4's ids 1..6
// so a FleetCorrelator / digest sink can tell the sources apart.
inline constexpr std::uint32_t kDigestHeavyHitter = 7;
inline constexpr std::uint32_t kDigestHeavyChanger = 8;
inline constexpr std::uint32_t kDigestSketchEpoch = 9;

/// Action-data words of the sketch binding table entries.
enum SketchActionData : std::size_t {
  kSkAdShift = 0,      ///< key = (ipv4.dst >> shift) & mask
  kSkAdMask = 1,
  kSkAdThreshold = 2,  ///< heavy-hitter / heavy-changer threshold; 0 = off
  kSkAdWordCount = 3,
};

/// Build-time geometry shared by all three program forms.
struct SketchConfig {
  std::uint64_t width = 256;  ///< buckets per row; must be a power of two
  unsigned epoch_shift = 8;   ///< epoch length = 2^epoch_shift packets
};

/// Register ids of one sketch app instance (only the arrays of the app's
/// kind are declared; the rest stay 0 and unused).
struct SketchRegisters {
  // Count-min rows + the heavy-hitter reported bitmap (row-0 indexed).
  std::array<p4sim::RegisterId, kSketchDepth> cm_row{};
  p4sim::RegisterId hh_seen = 0;
  // Count-sketch current/previous epoch banks, per-bucket epoch stamps and
  // the heavy-changer reported-epoch array (row-0 indexed).
  std::array<p4sim::RegisterId, kSketchDepth> cs_cur_plus{};
  std::array<p4sim::RegisterId, kSketchDepth> cs_cur_minus{};
  std::array<p4sim::RegisterId, kSketchDepth> cs_prev_plus{};
  std::array<p4sim::RegisterId, kSketchDepth> cs_prev_minus{};
  std::array<p4sim::RegisterId, kSketchDepth> cs_epoch{};
  p4sim::RegisterId ch_reported = 0;
  // Invertible-sketch bucket planes.
  std::array<p4sim::RegisterId, kSketchDepth> inv_count{};
  std::array<p4sim::RegisterId, kSketchDepth> inv_keysum{};
  std::array<p4sim::RegisterId, kSketchDepth> inv_checksum{};
  // Packet counter driving epochs (size-1 array), all kinds.
  p4sim::RegisterId total = 0;
};

/// Count-min update + heavy-hitter threshold digest (kDigestHeavyHitter,
/// payload {key, estimate, total}); the hh_seen bitmap suppresses repeat
/// digests for the same row-0 bucket until the controller clears it.
[[nodiscard]] p4sim::Program build_count_min_update(
    const SketchRegisters& regs, const SketchConfig& cfg,
    p4sim::FieldRef source);

/// Count-sketch update over lazily rotated epoch banks + heavy-changer
/// digest (kDigestHeavyChanger, payload {key, |delta| estimate, epoch}).
[[nodiscard]] p4sim::Program build_count_sketch_update(
    const SketchRegisters& regs, const SketchConfig& cfg,
    p4sim::FieldRef source);

/// Invertible-sketch update + once-per-epoch tick digest
/// (kDigestSketchEpoch, payload {epoch, total, 0}) that tells the
/// controller a snapshot window closed.
[[nodiscard]] p4sim::Program build_invertible_update(
    const SketchRegisters& regs, const SketchConfig& cfg,
    p4sim::FieldRef source);

}  // namespace sketch

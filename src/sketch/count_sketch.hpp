// Count-sketch (Charikar, Chen & Farach-Colton): like count-min, but each
// key is also assigned a random sign per row and the query is the MEDIAN of
// the signed per-row estimates — collisions cancel in expectation, so the
// estimator is unbiased (count-min is one-sidedly biased upward).
//
// P4 twist: switch registers are unsigned, so each cell is stored as a
// (plus, minus) pair of monotone counters and the signed cell value is
// plus - minus, compared in the data plane after adding kSignBias (see
// hashing.hpp).  The C++ engine mirrors that representation exactly, which
// is what makes the register-image differential test bit-exact.
//
// merge(a, b) adds the plus and minus planes elementwise and equals
// sketching the concatenated stream.
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/hashing.hpp"

namespace sketch {

class CountSketch {
 public:
  /// `width` must be a power of two.
  CountSketch(unsigned depth, std::uint64_t width);

  void update(std::uint64_t key, std::uint64_t count = 1);

  /// Median of the signed per-row estimates (can be negative under
  /// collision noise — the unbiasedness property needs the sign).
  [[nodiscard]] std::int64_t query(std::uint64_t key) const;

  void merge(const CountSketch& other);

  [[nodiscard]] unsigned depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint64_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  [[nodiscard]] std::uint64_t plus(unsigned row, std::uint64_t col) const {
    return plus_[row * width_ + col];
  }
  [[nodiscard]] std::uint64_t minus(unsigned row, std::uint64_t col) const {
    return minus_[row * width_ + col];
  }
  [[nodiscard]] std::uint64_t& plus(unsigned row, std::uint64_t col) {
    return plus_[row * width_ + col];
  }
  [[nodiscard]] std::uint64_t& minus(unsigned row, std::uint64_t col) {
    return minus_[row * width_ + col];
  }

 private:
  unsigned depth_;
  std::uint64_t width_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> plus_;
  std::vector<std::uint64_t> minus_;
};

}  // namespace sketch

#include "sketch/invertible.hpp"

#include <algorithm>
#include <stdexcept>

namespace sketch {

InvertibleSketch::InvertibleSketch(unsigned depth, std::uint64_t width)
    : depth_(depth), width_(width) {
  if (depth == 0) throw std::invalid_argument("sketch: depth must be > 0");
  if (width == 0 || (width & (width - 1)) != 0 || width > kMaxWidth) {
    throw std::invalid_argument(
        "sketch: width must be a power of two <= 2^20");
  }
  count_.assign(depth_ * width_, 0);
  keysum_.assign(depth_ * width_, 0);
  checksum_.assign(depth_ * width_, 0);
}

void InvertibleSketch::update(std::uint64_t key, std::uint64_t count) {
  const std::uint64_t mix = checksum_mix(key);
  for (unsigned r = 0; r < depth_; ++r) {
    const std::uint64_t i = r * width_ + column(key, r, width_);
    count_[i] += count;
    keysum_[i] += key * count;
    checksum_[i] += mix * count;
  }
  total_ += count;
}

std::uint64_t InvertibleSketch::query(std::uint64_t key) const {
  std::uint64_t best = count_[column(key, 0, width_)];
  for (unsigned r = 1; r < depth_; ++r) {
    best = std::min(best, count_[r * width_ + column(key, r, width_)]);
  }
  return best;
}

void InvertibleSketch::merge(const InvertibleSketch& other) {
  if (other.depth_ != depth_ || other.width_ != width_) {
    throw std::invalid_argument("sketch: merge needs identical geometry");
  }
  for (std::size_t i = 0; i < count_.size(); ++i) {
    count_[i] += other.count_[i];
    keysum_[i] += other.keysum_[i];
    checksum_[i] += other.checksum_[i];
  }
  total_ += other.total_;
}

DecodeResult InvertibleSketch::decode() const {
  InvertibleSketch work = *this;
  DecodeResult result;

  // A bucket holding `count` copies of exactly one key satisfies all three
  // purity conditions; collisions can fake divisibility but essentially
  // never the checksum AND the column recomputation together.
  const auto try_peel = [&](unsigned r, std::uint64_t c) -> bool {
    const std::uint64_t i = r * width_ + c;
    const std::uint64_t n = work.count_[i];
    if (n == 0) return false;
    if (work.keysum_[i] % n != 0) return false;
    const std::uint64_t key = work.keysum_[i] / n;
    if (column(key, r, width_) != c) return false;
    if (work.checksum_[i] != checksum_mix(key) * n) return false;
    // Subtract the decoded flow from every row it maps to.
    for (unsigned rr = 0; rr < depth_; ++rr) {
      const std::uint64_t j = rr * width_ + column(key, rr, width_);
      work.count_[j] -= n;
      work.keysum_[j] -= key * n;
      work.checksum_[j] -= checksum_mix(key) * n;
    }
    result.flows.push_back({key, n});
    return true;
  };

  // Repeated sweeps until a full pass peels nothing.  A legitimate decode
  // can name at most depth*width distinct flows; the cap also bounds the
  // pathological case where a collision-faked peel corrupts `work` (the
  // purity test is probabilistic, not cryptographic).
  const std::size_t max_flows = depth_ * width_;
  bool progressed = true;
  while (progressed && result.flows.size() < max_flows) {
    progressed = false;
    for (unsigned r = 0; r < depth_; ++r) {
      for (std::uint64_t c = 0; c < width_; ++c) {
        progressed = try_peel(r, c) || progressed;
        if (result.flows.size() >= max_flows) break;
      }
      if (result.flows.size() >= max_flows) break;
    }
  }

  result.complete =
      std::all_of(work.count_.begin(), work.count_.end(),
                  [](std::uint64_t v) { return v == 0; }) &&
      std::all_of(work.keysum_.begin(), work.keysum_.end(),
                  [](std::uint64_t v) { return v == 0; });
  std::sort(result.flows.begin(), result.flows.end(),
            [](const DecodedFlow& a, const DecodedFlow& b) {
              return a.key < b.key;
            });
  return result;
}

}  // namespace sketch

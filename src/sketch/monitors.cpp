#include "sketch/monitors.hpp"

#include <algorithm>

namespace sketch {

namespace {

p4sim::Digest make_digest(std::uint32_t id, std::uint64_t w0, std::uint64_t w1,
                          std::uint64_t w2, stat4::TimeNs time) {
  p4sim::Digest d;
  d.id = id;
  d.payload = {w0, w1, w2};
  d.time = time;
  return d;
}

}  // namespace

HeavyHitterMonitor::HeavyHitterMonitor(SketchConfig cfg, KeyExtract extract,
                                       std::uint64_t threshold)
    : cfg_(cfg),
      extract_(extract),
      threshold_(threshold),
      cm_(kSketchDepth, cfg.width),
      reported_(cfg.width, 0) {}

std::optional<p4sim::Digest> HeavyHitterMonitor::observe(std::uint64_t raw,
                                                         stat4::TimeNs time) {
  const std::uint64_t key = extract_(raw);
  const std::uint64_t col0 = column(key, 0, cfg_.width);
  const std::uint64_t est_new = cm_.query(key) + 1;
  cm_.update(key);
  const std::uint64_t tot_new = ++total_;
  const bool fire = threshold_ > 0 && est_new >= threshold_ &&
                    reported_[col0] == 0;
  if (!fire) return std::nullopt;
  reported_[col0] = 1;
  return make_digest(kDigestHeavyHitter, key, est_new, tot_new, time);
}

HeavyChangerMonitor::HeavyChangerMonitor(SketchConfig cfg, KeyExtract extract,
                                         std::uint64_t threshold)
    : cfg_(cfg),
      extract_(extract),
      threshold_(threshold),
      cur_(kSketchDepth, cfg.width),
      prev_(kSketchDepth, cfg.width),
      epoch_(kSketchDepth * cfg.width, 0),
      reported_(cfg.width, 0) {}

std::optional<p4sim::Digest> HeavyChangerMonitor::observe(std::uint64_t raw,
                                                          stat4::TimeNs time) {
  const std::uint64_t key = extract_(raw);
  const std::uint64_t e = total_ >> cfg_.epoch_shift;  // BEFORE increment
  ++total_;

  std::uint64_t diff[kSketchDepth];
  for (unsigned r = 0; r < kSketchDepth; ++r) {
    const std::uint64_t col = column(key, r, cfg_.width);
    const bool sgn = sign_bit(key, r);
    std::uint64_t& ep = epoch_[r * cfg_.width + col];
    std::uint64_t cp = cur_.plus(r, col);
    std::uint64_t cn = cur_.minus(r, col);
    std::uint64_t& pp = prev_.plus(r, col);
    std::uint64_t& pn = prev_.minus(r, col);
    if (ep != e) {  // lazy bank rotation, exactly like the p4 form
      pp = cp;
      pn = cn;
      cp = 0;
      cn = 0;
      ep = e;
    }
    cp += sgn ? 1 : 0;
    cn += sgn ? 0 : 1;
    cur_.plus(r, col) = cp;
    cur_.minus(r, col) = cn;
    // Bias-offset unsigned arithmetic, same word ops as the switch.
    const std::uint64_t cur_e =
        sgn ? kSignBias + cp - cn : kSignBias + cn - cp;
    const std::uint64_t prev_e =
        sgn ? kSignBias + pp - pn : kSignBias + pn - pp;
    diff[r] = cur_e >= prev_e ? cur_e - prev_e : prev_e - cur_e;
  }
  // median3 = max(min(a,b), min(max(a,b), c))
  const std::uint64_t minab = std::min(diff[0], diff[1]);
  const std::uint64_t maxab = std::max(diff[0], diff[1]);
  const std::uint64_t med = std::max(minab, std::min(maxab, diff[2]));

  const std::uint64_t col0 = column(key, 0, cfg_.width);
  const bool fire = threshold_ > 0 && e >= 1 && med > threshold_ &&
                    reported_[col0] != e + 1;
  if (!fire) return std::nullopt;
  reported_[col0] = e + 1;
  return make_digest(kDigestHeavyChanger, key, med, e, time);
}

NetwideMonitor::NetwideMonitor(SketchConfig cfg, KeyExtract extract)
    : cfg_(cfg), extract_(extract), inv_(kSketchDepth, cfg.width) {}

std::optional<p4sim::Digest> NetwideMonitor::observe(std::uint64_t raw,
                                                     stat4::TimeNs time) {
  const std::uint64_t key = extract_(raw);
  inv_.update(key);
  const std::uint64_t tot_new = ++total_;
  const std::uint64_t emask = (std::uint64_t{1} << cfg_.epoch_shift) - 1;
  if ((tot_new & emask) != 0) return std::nullopt;
  return make_digest(kDigestSketchEpoch, tot_new >> cfg_.epoch_shift, tot_new,
                     0, time);
}

}  // namespace sketch

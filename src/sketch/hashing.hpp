// Shared hash plumbing for the sketch layer.
//
// Every sketch exists twice — as a C++ engine (count_min.hpp, ...) and as a
// p4sim action program (programs.cpp) — and the two must agree bit for bit.
// Both sides therefore derive all randomness from the SAME two hash externs
// the sparse tracker already shares with the switch (stat4::sparse_hash1/2,
// i.e. the kHash1/kHash2 opcodes):
//
//   column(key, r)  = (h1(key) >> 20r) & (width - 1)
//   sign(key, r)    = bit r of h2(h1(key))          (count-sketch rows)
//   checksum(key)   = h1(key ^ salt) & 0xFFFF       (invertible buckets)
//
// Each row reads a DISJOINT 20-bit window of h1, so the rows behave as
// independent hash functions: two keys collide in every row only when all
// three windows agree (~2^-3log2(w) per pair).  That independence is what
// invertible-sketch peeling needs — the double-hashing alternative
// (h1 + r*h2) correlates rows, and a single pair with h1 AND h2 congruent
// mod width collides in ALL rows and permanently wedges the decode (a real
// failure this scheme replaced).  Shifts and masks only: no modulo, no
// multiply, P4-safe.  The checksum is masked to 16 bits so a bucket
// accumulating one mix per packet stays far below 2^64 for any observation
// bound the static verifier is asked to prove.
#pragma once

#include <cstdint>

#include "stat4/sparse_freq.hpp"

namespace sketch {

/// Fixed row count of every p4-resident sketch (one register array — one
/// pipeline stateful ALU — per row; see docs/SKETCH.md).
inline constexpr unsigned kSketchDepth = 3;

/// Salt decorrelating the invertible sketch's checksum from its column hash.
inline constexpr std::uint64_t kChecksumSalt = 0x5374617434536b21ull;

/// Checksum width: 16 bits keeps `sum of mixes` <= N * 2^16 provably small.
inline constexpr std::uint64_t kChecksumMask = 0xFFFF;

/// Bias making count-sketch per-row estimates comparable with UNSIGNED
/// arithmetic: est = kSignBias + plus - minus never wraps for any bucket
/// holding fewer than 2^32 observations, so the data plane can order
/// estimates with plain unsigned compares.
inline constexpr std::uint64_t kSignBias = std::uint64_t{1} << 32;

/// Bits of h1 each row's column window advances by; bounds width at 2^20.
inline constexpr unsigned kColumnShift = 20;

/// Widest sketch row the disjoint-window scheme supports (2^20 buckets).
inline constexpr std::uint64_t kMaxWidth = std::uint64_t{1} << kColumnShift;

/// Column of `key` in row `r` of a width-`width` (power of two) sketch:
/// row r reads its own 20-bit window of h1, making rows independent.
[[nodiscard]] inline std::uint64_t column(std::uint64_t key, unsigned r,
                                          std::uint64_t width) {
  return (stat4::sparse_hash1(key) >> (r * kColumnShift)) & (width - 1);
}

/// 64 independent count-sketch sign bits for `key` (bit r = row r's sign).
[[nodiscard]] inline std::uint64_t sign_word(std::uint64_t key) {
  return stat4::sparse_hash2(stat4::sparse_hash1(key));
}

/// Count-sketch sign of `key` in row `r`: true = +1 cell, false = -1 cell.
[[nodiscard]] inline bool sign_bit(std::uint64_t key, unsigned r) {
  return ((sign_word(key) >> r) & 1) != 0;
}

/// 16-bit purity checksum of `key` for invertible-sketch buckets.
[[nodiscard]] inline std::uint64_t checksum_mix(std::uint64_t key) {
  return stat4::sparse_hash1(key ^ kChecksumSalt) & kChecksumMask;
}

}  // namespace sketch

// Assembled sketch switch applications.
//
// A SketchApp is a P4Switch carrying ONE sketch kind plus the standard
// forwarding plumbing:
//
//   stage 1: ipv4_forward   (LPM dst -> egress port, default drop)
//   stage 2: sketch_block   (EXACT dst -> drop; the drill-down mitigation
//                            table the controller fills with decoded heavy
//                            keys — a later stage wins, so a block beats
//                            the forwarding decision)
//   stage 3: sketch_binding (LPM dst -> the kind's update action)
//
// The catalog names (analysis/catalog.cpp) build one app per kind:
// "sketch_hh" (count-min + heavy-hitter digests), "sketch_changer"
// (count-sketch across interval windows + heavy-changer digests) and
// "sketch_netwide" (invertible + epoch ticks, aggregated controller-side
// by control::SketchAggregator).
#pragma once

#include <cstdint>

#include "p4sim/p4sim.hpp"
#include "sketch/count_min.hpp"
#include "sketch/count_sketch.hpp"
#include "sketch/invertible.hpp"
#include "sketch/programs.hpp"

namespace sketch {

enum class SketchKind : std::uint8_t {
  kCountMin,
  kCountSketch,
  kInvertible,
};

class SketchApp {
 public:
  explicit SketchApp(SketchKind kind, SketchConfig cfg = {},
                     p4sim::AluProfile profile = p4sim::AluProfile::bmv2());

  // ---- controller operations ---------------------------------------------
  /// Forward `prefix/len` out of `port`.
  p4sim::EntryHandle install_forward(std::uint32_t prefix, std::uint8_t len,
                                     p4sim::PortId port);

  /// Bind matching traffic to the sketch: key = (ipv4.dst >> shift) & mask;
  /// `threshold` arms the heavy-hitter / heavy-changer digest (0 = track
  /// only, never alert — the invertible kind ignores it).
  p4sim::EntryHandle install_sketch(std::uint32_t prefix, std::uint8_t len,
                                    std::uint8_t shift, std::uint64_t mask,
                                    std::uint64_t threshold);

  /// Drop packets whose ipv4.dst equals `key` exactly — the mitigation the
  /// network-wide aggregator installs for decoded heavy flows (assumes the
  /// binding's identity extractor: shift 0, full mask).
  p4sim::EntryHandle install_drop_exact(std::uint32_t key);

  /// Clear a heavy-hitter suppression latch (count-min kind) or the whole
  /// reported-epoch array (count-sketch kind) — controller acknowledgment.
  void rearm();

  // ---- snapshots (controller must be quiesced w.r.t. the data path) ------
  /// Register image of the resident sketch as a C++ engine object.
  [[nodiscard]] CountMinSketch snapshot_count_min() const;
  [[nodiscard]] CountSketch snapshot_count_sketch_current() const;
  [[nodiscard]] CountSketch snapshot_count_sketch_previous() const;
  [[nodiscard]] InvertibleSketch snapshot_invertible() const;

  /// Zero the sketch bucket arrays (NOT the packet counter driving epochs)
  /// — the per-epoch reset the network-wide aggregator applies after a
  /// snapshot, making each epoch's sketch a delta.
  void clear_sketch();

  // ---- accessors ----------------------------------------------------------
  [[nodiscard]] p4sim::P4Switch& sw() noexcept { return sw_; }
  [[nodiscard]] const p4sim::P4Switch& sw() const noexcept { return sw_; }
  [[nodiscard]] SketchKind kind() const noexcept { return kind_; }
  [[nodiscard]] const SketchConfig& config() const noexcept { return cfg_; }
  [[nodiscard]] const SketchRegisters& regs() const noexcept { return regs_; }
  [[nodiscard]] p4sim::TableId block_table() const noexcept {
    return block_table_;
  }

 private:
  void require_kind(SketchKind kind, const char* what) const;

  SketchKind kind_;
  SketchConfig cfg_;
  p4sim::P4Switch sw_;
  SketchRegisters regs_;
  p4sim::ActionId drop_action_ = 0;
  p4sim::ActionId noop_action_ = 0;
  p4sim::ActionId forward_action_ = 0;
  p4sim::ActionId update_action_ = 0;
  p4sim::TableId forward_table_ = 0;
  p4sim::TableId block_table_ = 0;
  p4sim::TableId binding_table_ = 0;
};

}  // namespace sketch

// Count-min sketch (Cormode & Muthukrishnan): d x w counter matrix,
// update adds to one counter per row, query takes the row minimum.
//
// Guarantees (tests/sketch_test.cpp proves both on real streams):
//   * overestimate-only:  query(k) >= true_count(k), always;
//   * (eps, delta) bound: query(k) <= true_count(k) + eps*N with probability
//     at least 1 - delta, for eps = e/width and delta = e^-depth, N = total
//     stream weight.
// Memory: depth * width 64-bit counters — sizing is width ~ e/eps,
// depth ~ ln(1/delta), independent of the key-domain size.
//
// merge(a, b) is elementwise addition and equals sketching the concatenated
// stream, which is what the controller-side network-wide aggregation relies
// on (docs/SKETCH.md).
#pragma once

#include <cstdint>
#include <vector>

#include "sketch/hashing.hpp"

namespace sketch {

class CountMinSketch {
 public:
  /// `width` must be a power of two (column masking, like the P4 form).
  CountMinSketch(unsigned depth, std::uint64_t width);

  void update(std::uint64_t key, std::uint64_t count = 1);
  [[nodiscard]] std::uint64_t query(std::uint64_t key) const;

  /// Elementwise sum; `other` must have identical geometry.
  void merge(const CountMinSketch& other);

  [[nodiscard]] unsigned depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint64_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  /// Direct cell access (row-major), used by the register-image
  /// differential tests and the snapshot loaders.
  [[nodiscard]] std::uint64_t cell(unsigned row, std::uint64_t col) const {
    return cells_[row * width_ + col];
  }
  [[nodiscard]] std::uint64_t& cell(unsigned row, std::uint64_t col) {
    return cells_[row * width_ + col];
  }

 private:
  unsigned depth_;
  std::uint64_t width_;
  std::uint64_t total_ = 0;  ///< stream weight seen (merged like the cells)
  std::vector<std::uint64_t> cells_;
};

}  // namespace sketch

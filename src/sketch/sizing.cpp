#include "sketch/sizing.hpp"

#include <cmath>

#include "sketch/hashing.hpp"

namespace sketch {

namespace {

/// Smallest power of two >= x (x expressed as a double from the inversion;
/// values below 1 round up to 1).
std::uint64_t ceil_pow2(double x) {
  std::uint64_t w = 1;
  while (static_cast<double>(w) < x && w < (std::uint64_t{1} << 62)) w <<= 1;
  return w;
}

}  // namespace

SketchSizing suggest_sizing(double eps, double delta,
                            std::uint64_t observations) {
  SketchSizing s;
  s.eps = eps;
  s.delta = delta;
  s.observations = observations;

  if (!(eps > 0.0) || !(eps < 1.0) || !(delta > 0.0) || !(delta < 1.0)) {
    s.note = "eps and delta must lie in (0, 1)";
    return s;
  }

  // Count-min: excess <= 2N/w w.p. >= 1 - 2^-d (docs/SKETCH.md), so
  // w = ceil_pow2(2/eps) and d = ceil(log2(1/delta)).
  s.cm_width = ceil_pow2(2.0 / eps);
  s.cm_depth = static_cast<std::uint64_t>(std::ceil(std::log2(1.0 / delta)));
  if (s.cm_depth == 0) s.cm_depth = 1;

  // Count-sketch: |err| <= 2*sqrt(N2)/sqrt(w) <= 2N/sqrt(w) w.h.p., so
  // w = ceil_pow2(4/eps^2); median-of-depth drives the tail like CM.
  s.cs_width = ceil_pow2(4.0 / (eps * eps));
  s.cs_depth = s.cm_depth;

  if (s.cm_width > kMaxWidth || s.cs_width > kMaxWidth) {
    s.note = "required width exceeds the hash layout cap (kMaxWidth = 2^" +
             std::to_string(kColumnShift) + "); relax eps";
    return s;
  }
  // The column-shift hash yields at most 64/kColumnShift independent rows
  // per 64-bit hash; the engines chain two hashes, bounding usable depth.
  constexpr std::uint64_t kMaxDepth = 2 * (64 / kColumnShift);
  if (s.cm_depth > kMaxDepth) {
    s.note = "required depth " + std::to_string(s.cm_depth) +
             " exceeds the " + std::to_string(kMaxDepth) +
             " independent hash rows available; relax delta";
    return s;
  }

  // Re-check: never report a configuration whose ACHIEVED bounds miss the
  // request (the power-of-two rounding can only tighten, but verify).
  s.cm_achieved_eps = 2.0 / static_cast<double>(s.cm_width);
  s.cm_achieved_delta = std::pow(2.0, -static_cast<double>(s.cm_depth));
  s.cs_achieved_eps = 2.0 / std::sqrt(static_cast<double>(s.cs_width));
  if (s.cm_achieved_eps > eps || s.cm_achieved_delta > delta ||
      s.cs_achieved_eps > eps) {
    s.note = "internal sizing re-check failed";
    return s;
  }

  const double excess = std::ceil(
      2.0 * static_cast<double>(observations) /
      static_cast<double>(s.cm_width));
  s.cm_max_excess = static_cast<std::uint64_t>(excess);
  s.cm_memory_bytes = s.cm_depth * s.cm_width * 8;
  s.cs_memory_bytes = s.cs_depth * s.cs_width * 8;
  s.feasible = true;
  return s;
}

}  // namespace sketch

// C++ mirrors of the three sketch APPLICATIONS (not just the sketches):
// each monitor replicates its p4 update program's full per-packet effect —
// bucket updates, epoch rotation, digest arming and suppression — over the
// plain C++ engines, word for word.
//
// tests/sketch_differential_test.cpp replays identical packet streams
// through a SketchApp switch and its monitor and asserts bit-exact digests
// AND bit-exact register images, which is what licenses using the cheap
// C++ forms as ground truth for the p4 forms everywhere else.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "p4sim/action.hpp"
#include "sketch/count_min.hpp"
#include "sketch/count_sketch.hpp"
#include "sketch/invertible.hpp"
#include "sketch/programs.hpp"

namespace sketch {

/// Key extraction shared by all monitors: key = (raw >> shift) & mask,
/// matching the binding entry's action data.
struct KeyExtract {
  std::uint8_t shift = 0;
  std::uint64_t mask = ~std::uint64_t{0};

  [[nodiscard]] std::uint64_t operator()(std::uint64_t raw) const {
    return (raw >> shift) & mask;
  }
};

/// Mirror of build_count_min_update: count-min + threshold digest with the
/// row-0 reported bitmap.
class HeavyHitterMonitor {
 public:
  HeavyHitterMonitor(SketchConfig cfg, KeyExtract extract,
                     std::uint64_t threshold);

  /// One matching packet; returns the digest the switch would emit, if any.
  std::optional<p4sim::Digest> observe(std::uint64_t raw, stat4::TimeNs time);

  [[nodiscard]] const CountMinSketch& sketch() const noexcept { return cm_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }
  [[nodiscard]] const std::vector<std::uint64_t>& reported() const noexcept {
    return reported_;
  }

 private:
  SketchConfig cfg_;
  KeyExtract extract_;
  std::uint64_t threshold_;
  CountMinSketch cm_;
  std::vector<std::uint64_t> reported_;
  std::uint64_t total_ = 0;
};

/// Mirror of build_count_sketch_update: count-sketch over lazily rotated
/// epoch banks + heavy-changer digest.
class HeavyChangerMonitor {
 public:
  HeavyChangerMonitor(SketchConfig cfg, KeyExtract extract,
                      std::uint64_t threshold);

  std::optional<p4sim::Digest> observe(std::uint64_t raw, stat4::TimeNs time);

  [[nodiscard]] const CountSketch& current() const noexcept { return cur_; }
  [[nodiscard]] const CountSketch& previous() const noexcept { return prev_; }
  [[nodiscard]] std::uint64_t epoch_stamp(unsigned row,
                                          std::uint64_t col) const {
    return epoch_[row * cfg_.width + col];
  }
  [[nodiscard]] std::uint64_t reported_epoch(std::uint64_t col) const {
    return reported_[col];
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  SketchConfig cfg_;
  KeyExtract extract_;
  std::uint64_t threshold_;
  CountSketch cur_;
  CountSketch prev_;
  std::vector<std::uint64_t> epoch_;
  std::vector<std::uint64_t> reported_;
  std::uint64_t total_ = 0;
};

/// Mirror of build_invertible_update: invertible sketch + epoch ticks.
class NetwideMonitor {
 public:
  NetwideMonitor(SketchConfig cfg, KeyExtract extract);

  std::optional<p4sim::Digest> observe(std::uint64_t raw, stat4::TimeNs time);

  [[nodiscard]] const InvertibleSketch& sketch() const noexcept {
    return inv_;
  }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

 private:
  SketchConfig cfg_;
  KeyExtract extract_;
  InvertibleSketch inv_;
  std::uint64_t total_ = 0;
};

}  // namespace sketch

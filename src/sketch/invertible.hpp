// Invertible (reversible) sketch, IBLT-style: each of d rows holds w
// buckets of (count, keysum, checksum).  An update adds (1, key,
// checksum_mix(key)) to one bucket per row; because every component is a
// plain sum, two sketches merge by elementwise addition — and a DIFFERENCE
// of two epochs' sketches is itself a sketch of the delta stream.
//
// decode() inverts the structure by peeling: a bucket is PURE when its
// contents are exactly `count` copies of one key (keysum divisible by
// count, the quotient rehashes to this bucket, and checksum ==
// count * checksum_mix(key)); subtracting a decoded key from its other
// rows exposes new pure buckets until either the sketch drains (complete
// decode) or no pure bucket remains (load above the decodable threshold —
// tests/sketch_test.cpp probes both regimes).
//
// This is the controller-side half of network-wide heavy-flow detection:
// per-switch snapshots merge into one fleet sketch whose decode names the
// heavy keys — no per-flow state anywhere (Tang et al., PAPERS.md).
#pragma once

#include <cstdint>
#include <utility>
#include <vector>

#include "sketch/hashing.hpp"

namespace sketch {

struct DecodedFlow {
  std::uint64_t key = 0;
  std::uint64_t count = 0;
};

struct DecodeResult {
  std::vector<DecodedFlow> flows;  ///< sorted by key (deterministic order)
  bool complete = false;           ///< true iff the sketch drained to zero
};

class InvertibleSketch {
 public:
  /// `width` must be a power of two.
  InvertibleSketch(unsigned depth, std::uint64_t width);

  void update(std::uint64_t key, std::uint64_t count = 1);

  /// Count-min-style upper bound read (min over rows of bucket counts) —
  /// cheap point query without decoding.
  [[nodiscard]] std::uint64_t query(std::uint64_t key) const;

  void merge(const InvertibleSketch& other);

  /// Peels the sketch (non-destructively) into its flow list.
  [[nodiscard]] DecodeResult decode() const;

  [[nodiscard]] unsigned depth() const noexcept { return depth_; }
  [[nodiscard]] std::uint64_t width() const noexcept { return width_; }
  [[nodiscard]] std::uint64_t total() const noexcept { return total_; }

  [[nodiscard]] std::uint64_t count(unsigned row, std::uint64_t col) const {
    return count_[row * width_ + col];
  }
  [[nodiscard]] std::uint64_t keysum(unsigned row, std::uint64_t col) const {
    return keysum_[row * width_ + col];
  }
  [[nodiscard]] std::uint64_t checksum(unsigned row, std::uint64_t col) const {
    return checksum_[row * width_ + col];
  }
  [[nodiscard]] std::uint64_t& count(unsigned row, std::uint64_t col) {
    return count_[row * width_ + col];
  }
  [[nodiscard]] std::uint64_t& keysum(unsigned row, std::uint64_t col) {
    return keysum_[row * width_ + col];
  }
  [[nodiscard]] std::uint64_t& checksum(unsigned row, std::uint64_t col) {
    return checksum_[row * width_ + col];
  }

 private:
  unsigned depth_;
  std::uint64_t width_;
  std::uint64_t total_ = 0;
  std::vector<std::uint64_t> count_;
  std::vector<std::uint64_t> keysum_;
  std::vector<std::uint64_t> checksum_;
};

}  // namespace sketch

#include "sketch/count_min.hpp"

#include <algorithm>
#include <stdexcept>

namespace sketch {

namespace {

void require_power_of_two(std::uint64_t width) {
  if (width == 0 || (width & (width - 1)) != 0 || width > kMaxWidth) {
    throw std::invalid_argument(
        "sketch: width must be a power of two <= 2^20");
  }
}

}  // namespace

CountMinSketch::CountMinSketch(unsigned depth, std::uint64_t width)
    : depth_(depth), width_(width) {
  if (depth == 0) throw std::invalid_argument("sketch: depth must be > 0");
  require_power_of_two(width);
  cells_.assign(depth_ * width_, 0);
}

void CountMinSketch::update(std::uint64_t key, std::uint64_t count) {
  for (unsigned r = 0; r < depth_; ++r) {
    cells_[r * width_ + column(key, r, width_)] += count;
  }
  total_ += count;
}

std::uint64_t CountMinSketch::query(std::uint64_t key) const {
  std::uint64_t best = cells_[column(key, 0, width_)];
  for (unsigned r = 1; r < depth_; ++r) {
    best = std::min(best, cells_[r * width_ + column(key, r, width_)]);
  }
  return best;
}

void CountMinSketch::merge(const CountMinSketch& other) {
  if (other.depth_ != depth_ || other.width_ != width_) {
    throw std::invalid_argument("sketch: merge needs identical geometry");
  }
  for (std::size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  total_ += other.total_;
}

}  // namespace sketch

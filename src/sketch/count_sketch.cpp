#include "sketch/count_sketch.hpp"

#include <algorithm>
#include <stdexcept>

namespace sketch {

CountSketch::CountSketch(unsigned depth, std::uint64_t width)
    : depth_(depth), width_(width) {
  if (depth == 0 || depth > 64) {
    throw std::invalid_argument("sketch: depth must be in [1, 64]");
  }
  if (width == 0 || (width & (width - 1)) != 0 || width > kMaxWidth) {
    throw std::invalid_argument(
        "sketch: width must be a power of two <= 2^20");
  }
  plus_.assign(depth_ * width_, 0);
  minus_.assign(depth_ * width_, 0);
}

void CountSketch::update(std::uint64_t key, std::uint64_t count) {
  for (unsigned r = 0; r < depth_; ++r) {
    const std::uint64_t i = r * width_ + column(key, r, width_);
    if (sign_bit(key, r)) {
      plus_[i] += count;
    } else {
      minus_[i] += count;
    }
  }
  total_ += count;
}

std::int64_t CountSketch::query(std::uint64_t key) const {
  std::vector<std::int64_t> est;
  est.reserve(depth_);
  for (unsigned r = 0; r < depth_; ++r) {
    const std::uint64_t i = r * width_ + column(key, r, width_);
    const auto cell = static_cast<std::int64_t>(plus_[i]) -
                      static_cast<std::int64_t>(minus_[i]);
    est.push_back(sign_bit(key, r) ? cell : -cell);
  }
  std::nth_element(est.begin(), est.begin() + depth_ / 2, est.end());
  std::int64_t median = est[depth_ / 2];
  if (depth_ % 2 == 0) {
    // Even depth: average the two middle estimates (truncating toward the
    // lower one keeps everything in integers).
    const std::int64_t hi = median;
    const std::int64_t lo =
        *std::max_element(est.begin(), est.begin() + depth_ / 2);
    median = lo + (hi - lo) / 2;
  }
  return median;
}

void CountSketch::merge(const CountSketch& other) {
  if (other.depth_ != depth_ || other.width_ != width_) {
    throw std::invalid_argument("sketch: merge needs identical geometry");
  }
  for (std::size_t i = 0; i < plus_.size(); ++i) {
    plus_[i] += other.plus_[i];
    minus_[i] += other.minus_[i];
  }
  total_ += other.total_;
}

}  // namespace sketch

#include "sketch/programs.hpp"

#include <stdexcept>

namespace sketch {

using p4sim::FieldRef;
using p4sim::Program;
using p4sim::ProgramBuilder;
using p4sim::TempId;

namespace {

void check_config(const SketchConfig& cfg) {
  if (cfg.width == 0 || (cfg.width & (cfg.width - 1)) != 0 ||
      cfg.width > kMaxWidth) {
    throw std::invalid_argument(
        "sketch: width must be a power of two <= 2^20");
  }
  if (cfg.epoch_shift == 0 || cfg.epoch_shift > 40) {
    throw std::invalid_argument("sketch: epoch_shift must be in [1, 40]");
  }
}

/// Extracted key + the three per-row columns, loads not yet emitted.
struct Probes {
  TempId zero = 0;
  TempId one = 0;
  TempId key = 0;
  std::array<TempId, kSketchDepth> col{};
};

Probes emit_probes(ProgramBuilder& b, const SketchConfig& cfg,
                   FieldRef source) {
  Probes p;
  p.zero = b.konst(0);
  p.one = b.konst(1);
  const TempId shift = b.param(kSkAdShift);
  const TempId mask = b.param(kSkAdMask);
  const TempId raw = b.load_field(source);
  p.key = b.band(b.shr(raw, shift), mask);
  // Per-row columns from disjoint 20-bit windows of h1 (hashing.hpp): the
  // rows act as independent hash functions, using only shr/band (no kMul,
  // no modulo).
  const TempId wmask = b.konst(cfg.width - 1);
  const TempId h1 = b.hash1(p.key);
  for (unsigned r = 0; r < kSketchDepth; ++r) {
    const TempId window =
        r == 0 ? h1 : b.shr(h1, b.konst(r * kColumnShift));
    p.col[r] = b.band(window, wmask);
  }
  return p;
}

TempId min2(ProgramBuilder& b, TempId a, TempId c) {
  return b.select(b.le(a, c), a, c);
}

/// median(a, b, c) = max(min(a,b), min(max(a,b), c)), selects only.
TempId median3(ProgramBuilder& b, TempId a, TempId c, TempId d) {
  const TempId ab = b.le(a, c);
  const TempId minab = b.select(ab, a, c);
  const TempId maxab = b.select(ab, c, a);
  const TempId mid = b.select(b.le(maxab, d), maxab, d);
  return b.select(b.ge(minab, mid), minab, mid);
}

}  // namespace

Program build_count_min_update(const SketchRegisters& regs,
                               const SketchConfig& cfg, FieldRef source) {
  check_config(cfg);
  ProgramBuilder b("sketch_count_min");
  const Probes p = emit_probes(b, cfg, source);
  const TempId thr = b.param(kSkAdThreshold);

  // All loads first (one RMW per array).
  std::array<TempId, kSketchDepth> cell{};
  for (unsigned r = 0; r < kSketchDepth; ++r) {
    cell[r] = b.load_reg(regs.cm_row[r], p.col[r]);
  }
  const TempId rep = b.load_reg(regs.hh_seen, p.col[0]);
  const TempId tot = b.load_reg(regs.total, p.zero);

  // The key's new estimate: every one of its row cells gains exactly 1, so
  // min(old) + 1 == min(new).
  const TempId est_new = b.add(min2(b, min2(b, cell[0], cell[1]), cell[2]),
                               p.one);
  const TempId tot_new = b.add(tot, p.one);
  const TempId armed = b.gt(thr, p.zero);
  const TempId over = b.ge(est_new, thr);
  const TempId fresh = b.eq(rep, p.zero);
  const TempId fire = b.band(armed, b.band(over, fresh));

  for (unsigned r = 0; r < kSketchDepth; ++r) {
    b.store_reg(regs.cm_row[r], p.col[r], b.add(cell[r], p.one));
  }
  b.store_reg(regs.hh_seen, p.col[0], b.bor(rep, fire));
  b.store_reg(regs.total, p.zero, tot_new);
  b.digest_if(fire, kDigestHeavyHitter, p.key, est_new, tot_new);
  return b.take();
}

Program build_count_sketch_update(const SketchRegisters& regs,
                                  const SketchConfig& cfg, FieldRef source) {
  check_config(cfg);
  ProgramBuilder b("sketch_count_sketch");
  const Probes p = emit_probes(b, cfg, source);
  const TempId thr = b.param(kSkAdThreshold);
  const TempId bias = b.konst(kSignBias);

  // Per-row sign bits: bit r of hash2(hash1(key)).
  const TempId sgnw = b.hash2(b.hash1(p.key));
  std::array<TempId, kSketchDepth> sgn{};
  for (unsigned r = 0; r < kSketchDepth; ++r) {
    sgn[r] = r == 0 ? b.band(sgnw, p.one)
                    : b.band(b.shr(sgnw, b.konst(r)), p.one);
  }

  // All loads first.
  std::array<TempId, kSketchDepth> ep{};
  std::array<TempId, kSketchDepth> cp{};
  std::array<TempId, kSketchDepth> cn{};
  std::array<TempId, kSketchDepth> pp{};
  std::array<TempId, kSketchDepth> pn{};
  for (unsigned r = 0; r < kSketchDepth; ++r) {
    ep[r] = b.load_reg(regs.cs_epoch[r], p.col[r]);
    cp[r] = b.load_reg(regs.cs_cur_plus[r], p.col[r]);
    cn[r] = b.load_reg(regs.cs_cur_minus[r], p.col[r]);
    pp[r] = b.load_reg(regs.cs_prev_plus[r], p.col[r]);
    pn[r] = b.load_reg(regs.cs_prev_minus[r], p.col[r]);
  }
  const TempId rep = b.load_reg(regs.ch_reported, p.col[0]);
  const TempId tot = b.load_reg(regs.total, p.zero);

  const TempId tot_new = b.add(tot, p.one);
  // This packet's epoch (0-based, BEFORE the increment — the mirror engine
  // in monitors.cpp replicates exactly this).
  const TempId e = b.shr(tot, b.konst(cfg.epoch_shift));
  const TempId e1 = b.add(e, p.one);

  // Lazy bank rotation: a bucket last touched in an older epoch moves its
  // current pair to the previous bank and restarts the current pair at
  // zero — no data-plane-wide clear needed at epoch boundaries.
  std::array<TempId, kSketchDepth> cp3{};
  std::array<TempId, kSketchDepth> cn3{};
  std::array<TempId, kSketchDepth> pp2{};
  std::array<TempId, kSketchDepth> pn2{};
  std::array<TempId, kSketchDepth> diff{};
  for (unsigned r = 0; r < kSketchDepth; ++r) {
    const TempId stale = b.ne(ep[r], e);
    pp2[r] = b.select(stale, cp[r], pp[r]);
    pn2[r] = b.select(stale, cn[r], pn[r]);
    const TempId cp2 = b.select(stale, p.zero, cp[r]);
    const TempId cn2 = b.select(stale, p.zero, cn[r]);
    cp3[r] = b.add(cp2, sgn[r]);
    cn3[r] = b.add(cn2, b.bxor(sgn[r], p.one));
    // Signed estimates compared as bias-offset unsigned values: the adds
    // keep both operands >= kSignBias - bucket_count, so the subtractions
    // below cannot wrap for any bucket below 2^32 observations.
    const TempId cur_e =
        b.select(sgn[r], b.sub(b.add(bias, cp3[r]), cn3[r]),
                 b.sub(b.add(bias, cn3[r]), cp3[r]));
    const TempId prev_e =
        b.select(sgn[r], b.sub(b.add(bias, pp2[r]), pn2[r]),
                 b.sub(b.add(bias, pn2[r]), pp2[r]));
    const TempId cur_ge = b.ge(cur_e, prev_e);
    diff[r] = b.select(cur_ge, b.sub(cur_e, prev_e), b.sub(prev_e, cur_e));
  }
  const TempId med = median3(b, diff[0], diff[1], diff[2]);

  // Fire once per (row-0 bucket, epoch): ch_reported stores epoch+1 (0 =
  // never).  Epoch 0 has an empty previous bank, so changes only arm from
  // epoch 1 on.
  const TempId armed = b.gt(thr, p.zero);
  const TempId warm = b.ge(e, p.one);
  const TempId over = b.gt(med, thr);
  const TempId fresh = b.ne(rep, e1);
  const TempId fire = b.band(armed, b.band(warm, b.band(over, fresh)));

  for (unsigned r = 0; r < kSketchDepth; ++r) {
    b.store_reg(regs.cs_epoch[r], p.col[r], e);
    b.store_reg(regs.cs_cur_plus[r], p.col[r], cp3[r]);
    b.store_reg(regs.cs_cur_minus[r], p.col[r], cn3[r]);
    b.store_reg(regs.cs_prev_plus[r], p.col[r], pp2[r]);
    b.store_reg(regs.cs_prev_minus[r], p.col[r], pn2[r]);
  }
  b.store_reg(regs.ch_reported, p.col[0], b.select(fire, e1, rep));
  b.store_reg(regs.total, p.zero, tot_new);
  b.digest_if(fire, kDigestHeavyChanger, p.key, med, e);
  return b.take();
}

Program build_invertible_update(const SketchRegisters& regs,
                                const SketchConfig& cfg, FieldRef source) {
  check_config(cfg);
  ProgramBuilder b("sketch_invertible");
  const Probes p = emit_probes(b, cfg, source);

  // 16-bit purity checksum; the mask bounds what a bucket can accumulate.
  const TempId chk = b.band(b.hash1(b.bxor(p.key, b.konst(kChecksumSalt))),
                            b.konst(kChecksumMask));

  std::array<TempId, kSketchDepth> cnt{};
  std::array<TempId, kSketchDepth> ks{};
  std::array<TempId, kSketchDepth> ck{};
  for (unsigned r = 0; r < kSketchDepth; ++r) {
    cnt[r] = b.load_reg(regs.inv_count[r], p.col[r]);
    ks[r] = b.load_reg(regs.inv_keysum[r], p.col[r]);
    ck[r] = b.load_reg(regs.inv_checksum[r], p.col[r]);
  }
  const TempId tot = b.load_reg(regs.total, p.zero);
  const TempId tot_new = b.add(tot, p.one);

  for (unsigned r = 0; r < kSketchDepth; ++r) {
    b.store_reg(regs.inv_count[r], p.col[r], b.add(cnt[r], p.one));
    b.store_reg(regs.inv_keysum[r], p.col[r], b.add(ks[r], p.key));
    b.store_reg(regs.inv_checksum[r], p.col[r], b.add(ck[r], chk));
  }
  b.store_reg(regs.total, p.zero, tot_new);

  // Epoch tick: every 2^epoch_shift packets, tell the controller a snapshot
  // window closed (payload: epoch id, packets so far).
  const TempId emask = b.konst((std::uint64_t{1} << cfg.epoch_shift) - 1);
  const TempId tick = b.eq(b.band(tot_new, emask), p.zero);
  const TempId eid = b.shr(tot_new, b.konst(cfg.epoch_shift));
  b.digest_if(tick, kDigestSketchEpoch, eid, tot_new, p.zero);
  return b.take();
}

}  // namespace sketch

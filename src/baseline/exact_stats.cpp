#include "baseline/exact_stats.hpp"

#include <algorithm>
#include <cmath>
#include <stdexcept>

namespace baseline {

NxStatsSnapshot compute_nx_stats(const std::vector<std::uint64_t>& values) {
  NxStatsSnapshot s;
  s.n = values.size();
  for (const auto v : values) {
    const auto sv = static_cast<std::int64_t>(v);
    s.xsum += sv;
    s.xsumsq += sv * sv;
  }
  s.variance_nx =
      static_cast<std::int64_t>(s.n) * s.xsumsq - s.xsum * s.xsum;
  s.stddev_nx = std::sqrt(static_cast<double>(s.variance_nx));
  return s;
}

std::uint64_t exact_percentile(const std::vector<std::uint64_t>& freqs,
                               unsigned percentile) {
  if (percentile == 0 || percentile >= 100) {
    throw std::invalid_argument("exact_percentile: percentile in (0,100)");
  }
  std::uint64_t total = 0;
  for (const auto f : freqs) total += f;
  if (total == 0) return 0;

  // Nearest-rank: the value at rank ceil(P/100 * total) in sorted order.
  const std::uint64_t rank =
      (total * percentile + 99) / 100;  // ceil without floating point
  std::uint64_t cum = 0;
  for (std::uint64_t v = 0; v < freqs.size(); ++v) {
    cum += freqs[v];
    if (cum >= rank) return v;
  }
  return freqs.empty() ? 0 : freqs.size() - 1;
}

std::uint64_t exact_median(const std::vector<std::uint64_t>& freqs) {
  return exact_percentile(freqs, 50);
}

double sample_percentile(std::vector<double> sample, double percentile) {
  if (sample.empty()) return 0.0;
  std::sort(sample.begin(), sample.end());
  const double rank = percentile / 100.0 * static_cast<double>(sample.size());
  auto idx = static_cast<std::size_t>(std::ceil(rank));
  if (idx > 0) --idx;  // 1-based rank to 0-based index
  if (idx >= sample.size()) idx = sample.size() - 1;
  return sample[idx];
}

}  // namespace baseline

// Analytic model of the sketch-only architecture (Figure 1b).
//
// Section 1 argues that for any pull-based system "a delay is inevitable
// between when a traffic change is theoretically detectable and when the
// system is actually able to detect the change: this delay is inversely
// proportional to the generated overhead, and constrained by network
// characteristics, such as link delays and switches' memory access speed."
//
// This model quantifies that argument so bench_reactivity can sweep it
// against the in-switch push architecture (Figure 1c): given a pull period,
// a switch-to-controller RTT, and a register-read cost, it yields the
// detection delay distribution and the standing control-channel overhead.
#pragma once

#include <cstdint>

#include "stat4/types.hpp"

namespace baseline {

struct SketchOnlyConfig {
  stat4::TimeNs pull_period = 100 * stat4::kMillisecond;
  stat4::TimeNs link_delay = 1 * stat4::kMillisecond;  ///< one-way
  /// Time to read one register on the device; the paper notes reading
  /// thousands of registers takes several milliseconds.
  stat4::TimeNs per_register_read = 2 * stat4::kMicrosecond;
  std::uint64_t registers_per_pull = 1000;
  std::uint64_t bytes_per_register = 8;
};

struct SketchOnlyOutcome {
  stat4::TimeNs detection_delay = 0;      ///< change observable -> detected
  stat4::TimeNs pull_service_time = 0;    ///< device time per pull
  double overhead_bytes_per_second = 0.0; ///< standing control-plane load
};

/// Detection delay for a change that becomes observable at `change_time`,
/// assuming pulls start at t = 0 and a pull snapshots device state at the
/// moment it *reaches* the device.  The controller detects the change when
/// the first snapshot taken at or after `change_time` arrives back.
[[nodiscard]] SketchOnlyOutcome sketch_only_detection(
    const SketchOnlyConfig& cfg, stat4::TimeNs change_time);

/// Detection delay of the in-switch push architecture for the same change:
/// the switch completes the current statistics interval, then pushes one
/// alert over the same link.
[[nodiscard]] stat4::TimeNs in_switch_detection_delay(
    stat4::TimeNs interval_len, stat4::TimeNs link_delay,
    stat4::TimeNs change_time);

}  // namespace baseline

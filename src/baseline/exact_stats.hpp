// Exact reference statistics used to validate and score Stat4's
// approximations (Tables 2 and 3, Section 3 validation).
//
// Everything here is allowed to be slow and to use floating point / sorting:
// these are host-side ground-truth computations, not data-plane code.
#pragma once

#include <cstdint>
#include <vector>

namespace baseline {

/// Exact statistics of the N-scaled distribution NX, computed from scratch
/// over the raw values — the host-side cross-check of the echo experiment.
struct NxStatsSnapshot {
  std::uint64_t n = 0;
  std::int64_t xsum = 0;
  std::int64_t xsumsq = 0;
  std::int64_t variance_nx = 0;  ///< N*Xsumsq - Xsum^2
  double stddev_nx = 0.0;        ///< fractional sqrt of variance_nx
};

[[nodiscard]] NxStatsSnapshot compute_nx_stats(
    const std::vector<std::uint64_t>& values);

/// Exact P-th percentile of a multiset given as a frequency array over the
/// domain [0, freqs.size()): the smallest domain value v such that at least
/// P% of the mass is <= v (nearest-rank definition).  Returns 0 for an empty
/// distribution.
[[nodiscard]] std::uint64_t exact_percentile(
    const std::vector<std::uint64_t>& freqs, unsigned percentile);

/// Exact median — exact_percentile(freqs, 50).
[[nodiscard]] std::uint64_t exact_median(
    const std::vector<std::uint64_t>& freqs);

/// Percentile over a plain sample vector (sorts a copy).
[[nodiscard]] double sample_percentile(std::vector<double> sample,
                                       double percentile);

}  // namespace baseline

// Welford's online algorithm [26] — the floating-point baseline Stat4's
// integer techniques replace.
//
// The paper cannot use Welford on a switch (it needs division per update and
// floating point); we implement it as the accuracy/performance baseline for
// tests and the throughput benchmarks.
#pragma once

#include <cmath>
#include <cstdint>

namespace baseline {

class Welford {
 public:
  void add(double x) noexcept {
    ++n_;
    const double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
  }

  /// Remove a previously added value (reverse Welford step); used to mirror
  /// windowed distributions.  Precondition: n() > 0 and x was added.
  void remove(double x) noexcept {
    if (n_ == 1) {
      reset();
      return;
    }
    const double mean_without =
        (static_cast<double>(n_) * mean_ - x) / static_cast<double>(n_ - 1);
    m2_ -= (x - mean_) * (x - mean_without);
    mean_ = mean_without;
    --n_;
  }

  void reset() noexcept {
    n_ = 0;
    mean_ = 0.0;
    m2_ = 0.0;
  }

  [[nodiscard]] std::uint64_t n() const noexcept { return n_; }
  [[nodiscard]] double mean() const noexcept { return mean_; }

  /// Population variance (the paper's sigma^2 is the population form:
  /// E[X^2] - E[X]^2).
  [[nodiscard]] double variance() const noexcept {
    return n_ == 0 ? 0.0 : m2_ / static_cast<double>(n_);
  }

  [[nodiscard]] double stddev() const noexcept {
    return std::sqrt(variance());
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
};

}  // namespace baseline

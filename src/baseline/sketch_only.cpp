#include "baseline/sketch_only.hpp"

#include <stdexcept>

namespace baseline {

using stat4::TimeNs;

SketchOnlyOutcome sketch_only_detection(const SketchOnlyConfig& cfg,
                                        TimeNs change_time) {
  if (cfg.pull_period <= 0) {
    throw std::invalid_argument("sketch_only: pull period must be positive");
  }
  SketchOnlyOutcome out;
  out.pull_service_time = static_cast<TimeNs>(cfg.registers_per_pull) *
                          cfg.per_register_read;

  // Pull k is issued at k * period, reaches the device one link delay later,
  // spends the service time reading registers, and returns one link delay
  // after that.  The first pull whose snapshot time (arrival at device) is
  // >= change_time is the one that can see the change.
  const TimeNs snapshot_offset = cfg.link_delay;
  TimeNs k_issue = 0;
  if (change_time > snapshot_offset) {
    const TimeNs delta = change_time - snapshot_offset;
    k_issue = ((delta + cfg.pull_period - 1) / cfg.pull_period) *
              cfg.pull_period;
  }
  const TimeNs detect_at =
      k_issue + cfg.link_delay + out.pull_service_time + cfg.link_delay;
  out.detection_delay = detect_at - change_time;

  const double bytes_per_pull = static_cast<double>(
      cfg.registers_per_pull * cfg.bytes_per_register);
  out.overhead_bytes_per_second =
      bytes_per_pull *
      (static_cast<double>(stat4::kSecond) /
       static_cast<double>(cfg.pull_period));
  return out;
}

TimeNs in_switch_detection_delay(TimeNs interval_len, TimeNs link_delay,
                                 TimeNs change_time) {
  if (interval_len <= 0) {
    throw std::invalid_argument("in_switch: interval must be positive");
  }
  // The change lands mid-interval; the check runs at the interval boundary,
  // then one alert crosses the link.  No standing overhead at all.
  const TimeNs boundary =
      ((change_time + interval_len) / interval_len) * interval_len;
  return boundary - change_time + link_delay;
}

}  // namespace baseline

#include "netsim/channel.hpp"

namespace netsim {

void ControlChannel::push_digest(const p4sim::Digest& digest) {
  const TimeNs deliver_at =
      sim_->now() + cfg_.digest_latency + cfg_.controller_processing;
  sim_->schedule_at(deliver_at, [this, digest]() {
    ++digests_;
    if (handler_) handler_(digest);
  });
}

void ControlChannel::execute_op_with_latency(TimeNs latency,
                                             std::function<void()> op) {
  // Serialize operations: a new op starts only after the previous finished,
  // like commands typed into one runtime CLI session.
  const TimeNs start = std::max(sim_->now(), ops_busy_until_);
  const TimeNs done = start + latency;
  ops_busy_until_ = done;
  sim_->schedule_at(done, [this, op = std::move(op)]() {
    ++ops_;
    op();
  });
}

void ControlChannel::execute_table_op(std::function<void()> op) {
  execute_op_with_latency(cfg_.table_op_latency, std::move(op));
}

void ControlChannel::execute_register_op(std::function<void()> op) {
  execute_op_with_latency(cfg_.register_op_latency, std::move(op));
}

void ControlChannel::execute_register_pull(std::uint64_t register_count,
                                           std::function<void()> op) {
  const TimeNs service =
      static_cast<TimeNs>(register_count) * cfg_.per_register_read;
  execute_op_with_latency(service + 2 * cfg_.digest_latency, std::move(op));
}

}  // namespace netsim

// Discrete-event simulator: the timing substrate replacing Mininet.
//
// Everything in the case-study emulation — packet transmission, link
// latency, controller processing, table-update delays — is an event on one
// deterministic nanosecond clock, so experiments are exactly reproducible
// from their seeds (unlike the paper's wall-clock veth/OVS setup).
#pragma once

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

#include "stat4/types.hpp"

namespace netsim {

using stat4::TimeNs;

class Simulator {
 public:
  using Callback = std::function<void()>;

  /// Schedule `cb` at absolute time `t` (must be >= now()).
  void schedule_at(TimeNs t, Callback cb);

  /// Schedule `cb` after `delay` nanoseconds.
  void schedule_after(TimeNs delay, Callback cb);

  [[nodiscard]] TimeNs now() const noexcept { return now_; }

  /// Run until the event queue drains.  Returns events processed.
  std::uint64_t run();

  /// Run events with time <= `t`; afterwards now() == t (even if idle).
  std::uint64_t run_until(TimeNs t);

  [[nodiscard]] bool empty() const noexcept { return queue_.empty(); }
  [[nodiscard]] std::size_t pending() const noexcept { return queue_.size(); }
  [[nodiscard]] std::uint64_t events_processed() const noexcept {
    return processed_;
  }

 private:
  struct Event {
    TimeNs time = 0;
    std::uint64_t seq = 0;  ///< FIFO tie-break for equal timestamps
    Callback cb;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const noexcept {
      if (a.time != b.time) return a.time > b.time;
      return a.seq > b.seq;
    }
  };

  std::priority_queue<Event, std::vector<Event>, Later> queue_;
  TimeNs now_ = 0;
  std::uint64_t seq_ = 0;
  std::uint64_t processed_ = 0;
};

}  // namespace netsim

#include "netsim/network.hpp"

#include <stdexcept>

namespace netsim {

void Node::send(PortId port, Packet pkt) {
  if (net_ == nullptr) {
    throw std::logic_error("netsim: node not attached to a network");
  }
  net_->transmit(id_, port, std::move(pkt));
}

Simulator& Node::sim() {
  if (net_ == nullptr) {
    throw std::logic_error("netsim: node not attached to a network");
  }
  return net_->sim();
}

TimeNs Node::now() { return sim().now(); }

NodeId Network::add_node(std::unique_ptr<Node> node) {
  node->net_ = this;
  node->id_ = static_cast<NodeId>(nodes_.size());
  nodes_.push_back(std::move(node));
  return nodes_.back()->id_;
}

void Network::link(NodeId a, PortId pa, NodeId b, PortId pb, TimeNs delay,
                   std::uint64_t bandwidth_bps, std::size_t queue_limit) {
  if (a >= nodes_.size() || b >= nodes_.size()) {
    throw std::out_of_range("netsim: link endpoint node does not exist");
  }
  if (delay < 0) {
    throw std::invalid_argument("netsim: negative link delay");
  }
  const auto ka = std::make_pair(a, pa);
  const auto kb = std::make_pair(b, pb);
  if (wires_.count(ka) != 0 || wires_.count(kb) != 0) {
    throw std::invalid_argument("netsim: port already wired");
  }
  wires_[ka] = Endpoint{b, pb, delay, bandwidth_bps, queue_limit, 0};
  wires_[kb] = Endpoint{a, pa, delay, bandwidth_bps, queue_limit, 0};
}

void Network::inject(NodeId node, PortId port, Packet pkt) {
  if (node >= nodes_.size()) {
    throw std::out_of_range("netsim: inject target does not exist");
  }
  pkt.ingress_port = port;
  pkt.ingress_ts = sim_.now();
  ++delivered_;
  nodes_[node]->on_packet(port, std::move(pkt));
}

void Network::transmit(NodeId from, PortId port, Packet pkt) {
  const auto it = wires_.find({from, port});
  if (it == wires_.end()) {
    ++dropped_unwired_;
    return;
  }
  Endpoint& ep = it->second;

  TimeNs depart = sim_.now();
  if (ep.bandwidth_bps > 0) {
    // Serialization time for this frame at the link rate.
    const auto bits = static_cast<std::uint64_t>(pkt.size()) * 8;
    const auto serialization = static_cast<TimeNs>(
        (bits * static_cast<std::uint64_t>(stat4::kSecond)) /
        ep.bandwidth_bps);
    const TimeNs start = std::max(sim_.now(), ep.busy_until);
    if (ep.queue_limit > 0 && serialization > 0) {
      // Occupancy = how many serialization slots are already committed
      // ahead of this packet.
      const auto backlog = static_cast<std::size_t>(
          (start - sim_.now()) / serialization);
      if (backlog >= ep.queue_limit) {
        ++dropped_queue_;  // tail drop: the congestion signal
        return;
      }
    }
    ep.busy_until = start + serialization;
    depart = ep.busy_until;
  }

  const Endpoint snapshot = ep;
  sim_.schedule_at(
      depart + ep.delay, [this, snapshot, p = std::move(pkt)]() mutable {
        p.ingress_port = snapshot.port;
        p.ingress_ts = sim_.now();
        ++delivered_;
        nodes_[snapshot.node]->on_packet(snapshot.port, std::move(p));
      });
}

void P4SwitchNode::on_packet(PortId port, Packet pkt) {
  pkt.ingress_port = port;
  pkt.ingress_ts = now();
  auto out = sw_->process(std::move(pkt));
  if (digest_sink_) {
    for (const auto& d : out.digests) digest_sink_(d);
  }
  for (auto& [out_port, out_pkt] : out.packets) {
    send(out_port, std::move(out_pkt));
  }
}

void HostNode::on_packet(PortId port, Packet pkt) {
  ++received_;
  if (handler_) handler_(port, pkt);
}

}  // namespace netsim

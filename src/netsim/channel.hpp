// Control channel: the switch <-> controller path with realistic latency.
//
// The paper reports that pinpointing a spike's destination "typically takes
// 2-3 seconds because of the interaction between the control and data
// planes": digests must reach the controller and — far more expensively on
// bmv2 — table add/modify commands must round-trip through the runtime CLI.
// ControlChannel makes those costs explicit simulation parameters so the
// bench can reproduce (and sweep) the wall-clock behaviour.
#pragma once

#include <functional>

#include "netsim/simulator.hpp"
#include "p4sim/action.hpp"

namespace netsim {

struct ControlChannelConfig {
  /// Digest propagation, switch -> controller.
  TimeNs digest_latency = 5 * stat4::kMillisecond;
  /// Controller think time per alert.
  TimeNs controller_processing = 50 * stat4::kMillisecond;
  /// One table add/modify (bmv2 runtime CLI is notoriously ~1s).
  TimeNs table_op_latency = 1000 * stat4::kMillisecond;
  /// One register write (rearm / reset), cheaper than a table op.
  TimeNs register_op_latency = 20 * stat4::kMillisecond;
  /// Reading one register cell during a pull ("reading thousands of
  /// registers takes several milliseconds", Section 1).
  TimeNs per_register_read = 2 * stat4::kMicrosecond;
};

/// Queues digests toward the controller and controller operations toward
/// the switch, applying the configured latencies on one Simulator clock.
class ControlChannel {
 public:
  ControlChannel(Simulator& sim, ControlChannelConfig cfg = {})
      : sim_(&sim), cfg_(cfg) {}

  /// Install the controller-side digest handler.
  void set_digest_handler(std::function<void(const p4sim::Digest&)> h) {
    handler_ = std::move(h);
  }

  /// Called from the data plane (zero switch-side cost); the handler runs
  /// after digest_latency + controller_processing.
  void push_digest(const p4sim::Digest& digest);

  /// Run a table add/modify/delete on the switch after table_op_latency.
  /// Multiple queued ops serialize (one CLI session), matching bmv2.
  void execute_table_op(std::function<void()> op);

  /// Run a register write (rearm, reset) after register_op_latency.
  void execute_register_op(std::function<void()> op);

  /// Pull `register_count` cells from the switch: `op` runs (and should
  /// snapshot the registers) after the read service time plus the control
  /// RTT — the Figure 1b cost the in-switch architecture avoids paying
  /// continuously, but which the hybrid design (Section 5) pays on demand.
  void execute_register_pull(std::uint64_t register_count,
                             std::function<void()> op);

  [[nodiscard]] const ControlChannelConfig& config() const noexcept {
    return cfg_;
  }
  [[nodiscard]] Simulator& sim() noexcept { return *sim_; }
  [[nodiscard]] std::uint64_t digests_delivered() const noexcept {
    return digests_;
  }
  [[nodiscard]] std::uint64_t ops_executed() const noexcept { return ops_; }

 private:
  void execute_op_with_latency(TimeNs latency, std::function<void()> op);

  Simulator* sim_;
  ControlChannelConfig cfg_;
  std::function<void(const p4sim::Digest&)> handler_;
  TimeNs ops_busy_until_ = 0;  ///< serializes CLI operations
  std::uint64_t digests_ = 0;
  std::uint64_t ops_ = 0;
};

}  // namespace netsim

// Umbrella header for the netsim discrete-event network simulator.
#pragma once

#include "netsim/channel.hpp"    // IWYU pragma: export
#include "netsim/network.hpp"    // IWYU pragma: export
#include "netsim/rng.hpp"        // IWYU pragma: export
#include "netsim/simulator.hpp"  // IWYU pragma: export
#include "netsim/traffic.hpp"    // IWYU pragma: export

// Network topology: nodes wired by fixed-latency links.
//
// The case study (Figure 6) needs a packet source, a P4 switch in the
// forwarding path, destination subnets, and a controller reachable over a
// non-zero-latency control channel.  Network provides the first three;
// channel.hpp models the controller path.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "netsim/simulator.hpp"
#include "p4sim/packet.hpp"
#include "p4sim/switch.hpp"

namespace netsim {

using NodeId = std::uint32_t;
using p4sim::Packet;
using p4sim::PortId;

class Network;

/// A device attached to the network.  Subclasses implement on_packet.
class Node {
 public:
  virtual ~Node() = default;

  /// Called when a packet arrives on `port` (sim time = arrival time).
  virtual void on_packet(PortId port, Packet pkt) = 0;

 protected:
  /// Transmit out of `port`; the packet arrives at the peer after the link
  /// delay.  Packets sent into unwired ports are dropped (counted).
  void send(PortId port, Packet pkt);

  [[nodiscard]] Simulator& sim();
  [[nodiscard]] TimeNs now();

 private:
  friend class Network;
  Network* net_ = nullptr;
  NodeId id_ = 0;
};

class Network {
 public:
  explicit Network(Simulator& sim) : sim_(sim) {}

  NodeId add_node(std::unique_ptr<Node> node);

  template <typename T>
  [[nodiscard]] T& node(NodeId id) {
    return dynamic_cast<T&>(*nodes_.at(id));
  }

  /// Wire (a, pa) <-> (b, pb) full duplex with one-way `delay`.
  /// `bandwidth_bps` models serialization (0 = infinite capacity) and
  /// `queue_limit` bounds the per-direction transmit queue in packets:
  /// packets arriving at a full queue are DROPPED and counted — the
  /// congestion the paper's Section 5 wants the data plane to react to
  /// before it happens.
  void link(NodeId a, PortId pa, NodeId b, PortId pb, TimeNs delay,
            std::uint64_t bandwidth_bps = 0, std::size_t queue_limit = 0);

  /// Packets dropped at full transmit queues, network-wide.
  [[nodiscard]] std::uint64_t packets_dropped_queue() const noexcept {
    return dropped_queue_;
  }

  /// Deliver `pkt` into (node, port) at the current sim time (external
  /// traffic injection, used by generators).
  void inject(NodeId node, PortId port, Packet pkt);

  [[nodiscard]] Simulator& sim() noexcept { return sim_; }
  [[nodiscard]] std::uint64_t packets_delivered() const noexcept {
    return delivered_;
  }
  [[nodiscard]] std::uint64_t packets_dropped_unwired() const noexcept {
    return dropped_unwired_;
  }

 private:
  friend class Node;
  struct Endpoint {
    NodeId node = 0;
    PortId port = 0;
    TimeNs delay = 0;
    std::uint64_t bandwidth_bps = 0;  ///< 0 = infinite
    std::size_t queue_limit = 0;      ///< packets; 0 = unbounded
    TimeNs busy_until = 0;            ///< per-direction transmit state
  };

  void transmit(NodeId from, PortId port, Packet pkt);

  Simulator& sim_;
  std::vector<std::unique_ptr<Node>> nodes_;
  std::map<std::pair<NodeId, PortId>, Endpoint> wires_;
  std::uint64_t delivered_ = 0;
  std::uint64_t dropped_unwired_ = 0;
  std::uint64_t dropped_queue_ = 0;
};

/// Wraps a P4Switch as a network node.  Digests are handed to the digest
/// sink immediately (the control channel adds its own latency).
class P4SwitchNode : public Node {
 public:
  /// `sw` must outlive the node (typically owned by a stat4p4 app object).
  explicit P4SwitchNode(p4sim::P4Switch& sw) : sw_(&sw) {}

  void on_packet(PortId port, Packet pkt) override;

  void set_digest_sink(std::function<void(const p4sim::Digest&)> sink) {
    digest_sink_ = std::move(sink);
  }

  [[nodiscard]] p4sim::P4Switch& sw() noexcept { return *sw_; }

 private:
  p4sim::P4Switch* sw_;
  std::function<void(const p4sim::Digest&)> digest_sink_;
};

/// A host that hands every received packet to a callback (and can send).
class HostNode : public Node {
 public:
  using Handler = std::function<void(PortId, const Packet&)>;

  void set_handler(Handler h) { handler_ = std::move(h); }
  void on_packet(PortId port, Packet pkt) override;

  /// Expose Node::send for traffic generators driving this host.
  void transmit(PortId port, Packet pkt) { send(port, std::move(pkt)); }

  [[nodiscard]] std::uint64_t packets_received() const noexcept {
    return received_;
  }

 private:
  Handler handler_;
  std::uint64_t received_ = 0;
};

}  // namespace netsim

#include "netsim/simulator.hpp"

#include <stdexcept>
#include <utility>

namespace netsim {

void Simulator::schedule_at(TimeNs t, Callback cb) {
  if (t < now_) {
    throw std::invalid_argument("netsim: cannot schedule in the past");
  }
  queue_.push(Event{t, seq_++, std::move(cb)});
}

void Simulator::schedule_after(TimeNs delay, Callback cb) {
  if (delay < 0) {
    throw std::invalid_argument("netsim: negative delay");
  }
  schedule_at(now_ + delay, std::move(cb));
}

std::uint64_t Simulator::run() {
  std::uint64_t n = 0;
  while (!queue_.empty()) {
    // Copy out before pop: the callback may schedule new events.
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.cb();
    ++n;
    ++processed_;
  }
  return n;
}

std::uint64_t Simulator::run_until(TimeNs t) {
  std::uint64_t n = 0;
  while (!queue_.empty() && queue_.top().time <= t) {
    Event ev = queue_.top();
    queue_.pop();
    now_ = ev.time;
    ev.cb();
    ++n;
    ++processed_;
  }
  if (now_ < t) now_ = t;
  return n;
}

}  // namespace netsim

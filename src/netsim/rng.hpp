// Deterministic random number generation for experiments.
//
// Every randomized experiment takes an explicit 64-bit seed and derives all
// of its randomness from one of these generators, so every table and figure
// regenerates bit-identically.  xoshiro256** seeded via SplitMix64 — small,
// fast, and well understood.
#pragma once

#include <array>
#include <cstdint>

namespace netsim {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) noexcept {
    // SplitMix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9E3779B97F4A7C15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
      z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform integer in [0, n).  Precondition: n > 0.
  std::uint64_t below(std::uint64_t n) noexcept {
    // Lemire-style rejection-free reduction is overkill here; modulo bias is
    // negligible for the ranges experiments use (n << 2^64).
    return next() % n;
  }

  /// Uniform double in [0, 1).
  double uniform01() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }
  std::array<std::uint64_t, 4> state_{};
};

}  // namespace netsim

#include "netsim/traffic.hpp"

#include <cmath>
#include <memory>
#include <stdexcept>

#include "p4sim/craft.hpp"
#include "telemetry/telemetry.hpp"

namespace netsim {

struct FlowState {
  TimeNs stop = 0;
  TimeNs gap = 0;
  Rng* rng = nullptr;  ///< non-null = Poisson arrivals with mean `gap`
  PacketFactory factory;
  std::uint64_t seq = 0;
};

void PacketPump::launch(TimeNs start, TimeNs stop, TimeNs gap,
                        PacketFactory factory) {
  if (gap <= 0) {
    throw std::invalid_argument("netsim: packet gap must be positive");
  }
  auto flow = std::make_shared<FlowState>();
  flow->stop = stop;
  flow->gap = gap;
  flow->factory = std::move(factory);
  const TimeNs at = std::max(start, sim_->now());
  sim_->schedule_at(at, [this, flow]() { step(flow); });
}

void PacketPump::step(std::shared_ptr<FlowState> flow) {
  if (stopped_) return;
  if (flow->stop != 0 && sim_->now() >= flow->stop) return;
  STAT4_TELEMETRY_ONLY(
      static telemetry::Counter& t_generated =
          telemetry::MetricsRegistry::global().counter(
              "netsim.packets_generated");
      static telemetry::Histogram& t_factory =
          telemetry::MetricsRegistry::global().histogram(
              "netsim.packet_factory_ns");
      static telemetry::SampleGate t_gate;
      t_generated.add();)
  {
    STAT4_TELEMETRY_ONLY(
        telemetry::SampledSpan t_span(t_factory, t_gate, 64);)
    emit_(flow->factory(flow->seq++));
  }
  ++emitted_;
  TimeNs gap = flow->gap;
  if (flow->rng != nullptr) {
    // Exponential inter-arrival: -mean * ln(U), U in (0, 1].
    const double u = 1.0 - flow->rng->uniform01();
    gap = std::max<TimeNs>(
        1, static_cast<TimeNs>(-static_cast<double>(flow->gap) *
                               std::log(u)));
  }
  sim_->schedule_after(gap, [this, flow]() { step(flow); });
}

void PacketPump::launch_poisson(TimeNs start, TimeNs stop, TimeNs mean_gap,
                                Rng& rng, PacketFactory factory) {
  if (mean_gap <= 0) {
    throw std::invalid_argument("netsim: mean gap must be positive");
  }
  auto flow = std::make_shared<FlowState>();
  flow->stop = stop;
  flow->gap = mean_gap;
  flow->rng = &rng;
  flow->factory = std::move(factory);
  const TimeNs at = std::max(start, sim_->now());
  sim_->schedule_at(at, [this, flow]() { step(flow); });
}

PacketFactory uniform_udp_factory(Rng& rng, std::uint32_t src_ip,
                                  std::vector<std::uint32_t> destinations,
                                  std::size_t pad_to) {
  if (destinations.empty()) {
    throw std::invalid_argument("netsim: no destinations");
  }
  return [&rng, src_ip, dests = std::move(destinations),
          pad_to](std::uint64_t seq) {
    const std::uint32_t dst = dests[rng.below(dests.size())];
    const auto sport = static_cast<std::uint16_t>(20000 + (seq & 0x3FF));
    return p4sim::make_udp_packet(src_ip, dst, sport, 8080, pad_to);
  };
}

PacketFactory fixed_udp_factory(std::uint32_t src_ip, std::uint32_t dst_ip,
                                std::size_t pad_to) {
  return [src_ip, dst_ip, pad_to](std::uint64_t seq) {
    const auto sport = static_cast<std::uint16_t>(30000 + (seq & 0x3FF));
    return p4sim::make_udp_packet(src_ip, dst_ip, sport, 8080, pad_to);
  };
}

PacketFactory syn_flood_factory(Rng& rng, std::uint32_t victim_ip,
                                std::uint16_t victim_port) {
  return [&rng, victim_ip, victim_port](std::uint64_t) {
    const auto spoofed = static_cast<std::uint32_t>(rng.next());
    const auto sport = static_cast<std::uint16_t>(1024 + rng.below(60000));
    return p4sim::make_tcp_packet(spoofed, victim_ip, sport, victim_port,
                                  p4sim::kTcpSyn);
  };
}

PacketFactory zipf_udp_factory(Rng& rng, std::uint32_t src_ip,
                               std::vector<std::uint32_t> destinations,
                               double s, std::size_t pad_to) {
  if (destinations.empty()) {
    throw std::invalid_argument("netsim: no destinations");
  }
  // Precompute the CDF of rank popularity ~ 1/rank^s.
  std::vector<double> cdf(destinations.size());
  double total = 0.0;
  for (std::size_t i = 0; i < destinations.size(); ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = total;
  }
  for (auto& c : cdf) c /= total;

  return [&rng, src_ip, dests = std::move(destinations), cdf = std::move(cdf),
          pad_to](std::uint64_t seq) {
    const double u = rng.uniform01();
    std::size_t lo = 0;
    std::size_t hi = cdf.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const auto sport = static_cast<std::uint16_t>(40000 + (seq & 0x3FF));
    return p4sim::make_udp_packet(src_ip, dests[lo], sport, 8080, pad_to);
  };
}

}  // namespace netsim

#include "netsim/traffic.hpp"

#include <algorithm>
#include <cmath>
#include <memory>
#include <stdexcept>

#include "p4sim/craft.hpp"
#include "telemetry/telemetry.hpp"

namespace netsim {

struct FlowState {
  TimeNs stop = 0;
  TimeNs gap = 0;
  Rng* rng = nullptr;  ///< non-null = Poisson arrivals with mean `gap`
  RateModulator modulator;  ///< non-null = time-varying rate multiplier
  PacketFactory factory;
  std::uint64_t seq = 0;
  // Modulated flows only: emission bookkeeping.  The pump re-polls at
  // least every base gap so a RISING rate takes effect immediately — a
  // naive "gap = base/factor(now)" would freeze a slow-start ramp at its
  // initial near-zero rate.
  TimeNs last_emit = 0;
  double exp_scale = 1.0;  ///< exponential inter-arrival multiplier
};

void PacketPump::launch(TimeNs start, TimeNs stop, TimeNs gap,
                        PacketFactory factory) {
  if (gap <= 0) {
    throw std::invalid_argument("netsim: packet gap must be positive");
  }
  auto flow = std::make_shared<FlowState>();
  flow->stop = stop;
  flow->gap = gap;
  flow->factory = std::move(factory);
  const TimeNs at = std::max(start, sim_->now());
  sim_->schedule_at(at, [this, flow]() { step(flow); });
}

void PacketPump::emit_packet(FlowState& flow) {
  STAT4_TELEMETRY_ONLY(
      static telemetry::Counter& t_generated =
          telemetry::MetricsRegistry::global().counter(
              "netsim.packets_generated");
      static telemetry::Histogram& t_factory =
          telemetry::MetricsRegistry::global().histogram(
              "netsim.packet_factory_ns");
      static telemetry::SampleGate t_gate;
      t_generated.add();)
  {
    STAT4_TELEMETRY_ONLY(
        telemetry::SampledSpan t_span(t_factory, t_gate, 64);)
    emit_(flow.factory(flow.seq++));
  }
  ++emitted_;
}

void PacketPump::step(std::shared_ptr<FlowState> flow) {
  if (stopped_) return;
  if (flow->stop != 0 && sim_->now() >= flow->stop) return;
  if (flow->modulator) {
    modulated_step(flow);
    return;
  }
  emit_packet(*flow);
  TimeNs gap = flow->gap;
  if (flow->rng != nullptr) {
    // Exponential inter-arrival: -mean * ln(U), U in (0, 1].
    const double u = 1.0 - flow->rng->uniform01();
    gap = std::max<TimeNs>(
        1, static_cast<TimeNs>(-static_cast<double>(flow->gap) *
                               std::log(u)));
  }
  sim_->schedule_after(gap, [this, flow]() { step(flow); });
}

void PacketPump::modulated_step(const std::shared_ptr<FlowState>& flow) {
  const TimeNs now = sim_->now();
  double factor = flow->modulator(now);
  if (!(factor > 0.0)) {
    // Silenced: poll again one base gap later; no backlog accrues while
    // the rate is zero.
    flow->last_emit = now;
    sim_->schedule_after(flow->gap, [this, flow]() { step(flow); });
    return;
  }
  factor = std::min(1e6, std::max(1e-6, factor));
  const double mean_gap = static_cast<double>(flow->gap) / factor;
  // exp_scale is the (pre-drawn) exponential multiplier of this interval;
  // 1.0 on the deterministic grid.
  const auto interval = std::max<TimeNs>(
      1, static_cast<TimeNs>(mean_gap * flow->exp_scale));
  if (now >= flow->last_emit + interval) {
    emit_packet(*flow);
    flow->last_emit = now;
    if (flow->rng != nullptr) {
      flow->exp_scale = -std::log(1.0 - flow->rng->uniform01());
    }
  }
  // Re-poll no later than one base gap out, so a rate that climbs between
  // emissions is noticed without waiting out a stale (long) interval.
  const auto next_interval = std::max<TimeNs>(
      1, static_cast<TimeNs>(mean_gap * flow->exp_scale));
  const TimeNs due = flow->last_emit + next_interval - now;
  const TimeNs wait = std::max<TimeNs>(1, std::min(due, flow->gap));
  sim_->schedule_after(wait, [this, flow]() { step(flow); });
}

void PacketPump::launch_poisson(TimeNs start, TimeNs stop, TimeNs mean_gap,
                                Rng& rng, PacketFactory factory) {
  if (mean_gap <= 0) {
    throw std::invalid_argument("netsim: mean gap must be positive");
  }
  auto flow = std::make_shared<FlowState>();
  flow->stop = stop;
  flow->gap = mean_gap;
  flow->rng = &rng;
  flow->factory = std::move(factory);
  const TimeNs at = std::max(start, sim_->now());
  sim_->schedule_at(at, [this, flow]() { step(flow); });
}

void PacketPump::launch_modulated(TimeNs start, TimeNs stop, TimeNs base_gap,
                                  RateModulator modulator,
                                  PacketFactory factory, Rng* rng) {
  if (base_gap <= 0) {
    throw std::invalid_argument("netsim: base gap must be positive");
  }
  if (!modulator) {
    throw std::invalid_argument("netsim: modulator must be callable");
  }
  auto flow = std::make_shared<FlowState>();
  flow->stop = stop;
  flow->gap = base_gap;
  flow->rng = rng;
  flow->modulator = std::move(modulator);
  flow->factory = std::move(factory);
  const TimeNs at = std::max(start, sim_->now());
  flow->last_emit = at - base_gap;  // first emission due immediately
  sim_->schedule_at(at, [this, flow]() { step(flow); });
}

RateModulator diurnal_modulator(TimeNs period, double amplitude) {
  if (period <= 0) {
    throw std::invalid_argument("netsim: diurnal period must be positive");
  }
  if (amplitude < 0.0 || amplitude >= 1.0) {
    throw std::invalid_argument("netsim: diurnal amplitude must be in [0,1)");
  }
  constexpr double kTwoPi = 6.283185307179586;
  return [period, amplitude](TimeNs now) {
    const double phase =
        kTwoPi * static_cast<double>(now) / static_cast<double>(period);
    return 1.0 + amplitude * std::sin(phase);
  };
}

RateModulator drift_modulator(double growth_per_second, double max_factor) {
  if (max_factor <= 0.0) {
    throw std::invalid_argument("netsim: drift cap must be positive");
  }
  return [growth_per_second, max_factor](TimeNs now) {
    const double seconds = static_cast<double>(now) * 1e-9;
    return std::min(max_factor, 1.0 + growth_per_second * seconds);
  };
}

RateModulator ramp_modulator(TimeNs ramp_start, TimeNs ramp_duration,
                             double peak_factor) {
  if (ramp_duration <= 0) {
    throw std::invalid_argument("netsim: ramp duration must be positive");
  }
  if (peak_factor <= 0.0) {
    throw std::invalid_argument("netsim: ramp peak must be positive");
  }
  return [ramp_start, ramp_duration, peak_factor](TimeNs now) {
    if (now < ramp_start) return 0.0;
    if (now >= ramp_start + ramp_duration) return peak_factor;
    return peak_factor * static_cast<double>(now - ramp_start) /
           static_cast<double>(ramp_duration);
  };
}

RateModulator combine_modulators(RateModulator a, RateModulator b) {
  if (!a || !b) {
    throw std::invalid_argument("netsim: combined modulators must be callable");
  }
  return [a = std::move(a), b = std::move(b)](TimeNs now) {
    return a(now) * b(now);
  };
}

PacketFactory uniform_udp_factory(Rng& rng, std::uint32_t src_ip,
                                  std::vector<std::uint32_t> destinations,
                                  std::size_t pad_to) {
  if (destinations.empty()) {
    throw std::invalid_argument("netsim: no destinations");
  }
  return [&rng, src_ip, dests = std::move(destinations),
          pad_to](std::uint64_t seq) {
    const std::uint32_t dst = dests[rng.below(dests.size())];
    const auto sport = static_cast<std::uint16_t>(20000 + (seq & 0x3FF));
    return p4sim::make_udp_packet(src_ip, dst, sport, 8080, pad_to);
  };
}

PacketFactory fixed_udp_factory(std::uint32_t src_ip, std::uint32_t dst_ip,
                                std::size_t pad_to) {
  return [src_ip, dst_ip, pad_to](std::uint64_t seq) {
    const auto sport = static_cast<std::uint16_t>(30000 + (seq & 0x3FF));
    return p4sim::make_udp_packet(src_ip, dst_ip, sport, 8080, pad_to);
  };
}

PacketFactory syn_flood_factory(Rng& rng, std::uint32_t victim_ip,
                                std::uint16_t victim_port) {
  return [&rng, victim_ip, victim_port](std::uint64_t) {
    const auto spoofed = static_cast<std::uint32_t>(rng.next());
    const auto sport = static_cast<std::uint16_t>(1024 + rng.below(60000));
    return p4sim::make_tcp_packet(spoofed, victim_ip, sport, victim_port,
                                  p4sim::kTcpSyn);
  };
}

PacketFactory zipf_udp_factory(Rng& rng, std::uint32_t src_ip,
                               std::vector<std::uint32_t> destinations,
                               double s, std::size_t pad_to) {
  if (destinations.empty()) {
    throw std::invalid_argument("netsim: no destinations");
  }
  // Precompute the CDF of rank popularity ~ 1/rank^s.
  std::vector<double> cdf(destinations.size());
  double total = 0.0;
  for (std::size_t i = 0; i < destinations.size(); ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), s);
    cdf[i] = total;
  }
  for (auto& c : cdf) c /= total;

  return [&rng, src_ip, dests = std::move(destinations), cdf = std::move(cdf),
          pad_to](std::uint64_t seq) {
    const double u = rng.uniform01();
    std::size_t lo = 0;
    std::size_t hi = cdf.size() - 1;
    while (lo < hi) {
      const std::size_t mid = (lo + hi) / 2;
      if (cdf[mid] < u) {
        lo = mid + 1;
      } else {
        hi = mid;
      }
    }
    const auto sport = static_cast<std::uint16_t>(40000 + (seq & 0x3FF));
    return p4sim::make_udp_packet(src_ip, dests[lo], sport, 8080, pad_to);
  };
}

}  // namespace netsim

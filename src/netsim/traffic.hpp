// Traffic generation for the case study and the Table 1 use cases.
//
// A PacketPump schedules packet emissions on the simulator clock; packet
// factories decide what each packet looks like.  Provided factories cover
// the paper's workloads: uniform load-balanced traffic across destinations
// (the case-study baseline), a fixed-destination spike, a SYN flood with
// random sources, and a Zipf-skewed destination mix (Section 5 notes that
// traffic per prefix may be zipfian).
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "netsim/rng.hpp"
#include "netsim/simulator.hpp"
#include "p4sim/packet.hpp"

namespace netsim {

using PacketFactory = std::function<p4sim::Packet(std::uint64_t seq)>;

/// Multiplies a flow's base rate as a function of simulation time: a
/// modulator value of 2.0 doubles the packet rate (halves the gap), 0.5
/// halves it, and <= 0 silences the flow for that moment (the pump polls
/// again one base gap later).  Pure functions of time keep flows
/// seed-deterministic.
using RateModulator = std::function<double(TimeNs now)>;

/// Emits factory-made packets on a fixed inter-arrival grid.
class PacketPump {
 public:
  using Emit = std::function<void(p4sim::Packet)>;

  PacketPump(Simulator& sim, Emit emit)
      : sim_(&sim), emit_(std::move(emit)) {}

  /// Emit packets from `start` (absolute) until `stop`, one every `gap` ns.
  /// A `stop` of 0 means "run forever" (until the simulation stops
  /// scheduling); use Simulator::run_until to bound such flows.
  void launch(TimeNs start, TimeNs stop, TimeNs gap, PacketFactory factory);

  /// Like launch, but with exponentially distributed inter-arrival times of
  /// mean `mean_gap` (a Poisson process — the natural model for aggregate
  /// arrivals, giving the per-interval count variance that real traffic
  /// has and deterministic gaps do not).  `rng` must outlive the flow.
  void launch_poisson(TimeNs start, TimeNs stop, TimeNs mean_gap, Rng& rng,
                      PacketFactory factory);

  /// Like launch / launch_poisson, but the instantaneous rate is
  /// `modulator(now)` times the base rate implied by `base_gap`.  With a
  /// non-null `rng` the inter-arrival times are exponential around the
  /// modulated gap (a time-varying Poisson process); with nullptr they sit
  /// on the modulated grid.  Drives the ML scenarios: diurnal load swings,
  /// baseline drift, and slow-ramp attacks (docs/ML.md).
  void launch_modulated(TimeNs start, TimeNs stop, TimeNs base_gap,
                        RateModulator modulator, PacketFactory factory,
                        Rng* rng = nullptr);

  /// Stop all flows at the next emission opportunity.
  void stop_all() noexcept { stopped_ = true; }

  [[nodiscard]] std::uint64_t packets_emitted() const noexcept {
    return emitted_;
  }

 private:
  void step(std::shared_ptr<struct FlowState> flow);
  void modulated_step(const std::shared_ptr<struct FlowState>& flow);
  void emit_packet(struct FlowState& flow);

  Simulator* sim_;
  Emit emit_;
  bool stopped_ = false;
  std::uint64_t emitted_ = 0;
};

/// Uniform load-balanced UDP across `destinations` (the Figure 6 baseline).
[[nodiscard]] PacketFactory uniform_udp_factory(
    Rng& rng, std::uint32_t src_ip, std::vector<std::uint32_t> destinations,
    std::size_t pad_to = 0);

/// All packets to one destination (the traffic spike).
[[nodiscard]] PacketFactory fixed_udp_factory(std::uint32_t src_ip,
                                              std::uint32_t dst_ip,
                                              std::size_t pad_to = 0);

/// TCP SYNs from random spoofed sources to one victim (Table 1 SYN flood).
[[nodiscard]] PacketFactory syn_flood_factory(Rng& rng,
                                              std::uint32_t victim_ip,
                                              std::uint16_t victim_port = 80);

/// Zipf(s)-distributed destination popularity over `destinations`.
[[nodiscard]] PacketFactory zipf_udp_factory(
    Rng& rng, std::uint32_t src_ip, std::vector<std::uint32_t> destinations,
    double s, std::size_t pad_to = 0);

// ---- rate modulators for the ML anomaly scenarios -------------------------

/// Diurnal load: 1 + amplitude * sin(2*pi*t / period) — the day/night swing
/// a static threshold must not alarm on.  `amplitude` in [0, 1).
[[nodiscard]] RateModulator diurnal_modulator(TimeNs period, double amplitude);

/// Baseline drift: rate grows by `growth_per_second` every simulated second
/// (linear in time), capped at `max_factor`.  Models organic load growth.
[[nodiscard]] RateModulator drift_modulator(double growth_per_second,
                                            double max_factor);

/// Slow-ramp attack envelope: 0 before `ramp_start`, then a linear climb to
/// `peak_factor` over `ramp_duration`, holding the peak afterwards.  Slow
/// enough a self-adapting mean+k*sigma window absorbs it; the consensus
/// ensemble does not (examples/adaptive_anomaly).
[[nodiscard]] RateModulator ramp_modulator(TimeNs ramp_start,
                                           TimeNs ramp_duration,
                                           double peak_factor);

/// Pointwise product of two modulators (diurnal * drift, ...).
[[nodiscard]] RateModulator combine_modulators(RateModulator a,
                                               RateModulator b);

}  // namespace netsim

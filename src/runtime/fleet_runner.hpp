// FleetRunner: each emulated switch on its own worker thread.
//
// The paper's Figure 1c architecture at fleet scale: many switches process
// traffic independently at line rate and only their anomaly digests travel
// to the controller.  FleetRunner reproduces exactly that concurrency
// structure — one worker thread per registered MonitorApp switch, fed by a
// bounded SPSC packet ring, with all digests funneled through one MPSC
// channel to the controller side (typically a control::FleetCorrelator).
//
// Backpressure: by default a packet arriving at a full ring is DROPPED and
// counted, the way a congested switch sheds load; Policy::kBlock instead
// spins until space frees up (lossless, for replay workloads where every
// packet must be observed).  Accounting invariant, enforced by
// tests/fleet_runner_test.cpp:  sent == delivered + dropped  per switch.
//
// Shutdown protocol (safe under racing producers):
//   1. producers observe stop_requested() — or simply finish — and each
//      calls close_input(sw) for the switches it feeds (close_input must be
//      the LAST call that producer makes for that switch);
//   2. workers drain their rings and exit on closed-and-empty;
//   3. the control thread calls stop(), which joins the workers and drains
//      the final digests.
// For the common single-producer case (the control thread feeds all
// switches itself), flush()/stop() from that thread is all that is needed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "control/fleet.hpp"
#include "p4sim/exec_tier.hpp"
#include "p4sim/packet.hpp"
#include "runtime/mpsc_channel.hpp"
#include "runtime/spsc_ring.hpp"
#include "stat4p4/apps.hpp"

namespace runtime {

class FleetRunner {
 public:
  enum class Policy : std::uint8_t {
    kDrop,   ///< full ring: drop the packet, count it (switch under load)
    kBlock,  ///< full ring: backpressure-spin (lossless replay)
  };

  struct Config {
    std::size_t queue_capacity = 1024;  ///< per-switch ingress ring, packets
    Policy policy = Policy::kDrop;
    /// Max packets a worker drains from its ring per wakeup (one ring
    /// handshake per burst; the reused SwitchOutput keeps allocations off
    /// the per-packet path).  1 degenerates to per-packet popping.
    std::size_t drain_burst = 64;
    /// Execution tier applied to every switch at add_switch() (see
    /// p4sim/exec_tier.hpp).  Default: threaded, or STAT4_EXEC_TIER.
    p4sim::ExecTier exec_tier = p4sim::default_exec_tier();
  };

  struct Counters {
    std::uint64_t sent = 0;       ///< inject() calls (accepted + dropped)
    std::uint64_t delivered = 0;  ///< packets processed by the switch
    std::uint64_t dropped = 0;    ///< shed at a full or closed ring
    std::uint64_t digests = 0;    ///< digests the switch emitted
  };

  FleetRunner() = default;
  explicit FleetRunner(Config cfg) : cfg_(cfg) {}
  ~FleetRunner();

  FleetRunner(const FleetRunner&) = delete;
  FleetRunner& operator=(const FleetRunner&) = delete;

  /// Register a switch; `sw` must outlive the runner.  All switches must be
  /// registered before start().  Any P4Switch works — MonitorApp, EchoApp
  /// and the sketch apps all run under the same worker/ring/digest plumbing.
  control::SwitchId add_switch(p4sim::P4Switch& sw);
  control::SwitchId add_switch(stat4p4::MonitorApp& app) {
    return add_switch(app.sw());
  }

  [[nodiscard]] std::size_t switch_count() const noexcept {
    return switches_.size();
  }

  /// Tagged digests go to the sink on the thread that calls poll_digests()/
  /// flush()/stop()/drain_into() — never on a worker thread.
  void set_digest_sink(
      std::function<void(control::SwitchId, const p4sim::Digest&)> sink) {
    digest_sink_ = std::move(sink);
  }

  void start();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Enqueue one packet for `sw` (exactly one producer thread per switch).
  /// Returns false — and counts a drop — when the ring is full under
  /// Policy::kDrop, or when the switch's input was already closed.
  bool inject(control::SwitchId sw, p4sim::Packet pkt);

  /// Cooperative-stop flag for producer threads.
  void request_stop() noexcept {
    stop_requested_.store(true, std::memory_order_release);
  }
  [[nodiscard]] bool stop_requested() const noexcept {
    return stop_requested_.load(std::memory_order_acquire);
  }

  /// End-of-stream for one switch; called by that switch's producer as its
  /// last action.  Idempotent.
  void close_input(control::SwitchId sw);

  /// Deliver queued digests to the sink; returns how many.  Single-consumer:
  /// call from one (control) thread only.  With no sink installed this is a
  /// no-op — digests stay queued for drain_into() rather than being
  /// silently discarded.
  std::size_t poll_digests();

  /// Barrier: all packets injected so far are processed and their digests
  /// queued.  Delivery is separate — follow with poll_digests() (sink, in
  /// arrival order) or drain_into() (correlator, in time order).  Only
  /// meaningful from the (sole) producer thread, whose own counters define
  /// "so far".
  void flush();

  /// Close every input, join all workers, deliver remaining digests.
  /// Producers must have stopped injecting (inject() after close is a
  /// counted drop, so a straggler cannot corrupt the accounting).
  void stop();

  /// Drain pending digests — sorted by switch-side timestamp, the order the
  /// controller would see them in — into a correlator.  Does not flush().
  void drain_into(control::FleetCorrelator& correlator);

  /// Live snapshot, safe from ANY thread while the fleet runs (the
  /// telemetry Reporter polls this).  Each field is exact; the four reads
  /// are not one atomic cut, but the read order guarantees the weak
  /// invariant  delivered + dropped <= sent  at every instant, with
  /// equality whenever the lane is quiescent (e.g. behind flush()).
  [[nodiscard]] Counters counters(control::SwitchId sw) const;
  [[nodiscard]] Counters totals() const;

 private:
  struct SwitchLane {
    p4sim::P4Switch* sw = nullptr;
    std::unique_ptr<SpscRing<p4sim::Packet>> ring;
    std::thread worker;
    // sent/dropped have one writer (the lane's producer) but concurrent
    // readers; release stores + acquire loads give counters() its ordering
    // guarantee (sent is bumped before a packet is pushed or dropped, so a
    // reader that sees the effect also sees the cause).
    alignas(64) std::atomic<std::uint64_t> sent{0};
    alignas(64) std::atomic<std::uint64_t> dropped{0};
    alignas(64) std::atomic<std::uint64_t> delivered{0};
    alignas(64) std::atomic<std::uint64_t> digests{0};
  };

  struct TaggedDigest {
    control::SwitchId sw = 0;
    p4sim::Digest digest;
    std::uint64_t emit_ns = 0;  ///< telemetry::now_ns() at worker emit
  };

  void worker_loop(control::SwitchId id, SwitchLane& lane);
  /// Feeds the emit-to-dequeue histogram from a freshly drained batch.
  static void record_digest_latency(const std::vector<TaggedDigest>& batch);

  Config cfg_{};
  std::vector<std::unique_ptr<SwitchLane>> switches_;
  MpscChannel<TaggedDigest> digest_channel_;
  std::function<void(control::SwitchId, const p4sim::Digest&)> digest_sink_;
  std::atomic<bool> stop_requested_{false};
  bool running_ = false;
};

}  // namespace runtime

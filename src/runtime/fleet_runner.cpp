#include "runtime/fleet_runner.hpp"

#include <algorithm>

#include "p4sim/switch.hpp"
#include "telemetry/telemetry.hpp"

namespace runtime {

namespace {

// Fleet-level metric handles, resolved once (aggregated over every
// FleetRunner instance in the process).
struct FleetMetrics {
  telemetry::Counter& injected;
  telemetry::Counter& delivered;
  telemetry::Counter& dropped;
  telemetry::Counter& digests;
  telemetry::Counter& parks;
  telemetry::Counter& wakes;
  telemetry::Histogram& ring_occupancy;
  telemetry::Histogram& block_stall_ns;
  telemetry::Histogram& digest_latency_ns;

  static FleetMetrics& get() {
    static FleetMetrics m{
        telemetry::MetricsRegistry::global().counter(
            "runtime.fleet.injected"),
        telemetry::MetricsRegistry::global().counter(
            "runtime.fleet.delivered"),
        telemetry::MetricsRegistry::global().counter(
            "runtime.fleet.dropped"),
        telemetry::MetricsRegistry::global().counter(
            "runtime.fleet.digests"),
        telemetry::MetricsRegistry::global().counter(
            "runtime.fleet.parks"),
        telemetry::MetricsRegistry::global().counter(
            "runtime.fleet.wakes"),
        telemetry::MetricsRegistry::global().histogram(
            "runtime.fleet.ring_occupancy"),
        telemetry::MetricsRegistry::global().histogram(
            "runtime.fleet.block_stall_ns"),
        telemetry::MetricsRegistry::global().histogram(
            "runtime.fleet.digest_latency_ns")};
    return m;
  }
};

}  // namespace

FleetRunner::~FleetRunner() {
  if (running_) stop();
}

control::SwitchId FleetRunner::add_switch(p4sim::P4Switch& sw) {
  if (running_) {
    throw stat4::UsageError("runtime: cannot add a switch while running");
  }
  sw.set_exec_tier(cfg_.exec_tier);
  auto lane = std::make_unique<SwitchLane>();
  lane->sw = &sw;
  lane->ring = std::make_unique<SpscRing<p4sim::Packet>>(cfg_.queue_capacity);
  switches_.push_back(std::move(lane));
  return static_cast<control::SwitchId>(switches_.size() - 1);
}

void FleetRunner::worker_loop(control::SwitchId id, SwitchLane& lane) {
  // Packets are drained in bursts (one ring handshake per burst) and run
  // through process_into() with ONE SwitchOutput whose vectors are reused
  // across the whole lane lifetime — no per-packet allocation.  The lane
  // atomics (delivered, digests) are the accounting source of truth and
  // are bumped per packet; the process-wide telemetry counters are a
  // redundant aggregate, so they batch locally and flush at burst
  // boundaries to keep extra shared-line RMWs off the per-packet path.
  //
  // Idle policy is spin -> yield -> park (SpinPolicy): an idle lane parks
  // on its ring instead of burning a spin loop, and inject()/close_input()
  // wake it.
  STAT4_TELEMETRY_ONLY(
      auto& metrics = FleetMetrics::get();
      std::uint64_t t_delivered = 0;
      std::uint64_t t_digests = 0;)
  std::vector<p4sim::Packet> burst;
  burst.reserve(cfg_.drain_burst);
  p4sim::SwitchOutput out;
  unsigned idle = 0;
  while (true) {
    burst.clear();
    const std::size_t n = lane.ring->pop_burst(burst, cfg_.drain_burst);
    if (n != 0) {
      for (std::size_t b = 0; b < n; ++b) {
        lane.sw->process_into(std::move(burst[b]), out);
        for (auto& digest : out.digests) {
          TaggedDigest td{id, std::move(digest), 0};
          // Emit timestamp feeds the emit-to-controller-dequeue latency
          // histogram; the controller side stamps the dequeue.
          STAT4_TELEMETRY_ONLY(td.emit_ns = telemetry::now_ns();
                               ++t_digests;)
          digest_channel_.push(std::move(td));
          lane.digests.fetch_add(1, std::memory_order_relaxed);
        }
        // Release-publish the processed count last, so a flush() observing
        // it also observes the register state and the queued digests.
        lane.delivered.fetch_add(1, std::memory_order_release);
        STAT4_TELEMETRY_ONLY(++t_delivered;)
      }
      STAT4_TELEMETRY_ONLY(
          metrics.delivered.add(t_delivered); t_delivered = 0;
          if (t_digests != 0) {
            metrics.digests.add(t_digests);
            t_digests = 0;
          })
      idle = 0;
      continue;
    }
    if (lane.ring->closed() && lane.ring->empty()) return;
    if (idle < SpinPolicy::kSpins) {
      ++idle;
    } else if (idle < SpinPolicy::kSpins + SpinPolicy::kYields) {
      ++idle;
      std::this_thread::yield();
    } else {
      STAT4_TELEMETRY_ONLY(
          const std::uint64_t t_before = lane.ring->consumer_parks();)
      lane.ring->consumer_park();
      STAT4_TELEMETRY_ONLY(
          const std::uint64_t t_entered =
              lane.ring->consumer_parks() - t_before;
          if (t_entered != 0) {
            metrics.parks.add(t_entered);
            metrics.wakes.add(t_entered);
          })
      idle = 0;
    }
  }
}

void FleetRunner::start() {
  if (running_) throw stat4::UsageError("runtime: fleet already running");
  if (switches_.empty()) {
    throw stat4::UsageError("runtime: no switches registered");
  }
  stop_requested_.store(false, std::memory_order_relaxed);
  for (auto& lane : switches_) {
    lane->ring = std::make_unique<SpscRing<p4sim::Packet>>(cfg_.queue_capacity);
    lane->sent.store(0, std::memory_order_relaxed);
    lane->dropped.store(0, std::memory_order_relaxed);
    lane->delivered.store(0, std::memory_order_relaxed);
    lane->digests.store(0, std::memory_order_relaxed);
  }
  running_ = true;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    SwitchLane* lane = switches_[i].get();
    switches_[i]->worker =
        std::thread([this, i, lane] {
          worker_loop(static_cast<control::SwitchId>(i), *lane);
        });
  }
}

bool FleetRunner::inject(control::SwitchId sw, p4sim::Packet pkt) {
  auto& metrics = FleetMetrics::get();
  SwitchLane& lane = *switches_.at(sw);
  // `sent` is released BEFORE the push/drop so any observer of a delivery
  // or a drop also observes the send that caused it (see counters()).
  lane.sent.fetch_add(1, std::memory_order_release);
  metrics.injected.add();
  // thread_local gate: producers may inject concurrently on different
  // lanes, and a shared gate atomic would bounce between their caches.
  STAT4_TELEMETRY_ONLY(
      static thread_local telemetry::SampleGate t_occupancy_gate;
      if (t_occupancy_gate.fire(64)) {
        metrics.ring_occupancy.record(lane.ring->size());
      })
  if (lane.ring->closed()) {
    lane.dropped.fetch_add(1, std::memory_order_release);
    metrics.dropped.add();
    return false;
  }
  if (cfg_.policy == Policy::kBlock) {
    STAT4_TELEMETRY_ONLY(
        // Time the stall only when the ring looks full — rare, and exactly
        // the event worth tracing; the unstalled path stays clock-free.
        if (lane.ring->size() >= lane.ring->capacity()) {
          telemetry::SpanTimer t_span(metrics.block_stall_ns);
          lane.ring->push_blocking(std::move(pkt));
          return true;
        })
    lane.ring->push_blocking(std::move(pkt));
    return true;
  }
  if (!lane.ring->try_push(std::move(pkt))) {
    lane.dropped.fetch_add(1, std::memory_order_release);
    metrics.dropped.add();
    return false;
  }
  return true;
}

void FleetRunner::close_input(control::SwitchId sw) {
  switches_.at(sw)->ring->close();
}

std::size_t FleetRunner::poll_digests() {
  // With no sink installed, digests stay queued — never silently discarded —
  // so a later drain_into() still sees them.
  if (!digest_sink_) return 0;
  std::vector<TaggedDigest> pending;
  digest_channel_.drain(pending);
  STAT4_TELEMETRY_ONLY(record_digest_latency(pending);)
  for (const auto& td : pending) digest_sink_(td.sw, td.digest);
  return pending.size();
}

void FleetRunner::flush() {
  if (!running_) return;
  STAT4_TELEMETRY_ONLY(
      static telemetry::Histogram& t_flush =
          telemetry::MetricsRegistry::global().histogram(
              "runtime.fleet.flush_ns");
      telemetry::SpanTimer t_span(t_flush);)
  Backoff backoff;
  for (auto& lane : switches_) {
    const std::uint64_t accepted =
        lane->sent.load(std::memory_order_relaxed) -
        lane->dropped.load(std::memory_order_relaxed);
    while (lane->delivered.load(std::memory_order_acquire) < accepted) {
      backoff.pause();
    }
    backoff.reset();
  }
}

void FleetRunner::stop() {
  if (!running_) return;
  for (auto& lane : switches_) lane->ring->close();
  for (auto& lane : switches_) {
    if (lane->worker.joinable()) lane->worker.join();
  }
  running_ = false;
  poll_digests();
}

void FleetRunner::drain_into(control::FleetCorrelator& correlator) {
  std::vector<TaggedDigest> pending;
  digest_channel_.drain(pending);
  STAT4_TELEMETRY_ONLY(record_digest_latency(pending);)
  // Controller-side ordering: digests carry switch-side timestamps, and the
  // correlator's event-completion rule assumes it sees them in time order.
  std::stable_sort(pending.begin(), pending.end(),
                   [](const TaggedDigest& a, const TaggedDigest& b) {
                     return a.digest.time < b.digest.time;
                   });
  for (const auto& td : pending) {
    if (digest_sink_) digest_sink_(td.sw, td.digest);
    correlator.ingest(td.sw, td.digest);
  }
}

void FleetRunner::record_digest_latency(
    const std::vector<TaggedDigest>& batch) {
  if (batch.empty()) return;
  auto& metrics = FleetMetrics::get();
  const std::uint64_t now = telemetry::now_ns();
  for (const auto& td : batch) {
    metrics.digest_latency_ns.record(now - td.emit_ns);
  }
}

FleetRunner::Counters FleetRunner::counters(control::SwitchId sw) const {
  const SwitchLane& lane = *switches_.at(sw);
  Counters c;
  // Read order matters for the live invariant: delivered and dropped are
  // read BEFORE sent.  Every delivered packet's sent-increment
  // happens-before its delivered-increment (send -> ring push-release ->
  // pop-acquire -> delivered-release), and every drop's sent-increment
  // precedes its dropped-release; acquiring those counts first therefore
  // guarantees the later sent read covers all of them:
  //   delivered + dropped <= sent   at every instant, from any thread.
  c.digests = lane.digests.load(std::memory_order_acquire);
  c.delivered = lane.delivered.load(std::memory_order_acquire);
  c.dropped = lane.dropped.load(std::memory_order_acquire);
  c.sent = lane.sent.load(std::memory_order_acquire);
  return c;
}

FleetRunner::Counters FleetRunner::totals() const {
  Counters total;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    const Counters c = counters(static_cast<control::SwitchId>(i));
    total.sent += c.sent;
    total.delivered += c.delivered;
    total.dropped += c.dropped;
    total.digests += c.digests;
  }
  return total;
}

}  // namespace runtime

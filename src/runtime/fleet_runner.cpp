#include "runtime/fleet_runner.hpp"

#include <algorithm>

#include "p4sim/switch.hpp"

namespace runtime {

FleetRunner::~FleetRunner() {
  if (running_) stop();
}

control::SwitchId FleetRunner::add_switch(stat4p4::MonitorApp& app) {
  if (running_) {
    throw stat4::UsageError("runtime: cannot add a switch while running");
  }
  auto lane = std::make_unique<SwitchLane>();
  lane->app = &app;
  lane->ring = std::make_unique<SpscRing<p4sim::Packet>>(cfg_.queue_capacity);
  switches_.push_back(std::move(lane));
  return static_cast<control::SwitchId>(switches_.size() - 1);
}

void FleetRunner::worker_loop(control::SwitchId id, SwitchLane& lane) {
  Backoff backoff;
  p4sim::Packet pkt;
  while (true) {
    bool did_work = false;
    while (lane.ring->try_pop(pkt)) {
      did_work = true;
      auto out = lane.app->sw().process(std::move(pkt));
      for (auto& digest : out.digests) {
        digest_channel_.push({id, std::move(digest)});
        lane.digests.fetch_add(1, std::memory_order_relaxed);
      }
      // Release-publish the processed count last, so a flush() observing it
      // also observes the register state and the queued digests.
      lane.delivered.fetch_add(1, std::memory_order_release);
    }
    if (did_work) {
      backoff.reset();
      continue;
    }
    if (lane.ring->closed() && lane.ring->empty()) return;
    backoff.pause();
  }
}

void FleetRunner::start() {
  if (running_) throw stat4::UsageError("runtime: fleet already running");
  if (switches_.empty()) {
    throw stat4::UsageError("runtime: no switches registered");
  }
  stop_requested_.store(false, std::memory_order_relaxed);
  for (auto& lane : switches_) {
    lane->ring = std::make_unique<SpscRing<p4sim::Packet>>(cfg_.queue_capacity);
    lane->sent = 0;
    lane->dropped = 0;
    lane->delivered.store(0, std::memory_order_relaxed);
    lane->digests.store(0, std::memory_order_relaxed);
  }
  running_ = true;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    SwitchLane* lane = switches_[i].get();
    switches_[i]->worker =
        std::thread([this, i, lane] {
          worker_loop(static_cast<control::SwitchId>(i), *lane);
        });
  }
}

bool FleetRunner::inject(control::SwitchId sw, p4sim::Packet pkt) {
  SwitchLane& lane = *switches_.at(sw);
  ++lane.sent;
  if (lane.ring->closed()) {
    ++lane.dropped;
    return false;
  }
  if (cfg_.policy == Policy::kBlock) {
    lane.ring->push_blocking(std::move(pkt));
    return true;
  }
  if (!lane.ring->try_push(std::move(pkt))) {
    ++lane.dropped;
    return false;
  }
  return true;
}

void FleetRunner::close_input(control::SwitchId sw) {
  switches_.at(sw)->ring->close();
}

std::size_t FleetRunner::poll_digests() {
  // With no sink installed, digests stay queued — never silently discarded —
  // so a later drain_into() still sees them.
  if (!digest_sink_) return 0;
  std::vector<TaggedDigest> pending;
  digest_channel_.drain(pending);
  for (const auto& td : pending) digest_sink_(td.sw, td.digest);
  return pending.size();
}

void FleetRunner::flush() {
  if (!running_) return;
  Backoff backoff;
  for (auto& lane : switches_) {
    const std::uint64_t accepted = lane->sent - lane->dropped;
    while (lane->delivered.load(std::memory_order_acquire) < accepted) {
      backoff.pause();
    }
    backoff.reset();
  }
}

void FleetRunner::stop() {
  if (!running_) return;
  for (auto& lane : switches_) lane->ring->close();
  for (auto& lane : switches_) {
    if (lane->worker.joinable()) lane->worker.join();
  }
  running_ = false;
  poll_digests();
}

void FleetRunner::drain_into(control::FleetCorrelator& correlator) {
  std::vector<TaggedDigest> pending;
  digest_channel_.drain(pending);
  // Controller-side ordering: digests carry switch-side timestamps, and the
  // correlator's event-completion rule assumes it sees them in time order.
  std::stable_sort(pending.begin(), pending.end(),
                   [](const TaggedDigest& a, const TaggedDigest& b) {
                     return a.digest.time < b.digest.time;
                   });
  for (const auto& td : pending) {
    if (digest_sink_) digest_sink_(td.sw, td.digest);
    correlator.ingest(td.sw, td.digest);
  }
}

FleetRunner::Counters FleetRunner::counters(control::SwitchId sw) const {
  const SwitchLane& lane = *switches_.at(sw);
  Counters c;
  c.sent = lane.sent;
  c.delivered = lane.delivered.load(std::memory_order_acquire);
  c.dropped = lane.dropped;
  c.digests = lane.digests.load(std::memory_order_acquire);
  return c;
}

FleetRunner::Counters FleetRunner::totals() const {
  Counters total;
  for (std::size_t i = 0; i < switches_.size(); ++i) {
    const Counters c = counters(static_cast<control::SwitchId>(i));
    total.sent += c.sent;
    total.delivered += c.delivered;
    total.dropped += c.dropped;
    total.digests += c.digests;
  }
  return total;
}

}  // namespace runtime

// ShardedEngine: the Stat4Engine partitioned across worker threads.
//
// The paper's pipeline parallelism comes for free in hardware: every P4
// stage owns its register arrays exclusively, so distributions in different
// stages never contend.  ShardedEngine reproduces that ownership model in
// software: each distribution is assigned to exactly one shard at creation,
// each shard is a private single-threaded Stat4Engine, and a packet is
// delivered to every shard, where only the bindings whose distributions the
// shard owns are walked.  Total binding work across shards therefore equals
// the single-threaded engine's work, but it proceeds in parallel with no
// locks on the packet path (per-shard SPSC rings; see spsc_ring.hpp).
//
// Equivalence guarantee: for any shard count, after flush() the per-
// distribution statistics are bit-identical to a single Stat4Engine fed the
// same packet sequence, and the alert multiset (ignoring the sequence
// number, which reflects cross-shard arrival order) is identical — each
// distribution sees exactly the packet subsequence that matches its
// bindings, in order, because a shard's ring is FIFO and a distribution
// never spans shards.  tests/sharded_differential_test.cpp enforces this.
//
// Threading modes:
//   * synchronous (default): process()/advance_time() run all shards inline
//     on the calling thread — same semantics, zero threads;
//   * threaded: start() spawns one worker per shard; submit()/
//     submit_advance() enqueue (single producer thread!), flush() is a
//     barrier after which statistics may be read, stop() flushes and joins.
//
// Batched ingestion (the hot path): submit() appends to a producer-side
// staging buffer; every batch_size ops the whole batch is burst-pushed to
// each shard's ring under one acquire/release pair per shard, and workers
// drain whole bursts into Stat4Engine::process_batch().  Order within the
// single producer is preserved, so the equivalence guarantee is unchanged.
// flush()/stop() first drain the staging buffer, so callers never see a
// partial batch.  batch_size = 1 degenerates to the per-packet pipeline.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <vector>

#include "runtime/mpsc_channel.hpp"
#include "runtime/spsc_ring.hpp"
#include "stat4/engine.hpp"

namespace runtime {

class ShardedEngine {
 public:
  explicit ShardedEngine(std::size_t shards,
                         stat4::OverflowPolicy policy =
                             stat4::OverflowPolicy::kThrow,
                         std::size_t queue_capacity = 4096,
                         std::size_t batch_size = kDefaultBatchSize);
  ~ShardedEngine();

  /// Ops staged per producer-side batch before a burst enqueue (and the
  /// max ops a worker drains per wakeup).  256 amortizes the ring handshake
  /// to noise while keeping worst-case added latency one batch deep.
  static constexpr std::size_t kDefaultBatchSize = 256;

  /// Change the ingestion batch size.  Call while stopped (the producer
  /// staging buffer and the worker drain loops both read it).
  void set_batch_size(std::size_t batch_size);
  [[nodiscard]] std::size_t batch_size() const noexcept {
    return batch_size_;
  }

  ShardedEngine(const ShardedEngine&) = delete;
  ShardedEngine& operator=(const ShardedEngine&) = delete;

  // --- distribution management (global DistId space) -----------------------
  // Mirrors Stat4Engine; ids are round-robin assigned to shards.
  stat4::DistId add_freq_dist(std::size_t domain_size);
  stat4::DistId add_sliding_freq_dist(std::size_t domain_size,
                                      std::size_t window);
  stat4::DistId add_interval_window(std::size_t num_intervals,
                                    stat4::TimeNs interval_len,
                                    unsigned k_sigma = 2);
  stat4::DistId add_value_stats();

  void enable_spike_check(stat4::DistId id, std::size_t min_history = 8);
  void enable_stall_check(stat4::DistId id, std::size_t min_history = 8);
  void enable_value_outlier_check(stat4::DistId id, stat4::Count min_n = 32);
  void enable_imbalance_check(stat4::DistId id, stat4::Count min_total = 32);
  void rearm(stat4::DistId id);

  /// The binding's entry.dist is a *global* id; it is rewritten to the
  /// owning shard's local id internally.
  stat4::BindingId add_binding(const stat4::BindingEntry& entry);

  // --- introspection (requires flush() first in threaded mode) -------------
  [[nodiscard]] const stat4::FreqDist& freq(stat4::DistId id) const;
  [[nodiscard]] const stat4::SlidingFreqDist& sliding(stat4::DistId id) const;
  [[nodiscard]] const stat4::IntervalWindow& window(stat4::DistId id) const;
  [[nodiscard]] const stat4::RunningStats& values(stat4::DistId id) const;
  [[nodiscard]] stat4::FreqDist& freq(stat4::DistId id);

  [[nodiscard]] std::size_t shard_count() const noexcept {
    return shards_.size();
  }
  [[nodiscard]] std::size_t shard_of(stat4::DistId id) const;
  [[nodiscard]] std::size_t distribution_count() const noexcept {
    return dist_map_.size();
  }
  [[nodiscard]] std::uint64_t alerts_emitted() const noexcept {
    return alert_seq_.load(std::memory_order_acquire);
  }

  /// Alerts carry global dist ids.  In threaded mode the sink runs on the
  /// flush()/stop() caller's thread; in synchronous mode, inline.
  void set_alert_sink(std::function<void(const stat4::Alert&)> sink) {
    alert_sink_ = std::move(sink);
  }

  // --- synchronous data path ------------------------------------------------
  void process(const stat4::PacketFields& pkt);
  void advance_time(stat4::TimeNs now);

  // --- threaded data path ---------------------------------------------------
  /// Spawns one worker thread per shard.  After start(), use submit*() from
  /// ONE producer thread only (the rings are SPSC).
  void start();
  [[nodiscard]] bool running() const noexcept { return running_; }

  /// Enqueue a packet to every shard (staged; becomes visible to workers at
  /// the next batch boundary or flush()).  Lossless: backpressure-parks
  /// when a shard's ring is full (the engine must not drop, or it would
  /// diverge from the single-threaded reference).  Park episodes are
  /// counted so callers can observe backpressure.
  void submit(const stat4::PacketFields& pkt);
  void submit_advance(stat4::TimeNs now);

  /// Barrier: returns once every enqueued operation has been processed, and
  /// drains pending alerts to the sink.  Establishes the happens-before edge
  /// that makes the introspection accessors safe to call.
  void flush();

  /// flush(), then join all workers.  The engine returns to synchronous
  /// mode and may be start()ed again.
  void stop();

  /// Times a batch enqueue found a shard ring full and had to
  /// backpressure-wait (spin/yield/park) for the worker to drain it.
  [[nodiscard]] std::uint64_t backpressure_waits() const noexcept {
    return backpressure_waits_.load(std::memory_order_relaxed);
  }

 private:
  struct Op {
    stat4::PacketFields pkt{};
    stat4::TimeNs advance_to = -1;  ///< >= 0: advance_time op, pkt unused
  };

  struct Shard {
    std::unique_ptr<stat4::Stat4Engine> engine;
    std::unique_ptr<SpscRing<Op>> ring;
    std::vector<stat4::DistId> global_of_local;  ///< local DistId -> global
    std::thread worker;
    std::uint64_t accepted = 0;                   ///< producer-side op count
    alignas(64) std::atomic<std::uint64_t> processed{0};
  };

  struct DistRef {
    std::size_t shard = 0;
    stat4::DistId local = 0;
  };

  stat4::Stat4Engine& engine_of(stat4::DistId id);
  const stat4::Stat4Engine& engine_of(stat4::DistId id) const;
  [[nodiscard]] const DistRef& ref(stat4::DistId id) const;
  stat4::DistId register_dist(std::size_t shard, stat4::DistId local);
  void enqueue(const Op& op);
  /// Burst-push the staged ops to every shard (one ring handshake per
  /// shard), parking on backpressure.  No-op when nothing is staged.
  void flush_staged();
  void worker_loop(Shard& shard);
  void drain_alerts();

  std::vector<std::unique_ptr<Shard>> shards_;
  std::vector<DistRef> dist_map_;  ///< global DistId -> (shard, local)
  std::size_t next_shard_ = 0;     ///< round-robin distribution placement
  std::function<void(const stat4::Alert&)> alert_sink_;
  MpscChannel<stat4::Alert> alert_channel_;
  std::atomic<std::uint64_t> alert_seq_{0};
  std::size_t queue_capacity_;
  std::size_t batch_size_;
  std::vector<Op> staged_;  ///< producer-side staging buffer (see submit())
  bool running_ = false;
  std::atomic<std::uint64_t> backpressure_waits_{0};
  // Telemetry sampling tick for enqueue() (plain: single producer thread
  // by contract; dead in telemetry-off builds).
  std::uint32_t t_enqueue_tick_ = 0;
};

}  // namespace runtime

#include "runtime/sharded_engine.hpp"

#include <utility>

#include "telemetry/telemetry.hpp"

namespace runtime {

ShardedEngine::ShardedEngine(std::size_t shards, stat4::OverflowPolicy policy,
                             std::size_t queue_capacity, std::size_t batch_size)
    : queue_capacity_(queue_capacity) {
  if (shards == 0) throw stat4::UsageError("runtime: shard count must be > 0");
  set_batch_size(batch_size);
  shards_.reserve(shards);
  for (std::size_t s = 0; s < shards; ++s) {
    auto shard = std::make_unique<Shard>();
    shard->engine = std::make_unique<stat4::Stat4Engine>(policy);
    shard->ring = std::make_unique<SpscRing<Op>>(queue_capacity_);
    // Each shard engine reports through one sink installed once, here: the
    // lambda translates local dist ids to global ones and routes the alert
    // either inline (synchronous mode) or through the MPSC channel (worker
    // thread -> flush()-calling thread).
    Shard* sp = shard.get();
    shard->engine->set_alert_sink([this, sp](const stat4::Alert& a) {
      stat4::Alert global = a;
      global.dist = sp->global_of_local[a.dist];
      global.seq = alert_seq_.fetch_add(1, std::memory_order_acq_rel);
      if (running_) {
        alert_channel_.push(global);
      } else if (alert_sink_) {
        alert_sink_(global);
      }
    });
    shards_.push_back(std::move(shard));
  }
}

ShardedEngine::~ShardedEngine() {
  if (running_) stop();
}

void ShardedEngine::set_batch_size(std::size_t batch_size) {
  if (batch_size == 0) {
    throw stat4::UsageError("runtime: batch size must be > 0");
  }
  if (running_) {
    throw stat4::UsageError(
        "runtime: set_batch_size() requires stopped workers");
  }
  batch_size_ = batch_size;
  staged_.reserve(batch_size_);
}

stat4::DistId ShardedEngine::register_dist(std::size_t shard,
                                           stat4::DistId local) {
  shards_[shard]->global_of_local.push_back(
      static_cast<stat4::DistId>(dist_map_.size()));
  dist_map_.push_back({shard, local});
  next_shard_ = (shard + 1) % shards_.size();
  return static_cast<stat4::DistId>(dist_map_.size() - 1);
}

stat4::DistId ShardedEngine::add_freq_dist(std::size_t domain_size) {
  const std::size_t s = next_shard_;
  return register_dist(s, shards_[s]->engine->add_freq_dist(domain_size));
}

stat4::DistId ShardedEngine::add_sliding_freq_dist(std::size_t domain_size,
                                                   std::size_t window) {
  const std::size_t s = next_shard_;
  return register_dist(
      s, shards_[s]->engine->add_sliding_freq_dist(domain_size, window));
}

stat4::DistId ShardedEngine::add_interval_window(std::size_t num_intervals,
                                                 stat4::TimeNs interval_len,
                                                 unsigned k_sigma) {
  const std::size_t s = next_shard_;
  return register_dist(s, shards_[s]->engine->add_interval_window(
                              num_intervals, interval_len, k_sigma));
}

stat4::DistId ShardedEngine::add_value_stats() {
  const std::size_t s = next_shard_;
  return register_dist(s, shards_[s]->engine->add_value_stats());
}

const ShardedEngine::DistRef& ShardedEngine::ref(stat4::DistId id) const {
  if (id >= dist_map_.size()) {
    throw stat4::UsageError("runtime: unknown distribution id");
  }
  return dist_map_[id];
}

stat4::Stat4Engine& ShardedEngine::engine_of(stat4::DistId id) {
  return *shards_[ref(id).shard]->engine;
}

const stat4::Stat4Engine& ShardedEngine::engine_of(stat4::DistId id) const {
  return *shards_[ref(id).shard]->engine;
}

std::size_t ShardedEngine::shard_of(stat4::DistId id) const {
  return ref(id).shard;
}

void ShardedEngine::enable_spike_check(stat4::DistId id,
                                       std::size_t min_history) {
  engine_of(id).enable_spike_check(ref(id).local, min_history);
}

void ShardedEngine::enable_stall_check(stat4::DistId id,
                                       std::size_t min_history) {
  engine_of(id).enable_stall_check(ref(id).local, min_history);
}

void ShardedEngine::enable_value_outlier_check(stat4::DistId id,
                                               stat4::Count min_n) {
  engine_of(id).enable_value_outlier_check(ref(id).local, min_n);
}

void ShardedEngine::enable_imbalance_check(stat4::DistId id,
                                           stat4::Count min_total) {
  engine_of(id).enable_imbalance_check(ref(id).local, min_total);
}

void ShardedEngine::rearm(stat4::DistId id) {
  engine_of(id).rearm(ref(id).local);
}

stat4::BindingId ShardedEngine::add_binding(const stat4::BindingEntry& entry) {
  const DistRef& r = ref(entry.dist);
  stat4::BindingEntry local = entry;
  local.dist = r.local;
  return shards_[r.shard]->engine->add_binding(local);
}

const stat4::FreqDist& ShardedEngine::freq(stat4::DistId id) const {
  return engine_of(id).freq(ref(id).local);
}
stat4::FreqDist& ShardedEngine::freq(stat4::DistId id) {
  return engine_of(id).freq(ref(id).local);
}
const stat4::SlidingFreqDist& ShardedEngine::sliding(stat4::DistId id) const {
  return engine_of(id).sliding(ref(id).local);
}
const stat4::IntervalWindow& ShardedEngine::window(stat4::DistId id) const {
  return engine_of(id).window(ref(id).local);
}
const stat4::RunningStats& ShardedEngine::values(stat4::DistId id) const {
  return engine_of(id).values(ref(id).local);
}

// ------------------------------------------------------- synchronous path

void ShardedEngine::process(const stat4::PacketFields& pkt) {
  if (running_) {
    throw stat4::UsageError(
        "runtime: use submit(), not process(), while workers run");
  }
  for (auto& shard : shards_) shard->engine->process(pkt);
}

void ShardedEngine::advance_time(stat4::TimeNs now) {
  if (running_) {
    throw stat4::UsageError(
        "runtime: use submit_advance() while workers run");
  }
  for (auto& shard : shards_) shard->engine->advance_time(now);
}

// ---------------------------------------------------------- threaded path

void ShardedEngine::worker_loop(Shard& shard) {
  // The drain loop pops whole bursts (one ring handshake each), segments
  // them into contiguous packet runs fed to Stat4Engine::process_batch(),
  // and publishes `processed` once per burst.  Telemetry is batched in
  // locals and flushed at burst boundaries: a per-op atomic RMW from every
  // worker measurably slows the pipeline it is observing.
  //
  // Idle policy is spin -> yield -> park (SpinPolicy): the old pure spin
  // burned 44k+ `idle_spins` per quiet period; now an idle worker parks on
  // the ring after ~144 polls and costs the scheduler nothing until the
  // producer publishes or closes.
  STAT4_TELEMETRY_ONLY(
      static telemetry::Counter& t_ops =
          telemetry::MetricsRegistry::global().counter("runtime.shard.ops");
      static telemetry::Counter& t_idle_spins =
          telemetry::MetricsRegistry::global().counter(
              "runtime.shard.idle_spins");
      static telemetry::Counter& t_parks =
          telemetry::MetricsRegistry::global().counter("runtime.shard.parks");
      static telemetry::Counter& t_wakes =
          telemetry::MetricsRegistry::global().counter("runtime.shard.wakes");
      static telemetry::Histogram& t_burst =
          telemetry::MetricsRegistry::global().histogram(
              "runtime.shard.drain_burst");
      std::uint64_t t_local_spins = 0;)
  std::vector<Op> burst;
  burst.reserve(batch_size_);
  std::vector<stat4::PacketFields> pkts;
  pkts.reserve(batch_size_);
  unsigned idle = 0;
  while (true) {
    burst.clear();
    const std::size_t n = shard.ring->pop_burst(burst, batch_size_);
    if (n != 0) {
      STAT4_TELEMETRY_ONLY(
          t_ops.add(n); t_burst.record(n);
          if (t_local_spins != 0) {
            t_idle_spins.add(t_local_spins);
            t_local_spins = 0;
          })
      std::size_t i = 0;
      while (i < n) {
        if (burst[i].advance_to >= 0) {
          shard.engine->advance_time(burst[i].advance_to);
          ++i;
          continue;
        }
        pkts.clear();
        while (i < n && burst[i].advance_to < 0) pkts.push_back(burst[i++].pkt);
        shard.engine->process_batch(pkts.data(), pkts.size());
      }
      // Release so a flush() that observes the new count also observes all
      // register state written while processing.
      shard.processed.fetch_add(n, std::memory_order_release);
      idle = 0;
      continue;
    }
    if (shard.ring->closed() && shard.ring->empty()) {
      STAT4_TELEMETRY_ONLY(
          if (t_local_spins != 0) t_idle_spins.add(t_local_spins);)
      return;
    }
    if (idle < SpinPolicy::kSpins) {
      ++idle;
      STAT4_TELEMETRY_ONLY(++t_local_spins;)
    } else if (idle < SpinPolicy::kSpins + SpinPolicy::kYields) {
      ++idle;
      std::this_thread::yield();
    } else {
      STAT4_TELEMETRY_ONLY(
          if (t_local_spins != 0) {
            t_idle_spins.add(t_local_spins);
            t_local_spins = 0;
          }
          const std::uint64_t t_before = shard.ring->consumer_parks();)
      shard.ring->consumer_park();
      STAT4_TELEMETRY_ONLY(
          const std::uint64_t t_entered =
              shard.ring->consumer_parks() - t_before;
          if (t_entered != 0) {
            t_parks.add(t_entered);
            t_wakes.add(t_entered);
          })
      idle = 0;
    }
  }
}

void ShardedEngine::start() {
  if (running_) throw stat4::UsageError("runtime: engine already running");
  for (auto& shard : shards_) {
    // Fresh ring per run: close() is sticky, so a stopped engine needs a
    // new end-of-stream marker to be restartable.
    shard->ring = std::make_unique<SpscRing<Op>>(queue_capacity_);
    shard->accepted = 0;
    shard->processed.store(0, std::memory_order_relaxed);
  }
  staged_.clear();
  running_ = true;
  for (auto& shard : shards_) {
    shard->worker = std::thread([this, s = shard.get()] { worker_loop(*s); });
  }
}

void ShardedEngine::enqueue(const Op& op) {
  staged_.push_back(op);
  if (staged_.size() >= batch_size_) flush_staged();
}

void ShardedEngine::flush_staged() {
  if (staged_.empty()) return;
  // Queue depth is sampled 1-in-8 batch flushes (then read for every
  // shard, so imbalance between shards is visible); the sampling tick is a
  // plain member — flushes happen on the single producer thread by
  // contract — so the unsampled path adds no atomics.  Backpressure stalls
  // are timed in full: they are rare and exactly the events worth tracing.
  STAT4_TELEMETRY_ONLY(
      static telemetry::Counter& t_waits =
          telemetry::MetricsRegistry::global().counter(
              "runtime.shard.backpressure_waits");
      static telemetry::Histogram& t_depth =
          telemetry::MetricsRegistry::global().histogram(
              "runtime.shard.queue_depth");
      static telemetry::Histogram& t_stall =
          telemetry::MetricsRegistry::global().histogram(
              "runtime.shard.backpressure_stall_ns");
      const bool t_sample = (t_enqueue_tick_++ & 7) == 0;)
  const std::size_t n = staged_.size();
  for (auto& shard : shards_) {
    STAT4_TELEMETRY_ONLY(if (t_sample) t_depth.record(shard->ring->size());)
    const std::size_t pushed = shard->ring->try_push_burst(staged_.data(), n);
    if (pushed < n) {
      backpressure_waits_.fetch_add(1, std::memory_order_relaxed);
      STAT4_TELEMETRY_ONLY(t_waits.add();
                           telemetry::SpanTimer t_span(t_stall);)
      shard->ring->push_burst_blocking(staged_.data() + pushed, n - pushed);
    }
    shard->accepted += n;
  }
  staged_.clear();
}

void ShardedEngine::submit(const stat4::PacketFields& pkt) {
  Op op;
  op.pkt = pkt;
  enqueue(op);
}

void ShardedEngine::submit_advance(stat4::TimeNs now) {
  Op op;
  op.advance_to = now;
  enqueue(op);
}

void ShardedEngine::drain_alerts() {
  std::vector<stat4::Alert> pending;
  alert_channel_.drain(pending);
  if (alert_sink_) {
    for (const auto& a : pending) alert_sink_(a);
  }
}

void ShardedEngine::flush() {
  if (!running_) return;
  flush_staged();
  STAT4_TELEMETRY_ONLY(
      static telemetry::Histogram& t_flush =
          telemetry::MetricsRegistry::global().histogram(
              "runtime.shard.flush_ns");
      telemetry::SpanTimer t_span(t_flush);)
  Backoff backoff;
  for (auto& shard : shards_) {
    while (shard->processed.load(std::memory_order_acquire) <
           shard->accepted) {
      backoff.pause();
    }
    backoff.reset();
  }
  drain_alerts();
}

void ShardedEngine::stop() {
  if (!running_) return;
  flush();
  for (auto& shard : shards_) shard->ring->close();
  for (auto& shard : shards_) {
    if (shard->worker.joinable()) shard->worker.join();
  }
  running_ = false;
  drain_alerts();
}

}  // namespace runtime

// Multi-producer / single-consumer channel for alerts and digests.
//
// The control-plane side of the runtime: every shard (or switch worker)
// pushes its alerts here, and one consumer — the controller thread — drains
// them into the FleetCorrelator or a user sink.  Unlike the packet path,
// this channel may take a lock: anomaly digests are rare by design (the
// whole point of in-switch detection is that the switch only talks to the
// controller when something is wrong), so a mutex-protected queue is both
// simple and contention-free in practice, and it keeps the channel safe for
// any number of producers.
#pragma once

#include <condition_variable>
#include <deque>
#include <mutex>
#include <utility>
#include <vector>

namespace runtime {

template <typename T>
class MpscChannel {
 public:
  /// Any thread may push.
  void push(T item) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      items_.push_back(std::move(item));
    }
    cv_.notify_one();
  }

  /// Move everything currently queued into `out` (appended); returns the
  /// number of items drained.  Non-blocking.
  std::size_t drain(std::vector<T>& out) {
    std::deque<T> grabbed;
    {
      std::lock_guard<std::mutex> lock(mu_);
      grabbed.swap(items_);
    }
    for (auto& item : grabbed) out.push_back(std::move(item));
    return grabbed.size();
  }

  [[nodiscard]] bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return items_.empty();
  }

 private:
  mutable std::mutex mu_;
  std::condition_variable cv_;
  std::deque<T> items_;
};

}  // namespace runtime

// Bounded single-producer / single-consumer ring buffer with burst I/O.
//
// The packet channel between a traffic source and a shard (or emulated
// switch) worker thread.  The discipline mirrors a switch ingress queue:
// exactly one producer (the wire) and one consumer (the pipeline), a fixed
// capacity, and a hot path that never takes a lock — head and tail are
// single-writer atomics with acquire/release pairing, so pushes and pops
// are wait-free.  When the queue is full the *caller* decides between
// dropping (drop-with-counter, like a switch under load; see FleetRunner)
// and backpressure (wait until space; see ShardedEngine, which must stay
// lossless to remain bit-identical to the single-threaded engine).
//
// Burst transfers are the fast path: try_push_burst / pop_burst move a run
// of items under ONE acquire/release pair, so the per-item cost of the
// atomic handshake (and the cache-line ping-pong between the head and tail
// lines) is amortized across the burst.  A burst wrapping the end of the
// storage array is split into two copies internally; callers never see the
// seam.
//
// Waiting is adaptive: spin → yield → park.  Parking uses C++20
// atomic wait/notify on a per-side signal counter (bumped by every wake,
// so the waiter always observes progress — notifying an unchanged cursor
// would just re-block), gated by a waiter flag.  The flag handshake is the
// classic Dekker store/load pattern: the parker's flag store + cursor
// reload and the waker's cursor publish + flag load are all seq_cst, so in
// the single total order one side must see the other (no lost wakeup).
// Seq_cst accesses (rather than release/acquire + seq_cst fences) keep the
// protocol fully visible to TSan, and on x86 cost the same as the fence
// they replace; the non-contended path pays one such store+load per burst.
// Park episodes are counted per side (plain counters owned by
// the waiting thread, read via relaxed atomics for telemetry) so stalls
// are observable instead of burning a hot loop (see SpinPolicy).
//
// `close()` is part of the shutdown protocol and must be called by the
// producer thread (or after the producer has provably stopped): the consumer
// drains until `closed() && empty()`, so an item pushed after close would
// race with consumer exit.  close() wakes a parked consumer.
#pragma once

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstddef>
#include <cstdint>
#include <thread>
#include <vector>

#include "stat4/types.hpp"

namespace runtime {

/// Progressive backoff for spin loops: spin, then yield, then micro-sleep.
/// Used for waits with no single atomic to park on (e.g. flush barriers
/// watching several counters).  Keeps tests responsive even on single-core
/// machines, where a pure spin would starve the thread it is waiting on
/// until the scheduler preempts.
class Backoff {
 public:
  void pause() {
    if (spins_ < 64) {
      ++spins_;
    } else if (spins_ < 256) {
      ++spins_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  void reset() noexcept { spins_ = 0; }

 private:
  unsigned spins_ = 0;
};

/// The spin→yield→park thresholds shared by the worker loops.  A waiter
/// spins kSpins times (cheap, latency-optimal when work is imminent),
/// yields kYields times (lets a same-core producer run), then parks on the
/// ring until the other side publishes — so an idle worker costs the
/// scheduler nothing instead of spinning 44k+ times per quiet period.
struct SpinPolicy {
  static constexpr unsigned kSpins = 128;
  static constexpr unsigned kYields = 16;
};

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (index masking instead of
  /// modulo).  One slot is sacrificed to distinguish full from empty, so the
  /// usable capacity is at least `min_capacity`.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity + 1) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  // ------------------------------------------------------------- producer

  /// Returns false when the ring is full.
  bool try_push(T item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (next == tail_cache_) return false;
    }
    slots_[head] = std::move(item);
    // seq_cst publish: Dekker-pairs with consumer_park (see wake_consumer).
    head_.store(next, std::memory_order_seq_cst);
    wake_consumer();
    return true;
  }

  /// Copies up to `n` items from `items` into the ring under a single
  /// acquire/release pair; returns how many were accepted (0 when full).
  /// Requires copyable T (the same burst is typically fanned out to
  /// several rings).
  std::size_t try_push_burst(const T* items, std::size_t n) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    // Free slots from the producer's cached view; refresh once if short.
    std::size_t free = (tail_cache_ - head - 1) & mask_;
    if (free < n) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      free = (tail_cache_ - head - 1) & mask_;
      if (free == 0) return 0;
    }
    const std::size_t take = n < free ? n : free;
    const std::size_t first = std::min(take, mask_ + 1 - head);
    for (std::size_t i = 0; i < first; ++i) slots_[head + i] = items[i];
    for (std::size_t i = first; i < take; ++i) {
      slots_[i - first] = items[i];  // wrapped segment
    }
    head_.store((head + take) & mask_, std::memory_order_seq_cst);
    wake_consumer();
    return take;
  }

  /// Push the whole burst, backpressure-parking while the ring is full.
  /// Returns the number of park episodes (0 on the uncontended path).
  std::size_t push_burst_blocking(const T* items, std::size_t n) {
    std::size_t parked = 0;
    std::size_t done = 0;
    while (done < n) {
      const std::size_t pushed = try_push_burst(items + done, n - done);
      done += pushed;
      if (done == n) break;
      if (pushed == 0) {
        unsigned tries = 0;
        while (try_push_burst(items + done, 1) == 0) {
          if (tries < SpinPolicy::kSpins) {
            ++tries;
          } else if (tries < SpinPolicy::kSpins + SpinPolicy::kYields) {
            ++tries;
            std::this_thread::yield();
          } else {
            producer_park();
            ++parked;
            tries = 0;
          }
        }
        ++done;
      }
    }
    return parked;
  }

  /// Producer side: push or backpressure-wait until space frees up.
  void push_blocking(T item) {
    if (try_push(item)) return;
    unsigned tries = 0;
    for (;;) {
      if (try_push(item)) return;
      if (tries < SpinPolicy::kSpins) {
        ++tries;
      } else if (tries < SpinPolicy::kSpins + SpinPolicy::kYields) {
        ++tries;
        std::this_thread::yield();
      } else {
        producer_park();
        tries = 0;
      }
    }
  }

  // ------------------------------------------------------------- consumer

  /// Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return false;
    }
    out = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_seq_cst);
    wake_producer();
    return true;
  }

  /// Drain up to `max_burst` items into `out` (appended) under a single
  /// acquire/release pair.  Batched delivery amortizes the atomic traffic
  /// per wakeup.
  std::size_t pop_burst(std::vector<T>& out, std::size_t max_burst) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    std::size_t avail = (head_cache_ - tail) & mask_;
    if (avail < max_burst) {
      head_cache_ = head_.load(std::memory_order_acquire);
      avail = (head_cache_ - tail) & mask_;
      if (avail == 0) return 0;
    }
    const std::size_t take = avail < max_burst ? avail : max_burst;
    const std::size_t first = std::min(take, mask_ + 1 - tail);
    for (std::size_t i = 0; i < first; ++i) {
      out.push_back(std::move(slots_[tail + i]));
    }
    for (std::size_t i = first; i < take; ++i) {
      out.push_back(std::move(slots_[i - first]));  // wrapped segment
    }
    tail_.store((tail + take) & mask_, std::memory_order_seq_cst);
    wake_producer();
    return take;
  }

  /// Back-compat alias for pop_burst.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_batch) {
    return pop_burst(out, max_batch);
  }

  /// Consumer side: park until the producer publishes items or closes the
  /// ring.  Call only after spinning found the ring empty.  Returns
  /// immediately when items or close() raced in.
  ///
  /// The wait is on a dedicated signal counter, NOT on the head cursor:
  /// std::atomic::wait re-blocks while the waited value is unchanged, and
  /// close() changes no cursor — so a wake must always bump the value it
  /// notifies.  (A spurious bump from a stale waiter-flag read is harmless:
  /// the parker rechecks and re-parks.)
  void consumer_park() {
    const std::uint32_t sig = consumer_signal_.load(std::memory_order_relaxed);
    consumer_waiting_.store(1, std::memory_order_seq_cst);
    // Recheck AFTER the flag store in the seq_cst order: either we see the
    // new head/close, or the producer's wake_consumer() sees the flag and
    // bumps the signal (one of the two must hold — see the class comment).
    if (head_.load(std::memory_order_seq_cst) ==
            tail_.load(std::memory_order_relaxed) &&
        !closed_.load(std::memory_order_seq_cst)) {
      consumer_parks_.fetch_add(1, std::memory_order_relaxed);
      consumer_signal_.wait(sig, std::memory_order_relaxed);
    }
    consumer_waiting_.store(0, std::memory_order_relaxed);
  }

  // ------------------------------------------------------------- shutdown

  /// Producer-side end-of-stream marker (see the class comment for the
  /// shutdown protocol).  Wakes a parked consumer so it can observe the
  /// close and drain out.
  void close() noexcept {
    closed_.store(true, std::memory_order_seq_cst);
    if (consumer_waiting_.load(std::memory_order_seq_cst) != 0) {
      consumer_signal_.fetch_add(1, std::memory_order_relaxed);
      consumer_signal_.notify_one();
    }
  }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  // ---------------------------------------------------------- observation

  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Approximate occupancy for telemetry: the two loads are not a
  /// consistent pair under concurrency, but each is exact, so the result
  /// is always within one in-flight item of a true past occupancy.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    return (h - t) & mask_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_; }

  /// Park episodes per side, for telemetry (each counter is written only by
  /// its own side; reads are racy-but-exact snapshots).
  [[nodiscard]] std::uint64_t consumer_parks() const noexcept {
    return consumer_parks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] std::uint64_t producer_parks() const noexcept {
    return producer_parks_.load(std::memory_order_relaxed);
  }

 private:
  /// Producer side: park until the consumer frees a slot.  The close() flag
  /// is producer-owned, so only tail movement can wake us.  Same signal-
  /// counter protocol as consumer_park().
  void producer_park() {
    const std::uint32_t sig = producer_signal_.load(std::memory_order_relaxed);
    producer_waiting_.store(1, std::memory_order_seq_cst);
    const std::size_t head = head_.load(std::memory_order_relaxed);
    if (((head + 1) & mask_) == tail_.load(std::memory_order_seq_cst)) {
      producer_parks_.fetch_add(1, std::memory_order_relaxed);
      producer_signal_.wait(sig, std::memory_order_relaxed);
    }
    producer_waiting_.store(0, std::memory_order_relaxed);
  }

  /// Called after every head publish.  The seq_cst head store + seq_cst
  /// flag load Dekker-pair with consumer_park's flag store / head reload,
  /// so a consumer can never park after missing the publish that should
  /// have woken it: were the parker to miss the head store AND the waker to
  /// miss the flag, the single seq_cst order would have to contain the
  /// cycle flag-store < head-load < head-store < flag-load < flag-store.
  void wake_consumer() noexcept {
    if (consumer_waiting_.load(std::memory_order_seq_cst) != 0) {
      consumer_signal_.fetch_add(1, std::memory_order_relaxed);
      consumer_signal_.notify_one();
    }
  }

  void wake_producer() noexcept {
    if (producer_waiting_.load(std::memory_order_seq_cst) != 0) {
      producer_signal_.fetch_add(1, std::memory_order_relaxed);
      producer_signal_.notify_one();
    }
  }

  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< producer-owned
  alignas(64) std::size_t tail_cache_ = 0;        ///< producer's view of tail
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< consumer-owned
  alignas(64) std::size_t head_cache_ = 0;        ///< consumer's view of head
  alignas(64) std::atomic<bool> closed_{false};
  std::atomic<std::uint32_t> consumer_waiting_{0};
  std::atomic<std::uint32_t> producer_waiting_{0};
  // Park/wake rendezvous: bumped on every notify so std::atomic::wait (which
  // re-blocks while the value is unchanged) always observes progress.
  // 32-bit on purpose — the futex-native width on Linux.
  std::atomic<std::uint32_t> consumer_signal_{0};
  std::atomic<std::uint32_t> producer_signal_{0};
  std::atomic<std::uint64_t> consumer_parks_{0};
  std::atomic<std::uint64_t> producer_parks_{0};
};

}  // namespace runtime

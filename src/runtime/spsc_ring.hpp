// Bounded single-producer / single-consumer ring buffer.
//
// The packet channel between a traffic source and a shard (or emulated
// switch) worker thread.  The discipline mirrors a switch ingress queue:
// exactly one producer (the wire) and one consumer (the pipeline), a fixed
// capacity, and a hot path that never takes a lock — head and tail are
// single-writer atomics with acquire/release pairing, so `try_push` and
// `try_pop` are wait-free.  When the queue is full the *caller* decides
// between dropping (drop-with-counter, like a switch under load; see
// FleetRunner) and backpressure (spin until space; see ShardedEngine, which
// must stay lossless to remain bit-identical to the single-threaded engine).
//
// `close()` is part of the shutdown protocol and must be called by the
// producer thread (or after the producer has provably stopped): the consumer
// drains until `closed() && empty()`, so an item pushed after close would
// race with consumer exit.
#pragma once

#include <atomic>
#include <chrono>
#include <cstddef>
#include <thread>
#include <vector>

#include "stat4/types.hpp"

namespace runtime {

/// Progressive backoff for spin loops: spin, then yield, then micro-sleep.
/// Keeps tests responsive even on single-core machines, where a pure spin
/// would starve the thread it is waiting on until the scheduler preempts.
class Backoff {
 public:
  void pause() {
    if (spins_ < 64) {
      ++spins_;
    } else if (spins_ < 256) {
      ++spins_;
      std::this_thread::yield();
    } else {
      std::this_thread::sleep_for(std::chrono::microseconds(50));
    }
  }
  void reset() noexcept { spins_ = 0; }

 private:
  unsigned spins_ = 0;
};

template <typename T>
class SpscRing {
 public:
  /// Capacity is rounded up to a power of two (index masking instead of
  /// modulo).  One slot is sacrificed to distinguish full from empty, so the
  /// usable capacity is at least `min_capacity`.
  explicit SpscRing(std::size_t min_capacity) {
    std::size_t cap = 2;
    while (cap < min_capacity + 1) cap <<= 1;
    slots_.resize(cap);
    mask_ = cap - 1;
  }

  SpscRing(const SpscRing&) = delete;
  SpscRing& operator=(const SpscRing&) = delete;

  /// Producer side.  Returns false when the ring is full.
  bool try_push(T item) {
    const std::size_t head = head_.load(std::memory_order_relaxed);
    const std::size_t next = (head + 1) & mask_;
    if (next == tail_cache_) {
      tail_cache_ = tail_.load(std::memory_order_acquire);
      if (next == tail_cache_) return false;
    }
    slots_[head] = std::move(item);
    head_.store(next, std::memory_order_release);
    return true;
  }

  /// Producer side: push or backpressure-spin until space frees up.
  void push_blocking(T item) {
    Backoff backoff;
    while (!try_push(std::move(item))) backoff.pause();
  }

  /// Consumer side.  Returns false when the ring is empty.
  bool try_pop(T& out) {
    const std::size_t tail = tail_.load(std::memory_order_relaxed);
    if (tail == head_cache_) {
      head_cache_ = head_.load(std::memory_order_acquire);
      if (tail == head_cache_) return false;
    }
    out = std::move(slots_[tail]);
    tail_.store((tail + 1) & mask_, std::memory_order_release);
    return true;
  }

  /// Consumer side: drain up to `max_batch` items into `out` (appended).
  /// Batched delivery amortizes the atomic traffic per wakeup.
  std::size_t pop_batch(std::vector<T>& out, std::size_t max_batch) {
    std::size_t n = 0;
    T item;
    while (n < max_batch && try_pop(item)) {
      out.push_back(std::move(item));
      ++n;
    }
    return n;
  }

  /// Producer-side end-of-stream marker (see the class comment for the
  /// shutdown protocol).
  void close() noexcept { closed_.store(true, std::memory_order_release); }
  [[nodiscard]] bool closed() const noexcept {
    return closed_.load(std::memory_order_acquire);
  }

  [[nodiscard]] bool empty() const noexcept {
    return head_.load(std::memory_order_acquire) ==
           tail_.load(std::memory_order_acquire);
  }

  /// Approximate occupancy for telemetry: the two loads are not a
  /// consistent pair under concurrency, but each is exact, so the result
  /// is always within one in-flight item of a true past occupancy.
  [[nodiscard]] std::size_t size() const noexcept {
    const std::size_t h = head_.load(std::memory_order_acquire);
    const std::size_t t = tail_.load(std::memory_order_acquire);
    return (h - t) & mask_;
  }

  [[nodiscard]] std::size_t capacity() const noexcept { return mask_; }

 private:
  std::vector<T> slots_;
  std::size_t mask_ = 0;
  alignas(64) std::atomic<std::size_t> head_{0};  ///< producer-owned
  alignas(64) std::size_t tail_cache_ = 0;        ///< producer's view of tail
  alignas(64) std::atomic<std::size_t> tail_{0};  ///< consumer-owned
  alignas(64) std::size_t head_cache_ = 0;        ///< consumer's view of head
  std::atomic<bool> closed_{false};
};

}  // namespace runtime

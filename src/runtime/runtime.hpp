// Umbrella header for the concurrent runtime (see docs/CONCURRENCY.md).
#pragma once

#include "runtime/fleet_runner.hpp"    // IWYU pragma: export
#include "runtime/mpsc_channel.hpp"    // IWYU pragma: export
#include "runtime/sharded_engine.hpp"  // IWYU pragma: export
#include "runtime/spsc_ring.hpp"       // IWYU pragma: export

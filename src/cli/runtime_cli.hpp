// Runtime CLI for Stat4 switches — the bmv2 `simple_switch_CLI` analogue.
//
// The paper's controller drives bmv2 through its runtime CLI (table_add /
// table_modify / register_read); this module provides the same operational
// surface over a MonitorApp, as a library (so tests and controllers can
// drive it programmatically) plus a stdin/stdout binary (tools/stat4_cli).
//
// Commands (see `help`):
//   forward_add 10.0.0.0/8 1
//   rate_add 10.0.0.0/8 0 8 100 [min_history] [stall]
//   bind_add 10.0.0.0/8 1 8 [--proto 6] [--syn] [--check 128] [--median 50]
//   bind_value 10.0.0.0/8 2 0 [--check 64]
//   bind_sparse 0.0.0.0/0 3 0 [--mask ffffffff] [--check 512]
//   bind_modify <handle> ... / bind_del <handle>
//   mitigate_add 10.0.0.0/8 1 8
//   register_read stat_xsum 1 [count]
//   stats 1
//   rearm 1 / reset 1
//   inject_udp 1.2.3.4 10.0.5.6 <ts_us>
//   counters / disasm <action> / dump <table>
#pragma once

#include <string>
#include <string_view>

#include "stat4p4/apps.hpp"

namespace cli {

class RuntimeCli {
 public:
  explicit RuntimeCli(stat4p4::MonitorApp& app) : app_(&app) {}

  /// Executes one command line and returns its output (never throws;
  /// failures come back as "error: ..." text, like an interactive CLI).
  [[nodiscard]] std::string execute(std::string_view line);

  /// True once `quit` has been executed.
  [[nodiscard]] bool done() const noexcept { return done_; }

  /// Digests raised by packets injected through the CLI.
  [[nodiscard]] const std::vector<p4sim::Digest>& digests() const noexcept {
    return digests_;
  }

 private:
  stat4p4::MonitorApp* app_;
  bool done_ = false;
  std::vector<p4sim::Digest> digests_;
};

/// Parses "a.b.c.d/len"; returns false on malformed input.
[[nodiscard]] bool parse_prefix(std::string_view text, std::uint32_t* addr,
                                std::uint8_t* len);

/// Parses "a.b.c.d"; returns false on malformed input.
[[nodiscard]] bool parse_ipv4_addr(std::string_view text,
                                   std::uint32_t* addr);

}  // namespace cli

#include "cli/runtime_cli.hpp"

#include <charconv>
#include <sstream>
#include <vector>

#include <fstream>

#include "p4sim/craft.hpp"
#include "p4sim/trace.hpp"
#include "p4sim/disasm.hpp"
#include "stat4/approx_math.hpp"

namespace cli {

namespace {

std::vector<std::string> tokenize(std::string_view line) {
  std::vector<std::string> out;
  std::istringstream is{std::string(line)};
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

bool parse_u64(std::string_view s, std::uint64_t* out, int base = 10) {
  const auto* begin = s.data();
  const auto* end = s.data() + s.size();
  const auto [ptr, ec] = std::from_chars(begin, end, *out, base);
  return ec == std::errc{} && ptr == end;
}

/// Flags shared by the bind_* commands.
struct BindFlags {
  stat4p4::FreqBindingSpec spec;
  bool ok = true;
  std::string error;
};

BindFlags parse_bind(const std::vector<std::string>& tok, std::size_t from) {
  BindFlags f;
  if (tok.size() < from + 3) {
    f.ok = false;
    f.error = "usage: <prefix>/<len> <dist> <shift> [flags]";
    return f;
  }
  std::uint32_t addr = 0;
  std::uint8_t len = 0;
  if (!parse_prefix(tok[from], &addr, &len)) {
    f.ok = false;
    f.error = "bad prefix '" + tok[from] + "'";
    return f;
  }
  std::uint64_t dist = 0;
  std::uint64_t shift = 0;
  if (!parse_u64(tok[from + 1], &dist) || !parse_u64(tok[from + 2], &shift)) {
    f.ok = false;
    f.error = "dist and shift must be integers";
    return f;
  }
  f.spec.dst_prefix = addr;
  f.spec.dst_prefix_len = len;
  f.spec.dist = static_cast<std::uint32_t>(dist);
  f.spec.shift = static_cast<std::uint8_t>(shift);
  f.spec.check = false;

  for (std::size_t i = from + 3; i < tok.size(); ++i) {
    const auto& flag = tok[i];
    auto next_u64 = [&](std::uint64_t* out, int base = 10) {
      if (i + 1 >= tok.size() || !parse_u64(tok[i + 1], out, base)) {
        f.ok = false;
        f.error = flag + " needs an integer argument";
        return false;
      }
      ++i;
      return true;
    };
    if (flag == "--proto") {
      std::uint64_t proto = 0;
      if (!next_u64(&proto)) return f;
      f.spec.protocol = static_cast<std::uint8_t>(proto);
    } else if (flag == "--syn") {
      f.spec.flag_mask = p4sim::kTcpSyn;
      f.spec.flag_value = p4sim::kTcpSyn;
      f.spec.protocol = p4sim::kIpProtoTcp;
    } else if (flag == "--check") {
      std::uint64_t min_total = 0;
      if (!next_u64(&min_total)) return f;
      f.spec.check = true;
      f.spec.min_total = min_total;
    } else if (flag == "--median") {
      std::uint64_t p = 0;
      if (!next_u64(&p)) return f;
      f.spec.median = true;
      f.spec.percentile = static_cast<unsigned>(p);
    } else if (flag == "--mask") {
      std::uint64_t mask = 0;
      if (!next_u64(&mask, 16)) return f;
      f.spec.mask = mask;
    } else if (flag == "--offset") {
      std::uint64_t off = 0;
      if (!next_u64(&off)) return f;
      f.spec.offset = off;
    } else {
      f.ok = false;
      f.error = "unknown flag '" + flag + "'";
      return f;
    }
  }
  return f;
}

constexpr const char* kHelp = R"(commands:
  forward_add <prefix>/<len> <port>
  rate_add <prefix>/<len> <dist> <interval_ms> <window> [min_history] [stall]
  bind_add    <prefix>/<len> <dist> <shift> [--proto N] [--syn]
              [--check MIN] [--median P] [--mask HEX] [--offset N]
  bind_value  <prefix>/<len> <dist> <shift> [flags]
  bind_sparse <prefix>/<len> <dist> <shift> [flags]
  bind_modify <handle> <prefix>/<len> <dist> <shift> [flags]
  bind_del <handle>
  mitigate_add <prefix>/<len> <dist> <shift> [flags]
  register_read <array> <index> [count]
  replay <trace-file>
  stats <dist>
  rearm <dist>
  reset <dist>
  inject_udp <src> <dst> <ts_us>
  counters
  dump <table>
  disasm <action>
  help | quit)";

}  // namespace

bool parse_ipv4_addr(std::string_view text, std::uint32_t* addr) {
  unsigned parts[4] = {};
  std::size_t idx = 0;
  std::size_t start = 0;
  for (std::size_t i = 0; i <= text.size(); ++i) {
    if (i == text.size() || text[i] == '.') {
      if (idx >= 4 || i == start) return false;
      std::uint64_t v = 0;
      if (!parse_u64(text.substr(start, i - start), &v) || v > 255) {
        return false;
      }
      parts[idx++] = static_cast<unsigned>(v);
      start = i + 1;
    }
  }
  if (idx != 4) return false;
  *addr = p4sim::ipv4(parts[0], parts[1], parts[2], parts[3]);
  return true;
}

bool parse_prefix(std::string_view text, std::uint32_t* addr,
                  std::uint8_t* len) {
  const auto slash = text.find('/');
  if (slash == std::string_view::npos) return false;
  std::uint64_t l = 0;
  if (!parse_u64(text.substr(slash + 1), &l) || l > 32) return false;
  if (!parse_ipv4_addr(text.substr(0, slash), addr)) return false;
  *len = static_cast<std::uint8_t>(l);
  return true;
}

std::string RuntimeCli::execute(std::string_view line) {
  const auto tok = tokenize(line);
  if (tok.empty() || tok[0][0] == '#') return "";
  const auto& cmd = tok[0];
  std::ostringstream os;

  try {
    if (cmd == "help") {
      return kHelp;
    }
    if (cmd == "quit") {
      done_ = true;
      return "bye";
    }
    if (cmd == "forward_add") {
      std::uint32_t addr = 0;
      std::uint8_t len = 0;
      std::uint64_t port = 0;
      if (tok.size() != 3 || !parse_prefix(tok[1], &addr, &len) ||
          !parse_u64(tok[2], &port)) {
        return "error: usage: forward_add <prefix>/<len> <port>";
      }
      const auto h = app_->install_forward(
          addr, len, static_cast<p4sim::PortId>(port));
      os << "entry handle " << h;
      return os.str();
    }
    if (cmd == "rate_add") {
      std::uint32_t addr = 0;
      std::uint8_t len = 0;
      std::uint64_t dist = 0;
      std::uint64_t ms = 0;
      std::uint64_t window = 0;
      std::uint64_t minh = 8;
      if (tok.size() < 5 || !parse_prefix(tok[1], &addr, &len) ||
          !parse_u64(tok[2], &dist) || !parse_u64(tok[3], &ms) ||
          !parse_u64(tok[4], &window)) {
        return "error: usage: rate_add <prefix>/<len> <dist> <interval_ms> "
               "<window> [min_history] [stall]";
      }
      if (tok.size() > 5 && !parse_u64(tok[5], &minh)) {
        return "error: min_history must be an integer";
      }
      const bool stall = tok.size() > 6 && tok[6] == "stall";
      const auto h = app_->install_rate_monitor(
          addr, len, static_cast<std::uint32_t>(dist),
          ms * static_cast<std::uint64_t>(stat4::kMillisecond), window, minh,
          stall);
      os << "entry handle " << h;
      return os.str();
    }
    if (cmd == "bind_add" || cmd == "bind_value" || cmd == "bind_sparse" ||
        cmd == "mitigate_add") {
      auto f = parse_bind(tok, 1);
      if (!f.ok) return "error: " + f.error;
      p4sim::EntryHandle h = 0;
      if (cmd == "bind_add") {
        h = app_->install_freq_binding(f.spec);
      } else if (cmd == "bind_value") {
        h = app_->install_value_binding(f.spec);
      } else if (cmd == "bind_sparse") {
        h = app_->install_sparse_binding(f.spec);
      } else {
        h = app_->install_mitigation(f.spec);
      }
      os << "entry handle " << h;
      return os.str();
    }
    if (cmd == "bind_modify") {
      std::uint64_t handle = 0;
      if (tok.size() < 2 || !parse_u64(tok[1], &handle)) {
        return "error: usage: bind_modify <handle> <prefix>/<len> ...";
      }
      auto f = parse_bind(tok, 2);
      if (!f.ok) return "error: " + f.error;
      app_->modify_freq_binding(handle, f.spec);
      return "ok";
    }
    if (cmd == "bind_del") {
      std::uint64_t handle = 0;
      if (tok.size() != 2 || !parse_u64(tok[1], &handle)) {
        return "error: usage: bind_del <handle>";
      }
      app_->remove_binding(handle);
      return "ok";
    }
    if (cmd == "register_read") {
      std::uint64_t index = 0;
      std::uint64_t count = 1;
      if (tok.size() < 3 || !parse_u64(tok[2], &index)) {
        return "error: usage: register_read <array> <index> [count]";
      }
      if (tok.size() > 3 && !parse_u64(tok[3], &count)) {
        return "error: count must be an integer";
      }
      const auto& rf = app_->sw().registers();
      for (std::size_t r = 0; r < rf.array_count(); ++r) {
        const auto id = static_cast<p4sim::RegisterId>(r);
        if (rf.info(id).name != tok[1]) continue;
        for (std::uint64_t i = 0; i < count; ++i) {
          if (i > 0) os << '\n';
          os << tok[1] << '[' << (index + i)
             << "] = " << rf.read(id, index + i);
        }
        return os.str();
      }
      return "error: unknown register array '" + tok[1] + "'";
    }
    if (cmd == "stats") {
      std::uint64_t dist = 0;
      if (tok.size() != 2 || !parse_u64(tok[1], &dist)) {
        return "error: usage: stats <dist>";
      }
      const auto& rf = app_->sw().registers();
      const auto& regs = app_->regs();
      const auto var = rf.read(regs.var, dist);
      os << "dist " << dist << ": N=" << rf.read(regs.n, dist)
         << " Xsum=" << rf.read(regs.xsum, dist)
         << " Xsumsq=" << rf.read(regs.xsumsq, dist) << " var=" << var
         << " sd~=" << stat4::approx_sqrt(var)
         << " alerted=" << rf.read(regs.alerted, dist)
         << " hot=" << rf.read(regs.hot_value, dist) << '\n'
         << "tier: configured=" << p4sim::to_string(app_->sw().exec_tier())
         << " active=" << p4sim::to_string(app_->sw().active_tier());
      return os.str();
    }
    if (cmd == "rearm" || cmd == "reset") {
      std::uint64_t dist = 0;
      if (tok.size() != 2 || !parse_u64(tok[1], &dist)) {
        return "error: usage: " + cmd + " <dist>";
      }
      if (cmd == "rearm") {
        app_->rearm(static_cast<std::uint32_t>(dist));
      } else {
        app_->reset_distribution(static_cast<std::uint32_t>(dist));
      }
      return "ok";
    }
    if (cmd == "inject_udp") {
      std::uint32_t src = 0;
      std::uint32_t dst = 0;
      std::uint64_t ts_us = 0;
      if (tok.size() != 4 || !parse_ipv4_addr(tok[1], &src) ||
          !parse_ipv4_addr(tok[2], &dst) || !parse_u64(tok[3], &ts_us)) {
        return "error: usage: inject_udp <src> <dst> <ts_us>";
      }
      p4sim::Packet pkt = p4sim::make_udp_packet(src, dst, 1000, 2000);
      pkt.ingress_ts =
          static_cast<stat4::TimeNs>(ts_us) * stat4::kMicrosecond;
      auto out = app_->sw().process(std::move(pkt));
      for (const auto& d : out.digests) digests_.push_back(d);
      os << (out.dropped ? "dropped" : "forwarded");
      if (!out.digests.empty()) {
        os << "; " << out.digests.size() << " digest(s)";
      }
      return os.str();
    }
    if (cmd == "replay") {
      if (tok.size() != 2) return "error: usage: replay <trace-file>";
      std::ifstream in(tok[1], std::ios::binary);
      if (!in) return "error: cannot open '" + tok[1] + "'";
      const auto result = p4sim::replay_trace(in, app_->sw());
      for (const auto& dg : result.digests) digests_.push_back(dg);
      os << "replayed " << result.packets << " packets: "
         << result.forwarded << " forwarded, " << result.dropped
         << " dropped, " << result.digests.size() << " digest(s)";
      return os.str();
    }
    if (cmd == "counters") {
      os << "packets=" << app_->sw().packets_processed()
         << " digests=" << app_->sw().digests_emitted();
      return os.str();
    }
    if (cmd == "dump") {
      if (tok.size() != 2) return "error: usage: dump <table>";
      for (std::size_t t = 0; t < app_->sw().table_count(); ++t) {
        const auto& table =
            app_->sw().table(static_cast<p4sim::TableId>(t));
        if (table.name() != tok[1]) continue;
        os << "table " << table.name() << ": " << table.entry_count() << '/'
           << table.max_entries() << " entries";
        return os.str();
      }
      return "error: unknown table '" + tok[1] + "'";
    }
    if (cmd == "disasm") {
      if (tok.size() != 2) return "error: usage: disasm <action>";
      for (std::size_t a = 0; a < app_->sw().action_count(); ++a) {
        const auto& prog = app_->sw().action(static_cast<p4sim::ActionId>(a));
        if (prog.name != tok[1]) continue;
        return p4sim::disassemble(prog, &app_->sw().registers());
      }
      return "error: unknown action '" + tok[1] + "'";
    }
  } catch (const std::exception& e) {
    return std::string("error: ") + e.what();
  }
  return "error: unknown command '" + cmd + "' (try 'help')";
}

}  // namespace cli

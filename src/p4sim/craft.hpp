// Packet-crafting helpers for tests, examples and traffic generators.
#pragma once

#include <cstdint>

#include "p4sim/headers.hpp"
#include "p4sim/packet.hpp"

namespace p4sim {

/// A minimal Ethernet+IPv4+TCP frame.  `pad_to` grows the frame to a target
/// size with zero padding (to model traffic volume in bytes).
[[nodiscard]] Packet make_tcp_packet(std::uint32_t src_ip,
                                     std::uint32_t dst_ip,
                                     std::uint16_t src_port,
                                     std::uint16_t dst_port,
                                     std::uint8_t flags,
                                     std::size_t pad_to = 0);

/// A minimal Ethernet+IPv4+UDP frame.
[[nodiscard]] Packet make_udp_packet(std::uint32_t src_ip,
                                     std::uint32_t dst_ip,
                                     std::uint16_t src_port,
                                     std::uint16_t dst_port,
                                     std::size_t pad_to = 0);

/// A Figure 5 echo frame carrying one signed payload integer.
[[nodiscard]] Packet make_echo_packet(std::int64_t value);

/// Dotted-quad style constructor, host byte order: ip(10,0,5,6).
[[nodiscard]] constexpr std::uint32_t ipv4(unsigned a, unsigned b, unsigned c,
                                           unsigned d) noexcept {
  return (a << 24) | (b << 16) | (c << 8) | d;
}

}  // namespace p4sim

// Raw packet representation for the software switch.
//
// A packet is a byte buffer plus ingress metadata.  Header structs
// (headers.hpp) parse from / deparse into the buffer in network byte order,
// exactly as a P4 parser would walk it.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "stat4/types.hpp"

namespace p4sim {

using Byte = std::uint8_t;
using PortId = std::uint16_t;

/// Reads a big-endian unsigned integer of `width` bytes at `offset`.
/// Returns 0 if the read would run past the end (the parser checks sizes
/// before trusting values).  Inline: callers pass constant widths, so the
/// loop unrolls into straight loads — parse/deparse run per packet.
[[nodiscard]] inline std::uint64_t read_be(std::span<const Byte> buf,
                                           std::size_t offset,
                                           std::size_t width) {
  if (width > 8 || offset + width > buf.size()) return 0;
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    v = (v << 8) | buf[offset + i];
  }
  return v;
}

/// Writes `value` big-endian into `width` bytes at `offset`.
/// No-op if the write would run past the end.
inline void write_be(std::span<Byte> buf, std::size_t offset,
                     std::size_t width, std::uint64_t value) {
  if (width > 8 || offset + width > buf.size()) return;
  for (std::size_t i = 0; i < width; ++i) {
    buf[offset + width - 1 - i] = static_cast<Byte>(value & 0xFF);
    value >>= 8;
  }
}

/// One frame traversing the switch.
struct Packet {
  std::vector<Byte> data;
  PortId ingress_port = 0;
  stat4::TimeNs ingress_ts = 0;

  [[nodiscard]] std::size_t size() const noexcept { return data.size(); }
};

}  // namespace p4sim

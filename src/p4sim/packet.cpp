#include "p4sim/packet.hpp"

// read_be / write_be are defined inline in packet.hpp: they sit under every
// per-packet parse/deparse and their constant-width calls unroll to plain
// loads when visible to the caller.

#include "p4sim/packet.hpp"

namespace p4sim {

std::uint64_t read_be(std::span<const Byte> buf, std::size_t offset,
                      std::size_t width) {
  if (width > 8 || offset + width > buf.size()) return 0;
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < width; ++i) {
    v = (v << 8) | buf[offset + i];
  }
  return v;
}

void write_be(std::span<Byte> buf, std::size_t offset, std::size_t width,
              std::uint64_t value) {
  if (width > 8 || offset + width > buf.size()) return;
  for (std::size_t i = 0; i < width; ++i) {
    buf[offset + width - 1 - i] = static_cast<Byte>(value & 0xFF);
    value >>= 8;
  }
}

}  // namespace p4sim

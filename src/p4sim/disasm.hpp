// Human-readable disassembly of action programs.
//
// Useful for debugging generated Stat4 programs, for documentation, and for
// the resource report: `p4sim::disassemble(program)` prints one line per
// instruction in a P4-action-like pseudo syntax, e.g.
//
//     t3 = t1 + t2
//     t5 = reg stat_xsum[t0]
//     stat_xsum[t0] := t6
//     digest#2(t0, t4, t7) if t9
#pragma once

#include <string>

#include "p4sim/action.hpp"
#include "p4sim/register_file.hpp"

namespace p4sim {

/// One instruction as text.  `registers` (optional) resolves register array
/// names; without it arrays print as reg<N>.
[[nodiscard]] std::string to_string(const Instruction& ins,
                                    const RegisterFile* registers = nullptr);

/// Whole program, one instruction per line, with a header.
[[nodiscard]] std::string disassemble(const Program& program,
                                      const RegisterFile* registers = nullptr);

/// Name of a field (e.g. "ipv4.dst") for diagnostics.
[[nodiscard]] const char* field_name(FieldRef f) noexcept;

/// Name of an opcode (e.g. "add").
[[nodiscard]] const char* op_name(Op op) noexcept;

}  // namespace p4sim

// Static analysis of switch programs: dependency chains and resource use.
//
// The paper's Resource Consumption paragraph (Section 4) reports, for the
// case-study application: its size, that "it entails at most one dependency
// between match-action rules [...] since at most two rules with independent
// actions match each packet", and that "the longest dependency chain in our
// code has 12 sequential steps, used to override the oldest counter in
// distributions of traffic over time".  This analyzer computes those
// quantities from p4sim programs, so bench_resource can regenerate them and
// regressions in the chain length are caught by tests.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "p4sim/action.hpp"
#include "p4sim/switch.hpp"

namespace p4sim {

/// Dependency metrics of one action program.
struct ProgramAnalysis {
  std::string name;
  std::size_t instructions = 0;
  /// Longest def-use chain through temps and registers: the number of
  /// sequential steps the program needs (a lower bound on pipeline stages /
  /// ALU passes a hardware compiler must serialize).
  std::size_t longest_chain = 0;
  std::size_t register_reads = 0;
  std::size_t register_writes = 0;
  bool uses_mul = false;
};

/// Whole-switch resource report.
struct SwitchAnalysis {
  std::string switch_name;
  std::size_t tables = 0;
  std::size_t table_entries = 0;
  std::size_t register_arrays = 0;
  std::size_t state_bytes = 0;      ///< register memory (the "3.1KB" figure)
  std::size_t pipeline_stages = 0;  ///< configured stages
  /// Match-action dependencies: stage i match-depends on stage j<i when a
  /// field read by i's table key (or guard) is written by an action of j.
  std::size_t match_dependencies = 0;
  std::size_t longest_action_chain = 0;  ///< max over all actions
  std::string longest_chain_action;      ///< which action holds the max
  std::vector<ProgramAnalysis> programs;
};

[[nodiscard]] ProgramAnalysis analyze_program(const Program& program);
[[nodiscard]] SwitchAnalysis analyze_switch(const P4Switch& sw);

}  // namespace p4sim

#include "p4sim/disasm.hpp"

#include <sstream>

namespace p4sim {

const char* field_name(FieldRef f) noexcept {
  switch (f) {
    case FieldRef::kEthType: return "eth.type";
    case FieldRef::kIpv4Src: return "ipv4.src";
    case FieldRef::kIpv4Dst: return "ipv4.dst";
    case FieldRef::kIpv4Proto: return "ipv4.proto";
    case FieldRef::kIpv4Ttl: return "ipv4.ttl";
    case FieldRef::kIpv4Valid: return "ipv4.$valid";
    case FieldRef::kTcpSrcPort: return "tcp.sport";
    case FieldRef::kTcpDstPort: return "tcp.dport";
    case FieldRef::kTcpFlags: return "tcp.flags";
    case FieldRef::kTcpValid: return "tcp.$valid";
    case FieldRef::kUdpSrcPort: return "udp.sport";
    case FieldRef::kUdpDstPort: return "udp.dport";
    case FieldRef::kUdpValid: return "udp.$valid";
    case FieldRef::kEchoValue: return "echo.value";
    case FieldRef::kEchoN: return "echo.n";
    case FieldRef::kEchoXsum: return "echo.xsum";
    case FieldRef::kEchoXsumsq: return "echo.xsumsq";
    case FieldRef::kEchoVar: return "echo.var";
    case FieldRef::kEchoSd: return "echo.sd";
    case FieldRef::kEchoValid: return "echo.$valid";
    case FieldRef::kMetaIngressPort: return "meta.ingress_port";
    case FieldRef::kMetaIngressTs: return "meta.ingress_ts";
    case FieldRef::kMetaPacketLength: return "meta.pkt_len";
    case FieldRef::kMetaEgressSpec: return "meta.egress_spec";
  }
  return "?";
}

const char* op_name(Op op) noexcept {
  switch (op) {
    case Op::kConst: return "const";
    case Op::kParam: return "param";
    case Op::kMov: return "mov";
    case Op::kAdd: return "add";
    case Op::kSub: return "sub";
    case Op::kMul: return "mul";
    case Op::kShl: return "shl";
    case Op::kShr: return "shr";
    case Op::kAnd: return "and";
    case Op::kOr: return "or";
    case Op::kXor: return "xor";
    case Op::kNot: return "not";
    case Op::kEq: return "eq";
    case Op::kNe: return "ne";
    case Op::kLt: return "lt";
    case Op::kGt: return "gt";
    case Op::kLe: return "le";
    case Op::kGe: return "ge";
    case Op::kSelect: return "select";
    case Op::kLoadField: return "load_field";
    case Op::kStoreField: return "store_field";
    case Op::kLoadReg: return "load_reg";
    case Op::kStoreReg: return "store_reg";
    case Op::kHash1: return "hash1";
    case Op::kHash2: return "hash2";
    case Op::kDigest: return "digest";
  }
  return "?";
}

namespace {

std::string reg_name(RegisterId id, const RegisterFile* registers) {
  if (registers != nullptr && id < registers->array_count()) {
    return registers->info(id).name;
  }
  return "reg" + std::to_string(id);
}

const char* infix(Op op) {
  switch (op) {
    case Op::kAdd: return "+";
    case Op::kSub: return "-";
    case Op::kMul: return "*";
    case Op::kShl: return "<<";
    case Op::kShr: return ">>";
    case Op::kAnd: return "&";
    case Op::kOr: return "|";
    case Op::kXor: return "^";
    case Op::kEq: return "==";
    case Op::kNe: return "!=";
    case Op::kLt: return "<";
    case Op::kGt: return ">";
    case Op::kLe: return "<=";
    case Op::kGe: return ">=";
    default: return nullptr;
  }
}

}  // namespace

std::string to_string(const Instruction& ins, const RegisterFile* registers) {
  std::ostringstream os;
  const auto t = [](TempId id) { return "t" + std::to_string(id); };

  if (const char* sym = infix(ins.op)) {
    os << t(ins.dst) << " = " << t(ins.a) << ' ' << sym << ' ' << t(ins.b);
    return os.str();
  }
  switch (ins.op) {
    case Op::kConst:
      os << t(ins.dst) << " = " << ins.imm;
      break;
    case Op::kParam:
      os << t(ins.dst) << " = action_data[" << ins.imm << ']';
      break;
    case Op::kMov:
      os << t(ins.dst) << " = " << t(ins.a);
      break;
    case Op::kNot:
      os << t(ins.dst) << " = ~" << t(ins.a);
      break;
    case Op::kSelect:
      os << t(ins.dst) << " = " << t(ins.a) << " ? " << t(ins.b) << " : "
         << t(ins.c);
      break;
    case Op::kLoadField:
      os << t(ins.dst) << " = " << field_name(ins.field);
      break;
    case Op::kStoreField:
      os << field_name(ins.field) << " := " << t(ins.a);
      break;
    case Op::kLoadReg:
      os << t(ins.dst) << " = " << reg_name(ins.reg, registers) << '['
         << t(ins.a) << ']';
      break;
    case Op::kStoreReg:
      os << reg_name(ins.reg, registers) << '[' << t(ins.a)
         << "] := " << t(ins.b);
      break;
    case Op::kHash1:
      os << t(ins.dst) << " = hash1(" << t(ins.a) << ')';
      break;
    case Op::kHash2:
      os << t(ins.dst) << " = hash2(" << t(ins.a) << ')';
      break;
    case Op::kDigest:
      os << "digest#" << ins.imm << '(' << t(ins.a) << ", " << t(ins.b)
         << ", " << t(ins.dst) << ") if " << t(ins.c);
      break;
    default:
      os << op_name(ins.op);
      break;
  }
  return os.str();
}

std::string disassemble(const Program& program,
                        const RegisterFile* registers) {
  std::ostringstream os;
  os << "action " << program.name << " {  // " << program.code.size()
     << " instructions\n";
  for (std::size_t i = 0; i < program.code.size(); ++i) {
    os << "  [" << i << "] " << to_string(program.code[i], registers) << '\n';
  }
  os << "}\n";
  return os.str();
}

}  // namespace p4sim

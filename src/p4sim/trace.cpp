#include "p4sim/trace.hpp"

#include <array>
#include <istream>
#include <ostream>
#include <stdexcept>

namespace p4sim {

namespace {

constexpr std::array<char, 4> kMagic = {'S', '4', 'T', 'R'};

template <typename T>
void put(std::ostream& os, T value) {
  // Explicit little-endian serialization (portable across hosts).
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    os.put(static_cast<char>(static_cast<std::uint64_t>(value) >> (8 * i) &
                             0xFF));
  }
}

template <typename T>
bool get(std::istream& is, T* value) {
  std::uint64_t v = 0;
  for (std::size_t i = 0; i < sizeof(T); ++i) {
    const int c = is.get();
    if (c == std::char_traits<char>::eof()) return false;
    v |= static_cast<std::uint64_t>(static_cast<unsigned char>(c)) << (8 * i);
  }
  *value = static_cast<T>(v);
  return true;
}

}  // namespace

TraceWriter::TraceWriter(std::ostream& out) : out_(&out) {
  out_->write(kMagic.data(), kMagic.size());
  put<std::uint32_t>(*out_, kTraceVersion);
}

void TraceWriter::record(const Packet& pkt) {
  put<std::int64_t>(*out_, pkt.ingress_ts);
  put<std::uint16_t>(*out_, pkt.ingress_port);
  put<std::uint32_t>(*out_, static_cast<std::uint32_t>(pkt.data.size()));
  out_->write(reinterpret_cast<const char*>(pkt.data.data()),
              static_cast<std::streamsize>(pkt.data.size()));
  ++written_;
}

TraceReader::TraceReader(std::istream& in) : in_(&in) {
  std::array<char, 4> magic{};
  in_->read(magic.data(), magic.size());
  if (in_->gcount() != 4 || magic != kMagic) {
    throw std::runtime_error("p4sim: not a S4TR trace (bad magic)");
  }
  std::uint32_t version = 0;
  if (!get(*in_, &version) || version != kTraceVersion) {
    throw std::runtime_error("p4sim: unsupported trace version");
  }
}

std::optional<Packet> TraceReader::next() {
  std::int64_t ts = 0;
  if (!get(*in_, &ts)) {
    return std::nullopt;  // clean EOF at a record boundary
  }
  Packet pkt;
  pkt.ingress_ts = ts;
  std::uint16_t port = 0;
  std::uint32_t length = 0;
  if (!get(*in_, &port) || !get(*in_, &length)) {
    throw std::runtime_error("p4sim: truncated trace record header");
  }
  if (length > (1u << 20)) {
    throw std::runtime_error("p4sim: implausible trace record length");
  }
  pkt.ingress_port = port;
  pkt.data.resize(length);
  in_->read(reinterpret_cast<char*>(pkt.data.data()),
            static_cast<std::streamsize>(length));
  if (static_cast<std::uint32_t>(in_->gcount()) != length) {
    throw std::runtime_error("p4sim: truncated trace record payload");
  }
  ++read_;
  return pkt;
}

ReplayResult replay_trace(std::istream& in, P4Switch& sw) {
  TraceReader reader(in);
  ReplayResult result;
  while (auto pkt = reader.next()) {
    ++result.packets;
    auto out = sw.process(std::move(*pkt));
    if (out.dropped) {
      ++result.dropped;
    } else {
      ++result.forwarded;
    }
    for (auto& d : out.digests) result.digests.push_back(d);
  }
  return result;
}

}  // namespace p4sim

// Straight-line action programs over a P4-legal ALU.
//
// This layer makes the paper's constraints machine-checked: the instruction
// set has addition, subtraction, shifts, bitwise logic, comparisons and a
// ternary select — and nothing else.  There is NO division, NO modulo, NO
// square root, NO floating point, and NO loop: a program is a fixed vector
// of instructions executed exactly once per packet, like a P4 action body /
// sequence of pipeline ALU operations.
//
// Multiplication exists as an opcode because bmv2 supports it, but hardware
// profiles (AluProfile) can forbid it — "some hardware switches do not
// support the squaring of values unknown at compile time" (Section 2) — in
// which case programs must be built with the shift-based approx-square
// sequence instead.  Program::validate() enforces the profile.
#pragma once

#include <bitset>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "p4sim/parser.hpp"
#include "p4sim/register_file.hpp"

namespace p4sim {

using TempId = std::uint16_t;

/// Number of per-packet scratch words (PHV/metadata containers).
inline constexpr std::size_t kTempCount = 2048;

enum class Op : std::uint8_t {
  kConst,       // dst = imm
  kParam,       // dst = action_data[imm]         (table-entry action data)
  kMov,         // dst = t[a]
  kAdd,         // dst = t[a] + t[b]              (wraps, like P4 bit<W>)
  kSub,         // dst = t[a] - t[b]
  kMul,         // dst = t[a] * t[b]              (profile-gated)
  kShl,         // dst = t[a] << (t[b] & 63)
  kShr,         // dst = t[a] >> (t[b] & 63)
  kAnd,         // dst = t[a] & t[b]
  kOr,          // dst = t[a] | t[b]
  kXor,         // dst = t[a] ^ t[b]
  kNot,         // dst = ~t[a]
  kEq,          // dst = t[a] == t[b]
  kNe,          // dst = t[a] != t[b]
  kLt,          // dst = t[a] <  t[b]  (unsigned)
  kGt,          // dst = t[a] >  t[b]  (unsigned)
  kLe,          // dst = t[a] <= t[b]  (unsigned)
  kGe,          // dst = t[a] >= t[b]  (unsigned)
  kSelect,      // dst = t[a] ? t[b] : t[c]
  kLoadField,   // dst = packet field
  kStoreField,  // packet field = t[a]
  kLoadReg,     // dst = reg[reg_id][ t[a] ]
  kStoreReg,    // reg[reg_id][ t[a] ] = t[b]
  kHash1,       // dst = hash_1(t[a])   (hash extern, like P4's crc32/crc64)
  kHash2,       // dst = hash_2(t[a])   (an independent second hash extern)
  kDigest,      // if (t[c] != 0) emit digest{ id=imm,
                //                            payload=[t[a], t[b], t[dst]] }
};

struct Instruction {
  Op op = Op::kConst;
  TempId dst = 0;
  TempId a = 0;
  TempId b = 0;
  TempId c = 0;
  Word imm = 0;
  FieldRef field = FieldRef::kEthType;
  RegisterId reg = 0;
};

/// What the target hardware's per-stage ALU supports.
struct AluProfile {
  bool has_mul = true;              ///< bmv2: yes; some ASICs: no
  std::size_t max_instructions = 4096;
  static AluProfile bmv2() { return {}; }
  static AluProfile hardware_no_mul() { return {false, 4096}; }
};

/// A message pushed from the data plane to the controller (P4 digest) —
/// the alert channel of the envisioned architecture (Figure 1c).
struct Digest {
  std::uint32_t id = 0;
  std::array<Word, 3> payload{};
  stat4::TimeNs time = 0;
};

/// Declared-accuracy metadata for one approximate-helper expansion.
///
/// ProgramBuilder's approx_* helpers emit straight-line shift/select code
/// whose *ideal* meaning (sqrt, square, product, log2) is not recoverable
/// from the instructions alone.  Each helper therefore records the
/// instruction range it emitted together with a declared error contract
///
///     |implemented - ideal_fn(input)| <= ideal-scale * rel_num/rel_den + abs
///
/// which the precision analysis (src/analysis/precision.cpp) consumes to
/// bound output error instead of propagating through the opaque bitwise
/// body.  kTableLookup is the hook for the future table-based pseudo-float
/// tier: a lookup extern with a declared per-entry error, analysed the same
/// way.  Spans are only meaningful for the exact code the builder emitted;
/// the optimizer drops them whenever it rewrites a program.
struct ApproxSpan {
  enum class Fn : std::uint8_t { kSqrt, kSquare, kMul, kLog2, kTableLookup };
  Fn fn = Fn::kSqrt;
  std::uint32_t begin = 0;  ///< index of the first emitted instruction
  std::uint32_t end = 0;    ///< one past the last emitted instruction
  TempId in_a = 0;          ///< primary input temp (live at `begin`)
  TempId in_b = 0;          ///< second input (kMul only; otherwise == in_a)
  TempId out = 0;           ///< result temp, written by code[end - 1]
  std::uint32_t rel_num = 0;  ///< relative error numerator
  std::uint32_t rel_den = 1;  ///< relative error denominator (non-zero)
  std::uint64_t abs = 0;      ///< absolute error, in output value units
};

struct Program {
  std::string name;
  std::vector<Instruction> code;
  /// Accuracy contracts for approx-helper expansions inside `code`,
  /// ordered by `begin`.  Cleared by any pass that rewrites `code`.
  std::vector<ApproxSpan> approx_spans;

  /// Throws std::invalid_argument when the program exceeds the profile
  /// (unknown temp, too long, multiplication on a no-mul target, ...).
  void validate(const AluProfile& profile) const;
};

/// Per-packet execution state.
struct ExecutionContext {
  PacketView* view = nullptr;
  RegisterFile* registers = nullptr;
  std::span<const Word> action_data;
  std::vector<Digest>* digests = nullptr;
  stat4::TimeNs now = 0;
  std::array<Word, kTempCount> temps{};
};

/// Runs the program to completion (no branches, no loops: O(|code|)).
void execute(const Program& program, ExecutionContext& ctx);

/// Temps `ins` reads / writes, appended to the vectors.  Mirrors execute()
/// exactly — in particular kDigest READS dst (third payload word) and the
/// store ops write no temp at all.  Shared by the scratch-zeroing analysis
/// (switch.cpp) and the native-tier transpiler so their liveness views can
/// never drift.
void instruction_temps(const Instruction& ins, std::vector<TempId>& reads,
                       std::vector<TempId>& writes);

/// Temps `program` reads before writing — the only temps whose
/// pre-execution value (the per-packet zero fill, or an earlier stage's
/// write) can flow into the program.  Everything else is written first and
/// needs no initialization.
[[nodiscard]] std::bitset<kTempCount> read_before_write(
    const Program& program);

/// Convenience builder producing SSA-ish programs: every helper allocates a
/// fresh temp and returns its id.  Mirrors how one composes P4 primitive
/// actions.
class ProgramBuilder {
 public:
  explicit ProgramBuilder(std::string name);

  TempId konst(Word v);
  TempId param(std::size_t index);
  TempId load_field(FieldRef f);
  void store_field(FieldRef f, TempId v);
  TempId load_reg(RegisterId r, TempId index);
  void store_reg(RegisterId r, TempId index, TempId value);

  TempId add(TempId a, TempId b);
  TempId sub(TempId a, TempId b);
  TempId mul(TempId a, TempId b);
  TempId shl(TempId a, TempId b);
  TempId shr(TempId a, TempId b);
  TempId band(TempId a, TempId b);
  TempId bor(TempId a, TempId b);
  TempId bxor(TempId a, TempId b);
  TempId bnot(TempId a);
  TempId eq(TempId a, TempId b);
  TempId ne(TempId a, TempId b);
  TempId lt(TempId a, TempId b);
  TempId gt(TempId a, TempId b);
  TempId le(TempId a, TempId b);
  TempId ge(TempId a, TempId b);
  TempId select(TempId cond, TempId if_true, TempId if_false);
  /// Overwrites an existing temp (register-style accumulation).  Needed for
  /// long chains where SSA would exhaust the temp pool.
  void mov_into(TempId dst, TempId src);
  /// Emit a digest with the given 3-word payload iff `cond` is non-zero.
  void digest_if(TempId cond, std::uint32_t id, TempId w0, TempId w1,
                 TempId w2);

  /// Shift-based approximate product (for no-mul targets):
  ///   a*b ~= (b << msb(a)) + ((a - 2^msb(a)) << msb(b))
  /// i.e. drop only the r_a * r_b cross term (< 25% relative error), the
  /// same idea as approx_square extended to general products.
  ///
  /// CAUTION: the Stat4 variance identity N*Xsumsq - Xsum^2 subtracts two
  /// nearly equal large terms; a 25% error on either destroys the result.
  /// Use mul_shift_add for variance-critical products on no-mul targets.
  TempId approx_mul(TempId a, TempId b);

  /// EXACT product via an unrolled shift-and-add ladder over the low `bits`
  /// of `a` (schoolbook binary multiplication; no kMul emitted).  Costs
  /// ~5*bits instructions with an O(bits) dependency chain — expensive in
  /// pipeline stages but exact, which the variance identity requires.
  TempId mul_shift_add(TempId a, TempId b, unsigned bits = 32);

  /// Hash externs (the target's CRC units; here SplitMix/Murmur mixes that
  /// stat4::sparse_hash1/2 share so library and switch stay bit-identical).
  TempId hash1(TempId a);
  TempId hash2(TempId a);

  /// Emit the MSB-position computation as the paper's "sequence of ifs"
  /// (6 select steps for 64-bit input).  Returns temp holding msb index.
  TempId msb_index(TempId y);

  /// Emit the Figure 2 approximate square root (uses msb_index + shifts).
  TempId approx_sqrt(TempId y);

  /// Emit shift-based approximate squaring (for no-mul targets).
  TempId approx_square(TempId y);

  /// Emit the fixed-point approximate log2 (stat4::approx_log2 semantics:
  /// integer part = MSB position, fraction = top mantissa bits, 8
  /// fractional bits).  Shifts and selects only.
  TempId approx_log2(TempId y);

  [[nodiscard]] Program take();
  [[nodiscard]] std::size_t instruction_count() const noexcept {
    return program_.code.size();
  }

 private:
  TempId fresh();
  TempId emit2(Op op, TempId a, TempId b);
  void record_span(ApproxSpan::Fn fn, std::size_t begin, TempId in_a,
                   TempId in_b, TempId out, std::uint32_t rel_num,
                   std::uint32_t rel_den, std::uint64_t abs);

  Program program_;
  TempId next_temp_ = 0;
};

}  // namespace p4sim

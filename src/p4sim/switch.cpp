#include "p4sim/switch.hpp"

#include <algorithm>
#include <stdexcept>

namespace p4sim {

P4Switch::P4Switch(std::string name, AluProfile profile)
    : name_(std::move(name)), profile_(profile) {}

RegisterId P4Switch::declare_register(std::string reg_name, std::uint32_t size,
                                      std::uint32_t width_bits) {
  return registers_.declare(std::move(reg_name), size, width_bits);
}

ActionId P4Switch::add_action(Program program) {
  program.validate(profile_);
  ++config_gen_;
  actions_.push_back(std::move(program));
  return static_cast<ActionId>(actions_.size() - 1);
}

TableId P4Switch::add_table(std::string table_name, std::vector<KeySpec> key,
                            std::size_t max_entries) {
  ++config_gen_;
  tables_.emplace_back(std::move(table_name), std::move(key), max_entries);
  return static_cast<TableId>(tables_.size() - 1);
}

void P4Switch::add_table_stage(TableId table_id, std::optional<Guard> guard) {
  if (table_id >= tables_.size()) {
    throw std::out_of_range("p4sim: unknown table in pipeline");
  }
  Stage s;
  s.guard = guard;
  s.table = table_id;
  ++config_gen_;
  pipeline_.push_back(s);
}

void P4Switch::add_program_stage(ActionId action_id,
                                 std::optional<Guard> guard) {
  if (action_id >= actions_.size()) {
    throw std::out_of_range("p4sim: unknown action in pipeline");
  }
  Stage s;
  s.guard = guard;
  s.action = action_id;
  ++config_gen_;
  pipeline_.push_back(s);
}

void P4Switch::replace_action(ActionId id, Program program) {
  if (id >= actions_.size()) {
    throw std::out_of_range("p4sim: unknown action id");
  }
  program.validate(profile_);
  // Bump BEFORE installing: the compiled dispatch vector holds raw pointers
  // into actions_ and a scratch_words_ prefix sized for the old bodies, so
  // the next process() must recompile even if this throws nowhere.
  ++config_gen_;
  actions_[id] = std::move(program);
}

void P4Switch::set_pipeline(std::vector<Stage> stages) {
  for (const Stage& s : stages) {
    if (s.table && *s.table >= tables_.size()) {
      throw std::out_of_range("p4sim: unknown table in pipeline");
    }
    if (s.action && *s.action >= actions_.size()) {
      throw std::out_of_range("p4sim: unknown action in pipeline");
    }
  }
  ++config_gen_;
  pipeline_ = std::move(stages);
}

MatchActionTable& P4Switch::table(TableId id) {
  if (id >= tables_.size()) {
    throw std::out_of_range("p4sim: unknown table id");
  }
  return tables_[id];
}

const MatchActionTable& P4Switch::table(TableId id) const {
  if (id >= tables_.size()) {
    throw std::out_of_range("p4sim: unknown table id");
  }
  return tables_[id];
}

const Program& P4Switch::action(ActionId id) const {
  if (id >= actions_.size()) {
    throw std::out_of_range("p4sim: unknown action id");
  }
  return actions_[id];
}

void P4Switch::compile_pipeline() {
  ++pipeline_compiles_;
  compiled_.clear();
  compiled_.reserve(pipeline_.size());
  for (const Stage& stage : pipeline_) {
    CompiledStage cs;
    if (stage.guard) {
      cs.guarded = true;
      cs.guard = *stage.guard;
    }
    if (stage.table) {
      cs.table = &tables_[*stage.table];
    } else if (stage.action) {
      cs.program = &actions_[*stage.action];
    }
    compiled_.push_back(cs);
  }
  // The scratch context is zeroed per packet only up to the highest temp
  // ANY installed action can read or write — bit-identical to zeroing the
  // whole pool, because no instruction addresses beyond that index.
  scratch_words_ = 0;
  for (const Program& prog : actions_) {
    for (const Instruction& ins : prog.code) {
      const std::size_t hi =
          std::max(std::max<std::size_t>(ins.dst, ins.a),
                   std::max<std::size_t>(ins.b, ins.c));
      scratch_words_ = std::max(scratch_words_, hi + 1);
    }
  }
  if (!scratch_) scratch_ = std::make_unique<ExecutionContext>();
  compiled_gen_ = config_gen_;
}

void P4Switch::run_pipeline_reference(PacketView& view, SwitchOutput& out,
                                      stat4::TimeNs now) {
  // The original interpreter: a fresh, fully zeroed context per packet and
  // linear table scans.  This is the fast path's differential baseline.
  ExecutionContext ctx;
  ctx.view = &view;
  ctx.registers = &registers_;
  ctx.digests = &out.digests;
  ctx.now = now;

  for (const Stage& stage : pipeline_) {
    if (stage.guard && !stage.guard->holds(view)) continue;
    if (stage.table) {
      const MatchResult m = tables_[*stage.table].lookup_linear(view);
      const Program& prog = actions_.at(m.action);
      ctx.action_data = m.action_data;
      execute(prog, ctx);
    } else if (stage.action) {
      ctx.action_data = {};
      execute(actions_[*stage.action], ctx);
    }
  }
}

SwitchOutput P4Switch::process(Packet pkt) {
  SwitchOutput out;
  process_into(std::move(pkt), out);
  return out;
}

void P4Switch::process_into(Packet pkt, SwitchOutput& out) {
  out.packets.clear();
  out.digests.clear();
  out.dropped = false;
  ++packets_processed_;

  ParsedPacket parsed = parse(pkt);
  PacketView view;
  view.parsed = &parsed;
  view.meta_ingress_port = pkt.ingress_port;
  view.meta_ingress_ts = static_cast<std::uint64_t>(pkt.ingress_ts);
  view.meta_packet_length = pkt.size();
  view.meta_egress_spec = 0;  // default drop, like bmv2's mark_to_drop

  if (fast_path_) {
    if (compiled_gen_ != config_gen_) compile_pipeline();
    ExecutionContext& ctx = *scratch_;
    std::fill_n(ctx.temps.data(), scratch_words_, Word{0});
    ctx.view = &view;
    ctx.registers = &registers_;
    ctx.digests = &out.digests;
    ctx.now = pkt.ingress_ts;
    for (const CompiledStage& cs : compiled_) {
      if (cs.guarded && !cs.guard.holds(view)) continue;
      if (cs.table != nullptr) {
        const MatchResult m = cs.table->lookup(view);
        const Program& prog = actions_.at(m.action);
        ctx.action_data = m.action_data;
        execute(prog, ctx);
      } else if (cs.program != nullptr) {
        ctx.action_data = {};
        execute(*cs.program, ctx);
      }
    }
  } else {
    run_pipeline_reference(view, out, pkt.ingress_ts);
  }

  digests_emitted_ += out.digests.size();

  if (view.meta_egress_spec == 0) {
    out.dropped = true;
    return;
  }
  deparse(parsed, pkt);
  const auto port = static_cast<PortId>(view.meta_egress_spec - 1);
  out.packets.emplace_back(port, std::move(pkt));
}

}  // namespace p4sim

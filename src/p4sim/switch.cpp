#include "p4sim/switch.hpp"

#include <stdexcept>

namespace p4sim {

P4Switch::P4Switch(std::string name, AluProfile profile)
    : name_(std::move(name)), profile_(profile) {}

RegisterId P4Switch::declare_register(std::string reg_name, std::uint32_t size,
                                      std::uint32_t width_bits) {
  return registers_.declare(std::move(reg_name), size, width_bits);
}

ActionId P4Switch::add_action(Program program) {
  program.validate(profile_);
  actions_.push_back(std::move(program));
  return static_cast<ActionId>(actions_.size() - 1);
}

TableId P4Switch::add_table(std::string table_name, std::vector<KeySpec> key,
                            std::size_t max_entries) {
  tables_.emplace_back(std::move(table_name), std::move(key), max_entries);
  return static_cast<TableId>(tables_.size() - 1);
}

void P4Switch::add_table_stage(TableId table_id, std::optional<Guard> guard) {
  if (table_id >= tables_.size()) {
    throw std::out_of_range("p4sim: unknown table in pipeline");
  }
  Stage s;
  s.guard = guard;
  s.table = table_id;
  pipeline_.push_back(s);
}

void P4Switch::add_program_stage(ActionId action_id,
                                 std::optional<Guard> guard) {
  if (action_id >= actions_.size()) {
    throw std::out_of_range("p4sim: unknown action in pipeline");
  }
  Stage s;
  s.guard = guard;
  s.action = action_id;
  pipeline_.push_back(s);
}

MatchActionTable& P4Switch::table(TableId id) {
  if (id >= tables_.size()) {
    throw std::out_of_range("p4sim: unknown table id");
  }
  return tables_[id];
}

const MatchActionTable& P4Switch::table(TableId id) const {
  if (id >= tables_.size()) {
    throw std::out_of_range("p4sim: unknown table id");
  }
  return tables_[id];
}

const Program& P4Switch::action(ActionId id) const {
  if (id >= actions_.size()) {
    throw std::out_of_range("p4sim: unknown action id");
  }
  return actions_[id];
}

SwitchOutput P4Switch::process(Packet pkt) {
  SwitchOutput out;
  ++packets_processed_;

  ParsedPacket parsed = parse(pkt);
  PacketView view;
  view.parsed = &parsed;
  view.meta_ingress_port = pkt.ingress_port;
  view.meta_ingress_ts = static_cast<std::uint64_t>(pkt.ingress_ts);
  view.meta_packet_length = pkt.size();
  view.meta_egress_spec = 0;  // default drop, like bmv2's mark_to_drop

  ExecutionContext ctx;
  ctx.view = &view;
  ctx.registers = &registers_;
  ctx.digests = &out.digests;
  ctx.now = pkt.ingress_ts;

  for (const Stage& stage : pipeline_) {
    if (stage.guard && !stage.guard->holds(view)) continue;
    if (stage.table) {
      const MatchResult m = tables_[*stage.table].lookup(view);
      const Program& prog = actions_.at(m.action);
      ctx.action_data = m.action_data;
      execute(prog, ctx);
    } else if (stage.action) {
      ctx.action_data = {};
      execute(actions_[*stage.action], ctx);
    }
  }

  digests_emitted_ += out.digests.size();

  if (view.meta_egress_spec == 0) {
    out.dropped = true;
    return out;
  }
  deparse(parsed, pkt);
  const auto port = static_cast<PortId>(view.meta_egress_spec - 1);
  out.packets.emplace_back(port, std::move(pkt));
  return out;
}

}  // namespace p4sim

#include "p4sim/switch.hpp"

#include <algorithm>
#include <stdexcept>

#include "p4sim/jit/transpiler.hpp"
#include "telemetry/metrics.hpp"

namespace p4sim {
namespace {

// Host callbacks the native tier crosses back through for packet fields and
// digests: validity gating and Digest construction stay in parser.cpp /
// this file, so generated code can never drift from interpreter semantics.
std::uint64_t jit_load_field_cb(void* view, std::uint32_t field) {
  return static_cast<PacketView*>(view)->get(static_cast<FieldRef>(field));
}

void jit_store_field_cb(void* view, std::uint32_t field, std::uint64_t value) {
  static_cast<PacketView*>(view)->set(static_cast<FieldRef>(field), value);
}

struct JitDigestSink {
  std::vector<Digest>* digests = nullptr;
  stat4::TimeNs now = 0;
};

void jit_emit_digest_cb(void* sink, std::uint32_t id, std::uint64_t w0,
                        std::uint64_t w1, std::uint64_t w2) {
  auto* s = static_cast<JitDigestSink*>(sink);
  Digest d;
  d.id = id;
  d.payload = {w0, w1, w2};
  d.time = s->now;
  s->digests->push_back(d);
}

}  // namespace

P4Switch::P4Switch(std::string name, AluProfile profile)
    : name_(std::move(name)), profile_(profile) {}

RegisterId P4Switch::declare_register(std::string reg_name, std::uint32_t size,
                                      std::uint32_t width_bits) {
  // Compiled tiers hold raw RegisterWindow pointers and the native tier
  // refuses programs over undeclared arrays, so a new declaration must
  // re-lower the pipeline.
  ++config_gen_;
  return registers_.declare(std::move(reg_name), size, width_bits);
}

ActionId P4Switch::add_action(Program program) {
  program.validate(profile_);
  ++config_gen_;
  actions_.push_back(std::move(program));
  return static_cast<ActionId>(actions_.size() - 1);
}

TableId P4Switch::add_table(std::string table_name, std::vector<KeySpec> key,
                            std::size_t max_entries) {
  ++config_gen_;
  tables_.emplace_back(std::move(table_name), std::move(key), max_entries);
  return static_cast<TableId>(tables_.size() - 1);
}

void P4Switch::add_table_stage(TableId table_id, std::optional<Guard> guard) {
  if (table_id >= tables_.size()) {
    throw std::out_of_range("p4sim: unknown table in pipeline");
  }
  Stage s;
  s.guard = guard;
  s.table = table_id;
  ++config_gen_;
  pipeline_.push_back(s);
}

void P4Switch::add_program_stage(ActionId action_id,
                                 std::optional<Guard> guard) {
  if (action_id >= actions_.size()) {
    throw std::out_of_range("p4sim: unknown action in pipeline");
  }
  Stage s;
  s.guard = guard;
  s.action = action_id;
  ++config_gen_;
  pipeline_.push_back(s);
}

void P4Switch::replace_action(ActionId id, Program program) {
  if (id >= actions_.size()) {
    throw std::out_of_range("p4sim: unknown action id");
  }
  program.validate(profile_);
  // Bump BEFORE installing: the compiled dispatch vector holds raw pointers
  // into actions_ and a scratch_words_ prefix sized for the old bodies, so
  // the next process() must recompile even if this throws nowhere.
  ++config_gen_;
  actions_[id] = std::move(program);
}

void P4Switch::set_pipeline(std::vector<Stage> stages) {
  for (const Stage& s : stages) {
    if (s.table && *s.table >= tables_.size()) {
      throw std::out_of_range("p4sim: unknown table in pipeline");
    }
    if (s.action && *s.action >= actions_.size()) {
      throw std::out_of_range("p4sim: unknown action in pipeline");
    }
  }
  ++config_gen_;
  pipeline_ = std::move(stages);
}

MatchActionTable& P4Switch::table(TableId id) {
  if (id >= tables_.size()) {
    throw std::out_of_range("p4sim: unknown table id");
  }
  return tables_[id];
}

const MatchActionTable& P4Switch::table(TableId id) const {
  if (id >= tables_.size()) {
    throw std::out_of_range("p4sim: unknown table id");
  }
  return tables_[id];
}

const Program& P4Switch::action(ActionId id) const {
  if (id >= actions_.size()) {
    throw std::out_of_range("p4sim: unknown action id");
  }
  return actions_[id];
}

void P4Switch::compile_pipeline() {
  ++pipeline_compiles_;
  compiled_.clear();
  compiled_.reserve(pipeline_.size());
  invariant_guards_.clear();
  for (const Stage& stage : pipeline_) {
    CompiledStage cs;
    if (stage.guard) {
      cs.guarded = true;
      cs.guard = *stage.guard;
      // Guards over non-writable fields (validity bits, ingress metadata)
      // are packet-invariant: no action can change them mid-pipeline, so
      // the fast tiers evaluate each distinct guard once per packet.
      if (!field_info(cs.guard.field).writable) {
        std::size_t slot = invariant_guards_.size();
        for (std::size_t i = 0; i < invariant_guards_.size(); ++i) {
          const Guard& g = invariant_guards_[i];
          if (g.field == cs.guard.field && g.cmp == cs.guard.cmp &&
              g.value == cs.guard.value) {
            slot = i;
            break;
          }
        }
        if (slot == invariant_guards_.size() &&
            slot < kMaxInvariantGuards) {
          invariant_guards_.push_back(cs.guard);
        }
        if (slot < invariant_guards_.size()) {
          cs.guard_slot = static_cast<std::int8_t>(slot);
        }
      }
    }
    if (stage.table) {
      cs.table = &tables_[*stage.table];
    } else if (stage.action) {
      cs.program = &actions_[*stage.action];
      cs.action = *stage.action;
    }
    compiled_.push_back(cs);
  }
  // The scratch context is zeroed per packet only up to the highest temp
  // ANY installed action reads before writing — bit-identical to zeroing
  // the whole pool, because every other temp is (re)written before its
  // first read, so a stale value from the previous packet can never flow
  // into this one.
  std::bitset<kTempCount> observable;
  for (const Program& prog : actions_) {
    observable |= read_before_write(prog);
  }
  scratch_words_ = 0;
  for (std::size_t id = 0; id < kTempCount; ++id) {
    if (observable[id]) scratch_words_ = id + 1;
  }
  if (!scratch_) scratch_ = std::make_unique<ExecutionContext>();

  // Lower the installed actions to the selected execution tier.  The
  // threaded lowering always happens for the non-interpreter tiers: it is
  // both the kThreaded program and the degradation target when the native
  // compile cannot be used.
  active_tier_ = ExecTier::kInterpreter;
  threaded_actions_.clear();
  reg_windows_.clear();
  jit_unit_.reset();
  if (exec_tier_ != ExecTier::kInterpreter) {
    threaded_actions_.reserve(actions_.size());
    for (const Program& prog : actions_) {
      threaded_actions_.push_back(
          threaded_compile(prog, registers_, observable));
    }
    active_tier_ = ExecTier::kThreaded;
  }
  if (exec_tier_ == ExecTier::kNative) {
    const jit::TranspileResult transpiled =
        jit::transpile(actions_, registers_, name_);
    if (transpiled.ok) {
      const jit::CompileOutcome outcome = jit::compile_unit(transpiled.source);
      if (outcome.unit && outcome.unit->actions().size() == actions_.size()) {
        jit_unit_ = outcome.unit;
        reg_windows_.reserve(registers_.array_count());
        for (std::size_t r = 0; r < registers_.array_count(); ++r) {
          const RegisterWindow w =
              registers_.window(static_cast<RegisterId>(r));
          reg_windows_.push_back(jit::RegWindow{w.base, w.size, w.mask});
        }
        active_tier_ = ExecTier::kNative;
        // Everything except the per-packet view and digest sink is fixed
        // for the lifetime of this compiled pipeline.
        jit_ctx_ = jit::Context{};
        jit_ctx_.temps = scratch_->temps.data();
        jit_ctx_.load_field = &jit_load_field_cb;
        jit_ctx_.store_field = &jit_store_field_cb;
        jit_ctx_.regs = reg_windows_.data();
        jit_ctx_.emit_digest = &jit_emit_digest_cb;
      }
    }
    if (active_tier_ != ExecTier::kNative) {
      STAT4_TELEMETRY_ONLY(telemetry::MetricsRegistry::global()
                               .counter("p4sim.jit.fallbacks")
                               .add();)
    }
  }
  compiled_gen_ = config_gen_;
}

void P4Switch::run_pipeline_reference(PacketView& view, SwitchOutput& out,
                                      stat4::TimeNs now) {
  // The original interpreter: a fresh, fully zeroed context per packet and
  // linear table scans.  This is the fast path's differential baseline.
  ExecutionContext ctx;
  ctx.view = &view;
  ctx.registers = &registers_;
  ctx.digests = &out.digests;
  ctx.now = now;

  for (const Stage& stage : pipeline_) {
    if (stage.guard && !stage.guard->holds(view)) continue;
    if (stage.table) {
      const MatchResult m = tables_[*stage.table].lookup_linear(view);
      const Program& prog = actions_.at(m.action);
      ctx.action_data = m.action_data;
      execute(prog, ctx);
    } else if (stage.action) {
      ctx.action_data = {};
      execute(actions_[*stage.action], ctx);
    }
  }
}

void P4Switch::run_pipeline_interp(PacketView& view, SwitchOutput& out,
                                   stat4::TimeNs now) {
  ExecutionContext& ctx = *scratch_;
  std::fill_n(ctx.temps.data(), scratch_words_, Word{0});
  ctx.view = &view;
  ctx.registers = &registers_;
  ctx.digests = &out.digests;
  ctx.now = now;
  bool inv[kMaxInvariantGuards];
  for (std::size_t i = 0; i < invariant_guards_.size(); ++i) {
    inv[i] = invariant_guards_[i].holds(view);
  }
  for (const CompiledStage& cs : compiled_) {
    if (cs.guarded) {
      const bool ok = cs.guard_slot >= 0
                          ? inv[static_cast<std::size_t>(cs.guard_slot)]
                          : cs.guard.holds(view);
      if (!ok) continue;
    }
    if (cs.table != nullptr) {
      if (stage_is_noop(*cs.table)) continue;
      const MatchResult m = cs.table->lookup(view);
      const Program& prog = actions_.at(m.action);
      ctx.action_data = m.action_data;
      execute(prog, ctx);
    } else if (cs.program != nullptr) {
      ctx.action_data = {};
      execute(*cs.program, ctx);
    }
  }
}

void P4Switch::run_pipeline_threaded(PacketView& view, SwitchOutput& out,
                                     stat4::TimeNs now) {
  ExecutionContext& ctx = *scratch_;
  std::fill_n(ctx.temps.data(), scratch_words_, Word{0});
  ThreadedState st;
  st.temps = ctx.temps.data();
  st.view = &view;
  st.registers = &registers_;
  st.digests = &out.digests;
  st.now = now;
  bool inv[kMaxInvariantGuards];
  for (std::size_t i = 0; i < invariant_guards_.size(); ++i) {
    inv[i] = invariant_guards_[i].holds(view);
  }
  for (const CompiledStage& cs : compiled_) {
    if (cs.guarded) {
      const bool ok = cs.guard_slot >= 0
                          ? inv[static_cast<std::size_t>(cs.guard_slot)]
                          : cs.guard.holds(view);
      if (!ok) continue;
    }
    if (cs.table != nullptr) {
      if (stage_is_noop(*cs.table)) continue;
      const MatchResult m = cs.table->lookup(view);
      const ThreadedProgram& prog = threaded_actions_.at(m.action);
      st.action_data = m.action_data.data();
      st.action_data_len = m.action_data.size();
      threaded_execute(prog, st);
    } else if (cs.program != nullptr) {
      st.action_data = nullptr;
      st.action_data_len = 0;
      threaded_execute(threaded_actions_[cs.action], st);
    }
  }
}

void P4Switch::run_pipeline_native(PacketView& view, SwitchOutput& out,
                                   stat4::TimeNs now) {
  std::fill_n(scratch_->temps.data(), scratch_words_, Word{0});
  JitDigestSink sink{&out.digests, now};
  jit::Context& jc = jit_ctx_;
  jc.view = &view;
  jc.digest_sink = &sink;
  const std::vector<jit::ActionFn>& fns = jit_unit_->actions();
  bool inv[kMaxInvariantGuards];
  for (std::size_t i = 0; i < invariant_guards_.size(); ++i) {
    inv[i] = invariant_guards_[i].holds(view);
  }
  for (const CompiledStage& cs : compiled_) {
    if (cs.guarded) {
      const bool ok = cs.guard_slot >= 0
                          ? inv[static_cast<std::size_t>(cs.guard_slot)]
                          : cs.guard.holds(view);
      if (!ok) continue;
    }
    if (cs.table != nullptr) {
      if (stage_is_noop(*cs.table)) continue;
      const MatchResult m = cs.table->lookup(view);
      jc.action_data = m.action_data.data();
      jc.action_data_len = m.action_data.size();
      fns.at(m.action)(&jc);
    } else if (cs.program != nullptr) {
      jc.action_data = nullptr;
      jc.action_data_len = 0;
      fns[cs.action](&jc);
    }
  }
}

SwitchOutput P4Switch::process(Packet pkt) {
  SwitchOutput out;
  process_into(std::move(pkt), out);
  return out;
}

void P4Switch::process_into(Packet pkt, SwitchOutput& out) {
  out.packets.clear();
  out.digests.clear();
  out.dropped = false;
  ++packets_processed_;

  ParsedPacket parsed = parse(pkt);
  PacketView view;
  view.parsed = &parsed;
  view.meta_ingress_port = pkt.ingress_port;
  view.meta_ingress_ts = static_cast<std::uint64_t>(pkt.ingress_ts);
  view.meta_packet_length = pkt.size();
  view.meta_egress_spec = 0;  // default drop, like bmv2's mark_to_drop

  if (fast_path_) {
    if (compiled_gen_ != config_gen_) compile_pipeline();
    switch (active_tier_) {
      case ExecTier::kInterpreter:
        run_pipeline_interp(view, out, pkt.ingress_ts);
        break;
      case ExecTier::kThreaded:
        run_pipeline_threaded(view, out, pkt.ingress_ts);
        break;
      case ExecTier::kNative:
        run_pipeline_native(view, out, pkt.ingress_ts);
        break;
    }
  } else {
    run_pipeline_reference(view, out, pkt.ingress_ts);
  }

  digests_emitted_ += out.digests.size();

  if (view.meta_egress_spec == 0) {
    out.dropped = true;
    return;
  }
  // The deparser only runs when some action stored to a header field; a
  // purely observing pipeline forwards the buffer byte-for-byte.
  if (view.header_dirty) deparse(parsed, pkt);
  const auto port = static_cast<PortId>(view.meta_egress_spec - 1);
  out.packets.emplace_back(port, std::move(pkt));
}

}  // namespace p4sim

// Protocol headers understood by the switch parser.
//
// Ethernet / IPv4 / TCP / UDP cover everything the paper's use cases need
// (Table 1), plus a tiny Stat4 echo header used by the Figure 5 validation
// experiment: an Ethernet payload carrying one signed integer and, on the
// return path, the switch's statistical registers.
#pragma once

#include <array>
#include <cstdint>
#include <optional>

#include "p4sim/packet.hpp"

namespace p4sim {

using MacAddr = std::array<Byte, 6>;

// EtherTypes / protocol numbers used by the simulator.
inline constexpr std::uint16_t kEtherTypeIpv4 = 0x0800;
inline constexpr std::uint16_t kEtherTypeStat4Echo = 0x88B5;  // local exp. 1
inline constexpr std::uint8_t kIpProtoTcp = 6;
inline constexpr std::uint8_t kIpProtoUdp = 17;

// TCP flag bits.
inline constexpr std::uint8_t kTcpFin = 0x01;
inline constexpr std::uint8_t kTcpSyn = 0x02;
inline constexpr std::uint8_t kTcpRst = 0x04;
inline constexpr std::uint8_t kTcpAck = 0x10;

struct EthernetHeader {
  static constexpr std::size_t kSize = 14;
  MacAddr dst{};
  MacAddr src{};
  std::uint16_t ether_type = 0;
};

struct Ipv4Header {
  static constexpr std::size_t kSize = 20;  // no options
  std::uint8_t ttl = 64;
  std::uint8_t protocol = 0;
  std::uint16_t total_length = 0;
  std::uint32_t src = 0;  ///< host byte order
  std::uint32_t dst = 0;  ///< host byte order
};

struct TcpHeader {
  static constexpr std::size_t kSize = 20;  // no options
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint32_t seq = 0;
  std::uint8_t flags = 0;
};

struct UdpHeader {
  static constexpr std::size_t kSize = 8;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint16_t length = 0;
};

/// Payload of the Figure 5 echo experiment.  The host sends {value}; the
/// switch echoes the frame back with the stats registers filled in.
struct Stat4EchoHeader {
  static constexpr std::size_t kSize = 8 + 5 * 8;
  std::int64_t value = 0;     ///< random integer in [-255, 255]
  std::uint64_t n = 0;        ///< N
  std::uint64_t xsum = 0;     ///< Xsum
  std::uint64_t xsumsq = 0;   ///< Xsumsq
  std::uint64_t var_nx = 0;   ///< sigma^2(NX)
  std::uint64_t sd_nx = 0;    ///< sigma(NX) via approx sqrt
};

// ---- serialization -------------------------------------------------------
// Each header serializes at a given offset; parse returns nullopt if the
// buffer is too short.  Offsets compose: eth at 0, ipv4 at 14, l4 at 34.

void serialize(const EthernetHeader& h, std::span<Byte> buf,
               std::size_t offset = 0);
void serialize(const Ipv4Header& h, std::span<Byte> buf, std::size_t offset);
void serialize(const TcpHeader& h, std::span<Byte> buf, std::size_t offset);
void serialize(const UdpHeader& h, std::span<Byte> buf, std::size_t offset);
void serialize(const Stat4EchoHeader& h, std::span<Byte> buf,
               std::size_t offset);

[[nodiscard]] std::optional<EthernetHeader> parse_ethernet(
    std::span<const Byte> buf, std::size_t offset = 0);
[[nodiscard]] std::optional<Ipv4Header> parse_ipv4(std::span<const Byte> buf,
                                                   std::size_t offset);
[[nodiscard]] std::optional<TcpHeader> parse_tcp(std::span<const Byte> buf,
                                                 std::size_t offset);
[[nodiscard]] std::optional<UdpHeader> parse_udp(std::span<const Byte> buf,
                                                 std::size_t offset);
[[nodiscard]] std::optional<Stat4EchoHeader> parse_stat4_echo(
    std::span<const Byte> buf, std::size_t offset);

}  // namespace p4sim

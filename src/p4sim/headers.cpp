#include "p4sim/headers.hpp"

namespace p4sim {

namespace {
constexpr std::size_t kIpv4TtlOff = 8;
constexpr std::size_t kIpv4ProtoOff = 9;
constexpr std::size_t kIpv4LenOff = 2;
constexpr std::size_t kIpv4SrcOff = 12;
constexpr std::size_t kIpv4DstOff = 16;
constexpr std::size_t kTcpFlagsOff = 13;
}  // namespace

void serialize(const EthernetHeader& h, std::span<Byte> buf,
               std::size_t offset) {
  if (offset + EthernetHeader::kSize > buf.size()) return;
  for (std::size_t i = 0; i < 6; ++i) buf[offset + i] = h.dst[i];
  for (std::size_t i = 0; i < 6; ++i) buf[offset + 6 + i] = h.src[i];
  write_be(buf, offset + 12, 2, h.ether_type);
}

void serialize(const Ipv4Header& h, std::span<Byte> buf, std::size_t offset) {
  if (offset + Ipv4Header::kSize > buf.size()) return;
  buf[offset] = 0x45;  // version 4, IHL 5
  buf[offset + 1] = 0;
  write_be(buf, offset + kIpv4LenOff, 2, h.total_length);
  write_be(buf, offset + 4, 4, 0);  // id/flags/frag
  buf[offset + kIpv4TtlOff] = h.ttl;
  buf[offset + kIpv4ProtoOff] = h.protocol;
  write_be(buf, offset + 10, 2, 0);  // checksum (not modeled)
  write_be(buf, offset + kIpv4SrcOff, 4, h.src);
  write_be(buf, offset + kIpv4DstOff, 4, h.dst);
}

void serialize(const TcpHeader& h, std::span<Byte> buf, std::size_t offset) {
  if (offset + TcpHeader::kSize > buf.size()) return;
  write_be(buf, offset, 2, h.src_port);
  write_be(buf, offset + 2, 2, h.dst_port);
  write_be(buf, offset + 4, 4, h.seq);
  write_be(buf, offset + 8, 4, 0);  // ack
  buf[offset + 12] = 0x50;          // data offset 5
  buf[offset + kTcpFlagsOff] = h.flags;
  write_be(buf, offset + 14, 2, 0xFFFF);  // window
  write_be(buf, offset + 16, 4, 0);       // checksum/urgent
}

void serialize(const UdpHeader& h, std::span<Byte> buf, std::size_t offset) {
  if (offset + UdpHeader::kSize > buf.size()) return;
  write_be(buf, offset, 2, h.src_port);
  write_be(buf, offset + 2, 2, h.dst_port);
  write_be(buf, offset + 4, 2, h.length);
  write_be(buf, offset + 6, 2, 0);  // checksum
}

void serialize(const Stat4EchoHeader& h, std::span<Byte> buf,
               std::size_t offset) {
  if (offset + Stat4EchoHeader::kSize > buf.size()) return;
  write_be(buf, offset, 8, static_cast<std::uint64_t>(h.value));
  write_be(buf, offset + 8, 8, h.n);
  write_be(buf, offset + 16, 8, h.xsum);
  write_be(buf, offset + 24, 8, h.xsumsq);
  write_be(buf, offset + 32, 8, h.var_nx);
  write_be(buf, offset + 40, 8, h.sd_nx);
}

std::optional<EthernetHeader> parse_ethernet(std::span<const Byte> buf,
                                             std::size_t offset) {
  if (offset + EthernetHeader::kSize > buf.size()) return std::nullopt;
  EthernetHeader h;
  for (std::size_t i = 0; i < 6; ++i) h.dst[i] = buf[offset + i];
  for (std::size_t i = 0; i < 6; ++i) h.src[i] = buf[offset + 6 + i];
  h.ether_type = static_cast<std::uint16_t>(read_be(buf, offset + 12, 2));
  return h;
}

std::optional<Ipv4Header> parse_ipv4(std::span<const Byte> buf,
                                     std::size_t offset) {
  if (offset + Ipv4Header::kSize > buf.size()) return std::nullopt;
  if ((buf[offset] >> 4) != 4) return std::nullopt;  // not IPv4
  Ipv4Header h;
  h.total_length =
      static_cast<std::uint16_t>(read_be(buf, offset + kIpv4LenOff, 2));
  h.ttl = buf[offset + kIpv4TtlOff];
  h.protocol = buf[offset + kIpv4ProtoOff];
  h.src = static_cast<std::uint32_t>(read_be(buf, offset + kIpv4SrcOff, 4));
  h.dst = static_cast<std::uint32_t>(read_be(buf, offset + kIpv4DstOff, 4));
  return h;
}

std::optional<TcpHeader> parse_tcp(std::span<const Byte> buf,
                                   std::size_t offset) {
  if (offset + TcpHeader::kSize > buf.size()) return std::nullopt;
  TcpHeader h;
  h.src_port = static_cast<std::uint16_t>(read_be(buf, offset, 2));
  h.dst_port = static_cast<std::uint16_t>(read_be(buf, offset + 2, 2));
  h.seq = static_cast<std::uint32_t>(read_be(buf, offset + 4, 4));
  h.flags = buf[offset + kTcpFlagsOff];
  return h;
}

std::optional<UdpHeader> parse_udp(std::span<const Byte> buf,
                                   std::size_t offset) {
  if (offset + UdpHeader::kSize > buf.size()) return std::nullopt;
  UdpHeader h;
  h.src_port = static_cast<std::uint16_t>(read_be(buf, offset, 2));
  h.dst_port = static_cast<std::uint16_t>(read_be(buf, offset + 2, 2));
  h.length = static_cast<std::uint16_t>(read_be(buf, offset + 4, 2));
  return h;
}

std::optional<Stat4EchoHeader> parse_stat4_echo(std::span<const Byte> buf,
                                                std::size_t offset) {
  if (offset + Stat4EchoHeader::kSize > buf.size()) return std::nullopt;
  Stat4EchoHeader h;
  h.value = static_cast<std::int64_t>(read_be(buf, offset, 8));
  h.n = read_be(buf, offset + 8, 8);
  h.xsum = read_be(buf, offset + 16, 8);
  h.xsumsq = read_be(buf, offset + 24, 8);
  h.var_nx = read_be(buf, offset + 32, 8);
  h.sd_nx = read_be(buf, offset + 40, 8);
  return h;
}

}  // namespace p4sim

#include "p4sim/dependency.hpp"

#include <algorithm>
#include <map>
#include <set>

namespace p4sim {

namespace {

/// Which temps an instruction reads.
std::vector<TempId> reads_of(const Instruction& ins) {
  switch (ins.op) {
    case Op::kConst:
    case Op::kParam:
    case Op::kLoadField:
      return {};
    case Op::kMov:
    case Op::kNot:
    case Op::kStoreField:
    case Op::kHash1:
    case Op::kHash2:
      return {ins.a};
    case Op::kLoadReg:
      return {ins.a};
    case Op::kStoreReg:
      return {ins.a, ins.b};
    case Op::kSelect:
      return {ins.a, ins.b, ins.c};
    case Op::kDigest:
      return {ins.a, ins.b, ins.c, ins.dst};
    default:
      return {ins.a, ins.b};
  }
}

bool writes_temp(const Instruction& ins) {
  switch (ins.op) {
    case Op::kStoreField:
    case Op::kStoreReg:
    case Op::kDigest:
      return false;
    default:
      return true;
  }
}

/// Which packet fields a program writes (for match dependencies).
std::set<FieldRef> fields_written(const Program& p) {
  std::set<FieldRef> out;
  for (const auto& ins : p.code) {
    if (ins.op == Op::kStoreField) out.insert(ins.field);
  }
  return out;
}

std::set<FieldRef> fields_read_by_key(const MatchActionTable& t) {
  std::set<FieldRef> out;
  for (const auto& k : t.key_layout()) out.insert(k.field);
  return out;
}

}  // namespace

ProgramAnalysis analyze_program(const Program& program) {
  ProgramAnalysis a;
  a.name = program.name;
  a.instructions = program.code.size();

  // depth[i]: length of the longest dependency chain ending at instruction i.
  // Temps create RAW edges; register arrays serialize conservatively
  // (any access depends on the previous access to the same array), which is
  // exactly how a hardware compiler must place them in stages.
  std::vector<std::size_t> depth(program.code.size(), 1);
  std::map<TempId, std::size_t> temp_def_depth;
  std::map<RegisterId, std::size_t> reg_access_depth;

  for (std::size_t i = 0; i < program.code.size(); ++i) {
    const Instruction& ins = program.code[i];
    std::size_t d = 1;
    for (const TempId r : reads_of(ins)) {
      const auto it = temp_def_depth.find(r);
      if (it != temp_def_depth.end()) d = std::max(d, it->second + 1);
    }
    if (ins.op == Op::kLoadReg || ins.op == Op::kStoreReg) {
      const auto it = reg_access_depth.find(ins.reg);
      if (it != reg_access_depth.end()) d = std::max(d, it->second + 1);
      ++(ins.op == Op::kLoadReg ? a.register_reads : a.register_writes);
      reg_access_depth[ins.reg] = d;
    }
    if (ins.op == Op::kMul) a.uses_mul = true;
    if (writes_temp(ins)) temp_def_depth[ins.dst] = d;
    depth[i] = d;
    a.longest_chain = std::max(a.longest_chain, d);
  }
  return a;
}

SwitchAnalysis analyze_switch(const P4Switch& sw) {
  SwitchAnalysis s;
  s.switch_name = sw.name();
  s.tables = sw.table_count();
  s.register_arrays = sw.registers().array_count();
  s.state_bytes = sw.registers().total_state_bytes();
  s.pipeline_stages = sw.pipeline().size();

  for (std::size_t i = 0; i < sw.table_count(); ++i) {
    s.table_entries += sw.table(static_cast<TableId>(i)).entry_count();
  }

  for (std::size_t i = 0; i < sw.action_count(); ++i) {
    auto pa = analyze_program(sw.action(static_cast<ActionId>(i)));
    if (pa.longest_chain > s.longest_action_chain) {
      s.longest_action_chain = pa.longest_chain;
      s.longest_chain_action = pa.name;
    }
    s.programs.push_back(std::move(pa));
  }

  // Match dependencies between pipeline stages: stage j (table or guard)
  // reading a field that an earlier stage's action may have written.
  const auto& stages = sw.pipeline();
  for (std::size_t j = 0; j < stages.size(); ++j) {
    // Fields stage j matches/guards on.
    std::set<FieldRef> read;
    if (stages[j].guard) read.insert(stages[j].guard->field);
    if (stages[j].table) {
      const auto key = fields_read_by_key(sw.table(*stages[j].table));
      read.insert(key.begin(), key.end());
    }
    if (read.empty()) continue;

    bool depends = false;
    for (std::size_t k = 0; k < j && !depends; ++k) {
      std::set<FieldRef> written;
      if (stages[k].action) {
        written = fields_written(sw.action(*stages[k].action));
      } else if (stages[k].table) {
        // Any action reachable from the table could run; union over all
        // registered actions is conservative but we only know the table's
        // installed entries' actions — approximate with all actions.
        for (std::size_t ai = 0; ai < sw.action_count(); ++ai) {
          const auto w = fields_written(sw.action(static_cast<ActionId>(ai)));
          written.insert(w.begin(), w.end());
        }
      }
      for (const FieldRef f : read) {
        if (written.count(f) != 0) {
          depends = true;
          break;
        }
      }
    }
    if (depends) ++s.match_dependencies;
  }
  return s;
}

}  // namespace p4sim

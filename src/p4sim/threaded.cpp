#include "p4sim/threaded.hpp"

#include <array>

#include "stat4/sparse_freq.hpp"

// Computed-goto dispatch needs GNU labels-as-values; MSVC and friends run
// the same op stream through the switch loop below.
#if defined(__GNUC__) || defined(__clang__)
#define STAT4_THREADED_COMPUTED_GOTO 1
#else
#define STAT4_THREADED_COMPUTED_GOTO 0
#endif

namespace p4sim {
namespace {

// Internal opcodes: 0..25 mirror Op exactly (threaded_compile casts the Op
// straight through); the tail adds the forms the pre-decode optimizer
// lowers to — dynamic-register dispatch (programs naming an undeclared
// array keep the interpreter's out_of_range throw), immediate-operand ALU
// variants (one side constant-folded into the op), constant-index register
// accesses with the cell pointer fully pre-resolved, fused compare+select
// pairs, and the stream terminator.
enum InternalOp : std::uint8_t {
  kOpConst,
  kOpParam,
  kOpMov,
  kOpAdd,
  kOpSub,
  kOpMul,
  kOpShl,
  kOpShr,
  kOpAnd,
  kOpOr,
  kOpXor,
  kOpNot,
  kOpEq,
  kOpNe,
  kOpLt,
  kOpGt,
  kOpLe,
  kOpGe,
  kOpSelect,
  kOpLoadField,
  kOpStoreField,
  kOpLoadReg,
  kOpStoreReg,
  kOpHash1,
  kOpHash2,
  kOpDigest,
  kOpLoadRegDyn,
  kOpStoreRegDyn,
  // t[dst] = t[a] <op> imm  (imm pre-masked for the shifts)
  kOpAddImm,
  kOpSubImm,
  kOpRsubImm,  ///< t[dst] = imm - t[a]
  kOpMulImm,
  kOpShlImm,
  kOpShrImm,
  kOpAndImm,
  kOpOrImm,
  kOpXorImm,
  kOpEqImm,
  kOpNeImm,
  kOpLtImm,
  kOpGtImm,
  kOpLeImm,
  kOpGeImm,
  // Constant in-bounds index: reg_base points at THE cell.
  kOpLoadRegAt,   ///< t[dst] = *reg_base
  kOpStoreRegAt,  ///< *reg_base = t[b] & reg_mask
  // t[dst] = (t[a] <cmp> t[b]) ? t[c] : t[e]
  kOpEqSel,
  kOpNeSel,
  kOpLtSel,
  kOpGtSel,
  kOpLeSel,
  kOpGeSel,
  // t[dst] = (t[a] <cmp> imm) ? t[c] : t[e]
  kOpEqImmSel,
  kOpNeImmSel,
  kOpLtImmSel,
  kOpGtImmSel,
  kOpLeImmSel,
  kOpGeImmSel,
  // Select with one constant-folded data operand.
  kOpSelImmB,  ///< t[dst] = t[a] ? imm : t[c]
  kOpSelImmC,  ///< t[dst] = t[a] ? t[b] : imm
  // Fused imm-compare + imm-select: the comparison constant lives in imm,
  // the select's constant data operand in imm2 (the reg_mask slot — unused
  // by ALU ops, so the struct stays one size).
  kOpEqImmSelImmB,  ///< t[dst] = (t[a] == imm) ? imm2 : t[c]
  kOpNeImmSelImmB,
  kOpLtImmSelImmB,
  kOpGtImmSelImmB,
  kOpLeImmSelImmB,
  kOpGeImmSelImmB,
  kOpEqImmSelImmC,  ///< t[dst] = (t[a] == imm) ? t[b] : imm2
  kOpNeImmSelImmC,
  kOpLtImmSelImmC,
  kOpGtImmSelImmC,
  kOpLeImmSelImmC,
  kOpGeImmSelImmC,
  kOpEnd,
};
inline constexpr std::size_t kHandlerCount = kOpEnd + 1;

static_assert(static_cast<std::uint8_t>(Op::kConst) == kOpConst &&
                  static_cast<std::uint8_t>(Op::kSelect) == kOpSelect &&
                  static_cast<std::uint8_t>(Op::kDigest) == kOpDigest,
              "InternalOp prefix must mirror Op ordinal for ordinal cast");

void emit_digest(ThreadedState* st, const ThreadedOp* op) {
  Digest d;
  d.id = static_cast<std::uint32_t>(op->imm);
  d.payload = {st->temps[op->a], st->temps[op->b], st->temps[op->dst]};
  d.time = st->now;
  st->digests->push_back(d);
}

#if STAT4_THREADED_COMPUTED_GOTO
// Taking the address of a label is a GNU extension; the repo builds with
// -Wpedantic -Werror, so the extension is acknowledged explicitly here.
#pragma GCC diagnostic push
#if defined(__clang__)
#pragma GCC diagnostic ignored "-Wgnu-label-as-value"
#else
#pragma GCC diagnostic ignored "-Wpedantic"
#endif
#endif

/// Executes the op stream at `op` over `st`.  Called with st == nullptr it
/// executes nothing and returns the handler-label table instead (only way
/// to read function-local label addresses) — threaded_compile uses that to
/// pre-resolve each op's handler.
const void* const* threaded_core(const ThreadedOp* op, ThreadedState* st) {
#if STAT4_THREADED_COMPUTED_GOTO
  static const void* const kLabels[kHandlerCount] = {
      &&l_const,      &&l_param,      &&l_mov,         &&l_add,
      &&l_sub,        &&l_mul,        &&l_shl,         &&l_shr,
      &&l_and,        &&l_or,         &&l_xor,         &&l_not,
      &&l_eq,         &&l_ne,         &&l_lt,          &&l_gt,
      &&l_le,         &&l_ge,         &&l_select,      &&l_load_field,
      &&l_store_field, &&l_load_reg,  &&l_store_reg,   &&l_hash1,
      &&l_hash2,      &&l_digest,     &&l_load_reg_dyn, &&l_store_reg_dyn,
      &&l_add_imm,    &&l_sub_imm,    &&l_rsub_imm,    &&l_mul_imm,
      &&l_shl_imm,    &&l_shr_imm,    &&l_and_imm,     &&l_or_imm,
      &&l_xor_imm,    &&l_eq_imm,     &&l_ne_imm,      &&l_lt_imm,
      &&l_gt_imm,     &&l_le_imm,     &&l_ge_imm,      &&l_load_reg_at,
      &&l_store_reg_at, &&l_eq_sel,   &&l_ne_sel,      &&l_lt_sel,
      &&l_gt_sel,     &&l_le_sel,     &&l_ge_sel,      &&l_eq_imm_sel,
      &&l_ne_imm_sel, &&l_lt_imm_sel, &&l_gt_imm_sel,  &&l_le_imm_sel,
      &&l_ge_imm_sel, &&l_sel_imm_b,  &&l_sel_imm_c,
      &&l_eq_imm_sel_imm_b, &&l_ne_imm_sel_imm_b, &&l_lt_imm_sel_imm_b,
      &&l_gt_imm_sel_imm_b, &&l_le_imm_sel_imm_b, &&l_ge_imm_sel_imm_b,
      &&l_eq_imm_sel_imm_c, &&l_ne_imm_sel_imm_c, &&l_lt_imm_sel_imm_c,
      &&l_gt_imm_sel_imm_c, &&l_le_imm_sel_imm_c, &&l_ge_imm_sel_imm_c,
      &&l_end};
  if (st == nullptr) return kLabels;
  Word* const t = st->temps;
#define STAT4_THREADED_NEXT() goto* (++op)->handler
  goto* op->handler;
l_const:
  t[op->dst] = op->imm;
  STAT4_THREADED_NEXT();
l_param:
  t[op->dst] = op->imm < st->action_data_len ? st->action_data[op->imm] : 0;
  STAT4_THREADED_NEXT();
l_mov:
  t[op->dst] = t[op->a];
  STAT4_THREADED_NEXT();
l_add:
  t[op->dst] = t[op->a] + t[op->b];
  STAT4_THREADED_NEXT();
l_sub:
  t[op->dst] = t[op->a] - t[op->b];
  STAT4_THREADED_NEXT();
l_mul:
  t[op->dst] = t[op->a] * t[op->b];
  STAT4_THREADED_NEXT();
l_shl:
  t[op->dst] = t[op->a] << (t[op->b] & 63);
  STAT4_THREADED_NEXT();
l_shr:
  t[op->dst] = t[op->a] >> (t[op->b] & 63);
  STAT4_THREADED_NEXT();
l_and:
  t[op->dst] = t[op->a] & t[op->b];
  STAT4_THREADED_NEXT();
l_or:
  t[op->dst] = t[op->a] | t[op->b];
  STAT4_THREADED_NEXT();
l_xor:
  t[op->dst] = t[op->a] ^ t[op->b];
  STAT4_THREADED_NEXT();
l_not:
  t[op->dst] = ~t[op->a];
  STAT4_THREADED_NEXT();
l_eq:
  t[op->dst] = t[op->a] == t[op->b] ? 1 : 0;
  STAT4_THREADED_NEXT();
l_ne:
  t[op->dst] = t[op->a] != t[op->b] ? 1 : 0;
  STAT4_THREADED_NEXT();
l_lt:
  t[op->dst] = t[op->a] < t[op->b] ? 1 : 0;
  STAT4_THREADED_NEXT();
l_gt:
  t[op->dst] = t[op->a] > t[op->b] ? 1 : 0;
  STAT4_THREADED_NEXT();
l_le:
  t[op->dst] = t[op->a] <= t[op->b] ? 1 : 0;
  STAT4_THREADED_NEXT();
l_ge:
  t[op->dst] = t[op->a] >= t[op->b] ? 1 : 0;
  STAT4_THREADED_NEXT();
l_select:
  t[op->dst] = t[op->a] ? t[op->b] : t[op->c];
  STAT4_THREADED_NEXT();
l_load_field:
  t[op->dst] = st->view->get(op->field);
  STAT4_THREADED_NEXT();
l_store_field:
  st->view->set(op->field, t[op->a]);
  STAT4_THREADED_NEXT();
l_load_reg: {
  const Word idx = t[op->a];
  t[op->dst] = idx < op->reg_size ? op->reg_base[idx] : 0;
}
  STAT4_THREADED_NEXT();
l_store_reg: {
  const Word idx = t[op->a];
  if (idx < op->reg_size) op->reg_base[idx] = t[op->b] & op->reg_mask;
}
  STAT4_THREADED_NEXT();
l_hash1:
  t[op->dst] = stat4::sparse_hash1(t[op->a]);
  STAT4_THREADED_NEXT();
l_hash2:
  t[op->dst] = stat4::sparse_hash2(t[op->a]);
  STAT4_THREADED_NEXT();
l_digest:
  if (st->digests != nullptr && t[op->c] != 0) emit_digest(st, op);
  STAT4_THREADED_NEXT();
l_load_reg_dyn:
  t[op->dst] = st->registers->read(op->reg, t[op->a]);
  STAT4_THREADED_NEXT();
l_store_reg_dyn:
  st->registers->write(op->reg, t[op->a], t[op->b]);
  STAT4_THREADED_NEXT();
l_add_imm:
  t[op->dst] = t[op->a] + op->imm;
  STAT4_THREADED_NEXT();
l_sub_imm:
  t[op->dst] = t[op->a] - op->imm;
  STAT4_THREADED_NEXT();
l_rsub_imm:
  t[op->dst] = op->imm - t[op->a];
  STAT4_THREADED_NEXT();
l_mul_imm:
  t[op->dst] = t[op->a] * op->imm;
  STAT4_THREADED_NEXT();
l_shl_imm:
  t[op->dst] = t[op->a] << op->imm;
  STAT4_THREADED_NEXT();
l_shr_imm:
  t[op->dst] = t[op->a] >> op->imm;
  STAT4_THREADED_NEXT();
l_and_imm:
  t[op->dst] = t[op->a] & op->imm;
  STAT4_THREADED_NEXT();
l_or_imm:
  t[op->dst] = t[op->a] | op->imm;
  STAT4_THREADED_NEXT();
l_xor_imm:
  t[op->dst] = t[op->a] ^ op->imm;
  STAT4_THREADED_NEXT();
l_eq_imm:
  t[op->dst] = t[op->a] == op->imm ? 1 : 0;
  STAT4_THREADED_NEXT();
l_ne_imm:
  t[op->dst] = t[op->a] != op->imm ? 1 : 0;
  STAT4_THREADED_NEXT();
l_lt_imm:
  t[op->dst] = t[op->a] < op->imm ? 1 : 0;
  STAT4_THREADED_NEXT();
l_gt_imm:
  t[op->dst] = t[op->a] > op->imm ? 1 : 0;
  STAT4_THREADED_NEXT();
l_le_imm:
  t[op->dst] = t[op->a] <= op->imm ? 1 : 0;
  STAT4_THREADED_NEXT();
l_ge_imm:
  t[op->dst] = t[op->a] >= op->imm ? 1 : 0;
  STAT4_THREADED_NEXT();
l_load_reg_at:
  t[op->dst] = *op->reg_base;
  STAT4_THREADED_NEXT();
l_store_reg_at:
  *op->reg_base = t[op->b] & op->reg_mask;
  STAT4_THREADED_NEXT();
l_eq_sel:
  t[op->dst] = t[op->a] == t[op->b] ? t[op->c] : t[op->e];
  STAT4_THREADED_NEXT();
l_ne_sel:
  t[op->dst] = t[op->a] != t[op->b] ? t[op->c] : t[op->e];
  STAT4_THREADED_NEXT();
l_lt_sel:
  t[op->dst] = t[op->a] < t[op->b] ? t[op->c] : t[op->e];
  STAT4_THREADED_NEXT();
l_gt_sel:
  t[op->dst] = t[op->a] > t[op->b] ? t[op->c] : t[op->e];
  STAT4_THREADED_NEXT();
l_le_sel:
  t[op->dst] = t[op->a] <= t[op->b] ? t[op->c] : t[op->e];
  STAT4_THREADED_NEXT();
l_ge_sel:
  t[op->dst] = t[op->a] >= t[op->b] ? t[op->c] : t[op->e];
  STAT4_THREADED_NEXT();
l_eq_imm_sel:
  t[op->dst] = t[op->a] == op->imm ? t[op->c] : t[op->e];
  STAT4_THREADED_NEXT();
l_ne_imm_sel:
  t[op->dst] = t[op->a] != op->imm ? t[op->c] : t[op->e];
  STAT4_THREADED_NEXT();
l_lt_imm_sel:
  t[op->dst] = t[op->a] < op->imm ? t[op->c] : t[op->e];
  STAT4_THREADED_NEXT();
l_gt_imm_sel:
  t[op->dst] = t[op->a] > op->imm ? t[op->c] : t[op->e];
  STAT4_THREADED_NEXT();
l_le_imm_sel:
  t[op->dst] = t[op->a] <= op->imm ? t[op->c] : t[op->e];
  STAT4_THREADED_NEXT();
l_ge_imm_sel:
  t[op->dst] = t[op->a] >= op->imm ? t[op->c] : t[op->e];
  STAT4_THREADED_NEXT();
l_sel_imm_b:
  t[op->dst] = t[op->a] ? op->imm : t[op->c];
  STAT4_THREADED_NEXT();
l_sel_imm_c:
  t[op->dst] = t[op->a] ? t[op->b] : op->imm;
  STAT4_THREADED_NEXT();
l_eq_imm_sel_imm_b:
  t[op->dst] = t[op->a] == op->imm ? op->reg_mask : t[op->c];
  STAT4_THREADED_NEXT();
l_ne_imm_sel_imm_b:
  t[op->dst] = t[op->a] != op->imm ? op->reg_mask : t[op->c];
  STAT4_THREADED_NEXT();
l_lt_imm_sel_imm_b:
  t[op->dst] = t[op->a] < op->imm ? op->reg_mask : t[op->c];
  STAT4_THREADED_NEXT();
l_gt_imm_sel_imm_b:
  t[op->dst] = t[op->a] > op->imm ? op->reg_mask : t[op->c];
  STAT4_THREADED_NEXT();
l_le_imm_sel_imm_b:
  t[op->dst] = t[op->a] <= op->imm ? op->reg_mask : t[op->c];
  STAT4_THREADED_NEXT();
l_ge_imm_sel_imm_b:
  t[op->dst] = t[op->a] >= op->imm ? op->reg_mask : t[op->c];
  STAT4_THREADED_NEXT();
l_eq_imm_sel_imm_c:
  t[op->dst] = t[op->a] == op->imm ? t[op->b] : op->reg_mask;
  STAT4_THREADED_NEXT();
l_ne_imm_sel_imm_c:
  t[op->dst] = t[op->a] != op->imm ? t[op->b] : op->reg_mask;
  STAT4_THREADED_NEXT();
l_lt_imm_sel_imm_c:
  t[op->dst] = t[op->a] < op->imm ? t[op->b] : op->reg_mask;
  STAT4_THREADED_NEXT();
l_gt_imm_sel_imm_c:
  t[op->dst] = t[op->a] > op->imm ? t[op->b] : op->reg_mask;
  STAT4_THREADED_NEXT();
l_le_imm_sel_imm_c:
  t[op->dst] = t[op->a] <= op->imm ? t[op->b] : op->reg_mask;
  STAT4_THREADED_NEXT();
l_ge_imm_sel_imm_c:
  t[op->dst] = t[op->a] >= op->imm ? t[op->b] : op->reg_mask;
  STAT4_THREADED_NEXT();
l_end:
  return nullptr;
#undef STAT4_THREADED_NEXT
#else   // !STAT4_THREADED_COMPUTED_GOTO: portable switch loop
  if (st == nullptr) return nullptr;
  Word* const t = st->temps;
  for (;; ++op) {
    switch (static_cast<InternalOp>(op->opcode)) {
      case kOpConst: t[op->dst] = op->imm; break;
      case kOpParam:
        t[op->dst] =
            op->imm < st->action_data_len ? st->action_data[op->imm] : 0;
        break;
      case kOpMov: t[op->dst] = t[op->a]; break;
      case kOpAdd: t[op->dst] = t[op->a] + t[op->b]; break;
      case kOpSub: t[op->dst] = t[op->a] - t[op->b]; break;
      case kOpMul: t[op->dst] = t[op->a] * t[op->b]; break;
      case kOpShl: t[op->dst] = t[op->a] << (t[op->b] & 63); break;
      case kOpShr: t[op->dst] = t[op->a] >> (t[op->b] & 63); break;
      case kOpAnd: t[op->dst] = t[op->a] & t[op->b]; break;
      case kOpOr: t[op->dst] = t[op->a] | t[op->b]; break;
      case kOpXor: t[op->dst] = t[op->a] ^ t[op->b]; break;
      case kOpNot: t[op->dst] = ~t[op->a]; break;
      case kOpEq: t[op->dst] = t[op->a] == t[op->b] ? 1 : 0; break;
      case kOpNe: t[op->dst] = t[op->a] != t[op->b] ? 1 : 0; break;
      case kOpLt: t[op->dst] = t[op->a] < t[op->b] ? 1 : 0; break;
      case kOpGt: t[op->dst] = t[op->a] > t[op->b] ? 1 : 0; break;
      case kOpLe: t[op->dst] = t[op->a] <= t[op->b] ? 1 : 0; break;
      case kOpGe: t[op->dst] = t[op->a] >= t[op->b] ? 1 : 0; break;
      case kOpSelect: t[op->dst] = t[op->a] ? t[op->b] : t[op->c]; break;
      case kOpLoadField: t[op->dst] = st->view->get(op->field); break;
      case kOpStoreField: st->view->set(op->field, t[op->a]); break;
      case kOpLoadReg: {
        const Word idx = t[op->a];
        t[op->dst] = idx < op->reg_size ? op->reg_base[idx] : 0;
        break;
      }
      case kOpStoreReg: {
        const Word idx = t[op->a];
        if (idx < op->reg_size) op->reg_base[idx] = t[op->b] & op->reg_mask;
        break;
      }
      case kOpHash1: t[op->dst] = stat4::sparse_hash1(t[op->a]); break;
      case kOpHash2: t[op->dst] = stat4::sparse_hash2(t[op->a]); break;
      case kOpDigest:
        if (st->digests != nullptr && t[op->c] != 0) emit_digest(st, op);
        break;
      case kOpLoadRegDyn:
        t[op->dst] = st->registers->read(op->reg, t[op->a]);
        break;
      case kOpStoreRegDyn:
        st->registers->write(op->reg, t[op->a], t[op->b]);
        break;
      case kOpAddImm: t[op->dst] = t[op->a] + op->imm; break;
      case kOpSubImm: t[op->dst] = t[op->a] - op->imm; break;
      case kOpRsubImm: t[op->dst] = op->imm - t[op->a]; break;
      case kOpMulImm: t[op->dst] = t[op->a] * op->imm; break;
      case kOpShlImm: t[op->dst] = t[op->a] << op->imm; break;
      case kOpShrImm: t[op->dst] = t[op->a] >> op->imm; break;
      case kOpAndImm: t[op->dst] = t[op->a] & op->imm; break;
      case kOpOrImm: t[op->dst] = t[op->a] | op->imm; break;
      case kOpXorImm: t[op->dst] = t[op->a] ^ op->imm; break;
      case kOpEqImm: t[op->dst] = t[op->a] == op->imm ? 1 : 0; break;
      case kOpNeImm: t[op->dst] = t[op->a] != op->imm ? 1 : 0; break;
      case kOpLtImm: t[op->dst] = t[op->a] < op->imm ? 1 : 0; break;
      case kOpGtImm: t[op->dst] = t[op->a] > op->imm ? 1 : 0; break;
      case kOpLeImm: t[op->dst] = t[op->a] <= op->imm ? 1 : 0; break;
      case kOpGeImm: t[op->dst] = t[op->a] >= op->imm ? 1 : 0; break;
      case kOpLoadRegAt: t[op->dst] = *op->reg_base; break;
      case kOpStoreRegAt: *op->reg_base = t[op->b] & op->reg_mask; break;
      case kOpEqSel:
        t[op->dst] = t[op->a] == t[op->b] ? t[op->c] : t[op->e];
        break;
      case kOpNeSel:
        t[op->dst] = t[op->a] != t[op->b] ? t[op->c] : t[op->e];
        break;
      case kOpLtSel:
        t[op->dst] = t[op->a] < t[op->b] ? t[op->c] : t[op->e];
        break;
      case kOpGtSel:
        t[op->dst] = t[op->a] > t[op->b] ? t[op->c] : t[op->e];
        break;
      case kOpLeSel:
        t[op->dst] = t[op->a] <= t[op->b] ? t[op->c] : t[op->e];
        break;
      case kOpGeSel:
        t[op->dst] = t[op->a] >= t[op->b] ? t[op->c] : t[op->e];
        break;
      case kOpEqImmSel:
        t[op->dst] = t[op->a] == op->imm ? t[op->c] : t[op->e];
        break;
      case kOpNeImmSel:
        t[op->dst] = t[op->a] != op->imm ? t[op->c] : t[op->e];
        break;
      case kOpLtImmSel:
        t[op->dst] = t[op->a] < op->imm ? t[op->c] : t[op->e];
        break;
      case kOpGtImmSel:
        t[op->dst] = t[op->a] > op->imm ? t[op->c] : t[op->e];
        break;
      case kOpLeImmSel:
        t[op->dst] = t[op->a] <= op->imm ? t[op->c] : t[op->e];
        break;
      case kOpGeImmSel:
        t[op->dst] = t[op->a] >= op->imm ? t[op->c] : t[op->e];
        break;
      case kOpSelImmB:
        t[op->dst] = t[op->a] ? op->imm : t[op->c];
        break;
      case kOpSelImmC:
        t[op->dst] = t[op->a] ? t[op->b] : op->imm;
        break;
      case kOpEqImmSelImmB:
        t[op->dst] = t[op->a] == op->imm ? op->reg_mask : t[op->c];
        break;
      case kOpNeImmSelImmB:
        t[op->dst] = t[op->a] != op->imm ? op->reg_mask : t[op->c];
        break;
      case kOpLtImmSelImmB:
        t[op->dst] = t[op->a] < op->imm ? op->reg_mask : t[op->c];
        break;
      case kOpGtImmSelImmB:
        t[op->dst] = t[op->a] > op->imm ? op->reg_mask : t[op->c];
        break;
      case kOpLeImmSelImmB:
        t[op->dst] = t[op->a] <= op->imm ? op->reg_mask : t[op->c];
        break;
      case kOpGeImmSelImmB:
        t[op->dst] = t[op->a] >= op->imm ? op->reg_mask : t[op->c];
        break;
      case kOpEqImmSelImmC:
        t[op->dst] = t[op->a] == op->imm ? t[op->b] : op->reg_mask;
        break;
      case kOpNeImmSelImmC:
        t[op->dst] = t[op->a] != op->imm ? t[op->b] : op->reg_mask;
        break;
      case kOpLtImmSelImmC:
        t[op->dst] = t[op->a] < op->imm ? t[op->b] : op->reg_mask;
        break;
      case kOpGtImmSelImmC:
        t[op->dst] = t[op->a] > op->imm ? t[op->b] : op->reg_mask;
        break;
      case kOpLeImmSelImmC:
        t[op->dst] = t[op->a] <= op->imm ? t[op->b] : op->reg_mask;
        break;
      case kOpGeImmSelImmC:
        t[op->dst] = t[op->a] >= op->imm ? t[op->b] : op->reg_mask;
        break;
      case kOpEnd: return nullptr;
    }
  }
#endif  // STAT4_THREADED_COMPUTED_GOTO
}

#if STAT4_THREADED_COMPUTED_GOTO
#pragma GCC diagnostic pop
#endif

// ---------------------------------------------------------------- optimizer

/// Read/write model of one lowered op — the optimizer's mirror of the
/// handler bodies above.  `pure` means "no effect beyond writing dst":
/// store/digest ops and the dynamic-register forms (which can throw) must
/// never be eliminated.
struct OpIO {
  std::array<TempId, 4> reads{};
  std::size_t nreads = 0;
  bool writes = false;
  bool pure = false;
};

OpIO op_io(const ThreadedOp& op) {
  OpIO io;
  const auto r = [&io](TempId id) { io.reads[io.nreads++] = id; };
  switch (static_cast<InternalOp>(op.opcode)) {
    case kOpConst:
    case kOpParam:
    case kOpLoadField:
    case kOpLoadRegAt:
      io.writes = io.pure = true;
      break;
    case kOpMov:
    case kOpNot:
    case kOpHash1:
    case kOpHash2:
    case kOpLoadReg:
    case kOpAddImm:
    case kOpSubImm:
    case kOpRsubImm:
    case kOpMulImm:
    case kOpShlImm:
    case kOpShrImm:
    case kOpAndImm:
    case kOpOrImm:
    case kOpXorImm:
    case kOpEqImm:
    case kOpNeImm:
    case kOpLtImm:
    case kOpGtImm:
    case kOpLeImm:
    case kOpGeImm:
      io.writes = io.pure = true;
      r(op.a);
      break;
    case kOpAdd:
    case kOpSub:
    case kOpMul:
    case kOpShl:
    case kOpShr:
    case kOpAnd:
    case kOpOr:
    case kOpXor:
    case kOpEq:
    case kOpNe:
    case kOpLt:
    case kOpGt:
    case kOpLe:
    case kOpGe:
    case kOpSelImmC:
    case kOpEqImmSelImmC:
    case kOpNeImmSelImmC:
    case kOpLtImmSelImmC:
    case kOpGtImmSelImmC:
    case kOpLeImmSelImmC:
    case kOpGeImmSelImmC:
      io.writes = io.pure = true;
      r(op.a);
      r(op.b);
      break;
    case kOpSelImmB:
    case kOpEqImmSelImmB:
    case kOpNeImmSelImmB:
    case kOpLtImmSelImmB:
    case kOpGtImmSelImmB:
    case kOpLeImmSelImmB:
    case kOpGeImmSelImmB:
      io.writes = io.pure = true;
      r(op.a);
      r(op.c);
      break;
    case kOpSelect:
      io.writes = io.pure = true;
      r(op.a);
      r(op.b);
      r(op.c);
      break;
    case kOpEqImmSel:
    case kOpNeImmSel:
    case kOpLtImmSel:
    case kOpGtImmSel:
    case kOpLeImmSel:
    case kOpGeImmSel:
      io.writes = io.pure = true;
      r(op.a);
      r(op.c);
      r(op.e);
      break;
    case kOpEqSel:
    case kOpNeSel:
    case kOpLtSel:
    case kOpGtSel:
    case kOpLeSel:
    case kOpGeSel:
      io.writes = io.pure = true;
      r(op.a);
      r(op.b);
      r(op.c);
      r(op.e);
      break;
    case kOpStoreField:
      r(op.a);
      break;
    case kOpStoreReg:
    case kOpStoreRegDyn:
      r(op.a);
      r(op.b);
      break;
    case kOpStoreRegAt:
      r(op.b);
      break;
    case kOpLoadRegDyn:  // not pure: unknown arrays throw
      io.writes = true;
      r(op.a);
      break;
    case kOpDigest:
      r(op.a);
      r(op.b);
      r(op.c);
      r(op.dst);
      break;
    case kOpEnd:
      break;
  }
  return io;
}

/// Applies `f` to every operand field of `op` that is a READ of a temp —
/// the mutable mirror of op_io's read list, used by copy propagation to
/// redirect reads at the copy's source.
template <typename F>
void for_each_read(ThreadedOp& op, F&& f) {
  const OpIO io = op_io(op);
  // op_io reports the read VALUES in field order a, b/c/e, (digest: dst);
  // map them back onto the fields by matching the same switch groups.
  switch (static_cast<InternalOp>(op.opcode)) {
    case kOpDigest:
      f(op.a);
      f(op.b);
      f(op.c);
      f(op.dst);
      return;
    case kOpStoreRegAt:
      f(op.b);
      return;
    default:
      break;
  }
  // Remaining ops read a prefix of (a, then b or c, then c or e) — walk
  // the canonical order and stop after io.nreads fields.
  std::size_t left = io.nreads;
  if (left == 0) return;
  f(op.a);
  if (--left == 0) return;
  switch (static_cast<InternalOp>(op.opcode)) {
    case kOpSelImmB:
    case kOpEqImmSelImmB:
    case kOpNeImmSelImmB:
    case kOpLtImmSelImmB:
    case kOpGtImmSelImmB:
    case kOpLeImmSelImmB:
    case kOpGeImmSelImmB:
      f(op.c);
      return;
    case kOpEqImmSel:
    case kOpNeImmSel:
    case kOpLtImmSel:
    case kOpGtImmSel:
    case kOpLeImmSel:
    case kOpGeImmSel:
      f(op.c);
      f(op.e);
      return;
    default:
      f(op.b);
      if (--left == 0) return;
      f(op.c);
      if (--left == 0) return;
      f(op.e);
      return;
  }
}

/// Interpreter-exact evaluation of a two-operand ALU op over known values.
Word fold_binary(Op op, Word a, Word b) {
  switch (op) {
    case Op::kAdd: return a + b;
    case Op::kSub: return a - b;
    case Op::kMul: return a * b;
    case Op::kShl: return a << (b & 63);
    case Op::kShr: return a >> (b & 63);
    case Op::kAnd: return a & b;
    case Op::kOr: return a | b;
    case Op::kXor: return a ^ b;
    case Op::kEq: return a == b ? 1 : 0;
    case Op::kNe: return a != b ? 1 : 0;
    case Op::kLt: return a < b ? 1 : 0;
    case Op::kGt: return a > b ? 1 : 0;
    case Op::kLe: return a <= b ? 1 : 0;
    case Op::kGe: return a >= b ? 1 : 0;
    default: return 0;
  }
}

/// The immediate-operand form of `op` with the constant on the RIGHT
/// (t[a] <op> imm); 0 when none exists.
std::uint8_t imm_form(Op op) {
  switch (op) {
    case Op::kAdd: return kOpAddImm;
    case Op::kSub: return kOpSubImm;
    case Op::kMul: return kOpMulImm;
    case Op::kShl: return kOpShlImm;
    case Op::kShr: return kOpShrImm;
    case Op::kAnd: return kOpAndImm;
    case Op::kOr: return kOpOrImm;
    case Op::kXor: return kOpXorImm;
    case Op::kEq: return kOpEqImm;
    case Op::kNe: return kOpNeImm;
    case Op::kLt: return kOpLtImm;
    case Op::kGt: return kOpGtImm;
    case Op::kLe: return kOpLeImm;
    case Op::kGe: return kOpGeImm;
    default: return 0;
  }
}

/// The immediate-operand form with the constant on the LEFT
/// (imm <op> t[b]), rewritten as an equivalent right-imm op on t[b];
/// 0 when the op cannot be mirrored.
std::uint8_t imm_form_swapped(Op op) {
  switch (op) {
    case Op::kAdd: return kOpAddImm;
    case Op::kMul: return kOpMulImm;
    case Op::kAnd: return kOpAndImm;
    case Op::kOr: return kOpOrImm;
    case Op::kXor: return kOpXorImm;
    case Op::kEq: return kOpEqImm;
    case Op::kNe: return kOpNeImm;
    case Op::kSub: return kOpRsubImm;  // imm - t[b]
    case Op::kLt: return kOpGtImm;     // imm <  t  ⇔  t >  imm
    case Op::kGt: return kOpLtImm;
    case Op::kLe: return kOpGeImm;
    case Op::kGe: return kOpLeImm;
    default: return 0;  // imm << t / imm >> t stay two ops
  }
}

/// The fused compare+select form of a comparison opcode; 0 when `opcode`
/// is not a comparison.
std::uint8_t sel_form(std::uint8_t opcode) {
  switch (static_cast<InternalOp>(opcode)) {
    case kOpEq: return kOpEqSel;
    case kOpNe: return kOpNeSel;
    case kOpLt: return kOpLtSel;
    case kOpGt: return kOpGtSel;
    case kOpLe: return kOpLeSel;
    case kOpGe: return kOpGeSel;
    case kOpEqImm: return kOpEqImmSel;
    case kOpNeImm: return kOpNeImmSel;
    case kOpLtImm: return kOpLtImmSel;
    case kOpGtImm: return kOpGtImmSel;
    case kOpLeImm: return kOpLeImmSel;
    case kOpGeImm: return kOpGeImmSel;
    default: return 0;
  }
}

/// Fused imm-compare + kOpSelImmB form; 0 unless `opcode` is an imm
/// comparison (the second immediate rides in the reg_mask slot, which
/// reg-reg comparisons fused with an imm-select would also need — those
/// pairs simply stay unfused).
std::uint8_t sel_imm_b_form(std::uint8_t opcode) {
  switch (static_cast<InternalOp>(opcode)) {
    case kOpEqImm: return kOpEqImmSelImmB;
    case kOpNeImm: return kOpNeImmSelImmB;
    case kOpLtImm: return kOpLtImmSelImmB;
    case kOpGtImm: return kOpGtImmSelImmB;
    case kOpLeImm: return kOpLeImmSelImmB;
    case kOpGeImm: return kOpGeImmSelImmB;
    default: return 0;
  }
}

/// Fused imm-compare + kOpSelImmC form; 0 unless `opcode` is an imm
/// comparison.
std::uint8_t sel_imm_c_form(std::uint8_t opcode) {
  switch (static_cast<InternalOp>(opcode)) {
    case kOpEqImm: return kOpEqImmSelImmC;
    case kOpNeImm: return kOpNeImmSelImmC;
    case kOpLtImm: return kOpLtImmSelImmC;
    case kOpGtImm: return kOpGtImmSelImmC;
    case kOpLeImm: return kOpLeImmSelImmC;
    case kOpGeImm: return kOpGeImmSelImmC;
    default: return 0;
  }
}

}  // namespace

ThreadedProgram threaded_compile(const Program& program,
                                 RegisterFile& registers,
                                 const std::bitset<kTempCount>& observable) {
  // ---- pass 1: lower + straight-line constant propagation ----------------
  // Straight-line code makes the dataflow exact: a temp holds a known value
  // from the op that wrote it until the next op that overwrites it.  Every
  // fold evaluates with the interpreter's own semantics (wrapping u64,
  // shift-count masking, the real hash externs), so optimization can never
  // change results — the differential suites replay every catalog app to
  // prove it.
  std::vector<ThreadedOp> ops;
  ops.reserve(program.code.size() + 1);
  std::vector<char> known(kTempCount, 0);
  std::vector<Word> value(kTempCount, 0);
  const auto set_known = [&](TempId id, Word v) {
    known[id] = 1;
    value[id] = v;
  };
  const auto clobber = [&](TempId id) { known[id] = 0; };

  for (const Instruction& ins : program.code) {
    ThreadedOp op;
    op.opcode = static_cast<std::uint8_t>(ins.op);
    op.dst = ins.dst;
    op.a = ins.a;
    op.b = ins.b;
    op.c = ins.c;
    op.field = ins.field;
    op.reg = ins.reg;
    op.imm = ins.imm;

    switch (ins.op) {
      case Op::kConst:
        set_known(ins.dst, ins.imm);
        break;
      case Op::kParam:
      case Op::kLoadField:
        clobber(ins.dst);
        break;
      case Op::kMov:
        if (known[ins.a]) {
          op.opcode = kOpConst;
          op.imm = value[ins.a];
          set_known(ins.dst, op.imm);
        } else {
          clobber(ins.dst);
        }
        break;
      case Op::kNot:
        if (known[ins.a]) {
          op.opcode = kOpConst;
          op.imm = ~value[ins.a];
          set_known(ins.dst, op.imm);
        } else {
          clobber(ins.dst);
        }
        break;
      case Op::kHash1:
        if (known[ins.a]) {
          op.opcode = kOpConst;
          op.imm = stat4::sparse_hash1(value[ins.a]);
          set_known(ins.dst, op.imm);
        } else {
          clobber(ins.dst);
        }
        break;
      case Op::kHash2:
        if (known[ins.a]) {
          op.opcode = kOpConst;
          op.imm = stat4::sparse_hash2(value[ins.a]);
          set_known(ins.dst, op.imm);
        } else {
          clobber(ins.dst);
        }
        break;
      case Op::kSelect:
        if (known[ins.a]) {
          const TempId src = value[ins.a] != 0 ? ins.b : ins.c;
          if (known[src]) {
            op.opcode = kOpConst;
            op.imm = value[src];
            set_known(ins.dst, op.imm);
          } else {
            op.opcode = kOpMov;
            op.a = src;
            clobber(ins.dst);
          }
        } else {
          // Unknown condition: fold a constant data operand into the op
          // (at most one — there is a single imm slot; prefer b).
          if (known[ins.b]) {
            op.opcode = kOpSelImmB;
            op.imm = value[ins.b];
          } else if (known[ins.c]) {
            op.opcode = kOpSelImmC;
            op.imm = value[ins.c];
          }
          clobber(ins.dst);
        }
        break;
      case Op::kAdd:
      case Op::kSub:
      case Op::kMul:
      case Op::kShl:
      case Op::kShr:
      case Op::kAnd:
      case Op::kOr:
      case Op::kXor:
      case Op::kEq:
      case Op::kNe:
      case Op::kLt:
      case Op::kGt:
      case Op::kLe:
      case Op::kGe:
        if (known[ins.a] && known[ins.b]) {
          op.opcode = kOpConst;
          op.imm = fold_binary(ins.op, value[ins.a], value[ins.b]);
          set_known(ins.dst, op.imm);
        } else if (known[ins.b] && imm_form(ins.op) != 0) {
          op.opcode = imm_form(ins.op);
          op.imm = (ins.op == Op::kShl || ins.op == Op::kShr)
                       ? (value[ins.b] & 63)
                       : value[ins.b];
          clobber(ins.dst);
        } else if (known[ins.a] && imm_form_swapped(ins.op) != 0) {
          op.opcode = imm_form_swapped(ins.op);
          op.a = ins.b;
          op.imm = value[ins.a];
          clobber(ins.dst);
        } else {
          clobber(ins.dst);
        }
        break;
      case Op::kStoreField:
      case Op::kDigest:
        break;  // no temp written
      case Op::kLoadReg:
      case Op::kStoreReg:
        if (ins.reg < registers.array_count()) {
          const RegisterWindow w = registers.window(ins.reg);
          op.reg_base = w.base;
          op.reg_size = w.size;
          op.reg_mask = w.mask;
          if (known[ins.a]) {
            const Word idx = value[ins.a];
            if (ins.op == Op::kLoadReg) {
              if (idx < w.size) {
                op.opcode = kOpLoadRegAt;
                op.reg_base = w.base + idx;
              } else {
                op.opcode = kOpConst;  // OOB read is 0
                op.imm = 0;
              }
            } else {
              if (idx < w.size) {
                op.opcode = kOpStoreRegAt;
                op.reg_base = w.base + idx;
              } else {
                continue;  // OOB write is dropped — whole op vanishes
              }
            }
          }
        } else {
          // Undeclared array: keep the interpreter's throwing dispatch.
          op.opcode = ins.op == Op::kLoadReg ? kOpLoadRegDyn : kOpStoreRegDyn;
        }
        if (ins.op == Op::kLoadReg) {
          if (op.opcode == kOpConst) {
            set_known(ins.dst, 0);
          } else {
            clobber(ins.dst);
          }
        }
        break;
    }
    ops.push_back(op);
  }

  // ---- pass 1.5: copy propagation ----------------------------------------
  // Straight-line: while `root[t] == s`, t holds the same value as s, so
  // reads of t are redirected to s and the kOpMov that created the alias
  // becomes dead (pass 2 collects it unless its dst is observable).  An
  // alias dies when either side is overwritten.
  {
    std::vector<TempId> root(kTempCount);
    for (std::size_t i = 0; i < kTempCount; ++i) {
      root[i] = static_cast<TempId>(i);
    }
    for (ThreadedOp& op : ops) {
      for_each_read(op, [&root](TempId& id) { id = root[id]; });
      const OpIO io = op_io(op);
      if (io.writes) {
        for (std::size_t t = 0; t < kTempCount; ++t) {
          if (root[t] == op.dst) root[t] = static_cast<TempId>(t);
        }
        root[op.dst] =
            op.opcode == kOpMov ? op.a : op.dst;  // a is already rooted
      }
    }
  }

  // ---- pass 2: dead-code elimination -------------------------------------
  // Backwards liveness seeded with `observable`: a pure op whose dst no
  // later op in this program reads and no installed action can read before
  // writing (tables dispatch dynamically, so any action may run next) is
  // dropped.  This is where the constants that got folded into immediates
  // disappear.
  {
    std::bitset<kTempCount> live = observable;
    std::vector<char> keep(ops.size(), 1);
    for (std::size_t i = ops.size(); i-- > 0;) {
      const OpIO io = op_io(ops[i]);
      if (io.pure && !live[ops[i].dst]) {
        keep[i] = 0;
        continue;
      }
      if (io.writes) live.reset(ops[i].dst);
      for (std::size_t r = 0; r < io.nreads; ++r) live.set(io.reads[r]);
    }
    std::size_t w = 0;
    for (std::size_t i = 0; i < ops.size(); ++i) {
      if (keep[i]) ops[w++] = ops[i];
    }
    ops.resize(w);
  }

  // ---- pass 3: compare+select fusion -------------------------------------
  // cmp(dst=c) directly followed by select(cond=c) collapses into one op
  // when nothing else observes the comparison bit: c must not feed the
  // select's data operands, must not be observable cross-action, and no
  // later op may read it before writing it.
  {
    std::size_t w = 0;
    for (std::size_t i = 0; i < ops.size(); ++i, ++w) {
      if (w != i) ops[w] = ops[i];
      if (i + 1 >= ops.size()) continue;
      const ThreadedOp& sel = ops[i + 1];
      const TempId cond = ops[w].dst;
      std::uint8_t fused = 0;
      bool data_reads_cond = true;
      if (sel.a == cond) {
        if (sel.opcode == kOpSelect) {
          fused = sel_form(ops[w].opcode);
          data_reads_cond = sel.b == cond || sel.c == cond;
        } else if (sel.opcode == kOpSelImmB) {
          fused = sel_imm_b_form(ops[w].opcode);
          data_reads_cond = sel.c == cond;
        } else if (sel.opcode == kOpSelImmC) {
          fused = sel_imm_c_form(ops[w].opcode);
          data_reads_cond = sel.b == cond;
        }
      }
      if (fused == 0 || data_reads_cond) continue;
      // sel.dst == cond: the select overwrote the comparison bit anyway, so
      // later readers see the select result in both shapes.  Otherwise cond
      // must be invisible: not cross-action observable and re-written before
      // any later read in this program.
      if (sel.dst != cond) {
        if (observable[cond]) continue;
        bool cond_dead = true;
        for (std::size_t j = i + 2; j < ops.size(); ++j) {
          const OpIO io = op_io(ops[j]);
          bool reads_cond = false;
          for (std::size_t r = 0; r < io.nreads; ++r) {
            reads_cond |= io.reads[r] == cond;
          }
          if (reads_cond) {
            cond_dead = false;
            break;
          }
          if (io.writes && ops[j].dst == cond) break;  // re-written first
        }
        if (!cond_dead) continue;
      }
      ops[w].opcode = fused;
      ops[w].dst = sel.dst;
      if (sel.opcode == kOpSelect) {
        ops[w].c = sel.b;
        ops[w].e = sel.c;
      } else if (sel.opcode == kOpSelImmB) {
        ops[w].reg_mask = sel.imm;  // true-branch constant
        ops[w].c = sel.c;
      } else {  // kOpSelImmC
        ops[w].reg_mask = sel.imm;  // false-branch constant
        ops[w].b = sel.b;
      }
      ++i;  // the select is consumed
    }
    ops.resize(w);
  }

  ThreadedProgram out;
  out.ops = std::move(ops);
  ThreadedOp end;
  end.opcode = kOpEnd;
  out.ops.push_back(end);
#if STAT4_THREADED_COMPUTED_GOTO
  const void* const* labels = threaded_core(nullptr, nullptr);
  for (ThreadedOp& op : out.ops) op.handler = labels[op.opcode];
#endif
  return out;
}

void threaded_execute(const ThreadedProgram& program, ThreadedState& state) {
  threaded_core(program.ops.data(), &state);
}

bool threaded_uses_computed_goto() noexcept {
  return STAT4_THREADED_COMPUTED_GOTO != 0;
}

}  // namespace p4sim

// Umbrella header for the p4sim software-switch substrate.
//
// p4sim stands in for bmv2 in this reproduction: a software switch with
// parser, match-action tables, registers, straight-line actions over a
// P4-legal ALU, digests, and a static dependency analyzer.
#pragma once

#include "p4sim/action.hpp"        // IWYU pragma: export
#include "p4sim/craft.hpp"         // IWYU pragma: export
#include "p4sim/dependency.hpp"    // IWYU pragma: export
#include "p4sim/disasm.hpp"        // IWYU pragma: export
#include "p4sim/headers.hpp"       // IWYU pragma: export
#include "p4sim/packet.hpp"        // IWYU pragma: export
#include "p4sim/parser.hpp"        // IWYU pragma: export
#include "p4sim/register_file.hpp" // IWYU pragma: export
#include "p4sim/switch.hpp"        // IWYU pragma: export
#include "p4sim/table.hpp"         // IWYU pragma: export
#include "p4sim/trace.hpp"         // IWYU pragma: export

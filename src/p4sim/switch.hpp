// P4Switch: a bmv2-like software switch.
//
// A switch is configured once with registers, actions (straight-line
// programs), tables and a pipeline (an ordered list of optionally guarded
// stages) — the moral equivalent of loading a compiled P4 program.  After
// configuration the controller may only touch table entries and read
// registers; the data path is process(): parse -> pipeline -> deparse ->
// forward, emitting digests (alerts) along the way.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "p4sim/action.hpp"
#include "p4sim/exec_tier.hpp"
#include "p4sim/jit/engine.hpp"
#include "p4sim/packet.hpp"
#include "p4sim/parser.hpp"
#include "p4sim/register_file.hpp"
#include "p4sim/table.hpp"
#include "p4sim/threaded.hpp"

namespace p4sim {

/// Guard on a pipeline stage: apply the stage iff `field <op> value`.
/// Mirrors P4 control-flow conditions like `if (hdr.ipv4.isValid())`.
struct Guard {
  FieldRef field = FieldRef::kIpv4Valid;
  enum class Cmp : std::uint8_t { kEq, kNe } cmp = Cmp::kNe;
  Word value = 0;

  [[nodiscard]] bool holds(const PacketView& view) const noexcept {
    const Word f = view.get(field);
    return cmp == Cmp::kEq ? f == value : f != value;
  }
};

/// What comes out of the switch for one input packet.
struct SwitchOutput {
  std::vector<std::pair<PortId, Packet>> packets;
  std::vector<Digest> digests;
  bool dropped = false;
};

class P4Switch {
 public:
  explicit P4Switch(std::string name, AluProfile profile = AluProfile::bmv2());

  // ---- program configuration (compile time) -----------------------------
  RegisterId declare_register(std::string reg_name, std::uint32_t size,
                              std::uint32_t width_bits = 64);
  /// Registers an action; the program is validated against the ALU profile.
  ActionId add_action(Program program);
  TableId add_table(std::string table_name, std::vector<KeySpec> key,
                    std::size_t max_entries = 1024);

  /// Appends a stage applying `table`; on hit/miss the resolved action runs.
  void add_table_stage(TableId table, std::optional<Guard> guard = {});
  /// Appends a stage running `action` unconditionally (guarded direct code,
  /// like statements in the ingress control body outside any table).
  void add_program_stage(ActionId action, std::optional<Guard> guard = {});

  struct Stage {
    std::optional<Guard> guard;
    std::optional<TableId> table;    // table stage
    std::optional<ActionId> action;  // direct-program stage
  };

  // ---- IR mutation (the optimizer's rewrite hooks) ------------------------
  /// Replaces a registered action's program in place — how the dataflow
  /// optimizer installs a rewritten body.  The new program is validated
  /// against the ALU profile and config_gen_ is bumped so the compiled fast
  /// path rebuilds its dispatch vector and scratch sizing (a stale
  /// scratch_words_ over a rewritten program would read beyond the zeroed
  /// prefix).
  void replace_action(ActionId id, Program program);
  /// Replaces the whole pipeline (stage packing).  Every referenced table /
  /// action id must already exist.
  void set_pipeline(std::vector<Stage> stages);
  /// How many times the fast-path dispatch vector has been rebuilt — the
  /// observable that regression tests use to prove in-place rewrites
  /// invalidate the compiled pipeline.
  [[nodiscard]] std::uint64_t pipeline_compile_count() const noexcept {
    return pipeline_compiles_;
  }

  // ---- data path ----------------------------------------------------------
  [[nodiscard]] SwitchOutput process(Packet pkt);

  /// process() into a caller-owned output whose vectors are reused across
  /// packets (the batched drain loops call this to keep allocations off the
  /// per-packet path).  `out` is cleared first.
  void process_into(Packet pkt, SwitchOutput& out);

  /// The compiled fast path (default ON) pre-resolves the steady-state
  /// parse → match → action chain: pipeline stages are flattened into a
  /// dispatch vector of raw table/program pointers, tables use their
  /// compiled entry caches, and action programs run over a persistent
  /// scratch context whose temps are zeroed only up to the highest temp any
  /// installed action touches (instead of zeroing the full 16KB PHV pool
  /// per packet).  The dispatch vector is rebuilt whenever program
  /// configuration changes; table writes invalidate per-table caches.
  /// OFF runs the reference interpreter: per-packet fresh zeroed context
  /// and linear table scans — bit-identical output, kept as the
  /// differential baseline (tests/p4sim_fastpath_test.cpp).
  void set_fast_path(bool on) noexcept { fast_path_ = on; }
  [[nodiscard]] bool fast_path() const noexcept { return fast_path_; }

  /// Which execution tier the fast path lowers installed actions to (see
  /// exec_tier.hpp).  Orthogonal to set_fast_path: with the fast path OFF
  /// the reference interpreter runs regardless of the tier.  Switching
  /// tiers bumps config_gen_ so the next packet re-lowers the pipeline.
  /// New switches start on default_exec_tier() (STAT4_EXEC_TIER env or
  /// threaded).
  void set_exec_tier(ExecTier tier) noexcept {
    if (exec_tier_ != tier) {
      exec_tier_ = tier;
      ++config_gen_;
    }
  }
  [[nodiscard]] ExecTier exec_tier() const noexcept { return exec_tier_; }
  /// The tier the compiled pipeline actually runs on — differs from
  /// exec_tier() when the native tier degraded to threaded (no host
  /// compiler, dlopen failure, unsupported op; the degradation records a
  /// p4sim.jit.fallbacks telemetry count).  Meaningful once a packet has
  /// been processed (lowering is lazy); kInterpreter before that.
  [[nodiscard]] ExecTier active_tier() const noexcept { return active_tier_; }

  // ---- controller-facing state --------------------------------------------
  [[nodiscard]] MatchActionTable& table(TableId id);
  [[nodiscard]] const MatchActionTable& table(TableId id) const;
  [[nodiscard]] RegisterFile& registers() noexcept { return registers_; }
  [[nodiscard]] const RegisterFile& registers() const noexcept {
    return registers_;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const AluProfile& profile() const noexcept { return profile_; }
  [[nodiscard]] std::uint64_t packets_processed() const noexcept {
    return packets_processed_;
  }
  [[nodiscard]] std::uint64_t digests_emitted() const noexcept {
    return digests_emitted_;
  }

  // Introspection for the dependency / resource analyzer.
  [[nodiscard]] std::size_t action_count() const noexcept {
    return actions_.size();
  }
  [[nodiscard]] const Program& action(ActionId id) const;
  [[nodiscard]] std::size_t table_count() const noexcept {
    return tables_.size();
  }

  [[nodiscard]] const std::vector<Stage>& pipeline() const noexcept {
    return pipeline_;
  }

 private:
  /// One pre-resolved pipeline stage: raw pointers into tables_/actions_,
  /// the guard flattened out of std::optional.  Valid until the next
  /// configuration change (config_gen_ bump).
  struct CompiledStage {
    Guard guard{};
    bool guarded = false;
    /// Index into invariant_guards_ when the guard reads a non-writable
    /// field (validity bits, ingress metadata): such guards cannot change
    /// while a packet traverses the pipeline, so the fast tiers evaluate
    /// each distinct one once per packet instead of once per stage.
    /// -1 when the guard field is writable and must be re-evaluated.
    std::int8_t guard_slot = -1;
    MatchActionTable* table = nullptr;  ///< table stage when non-null
    const Program* program = nullptr;   ///< direct-program stage otherwise
    ActionId action = 0;  ///< the direct-program stage's action id
  };

  /// Cap on distinct packet-invariant guards tracked per pipeline; stages
  /// beyond it just re-evaluate (correct, merely slower).
  static constexpr std::size_t kMaxInvariantGuards = 16;

  /// A table stage with no live entries whose default action's program is
  /// empty cannot affect the packet, the registers, or the digest stream —
  /// the fast tiers skip its lookup+dispatch.  Checked per packet because
  /// entries and the default action mutate at runtime without a
  /// config_gen_ bump.  An out-of-range default ActionId falls through to
  /// the normal path so the interpreter's .at() throw is preserved.
  [[nodiscard]] bool stage_is_noop(const MatchActionTable& t) const {
    if (!t.default_only()) return false;
    const ActionId d = t.default_action();
    return d < actions_.size() && actions_[d].code.empty();
  }

  void compile_pipeline();
  void run_pipeline_reference(PacketView& view, SwitchOutput& out,
                              stat4::TimeNs now);
  void run_pipeline_interp(PacketView& view, SwitchOutput& out,
                           stat4::TimeNs now);
  void run_pipeline_threaded(PacketView& view, SwitchOutput& out,
                             stat4::TimeNs now);
  void run_pipeline_native(PacketView& view, SwitchOutput& out,
                           stat4::TimeNs now);

  std::string name_;
  AluProfile profile_;
  RegisterFile registers_;
  std::vector<Program> actions_;
  std::vector<MatchActionTable> tables_;
  std::vector<Stage> pipeline_;
  std::uint64_t packets_processed_ = 0;
  std::uint64_t digests_emitted_ = 0;
  // Compiled fast path state (see set_fast_path).
  bool fast_path_ = true;
  std::uint64_t config_gen_ = 1;    ///< bumped by any program/pipeline write
  std::uint64_t compiled_gen_ = 0;  ///< config_gen_ the dispatch vector matches
  std::uint64_t pipeline_compiles_ = 0;  ///< compile_pipeline() invocations
  std::vector<CompiledStage> compiled_;
  /// Distinct guards over non-writable fields, deduplicated across stages;
  /// the fast tiers evaluate these once per packet (see
  /// CompiledStage::guard_slot).
  std::vector<Guard> invariant_guards_;
  /// Zeroed prefix of the scratch temps per packet: 1 + the highest temp
  /// any installed action reads before writing.  Bit-identical to zeroing
  /// the whole pool — every other temp is written before its first read.
  std::size_t scratch_words_ = 0;
  std::unique_ptr<ExecutionContext> scratch_;  ///< persistent PHV scratch
  // Execution-tier state, rebuilt by compile_pipeline() (see exec_tier.hpp).
  ExecTier exec_tier_ = default_exec_tier();
  ExecTier active_tier_ = ExecTier::kInterpreter;
  std::vector<ThreadedProgram> threaded_actions_;
  std::vector<jit::RegWindow> reg_windows_;
  std::shared_ptr<const jit::CompiledUnit> jit_unit_;
  /// Pre-filled native-tier ABI context: the compile-constant fields
  /// (temps/callbacks/register windows) are set once by compile_pipeline();
  /// run_pipeline_native() only patches the per-packet view and sink.
  jit::Context jit_ctx_;
};

}  // namespace p4sim

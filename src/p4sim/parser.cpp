#include "p4sim/parser.hpp"

#include <bit>
#include <cstring>

namespace p4sim {

const FieldInfo& field_info(FieldRef f) noexcept {
  // One entry per FieldRef, in enum order; every width/validity/writability
  // statement here is mirrored bit-for-bit by PacketView::get/set below.
  static const FieldInfo kTable[kFieldCount] = {
      {"eth.type", 16, true, true, false, FieldRef::kEthType},
      {"ipv4.src", 32, true, false, false, FieldRef::kIpv4Valid},
      {"ipv4.dst", 32, true, false, false, FieldRef::kIpv4Valid},
      {"ipv4.proto", 8, true, false, false, FieldRef::kIpv4Valid},
      {"ipv4.ttl", 8, true, false, false, FieldRef::kIpv4Valid},
      {"ipv4.$valid", 1, false, true, true, FieldRef::kIpv4Valid},
      {"tcp.src_port", 16, true, false, false, FieldRef::kTcpValid},
      {"tcp.dst_port", 16, true, false, false, FieldRef::kTcpValid},
      {"tcp.flags", 8, true, false, false, FieldRef::kTcpValid},
      {"tcp.$valid", 1, false, true, true, FieldRef::kTcpValid},
      {"udp.src_port", 16, true, false, false, FieldRef::kUdpValid},
      {"udp.dst_port", 16, true, false, false, FieldRef::kUdpValid},
      {"udp.$valid", 1, false, true, true, FieldRef::kUdpValid},
      {"echo.value", 64, true, false, false, FieldRef::kEchoValid},
      {"echo.n", 64, true, false, false, FieldRef::kEchoValid},
      {"echo.xsum", 64, true, false, false, FieldRef::kEchoValid},
      {"echo.xsumsq", 64, true, false, false, FieldRef::kEchoValid},
      {"echo.var", 64, true, false, false, FieldRef::kEchoValid},
      {"echo.sd", 64, true, false, false, FieldRef::kEchoValid},
      {"echo.$valid", 1, false, true, true, FieldRef::kEchoValid},
      {"meta.ingress_port", 64, false, true, false, FieldRef::kMetaIngressPort},
      {"meta.ingress_ts", 64, false, true, false, FieldRef::kMetaIngressTs},
      {"meta.packet_length", 64, false, true, false,
       FieldRef::kMetaPacketLength},
      {"meta.egress_spec", 64, true, true, false, FieldRef::kMetaEgressSpec},
  };
  return kTable[static_cast<std::size_t>(f)];
}

namespace {

// Raw big-endian loads for the fused parse below: each header's size is
// checked once up front, so these skip the per-field bounds test the
// general read_be carries.  memcpy + byte-swap compiles to a single load
// (plus bswap on little-endian hosts) instead of per-byte shift chains.
inline std::uint64_t be16(const Byte* p) {
  std::uint16_t v;
  std::memcpy(&v, p, sizeof v);
#if defined(__GNUC__) || defined(__clang__)
  if constexpr (std::endian::native == std::endian::little) {
    v = __builtin_bswap16(v);
  }
  return v;
#else
  return static_cast<std::uint64_t>(p[0]) << 8 | p[1];
#endif
}
inline std::uint64_t be32(const Byte* p) {
  std::uint32_t v;
  std::memcpy(&v, p, sizeof v);
#if defined(__GNUC__) || defined(__clang__)
  if constexpr (std::endian::native == std::endian::little) {
    v = __builtin_bswap32(v);
  }
  return v;
#else
  return static_cast<std::uint64_t>(p[0]) << 24 |
         static_cast<std::uint64_t>(p[1]) << 16 |
         static_cast<std::uint64_t>(p[2]) << 8 | p[3];
#endif
}
inline std::uint64_t be64(const Byte* p) {
  std::uint64_t v;
  std::memcpy(&v, p, sizeof v);
#if defined(__GNUC__) || defined(__clang__)
  if constexpr (std::endian::native == std::endian::little) {
    v = __builtin_bswap64(v);
  }
  return v;
#else
  return be32(p) << 32 | be32(p + 4);
#endif
}

}  // namespace

ParsedPacket parse(const Packet& pkt) {
  // Fused parser: one size check per header, direct loads into the
  // in-place header structs.  Accept/reject decisions are bit-identical to
  // the per-header helpers in headers.cpp (parse_ethernet & co., which
  // remain the reference implementation for external callers): stop at the
  // first header that does not fit, reject IPv4 whose version nibble is
  // not 4.  This runs once per packet ahead of every pipeline tier, so it
  // is as lean as the hot loop itself.
  ParsedPacket out;
  const Byte* d = pkt.data.data();
  const std::size_t n = pkt.data.size();
  if (n < EthernetHeader::kSize) return out;
  std::memcpy(out.eth.dst.data(), d, 6);
  std::memcpy(out.eth.src.data(), d + 6, 6);
  out.eth.ether_type = static_cast<std::uint16_t>(be16(d + 12));

  constexpr std::size_t kEthEnd = EthernetHeader::kSize;
  if (out.eth.ether_type == kEtherTypeIpv4) {
    if (n < kEthEnd + Ipv4Header::kSize || (d[kEthEnd] >> 4) != 4) return out;
    const Byte* ip = d + kEthEnd;
    Ipv4Header& h = out.ipv4.emplace();
    h.total_length = static_cast<std::uint16_t>(be16(ip + 2));
    h.ttl = ip[8];
    h.protocol = ip[9];
    h.src = static_cast<std::uint32_t>(be32(ip + 12));
    h.dst = static_cast<std::uint32_t>(be32(ip + 16));

    constexpr std::size_t kL4 = kEthEnd + Ipv4Header::kSize;
    const Byte* l4 = d + kL4;
    if (h.protocol == kIpProtoTcp) {
      if (n < kL4 + TcpHeader::kSize) return out;
      TcpHeader& tcp = out.tcp.emplace();
      tcp.src_port = static_cast<std::uint16_t>(be16(l4));
      tcp.dst_port = static_cast<std::uint16_t>(be16(l4 + 2));
      tcp.seq = static_cast<std::uint32_t>(be32(l4 + 4));
      tcp.flags = l4[13];
    } else if (h.protocol == kIpProtoUdp) {
      if (n < kL4 + UdpHeader::kSize) return out;
      UdpHeader& udp = out.udp.emplace();
      udp.src_port = static_cast<std::uint16_t>(be16(l4));
      udp.dst_port = static_cast<std::uint16_t>(be16(l4 + 2));
      udp.length = static_cast<std::uint16_t>(be16(l4 + 4));
    }
  } else if (out.eth.ether_type == kEtherTypeStat4Echo) {
    if (n < kEthEnd + Stat4EchoHeader::kSize) return out;
    const Byte* e = d + kEthEnd;
    Stat4EchoHeader& echo = out.echo.emplace();
    echo.value = static_cast<std::int64_t>(be64(e));
    echo.n = be64(e + 8);
    echo.xsum = be64(e + 16);
    echo.xsumsq = be64(e + 24);
    echo.var_nx = be64(e + 32);
    echo.sd_nx = be64(e + 40);
  }
  return out;
}

void deparse(const ParsedPacket& parsed, Packet& pkt) {
  serialize(parsed.eth, pkt.data, 0);
  std::size_t off = EthernetHeader::kSize;
  if (parsed.ipv4) {
    serialize(*parsed.ipv4, pkt.data, off);
    off += Ipv4Header::kSize;
    if (parsed.tcp) serialize(*parsed.tcp, pkt.data, off);
    if (parsed.udp) serialize(*parsed.udp, pkt.data, off);
  } else if (parsed.echo) {
    serialize(*parsed.echo, pkt.data, off);
  }
}

}  // namespace p4sim

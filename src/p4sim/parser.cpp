#include "p4sim/parser.hpp"

namespace p4sim {

const FieldInfo& field_info(FieldRef f) noexcept {
  // One entry per FieldRef, in enum order; every width/validity/writability
  // statement here is mirrored bit-for-bit by PacketView::get/set below.
  static const FieldInfo kTable[kFieldCount] = {
      {"eth.type", 16, true, true, false, FieldRef::kEthType},
      {"ipv4.src", 32, true, false, false, FieldRef::kIpv4Valid},
      {"ipv4.dst", 32, true, false, false, FieldRef::kIpv4Valid},
      {"ipv4.proto", 8, true, false, false, FieldRef::kIpv4Valid},
      {"ipv4.ttl", 8, true, false, false, FieldRef::kIpv4Valid},
      {"ipv4.$valid", 1, false, true, true, FieldRef::kIpv4Valid},
      {"tcp.src_port", 16, true, false, false, FieldRef::kTcpValid},
      {"tcp.dst_port", 16, true, false, false, FieldRef::kTcpValid},
      {"tcp.flags", 8, true, false, false, FieldRef::kTcpValid},
      {"tcp.$valid", 1, false, true, true, FieldRef::kTcpValid},
      {"udp.src_port", 16, true, false, false, FieldRef::kUdpValid},
      {"udp.dst_port", 16, true, false, false, FieldRef::kUdpValid},
      {"udp.$valid", 1, false, true, true, FieldRef::kUdpValid},
      {"echo.value", 64, true, false, false, FieldRef::kEchoValid},
      {"echo.n", 64, true, false, false, FieldRef::kEchoValid},
      {"echo.xsum", 64, true, false, false, FieldRef::kEchoValid},
      {"echo.xsumsq", 64, true, false, false, FieldRef::kEchoValid},
      {"echo.var", 64, true, false, false, FieldRef::kEchoValid},
      {"echo.sd", 64, true, false, false, FieldRef::kEchoValid},
      {"echo.$valid", 1, false, true, true, FieldRef::kEchoValid},
      {"meta.ingress_port", 64, false, true, false, FieldRef::kMetaIngressPort},
      {"meta.ingress_ts", 64, false, true, false, FieldRef::kMetaIngressTs},
      {"meta.packet_length", 64, false, true, false,
       FieldRef::kMetaPacketLength},
      {"meta.egress_spec", 64, true, true, false, FieldRef::kMetaEgressSpec},
  };
  return kTable[static_cast<std::size_t>(f)];
}

ParsedPacket parse(const Packet& pkt) {
  ParsedPacket out;
  const auto eth = parse_ethernet(pkt.data);
  if (!eth) return out;
  out.eth = *eth;

  std::size_t off = EthernetHeader::kSize;
  if (out.eth.ether_type == kEtherTypeIpv4) {
    out.ipv4 = parse_ipv4(pkt.data, off);
    if (out.ipv4) {
      off += Ipv4Header::kSize;
      if (out.ipv4->protocol == kIpProtoTcp) {
        out.tcp = parse_tcp(pkt.data, off);
      } else if (out.ipv4->protocol == kIpProtoUdp) {
        out.udp = parse_udp(pkt.data, off);
      }
    }
  } else if (out.eth.ether_type == kEtherTypeStat4Echo) {
    out.echo = parse_stat4_echo(pkt.data, off);
  }
  return out;
}

void deparse(const ParsedPacket& parsed, Packet& pkt) {
  serialize(parsed.eth, pkt.data, 0);
  std::size_t off = EthernetHeader::kSize;
  if (parsed.ipv4) {
    serialize(*parsed.ipv4, pkt.data, off);
    off += Ipv4Header::kSize;
    if (parsed.tcp) serialize(*parsed.tcp, pkt.data, off);
    if (parsed.udp) serialize(*parsed.udp, pkt.data, off);
  } else if (parsed.echo) {
    serialize(*parsed.echo, pkt.data, off);
  }
}

std::uint64_t PacketView::get(FieldRef f) const {
  const ParsedPacket& p = *parsed;
  switch (f) {
    case FieldRef::kEthType: return p.eth.ether_type;
    case FieldRef::kIpv4Src: return p.ipv4 ? p.ipv4->src : 0;
    case FieldRef::kIpv4Dst: return p.ipv4 ? p.ipv4->dst : 0;
    case FieldRef::kIpv4Proto: return p.ipv4 ? p.ipv4->protocol : 0;
    case FieldRef::kIpv4Ttl: return p.ipv4 ? p.ipv4->ttl : 0;
    case FieldRef::kIpv4Valid: return p.ipv4 ? 1 : 0;
    case FieldRef::kTcpSrcPort: return p.tcp ? p.tcp->src_port : 0;
    case FieldRef::kTcpDstPort: return p.tcp ? p.tcp->dst_port : 0;
    case FieldRef::kTcpFlags: return p.tcp ? p.tcp->flags : 0;
    case FieldRef::kTcpValid: return p.tcp ? 1 : 0;
    case FieldRef::kUdpSrcPort: return p.udp ? p.udp->src_port : 0;
    case FieldRef::kUdpDstPort: return p.udp ? p.udp->dst_port : 0;
    case FieldRef::kUdpValid: return p.udp ? 1 : 0;
    case FieldRef::kEchoValue:
      return p.echo ? static_cast<std::uint64_t>(p.echo->value) : 0;
    case FieldRef::kEchoN: return p.echo ? p.echo->n : 0;
    case FieldRef::kEchoXsum: return p.echo ? p.echo->xsum : 0;
    case FieldRef::kEchoXsumsq: return p.echo ? p.echo->xsumsq : 0;
    case FieldRef::kEchoVar: return p.echo ? p.echo->var_nx : 0;
    case FieldRef::kEchoSd: return p.echo ? p.echo->sd_nx : 0;
    case FieldRef::kEchoValid: return p.echo ? 1 : 0;
    case FieldRef::kMetaIngressPort: return meta_ingress_port;
    case FieldRef::kMetaIngressTs: return meta_ingress_ts;
    case FieldRef::kMetaPacketLength: return meta_packet_length;
    case FieldRef::kMetaEgressSpec: return meta_egress_spec;
  }
  return 0;
}

void PacketView::set(FieldRef f, std::uint64_t v) {
  ParsedPacket& p = *parsed;
  switch (f) {
    case FieldRef::kEthType:
      p.eth.ether_type = static_cast<std::uint16_t>(v);
      break;
    case FieldRef::kIpv4Src:
      if (p.ipv4) p.ipv4->src = static_cast<std::uint32_t>(v);
      break;
    case FieldRef::kIpv4Dst:
      if (p.ipv4) p.ipv4->dst = static_cast<std::uint32_t>(v);
      break;
    case FieldRef::kIpv4Proto:
      if (p.ipv4) p.ipv4->protocol = static_cast<std::uint8_t>(v);
      break;
    case FieldRef::kIpv4Ttl:
      if (p.ipv4) p.ipv4->ttl = static_cast<std::uint8_t>(v);
      break;
    case FieldRef::kTcpSrcPort:
      if (p.tcp) p.tcp->src_port = static_cast<std::uint16_t>(v);
      break;
    case FieldRef::kTcpDstPort:
      if (p.tcp) p.tcp->dst_port = static_cast<std::uint16_t>(v);
      break;
    case FieldRef::kTcpFlags:
      if (p.tcp) p.tcp->flags = static_cast<std::uint8_t>(v);
      break;
    case FieldRef::kUdpSrcPort:
      if (p.udp) p.udp->src_port = static_cast<std::uint16_t>(v);
      break;
    case FieldRef::kUdpDstPort:
      if (p.udp) p.udp->dst_port = static_cast<std::uint16_t>(v);
      break;
    case FieldRef::kEchoValue:
      if (p.echo) p.echo->value = static_cast<std::int64_t>(v);
      break;
    case FieldRef::kEchoN:
      if (p.echo) p.echo->n = v;
      break;
    case FieldRef::kEchoXsum:
      if (p.echo) p.echo->xsum = v;
      break;
    case FieldRef::kEchoXsumsq:
      if (p.echo) p.echo->xsumsq = v;
      break;
    case FieldRef::kEchoVar:
      if (p.echo) p.echo->var_nx = v;
      break;
    case FieldRef::kEchoSd:
      if (p.echo) p.echo->sd_nx = v;
      break;
    case FieldRef::kMetaEgressSpec:
      meta_egress_spec = v;
      break;
    case FieldRef::kIpv4Valid:
    case FieldRef::kTcpValid:
    case FieldRef::kUdpValid:
    case FieldRef::kEchoValid:
    case FieldRef::kMetaIngressPort:
    case FieldRef::kMetaIngressTs:
    case FieldRef::kMetaPacketLength:
      break;  // read-only fields
  }
}

}  // namespace p4sim

// Threaded-code execution tier (ExecTier::kThreaded).
//
// threaded_compile() pre-decodes a straight-line Program into a flat
// stream of ThreadedOps: every operand the interpreter resolves per packet
// is resolved once at compile time instead — register accesses carry the
// array's base pointer / bounds / width mask (RegisterFile::window), field
// references and immediates sit in the op itself, and each op carries the
// address of its handler so execution is a computed-goto chain
// (GCC/Clang's labels-as-values) rather than a per-op switch.  On other
// compilers the same op stream runs through a switch loop — identical
// results, just slower dispatch.
//
// Semantics are bit-identical to action.cpp execute(): the differential
// suites (tests/exec_tier_differential_test.cpp) replay every catalog app
// against the interpreter.  Programs referencing a register array that does
// not exist fall back to dynamic RegisterFile dispatch per access so the
// interpreter's out_of_range throw is preserved.
#pragma once

#include <cstdint>
#include <vector>

#include "p4sim/action.hpp"
#include "p4sim/register_file.hpp"

namespace p4sim {

/// One pre-decoded instruction.  16-byte-ish hot prefix (handler + packed
/// operand ids) followed by the cold operands only some ops use.
struct ThreadedOp {
  const void* handler = nullptr;  ///< computed-goto label (GNU dispatch)
  std::uint8_t opcode = 0;        ///< internal opcode (switch fallback)
  TempId dst = 0;
  TempId a = 0;
  TempId b = 0;
  TempId c = 0;
  TempId e = 0;  ///< fifth operand of fused compare+select ops
  FieldRef field = FieldRef::kEthType;
  RegisterId reg = 0;  ///< dynamic-register ops only
  Word imm = 0;
  Word* reg_base = nullptr;  ///< pre-resolved register cells
  std::uint64_t reg_size = 0;
  Word reg_mask = 0;
};

/// A compiled program: the op stream always ends with a terminator op, so
/// the dispatch loop needs no bounds check.
struct ThreadedProgram {
  std::vector<ThreadedOp> ops;
};

/// Per-packet state threaded execution runs over — the flat equivalent of
/// ExecutionContext, with the action-data span exploded into pointer+len
/// so handlers touch no std:: machinery.
struct ThreadedState {
  Word* temps = nullptr;
  PacketView* view = nullptr;
  RegisterFile* registers = nullptr;  ///< dynamic-register ops only
  const Word* action_data = nullptr;
  std::size_t action_data_len = 0;
  std::vector<Digest>* digests = nullptr;
  stat4::TimeNs now = 0;
};

/// Pre-decodes `program`, resolving register operands against `registers`,
/// and optimizes the op stream: straight-line constant propagation and
/// folding (exact interpreter semantics, including the hash externs),
/// immediate-operand op variants, constant-index register accesses lowered
/// to pre-resolved cell pointers, fused compare+select pairs, and dead-code
/// elimination of pure ops whose result no installed action can observe.
/// `observable` is the union of every installed action's read-before-write
/// set (see read_before_write): temps outside it are program-local and may
/// be optimized away; temps inside it keep their final stores.  The result
/// holds raw cell pointers: valid until the next RegisterFile::declare (the
/// switch re-lowers on config_gen_ bump).
[[nodiscard]] ThreadedProgram threaded_compile(
    const Program& program, RegisterFile& registers,
    const std::bitset<kTempCount>& observable);

/// Runs a compiled program to completion.
void threaded_execute(const ThreadedProgram& program, ThreadedState& state);

/// Whether this build dispatches via computed goto (GCC/Clang) or the
/// portable switch loop.
[[nodiscard]] bool threaded_uses_computed_goto() noexcept;

}  // namespace p4sim

// Execution-tier selection for the compiled p4sim fast path.
//
// The fast path can run an installed pipeline at three tiers:
//
//   kInterpreter — the dispatch-vector interpreter (action.cpp execute()):
//                  a switch over Op per instruction.  The reference tier
//                  every other tier is differentially tested against.
//   kThreaded    — threaded code: each action pre-decoded into a flat
//                  stream of computed-goto handlers with pre-resolved
//                  operands (register base pointers, folded masks), so the
//                  per-op switch dispatch and ExecutionContext indirection
//                  disappear (threaded.hpp).
//   kNative      — each pipeline transpiled to a self-contained C++ TU,
//                  compiled by the host toolchain and dlopen'ed
//                  (jit/transpiler.hpp, jit/engine.hpp).  Falls back to
//                  kThreaded when no compiler is available or a program
//                  cannot be transpiled.
//
// All tiers hook the same invalidation protocol: any configuration write
// bumps config_gen_ and the next packet re-lowers the pipeline for the
// selected tier.  Tier selection never changes results — only speed
// (tests/exec_tier_differential_test.cpp).
#pragma once

#include <cstdint>
#include <optional>
#include <string_view>

namespace p4sim {

enum class ExecTier : std::uint8_t {
  kInterpreter,
  kThreaded,
  kNative,
};

/// Stable names: "interp", "threaded", "native" (CLI flag / stats values).
[[nodiscard]] const char* to_string(ExecTier tier) noexcept;

/// Parses a tier name; std::nullopt for anything unknown.
[[nodiscard]] std::optional<ExecTier> parse_exec_tier(
    std::string_view name) noexcept;

/// The tier newly constructed switches start on: the STAT4_EXEC_TIER
/// environment variable ("interp" / "threaded" / "native", read once per
/// process — the CI per-tier legs use this) or kThreaded when unset or
/// unparseable.
[[nodiscard]] ExecTier default_exec_tier() noexcept;

}  // namespace p4sim

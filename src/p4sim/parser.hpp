// Packet parser: the P4 parser state machine of the Stat4 programs.
//
// parse() walks Ethernet -> (IPv4 -> TCP/UDP | Stat4Echo) and produces a
// ParsedPacket with validity bits, mirroring how a P4 parser fills header
// instances.  FieldRef names every field the match-action pipeline can read
// or write — the equivalent of PHV container addresses.
#pragma once

#include <cstdint>
#include <optional>

#include "p4sim/headers.hpp"
#include "p4sim/packet.hpp"

namespace p4sim {

struct ParsedPacket {
  EthernetHeader eth;
  std::optional<Ipv4Header> ipv4;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<Stat4EchoHeader> echo;
};

/// Every packet/metadata field addressable from action programs and table
/// keys.  META_* fields are standard metadata; SCRATCH fields let the
/// controller pass per-entry action data through (set before execution).
enum class FieldRef : std::uint8_t {
  kEthType,
  kIpv4Src,
  kIpv4Dst,
  kIpv4Proto,
  kIpv4Ttl,
  kIpv4Valid,
  kTcpSrcPort,
  kTcpDstPort,
  kTcpFlags,
  kTcpValid,
  kUdpSrcPort,
  kUdpDstPort,
  kUdpValid,
  kEchoValue,
  kEchoN,
  kEchoXsum,
  kEchoXsumsq,
  kEchoVar,
  kEchoSd,
  kEchoValid,
  kMetaIngressPort,
  kMetaIngressTs,
  kMetaPacketLength,
  kMetaEgressSpec,  ///< 0 = drop; otherwise output port + 1
};

inline constexpr std::size_t kFieldCount =
    static_cast<std::size_t>(FieldRef::kMetaEgressSpec) + 1;

/// Static description of one FieldRef, mirroring PacketView::get/set
/// bit-exactly — the introspection surface the symbolic executor and any
/// other IR-level analysis build their field models from:
///   width_bits   — get() results fit in this many bits, and set() persists
///                  only the low width_bits (the static_cast truncation);
///   writable     — set() has an effect; false for the *Valid bits and the
///                  read-only ingress metadata;
///   always_valid — get/set are unconditional; when false, both are gated on
///                  the owning header's validity bit (`validity`): get reads
///                  0 and set is a no-op while the header is absent;
///   is_validity  — the field IS a header validity bit (0/1, read-only).
struct FieldInfo {
  const char* name = "?";
  std::uint32_t width_bits = 64;
  bool writable = true;
  bool always_valid = true;
  bool is_validity = false;
  FieldRef validity = FieldRef::kEthType;  ///< meaningful iff !always_valid
};

[[nodiscard]] const FieldInfo& field_info(FieldRef f) noexcept;

/// Parse a packet buffer into headers (P4 parser semantics: stop at the
/// first header that does not fit).
[[nodiscard]] ParsedPacket parse(const Packet& pkt);

/// Write mutated headers back into the packet buffer (deparser).
void deparse(const ParsedPacket& parsed, Packet& pkt);

/// Field read/write over a ParsedPacket + metadata words.
struct PacketView {
  ParsedPacket* parsed = nullptr;
  std::uint64_t meta_ingress_port = 0;
  std::uint64_t meta_ingress_ts = 0;
  std::uint64_t meta_packet_length = 0;
  std::uint64_t meta_egress_spec = 0;

  [[nodiscard]] std::uint64_t get(FieldRef f) const;
  void set(FieldRef f, std::uint64_t v);
};

}  // namespace p4sim

// Packet parser: the P4 parser state machine of the Stat4 programs.
//
// parse() walks Ethernet -> (IPv4 -> TCP/UDP | Stat4Echo) and produces a
// ParsedPacket with validity bits, mirroring how a P4 parser fills header
// instances.  FieldRef names every field the match-action pipeline can read
// or write — the equivalent of PHV container addresses.
#pragma once

#include <cstdint>
#include <optional>

#include "p4sim/headers.hpp"
#include "p4sim/packet.hpp"

namespace p4sim {

struct ParsedPacket {
  EthernetHeader eth;
  std::optional<Ipv4Header> ipv4;
  std::optional<TcpHeader> tcp;
  std::optional<UdpHeader> udp;
  std::optional<Stat4EchoHeader> echo;
};

/// Every packet/metadata field addressable from action programs and table
/// keys.  META_* fields are standard metadata; SCRATCH fields let the
/// controller pass per-entry action data through (set before execution).
enum class FieldRef : std::uint8_t {
  kEthType,
  kIpv4Src,
  kIpv4Dst,
  kIpv4Proto,
  kIpv4Ttl,
  kIpv4Valid,
  kTcpSrcPort,
  kTcpDstPort,
  kTcpFlags,
  kTcpValid,
  kUdpSrcPort,
  kUdpDstPort,
  kUdpValid,
  kEchoValue,
  kEchoN,
  kEchoXsum,
  kEchoXsumsq,
  kEchoVar,
  kEchoSd,
  kEchoValid,
  kMetaIngressPort,
  kMetaIngressTs,
  kMetaPacketLength,
  kMetaEgressSpec,  ///< 0 = drop; otherwise output port + 1
};

inline constexpr std::size_t kFieldCount =
    static_cast<std::size_t>(FieldRef::kMetaEgressSpec) + 1;

/// Static description of one FieldRef, mirroring PacketView::get/set
/// bit-exactly — the introspection surface the symbolic executor and any
/// other IR-level analysis build their field models from:
///   width_bits   — get() results fit in this many bits, and set() persists
///                  only the low width_bits (the static_cast truncation);
///   writable     — set() has an effect; false for the *Valid bits and the
///                  read-only ingress metadata;
///   always_valid — get/set are unconditional; when false, both are gated on
///                  the owning header's validity bit (`validity`): get reads
///                  0 and set is a no-op while the header is absent;
///   is_validity  — the field IS a header validity bit (0/1, read-only).
struct FieldInfo {
  const char* name = "?";
  std::uint32_t width_bits = 64;
  bool writable = true;
  bool always_valid = true;
  bool is_validity = false;
  FieldRef validity = FieldRef::kEthType;  ///< meaningful iff !always_valid
};

[[nodiscard]] const FieldInfo& field_info(FieldRef f) noexcept;

/// Parse a packet buffer into headers (P4 parser semantics: stop at the
/// first header that does not fit).
[[nodiscard]] ParsedPacket parse(const Packet& pkt);

/// Write mutated headers back into the packet buffer (deparser).
void deparse(const ParsedPacket& parsed, Packet& pkt);

/// Field read/write over a ParsedPacket + metadata words.  get/set are
/// inline: they sit on the per-packet hot path behind every guard check,
/// table-key probe and kLoadField/kStoreField op.
struct PacketView {
  ParsedPacket* parsed = nullptr;
  std::uint64_t meta_ingress_port = 0;
  std::uint64_t meta_ingress_ts = 0;
  std::uint64_t meta_packet_length = 0;
  std::uint64_t meta_egress_spec = 0;
  /// Any set() other than egress-spec landed — the deparse gate: when no
  /// header field was touched the buffer is forwarded byte-for-byte and
  /// process_into() skips re-serialization entirely.
  bool header_dirty = false;

  [[nodiscard]] std::uint64_t get(FieldRef f) const {
    const ParsedPacket& p = *parsed;
    switch (f) {
      case FieldRef::kEthType: return p.eth.ether_type;
      case FieldRef::kIpv4Src: return p.ipv4 ? p.ipv4->src : 0;
      case FieldRef::kIpv4Dst: return p.ipv4 ? p.ipv4->dst : 0;
      case FieldRef::kIpv4Proto: return p.ipv4 ? p.ipv4->protocol : 0;
      case FieldRef::kIpv4Ttl: return p.ipv4 ? p.ipv4->ttl : 0;
      case FieldRef::kIpv4Valid: return p.ipv4 ? 1 : 0;
      case FieldRef::kTcpSrcPort: return p.tcp ? p.tcp->src_port : 0;
      case FieldRef::kTcpDstPort: return p.tcp ? p.tcp->dst_port : 0;
      case FieldRef::kTcpFlags: return p.tcp ? p.tcp->flags : 0;
      case FieldRef::kTcpValid: return p.tcp ? 1 : 0;
      case FieldRef::kUdpSrcPort: return p.udp ? p.udp->src_port : 0;
      case FieldRef::kUdpDstPort: return p.udp ? p.udp->dst_port : 0;
      case FieldRef::kUdpValid: return p.udp ? 1 : 0;
      case FieldRef::kEchoValue:
        return p.echo ? static_cast<std::uint64_t>(p.echo->value) : 0;
      case FieldRef::kEchoN: return p.echo ? p.echo->n : 0;
      case FieldRef::kEchoXsum: return p.echo ? p.echo->xsum : 0;
      case FieldRef::kEchoXsumsq: return p.echo ? p.echo->xsumsq : 0;
      case FieldRef::kEchoVar: return p.echo ? p.echo->var_nx : 0;
      case FieldRef::kEchoSd: return p.echo ? p.echo->sd_nx : 0;
      case FieldRef::kEchoValid: return p.echo ? 1 : 0;
      case FieldRef::kMetaIngressPort: return meta_ingress_port;
      case FieldRef::kMetaIngressTs: return meta_ingress_ts;
      case FieldRef::kMetaPacketLength: return meta_packet_length;
      case FieldRef::kMetaEgressSpec: return meta_egress_spec;
    }
    return 0;
  }

  void set(FieldRef f, std::uint64_t v) {
    if (f == FieldRef::kMetaEgressSpec) {
      meta_egress_spec = v;
      return;
    }
    // Every non-egress store arms the deparser, even a no-op one (invalid
    // header, read-only field): pre-gate behavior was to always deparse,
    // and a no-op store must keep producing the same normalized bytes.
    header_dirty = true;
    ParsedPacket& p = *parsed;
    switch (f) {
      case FieldRef::kEthType:
        p.eth.ether_type = static_cast<std::uint16_t>(v);
        break;
      case FieldRef::kIpv4Src:
        if (p.ipv4) p.ipv4->src = static_cast<std::uint32_t>(v);
        break;
      case FieldRef::kIpv4Dst:
        if (p.ipv4) p.ipv4->dst = static_cast<std::uint32_t>(v);
        break;
      case FieldRef::kIpv4Proto:
        if (p.ipv4) p.ipv4->protocol = static_cast<std::uint8_t>(v);
        break;
      case FieldRef::kIpv4Ttl:
        if (p.ipv4) p.ipv4->ttl = static_cast<std::uint8_t>(v);
        break;
      case FieldRef::kTcpSrcPort:
        if (p.tcp) p.tcp->src_port = static_cast<std::uint16_t>(v);
        break;
      case FieldRef::kTcpDstPort:
        if (p.tcp) p.tcp->dst_port = static_cast<std::uint16_t>(v);
        break;
      case FieldRef::kTcpFlags:
        if (p.tcp) p.tcp->flags = static_cast<std::uint8_t>(v);
        break;
      case FieldRef::kUdpSrcPort:
        if (p.udp) p.udp->src_port = static_cast<std::uint16_t>(v);
        break;
      case FieldRef::kUdpDstPort:
        if (p.udp) p.udp->dst_port = static_cast<std::uint16_t>(v);
        break;
      case FieldRef::kEchoValue:
        if (p.echo) p.echo->value = static_cast<std::int64_t>(v);
        break;
      case FieldRef::kEchoN:
        if (p.echo) p.echo->n = v;
        break;
      case FieldRef::kEchoXsum:
        if (p.echo) p.echo->xsum = v;
        break;
      case FieldRef::kEchoXsumsq:
        if (p.echo) p.echo->xsumsq = v;
        break;
      case FieldRef::kEchoVar:
        if (p.echo) p.echo->var_nx = v;
        break;
      case FieldRef::kEchoSd:
        if (p.echo) p.echo->sd_nx = v;
        break;
      case FieldRef::kMetaEgressSpec:  // handled above
      case FieldRef::kIpv4Valid:
      case FieldRef::kTcpValid:
      case FieldRef::kUdpValid:
      case FieldRef::kEchoValid:
      case FieldRef::kMetaIngressPort:
      case FieldRef::kMetaIngressTs:
      case FieldRef::kMetaPacketLength:
        break;  // read-only fields
    }
  }
};

}  // namespace p4sim

// Stateful register arrays — the P4 `register` extern.
//
// Stat4 keeps every distribution, every statistical measure and every piece
// of tracker state in registers (Figure 4).  The file also accounts for the
// state memory the program occupies: the "3.1KB" style figure of the
// paper's Resource Consumption paragraph maps to total_state_bytes().
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "stat4/types.hpp"

namespace p4sim {

using RegisterId = std::uint32_t;
using Word = std::uint64_t;

/// One register array: `size` cells of `width_bits` each.
struct RegisterArrayInfo {
  std::string name;
  std::uint32_t width_bits = 64;
  std::uint32_t size = 1;
};

/// Raw view of one array for the execution tiers (threaded / native): the
/// cell base pointer plus the pre-resolved bounds check and width mask, so
/// a compiled action touches the cells without going through read()/write()
/// dispatch.  Accesses through a window follow the same semantics as
/// read()/write(): out-of-bounds reads yield 0, out-of-bounds writes are
/// dropped, in-bounds writes are masked to the declared width.  A window
/// stays valid until the next declare() — P4Switch::declare_register bumps
/// config_gen_ so every compiled tier re-resolves its windows.
struct RegisterWindow {
  Word* base = nullptr;
  std::uint64_t size = 0;
  Word mask = ~Word{0};
};

class RegisterFile {
 public:
  /// Declares an array; returns its id.  Width is capped at 64 bits (cells
  /// are stored as words; writes are masked to the declared width like a P4
  /// target truncating to the register type).
  RegisterId declare(std::string name, std::uint32_t size,
                     std::uint32_t width_bits = 64);

  [[nodiscard]] Word read(RegisterId id, std::uint64_t index) const;
  void write(RegisterId id, std::uint64_t index, Word value);

  /// Raw view of array `id` for compiled execution tiers; throws
  /// std::out_of_range for an unknown array like read()/write().
  [[nodiscard]] RegisterWindow window(RegisterId id);

  [[nodiscard]] std::size_t array_count() const noexcept {
    return arrays_.size();
  }
  [[nodiscard]] const RegisterArrayInfo& info(RegisterId id) const;

  /// Total state memory in bytes across all arrays (width rounded up to
  /// whole bytes per cell) — the resource-consumption metric.
  [[nodiscard]] std::size_t total_state_bytes() const noexcept;

  /// Zero every cell (switch reboot).
  void clear() noexcept;

 private:
  struct Array {
    RegisterArrayInfo info;
    std::vector<Word> cells;
    Word mask = ~Word{0};
  };
  std::vector<Array> arrays_;
};

}  // namespace p4sim

// Match-action tables with exact / LPM / ternary matching.
//
// Tables are populated at runtime by the controller (runtime.hpp), exactly
// like bmv2's table_add / table_modify CLI that the paper's drill-down
// controller drives.  Stat4's binding tables (Figure 4) are ordinary tables
// whose actions update statistics registers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "p4sim/action.hpp"
#include "p4sim/parser.hpp"

namespace p4sim {

using TableId = std::uint32_t;
using ActionId = std::uint32_t;
using EntryHandle = std::uint64_t;

enum class MatchKind : std::uint8_t {
  kExact,
  kLpm,      ///< longest-prefix match on the field's low `prefix_len` bits
  kTernary,  ///< value/mask with priority
};

/// One component of a table's match key.
struct KeySpec {
  FieldRef field = FieldRef::kIpv4Dst;
  MatchKind kind = MatchKind::kExact;
};

/// One component of an entry's match value.
struct KeyMatch {
  Word value = 0;
  Word mask = ~Word{0};          ///< ternary only
  std::uint8_t prefix_len = 32;  ///< lpm only (bits of `value`, MSB-first
                                 ///< within the field's natural width)
  std::uint8_t field_bits = 32;  ///< natural width of the field in bits
};

struct TableEntry {
  std::vector<KeyMatch> key;
  ActionId action = 0;
  std::vector<Word> action_data;
  std::int32_t priority = 0;  ///< higher wins among ternary candidates
};

struct MatchResult {
  ActionId action = 0;
  std::span<const Word> action_data;
  bool hit = false;
  EntryHandle handle = 0;
};

class MatchActionTable {
 public:
  MatchActionTable(std::string name, std::vector<KeySpec> key_layout,
                   std::size_t max_entries = 1024);

  /// Insert an entry; returns a stable handle for modify/remove.
  EntryHandle insert(TableEntry entry);
  void modify(EntryHandle handle, TableEntry entry);
  void remove(EntryHandle handle);

  void set_default_action(ActionId action, std::vector<Word> action_data);

  /// Look up a packet.  On miss, returns the default action with hit=false.
  ///
  /// Uses the compiled entry cache: live entries are flattened into a dense
  /// vector sorted best-first (priority desc, total prefix length desc,
  /// insertion order asc) with every per-key match precomputed to one
  /// uniform (field & mask) == value test — so the lookup is a scan that
  /// stops at the FIRST match instead of scoring every entry, and the LPM
  /// mask arithmetic runs once per table write instead of once per packet.
  /// Any mutation (insert/modify/remove/set_default_action) marks the cache
  /// dirty; the next lookup rebuilds it.  Result is bit-identical to
  /// lookup_linear() — tests/p4sim_fastpath_test.cpp enforces this across
  /// mid-stream table writes.
  [[nodiscard]] MatchResult lookup(const PacketView& view) const;

  /// True when every possible lookup currently returns the default action:
  /// the table has no live entries.  Inline and cheap (one dirty-flag
  /// branch once compiled) — the pipeline loop uses it to skip guaranteed
  /// no-op stages per packet, so the answer tracks runtime table mutation.
  [[nodiscard]] bool default_only() const {
    if (compiled_dirty_) compile();
    return compiled_.empty();
  }

  /// The reference lookup: the original full scoring scan over live
  /// entries, no caching.  Kept as the differential baseline for the
  /// compiled path (and used by P4Switch when the fast path is disabled).
  [[nodiscard]] MatchResult lookup_linear(const PacketView& view) const;

  /// How many times the compiled entry cache has been (re)built — lets
  /// tests assert that table writes invalidate the cache.
  [[nodiscard]] std::uint64_t compile_count() const noexcept {
    return compile_count_;
  }

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<KeySpec>& key_layout() const noexcept {
    return key_layout_;
  }
  [[nodiscard]] std::size_t entry_count() const noexcept;
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

  // Introspection for the static verifier (src/analysis/): which actions a
  // table can dispatch to and with what action data.
  /// Every live entry, in insertion order.
  [[nodiscard]] std::vector<const TableEntry*> live_entries() const;
  [[nodiscard]] ActionId default_action() const noexcept {
    return default_action_;
  }
  [[nodiscard]] const std::vector<Word>& default_action_data() const noexcept {
    return default_data_;
  }

 private:
  struct Stored {
    TableEntry entry;
    EntryHandle handle = 0;
    bool live = false;
  };

  /// One key of a compiled entry: every MatchKind lowered to the uniform
  /// test (view.get(field) & mask) == value.  Exact: mask = ~0; LPM: the
  /// prefix mask, computed once here instead of per packet; ternary: the
  /// entry mask.  value is pre-masked.
  struct CompiledKey {
    FieldRef field = FieldRef::kIpv4Dst;
    Word mask = 0;
    Word value = 0;
  };

  struct CompiledEntry {
    std::vector<CompiledKey> keys;
    ActionId action = 0;
    const std::vector<Word>* action_data = nullptr;
    EntryHandle handle = 0;
  };

  [[nodiscard]] bool entry_matches(const TableEntry& e,
                                   const PacketView& view) const;
  void compile() const;

  std::string name_;
  std::vector<KeySpec> key_layout_;
  std::size_t max_entries_;
  std::vector<Stored> entries_;
  EntryHandle next_handle_ = 1;
  ActionId default_action_ = 0;
  std::vector<Word> default_data_;
  // Compiled lookup cache (see lookup()).  Mutable: rebuilt lazily from
  // const lookup(); the table is externally synchronized like all switch
  // state (one worker thread per switch lane).
  mutable std::vector<CompiledEntry> compiled_;
  mutable bool compiled_dirty_ = true;
  mutable std::uint64_t compile_count_ = 0;
};

// Inline: one call per table stage per packet.  The scan itself is a few
// compare-and-mask tests over the compiled entries; keeping it visible to
// the pipeline loop removes the per-stage call and lets the compiler fold
// the span/result plumbing.
inline MatchResult MatchActionTable::lookup(const PacketView& view) const {
  if (compiled_dirty_) compile();
  for (const CompiledEntry& ce : compiled_) {
    bool match = true;
    for (const CompiledKey& ck : ce.keys) {
      if ((view.get(ck.field) & ck.mask) != ck.value) {
        match = false;
        break;
      }
    }
    if (match) {
      MatchResult r;
      r.action = ce.action;
      r.action_data = *ce.action_data;
      r.hit = true;
      r.handle = ce.handle;
      return r;
    }
  }
  MatchResult r;
  r.action = default_action_;
  r.action_data = default_data_;
  r.hit = false;
  return r;
}

}  // namespace p4sim

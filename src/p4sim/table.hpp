// Match-action tables with exact / LPM / ternary matching.
//
// Tables are populated at runtime by the controller (runtime.hpp), exactly
// like bmv2's table_add / table_modify CLI that the paper's drill-down
// controller drives.  Stat4's binding tables (Figure 4) are ordinary tables
// whose actions update statistics registers.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "p4sim/action.hpp"
#include "p4sim/parser.hpp"

namespace p4sim {

using TableId = std::uint32_t;
using ActionId = std::uint32_t;
using EntryHandle = std::uint64_t;

enum class MatchKind : std::uint8_t {
  kExact,
  kLpm,      ///< longest-prefix match on the field's low `prefix_len` bits
  kTernary,  ///< value/mask with priority
};

/// One component of a table's match key.
struct KeySpec {
  FieldRef field = FieldRef::kIpv4Dst;
  MatchKind kind = MatchKind::kExact;
};

/// One component of an entry's match value.
struct KeyMatch {
  Word value = 0;
  Word mask = ~Word{0};          ///< ternary only
  std::uint8_t prefix_len = 32;  ///< lpm only (bits of `value`, MSB-first
                                 ///< within the field's natural width)
  std::uint8_t field_bits = 32;  ///< natural width of the field in bits
};

struct TableEntry {
  std::vector<KeyMatch> key;
  ActionId action = 0;
  std::vector<Word> action_data;
  std::int32_t priority = 0;  ///< higher wins among ternary candidates
};

struct MatchResult {
  ActionId action = 0;
  std::span<const Word> action_data;
  bool hit = false;
  EntryHandle handle = 0;
};

class MatchActionTable {
 public:
  MatchActionTable(std::string name, std::vector<KeySpec> key_layout,
                   std::size_t max_entries = 1024);

  /// Insert an entry; returns a stable handle for modify/remove.
  EntryHandle insert(TableEntry entry);
  void modify(EntryHandle handle, TableEntry entry);
  void remove(EntryHandle handle);

  void set_default_action(ActionId action, std::vector<Word> action_data);

  /// Look up a packet.  On miss, returns the default action with hit=false.
  [[nodiscard]] MatchResult lookup(const PacketView& view) const;

  [[nodiscard]] const std::string& name() const noexcept { return name_; }
  [[nodiscard]] const std::vector<KeySpec>& key_layout() const noexcept {
    return key_layout_;
  }
  [[nodiscard]] std::size_t entry_count() const noexcept;
  [[nodiscard]] std::size_t max_entries() const noexcept {
    return max_entries_;
  }

  // Introspection for the static verifier (src/analysis/): which actions a
  // table can dispatch to and with what action data.
  /// Every live entry, in insertion order.
  [[nodiscard]] std::vector<const TableEntry*> live_entries() const;
  [[nodiscard]] ActionId default_action() const noexcept {
    return default_action_;
  }
  [[nodiscard]] const std::vector<Word>& default_action_data() const noexcept {
    return default_data_;
  }

 private:
  struct Stored {
    TableEntry entry;
    EntryHandle handle = 0;
    bool live = false;
  };

  [[nodiscard]] bool entry_matches(const TableEntry& e,
                                   const PacketView& view) const;

  std::string name_;
  std::vector<KeySpec> key_layout_;
  std::size_t max_entries_;
  std::vector<Stored> entries_;
  EntryHandle next_handle_ = 1;
  ActionId default_action_ = 0;
  std::vector<Word> default_data_;
};

}  // namespace p4sim

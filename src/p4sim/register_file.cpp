#include "p4sim/register_file.hpp"

#include <stdexcept>

namespace p4sim {

RegisterId RegisterFile::declare(std::string name, std::uint32_t size,
                                 std::uint32_t width_bits) {
  if (size == 0) {
    throw std::invalid_argument("p4sim: register array needs >= 1 cell");
  }
  if (width_bits == 0 || width_bits > 64) {
    throw std::invalid_argument("p4sim: register width must be 1..64 bits");
  }
  Array a;
  a.info = RegisterArrayInfo{std::move(name), width_bits, size};
  a.cells.assign(size, 0);
  a.mask = width_bits == 64 ? ~Word{0} : ((Word{1} << width_bits) - 1);
  arrays_.push_back(std::move(a));
  return static_cast<RegisterId>(arrays_.size() - 1);
}

Word RegisterFile::read(RegisterId id, std::uint64_t index) const {
  if (id >= arrays_.size()) {
    throw std::out_of_range("p4sim: unknown register array");
  }
  const Array& a = arrays_[id];
  // P4 targets typically return 0 for out-of-bounds register reads rather
  // than faulting; bmv2 clamps.  We mirror the read-as-zero behaviour.
  if (index >= a.cells.size()) return 0;
  return a.cells[index];
}

void RegisterFile::write(RegisterId id, std::uint64_t index, Word value) {
  if (id >= arrays_.size()) {
    throw std::out_of_range("p4sim: unknown register array");
  }
  Array& a = arrays_[id];
  if (index >= a.cells.size()) return;  // dropped, like an OOB data-plane write
  a.cells[index] = value & a.mask;
}

RegisterWindow RegisterFile::window(RegisterId id) {
  if (id >= arrays_.size()) {
    throw std::out_of_range("p4sim: unknown register array");
  }
  Array& a = arrays_[id];
  return RegisterWindow{a.cells.data(), a.cells.size(), a.mask};
}

const RegisterArrayInfo& RegisterFile::info(RegisterId id) const {
  if (id >= arrays_.size()) {
    throw std::out_of_range("p4sim: unknown register array");
  }
  return arrays_[id].info;
}

std::size_t RegisterFile::total_state_bytes() const noexcept {
  std::size_t total = 0;
  for (const auto& a : arrays_) {
    const std::size_t bytes_per_cell = (a.info.width_bits + 7) / 8;
    total += bytes_per_cell * a.info.size;
  }
  return total;
}

void RegisterFile::clear() noexcept {
  for (auto& a : arrays_) {
    for (auto& c : a.cells) c = 0;
  }
}

}  // namespace p4sim

#include "p4sim/exec_tier.hpp"

#include <cstdlib>

namespace p4sim {

const char* to_string(ExecTier tier) noexcept {
  switch (tier) {
    case ExecTier::kInterpreter: return "interp";
    case ExecTier::kThreaded: return "threaded";
    case ExecTier::kNative: return "native";
  }
  return "?";
}

std::optional<ExecTier> parse_exec_tier(std::string_view name) noexcept {
  if (name == "interp" || name == "interpreter") return ExecTier::kInterpreter;
  if (name == "threaded") return ExecTier::kThreaded;
  if (name == "native" || name == "jit") return ExecTier::kNative;
  return std::nullopt;
}

ExecTier default_exec_tier() noexcept {
  static const ExecTier tier = [] {
    const char* env = std::getenv("STAT4_EXEC_TIER");
    if (env != nullptr) {
      if (const auto parsed = parse_exec_tier(env)) return *parsed;
    }
    return ExecTier::kThreaded;
  }();
  return tier;
}

}  // namespace p4sim

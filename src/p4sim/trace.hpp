// Packet trace recording and replay.
//
// A trace captures a packet stream (timestamps, ingress ports, raw bytes)
// in a simple length-prefixed binary format, so that a workload observed
// once — synthetic or converted from a real capture — replays bit-exactly
// into any switch program.  Experiments become artifacts: record the
// case-study traffic once, replay it against code changes forever.
//
// Format (all integers little-endian):
//   magic "S4TR" | u32 version (1) | records...
//   record: i64 timestamp_ns | u16 ingress_port | u32 length | bytes
#pragma once

#include <iosfwd>
#include <optional>

#include "p4sim/packet.hpp"
#include "p4sim/switch.hpp"

namespace p4sim {

inline constexpr std::uint32_t kTraceVersion = 1;

class TraceWriter {
 public:
  /// Writes the header immediately.  The stream must outlive the writer.
  explicit TraceWriter(std::ostream& out);

  void record(const Packet& pkt);

  [[nodiscard]] std::uint64_t packets_written() const noexcept {
    return written_;
  }

 private:
  std::ostream* out_;
  std::uint64_t written_ = 0;
};

class TraceReader {
 public:
  /// Validates the header; throws std::runtime_error on a bad magic or an
  /// unsupported version.
  explicit TraceReader(std::istream& in);

  /// Next packet, or nullopt at a clean end of stream.  Throws
  /// std::runtime_error on a truncated/corrupt record.
  [[nodiscard]] std::optional<Packet> next();

  [[nodiscard]] std::uint64_t packets_read() const noexcept { return read_; }

 private:
  std::istream* in_;
  std::uint64_t read_ = 0;
};

/// Replay summary.
struct ReplayResult {
  std::uint64_t packets = 0;
  std::uint64_t forwarded = 0;
  std::uint64_t dropped = 0;
  std::vector<Digest> digests;
};

/// Feeds every packet of the trace through the switch, in order.
[[nodiscard]] ReplayResult replay_trace(std::istream& in, P4Switch& sw);

}  // namespace p4sim

#include "p4sim/table.hpp"

#include <algorithm>
#include <stdexcept>

namespace p4sim {

MatchActionTable::MatchActionTable(std::string name,
                                   std::vector<KeySpec> key_layout,
                                   std::size_t max_entries)
    : name_(std::move(name)),
      key_layout_(std::move(key_layout)),
      max_entries_(max_entries) {}

EntryHandle MatchActionTable::insert(TableEntry entry) {
  if (entry.key.size() != key_layout_.size()) {
    throw std::invalid_argument("p4sim: entry key arity mismatch in table " +
                                name_);
  }
  if (entry_count() >= max_entries_) {
    throw std::length_error("p4sim: table " + name_ + " is full");
  }
  Stored s;
  s.entry = std::move(entry);
  s.handle = next_handle_++;
  s.live = true;
  compiled_dirty_ = true;
  entries_.push_back(std::move(s));
  return entries_.back().handle;
}

void MatchActionTable::modify(EntryHandle handle, TableEntry entry) {
  if (entry.key.size() != key_layout_.size()) {
    throw std::invalid_argument("p4sim: entry key arity mismatch in table " +
                                name_);
  }
  for (auto& s : entries_) {
    if (s.live && s.handle == handle) {
      s.entry = std::move(entry);
      compiled_dirty_ = true;
      return;
    }
  }
  throw std::out_of_range("p4sim: unknown entry handle in table " + name_);
}

void MatchActionTable::remove(EntryHandle handle) {
  for (auto& s : entries_) {
    if (s.live && s.handle == handle) {
      s.live = false;
      compiled_dirty_ = true;
      return;
    }
  }
  throw std::out_of_range("p4sim: unknown entry handle in table " + name_);
}

std::vector<const TableEntry*> MatchActionTable::live_entries() const {
  std::vector<const TableEntry*> out;
  out.reserve(entries_.size());
  for (const auto& s : entries_) {
    if (s.live) out.push_back(&s.entry);
  }
  return out;
}

void MatchActionTable::set_default_action(ActionId action,
                                          std::vector<Word> action_data) {
  default_action_ = action;
  default_data_ = std::move(action_data);
  compiled_dirty_ = true;
}

std::size_t MatchActionTable::entry_count() const noexcept {
  std::size_t n = 0;
  for (const auto& s : entries_) {
    if (s.live) ++n;
  }
  return n;
}

bool MatchActionTable::entry_matches(const TableEntry& e,
                                     const PacketView& view) const {
  for (std::size_t i = 0; i < key_layout_.size(); ++i) {
    const Word field = view.get(key_layout_[i].field);
    const KeyMatch& km = e.key[i];
    switch (key_layout_[i].kind) {
      case MatchKind::kExact:
        if (field != km.value) return false;
        break;
      case MatchKind::kLpm: {
        if (km.prefix_len == 0) break;  // matches everything
        const unsigned bits = km.field_bits > 64 ? 64u : km.field_bits;
        const unsigned plen = km.prefix_len > bits
                                  ? bits
                                  : static_cast<unsigned>(km.prefix_len);
        const Word full = bits == 64 ? ~Word{0} : ((Word{1} << bits) - 1);
        const Word mask = (full >> (bits - plen)) << (bits - plen);
        if ((field & mask) != (km.value & mask)) return false;
        break;
      }
      case MatchKind::kTernary:
        if ((field & km.mask) != (km.value & km.mask)) return false;
        break;
    }
  }
  return true;
}

MatchResult MatchActionTable::lookup_linear(const PacketView& view) const {
  const Stored* best = nullptr;
  std::uint32_t best_plen = 0;
  for (const auto& s : entries_) {
    if (!s.live || !entry_matches(s.entry, view)) continue;
    if (best == nullptr) {
      best = &s;
      // For LPM preference track the total prefix length of the entry.
      best_plen = 0;
      for (const auto& km : s.entry.key) best_plen += km.prefix_len;
      continue;
    }
    // Priority first (ternary semantics), then longest prefix, then first
    // inserted — matching bmv2's resolution order closely enough for the
    // programs we run.
    std::uint32_t plen = 0;
    for (const auto& km : s.entry.key) plen += km.prefix_len;
    if (s.entry.priority > best->entry.priority ||
        (s.entry.priority == best->entry.priority && plen > best_plen)) {
      best = &s;
      best_plen = plen;
    }
  }
  MatchResult r;
  if (best != nullptr) {
    r.action = best->entry.action;
    r.action_data = best->entry.action_data;
    r.hit = true;
    r.handle = best->handle;
  } else {
    r.action = default_action_;
    r.action_data = default_data_;
    r.hit = false;
  }
  return r;
}

void MatchActionTable::compile() const {
  // Flatten live entries best-first so the compiled lookup can stop at the
  // first match: stable_sort on (priority desc, total prefix length desc)
  // keeps insertion order inside equal keys — exactly the resolution order
  // lookup_linear() implements with its running-best scan.
  struct Ranked {
    const Stored* s;
    std::uint32_t plen;
  };
  std::vector<Ranked> ranked;
  ranked.reserve(entries_.size());
  for (const auto& s : entries_) {
    if (!s.live) continue;
    std::uint32_t plen = 0;
    for (const auto& km : s.entry.key) plen += km.prefix_len;
    ranked.push_back({&s, plen});
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const Ranked& a, const Ranked& b) {
                     if (a.s->entry.priority != b.s->entry.priority) {
                       return a.s->entry.priority > b.s->entry.priority;
                     }
                     return a.plen > b.plen;
                   });

  compiled_.clear();
  compiled_.reserve(ranked.size());
  for (const Ranked& r : ranked) {
    CompiledEntry ce;
    ce.action = r.s->entry.action;
    ce.action_data = &r.s->entry.action_data;
    ce.handle = r.s->handle;
    ce.keys.reserve(key_layout_.size());
    for (std::size_t i = 0; i < key_layout_.size(); ++i) {
      const KeyMatch& km = r.s->entry.key[i];
      CompiledKey ck;
      ck.field = key_layout_[i].field;
      switch (key_layout_[i].kind) {
        case MatchKind::kExact:
          ck.mask = ~Word{0};
          ck.value = km.value;
          break;
        case MatchKind::kLpm: {
          if (km.prefix_len == 0) {
            ck.mask = 0;  // matches everything
            ck.value = 0;
            break;
          }
          const unsigned bits = km.field_bits > 64 ? 64u : km.field_bits;
          const unsigned plen = km.prefix_len > bits
                                    ? bits
                                    : static_cast<unsigned>(km.prefix_len);
          const Word full = bits == 64 ? ~Word{0} : ((Word{1} << bits) - 1);
          ck.mask = (full >> (bits - plen)) << (bits - plen);
          ck.value = km.value & ck.mask;
          break;
        }
        case MatchKind::kTernary:
          ck.mask = km.mask;
          ck.value = km.value & km.mask;
          break;
      }
      ce.keys.push_back(ck);
    }
    compiled_.push_back(std::move(ce));
  }
  compiled_dirty_ = false;
  ++compile_count_;
}

}  // namespace p4sim

#include "p4sim/action.hpp"

#include <stdexcept>

#include "stat4/approx_math.hpp"
#include "stat4/sparse_freq.hpp"

namespace p4sim {

void Program::validate(const AluProfile& profile) const {
  if (code.size() > profile.max_instructions) {
    throw std::invalid_argument("p4sim: program '" + name +
                                "' exceeds the profile instruction budget");
  }
  for (const auto& ins : code) {
    if (ins.dst >= kTempCount || ins.a >= kTempCount || ins.b >= kTempCount ||
        ins.c >= kTempCount) {
      throw std::invalid_argument("p4sim: program '" + name +
                                  "' references a temp beyond the PHV pool");
    }
    if (ins.op == Op::kMul && !profile.has_mul) {
      throw std::invalid_argument(
          "p4sim: program '" + name +
          "' multiplies runtime values on a no-mul target (use "
          "approx_square)");
    }
  }
}

void execute(const Program& program, ExecutionContext& ctx) {
  auto& t = ctx.temps;
  for (const auto& ins : program.code) {
    switch (ins.op) {
      case Op::kConst: t[ins.dst] = ins.imm; break;
      case Op::kParam:
        t[ins.dst] = ins.imm < ctx.action_data.size()
                         ? ctx.action_data[ins.imm]
                         : 0;
        break;
      case Op::kMov: t[ins.dst] = t[ins.a]; break;
      case Op::kAdd: t[ins.dst] = t[ins.a] + t[ins.b]; break;
      case Op::kSub: t[ins.dst] = t[ins.a] - t[ins.b]; break;
      case Op::kMul: t[ins.dst] = t[ins.a] * t[ins.b]; break;
      case Op::kShl: t[ins.dst] = t[ins.a] << (t[ins.b] & 63); break;
      case Op::kShr: t[ins.dst] = t[ins.a] >> (t[ins.b] & 63); break;
      case Op::kAnd: t[ins.dst] = t[ins.a] & t[ins.b]; break;
      case Op::kOr: t[ins.dst] = t[ins.a] | t[ins.b]; break;
      case Op::kXor: t[ins.dst] = t[ins.a] ^ t[ins.b]; break;
      case Op::kNot: t[ins.dst] = ~t[ins.a]; break;
      case Op::kEq: t[ins.dst] = t[ins.a] == t[ins.b] ? 1 : 0; break;
      case Op::kNe: t[ins.dst] = t[ins.a] != t[ins.b] ? 1 : 0; break;
      case Op::kLt: t[ins.dst] = t[ins.a] < t[ins.b] ? 1 : 0; break;
      case Op::kGt: t[ins.dst] = t[ins.a] > t[ins.b] ? 1 : 0; break;
      case Op::kLe: t[ins.dst] = t[ins.a] <= t[ins.b] ? 1 : 0; break;
      case Op::kGe: t[ins.dst] = t[ins.a] >= t[ins.b] ? 1 : 0; break;
      case Op::kSelect: t[ins.dst] = t[ins.a] ? t[ins.b] : t[ins.c]; break;
      case Op::kLoadField: t[ins.dst] = ctx.view->get(ins.field); break;
      case Op::kStoreField: ctx.view->set(ins.field, t[ins.a]); break;
      case Op::kLoadReg:
        t[ins.dst] = ctx.registers->read(ins.reg, t[ins.a]);
        break;
      case Op::kStoreReg:
        ctx.registers->write(ins.reg, t[ins.a], t[ins.b]);
        break;
      case Op::kHash1: t[ins.dst] = stat4::sparse_hash1(t[ins.a]); break;
      case Op::kHash2: t[ins.dst] = stat4::sparse_hash2(t[ins.a]); break;
      case Op::kDigest:
        if (ctx.digests != nullptr && t[ins.c] != 0) {
          Digest d;
          d.id = static_cast<std::uint32_t>(ins.imm);
          d.payload = {t[ins.a], t[ins.b], t[ins.dst]};
          d.time = ctx.now;
          ctx.digests->push_back(d);
        }
        break;
    }
  }
}

void instruction_temps(const Instruction& ins, std::vector<TempId>& reads,
                       std::vector<TempId>& writes) {
  switch (ins.op) {
    case Op::kConst:
    case Op::kParam:
    case Op::kLoadField:
      writes.push_back(ins.dst);
      break;
    case Op::kMov:
    case Op::kNot:
    case Op::kHash1:
    case Op::kHash2:
      reads.push_back(ins.a);
      writes.push_back(ins.dst);
      break;
    case Op::kAdd:
    case Op::kSub:
    case Op::kMul:
    case Op::kShl:
    case Op::kShr:
    case Op::kAnd:
    case Op::kOr:
    case Op::kXor:
    case Op::kEq:
    case Op::kNe:
    case Op::kLt:
    case Op::kGt:
    case Op::kLe:
    case Op::kGe:
      reads.push_back(ins.a);
      reads.push_back(ins.b);
      writes.push_back(ins.dst);
      break;
    case Op::kSelect:
      reads.push_back(ins.a);
      reads.push_back(ins.b);
      reads.push_back(ins.c);
      writes.push_back(ins.dst);
      break;
    case Op::kStoreField:
      reads.push_back(ins.a);
      break;
    case Op::kLoadReg:
      reads.push_back(ins.a);
      writes.push_back(ins.dst);
      break;
    case Op::kStoreReg:
      reads.push_back(ins.a);
      reads.push_back(ins.b);
      break;
    case Op::kDigest:
      reads.push_back(ins.a);
      reads.push_back(ins.b);
      reads.push_back(ins.c);
      reads.push_back(ins.dst);
      break;
  }
}

std::bitset<kTempCount> read_before_write(const Program& program) {
  std::bitset<kTempCount> rbw;
  std::bitset<kTempCount> written;
  std::vector<TempId> reads;
  std::vector<TempId> writes;
  for (const Instruction& ins : program.code) {
    reads.clear();
    writes.clear();
    instruction_temps(ins, reads, writes);
    for (const TempId id : reads) {
      if (!written[id]) rbw[id] = true;
    }
    for (const TempId id : writes) written[id] = true;
  }
  return rbw;
}

ProgramBuilder::ProgramBuilder(std::string name) {
  program_.name = std::move(name);
}

TempId ProgramBuilder::fresh() {
  if (next_temp_ >= kTempCount) {
    throw std::invalid_argument("p4sim: program '" + program_.name +
                                "' exhausted the PHV temp pool");
  }
  return next_temp_++;
}

TempId ProgramBuilder::emit2(Op op, TempId a, TempId b) {
  const TempId d = fresh();
  program_.code.push_back(Instruction{op, d, a, b, 0, 0, FieldRef::kEthType, 0});
  return d;
}

TempId ProgramBuilder::konst(Word v) {
  const TempId d = fresh();
  Instruction ins;
  ins.op = Op::kConst;
  ins.dst = d;
  ins.imm = v;
  program_.code.push_back(ins);
  return d;
}

TempId ProgramBuilder::param(std::size_t index) {
  const TempId d = fresh();
  Instruction ins;
  ins.op = Op::kParam;
  ins.dst = d;
  ins.imm = index;
  program_.code.push_back(ins);
  return d;
}

TempId ProgramBuilder::load_field(FieldRef f) {
  const TempId d = fresh();
  Instruction ins;
  ins.op = Op::kLoadField;
  ins.dst = d;
  ins.field = f;
  program_.code.push_back(ins);
  return d;
}

void ProgramBuilder::store_field(FieldRef f, TempId v) {
  Instruction ins;
  ins.op = Op::kStoreField;
  ins.a = v;
  ins.field = f;
  program_.code.push_back(ins);
}

TempId ProgramBuilder::load_reg(RegisterId r, TempId index) {
  const TempId d = fresh();
  Instruction ins;
  ins.op = Op::kLoadReg;
  ins.dst = d;
  ins.a = index;
  ins.reg = r;
  program_.code.push_back(ins);
  return d;
}

void ProgramBuilder::store_reg(RegisterId r, TempId index, TempId value) {
  Instruction ins;
  ins.op = Op::kStoreReg;
  ins.a = index;
  ins.b = value;
  ins.reg = r;
  program_.code.push_back(ins);
}

TempId ProgramBuilder::add(TempId a, TempId b) { return emit2(Op::kAdd, a, b); }
TempId ProgramBuilder::sub(TempId a, TempId b) { return emit2(Op::kSub, a, b); }
TempId ProgramBuilder::mul(TempId a, TempId b) { return emit2(Op::kMul, a, b); }
TempId ProgramBuilder::shl(TempId a, TempId b) { return emit2(Op::kShl, a, b); }
TempId ProgramBuilder::shr(TempId a, TempId b) { return emit2(Op::kShr, a, b); }
TempId ProgramBuilder::band(TempId a, TempId b) { return emit2(Op::kAnd, a, b); }
TempId ProgramBuilder::bor(TempId a, TempId b) { return emit2(Op::kOr, a, b); }
TempId ProgramBuilder::bxor(TempId a, TempId b) { return emit2(Op::kXor, a, b); }
TempId ProgramBuilder::eq(TempId a, TempId b) { return emit2(Op::kEq, a, b); }
TempId ProgramBuilder::ne(TempId a, TempId b) { return emit2(Op::kNe, a, b); }
TempId ProgramBuilder::lt(TempId a, TempId b) { return emit2(Op::kLt, a, b); }
TempId ProgramBuilder::gt(TempId a, TempId b) { return emit2(Op::kGt, a, b); }
TempId ProgramBuilder::le(TempId a, TempId b) { return emit2(Op::kLe, a, b); }
TempId ProgramBuilder::ge(TempId a, TempId b) { return emit2(Op::kGe, a, b); }

TempId ProgramBuilder::bnot(TempId a) {
  const TempId d = fresh();
  Instruction ins;
  ins.op = Op::kNot;
  ins.dst = d;
  ins.a = a;
  program_.code.push_back(ins);
  return d;
}

TempId ProgramBuilder::select(TempId cond, TempId if_true, TempId if_false) {
  const TempId d = fresh();
  Instruction ins;
  ins.op = Op::kSelect;
  ins.dst = d;
  ins.a = cond;
  ins.b = if_true;
  ins.c = if_false;
  program_.code.push_back(ins);
  return d;
}

void ProgramBuilder::mov_into(TempId dst, TempId src) {
  Instruction ins;
  ins.op = Op::kMov;
  ins.dst = dst;
  ins.a = src;
  program_.code.push_back(ins);
}

void ProgramBuilder::digest_if(TempId cond, std::uint32_t id, TempId w0,
                               TempId w1, TempId w2) {
  Instruction ins;
  ins.op = Op::kDigest;
  ins.imm = id;
  ins.a = w0;
  ins.b = w1;
  ins.c = cond;
  ins.dst = w2;
  program_.code.push_back(ins);
}

void ProgramBuilder::record_span(ApproxSpan::Fn fn, std::size_t begin,
                                 TempId in_a, TempId in_b, TempId out,
                                 std::uint32_t rel_num, std::uint32_t rel_den,
                                 std::uint64_t abs) {
  ApproxSpan span;
  span.fn = fn;
  span.begin = static_cast<std::uint32_t>(begin);
  span.end = static_cast<std::uint32_t>(program_.code.size());
  span.in_a = in_a;
  span.in_b = in_b;
  span.out = out;
  span.rel_num = rel_num;
  span.rel_den = rel_den;
  span.abs = abs;
  program_.approx_spans.push_back(span);
}

TempId ProgramBuilder::approx_mul(TempId a, TempId b) {
  const std::size_t begin = program_.code.size();
  const TempId ea = msb_index(a);
  const TempId eb = msb_index(b);
  const TempId one = konst(1);
  const TempId pow_ea = shl(one, ea);
  const TempId ra = sub(a, pow_ea);
  const TempId lead = shl(b, ea);   // 2^(ea+eb) + rb*2^ea
  const TempId cross = shl(ra, eb); // ra*2^eb
  const TempId result = add(lead, cross);
  // A zero operand must yield zero (msb paths would yield b or garbage).
  const TempId zero = konst(0);
  const TempId a_zero = eq(a, zero);
  const TempId b_zero = eq(b, zero);
  const TempId any_zero = bor(a_zero, b_zero);
  const TempId out = select(any_zero, zero, result);
  // Only the r_a*r_b cross term is dropped and r_x/x < 1/2, so the product
  // under-approximates by strictly less than a*b/4.
  record_span(ApproxSpan::Fn::kMul, begin, a, b, out, 1, 4, 0);
  return out;
}

TempId ProgramBuilder::hash1(TempId a) {
  const TempId d = fresh();
  Instruction ins;
  ins.op = Op::kHash1;
  ins.dst = d;
  ins.a = a;
  program_.code.push_back(ins);
  return d;
}

TempId ProgramBuilder::hash2(TempId a) {
  const TempId d = fresh();
  Instruction ins;
  ins.op = Op::kHash2;
  ins.dst = d;
  ins.a = a;
  program_.code.push_back(ins);
  return d;
}

TempId ProgramBuilder::mul_shift_add(TempId a, TempId b, unsigned bits) {
  if (bits == 0 || bits > 64) {
    throw std::invalid_argument("p4sim: mul_shift_add bits must be 1..64");
  }
  const TempId zero = konst(0);
  const TempId one = konst(1);
  // Accumulators reused across iterations to keep PHV usage O(bits).
  TempId acc = fresh();
  mov_into(acc, zero);
  TempId a_rem = fresh();
  mov_into(a_rem, a);
  TempId b_shifted = fresh();
  mov_into(b_shifted, b);
  for (unsigned i = 0; i < bits; ++i) {
    const TempId bit = band(a_rem, one);
    const TempId term = select(bit, b_shifted, zero);
    mov_into(acc, add(acc, term));
    if (i + 1 < bits) {
      mov_into(a_rem, shr(a_rem, one));
      mov_into(b_shifted, shl(b_shifted, one));
    }
  }
  return acc;
}

TempId ProgramBuilder::msb_index(TempId y) {
  // The paper's "sequence of ifs" (Section 3): a six-step binary search.
  // Each step tests whether the remaining value needs more than 2^k bits,
  // conditionally shifts it down and accumulates the position.
  TempId v = fresh();
  mov_into(v, y);
  TempId pos = konst(0);
  const TempId zero = konst(0);
  for (const Word k : {Word{32}, Word{16}, Word{8}, Word{4}, Word{2},
                       Word{1}}) {
    const TempId threshold = konst(Word{1} << k);
    const TempId cond = ge(v, threshold);
    const TempId amount = select(cond, konst(k), zero);
    const TempId shifted = shr(v, amount);
    mov_into(v, shifted);
    const TempId newpos = add(pos, amount);
    mov_into(pos, newpos);
  }
  return pos;
}

TempId ProgramBuilder::approx_sqrt(TempId y) {
  // Figure 2: pseudo-float shift.  e = msb(y), m = y - 2^e;
  // e1 = e >> 1; m1 = (m >> 1) | (parity(e) << (e-1));
  // result = 2^e1 | (m1 >> (e - e1)); inputs <= 1 pass through.
  const std::size_t begin = program_.code.size();
  const TempId one = konst(1);
  const TempId e = msb_index(y);
  const TempId pow_e = shl(one, e);
  const TempId m = sub(y, pow_e);
  const TempId e1 = shr(e, one);
  const TempId m_half = shr(m, one);
  const TempId parity = band(e, one);
  const TempId e_minus_1 = sub(e, one);          // e==0 => parity==0 anyway
  const TempId parity_bit = shl(parity, e_minus_1);
  const TempId m1 = bor(m_half, parity_bit);
  const TempId pow_e1 = shl(one, e1);
  const TempId tail_shift = sub(e, e1);
  const TempId tail = shr(m1, tail_shift);
  const TempId result = bor(pow_e1, tail);
  const TempId is_small = le(y, one);
  const TempId out = select(is_small, y, result);
  // The linear-mantissa interpolation overshoots sqrt(y) by at most
  // (3 - 2*sqrt(2)) ~ 6.1% and the mantissa truncation undershoots by at
  // most ~2 units, so 1/8 relative + 2 absolute covers both directions.
  record_span(ApproxSpan::Fn::kSqrt, begin, y, y, out, 1, 8, 2);
  return out;
}

TempId ProgramBuilder::approx_log2(TempId y) {
  // e = msb(y); m = y - 2^e; frac = (e >= 8) ? m >> (e-8) : m << (8-e);
  // result = (e << 8) | frac; inputs <= 1 map to 0.
  const std::size_t begin = program_.code.size();
  const TempId zero = konst(0);
  const TempId one = konst(1);
  const TempId frac_bits = konst(stat4::kLog2FracBits);
  const TempId e = msb_index(y);
  const TempId pow_e = shl(one, e);
  const TempId m = sub(y, pow_e);
  const TempId wide = ge(e, frac_bits);
  // Both shift amounts are computed; the wrapped (&63) one is unselected.
  const TempId right = shr(m, sub(e, frac_bits));
  const TempId left = shl(m, sub(frac_bits, e));
  const TempId frac = select(wide, right, left);
  const TempId result = bor(shl(e, frac_bits), frac);
  const TempId small = le(y, one);
  const TempId out = select(small, zero, result);
  // Max error of the linear-fraction approximation is ~0.086 bits, i.e.
  // ~22 output units at 8 fractional bits; 24 rounds up (y <= 1 -> 0 is
  // the declared convention, not an error).
  record_span(ApproxSpan::Fn::kLog2, begin, y, y, out, 0, 1, 24);
  return out;
}

TempId ProgramBuilder::approx_square(TempId y) {
  // Shift-based squaring (Section 2 / Ding et al.):
  //   y^2 ~= 2^(2e) + r * 2^(e+1)   with e = msb(y), r = y - 2^e.
  const std::size_t begin = program_.code.size();
  const TempId one = konst(1);
  const TempId e = msb_index(y);
  const TempId pow_e = shl(one, e);
  const TempId r = sub(y, pow_e);
  const TempId two_e = shl(e, one);
  const TempId lead = shl(one, two_e);
  const TempId e_plus_1 = add(e, one);
  const TempId cross = shl(r, e_plus_1);
  const TempId result = add(lead, cross);
  const TempId zero = konst(0);
  const TempId is_zero = eq(y, zero);
  const TempId out = select(is_zero, zero, result);
  // Drops only r^2 and r = y - 2^e < y/2, so the undershoot is < y^2/4.
  record_span(ApproxSpan::Fn::kSquare, begin, y, y, out, 1, 4, 0);
  return out;
}

Program ProgramBuilder::take() { return std::move(program_); }

}  // namespace p4sim

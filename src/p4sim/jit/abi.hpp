// C ABI between the host switch and dlopen'ed transpiled pipelines.
//
// A transpiled unit is a self-contained C++ TU (no includes); it re-declares
// these structs textually (jit/transpiler.cpp emits them), so the layouts
// here and the emitted text must stay field-for-field identical.  The unit
// exports three symbols:
//
//   const unsigned long long stat4_jit_abi;           // == kAbiVersion
//   const unsigned long long stat4_jit_action_count;  // number of actions
//   void (*const stat4_jit_actions[])(Stat4JitContext*);
//
// Everything dynamic crosses the boundary through Context: temps and
// register cells as raw pointers (direct loads/stores in generated code),
// packet fields and digests as host callbacks (PacketView validity gating
// and Digest construction stay host-side, so the generated code can never
// drift from parser.cpp semantics).  Bump kAbiVersion on any layout change;
// the engine refuses units whose stat4_jit_abi mismatches.
#pragma once

#include <cstdint>

namespace p4sim::jit {

inline constexpr std::uint64_t kAbiVersion = 1;

/// Mirror of RegisterWindow with fixed-width members (emitted text uses
/// unsigned long long; same 64-bit representation).
struct RegWindow {
  std::uint64_t* base = nullptr;
  std::uint64_t size = 0;
  std::uint64_t mask = ~std::uint64_t{0};
};

struct Context {
  std::uint64_t* temps = nullptr;
  const std::uint64_t* action_data = nullptr;
  std::uint64_t action_data_len = 0;
  void* view = nullptr;
  std::uint64_t (*load_field)(void* view, std::uint32_t field) = nullptr;
  void (*store_field)(void* view, std::uint32_t field,
                      std::uint64_t value) = nullptr;
  const RegWindow* regs = nullptr;
  void* digest_sink = nullptr;
  void (*emit_digest)(void* sink, std::uint32_t id, std::uint64_t w0,
                      std::uint64_t w1, std::uint64_t w2) = nullptr;
};

using ActionFn = void (*)(Context*);

}  // namespace p4sim::jit

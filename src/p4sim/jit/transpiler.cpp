#include "p4sim/jit/transpiler.hpp"

#include <array>
#include <cstddef>
#include <string>
#include <vector>

namespace p4sim::jit {
namespace {

std::optional<Op> g_unsupported_op;  // test hook; see header

std::string u64_lit(Word v) { return std::to_string(v) + "ull"; }

std::string temp_name(TempId id) { return "t" + std::to_string(id); }

/// One statement per instruction; operands are the tN locals.
std::string emit_instruction(const Instruction& ins,
                             const RegisterFile& registers) {
  const std::string d = temp_name(ins.dst);
  const std::string a = temp_name(ins.a);
  const std::string b = temp_name(ins.b);
  const std::string c = temp_name(ins.c);
  const auto field_id = [&] {
    return std::to_string(static_cast<std::uint32_t>(ins.field)) + "u";
  };
  const auto reg = [&] { return std::to_string(ins.reg); };
  switch (ins.op) {
    case Op::kConst: return d + " = " + u64_lit(ins.imm) + ";";
    case Op::kParam:
      return d + " = (" + u64_lit(ins.imm) + " < c->action_data_len) ? " +
             "c->action_data[" + std::to_string(ins.imm) + "] : 0ull;";
    case Op::kMov: return d + " = " + a + ";";
    case Op::kAdd: return d + " = " + a + " + " + b + ";";
    case Op::kSub: return d + " = " + a + " - " + b + ";";
    case Op::kMul: return d + " = " + a + " * " + b + ";";
    case Op::kShl: return d + " = " + a + " << (" + b + " & 63u);";
    case Op::kShr: return d + " = " + a + " >> (" + b + " & 63u);";
    case Op::kAnd: return d + " = " + a + " & " + b + ";";
    case Op::kOr: return d + " = " + a + " | " + b + ";";
    case Op::kXor: return d + " = " + a + " ^ " + b + ";";
    case Op::kNot: return d + " = ~" + a + ";";
    case Op::kEq: return d + " = (" + a + " == " + b + ") ? 1ull : 0ull;";
    case Op::kNe: return d + " = (" + a + " != " + b + ") ? 1ull : 0ull;";
    case Op::kLt: return d + " = (" + a + " < " + b + ") ? 1ull : 0ull;";
    case Op::kGt: return d + " = (" + a + " > " + b + ") ? 1ull : 0ull;";
    case Op::kLe: return d + " = (" + a + " <= " + b + ") ? 1ull : 0ull;";
    case Op::kGe: return d + " = (" + a + " >= " + b + ") ? 1ull : 0ull;";
    case Op::kSelect: return d + " = " + a + " ? " + b + " : " + c + ";";
    case Op::kLoadField:
      return d + " = c->load_field(c->view, " + field_id() + ");";
    case Op::kStoreField:
      return "c->store_field(c->view, " + field_id() + ", " + a + ");";
    case Op::kLoadReg: {
      // Bounds and base resolved against the declared array; the size is a
      // literal (arrays never resize), the base pointer stays dynamic.
      const auto& info = registers.info(ins.reg);
      return "{ u64 i = " + a + "; " + d + " = (i < " + u64_lit(info.size) +
             ") ? c->regs[" + reg() + "].base[i] : 0ull; }";
    }
    case Op::kStoreReg: {
      const auto& info = registers.info(ins.reg);
      const Word mask = info.width_bits == 64
                            ? ~Word{0}
                            : ((Word{1} << info.width_bits) - 1);
      return "{ u64 i = " + a + "; if (i < " + u64_lit(info.size) +
             ") c->regs[" + reg() + "].base[i] = " + b + " & " +
             u64_lit(mask) + "; }";
    }
    case Op::kHash1: return d + " = stat4_jit_hash1(" + a + ");";
    case Op::kHash2: return d + " = stat4_jit_hash2(" + a + ");";
    case Op::kDigest:
      return "if (" + c + " != 0ull) c->emit_digest(c->digest_sink, " +
             std::to_string(static_cast<std::uint32_t>(ins.imm)) + "u, " + a +
             ", " + b + ", " + d + ");";
  }
  return ";";
}

/// Emits one action as a function over tN locals.  Temps cross the
/// host/unit boundary only where values can actually flow: locals in the
/// program's own read-before-write set load from ctx->temps on entry
/// (write-first temps start as dead locals), and only written temps some
/// installed action can observe (`observable`: the union of every action's
/// read-before-write set) are stored back on exit.  Everything else lives
/// and dies in registers — this is what makes a transpiled action a handful
/// of instructions instead of a scratch-pool memcpy.
void emit_action(std::string& out, std::size_t index, const Program& program,
                 const RegisterFile& registers,
                 const std::bitset<kTempCount>& observable) {
  out += "// action " + std::to_string(index) + ": '" + program.name + "' (" +
         std::to_string(program.code.size()) + " instructions)\n";
  out += "static void stat4_action_" + std::to_string(index) +
         "(Stat4JitContext* c) {\n";
  out += "  (void)c;\n";
  const std::bitset<kTempCount> rbw = read_before_write(program);
  std::array<bool, kTempCount> used{};
  std::array<bool, kTempCount> written{};
  std::vector<TempId> reads;
  std::vector<TempId> writes;
  for (const Instruction& ins : program.code) {
    reads.clear();
    writes.clear();
    instruction_temps(ins, reads, writes);
    for (const TempId id : reads) used[id] = true;
    for (const TempId id : writes) used[id] = written[id] = true;
  }
  for (std::size_t id = 0; id < kTempCount; ++id) {
    if (!used[id]) continue;
    out += "  u64 t" + std::to_string(id);
    if (rbw[id]) {
      out += " = c->temps[" + std::to_string(id) + "];\n";
    } else {
      out += " = 0ull;  // write-first\n";
    }
  }
  for (const Instruction& ins : program.code) {
    out += "  " + emit_instruction(ins, registers) + "\n";
  }
  for (std::size_t id = 0; id < kTempCount; ++id) {
    if (written[id] && observable[id]) {
      out += "  c->temps[" + std::to_string(id) + "] = t" +
             std::to_string(id) + ";\n";
    }
  }
  out += "}\n\n";
}

}  // namespace

void force_unsupported_op_for_testing(std::optional<Op> op) {
  g_unsupported_op = op;
}

TranspileResult transpile(std::span<const Program> actions,
                          const RegisterFile& registers,
                          std::string_view unit_name) {
  TranspileResult result;
  for (const Program& program : actions) {
    for (const Instruction& ins : program.code) {
      if (g_unsupported_op && ins.op == *g_unsupported_op) {
        result.reason = "program '" + program.name +
                        "' uses an op unsupported by the transpiler";
        return result;
      }
      if ((ins.op == Op::kLoadReg || ins.op == Op::kStoreReg) &&
          ins.reg >= registers.array_count()) {
        result.reason = "program '" + program.name +
                        "' references undeclared register array " +
                        std::to_string(ins.reg);
        return result;
      }
    }
  }

  std::string& out = result.source;
  out += "// stat4 p4sim JIT unit '" + std::string(unit_name) +
         "' — generated by jit/transpiler.cpp (ABI v1).\n";
  out += "// Self-contained: compiled by the host toolchain, dlopen'ed by "
         "jit/engine.cpp.\n\n";
  out += "typedef unsigned long long u64;\n";
  out += "typedef unsigned int u32;\n\n";
  // Textual mirror of jit/abi.hpp — keep field-for-field identical.
  out += "struct Stat4JitRegWindow {\n";
  out += "  u64* base;\n";
  out += "  u64 size;\n";
  out += "  u64 mask;\n";
  out += "};\n\n";
  out += "struct Stat4JitContext {\n";
  out += "  u64* temps;\n";
  out += "  const u64* action_data;\n";
  out += "  u64 action_data_len;\n";
  out += "  void* view;\n";
  out += "  u64 (*load_field)(void* view, u32 field);\n";
  out += "  void (*store_field)(void* view, u32 field, u64 value);\n";
  out += "  const Stat4JitRegWindow* regs;\n";
  out += "  void* digest_sink;\n";
  out += "  void (*emit_digest)(void* sink, u32 id, u64 w0, u64 w1, u64 "
         "w2);\n";
  out += "};\n\n";
  out += "static inline u64 stat4_jit_hash1(u64 key) {\n";
  out += "  // stat4::sparse_hash1, SplitMix64 finalizer (bit-identical).\n";
  out += "  u64 z = key + 0x9E3779B97F4A7C15ull;\n";
  out += "  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;\n";
  out += "  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;\n";
  out += "  return z ^ (z >> 31);\n";
  out += "}\n\n";
  out += "static inline u64 stat4_jit_hash2(u64 key) {\n";
  out += "  // stat4::sparse_hash2, Murmur3 finalizer constants "
         "(bit-identical).\n";
  out += "  u64 z = key ^ 0xC2B2AE3D27D4EB4Full;\n";
  out += "  z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCDull;\n";
  out += "  z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53ull;\n";
  out += "  return z ^ (z >> 33);\n";
  out += "}\n\n";

  // A written temp is observable iff SOME installed action reads it before
  // writing it — tables dispatch dynamically, so any action may follow any
  // other within a packet.
  std::bitset<kTempCount> observable;
  for (const Program& program : actions) {
    observable |= read_before_write(program);
  }
  for (std::size_t i = 0; i < actions.size(); ++i) {
    emit_action(out, i, actions[i], registers, observable);
  }

  out += "extern \"C\" {\n";
  out += "u64 stat4_jit_abi = 1ull;\n";
  out += "u64 stat4_jit_action_count = " + std::to_string(actions.size()) +
         "ull;\n";
  if (actions.empty()) {
    out += "void (*stat4_jit_actions[1])(Stat4JitContext*) = {0};\n";
  } else {
    out += "void (*stat4_jit_actions[])(Stat4JitContext*) = {\n";
    for (std::size_t i = 0; i < actions.size(); ++i) {
      out += "    stat4_action_" + std::to_string(i) + ",\n";
    }
    out += "};\n";
  }
  out += "}  // extern \"C\"\n";

  result.ok = true;
  return result;
}

}  // namespace p4sim::jit

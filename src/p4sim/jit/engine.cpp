#include "p4sim/jit/engine.hpp"

#include <dlfcn.h>
#include <unistd.h>

#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <mutex>
#include <system_error>
#include <unordered_map>

#include "telemetry/metrics.hpp"

// The compiler that built this binary; CMake bakes it in so the default
// works wherever the build toolchain itself is installed.
#ifndef STAT4_JIT_HOST_CXX
#define STAT4_JIT_HOST_CXX "c++"
#endif

namespace p4sim::jit {
namespace {

std::uint64_t fnv1a(const std::string& s) noexcept {
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char ch : s) {
    h ^= static_cast<unsigned char>(ch);
    h *= 0x100000001B3ull;
  }
  return h;
}

struct Cache {
  std::mutex mu;
  std::unordered_map<std::uint64_t, std::shared_ptr<const CompiledUnit>> units;
};

Cache& cache() {
  static Cache c;
  return c;
}

std::string read_tail(const std::filesystem::path& path,
                      std::size_t max_bytes = 512) {
  std::ifstream in(path);
  std::string all((std::istreambuf_iterator<char>(in)),
                  std::istreambuf_iterator<char>());
  if (all.size() > max_bytes) all.erase(0, all.size() - max_bytes);
  return all;
}

/// Compile + dlopen + resolve, uncached.  Returns null unit + reason on any
/// failure; never throws.
CompileOutcome build(const std::string& source) {
  CompileOutcome out;
  static std::atomic<std::uint64_t> seq{0};
  std::error_code ec;
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path(ec) /
      ("stat4-jit-" + std::to_string(::getpid()) + "-" +
       std::to_string(seq.fetch_add(1)));
  if (ec || !std::filesystem::create_directories(dir, ec) || ec) {
    out.reason = "cannot create jit temp directory";
    return out;
  }
  const std::filesystem::path cpp = dir / "unit.cpp";
  const std::filesystem::path so = dir / "unit.so";
  const std::filesystem::path log = dir / "cc.log";
  {
    std::ofstream f(cpp);
    f << source;
    if (!f.good()) {
      out.reason = "cannot write jit source";
      std::filesystem::remove_all(dir, ec);
      return out;
    }
  }
  const std::string cmd = host_compiler() + " -std=c++20 -O2 -fPIC -shared" +
                          " -o \"" + so.string() + "\" \"" + cpp.string() +
                          "\" > \"" + log.string() + "\" 2>&1";
  // NOLINTNEXTLINE(concurrency-mt-unsafe): compile path is cold and the
  // cache mutex serializes it.
  const int rc = std::system(cmd.c_str());
  if (rc != 0) {
    out.reason = "host compiler failed (exit " + std::to_string(rc) + "): " +
                 read_tail(log);
    std::filesystem::remove_all(dir, ec);
    return out;
  }
  void* handle = ::dlopen(so.c_str(), RTLD_NOW | RTLD_LOCAL);
  // The mapping outlives the file on POSIX; drop the temp tree either way.
  std::filesystem::remove_all(dir, ec);
  if (handle == nullptr) {
    const char* err = ::dlerror();
    out.reason = std::string("dlopen failed: ") + (err ? err : "?");
    return out;
  }
  const auto* abi = static_cast<const std::uint64_t*>(
      ::dlsym(handle, "stat4_jit_abi"));
  const auto* count = static_cast<const std::uint64_t*>(
      ::dlsym(handle, "stat4_jit_action_count"));
  auto* fns = static_cast<ActionFn*>(::dlsym(handle, "stat4_jit_actions"));
  if (abi == nullptr || count == nullptr || fns == nullptr) {
    out.reason = "unit is missing a stat4_jit_* symbol";
    ::dlclose(handle);
    return out;
  }
  if (*abi != kAbiVersion) {
    out.reason = "unit ABI v" + std::to_string(*abi) + " != host v" +
                 std::to_string(kAbiVersion);
    ::dlclose(handle);
    return out;
  }
  out.unit = std::make_shared<const CompiledUnit>(
      handle, std::vector<ActionFn>(fns, fns + *count));
  return out;
}

}  // namespace

CompiledUnit::~CompiledUnit() {
  if (handle_ != nullptr) ::dlclose(handle_);
}

std::string host_compiler() {
  const char* env = std::getenv("STAT4_JIT_CC");
  if (env != nullptr && env[0] != '\0') return env;
  return STAT4_JIT_HOST_CXX;
}

CompileOutcome compile_unit(const std::string& source) {
  // The compiler is part of the key: a unit built by a different compiler
  // (or a failure under a bogus STAT4_JIT_CC) must not alias the entry a
  // working toolchain produced.
  const std::uint64_t key = fnv1a(host_compiler() + '\0' + source);
  Cache& c = cache();
  std::lock_guard<std::mutex> lock(c.mu);
  if (const auto it = c.units.find(key); it != c.units.end()) {
    STAT4_TELEMETRY_ONLY(telemetry::MetricsRegistry::global()
                             .counter("p4sim.jit.cache_hits")
                             .add();)
    return CompileOutcome{it->second, true, {}};
  }
  CompileOutcome out = build(source);
  if (out.unit) {
    STAT4_TELEMETRY_ONLY(telemetry::MetricsRegistry::global()
                             .counter("p4sim.jit.compiles")
                             .add();)
    c.units.emplace(key, out.unit);
  }
  return out;
}

}  // namespace p4sim::jit

// Compile-and-load half of the native tier: takes a transpiled TU, shells
// out to the host C++ compiler, dlopen's the shared object and resolves the
// action table (jit/abi.hpp).  Compiled units are memoized process-wide on
// a hash of (source text, compiler command): recompiling after a
// config_gen_ bump that produced identical source — e.g. an idempotent
// optimizer re-run — is a cache hit, and N switches running the same
// catalog app share one unit.
//
// Failure is a value, not an exception: no compiler on PATH, a compile
// error, a dlopen failure or an ABI mismatch all come back as a null unit
// with a reason, and P4Switch degrades to the threaded tier (recording
// p4sim.jit.fallbacks).  Failures are never cached — a later recompile
// (say, after fixing STAT4_JIT_CC) gets a fresh attempt.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "p4sim/jit/abi.hpp"

namespace p4sim::jit {

/// A dlopen'ed unit; keeps the handle (and thus the code) alive for as
/// long as any switch holds the shared_ptr.
class CompiledUnit {
 public:
  CompiledUnit(void* handle, std::vector<ActionFn> fns)
      : handle_(handle), fns_(std::move(fns)) {}
  CompiledUnit(const CompiledUnit&) = delete;
  CompiledUnit& operator=(const CompiledUnit&) = delete;
  ~CompiledUnit();

  [[nodiscard]] const std::vector<ActionFn>& actions() const noexcept {
    return fns_;
  }

 private:
  void* handle_ = nullptr;
  std::vector<ActionFn> fns_;
};

struct CompileOutcome {
  std::shared_ptr<const CompiledUnit> unit;  ///< null on failure
  bool cache_hit = false;
  std::string reason;  ///< failure reason when unit is null
};

/// Compiles and loads `source` (memoized).  Never throws; see CompileOutcome.
[[nodiscard]] CompileOutcome compile_unit(const std::string& source);

/// The compiler command used: the STAT4_JIT_CC environment variable when
/// set (read per call — the fallback tests point it at /nonexistent), else
/// the compiler that built this binary (baked in by CMake).
[[nodiscard]] std::string host_compiler();

}  // namespace p4sim::jit

// Transpiler for the native execution tier (ExecTier::kNative).
//
// transpile() lowers a switch's action programs into ONE self-contained
// C++ translation unit: every straight-line Program becomes a function of
// plain 64-bit integer statements over locals (temps are loaded on entry
// and written back on exit, so cross-stage temp sharing through the scratch
// PHV pool is preserved bit-exactly), register accesses compile to direct
// base-pointer loads/stores with the bounds check and width mask folded to
// literals, and the hash externs are inlined with the exact
// stat4::sparse_hash1/2 constants.  Packet-field accesses and digest
// emission stay host callbacks (jit/abi.hpp) so validity gating and Digest
// layout can never drift from the interpreter.
//
// The emission is deterministic — same programs + registers, same text —
// which is what makes the engine's source-hash memoization and the golden
// test (tests/p4gen_golden_test.cpp) work.  `stat4_opt --emit-cpp=FILE`
// exposes it for offline inspection.
#pragma once

#include <optional>
#include <span>
#include <string>
#include <string_view>

#include "p4sim/action.hpp"
#include "p4sim/register_file.hpp"

namespace p4sim::jit {

struct TranspileResult {
  bool ok = false;
  std::string source;  ///< the generated TU, when ok
  std::string reason;  ///< why transpilation was refused, when !ok
};

/// Lowers `actions` against `registers`.  Refuses (ok = false) when a
/// program references an undeclared register array (the interpreter throws
/// per access — semantics a pre-resolved tier cannot reproduce statically)
/// or contains an op marked unsupported for testing; the switch then falls
/// back to the threaded tier.
[[nodiscard]] TranspileResult transpile(std::span<const Program> actions,
                                        const RegisterFile& registers,
                                        std::string_view unit_name);

/// Test hook: makes transpile() refuse any program containing `op`
/// (std::nullopt restores normal behaviour).  Lets the fallback tests
/// exercise the unsupported-op path without inventing a new opcode.
void force_unsupported_op_for_testing(std::optional<Op> op);

}  // namespace p4sim::jit

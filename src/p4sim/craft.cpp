#include "p4sim/craft.hpp"

namespace p4sim {

namespace {

Packet make_ipv4_frame(std::uint32_t src_ip, std::uint32_t dst_ip,
                       std::uint8_t protocol, std::size_t l4_size,
                       std::size_t pad_to) {
  std::size_t size = EthernetHeader::kSize + Ipv4Header::kSize + l4_size;
  if (pad_to > size) size = pad_to;
  Packet pkt;
  pkt.data.assign(size, 0);

  EthernetHeader eth;
  eth.ether_type = kEtherTypeIpv4;
  serialize(eth, pkt.data, 0);

  Ipv4Header ip;
  ip.protocol = protocol;
  ip.src = src_ip;
  ip.dst = dst_ip;
  ip.total_length = static_cast<std::uint16_t>(size - EthernetHeader::kSize);
  serialize(ip, pkt.data, EthernetHeader::kSize);
  return pkt;
}

}  // namespace

Packet make_tcp_packet(std::uint32_t src_ip, std::uint32_t dst_ip,
                       std::uint16_t src_port, std::uint16_t dst_port,
                       std::uint8_t flags, std::size_t pad_to) {
  Packet pkt = make_ipv4_frame(src_ip, dst_ip, kIpProtoTcp, TcpHeader::kSize,
                               pad_to);
  TcpHeader tcp;
  tcp.src_port = src_port;
  tcp.dst_port = dst_port;
  tcp.flags = flags;
  serialize(tcp, pkt.data, EthernetHeader::kSize + Ipv4Header::kSize);
  return pkt;
}

Packet make_udp_packet(std::uint32_t src_ip, std::uint32_t dst_ip,
                       std::uint16_t src_port, std::uint16_t dst_port,
                       std::size_t pad_to) {
  Packet pkt = make_ipv4_frame(src_ip, dst_ip, kIpProtoUdp, UdpHeader::kSize,
                               pad_to);
  UdpHeader udp;
  udp.src_port = src_port;
  udp.dst_port = dst_port;
  udp.length = UdpHeader::kSize;
  serialize(udp, pkt.data, EthernetHeader::kSize + Ipv4Header::kSize);
  return pkt;
}

Packet make_echo_packet(std::int64_t value) {
  Packet pkt;
  pkt.data.assign(EthernetHeader::kSize + Stat4EchoHeader::kSize, 0);
  EthernetHeader eth;
  eth.ether_type = kEtherTypeStat4Echo;
  serialize(eth, pkt.data, 0);
  Stat4EchoHeader echo;
  echo.value = value;
  serialize(echo, pkt.data, EthernetHeader::kSize);
  return pkt;
}

}  // namespace p4sim

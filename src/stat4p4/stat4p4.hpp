// Umbrella header for stat4p4: the Stat4 library expressed as P4 pipeline
// programs running on the p4sim substrate.
#pragma once

#include "stat4p4/apps.hpp"      // IWYU pragma: export
#include "stat4p4/layout.hpp"    // IWYU pragma: export
#include "stat4p4/programs.hpp"  // IWYU pragma: export

// The Stat4 P4 action programs.
//
// Each builder emits one straight-line, loop-free, division-free program —
// the C++ rendering of the library's P4 action bodies.  Everything Section 2
// derives is here:
//
//  * track_freq     — frequency-distribution update (Xsum += 1,
//                     Xsumsq += 2f+1, N += [f==0]), variance maintenance,
//                     optional outlier check with lazily computed sd, and
//                     the optional one-step-per-packet percentile tracker
//                     of Figure 3;
//  * window_tick    — rate-over-time monitoring on a circular buffer of
//                     interval counters with the mean + 2 sd spike check of
//                     the case study (the oldest-counter override is the
//                     paper's longest dependency chain);
//  * echo           — the Figure 5 validation application: track the payload
//                     integer's frequency distribution and reflect the frame
//                     with N, Xsum, Xsumsq, var and sd filled in;
//  * forward / drop — plain forwarding glue.
//
// Programs read their runtime parameters (distribution id, extractor spec,
// thresholds) from table-entry action data, which is what makes the tracked
// distributions tunable at runtime without recompiling (Section 3).
#pragma once

#include "p4sim/action.hpp"
#include "stat4p4/layout.hpp"

namespace stat4p4 {

/// How runtime products (N * Xsumsq, x^2, ...) are computed.
enum class MulStrategy : std::uint8_t {
  kNative,        ///< kMul opcode (bmv2 supports it)
  kShiftAddExact, ///< exact unrolled shift-and-add ladder (no-mul targets)
  kApproxMsb,     ///< single-MSB shift approximation (Section 2 / Ding [7]).
                  ///< Cheap but inexact: the variance identity subtracts two
                  ///< nearly equal terms, so this strategy produces noisy
                  ///< sd values and spurious/missed alerts.  Kept for the
                  ///< ablation benchmark.
};

/// Options shared by the program builders.
struct BuildOptions {
  MulStrategy mul = MulStrategy::kNative;

  static BuildOptions for_profile(const p4sim::AluProfile& profile) {
    BuildOptions o;
    o.mul = profile.has_mul ? MulStrategy::kNative
                            : MulStrategy::kShiftAddExact;
    return o;
  }
};

/// Frequency tracking over `source`, parameterized by action data
/// (see ActionData in layout.hpp).
[[nodiscard]] p4sim::Program build_track_freq(const Stat4Registers& regs,
                                              const Stat4Config& cfg,
                                              p4sim::FieldRef source,
                                              const BuildOptions& opt = {});

/// Sparse (hash-table) frequency tracking over `source` for value domains
/// too large to allocate densely — the Section 5 future-work extension.
/// Uses two hash-extern probes into keys/counts registers, mirroring
/// stat4::SparseFreqDist bit for bit.  Requires counter_size to be a power
/// of two (hash masking; P4 has no modulo).
[[nodiscard]] p4sim::Program build_track_sparse(const Stat4Registers& regs,
                                                const Stat4Config& cfg,
                                                p4sim::FieldRef source,
                                                const BuildOptions& opt = {});

/// Packets-per-interval tracking with circular-buffer override and the
/// spike check; counts every packet the entry matches.
[[nodiscard]] p4sim::Program build_window_tick(const Stat4Registers& regs,
                                               const Stat4Config& cfg,
                                               const BuildOptions& opt = {});

/// Value-sample tracking over `source`: each matching packet contributes
/// one value of interest x_k to the distribution (N += 1, Xsum += x_k,
/// Xsumsq += x_k^2), the Section 2 non-frequency discipline.  The sample is
/// also stored in the distribution's counter row (one counter per value, as
/// the paper specifies) until the row is full.  Optional per-value outlier
/// check emits kDigestValueOutlier.
[[nodiscard]] p4sim::Program build_track_value(const Stat4Registers& regs,
                                               const Stat4Config& cfg,
                                               p4sim::FieldRef source,
                                               const BuildOptions& opt = {});

/// Local mitigation — the data-plane half of Figure 1c's "locally react to
/// anomalies (e.g., rate limiting some flows)": when distribution `d`'s
/// alert latch is set and the packet's extracted value equals the captured
/// hot value, the packet is dropped.  Runs entirely in the switch; the
/// controller re-arms to lift the block.
[[nodiscard]] p4sim::Program build_mitigate(const Stat4Registers& regs,
                                            const Stat4Config& cfg,
                                            p4sim::FieldRef source);

/// Online entropy tracking over `source` (the Ding et al. [7] direction):
/// maintains T (in the xsum register) and S = sum f*log2(f) (in the xsumsq
/// register, kLog2FracBits fixed point) and evaluates the division-free
/// threshold test  H < theta  <=>  S > T*(log2(T) - theta)  (or the dual
/// H > theta for scan detection, per kAdEntropyMode).  Mirrors
/// stat4::EntropyEstimator bit for bit.
[[nodiscard]] p4sim::Program build_track_entropy(const Stat4Registers& regs,
                                                 const Stat4Config& cfg,
                                                 p4sim::FieldRef source,
                                                 const BuildOptions& opt = {});

/// Local rerouting — the other half of "locally react to anomalies": while
/// distribution `d`'s alert latch is set, matching packets are steered to
/// the alternate egress port in action_data[kAdAltPort] instead of the
/// forwarding table's choice.  Used to move a surging aggregate onto a
/// backup path BEFORE the primary queue overflows (Section 5,
/// "reroute packets before congestion, when traffic starts to surge").
[[nodiscard]] p4sim::Program build_reroute(const Stat4Registers& regs,
                                           const Stat4Config& cfg);

/// The Figure 5 echo application (tracks distribution 0).
[[nodiscard]] p4sim::Program build_echo(const Stat4Registers& regs,
                                        const Stat4Config& cfg,
                                        const BuildOptions& opt = {});

/// Forward to the port in action_data[0] (stored as port + 1).
[[nodiscard]] p4sim::Program build_forward();

/// Explicit drop (egress_spec = 0).
[[nodiscard]] p4sim::Program build_drop();

/// True no-op: the default action of the monitoring tables (a miss must not
/// disturb the forwarding decision made by earlier stages).
[[nodiscard]] p4sim::Program build_noop();

}  // namespace stat4p4

// Assembled Stat4 switch applications.
//
// EchoApp   — the Figure 5 validation program: a switch that tracks the
//             frequency distribution of payload integers and echoes every
//             frame back annotated with N, Xsum, Xsumsq, var and sd.
// MonitorApp — the Section 4 case-study program: IPv4 forwarding, a
//             rate-over-time binding table, and a generic frequency binding
//             table; the controller populates/modifies entries at runtime to
//             drill down into anomalies.  Also covers the SYN-flood use case
//             of Table 1 through ternary flag matching.
#pragma once

#include <cstdint>
#include <optional>

#include "p4sim/p4sim.hpp"
#include "stat4p4/layout.hpp"
#include "stat4p4/programs.hpp"

namespace stat4p4 {

class EchoApp {
 public:
  explicit EchoApp(Stat4Config cfg = {1, 512, 2},
                   p4sim::AluProfile profile = p4sim::AluProfile::bmv2());

  [[nodiscard]] p4sim::P4Switch& sw() noexcept { return sw_; }
  [[nodiscard]] const Stat4Registers& regs() const noexcept { return regs_; }
  [[nodiscard]] const Stat4Config& config() const noexcept { return cfg_; }

 private:
  Stat4Config cfg_;
  p4sim::P4Switch sw_;
  Stat4Registers regs_;
};

/// A frequency-binding entry the controller can install in a MonitorApp —
/// one row of the paper's binding tables (Figure 4).
struct FreqBindingSpec {
  // Match side.
  std::uint32_t dst_prefix = 0;
  std::uint8_t dst_prefix_len = 0;       ///< 0 = any destination
  std::optional<std::uint8_t> protocol;  ///< exact protocol, if set
  std::uint8_t flag_mask = 0;            ///< TCP-flag ternary match
  std::uint8_t flag_value = 0;
  std::int32_t priority = 0;
  // Update side (action data).
  std::uint32_t dist = 1;
  std::uint8_t shift = 0;
  std::uint64_t mask = 0xFF;
  std::uint64_t offset = 0;
  bool check = true;
  std::uint64_t min_total = 64;
  bool median = false;
  unsigned percentile = 50;
};

class MonitorApp {
 public:
  explicit MonitorApp(Stat4Config cfg = {4, 256, 2},
                      p4sim::AluProfile profile = p4sim::AluProfile::bmv2());

  // ---- controller operations (the runtime API) ---------------------------
  /// Forward `prefix/len` out of `port`.
  p4sim::EntryHandle install_forward(std::uint32_t prefix, std::uint8_t len,
                                     p4sim::PortId port);

  /// Track packets-per-interval for `prefix/len` in distribution `dist`
  /// using `window_size` intervals of `interval_ns` each; the spike check
  /// arms after `min_history` completed intervals.
  p4sim::EntryHandle install_rate_monitor(std::uint32_t prefix,
                                          std::uint8_t len, std::uint32_t dist,
                                          std::uint64_t interval_ns,
                                          std::uint64_t window_size,
                                          std::uint64_t min_history = 8,
                                          bool stall_check = false);

  /// Install a frequency binding; returns a handle usable with
  /// modify_freq_binding (the drill-down's re-targeting step).
  p4sim::EntryHandle install_freq_binding(const FreqBindingSpec& spec);

  /// Entropy binding (Ding et al. [7] extension): tracks T and
  /// S = sum f*log2(f) for the extracted value's frequency distribution and
  /// alerts when the entropy crosses `entropy_theta_fp`
  /// (kLog2FracBits fixed point) — downward concentration when
  /// `entropy_above` is false (DDoS), upward dispersion when true (scans).
  p4sim::EntryHandle install_entropy_binding(const FreqBindingSpec& spec,
                                             std::uint64_t entropy_theta_fp,
                                             bool entropy_above = false);

  /// Value-sample binding: each matching packet contributes one value of
  /// interest (e.g. its length) to distribution `dist` (Section 2's
  /// non-frequency discipline).  spec.check enables the per-value outlier
  /// digest; spec.median is not supported for value samples.
  p4sim::EntryHandle install_value_binding(const FreqBindingSpec& spec);

  /// In-switch rerouting: while `spec.dist`'s alert latch is set, matching
  /// packets are steered to `alt_port` instead of the forwarding decision —
  /// moving a surge onto a backup path before the primary congests
  /// (Section 5).  rearm(dist) restores normal forwarding.
  p4sim::EntryHandle install_reroute(const FreqBindingSpec& spec,
                                     p4sim::PortId alt_port);

  /// In-switch mitigation: once `spec.dist`'s alert latches, drop packets
  /// whose extracted value equals the captured hot value — the paper's
  /// "locally react to anomalies" with zero controller involvement.
  /// rearm(dist) lifts the block.
  p4sim::EntryHandle install_mitigation(const FreqBindingSpec& spec);

  /// Like install_freq_binding but using the sparse (hash-table) tracker —
  /// for value domains too large to allocate densely (e.g. whole /32
  /// addresses).  The percentile option is not supported (hash tables have
  /// no value ordering); spec.median must be false.
  p4sim::EntryHandle install_sparse_binding(const FreqBindingSpec& spec);
  void modify_freq_binding(p4sim::EntryHandle handle,
                           const FreqBindingSpec& spec);
  void remove_binding(p4sim::EntryHandle handle);

  /// Clear the alert latch of a distribution (controller acknowledgment).
  void rearm(std::uint32_t dist);

  /// Zero all state of a distribution — used when a binding is re-targeted
  /// so stale counters don't pollute the new distribution.
  void reset_distribution(std::uint32_t dist);

  // ---- accessors -----------------------------------------------------------
  [[nodiscard]] p4sim::P4Switch& sw() noexcept { return sw_; }
  [[nodiscard]] const p4sim::P4Switch& sw() const noexcept { return sw_; }
  [[nodiscard]] const Stat4Registers& regs() const noexcept { return regs_; }
  [[nodiscard]] const Stat4Config& config() const noexcept { return cfg_; }
  [[nodiscard]] p4sim::TableId forward_table() const noexcept {
    return forward_table_;
  }
  [[nodiscard]] p4sim::TableId rate_table() const noexcept {
    return rate_table_;
  }
  [[nodiscard]] p4sim::TableId binding_table() const noexcept {
    return binding_table_;
  }
  [[nodiscard]] p4sim::TableId mitigation_table() const noexcept {
    return mitigation_table_;
  }

 private:
  [[nodiscard]] p4sim::TableEntry make_freq_entry(
      const FreqBindingSpec& spec) const;

  Stat4Config cfg_;
  p4sim::P4Switch sw_;
  Stat4Registers regs_;
  p4sim::TableId forward_table_ = 0;
  p4sim::TableId rate_table_ = 0;
  p4sim::TableId binding_table_ = 0;
  p4sim::TableId mitigation_table_ = 0;
  p4sim::ActionId forward_action_ = 0;
  p4sim::ActionId drop_action_ = 0;
  p4sim::ActionId noop_action_ = 0;
  p4sim::ActionId window_action_ = 0;
  p4sim::ActionId track_freq_action_ = 0;
  p4sim::ActionId track_sparse_action_ = 0;
  p4sim::ActionId track_value_action_ = 0;
  p4sim::ActionId track_entropy_action_ = 0;
  p4sim::ActionId mitigate_action_ = 0;
  p4sim::ActionId reroute_action_ = 0;
};

}  // namespace stat4p4

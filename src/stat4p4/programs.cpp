#include "stat4p4/programs.hpp"

#include <stdexcept>

namespace stat4p4 {

using p4sim::FieldRef;
using p4sim::Program;
using p4sim::ProgramBuilder;
using p4sim::TempId;
using p4sim::Word;

namespace {

/// t * k for a small build-time constant k, using shifts and adds only
/// (k_sigma is typically 2: one shift).
TempId scale_const(ProgramBuilder& b, TempId t, unsigned k) {
  switch (k) {
    case 1: return t;
    case 2: return b.shl(t, b.konst(1));
    case 3: return b.add(b.shl(t, b.konst(1)), t);
    case 4: return b.shl(t, b.konst(2));
    case 8: return b.shl(t, b.konst(3));
    default:
      throw std::invalid_argument(
          "stat4p4: k_sigma must be one of 1,2,3,4,8 (shift/add encodable)");
  }
}

/// x * y where x is known to fit in `x_bits` bits — lets the exact
/// shift-add ladder stay short when one operand is small (N, a weight, ...).
TempId emit_mul(ProgramBuilder& b, TempId x, TempId y, MulStrategy mul,
                unsigned x_bits = 32) {
  switch (mul) {
    case MulStrategy::kNative: return b.mul(x, y);
    case MulStrategy::kShiftAddExact: return b.mul_shift_add(x, y, x_bits);
    case MulStrategy::kApproxMsb: return b.approx_mul(x, y);
  }
  return b.mul(x, y);
}

TempId emit_square(ProgramBuilder& b, TempId x, MulStrategy mul,
                   unsigned x_bits = 32) {
  switch (mul) {
    case MulStrategy::kNative: return b.mul(x, x);
    case MulStrategy::kShiftAddExact: return b.mul_shift_add(x, x, x_bits);
    case MulStrategy::kApproxMsb: return b.approx_square(x);
  }
  return b.mul(x, x);
}

/// Bits needed to hold values below `bound` (plus one for safety).
unsigned bits_for(std::uint64_t bound) {
  unsigned bits = 1;
  while ((std::uint64_t{1} << bits) < bound) ++bits;
  return bits + 1;
}

struct FreqUpdate {
  TempId n = 0;       ///< N after the update
  TempId xsum = 0;    ///< Xsum after the update
  TempId xsumsq = 0;  ///< Xsumsq after the update
  TempId var = 0;     ///< var(NX) after the update
  TempId freq = 0;    ///< f[v] after the update
};

/// Emits the Section 2 frequency-distribution update for value temp `v` of
/// distribution temp `d` (with ring base temp `base`), including variance
/// maintenance.  Registers are read once and written once.
FreqUpdate emit_freq_update(ProgramBuilder& b, const Stat4Registers& regs,
                            const Stat4Config& cfg, TempId d, TempId base,
                            TempId v, MulStrategy mul) {
  const TempId zero = b.konst(0);
  const TempId one = b.konst(1);
  const TempId idx = b.add(base, v);
  const TempId f = b.load_reg(regs.counters, idx);
  const TempId n = b.load_reg(regs.n, d);
  const TempId xs = b.load_reg(regs.xsum, d);
  const TempId xq = b.load_reg(regs.xsumsq, d);

  FreqUpdate out;
  const TempId is_new = b.eq(f, zero);
  out.n = b.add(n, is_new);   // N += 1 iff this value was unseen
  out.xsum = b.add(xs, one);  // Xsum += 1
  // Xsumsq += (f+1)^2 - f^2 = 2f + 1
  const TempId delta = b.add(b.shl(f, one), one);
  out.xsumsq = b.add(xq, delta);
  out.freq = b.add(f, one);

  // var(NX) = N * Xsumsq - Xsum^2, clamped at zero under the approximate
  // product (exact products can never go negative here).
  const TempId n_xq =
      emit_mul(b, out.n, out.xsumsq, mul, bits_for(cfg.counter_size));
  const TempId xs_sq = emit_square(b, out.xsum, mul);
  const TempId nonneg = b.ge(n_xq, xs_sq);
  out.var = b.select(nonneg, b.sub(n_xq, xs_sq), zero);

  b.store_reg(regs.counters, idx, out.freq);
  b.store_reg(regs.n, d, out.n);
  b.store_reg(regs.xsum, d, out.xsum);
  b.store_reg(regs.xsumsq, d, out.xsumsq);
  b.store_reg(regs.var, d, out.var);
  return out;
}

/// Emits the Figure 3 percentile-tracker step for distribution `d` after
/// `v`'s frequency was raised to `fv`.  Guarded by the `enabled` temp: when
/// zero, every register is written back unchanged.
void emit_percentile_step(ProgramBuilder& b, const Stat4Registers& regs,
                          const Stat4Config& cfg, TempId d, TempId base,
                          TempId v, TempId enabled, TempId weight_low,
                          TempId weight_high, MulStrategy mul) {
  const TempId zero = b.konst(0);
  const TempId one = b.konst(1);
  const TempId init = b.load_reg(regs.med_init, d);
  const TempId pos0 = b.load_reg(regs.med_pos, d);
  const TempId low0 = b.load_reg(regs.med_low, d);
  const TempId high0 = b.load_reg(regs.med_high, d);

  // First observation seeds the position at v (low/high stay zero).
  const TempId pos = b.select(init, pos0, v);

  // Account the new observation on the correct side of the tracker.
  const TempId v_below = b.band(init, b.lt(v, pos));
  const TempId v_above = b.band(init, b.gt(v, pos));
  const TempId low1 = b.add(low0, v_below);
  const TempId high1 = b.add(high0, v_above);

  // Balance test at the tracked slot (one move max, Figure 3).
  const TempId fm = b.load_reg(regs.counters, b.add(base, pos));
  constexpr unsigned kWeightBits = 7;  // percentile weights are < 100
  const TempId up_lhs = emit_mul(b, weight_low, high1, mul, kWeightBits);
  const TempId up_rhs =
      emit_mul(b, weight_high, b.add(low1, fm), mul, kWeightBits);
  const TempId up_raw = b.gt(up_lhs, up_rhs);
  const TempId dn_lhs = emit_mul(b, weight_high, low1, mul, kWeightBits);
  const TempId dn_rhs =
      emit_mul(b, weight_low, b.add(high1, fm), mul, kWeightBits);
  const TempId dn_raw = b.select(up_raw, zero, b.gt(dn_lhs, dn_rhs));

  // Clamp at the domain edges.
  const TempId size = b.konst(cfg.counter_size);
  const TempId pos_up = b.add(pos, one);
  const TempId up_ok = b.band(up_raw, b.lt(pos_up, size));
  const TempId has_left = b.gt(pos, zero);
  const TempId pos_dn = b.select(has_left, b.sub(pos, one), zero);
  const TempId dn_ok = b.band(dn_raw, has_left);

  const TempId f_up = b.load_reg(regs.counters, b.add(base, pos_up));
  const TempId f_dn = b.load_reg(regs.counters, b.add(base, pos_dn));

  const TempId pos2 =
      b.select(up_ok, pos_up, b.select(dn_ok, pos_dn, pos));
  const TempId low2 = b.select(up_ok, b.add(low1, fm),
                               b.select(dn_ok, b.sub(low1, f_dn), low1));
  const TempId high2 = b.select(up_ok, b.sub(high1, f_up),
                                b.select(dn_ok, b.add(high1, fm), high1));

  b.store_reg(regs.med_pos, d, b.select(enabled, pos2, pos0));
  b.store_reg(regs.med_low, d, b.select(enabled, low2, low0));
  b.store_reg(regs.med_high, d, b.select(enabled, high2, high0));
  b.store_reg(regs.med_init, d, b.select(enabled, one, init));
}

}  // namespace

Program build_track_freq(const Stat4Registers& regs, const Stat4Config& cfg,
                         FieldRef source, const BuildOptions& opt) {
  ProgramBuilder b("track_freq");
  const TempId zero = b.konst(0);

  const TempId d = b.param(kAdDist);
  const TempId shift = b.param(kAdShift);
  const TempId mask = b.param(kAdMask);
  const TempId base = b.param(kAdBase);
  const TempId check = b.param(kAdCheck);
  const TempId min_total = b.param(kAdMinTotal);
  const TempId offset = b.param(kAdOffset);

  // Value of interest: v = ((field + offset) >> shift) & mask, clamped into
  // the distribution domain (an oversized value would otherwise alias into a
  // neighbouring distribution's cells).
  const TempId raw = b.load_field(source);
  const TempId v_raw = b.band(b.shr(b.add(raw, offset), shift), mask);
  const TempId last = b.konst(cfg.counter_size - 1);
  const TempId in_range = b.le(v_raw, last);
  const TempId v = b.select(in_range, v_raw, last);

  const FreqUpdate u = emit_freq_update(b, regs, cfg, d, base, v, opt.mul);

  // Outlier check: N * f[v] > Xsum + k*sd(NX) + N  (the +N is the integer
  // quantization slack, see stat4::FreqDist::frequency_outlier).  sd is
  // computed here — at check time — which is the paper's lazy evaluation:
  // entries with check disabled never pay for the MSB search.
  const TempId sd = b.approx_sqrt(u.var);
  const TempId ksd = scale_const(b, sd, cfg.k_sigma);
  const TempId thr = b.add(b.add(u.xsum, ksd), u.n);
  const TempId scaled =
      emit_mul(b, u.n, u.freq, opt.mul, bits_for(cfg.counter_size));
  const TempId warm = b.ge(u.xsum, min_total);
  const TempId outlier = b.gt(scaled, thr);
  const TempId tripped = b.band(check, b.band(warm, outlier));

  const TempId al = b.load_reg(regs.alerted, d);
  const TempId fire = b.band(tripped, b.eq(al, zero));
  b.digest_if(fire, kDigestImbalance, d, v, u.freq);
  b.store_reg(regs.alerted, d, b.bor(al, fire));
  // Capture the offending value so the mitigation stage can match it.
  const TempId hot_old = b.load_reg(regs.hot_value, d);
  b.store_reg(regs.hot_value, d, b.select(fire, v, hot_old));

  // Optional percentile tracking.
  const TempId med_en = b.param(kAdMedian);
  const TempId w_low = b.param(kAdWeightLow);
  const TempId w_high = b.param(kAdWeightHigh);
  emit_percentile_step(b, regs, cfg, d, base, v, med_en, w_low, w_high,
                       opt.mul);
  return b.take();
}

Program build_track_sparse(const Stat4Registers& regs, const Stat4Config& cfg,
                           FieldRef source, const BuildOptions& opt) {
  if ((cfg.counter_size & (cfg.counter_size - 1)) != 0) {
    throw std::invalid_argument(
        "stat4p4: sparse tracking needs a power-of-two counter_size");
  }
  ProgramBuilder b("track_sparse");
  const TempId zero = b.konst(0);
  const TempId one = b.konst(1);

  const TempId d = b.param(kAdDist);
  const TempId shift = b.param(kAdShift);
  const TempId mask = b.param(kAdMask);
  const TempId base = b.param(kAdBase);
  const TempId check = b.param(kAdCheck);
  const TempId min_total = b.param(kAdMinTotal);
  const TempId offset = b.param(kAdOffset);

  // The key may span the full field width (e.g. a whole 32-bit address) —
  // exactly the case Section 2 called impractical for dense tracking.
  const TempId raw = b.load_field(source);
  const TempId key = b.band(b.shr(b.add(raw, offset), shift), mask);
  const TempId key_p1 = b.add(key, one);

  // Two probe positions from the hash externs (h2 forced odd so the probes
  // differ; counter_size is a power of two so the mask has its low bit set).
  const TempId szmask = b.konst(cfg.counter_size - 1);
  const TempId h1 = b.hash1(key);
  const TempId h2 = b.bor(b.hash2(key), one);
  const TempId idx0 = b.add(base, b.band(h1, szmask));
  const TempId idx1 = b.add(base, b.band(b.add(h1, h2), szmask));

  const TempId k0 = b.load_reg(regs.sparse_keys, idx0);
  const TempId k1 = b.load_reg(regs.sparse_keys, idx1);
  const TempId c0 = b.load_reg(regs.sparse_counts, idx0);
  const TempId c1 = b.load_reg(regs.sparse_counts, idx1);

  const TempId m0 = b.eq(k0, key_p1);
  const TempId m1 = b.eq(k1, key_p1);
  const TempId e0 = b.eq(k0, zero);
  const TempId e1 = b.eq(k1, zero);

  // Slot choice: match at probe 0 > match at probe 1 > empty 0 > empty 1.
  const TempId any_match = b.bor(m0, m1);
  const TempId no_match = b.eq(any_match, zero);
  const TempId use0 = b.bor(m0, b.band(no_match, e0));
  const TempId not_use0 = b.eq(use0, zero);
  const TempId use1 = b.band(not_use0, b.bor(m1, b.band(no_match, e1)));
  const TempId tracked = b.bor(use0, use1);

  const TempId old_f = b.select(m0, c0, b.select(m1, c1, zero));
  const TempId new_f = b.add(old_f, one);

  // Write the chosen slot; unmatched packets write everything back as-is
  // (a register write per packet either way, like a real pipeline).
  const TempId sel_idx = b.select(use0, idx0, idx1);
  const TempId sel_key = b.select(use0, k0, k1);
  const TempId sel_cnt = b.select(use0, c0, c1);
  b.store_reg(regs.sparse_keys, sel_idx,
              b.select(tracked, key_p1, sel_key));
  b.store_reg(regs.sparse_counts, sel_idx,
              b.select(tracked, new_f, sel_cnt));

  // Statistics over the tracked frequencies, guarded by `tracked`:
  // N += [old_f == 0], Xsum += 1, Xsumsq += 2*old_f + 1.
  const TempId n = b.load_reg(regs.n, d);
  const TempId xs = b.load_reg(regs.xsum, d);
  const TempId xq = b.load_reg(regs.xsumsq, d);
  const TempId is_new = b.band(tracked, b.eq(old_f, zero));
  const TempId n2 = b.add(n, is_new);
  const TempId xs2 = b.add(xs, tracked);
  const TempId delta = b.select(tracked, b.add(b.shl(old_f, one), one), zero);
  const TempId xq2 = b.add(xq, delta);
  const TempId n_xq =
      emit_mul(b, n2, xq2, opt.mul, bits_for(cfg.counter_size));
  const TempId xs_sq = emit_square(b, xs2, opt.mul);
  const TempId nonneg = b.ge(n_xq, xs_sq);
  const TempId var = b.select(nonneg, b.sub(n_xq, xs_sq), zero);
  b.store_reg(regs.n, d, n2);
  b.store_reg(regs.xsum, d, xs2);
  b.store_reg(regs.xsumsq, d, xq2);
  b.store_reg(regs.var, d, var);

  // Overflow accounting: observations whose probes were all taken.
  const TempId untracked = b.eq(tracked, zero);
  const TempId ovf = b.load_reg(regs.sparse_overflow, d);
  b.store_reg(regs.sparse_overflow, d, b.add(ovf, untracked));

  // Outlier check with lazily computed sd (same form as track_freq).
  const TempId sd = b.approx_sqrt(var);
  const TempId ksd = scale_const(b, sd, cfg.k_sigma);
  const TempId thr = b.add(b.add(xs2, ksd), n2);
  const TempId scaled =
      emit_mul(b, n2, new_f, opt.mul, bits_for(cfg.counter_size));
  const TempId warm = b.ge(xs2, min_total);
  const TempId outlier = b.gt(scaled, thr);
  const TempId tripped =
      b.band(tracked, b.band(check, b.band(warm, outlier)));
  const TempId al = b.load_reg(regs.alerted, d);
  const TempId fire = b.band(tripped, b.eq(al, zero));
  b.digest_if(fire, kDigestImbalance, d, key, new_f);
  b.store_reg(regs.alerted, d, b.bor(al, fire));
  const TempId hot_old = b.load_reg(regs.hot_value, d);
  b.store_reg(regs.hot_value, d, b.select(fire, key, hot_old));
  return b.take();
}

Program build_window_tick(const Stat4Registers& regs, const Stat4Config& cfg,
                          const BuildOptions& opt) {
  ProgramBuilder b("window_tick");
  const TempId zero = b.konst(0);
  const TempId one = b.konst(1);

  const TempId d = b.param(kAdDist);
  const TempId len = b.param(kAdIntervalLen);
  const TempId minh = b.param(kAdMinHistory);
  const TempId base = b.param(kAdWindowBase);
  const TempId wsize = b.param(kAdWindowSize);

  const TempId now = b.load_field(FieldRef::kMetaIngressTs);
  const TempId start = b.load_reg(regs.win_start, d);
  const TempId anchored = b.load_reg(regs.win_anchored, d);
  const TempId boundary = b.add(start, len);
  const TempId rolled = b.band(anchored, b.ge(now, boundary));

  const TempId cur = b.load_reg(regs.cur_count, d);
  const TempId head = b.load_reg(regs.win_head, d);
  const TempId wcount = b.load_reg(regs.win_count, d);
  const TempId n = b.load_reg(regs.n, d);
  const TempId xs = b.load_reg(regs.xsum, d);
  const TempId xq = b.load_reg(regs.xsumsq, d);
  const TempId var0 = b.load_reg(regs.var, d);

  const TempId primed = b.ge(wcount, wsize);
  const TempId idx = b.add(base, head);
  const TempId old = b.load_reg(regs.counters, idx);
  const TempId finished = cur;  // the count of the interval being closed

  // Spike check against the *historical* distribution, before inserting the
  // finished interval (Section 4: "rate higher than the mean of the stored
  // distribution plus two standard deviations").  sd computed lazily: only
  // at interval boundaries, amortized over every packet of the interval.
  const TempId sd = b.approx_sqrt(var0);
  const TempId ksd = scale_const(b, sd, cfg.rate_k());
  const TempId thr = b.add(xs, ksd);
  const TempId scaled =
      emit_mul(b, n, finished, opt.mul, bits_for(cfg.counter_size));
  const TempId armed = b.ge(wcount, minh);
  const TempId spike = b.band(rolled, b.band(armed, b.gt(scaled, thr)));
  // Lower outlier — the "remote failure / stalled flows" check of Table 1:
  // N*finished < Xsum - k*sd.  Computed with a guarded subtraction since
  // registers are unsigned.
  const TempId stall_en = b.param(kAdStallCheck);
  const TempId has_margin = b.ge(xs, ksd);
  const TempId low_thr = b.select(has_margin, b.sub(xs, ksd), zero);
  const TempId stall_raw = b.band(has_margin, b.lt(scaled, low_thr));
  const TempId stall =
      b.band(stall_en, b.band(rolled, b.band(armed, stall_raw)));
  const TempId al = b.load_reg(regs.alerted, d);
  const TempId not_alerted = b.eq(al, zero);
  const TempId fire = b.band(spike, not_alerted);
  const TempId fire_stall =
      b.band(stall, b.band(not_alerted, b.eq(fire, zero)));
  b.digest_if(fire, kDigestRateSpike, d, finished, thr);
  b.digest_if(fire_stall, kDigestRateStall, d, finished, low_thr);
  b.store_reg(regs.alerted, d, b.bor(al, b.bor(fire, fire_stall)));

  // Evict the oldest counter and insert the finished interval.  This is the
  // sequence the paper's resource analysis calls out as its longest
  // dependency chain ("12 sequential steps, used to override the oldest
  // counter in distributions of traffic over time").
  const TempId old_eff = b.select(primed, old, zero);
  const TempId xs_new = b.add(b.sub(xs, old_eff), finished);
  const TempId old_sq = emit_square(b, old_eff, opt.mul);
  const TempId fin_sq = emit_square(b, finished, opt.mul);
  const TempId xq_new = b.add(b.sub(xq, old_sq), fin_sq);
  const TempId n_new = b.select(primed, n, b.add(n, one));
  const TempId n_xq =
      emit_mul(b, n_new, xq_new, opt.mul, bits_for(cfg.counter_size));
  const TempId xs_sq = emit_square(b, xs_new, opt.mul);
  const TempId var_ok = b.ge(n_xq, xs_sq);
  const TempId var_new = b.select(var_ok, b.sub(n_xq, xs_sq), zero);

  b.store_reg(regs.xsum, d, b.select(rolled, xs_new, xs));
  b.store_reg(regs.xsumsq, d, b.select(rolled, xq_new, xq));
  b.store_reg(regs.n, d, b.select(rolled, n_new, n));
  b.store_reg(regs.var, d, b.select(rolled, var_new, var0));
  b.store_reg(regs.counters, idx, b.select(rolled, finished, old));

  const TempId head_next_raw = b.add(head, one);
  const TempId head_wrap = b.eq(head_next_raw, wsize);
  const TempId head_next = b.select(head_wrap, zero, head_next_raw);
  b.store_reg(regs.win_head, d, b.select(rolled, head_next, head));
  b.store_reg(regs.win_count, d, b.select(rolled, b.add(wcount, one), wcount));
  // The current packet opens (or continues) the active interval.
  b.store_reg(regs.cur_count, d, b.select(rolled, one, b.add(cur, one)));
  const TempId start_next = b.select(rolled, boundary, start);
  b.store_reg(regs.win_start, d, b.select(anchored, start_next, now));
  b.store_reg(regs.win_anchored, d, one);
  return b.take();
}

Program build_track_value(const Stat4Registers& regs, const Stat4Config& cfg,
                          FieldRef source, const BuildOptions& opt) {
  ProgramBuilder b("track_value");
  const TempId zero = b.konst(0);
  const TempId one = b.konst(1);

  const TempId d = b.param(kAdDist);
  const TempId shift = b.param(kAdShift);
  const TempId mask = b.param(kAdMask);
  const TempId base = b.param(kAdBase);
  const TempId check = b.param(kAdCheck);
  const TempId min_total = b.param(kAdMinTotal);
  const TempId offset = b.param(kAdOffset);

  const TempId raw = b.load_field(source);
  const TempId v = b.band(b.shr(b.add(raw, offset), shift), mask);

  // N += 1, Xsum += v, Xsumsq += v^2 (Section 2, value distributions).
  const TempId n = b.load_reg(regs.n, d);
  const TempId xs = b.load_reg(regs.xsum, d);
  const TempId xq = b.load_reg(regs.xsumsq, d);
  const TempId n2 = b.add(n, one);
  const TempId xs2 = b.add(xs, v);
  const TempId v_sq = emit_square(b, v, opt.mul);
  const TempId xq2 = b.add(xq, v_sq);
  const TempId n_xq =
      emit_mul(b, n2, xq2, opt.mul, bits_for(cfg.counter_size));
  const TempId xs_sq = emit_square(b, xs2, opt.mul);
  const TempId nonneg = b.ge(n_xq, xs_sq);
  const TempId var = b.select(nonneg, b.sub(n_xq, xs_sq), zero);
  b.store_reg(regs.n, d, n2);
  b.store_reg(regs.xsum, d, xs2);
  b.store_reg(regs.xsumsq, d, xq2);
  b.store_reg(regs.var, d, var);

  // "and store x_k in a new counter": samples land in the counter row until
  // it is full (index = old N, clamped to the last cell).
  const TempId last = b.konst(cfg.counter_size - 1);
  const TempId in_row = b.lt(n, b.konst(cfg.counter_size));
  const TempId slot = b.select(in_row, n, last);
  const TempId idx = b.add(base, slot);
  const TempId old_cell = b.load_reg(regs.counters, idx);
  b.store_reg(regs.counters, idx, b.select(in_row, v, old_cell));

  // Optional outlier check on the just-observed value:
  //   N*v > Xsum + k*sd(NX)   (the Section 2 outlier test, verbatim).
  const TempId sd = b.approx_sqrt(var);
  const TempId ksd = scale_const(b, sd, cfg.k_sigma);
  const TempId thr = b.add(xs2, ksd);
  const TempId scaled =
      emit_mul(b, n2, v, opt.mul, bits_for(cfg.counter_size));
  const TempId warm = b.ge(n2, min_total);
  const TempId outlier = b.gt(scaled, thr);
  const TempId tripped = b.band(check, b.band(warm, outlier));
  const TempId al = b.load_reg(regs.alerted, d);
  const TempId fire = b.band(tripped, b.eq(al, zero));
  b.digest_if(fire, kDigestValueOutlier, d, v, thr);
  b.store_reg(regs.alerted, d, b.bor(al, fire));
  const TempId hot_old = b.load_reg(regs.hot_value, d);
  b.store_reg(regs.hot_value, d, b.select(fire, v, hot_old));
  return b.take();
}

Program build_mitigate(const Stat4Registers& regs, const Stat4Config& cfg,
                       FieldRef source) {
  (void)cfg;
  ProgramBuilder b("mitigate");
  const TempId zero = b.konst(0);

  const TempId d = b.param(kAdDist);
  const TempId shift = b.param(kAdShift);
  const TempId mask = b.param(kAdMask);
  const TempId offset = b.param(kAdOffset);

  const TempId raw = b.load_field(source);
  const TempId v = b.band(b.shr(b.add(raw, offset), shift), mask);

  const TempId al = b.load_reg(regs.alerted, d);
  const TempId hot = b.load_reg(regs.hot_value, d);
  const TempId is_hot = b.band(al, b.eq(v, hot));

  // Drop the offender; everything else keeps the forwarding decision made
  // by the earlier stages.
  const TempId egress = b.load_field(FieldRef::kMetaEgressSpec);
  b.store_field(FieldRef::kMetaEgressSpec, b.select(is_hot, zero, egress));
  return b.take();
}

Program build_track_entropy(const Stat4Registers& regs,
                            const Stat4Config& cfg, FieldRef source,
                            const BuildOptions& opt) {
  ProgramBuilder b("track_entropy");
  const TempId zero = b.konst(0);
  const TempId one = b.konst(1);

  const TempId d = b.param(kAdDist);
  const TempId shift = b.param(kAdShift);
  const TempId mask = b.param(kAdMask);
  const TempId base = b.param(kAdBase);
  const TempId check = b.param(kAdCheck);
  const TempId min_total = b.param(kAdMinTotal);
  const TempId offset = b.param(kAdOffset);
  const TempId theta = b.param(kAdTheta);
  const TempId mode = b.param(kAdEntropyMode);

  const TempId raw = b.load_field(source);
  const TempId v_raw = b.band(b.shr(b.add(raw, offset), shift), mask);
  const TempId last = b.konst(cfg.counter_size - 1);
  const TempId in_range = b.le(v_raw, last);
  const TempId v = b.select(in_range, v_raw, last);

  // Frequency bump.
  const TempId idx = b.add(base, v);
  const TempId f = b.load_reg(regs.counters, idx);
  const TempId f1 = b.add(f, one);
  b.store_reg(regs.counters, idx, f1);

  // T lives in xsum, S in xsumsq (kLog2FracBits fixed point):
  //   S += (f+1)*log2(f+1) - f*log2(f)
  const TempId t0 = b.load_reg(regs.xsum, d);
  const TempId s0 = b.load_reg(regs.xsumsq, d);
  const TempId t1 = b.add(t0, one);
  const TempId log_f1 = b.approx_log2(f1);
  const TempId log_f = b.approx_log2(f);
  const TempId term_new = emit_mul(b, f1, log_f1, opt.mul);
  const TempId term_old = emit_mul(b, f, log_f, opt.mul);
  const TempId s1 = b.sub(b.add(s0, term_new), term_old);
  b.store_reg(regs.xsum, d, t1);
  b.store_reg(regs.xsumsq, d, s1);

  // Division-free threshold test.  With log_t = approx_log2(T'):
  //   H < theta  <=>  log_t > theta  &&  S > T*(log_t - theta),
  //                   or log_t <= theta (even uniform sits below theta).
  //   H > theta  <=>  log_t > theta  &&  S < T*(log_t - theta).
  const TempId log_t = b.approx_log2(t1);
  const TempId margin_ok = b.gt(log_t, theta);
  const TempId rhs =
      emit_mul(b, t1, b.sub(log_t, theta), opt.mul);
  const TempId below_cmp = b.gt(s1, rhs);
  const TempId below =
      b.bor(b.band(margin_ok, below_cmp), b.eq(margin_ok, zero));
  const TempId above = b.band(margin_ok, b.lt(s1, rhs));
  const TempId want_above = b.ne(mode, zero);
  const TempId tripped_raw = b.select(want_above, above, below);

  const TempId two = b.konst(2);
  const TempId warm = b.band(b.ge(t1, min_total), b.ge(t1, two));
  const TempId tripped = b.band(check, b.band(warm, tripped_raw));
  const TempId al = b.load_reg(regs.alerted, d);
  const TempId fire = b.band(tripped, b.eq(al, zero));
  // digest_if takes a static id; emit both, each gated on its own mode.
  const TempId fire_low = b.band(fire, b.eq(want_above, zero));
  const TempId fire_high = b.band(fire, want_above);
  b.digest_if(fire_low, kDigestEntropyLow, d, s1, t1);
  b.digest_if(fire_high, kDigestEntropyHigh, d, s1, t1);
  b.store_reg(regs.alerted, d, b.bor(al, fire));
  const TempId hot_old = b.load_reg(regs.hot_value, d);
  b.store_reg(regs.hot_value, d, b.select(fire, v, hot_old));
  return b.take();
}

Program build_reroute(const Stat4Registers& regs, const Stat4Config& cfg) {
  (void)cfg;
  ProgramBuilder b("reroute");
  const TempId d = b.param(kAdDist);
  const TempId alt_port_p1 = b.param(kAdAltPort);
  const TempId al = b.load_reg(regs.alerted, d);
  const TempId egress = b.load_field(FieldRef::kMetaEgressSpec);
  b.store_field(FieldRef::kMetaEgressSpec, b.select(al, alt_port_p1, egress));
  return b.take();
}

Program build_echo(const Stat4Registers& regs, const Stat4Config& cfg,
                   const BuildOptions& opt) {
  if (cfg.counter_size < 511) {
    throw std::invalid_argument(
        "stat4p4: echo needs counter_size >= 511 (payload range [-255,255])");
  }
  ProgramBuilder b("echo");
  const TempId zero = b.konst(0);
  const TempId one = b.konst(1);

  // The echo application statically tracks distribution 0.
  const TempId d = zero;
  const TempId base = zero;

  // v = (value + 255) & 0x3FF maps the signed payload onto [0, 510] even
  // though the wire carries it as a two's-complement 64-bit word.
  const TempId raw = b.load_field(FieldRef::kEchoValue);
  const TempId v = b.band(b.add(raw, b.konst(255)), b.konst(0x3FF));

  const FreqUpdate u = emit_freq_update(b, regs, cfg, d, base, v, opt.mul);

  // Report the tracked measures in the reply frame (Figure 5): the sd is
  // computed at read time — the lazy evaluation made visible.
  b.store_field(FieldRef::kEchoN, u.n);
  b.store_field(FieldRef::kEchoXsum, u.xsum);
  b.store_field(FieldRef::kEchoXsumsq, u.xsumsq);
  b.store_field(FieldRef::kEchoVar, u.var);
  b.store_field(FieldRef::kEchoSd, b.approx_sqrt(u.var));

  // Reflect the frame to its ingress port.
  const TempId inport = b.load_field(FieldRef::kMetaIngressPort);
  b.store_field(FieldRef::kMetaEgressSpec, b.add(inport, one));
  return b.take();
}

Program build_forward() {
  ProgramBuilder b("forward");
  const TempId port_plus_one = b.param(0);
  b.store_field(FieldRef::kMetaEgressSpec, port_plus_one);
  return b.take();
}

Program build_drop() {
  ProgramBuilder b("drop");
  const TempId zero = b.konst(0);
  b.store_field(FieldRef::kMetaEgressSpec, zero);
  return b.take();
}

Program build_noop() {
  ProgramBuilder b("noop");
  (void)b.konst(0);
  return b.take();
}

}  // namespace stat4p4

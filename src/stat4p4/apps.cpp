#include "stat4p4/apps.hpp"

namespace stat4p4 {

using p4sim::FieldRef;
using p4sim::Guard;
using p4sim::KeyMatch;
using p4sim::KeySpec;
using p4sim::MatchKind;
using p4sim::TableEntry;
using p4sim::Word;

EchoApp::EchoApp(Stat4Config cfg, p4sim::AluProfile profile)
    : cfg_(cfg), sw_("stat4-echo", profile) {
  regs_ = declare_registers(sw_, cfg_);
  const BuildOptions opt = BuildOptions::for_profile(profile);
  const auto echo = sw_.add_action(build_echo(regs_, cfg_, opt));
  // Echo frames carry EtherType 0x88B5; anything else is dropped (the
  // default egress_spec of 0).
  Guard g;
  g.field = FieldRef::kEchoValid;
  g.cmp = Guard::Cmp::kNe;
  g.value = 0;
  sw_.add_program_stage(echo, g);
}

MonitorApp::MonitorApp(Stat4Config cfg, p4sim::AluProfile profile)
    : cfg_(cfg), sw_("stat4-monitor", profile) {
  regs_ = declare_registers(sw_, cfg_);
  const BuildOptions opt = BuildOptions::for_profile(profile);

  drop_action_ = sw_.add_action(build_drop());
  noop_action_ = sw_.add_action(build_noop());
  forward_action_ = sw_.add_action(build_forward());
  window_action_ = sw_.add_action(build_window_tick(regs_, cfg_, opt));
  track_freq_action_ = sw_.add_action(
      build_track_freq(regs_, cfg_, FieldRef::kIpv4Dst, opt));
  track_sparse_action_ = sw_.add_action(
      build_track_sparse(regs_, cfg_, FieldRef::kIpv4Dst, opt));
  track_value_action_ = sw_.add_action(
      build_track_value(regs_, cfg_, FieldRef::kMetaPacketLength, opt));
  track_entropy_action_ = sw_.add_action(
      build_track_entropy(regs_, cfg_, FieldRef::kIpv4Dst, opt));
  mitigate_action_ =
      sw_.add_action(build_mitigate(regs_, cfg_, FieldRef::kIpv4Dst));
  reroute_action_ = sw_.add_action(build_reroute(regs_, cfg_));

  forward_table_ = sw_.add_table(
      "ipv4_forward", {KeySpec{FieldRef::kIpv4Dst, MatchKind::kLpm}});
  sw_.table(forward_table_).set_default_action(drop_action_, {});

  rate_table_ = sw_.add_table(
      "rate_binding", {KeySpec{FieldRef::kIpv4Dst, MatchKind::kLpm}});
  sw_.table(rate_table_).set_default_action(noop_action_, {});

  binding_table_ = sw_.add_table(
      "freq_binding", {KeySpec{FieldRef::kIpv4Dst, MatchKind::kLpm},
                       KeySpec{FieldRef::kIpv4Proto, MatchKind::kTernary},
                       KeySpec{FieldRef::kTcpFlags, MatchKind::kTernary}});
  sw_.table(binding_table_).set_default_action(noop_action_, {});

  Guard ipv4;
  ipv4.field = FieldRef::kIpv4Valid;
  ipv4.cmp = Guard::Cmp::kNe;
  ipv4.value = 0;
  mitigation_table_ = sw_.add_table(
      "mitigation", {KeySpec{FieldRef::kIpv4Dst, MatchKind::kLpm},
                     KeySpec{FieldRef::kIpv4Proto, MatchKind::kTernary},
                     KeySpec{FieldRef::kTcpFlags, MatchKind::kTernary}});
  sw_.table(mitigation_table_).set_default_action(noop_action_, {});

  sw_.add_table_stage(forward_table_, ipv4);
  sw_.add_table_stage(rate_table_, ipv4);
  sw_.add_table_stage(binding_table_, ipv4);
  sw_.add_table_stage(mitigation_table_, ipv4);
}

p4sim::EntryHandle MonitorApp::install_forward(std::uint32_t prefix,
                                               std::uint8_t len,
                                               p4sim::PortId port) {
  TableEntry e;
  KeyMatch km;
  km.value = prefix;
  km.prefix_len = len;
  km.field_bits = 32;
  e.key.push_back(km);
  e.action = forward_action_;
  e.action_data = {static_cast<Word>(port) + 1};
  return sw_.table(forward_table_).insert(std::move(e));
}

p4sim::EntryHandle MonitorApp::install_rate_monitor(
    std::uint32_t prefix, std::uint8_t len, std::uint32_t dist,
    std::uint64_t interval_ns, std::uint64_t window_size,
    std::uint64_t min_history, bool stall_check) {
  if (dist >= cfg_.counter_num) {
    throw stat4::UsageError("stat4p4: distribution id out of range");
  }
  if (window_size == 0 || window_size > cfg_.counter_size) {
    throw stat4::UsageError(
        "stat4p4: window size must be in [1, counter_size]");
  }
  TableEntry e;
  KeyMatch km;
  km.value = prefix;
  km.prefix_len = len;
  km.field_bits = 32;
  e.key.push_back(km);
  e.action = window_action_;
  e.action_data.assign(kAdWordCount, 0);
  e.action_data[kAdDist] = dist;
  e.action_data[kAdIntervalLen] = interval_ns;
  e.action_data[kAdMinHistory] = min_history;
  e.action_data[kAdWindowBase] =
      static_cast<Word>(dist) * cfg_.counter_size;
  e.action_data[kAdWindowSize] = window_size;
  e.action_data[kAdStallCheck] = stall_check ? 1 : 0;
  return sw_.table(rate_table_).insert(std::move(e));
}

p4sim::TableEntry MonitorApp::make_freq_entry(
    const FreqBindingSpec& spec) const {
  if (spec.dist >= cfg_.counter_num) {
    throw stat4::UsageError("stat4p4: distribution id out of range");
  }
  if (spec.percentile == 0 || spec.percentile >= 100) {
    throw stat4::UsageError("stat4p4: percentile must be in (0,100)");
  }
  TableEntry e;
  KeyMatch dst;
  dst.value = spec.dst_prefix;
  dst.prefix_len = spec.dst_prefix_len;
  dst.field_bits = 32;
  e.key.push_back(dst);

  KeyMatch proto;
  proto.value = spec.protocol.value_or(0);
  proto.mask = spec.protocol.has_value() ? 0xFF : 0x00;
  e.key.push_back(proto);

  KeyMatch flags;
  flags.value = spec.flag_value;
  flags.mask = spec.flag_mask;
  e.key.push_back(flags);

  e.priority = spec.priority;
  e.action = track_freq_action_;
  e.action_data.assign(kAdWordCount, 0);
  e.action_data[kAdDist] = spec.dist;
  e.action_data[kAdShift] = spec.shift;
  e.action_data[kAdMask] = spec.mask;
  e.action_data[kAdBase] = static_cast<Word>(spec.dist) * cfg_.counter_size;
  e.action_data[kAdCheck] = spec.check ? 1 : 0;
  e.action_data[kAdMinTotal] = spec.min_total;
  e.action_data[kAdOffset] = spec.offset;
  e.action_data[kAdMedian] = spec.median ? 1 : 0;
  e.action_data[kAdWeightLow] = spec.percentile;
  e.action_data[kAdWeightHigh] = 100 - spec.percentile;
  return e;
}

p4sim::EntryHandle MonitorApp::install_freq_binding(
    const FreqBindingSpec& spec) {
  return sw_.table(binding_table_).insert(make_freq_entry(spec));
}

p4sim::EntryHandle MonitorApp::install_entropy_binding(
    const FreqBindingSpec& spec, std::uint64_t entropy_theta_fp,
    bool entropy_above) {
  if (spec.median) {
    throw stat4::UsageError(
        "stat4p4: entropy bindings cannot track percentiles");
  }
  p4sim::TableEntry e = make_freq_entry(spec);
  e.action = track_entropy_action_;
  e.action_data[kAdTheta] = entropy_theta_fp;
  e.action_data[kAdEntropyMode] = entropy_above ? 1 : 0;
  return sw_.table(binding_table_).insert(std::move(e));
}

p4sim::EntryHandle MonitorApp::install_value_binding(
    const FreqBindingSpec& spec) {
  if (spec.median) {
    throw stat4::UsageError(
        "stat4p4: value bindings cannot track percentiles");
  }
  p4sim::TableEntry e = make_freq_entry(spec);
  e.action = track_value_action_;
  return sw_.table(binding_table_).insert(std::move(e));
}

p4sim::EntryHandle MonitorApp::install_mitigation(
    const FreqBindingSpec& spec) {
  p4sim::TableEntry e = make_freq_entry(spec);
  e.action = mitigate_action_;
  // Mitigation only needs the extractor + distribution words.
  return sw_.table(mitigation_table_).insert(std::move(e));
}

p4sim::EntryHandle MonitorApp::install_reroute(const FreqBindingSpec& spec,
                                               p4sim::PortId alt_port) {
  p4sim::TableEntry e = make_freq_entry(spec);
  e.action = reroute_action_;
  e.action_data[kAdAltPort] = static_cast<Word>(alt_port) + 1;
  return sw_.table(mitigation_table_).insert(std::move(e));
}

p4sim::EntryHandle MonitorApp::install_sparse_binding(
    const FreqBindingSpec& spec) {
  if (spec.median) {
    throw stat4::UsageError(
        "stat4p4: sparse bindings cannot track percentiles");
  }
  p4sim::TableEntry e = make_freq_entry(spec);
  e.action = track_sparse_action_;
  return sw_.table(binding_table_).insert(std::move(e));
}

void MonitorApp::modify_freq_binding(p4sim::EntryHandle handle,
                                     const FreqBindingSpec& spec) {
  sw_.table(binding_table_).modify(handle, make_freq_entry(spec));
}

void MonitorApp::remove_binding(p4sim::EntryHandle handle) {
  sw_.table(binding_table_).remove(handle);
}

void MonitorApp::rearm(std::uint32_t dist) {
  sw_.registers().write(regs_.alerted, dist, 0);
}

void MonitorApp::reset_distribution(std::uint32_t dist) {
  auto& rf = sw_.registers();
  for (const auto reg :
       {regs_.n, regs_.xsum, regs_.xsumsq, regs_.var, regs_.med_pos,
        regs_.med_low, regs_.med_high, regs_.med_init, regs_.win_anchored,
        regs_.win_start,
        regs_.win_head, regs_.win_count, regs_.cur_count, regs_.alerted}) {
    rf.write(reg, dist, 0);
  }
  for (const auto reg : {regs_.sparse_overflow, regs_.hot_value}) {
    rf.write(reg, dist, 0);
  }
  const Word base = static_cast<Word>(dist) * cfg_.counter_size;
  for (Word i = 0; i < cfg_.counter_size; ++i) {
    rf.write(regs_.counters, base + i, 0);
    rf.write(regs_.sparse_keys, base + i, 0);
    rf.write(regs_.sparse_counts, base + i, 0);
  }
}

}  // namespace stat4p4

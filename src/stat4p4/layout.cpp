#include "stat4p4/layout.hpp"

namespace stat4p4 {

Stat4Registers declare_registers(p4sim::P4Switch& sw, const Stat4Config& cfg) {
  Stat4Registers r;
  const std::uint32_t cells = cfg.counter_num * cfg.counter_size;
  const std::uint32_t dists = cfg.counter_num;
  r.counters = sw.declare_register("stat_counters", cells);
  r.n = sw.declare_register("stat_n", dists);
  r.xsum = sw.declare_register("stat_xsum", dists);
  r.xsumsq = sw.declare_register("stat_xsumsq", dists);
  r.var = sw.declare_register("stat_var", dists);
  r.med_pos = sw.declare_register("stat_med_pos", dists);
  r.med_low = sw.declare_register("stat_med_low", dists);
  r.med_high = sw.declare_register("stat_med_high", dists);
  r.med_init = sw.declare_register("stat_med_init", dists);
  r.win_anchored = sw.declare_register("stat_win_anchored", dists);
  r.win_start = sw.declare_register("stat_win_start", dists);
  r.win_head = sw.declare_register("stat_win_head", dists);
  r.win_count = sw.declare_register("stat_win_count", dists);
  r.cur_count = sw.declare_register("stat_cur_count", dists);
  r.alerted = sw.declare_register("stat_alerted", dists);
  r.hot_value = sw.declare_register("stat_hot_value", dists);
  r.sparse_keys = sw.declare_register("stat_sparse_keys", cells);
  r.sparse_counts = sw.declare_register("stat_sparse_counts", cells);
  r.sparse_overflow = sw.declare_register("stat_sparse_overflow", dists);
  return r;
}

}  // namespace stat4p4

// Register layout of the Stat4 P4 library (Figure 4).
//
// Stat4 "uses switches' registers to store the distributions and their
// statistical measures"; the maximum number of simultaneously tracked
// distributions is STAT_COUNTER_NUM and the number of values per
// distribution STAT_COUNTER_SIZE (compile-time macros in the paper —
// configuration constants here, fixed at switch build time exactly like a
// recompile would fix them).
#pragma once

#include <cstdint>

#include "p4sim/register_file.hpp"
#include "p4sim/switch.hpp"

namespace stat4p4 {

struct Stat4Config {
  std::uint32_t counter_num = 4;    ///< STAT_COUNTER_NUM
  std::uint32_t counter_size = 512; ///< STAT_COUNTER_SIZE
  unsigned k_sigma = 2;             ///< outlier threshold multiplier
  /// Separate multiplier for the rate-over-time (window) check; 0 = use
  /// k_sigma.  The two checks have different statistics: a window holds up
  /// to counter_size samples so large k is meaningful, while a frequency
  /// check over N categories can never exceed z = sqrt(N-1) — with six /24s
  /// a point mass tops out at 2.24 sigma, so k above 2 would be blind.
  unsigned k_sigma_rate = 0;

  [[nodiscard]] unsigned rate_k() const noexcept {
    return k_sigma_rate != 0 ? k_sigma_rate : k_sigma;
  }
};

/// Ids of every register array the library declares.  All statistical state
/// lives here; the controller can read any of it at runtime ("the controller
/// has access to all the values of distributions tracked by switches").
struct Stat4Registers {
  // Distribution storage: counters[d * counter_size + i].
  p4sim::RegisterId counters = 0;
  // Per-distribution statistical measures (indexed by distribution id).
  p4sim::RegisterId n = 0;
  p4sim::RegisterId xsum = 0;
  p4sim::RegisterId xsumsq = 0;
  p4sim::RegisterId var = 0;
  // Percentile-tracker state (median by default), per distribution.
  p4sim::RegisterId med_pos = 0;
  p4sim::RegisterId med_low = 0;
  p4sim::RegisterId med_high = 0;
  p4sim::RegisterId med_init = 0;
  // Interval-window state (rate-over-time distributions), per distribution.
  p4sim::RegisterId win_anchored = 0;  ///< 1 once the interval grid is set
  p4sim::RegisterId win_start = 0;
  p4sim::RegisterId win_head = 0;
  p4sim::RegisterId win_count = 0;
  p4sim::RegisterId cur_count = 0;
  // Alert latches (one per distribution), re-armed by the controller.
  p4sim::RegisterId alerted = 0;
  // The offending value captured when an alert latches (hot /24, victim
  // host, ...).  Local mitigation matches against it in the data plane —
  // the paper's "locally react to anomalies (e.g., rate limiting some
  // flows)" without any controller round trip.
  p4sim::RegisterId hot_value = 0;
  // Sparse (hash-table) tracking: per-slot keys (stored as key+1, 0 = empty)
  // and counts, plus a per-distribution overflow counter for observations
  // whose probe positions were all taken (Section 5 future work).
  p4sim::RegisterId sparse_keys = 0;
  p4sim::RegisterId sparse_counts = 0;
  p4sim::RegisterId sparse_overflow = 0;
};

/// Declares the full Stat4 register layout on a switch.
[[nodiscard]] Stat4Registers declare_registers(p4sim::P4Switch& sw,
                                               const Stat4Config& cfg);

// Digest ids the Stat4 programs emit (the alert vocabulary of Figure 1c).
inline constexpr std::uint32_t kDigestRateSpike = 1;
inline constexpr std::uint32_t kDigestImbalance = 2;
inline constexpr std::uint32_t kDigestRateStall = 3;  ///< lower outlier
inline constexpr std::uint32_t kDigestValueOutlier = 4;
inline constexpr std::uint32_t kDigestEntropyLow = 5;   ///< concentration
inline constexpr std::uint32_t kDigestEntropyHigh = 6;  ///< dispersion/scan

// Action-data layout for the track_* actions (see programs.hpp).
enum ActionData : std::size_t {
  kAdDist = 0,       ///< distribution id (0 .. counter_num-1)
  kAdShift = 1,      ///< value extractor: v = ((field + off) >> shift) & mask
  kAdMask = 2,
  kAdBase = 3,       ///< dist * counter_size, precomputed by the controller
  kAdCheck = 4,      ///< 1 = run the imbalance outlier check
  kAdMinTotal = 5,   ///< minimum total observations before checking
  kAdOffset = 6,     ///< extractor offset (e.g. +255 for signed payloads)
  kAdMedian = 7,     ///< 1 = maintain the percentile tracker
  kAdTheta = 7,      ///< entropy action: threshold, kLog2FracBits fixed point
  kAdEntropyMode = 8,///< entropy action: 0 = alert on H<theta, 1 = on H>theta
  kAdAltPort = 1,    ///< reroute action: alternate egress port (stored +1)
  kAdWeightLow = 8,  ///< percentile weight P   (50 for the median)
  kAdWeightHigh = 9, ///< percentile weight 100-P
  kAdIntervalLen = 1,   ///< window action: interval length (ns)
  kAdMinHistory = 2,    ///< window action: completed intervals before arming
  kAdWindowBase = 3,    ///< window action: dist * counter_size
  kAdWindowSize = 4,    ///< window action: ring size (<= counter_size)
  kAdStallCheck = 5,    ///< window action: 1 = also check lower outliers
  kAdWordCount = 10,
};

}  // namespace stat4p4

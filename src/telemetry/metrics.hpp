// Lock-free metrics: striped Counter/Gauge, log-bucket Histogram, and the
// MetricsRegistry that owns them — the "monitor the monitor" layer.
//
// Design rules, in the paper's spirit of leaving the monitoring on:
//
//  * The hot path is wait-free and float-free: a Counter::add is one
//    relaxed fetch_add on a cache-line-private stripe; a Histogram::record
//    is a bit_width (one instruction) plus three relaxed RMWs on the
//    recording thread's stripe.  No locks, no allocation, no clock reads
//    (spans read the clock — that is what makes them spans — but only when
//    their SampleGate fires; see span.hpp).
//  * Striping: each metric keeps kStripes cache-line-aligned cells and a
//    thread writes only the cell its thread-slot hashes to, so two worker
//    threads bumping the same counter never bounce a cache line between
//    cores (kStripes is a power of two >= typical core counts).
//  * Reading is the cold path: MetricsRegistry::snapshot() sums the
//    stripes under the registration mutex and returns plain data
//    (snapshot.hpp) for the exporters.
//
// Kill-switch: building with -DSTAT4_TELEMETRY=OFF defines
// STAT4_TELEMETRY_ENABLED=0, the STAT4_TELEMETRY_ONLY(...) macro erases
// every instrumentation site at preprocessing time, and this header only
// provides inert stubs — identical API, empty bodies — so code that *reads*
// telemetry (the CLI reporter, the bench harness) still compiles and sees
// an empty registry.  tests/telemetry_differential_test.cpp pins down that
// both modes produce bit-identical engine results.
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

#include "telemetry/snapshot.hpp"

#if !defined(STAT4_TELEMETRY_ENABLED)
#define STAT4_TELEMETRY_ENABLED 1
#endif

#if STAT4_TELEMETRY_ENABLED
// Splices instrumentation statements into the enclosing scope; compiles to
// *nothing at all* when telemetry is off.
#define STAT4_TELEMETRY_ONLY(...) __VA_ARGS__
#else
#define STAT4_TELEMETRY_ONLY(...)
#endif

namespace telemetry {

#if STAT4_TELEMETRY_ENABLED

/// Number of per-metric stripes (power of two).
inline constexpr std::size_t kStripes = 16;

/// The stripe this thread writes to.  Threads get consecutive slots on
/// first use, so up to kStripes concurrent writers never share a stripe.
inline std::size_t stripe_index() noexcept {
  static std::atomic<std::size_t> next_slot{0};
  thread_local const std::size_t slot =
      next_slot.fetch_add(1, std::memory_order_relaxed) & (kStripes - 1);
  return slot;
}

struct alignas(64) Stripe {
  std::atomic<std::uint64_t> v{0};
};

/// Monotonic event counter.
class Counter {
 public:
  Counter() = default;
  Counter(const Counter&) = delete;
  Counter& operator=(const Counter&) = delete;

  void add(std::uint64_t n = 1) noexcept {
    cells_[stripe_index()].v.fetch_add(n, std::memory_order_relaxed);
  }

  [[nodiscard]] std::uint64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : cells_) {
      total += c.v.load(std::memory_order_relaxed);
    }
    return total;
  }

 private:
  Stripe cells_[kStripes];
};

/// Up/down counter (current occupancy, in-flight work).  Stripes hold
/// signed deltas; the value is their sum, so inc on one thread and dec on
/// another still net to the true level.
class Gauge {
 public:
  Gauge() = default;
  Gauge(const Gauge&) = delete;
  Gauge& operator=(const Gauge&) = delete;

  void add(std::int64_t n) noexcept {
    cells_[stripe_index()].v.fetch_add(static_cast<std::uint64_t>(n),
                                       std::memory_order_relaxed);
  }
  void inc() noexcept { add(1); }
  void dec() noexcept { add(-1); }

  [[nodiscard]] std::int64_t value() const noexcept {
    std::uint64_t total = 0;
    for (const auto& c : cells_) {
      total += c.v.load(std::memory_order_relaxed);
    }
    return static_cast<std::int64_t>(total);
  }

 private:
  Stripe cells_[kStripes];
};

/// Concurrent log2-bucket histogram; see snapshot.hpp for the bucket
/// layout and merge/quantile semantics it snapshots into.
class Histogram {
 public:
  Histogram() = default;
  Histogram(const Histogram&) = delete;
  Histogram& operator=(const Histogram&) = delete;

  void record(std::uint64_t v) noexcept {
    Lane& lane = lanes_[stripe_index()];
    lane.buckets[HistogramData::bucket_of(v)].fetch_add(
        1, std::memory_order_relaxed);
    lane.sum.fetch_add(v, std::memory_order_relaxed);
    // Racy max is fine: stripe-local single-writer in the common case, and
    // the CAS loop keeps it exact even when thread slots collide.
    std::uint64_t seen = lane.max.load(std::memory_order_relaxed);
    while (v > seen && !lane.max.compare_exchange_weak(
                           seen, v, std::memory_order_relaxed)) {
    }
  }

  /// Merge all stripes into plain data (cold path).
  [[nodiscard]] HistogramData snapshot() const noexcept {
    HistogramData data;
    for (const auto& lane : lanes_) {
      for (std::size_t b = 0; b < HistogramData::kBuckets; ++b) {
        const std::uint64_t n =
            lane.buckets[b].load(std::memory_order_relaxed);
        data.buckets[b] += n;
        data.count += n;
      }
      data.sum += lane.sum.load(std::memory_order_relaxed);
      const std::uint64_t m = lane.max.load(std::memory_order_relaxed);
      if (m > data.max) data.max = m;
    }
    return data;
  }

 private:
  struct alignas(64) Lane {
    std::atomic<std::uint64_t> buckets[HistogramData::kBuckets]{};
    std::atomic<std::uint64_t> sum{0};
    std::atomic<std::uint64_t> max{0};
  };
  Lane lanes_[kStripes];
};

/// Owns every metric; hands out stable references.  Registration (cold)
/// takes a mutex; the references returned are valid for the registry's
/// lifetime, so instrumentation sites resolve their metric once (a static
/// local) and never touch the lock again.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// The process-wide registry every STAT4_TELEMETRY_ONLY site records to.
  static MetricsRegistry& global();

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  /// Sum all stripes into plain data, sorted by name.  Safe to call at any
  /// time from any thread; concurrent writers may land increments between
  /// two reads, never torn values.
  [[nodiscard]] Snapshot snapshot() const;

 private:
  template <typename T>
  using Named = std::pair<std::string, std::unique_ptr<T>>;

  mutable std::mutex mu_;
  std::vector<Named<Counter>> counters_;
  std::vector<Named<Gauge>> gauges_;
  std::vector<Named<Histogram>> histograms_;
};

#else  // !STAT4_TELEMETRY_ENABLED -------------------------------------------

// Inert stand-ins so telemetry *consumers* (reporter wiring, bench output)
// compile unchanged.  Instrumentation sites use STAT4_TELEMETRY_ONLY and
// vanish entirely, so none of these ever run on a hot path.

class Counter {
 public:
  void add(std::uint64_t = 1) noexcept {}
  [[nodiscard]] std::uint64_t value() const noexcept { return 0; }
};

class Gauge {
 public:
  void add(std::int64_t) noexcept {}
  void inc() noexcept {}
  void dec() noexcept {}
  [[nodiscard]] std::int64_t value() const noexcept { return 0; }
};

class Histogram {
 public:
  void record(std::uint64_t) noexcept {}
  [[nodiscard]] HistogramData snapshot() const noexcept { return {}; }
};

class MetricsRegistry {
 public:
  static MetricsRegistry& global() {
    static MetricsRegistry registry;
    return registry;
  }
  Counter& counter(std::string_view) {
    static Counter c;
    return c;
  }
  Gauge& gauge(std::string_view) {
    static Gauge g;
    return g;
  }
  Histogram& histogram(std::string_view) {
    static Histogram h;
    return h;
  }
  [[nodiscard]] Snapshot snapshot() const { return {}; }
};

#endif  // STAT4_TELEMETRY_ENABLED

}  // namespace telemetry

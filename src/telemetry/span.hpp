// Trace spans: RAII timers that record elapsed nanoseconds into a
// Histogram.
//
// Span naming convention (docs/OBSERVABILITY.md): histogram names end in
// `_ns` and read `<layer>.<component>.<operation>_ns`, e.g.
// `stat4.engine.process_ns` or `runtime.fleet.digest_latency_ns`.
//
// A clock read costs ~20ns — more than a whole FreqDist::observe — so the
// per-packet paths never time every event: SampledSpan gates the clock
// behind a power-of-two sampling counter (one relaxed fetch_add to decide,
// clock reads only on the 1-in-N hit), which keeps the sampled latency
// distribution unbiased for steady workloads while making the common case
// a single increment.  One-shot operations (flush barriers, report ticks)
// use the unsampled SpanTimer.
//
// All of this is meant to appear inside STAT4_TELEMETRY_ONLY(...) blocks,
// so a telemetry-off build contains no trace of it; the stubs below only
// exist so a stray un-macroed use still compiles to nothing.
#pragma once

#include <atomic>
#include <chrono>
#include <cstdint>

#include "telemetry/metrics.hpp"

namespace telemetry {

/// Monotonic wall clock in integer nanoseconds.
[[nodiscard]] inline std::uint64_t now_ns() noexcept {
  return static_cast<std::uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

#if STAT4_TELEMETRY_ENABLED

/// Times the enclosing scope unconditionally.
class SpanTimer {
 public:
  explicit SpanTimer(Histogram& h) noexcept : h_(&h), start_(now_ns()) {}
  SpanTimer(const SpanTimer&) = delete;
  SpanTimer& operator=(const SpanTimer&) = delete;
  ~SpanTimer() {
    if (h_ != nullptr) h_->record(now_ns() - start_);
  }

  /// Abandon the measurement (error paths that would skew the histogram).
  void dismiss() noexcept { h_ = nullptr; }

 private:
  Histogram* h_;
  std::uint64_t start_;
};

/// Per-callsite sampling state for SampledSpan; declare one `static`
/// SampleGate next to the histogram lookup.
class SampleGate {
 public:
  /// True on every `period`-th call (period must be a power of two).
  [[nodiscard]] bool fire(std::uint32_t period) noexcept {
    return (n_.fetch_add(1, std::memory_order_relaxed) & (period - 1)) == 0;
  }

 private:
  std::atomic<std::uint32_t> n_{0};
};

/// Times the enclosing scope on 1 in `period` passes; otherwise the
/// constructor is a single relaxed increment and the destructor a null
/// check.
class SampledSpan {
 public:
  SampledSpan(Histogram& h, SampleGate& gate, std::uint32_t period) noexcept
      : h_(gate.fire(period) ? &h : nullptr),
        start_(h_ != nullptr ? now_ns() : 0) {}
  SampledSpan(const SampledSpan&) = delete;
  SampledSpan& operator=(const SampledSpan&) = delete;
  ~SampledSpan() {
    if (h_ != nullptr) h_->record(now_ns() - start_);
  }

 private:
  Histogram* h_;
  std::uint64_t start_;
};

#else  // !STAT4_TELEMETRY_ENABLED

class SpanTimer {
 public:
  explicit SpanTimer(Histogram&) noexcept {}
  void dismiss() noexcept {}
};

class SampleGate {
 public:
  [[nodiscard]] bool fire(std::uint32_t) noexcept { return false; }
};

class SampledSpan {
 public:
  SampledSpan(Histogram&, SampleGate&, std::uint32_t) noexcept {}
};

#endif  // STAT4_TELEMETRY_ENABLED

}  // namespace telemetry

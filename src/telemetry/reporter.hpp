// Background Reporter: a thread that periodically snapshots a
// MetricsRegistry and hands the result to a sink — the Figure 1c idea
// applied to our own pipeline, where the monitor publishes its state on a
// cadence instead of being polled post-mortem.
//
// The reporter thread sleeps on a condition variable, so stop() (or
// destruction) interrupts a long interval immediately; a final snapshot is
// always emitted on shutdown, so short-lived runs still report.  The sink
// runs on the reporter thread: registry snapshots are thread-safe, but a
// sink that touches other shared state must synchronize it.
//
// Compiled in both telemetry modes — with the kill-switch off, snapshots
// are simply empty — so wiring (stat4_cli --metrics) never needs #ifs.
#pragma once

#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <thread>

#include "telemetry/metrics.hpp"

namespace telemetry {

class Reporter {
 public:
  using Sink = std::function<void(const Snapshot&)>;

  struct Options {
    std::chrono::milliseconds interval{1000};
    Sink sink;  ///< required
  };

  /// Starts the reporter thread immediately.
  Reporter(MetricsRegistry& registry, Options options);
  ~Reporter();

  Reporter(const Reporter&) = delete;
  Reporter& operator=(const Reporter&) = delete;

  /// Interrupts the current sleep, emits one final snapshot, joins the
  /// thread.  Idempotent.
  void stop();

  [[nodiscard]] std::uint64_t reports_emitted() const noexcept {
    return reports_;
  }

 private:
  void loop();

  MetricsRegistry& registry_;
  Options options_;
  std::mutex mu_;
  std::condition_variable cv_;
  bool stop_requested_ = false;
  bool stopped_ = false;
  std::uint64_t reports_ = 0;  ///< written by the reporter thread and, for
                               ///< the final report, by stop() after join
  std::thread thread_;
};

/// Write a snapshot to `path`, choosing the format from the extension:
/// ".prom" emits Prometheus text, anything else JSON.  An empty path
/// writes JSON to stderr.  Returns false when the file cannot be opened.
bool write_snapshot(const Snapshot& snapshot, const std::string& path);

}  // namespace telemetry

// Umbrella header for the telemetry subsystem (see docs/OBSERVABILITY.md).
#pragma once

#include "telemetry/metrics.hpp"   // IWYU pragma: export
#include "telemetry/reporter.hpp"  // IWYU pragma: export
#include "telemetry/snapshot.hpp"  // IWYU pragma: export
#include "telemetry/span.hpp"      // IWYU pragma: export

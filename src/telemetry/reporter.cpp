#include "telemetry/reporter.hpp"

#include <fstream>
#include <iostream>
#include <utility>

#include "telemetry/span.hpp"

namespace telemetry {

Reporter::Reporter(MetricsRegistry& registry, Options options)
    : registry_(registry), options_(std::move(options)) {
  thread_ = std::thread([this] { loop(); });
}

Reporter::~Reporter() { stop(); }

void Reporter::loop() {
  STAT4_TELEMETRY_ONLY(
      static Histogram& t_tick =
          MetricsRegistry::global().histogram("telemetry.report_tick_ns");)
  std::unique_lock<std::mutex> lock(mu_);
  while (!stop_requested_) {
    if (cv_.wait_for(lock, options_.interval,
                     [this] { return stop_requested_; })) {
      break;
    }
    lock.unlock();
    {
      STAT4_TELEMETRY_ONLY(SpanTimer t_span(t_tick);)
      if (options_.sink) options_.sink(registry_.snapshot());
    }
    lock.lock();
    ++reports_;
  }
}

void Reporter::stop() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (stopped_) return;
    stopped_ = true;
    stop_requested_ = true;
  }
  cv_.notify_all();
  if (thread_.joinable()) thread_.join();
  // Final report, after the thread is gone: short runs still publish.
  if (options_.sink) options_.sink(registry_.snapshot());
  ++reports_;
}

bool write_snapshot(const Snapshot& snapshot, const std::string& path) {
  if (path.empty()) {
    std::cerr << snapshot.to_json() << '\n';
    return true;
  }
  std::ofstream out(path, std::ios::trunc);
  if (!out) return false;
  const bool prometheus =
      path.size() >= 5 && path.compare(path.size() - 5, 5, ".prom") == 0;
  out << (prometheus ? snapshot.to_prometheus() : snapshot.to_json());
  if (!prometheus) out << '\n';
  return static_cast<bool>(out);
}

}  // namespace telemetry

#include "telemetry/snapshot.hpp"

#include <bit>
#include <cstdio>

namespace telemetry {

std::size_t HistogramData::bucket_of(std::uint64_t v) noexcept {
  // bit_width(v) == msb_index(v) + 1 for v != 0, and 0 for v == 0 — exactly
  // the bucket layout documented in the header.
  return static_cast<std::size_t>(std::bit_width(v));
}

std::uint64_t HistogramData::bucket_lower(std::size_t b) noexcept {
  return b == 0 ? 0 : std::uint64_t{1} << (b - 1);
}

std::uint64_t HistogramData::bucket_upper(std::size_t b) noexcept {
  if (b == 0) return 0;
  if (b >= 64) return ~std::uint64_t{0};
  return (std::uint64_t{1} << b) - 1;
}

void HistogramData::record_value(std::uint64_t v) noexcept {
  ++buckets[bucket_of(v)];
  ++count;
  sum += v;
  if (v > max) max = v;
}

void HistogramData::merge(const HistogramData& other) noexcept {
  count += other.count;
  sum += other.sum;
  if (other.max > max) max = other.max;
  for (std::size_t b = 0; b < kBuckets; ++b) buckets[b] += other.buckets[b];
}

std::uint64_t HistogramData::quantile(unsigned pct) const noexcept {
  if (count == 0) return 0;
  if (pct > 100) pct = 100;
  // Nearest-rank, 0-indexed.  (count-1)*pct cannot overflow in practice
  // (counts are event counts), but guard by dividing first when huge.
  const std::uint64_t rank =
      count - 1 <= (~std::uint64_t{0}) / 100
          ? (count - 1) * pct / 100
          : (count - 1) / 100 * pct;
  std::uint64_t cum = 0;
  for (std::size_t b = 0; b < kBuckets; ++b) {
    if (buckets[b] == 0) continue;
    cum += buckets[b];
    if (cum > rank) {
      const std::uint64_t in_bucket = buckets[b];
      const std::uint64_t pos = rank - (cum - in_bucket);
      const std::uint64_t lo = bucket_lower(b);
      const std::uint64_t hi = b == 64 ? max : bucket_upper(b);
      // Integer interpolation: step*pos <= hi - lo, so no overflow.  The
      // result stays inside the bucket — the <= 1-bucket error bound.
      const std::uint64_t step = (hi - lo) / in_bucket;
      return lo + step * pos;
    }
  }
  return max;  // unreachable when the bucket counts match `count`
}

namespace {

// Metric names are library-chosen dotted identifiers, but escape anyway so
// a hostile name cannot corrupt the document.
void append_json_string(std::string& out, const std::string& s) {
  out += '"';
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  out += '"';
}

std::string prometheus_name(const std::string& name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  return out;
}

}  // namespace

std::string Snapshot::to_json() const {
  std::string out = "{\"counters\":{";
  bool first = true;
  for (const auto& c : counters) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, c.name);
    out += ':';
    out += std::to_string(c.value);
  }
  out += "},\"gauges\":{";
  first = true;
  for (const auto& g : gauges) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, g.name);
    out += ':';
    out += std::to_string(g.value);
  }
  out += "},\"histograms\":{";
  first = true;
  for (const auto& h : histograms) {
    if (!first) out += ',';
    first = false;
    append_json_string(out, h.name);
    out += ":{\"count\":" + std::to_string(h.data.count) +
           ",\"sum\":" + std::to_string(h.data.sum) +
           ",\"max\":" + std::to_string(h.data.max) +
           ",\"p50\":" + std::to_string(h.data.p50()) +
           ",\"p90\":" + std::to_string(h.data.p90()) +
           ",\"p99\":" + std::to_string(h.data.p99()) + "}";
  }
  out += "}}";
  return out;
}

std::string Snapshot::to_prometheus() const {
  std::string out;
  for (const auto& c : counters) {
    const std::string name = prometheus_name(c.name);
    out += "# TYPE " + name + " counter\n";
    out += name + " " + std::to_string(c.value) + "\n";
  }
  for (const auto& g : gauges) {
    const std::string name = prometheus_name(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + " " + std::to_string(g.value) + "\n";
  }
  for (const auto& h : histograms) {
    const std::string name = prometheus_name(h.name);
    out += "# TYPE " + name + " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t b = 0; b < HistogramData::kBuckets; ++b) {
      if (h.data.buckets[b] == 0) continue;
      cum += h.data.buckets[b];
      out += name + "_bucket{le=\"" +
             std::to_string(HistogramData::bucket_upper(b)) + "\"} " +
             std::to_string(cum) + "\n";
    }
    out += name + "_bucket{le=\"+Inf\"} " + std::to_string(h.data.count) +
           "\n";
    out += name + "_sum " + std::to_string(h.data.sum) + "\n";
    out += name + "_count " + std::to_string(h.data.count) + "\n";
  }
  return out;
}

}  // namespace telemetry

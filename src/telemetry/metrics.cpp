#include "telemetry/metrics.hpp"

#include <algorithm>

#if STAT4_TELEMETRY_ENABLED

namespace telemetry {

MetricsRegistry& MetricsRegistry::global() {
  static MetricsRegistry registry;
  return registry;
}

namespace {

template <typename T>
T& find_or_create(std::vector<std::pair<std::string, std::unique_ptr<T>>>& v,
                  std::string_view name) {
  for (auto& [n, metric] : v) {
    if (n == name) return *metric;
  }
  v.emplace_back(std::string(name), std::make_unique<T>());
  return *v.back().second;
}

}  // namespace

Counter& MetricsRegistry::counter(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return find_or_create(counters_, name);
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return find_or_create(gauges_, name);
}

Histogram& MetricsRegistry::histogram(std::string_view name) {
  std::lock_guard<std::mutex> lock(mu_);
  return find_or_create(histograms_, name);
}

Snapshot MetricsRegistry::snapshot() const {
  Snapshot snap;
  {
    std::lock_guard<std::mutex> lock(mu_);
    snap.counters.reserve(counters_.size());
    for (const auto& [name, c] : counters_) {
      snap.counters.push_back({name, c->value()});
    }
    snap.gauges.reserve(gauges_.size());
    for (const auto& [name, g] : gauges_) {
      snap.gauges.push_back({name, g->value()});
    }
    snap.histograms.reserve(histograms_.size());
    for (const auto& [name, h] : histograms_) {
      snap.histograms.push_back({name, h->snapshot()});
    }
  }
  const auto by_name = [](const auto& a, const auto& b) {
    return a.name < b.name;
  };
  std::sort(snap.counters.begin(), snap.counters.end(), by_name);
  std::sort(snap.gauges.begin(), snap.gauges.end(), by_name);
  std::sort(snap.histograms.begin(), snap.histograms.end(), by_name);
  return snap;
}

}  // namespace telemetry

#endif  // STAT4_TELEMETRY_ENABLED

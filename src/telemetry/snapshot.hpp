// Telemetry snapshots: plain-data views of the live metrics, plus the
// exporters that turn them into JSON or Prometheus text.
//
// Everything in this header is inert data — no atomics, no threads, no
// dependence on the STAT4_TELEMETRY kill-switch — so the property tests for
// histogram merging and quantile bounds run identically in both build
// modes, and a Snapshot can be built by hand (the bench harness does this
// when combining google-benchmark results with registry state).
//
// HistogramData is the mergeable form of telemetry::Histogram: power-of-two
// ("log2") buckets, so bucket b >= 1 covers [2^(b-1), 2^b - 1] and bucket 0
// holds exactly the value 0.  Merging is element-wise addition — two
// histograms recorded independently (per thread, per shard, per switch)
// merge into exactly the histogram a single recorder would have produced.
// Quantiles are integer-only, in the same spirit as the paper's shift-based
// arithmetic: nearest-rank bucket walk plus a linear in-bucket
// interpolation done with one 64-bit divide — never off by more than the
// width of the bucket containing the rank (tests/telemetry_test.cpp).
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

namespace telemetry {

struct HistogramData {
  /// Bucket 0 for the value 0, buckets 1..64 for values with MSB at
  /// position b-1: 65 buckets cover the full uint64 range.
  static constexpr std::size_t kBuckets = 65;

  std::uint64_t count = 0;
  std::uint64_t sum = 0;
  std::uint64_t max = 0;
  std::array<std::uint64_t, kBuckets> buckets{};

  [[nodiscard]] static std::size_t bucket_of(std::uint64_t v) noexcept;
  /// Smallest value landing in bucket `b` (0 for b == 0, else 2^(b-1)).
  [[nodiscard]] static std::uint64_t bucket_lower(std::size_t b) noexcept;
  /// Largest value landing in bucket `b` (0 for b == 0, else 2^b - 1).
  [[nodiscard]] static std::uint64_t bucket_upper(std::size_t b) noexcept;

  /// Non-atomic single-recorder insert (tests and offline aggregation; the
  /// concurrent path is telemetry::Histogram::record).
  void record_value(std::uint64_t v) noexcept;

  /// Element-wise addition: afterwards *this describes the union of both
  /// recorded populations.
  void merge(const HistogramData& other) noexcept;

  /// Integer-only nearest-rank quantile for pct in [0, 100]: locate the
  /// bucket holding rank floor((count-1) * pct / 100) and interpolate
  /// linearly inside it.  Returns 0 on an empty histogram.
  [[nodiscard]] std::uint64_t quantile(unsigned pct) const noexcept;

  [[nodiscard]] std::uint64_t p50() const noexcept { return quantile(50); }
  [[nodiscard]] std::uint64_t p90() const noexcept { return quantile(90); }
  [[nodiscard]] std::uint64_t p99() const noexcept { return quantile(99); }
};

struct CounterSample {
  std::string name;
  std::uint64_t value = 0;
};

struct GaugeSample {
  std::string name;
  std::int64_t value = 0;
};

struct HistogramSample {
  std::string name;
  HistogramData data;
};

/// One consistent-enough view of a MetricsRegistry (counters are summed
/// over their stripes with relaxed loads: totals may lag a concurrent
/// writer by a few increments but never tear).
struct Snapshot {
  std::vector<CounterSample> counters;
  std::vector<GaugeSample> gauges;
  std::vector<HistogramSample> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }

  /// One JSON object: {"counters": {...}, "gauges": {...},
  /// "histograms": {name: {count, sum, max, p50, p90, p99}}}.
  [[nodiscard]] std::string to_json() const;

  /// Prometheus text exposition format (metric names have '.' mapped to
  /// '_'; histograms expand to cumulative _bucket{le="..."} series).
  [[nodiscard]] std::string to_prometheus() const;
};

}  // namespace telemetry

#include "stat4/freq_dist.hpp"

namespace stat4 {

FreqDist::FreqDist(std::size_t domain_size, OverflowPolicy policy)
    : freqs_(domain_size, 0), stats_(policy) {
  if (domain_size == 0) {
    throw UsageError("stat4: FreqDist domain must be non-empty");
  }
}

void FreqDist::observe(Value v) {
  if (v >= freqs_.size()) {
    throw UsageError("stat4: observed value outside FreqDist domain");
  }
  const Count old_freq = freqs_[v];
  stats_.bump_frequency(old_freq);  // may throw; counters untouched if so
  freqs_[v] = old_freq + 1;
  ++total_;
  for (auto& t : trackers_) t->on_increment(v);
}

void FreqDist::unobserve(Value v) {
  if (v >= freqs_.size()) {
    throw UsageError("stat4: retracted value outside FreqDist domain");
  }
  const Count old_freq = freqs_[v];
  if (old_freq == 0) {
    throw UsageError("stat4: unobserve() of a value with zero frequency");
  }
  stats_.drop_frequency(old_freq);
  freqs_[v] = old_freq - 1;
  --total_;
  for (auto& t : trackers_) t->on_decrement(v);
}

std::size_t FreqDist::attach_percentile(Percentile p) {
  trackers_.push_back(std::make_unique<PercentileTracker>(p, freqs_));
  // Replay nothing: trackers attached mid-stream start from the next
  // observation, matching a controller enabling a new check at runtime.
  return trackers_.size() - 1;
}

const PercentileTracker& FreqDist::percentile(std::size_t idx) const {
  if (idx >= trackers_.size()) {
    throw UsageError("stat4: percentile tracker index out of range");
  }
  return *trackers_[idx];
}

PercentileTracker& FreqDist::percentile(std::size_t idx) {
  if (idx >= trackers_.size()) {
    throw UsageError("stat4: percentile tracker index out of range");
  }
  return *trackers_[idx];
}

Count FreqDist::frequency(Value v) const {
  if (v >= freqs_.size()) {
    throw UsageError("stat4: frequency() value outside domain");
  }
  return freqs_[v];
}

OutlierVerdict FreqDist::frequency_outlier(Value v, unsigned k_sigma) const {
  OutlierVerdict verdict = stats_.upper_outlier(frequency(v), k_sigma);
  // Integer-quantization slack: frequencies move in steps of one, so right
  // after observing v its counter exceeds a perfectly balanced distribution
  // by a full unit while the estimated sd is ~0.  Require the outlier to
  // clear one extra unit in NX space (i.e. +N) so that an exactly
  // round-robin stream can never self-trigger.
  verdict.threshold += static_cast<Accum>(stats_.n());
  verdict.is_outlier =
      stats_.n() > 0 && verdict.scaled_value > verdict.threshold;
  return verdict;
}

void FreqDist::reset() noexcept {
  for (auto& f : freqs_) f = 0;
  stats_.reset();
  total_ = 0;
  for (auto& t : trackers_) t->reset();
}

}  // namespace stat4

// Circular-buffer monitoring of a value of interest over time intervals.
//
// The case study (Section 4) monitors "packets per time interval for the
// entire /8 prefix": the switch keeps a circular buffer of (by default) 100
// 8ms-long interval counters and, at every interval boundary, checks whether
// the interval's count exceeds the mean of the stored distribution plus two
// standard deviations.  Overriding the oldest counter when the buffer wraps
// is the paper's longest match-action dependency chain (12 sequential
// steps); stat4p4 keeps that chain explicit so bench_resource can measure it.
//
// IntervalWindow is the C++ library form: a ring of interval counters with a
// RunningStats over the *completed* intervals.  The caller supplies
// timestamps (integer nanoseconds), so the class is clock-agnostic and
// deterministic under simulation.
#pragma once

#include <functional>
#include <vector>

#include "stat4/running_stats.hpp"
#include "stat4/types.hpp"

namespace stat4 {

/// Outcome of closing one time interval.
struct IntervalReport {
  TimeNs start = 0;             ///< interval start time
  Value value = 0;              ///< accumulated count for the interval
  OutlierVerdict upper;         ///< value vs historical mean + k*sd
  bool window_primed = false;   ///< ring already full when the check ran
};

class IntervalWindow {
 public:
  /// `num_intervals` is the paper's STAT_COUNTER_SIZE (default 100 in the
  /// case study); `interval_len` its interval length (default 8 ms).
  IntervalWindow(std::size_t num_intervals, TimeNs interval_len,
                 unsigned k_sigma = 2,
                 OverflowPolicy policy = OverflowPolicy::kThrow);

  /// Accumulate `amount` at time `now`.  Closes any intervals that `now` has
  /// passed (invoking the on_interval callback for each) before counting.
  void record(TimeNs now, Value amount = 1);

  /// Close intervals up to `now` without recording anything — pure passage
  /// of time (e.g. traffic stopped entirely, itself an anomaly signal).
  void advance_to(TimeNs now);

  /// Callback fired for every completed interval, after the outlier check
  /// and before the value enters the stored distribution.
  void set_on_interval(std::function<void(const IntervalReport&)> cb) {
    on_interval_ = std::move(cb);
  }

  [[nodiscard]] const RunningStats& stats() const noexcept { return stats_; }
  [[nodiscard]] Value current_count() const noexcept { return current_; }
  [[nodiscard]] TimeNs interval_length() const noexcept { return len_; }
  [[nodiscard]] std::size_t capacity() const noexcept { return ring_.size(); }
  [[nodiscard]] std::size_t completed() const noexcept { return completed_; }
  [[nodiscard]] bool primed() const noexcept {
    return completed_ >= ring_.size();
  }
  /// Completed interval values, oldest first.
  [[nodiscard]] std::vector<Value> history() const;

  void reset() noexcept;

 private:
  void close_interval();

  std::vector<Value> ring_;
  std::size_t head_ = 0;        ///< slot the *next* completed value lands in
  std::size_t completed_ = 0;   ///< total completed intervals (monotonic)
  TimeNs len_;
  TimeNs current_start_ = 0;
  bool started_ = false;
  Value current_ = 0;
  unsigned k_sigma_;
  RunningStats stats_;
  std::function<void(const IntervalReport&)> on_interval_;
};

}  // namespace stat4

// Online percentile tracking over frequency distributions (Figure 3).
//
// The paper's algorithm keeps, besides the frequency counters f[.] of the
// monitored distribution, two combined counters: `low` (total frequency of
// values below the tracked position) and `high` (total frequency above it).
// Each new observation may move the tracked position by AT MOST ONE slot —
// P4 cannot iterate, so a sparse region is crossed one packet at a time.
// Table 3 of the paper characterizes the resulting estimation error.
//
// The median moves up when  high > low + f[m]  and down when
// low > high + f[m].  The generalization to the P-th percentile replaces the
// balance by a P : (100-P) ratio, e.g. the 90th percentile requires `low` to
// be nine times `high` ("adjusting the comparisons", end of Section 2).
#pragma once

#include <cstdint>
#include <vector>

#include "stat4/types.hpp"

namespace stat4 {

/// A percentile in (0, 100); Percentile{50} is the median.
struct Percentile {
  unsigned value = 50;
};

/// Tracks one percentile of a frequency distribution over the integer domain
/// [0, domain_size).  Driven by FreqDist (or directly) through on_increment /
/// on_decrement; never iterates, moving at most one slot per update.
class PercentileTracker {
 public:
  /// `freqs` outlives the tracker and is the frequency array the owner
  /// updates *before* calling on_increment/on_decrement.
  PercentileTracker(Percentile p, const std::vector<Count>& freqs);

  /// Notify that f[v] was incremented by one.  Adjusts low/high and applies
  /// at most one move step.
  void on_increment(Value v);

  /// Notify that f[v] was decremented by one (windowed distributions).
  void on_decrement(Value v);

  /// Current percentile estimate (a domain value).  Meaningless until the
  /// first observation; check observed().
  [[nodiscard]] Value position() const noexcept { return pos_; }
  [[nodiscard]] bool observed() const noexcept { return observed_; }

  [[nodiscard]] Count low_count() const noexcept { return low_; }
  [[nodiscard]] Count high_count() const noexcept { return high_; }
  [[nodiscard]] Percentile percentile() const noexcept { return p_; }

  void reset() noexcept;

  /// Restore a snapshot (position + combined counters).  Used by the
  /// controller when re-binding a distribution at runtime, and by tests to
  /// reconstruct the paper's worked examples.  The caller must have restored
  /// the frequency array to a consistent state first.
  void restore_state(Value pos, Count low, Count high);

 private:
  void maybe_move();

  Percentile p_;
  const std::vector<Count>* freqs_;
  Value pos_ = 0;
  Count low_ = 0;
  Count high_ = 0;
  bool observed_ = false;
};

}  // namespace stat4

#include "stat4/entropy.hpp"

#include <cmath>

#include "stat4/approx_math.hpp"

namespace stat4 {

namespace {

/// f * approx_log2(f) in fixed point — the per-element term of S.
std::uint64_t flog(Count f) noexcept {
  return f * approx_log2(f);
}

}  // namespace

EntropyEstimator::EntropyEstimator(std::size_t domain_size,
                                   OverflowPolicy policy)
    : dist_(domain_size, policy) {}

void EntropyEstimator::observe(Value v) {
  const Count f = dist_.frequency(v);
  dist_.observe(v);
  // S += (f+1)log2(f+1) - f log2(f); both terms are monotone so the delta
  // is non-negative and the subtraction cannot wrap.
  s_ += flog(f + 1) - flog(f);
  ++total_;
}

void EntropyEstimator::unobserve(Value v) {
  const Count f = dist_.frequency(v);
  dist_.unobserve(v);  // throws if f == 0
  s_ -= flog(f) - flog(f - 1);
  --total_;
}

bool EntropyEstimator::entropy_below(std::uint64_t theta_fp) const {
  if (total_ < 2) return false;
  const std::uint64_t log_t = approx_log2(total_);
  if (log_t <= theta_fp) {
    // log2(T) <= theta: even a uniform distribution sits below theta.
    return true;
  }
  return s_ > total_ * (log_t - theta_fp);
}

bool EntropyEstimator::entropy_above(std::uint64_t theta_fp) const {
  if (total_ < 2) return false;
  const std::uint64_t log_t = approx_log2(total_);
  if (log_t <= theta_fp) return false;  // H <= log2(T) <= theta
  return s_ < total_ * (log_t - theta_fp);
}

double EntropyEstimator::entropy_bits() const {
  if (total_ == 0) return 0.0;
  const double scale = static_cast<double>(1u << kLog2FracBits);
  const double log_t =
      static_cast<double>(approx_log2(total_)) / scale;
  const double s = static_cast<double>(s_) / scale;
  const double h = log_t - s / static_cast<double>(total_);
  return h < 0.0 ? 0.0 : h;
}

void EntropyEstimator::reset() noexcept {
  dist_.reset();
  total_ = 0;
  s_ = 0;
}

}  // namespace stat4

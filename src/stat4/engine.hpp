// Stat4Engine: distributions + binding tables + anomaly checks.
//
// This is the library-level composition a Stat4 application runs per packet
// (Figure 4): consult the binding tables, update the bound distributions,
// and raise alerts when an enabled statistical check trips.  It is the
// C++-native mirror of the switch-side pipeline in stat4p4; the two are
// cross-validated by the echo experiment (Figure 5).
//
// The number of simultaneously tracked distributions corresponds to the
// paper's STAT_COUNTER_NUM macro and the per-distribution domain size to
// STAT_COUNTER_SIZE; both are runtime arguments here.
#pragma once

#include <functional>
#include <memory>
#include <variant>
#include <vector>

#include "stat4/binding.hpp"
#include "stat4/freq_dist.hpp"
#include "stat4/interval_window.hpp"
#include "stat4/running_stats.hpp"
#include "stat4/sliding_freq.hpp"
#include "stat4/types.hpp"

namespace stat4 {

using BindingId = std::uint32_t;

enum class AlertKind : std::uint8_t {
  kRateSpike,            ///< interval count above mean + k*sd (case study #1)
  kFrequencyImbalance,   ///< one value's frequency is an upper outlier (#2)
  kRateStall,            ///< interval count below mean - k*sd (Table 1,
                         ///< "remote failure / stalled flows over time")
  kValueOutlier,         ///< a sampled value is an upper outlier
};

/// Pushed to the alert sink — the in-switch analogue of the digest a P4
/// switch sends its controller (Figure 1c).
struct Alert {
  AlertKind kind = AlertKind::kRateSpike;
  DistId dist = 0;
  Value value = 0;           ///< offending value (interval count / domain value)
  OutlierVerdict verdict;    ///< the comparison that tripped
  TimeNs time = 0;
  std::uint64_t seq = 0;     ///< monotonically increasing alert number
};

class Stat4Engine {
 public:
  explicit Stat4Engine(OverflowPolicy policy = OverflowPolicy::kThrow);

  // --- distribution management (STAT_COUNTER_NUM dimension) ---------------
  DistId add_freq_dist(std::size_t domain_size);
  /// A frequency distribution over only the last `window` observations —
  /// for long-standing checks where stale history must age out.
  DistId add_sliding_freq_dist(std::size_t domain_size, std::size_t window);
  DistId add_interval_window(std::size_t num_intervals, TimeNs interval_len,
                             unsigned k_sigma = 2);
  DistId add_value_stats();

  [[nodiscard]] FreqDist& freq(DistId id);
  [[nodiscard]] const FreqDist& freq(DistId id) const;
  [[nodiscard]] SlidingFreqDist& sliding(DistId id);
  [[nodiscard]] const SlidingFreqDist& sliding(DistId id) const;
  [[nodiscard]] IntervalWindow& window(DistId id);
  [[nodiscard]] const IntervalWindow& window(DistId id) const;
  [[nodiscard]] RunningStats& values(DistId id);
  [[nodiscard]] const RunningStats& values(DistId id) const;
  [[nodiscard]] std::size_t distribution_count() const noexcept {
    return dists_.size();
  }

  // --- anomaly checks ------------------------------------------------------
  /// Check each completed interval of `window` against mean + k*sd of the
  /// stored distribution; requires at least `min_history` completed
  /// intervals before arming (a two-interval history cannot define an
  /// outlier meaningfully).
  void enable_spike_check(DistId window_id, std::size_t min_history = 8);

  /// Also check each completed interval against mean - k*sd: a collapse in
  /// rate (remote failure, stalled flows) raises kRateStall.  May be
  /// combined with the spike check on the same window.
  void enable_stall_check(DistId window_id, std::size_t min_history = 8);

  /// Check each kValueSample observation against mean + k*sd of the sample
  /// distribution; requires `min_n` samples before arming.
  void enable_value_outlier_check(DistId values_id, Count min_n = 32);

  /// Check, on every observation into `freq`, whether the observed value's
  /// frequency is an upper outlier among all tracked frequencies; requires
  /// `min_total` observations and at least two distinct values.
  void enable_imbalance_check(DistId freq_id, Count min_total = 32);

  /// Checks latch after firing (one alert per anomaly, like a digest with
  /// controller-managed re-arming).  The controller calls rearm() after it
  /// has reacted — e.g. after re-binding for the drill-down.
  void rearm(DistId id);

  // --- binding tables (Figure 4) -------------------------------------------
  BindingId add_binding(const BindingEntry& entry);
  void modify_binding(BindingId id, const BindingEntry& entry);
  void remove_binding(BindingId id);
  [[nodiscard]] std::size_t active_bindings() const noexcept;

  // --- data path ------------------------------------------------------------
  /// Process one packet: walk the binding table, update matching
  /// distributions, run enabled checks.  O(#bindings).
  void process(const PacketFields& pkt);

  /// Process a contiguous run of packets.  Bit-exact against calling
  /// process() once per packet, in order (tests/batch_differential_test.cpp
  /// enforces this), but resolves the binding table → distribution mapping
  /// once per batch instead of once per packet: the enabled bindings and
  /// their target slots are flattened into a dense cache that is only
  /// rebuilt when a binding or distribution mutation bumps the generation
  /// counter.
  void process_batch(const PacketFields* pkts, std::size_t n);

  /// Let time pass without traffic (closes interval windows).
  void advance_time(TimeNs now);

  void set_alert_sink(std::function<void(const Alert&)> sink) {
    alert_sink_ = std::move(sink);
  }

  [[nodiscard]] std::uint64_t alerts_emitted() const noexcept {
    return alert_seq_;
  }

 private:
  struct DistSlot {
    std::variant<std::unique_ptr<FreqDist>, std::unique_ptr<IntervalWindow>,
                 std::unique_ptr<RunningStats>,
                 std::unique_ptr<SlidingFreqDist>>
        dist;
    bool spike_check = false;
    bool stall_check = false;
    bool imbalance_check = false;
    bool value_check = false;
    bool latched = false;           ///< check fired and not yet re-armed
    std::size_t min_history = 0;
    Count min_total = 0;
    unsigned k_sigma = 2;
  };

  /// One entry of the binding-resolution cache: the enabled binding and its
  /// pre-looked-up target slot.  Pointers stay valid until the next
  /// structural mutation (which bumps mutation_gen_, forcing a rebuild).
  struct ResolvedBinding {
    const BindingEntry* entry = nullptr;
    DistSlot* slot = nullptr;
  };

  void emit(AlertKind kind, DistId id, Value value,
            const OutlierVerdict& verdict, TimeNs time);
  void apply(const BindingEntry& b, DistSlot& s, const PacketFields& pkt);
  void ensure_interval_callback(DistId window_id);
  DistSlot& slot(DistId id);
  const DistSlot& slot(DistId id) const;
  void refresh_resolved();
  /// Every structural mutation (new distribution, binding add/modify/
  /// remove) routes through here so stale ResolvedBinding pointers can
  /// never be walked.
  void invalidate_resolved() noexcept { ++mutation_gen_; }

  OverflowPolicy policy_;
  // Telemetry packet-batch tick (see process() in engine.cpp).  A plain
  // member: the engine is single-threaded by contract, and batching keeps
  // atomics off the per-packet path.  One dead uint32 in telemetry-off
  // builds beats an #ifdef in the header.
  std::uint32_t t_tick_ = 0;
  std::vector<DistSlot> dists_;
  std::vector<std::optional<BindingEntry>> bindings_;
  std::vector<ResolvedBinding> resolved_;  ///< dense enabled-binding cache
  std::uint64_t mutation_gen_ = 0;
  std::uint64_t resolved_gen_ = ~std::uint64_t{0};  ///< != gen -> rebuild
  std::function<void(const Alert&)> alert_sink_;
  std::uint64_t alert_seq_ = 0;
  TimeNs last_time_ = 0;
};

}  // namespace stat4

// Umbrella header for the Stat4 library.
//
// Stat4-C++ reproduces the P4 library of "Stats 101 in P4: Towards In-Switch
// Anomaly Detection" (HotNets '21): online, division-free, loop-free integer
// statistics over distributions of values extracted from traffic, plus
// runtime-tunable binding tables and outlier checks built on them.
#pragma once

#include "stat4/approx_math.hpp"     // IWYU pragma: export
#include "stat4/binding.hpp"         // IWYU pragma: export
#include "stat4/checked_arith.hpp"   // IWYU pragma: export
#include "stat4/engine.hpp"          // IWYU pragma: export
#include "stat4/entropy.hpp"         // IWYU pragma: export
#include "stat4/freq_dist.hpp"       // IWYU pragma: export
#include "stat4/interval_window.hpp" // IWYU pragma: export
#include "stat4/percentile.hpp"      // IWYU pragma: export
#include "stat4/running_stats.hpp"   // IWYU pragma: export
#include "stat4/sliding_freq.hpp"    // IWYU pragma: export
#include "stat4/sparse_freq.hpp"     // IWYU pragma: export
#include "stat4/types.hpp"           // IWYU pragma: export

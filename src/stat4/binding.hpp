// Binding tables: runtime-tunable mapping from packets to distributions.
//
// Figure 4 of the paper: the control plane decides which distributions the
// switch tracks at any time by populating "binding tables" whose entries
// define (i) how to extract values of interest from packets and (ii) how to
// update which registers.  Entries can be added / modified / removed at
// runtime without recompiling the P4 program — the drill-down case study
// depends on this (first bind per-/24 tracking, then re-bind to
// per-destination tracking).
//
// The C++ form: a BindingEntry carries a MatchSpec (which packets it applies
// to), a FieldExtractor (how to turn the packet into an integer value of
// interest) and the target distribution + update discipline.
#pragma once

#include <cstdint>
#include <optional>

#include "stat4/types.hpp"

namespace stat4 {

/// The packet attributes Stat4 bindings can match on and extract from.
/// The switch substrate fills one of these per packet from parsed headers;
/// host-side users can fill it directly.  All fields are host byte order.
struct PacketFields {
  TimeNs timestamp = 0;       ///< ingress timestamp
  std::uint32_t length = 0;   ///< frame length in bytes
  std::uint32_t src_ip = 0;
  std::uint32_t dst_ip = 0;
  std::uint16_t src_port = 0;
  std::uint16_t dst_port = 0;
  std::uint8_t protocol = 0;  ///< IP protocol number (6 = TCP, 17 = UDP)
  std::uint8_t tcp_flags = 0; ///< TCP flag byte (0x02 = SYN), 0 if not TCP
  std::int64_t payload_value = 0;  ///< decoded payload integer (echo app)
};

/// Which packet attribute a binding observes.
enum class Field : std::uint8_t {
  kConstOne,      ///< the constant 1 (count packets)
  kLength,        ///< frame length
  kSrcIp,
  kDstIp,
  kSrcPort,
  kDstPort,
  kProtocol,
  kTcpFlags,
  kPayloadValue,  ///< payload integer (validation echo app)
};

/// Extracts an integer value of interest:  value = (raw(field) >> shift) & mask.
/// Examples:
///   * per-/24 subnet index inside a /8:  {kDstIp, shift=8, mask=0xFF}
///   * per-host index inside a /24:       {kDstIp, shift=0, mask=0xFF}
///   * SYN bit:                           {kTcpFlags, shift=1, mask=0x1}
struct FieldExtractor {
  Field field = Field::kConstOne;
  std::uint8_t shift = 0;
  std::uint64_t mask = ~std::uint64_t{0};

  [[nodiscard]] Value extract(const PacketFields& pkt) const noexcept;
};

/// An IPv4 prefix (address in host byte order, length in bits).
struct Prefix {
  std::uint32_t addr = 0;
  std::uint8_t len = 0;  ///< 0 matches everything

  [[nodiscard]] bool matches(std::uint32_t ip) const noexcept;
};

/// Which packets a binding applies to.  Empty optionals match everything —
/// the default-constructed MatchSpec is a wildcard entry.
struct MatchSpec {
  std::optional<Prefix> dst_prefix;
  std::optional<Prefix> src_prefix;
  std::optional<std::uint8_t> protocol;
  /// Ternary match on TCP flags: matches iff (flags & flag_mask) == flag_value.
  std::uint8_t flag_mask = 0;
  std::uint8_t flag_value = 0;

  [[nodiscard]] bool matches(const PacketFields& pkt) const noexcept;
};

/// How the extracted value updates the target distribution.
enum class UpdateKind : std::uint8_t {
  kFrequencyObserve,  ///< FreqDist::observe(value)
  kIntervalCount,     ///< IntervalWindow::record(ts, 1)
  kIntervalSum,       ///< IntervalWindow::record(ts, value)
  kValueSample,       ///< RunningStats::add(value)
};

/// Identifier of a distribution inside a Stat4Engine.
using DistId = std::uint32_t;

/// One binding-table entry (one row of Figure 4's binding tables).
struct BindingEntry {
  MatchSpec match;
  FieldExtractor extractor;
  DistId dist = 0;
  UpdateKind kind = UpdateKind::kFrequencyObserve;
  bool enabled = true;
};

}  // namespace stat4

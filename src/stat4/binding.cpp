#include "stat4/binding.hpp"

namespace stat4 {

Value FieldExtractor::extract(const PacketFields& pkt) const noexcept {
  std::uint64_t raw = 0;
  switch (field) {
    case Field::kConstOne:     raw = 1; break;
    case Field::kLength:       raw = pkt.length; break;
    case Field::kSrcIp:        raw = pkt.src_ip; break;
    case Field::kDstIp:        raw = pkt.dst_ip; break;
    case Field::kSrcPort:      raw = pkt.src_port; break;
    case Field::kDstPort:      raw = pkt.dst_port; break;
    case Field::kProtocol:     raw = pkt.protocol; break;
    case Field::kTcpFlags:     raw = pkt.tcp_flags; break;
    case Field::kPayloadValue:
      raw = static_cast<std::uint64_t>(pkt.payload_value);
      break;
  }
  const unsigned s = shift >= 64 ? 63u : shift;
  return (raw >> s) & mask;
}

bool Prefix::matches(std::uint32_t ip) const noexcept {
  if (len == 0) return true;
  const std::uint8_t l = len > 32 ? std::uint8_t{32} : len;
  const std::uint32_t m =
      l == 32 ? ~std::uint32_t{0} : ~(~std::uint32_t{0} >> l);
  return (ip & m) == (addr & m);
}

bool MatchSpec::matches(const PacketFields& pkt) const noexcept {
  if (dst_prefix && !dst_prefix->matches(pkt.dst_ip)) return false;
  if (src_prefix && !src_prefix->matches(pkt.src_ip)) return false;
  if (protocol && *protocol != pkt.protocol) return false;
  if (flag_mask != 0 && (pkt.tcp_flags & flag_mask) != flag_value) return false;
  return true;
}

}  // namespace stat4

#include "stat4/percentile.hpp"

namespace stat4 {

PercentileTracker::PercentileTracker(Percentile p,
                                     const std::vector<Count>& freqs)
    : p_(p), freqs_(&freqs) {
  if (p.value == 0 || p.value >= 100) {
    throw UsageError("stat4: percentile must be in (0, 100)");
  }
}

void PercentileTracker::on_increment(Value v) {
  if (!observed_) {
    // The first observation seeds the tracked position: with one sample the
    // sample itself is every percentile.
    pos_ = v;
    observed_ = true;
    maybe_move();
    return;
  }
  if (v < pos_) {
    ++low_;
  } else if (v > pos_) {
    ++high_;
  }
  // v == pos_ contributes to f[pos_], consulted inside maybe_move().
  maybe_move();
}

void PercentileTracker::on_decrement(Value v) {
  if (!observed_) return;
  if (v < pos_) {
    if (low_ > 0) --low_;
  } else if (v > pos_) {
    if (high_ > 0) --high_;
  }
  maybe_move();
}

void PercentileTracker::maybe_move() {
  if (!observed_ || freqs_->empty()) return;
  const auto& f = *freqs_;
  const std::uint64_t p = p_.value;        // weight of the low side
  const std::uint64_t q = 100 - p_.value;  // weight of the high side
  const Count fm = pos_ < f.size() ? f[pos_] : 0;

  // Move up when the high side outweighs the low side (plus the tracked
  // slot itself) under the P:(100-P) balance; symmetric for down.  For the
  // median (p == q) this is exactly the rule of Figure 3; for the 90th
  // percentile it reduces to "low must be nine times high".
  if (p * high_ > q * (low_ + fm)) {
    if (pos_ + 1 < f.size()) {
      low_ += fm;
      ++pos_;
      high_ -= f[pos_];
    }
  } else if (q * low_ > p * (high_ + fm)) {
    if (pos_ > 0) {
      high_ += fm;
      --pos_;
      low_ -= f[pos_];
    }
  }
}

void PercentileTracker::restore_state(Value pos, Count low, Count high) {
  if (pos >= freqs_->size()) {
    throw UsageError("stat4: restore_state position outside domain");
  }
  pos_ = pos;
  low_ = low;
  high_ = high;
  observed_ = true;
}

void PercentileTracker::reset() noexcept {
  pos_ = 0;
  low_ = 0;
  high_ = 0;
  observed_ = false;
}

}  // namespace stat4

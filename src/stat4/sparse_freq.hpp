// Sparse frequency distributions: bounded memory for huge value domains.
//
// Section 5 ("future improvements"): "Stat4 currently allocates switch
// resources for every possible value in the tracked distributions, even if
// some values are never observed.  We will explore techniques to avoid
// reserving memory for non-observed values (e.g., using hash-tables
// similarly to [23]) which would be especially beneficial for sparse
// distributions."
//
// SparseFreqDist implements that technique in a switch-realistic way: a
// fixed-capacity open-addressed hash table (power-of-two slots, K probe
// positions derived from two hash mixes — exactly what a P4 pipeline can do
// with hash externs and K unrolled register accesses).  When every probed
// slot is taken by other keys, the observation lands in an `overflow`
// counter instead of silently corrupting a neighbour: the statistics then
// knowingly undercount, and overflow() quantifies by how much.
//
// The same hash/probing scheme is mirrored by the stat4p4 sparse program,
// so library and switch stay bit-identical.
#pragma once

#include <cstdint>
#include <vector>

#include "stat4/running_stats.hpp"
#include "stat4/types.hpp"

namespace stat4 {

/// The hash mixes shared between the C++ and P4 implementations.  These are
/// SplitMix64-style finalizers — stand-ins for the CRC hash externs a real
/// target provides.
[[nodiscard]] std::uint64_t sparse_hash1(std::uint64_t key) noexcept;
[[nodiscard]] std::uint64_t sparse_hash2(std::uint64_t key) noexcept;

class SparseFreqDist {
 public:
  /// `capacity` must be a power of two (hash masking, no modulo — P4 has
  /// neither division nor modulo).  `probes` is the number of alternative
  /// slots tried per key (unrolled in the data plane; 2 by default).
  explicit SparseFreqDist(std::size_t capacity, unsigned probes = 2,
                          OverflowPolicy policy = OverflowPolicy::kThrow);

  /// Observe one occurrence of `key` (any 64-bit value — a flow id, a full
  /// IP, a 64-bit header field: the domains Section 2 said were impractical
  /// to track densely).
  void observe(Value key);

  /// Frequency of `key`, 0 if never observed or evicted to overflow.
  [[nodiscard]] Count frequency(Value key) const;

  /// Statistics over the *tracked* frequencies (see overflow() for the
  /// mass that did not fit).
  [[nodiscard]] const RunningStats& stats() const noexcept { return stats_; }

  /// Observations that found no slot (their keys are not tracked).
  [[nodiscard]] Count overflow() const noexcept { return overflow_; }

  /// Distinct keys currently tracked.
  [[nodiscard]] Count distinct() const noexcept { return stats_.n(); }

  /// Total tracked observations ( == stats().xsum() ).
  [[nodiscard]] Count total() const noexcept { return total_; }

  [[nodiscard]] std::size_t capacity() const noexcept { return slots_.size(); }
  [[nodiscard]] unsigned probes() const noexcept { return probes_; }

  /// Is `key`'s frequency an upper outlier among tracked frequencies
  /// (same check as FreqDist::frequency_outlier)?
  [[nodiscard]] OutlierVerdict frequency_outlier(Value key,
                                                 unsigned k_sigma = 2) const;

  /// Memory the equivalent dense FreqDist would need for this key domain,
  /// for the memory-saving comparison of bench_sparse.
  [[nodiscard]] std::size_t state_bytes() const noexcept {
    return slots_.size() * sizeof(Slot);
  }

  void reset() noexcept;

  /// Tracked (key, frequency) pairs — what the controller reads when it
  /// drills into an alert.
  [[nodiscard]] std::vector<std::pair<Value, Count>> entries() const;

 private:
  struct Slot {
    Value key_plus_one = 0;  ///< 0 = empty (keys stored as key + 1)
    Count count = 0;
  };

  /// Probe sequence for `key`: slot indices, length == probes_.
  [[nodiscard]] std::size_t probe_index(Value key, unsigned i) const noexcept;

  std::vector<Slot> slots_;
  unsigned probes_;
  RunningStats stats_;
  Count total_ = 0;
  Count overflow_ = 0;
};

}  // namespace stat4

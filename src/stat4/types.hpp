// Common vocabulary types for the Stat4 library.
//
// Stat4 mirrors the P4 library described in "Stats 101 in P4: Towards
// In-Switch Anomaly Detection" (HotNets '21).  Everything in the public API
// is integer-valued: the paper's central idea is to redefine statistical
// measures over the N-scaled distribution NX = {N*x1, ..., N*xN} so that no
// division, square root, or floating point is ever required on the data path.
#pragma once

#include <cstdint>
#include <limits>
#include <stdexcept>
#include <string>

namespace stat4 {

/// Raw value of interest extracted from traffic (a counter sample, a rate,
/// a header-field value, ...).  Values are non-negative by construction in
/// every use case of the paper (Table 1); the library stores them unsigned.
using Value = std::uint64_t;

/// Accumulator type for sums and sums of squares.  Signed so that the
/// variance identity  var(NX) = N*Xsumsq - Xsum^2  can be evaluated without
/// wrapping surprises; overflow is detected explicitly (see OverflowPolicy).
using Accum = std::int64_t;

/// Count of values in a distribution (the paper's N).
using Count = std::uint64_t;

/// Simulation / wall time in integer nanoseconds.  Kept integral so that the
/// whole system (library, switch substrate, network simulator) is
/// deterministic and replayable.
using TimeNs = std::int64_t;

inline constexpr TimeNs kMicrosecond = 1'000;
inline constexpr TimeNs kMillisecond = 1'000'000;
inline constexpr TimeNs kSecond = 1'000'000'000;

/// How arithmetic overflow in the accumulators is handled.
///
/// A P4 target would silently wrap; that is never what an anomaly detector
/// wants, so the library makes the policy explicit.
enum class OverflowPolicy {
  kThrow,     ///< throw stat4::OverflowError (default; loudest)
  kSaturate,  ///< clamp the accumulator at its numeric limit
};

/// Thrown when an accumulator update would overflow under
/// OverflowPolicy::kThrow.
class OverflowError : public std::overflow_error {
 public:
  explicit OverflowError(const std::string& what) : std::overflow_error(what) {}
};

/// Thrown on API misuse (out-of-range value, bad configuration, ...).
class UsageError : public std::invalid_argument {
 public:
  explicit UsageError(const std::string& what) : std::invalid_argument(what) {}
};

}  // namespace stat4

#include "stat4/engine.hpp"

#include <algorithm>

#include "telemetry/telemetry.hpp"

namespace stat4 {

#if STAT4_TELEMETRY_ENABLED
namespace {

/// Process-wide engine metrics, resolved once (each ShardedEngine shard is
/// one Stat4Engine, so fleet-wide packet work sums here).
struct EngineMetrics {
  telemetry::Counter& packets;
  telemetry::Histogram& process_ns;

  static EngineMetrics& get() {
    static EngineMetrics m{
        telemetry::MetricsRegistry::global().counter("stat4.engine.packets"),
        telemetry::MetricsRegistry::global().histogram(
            "stat4.engine.process_ns")};
    return m;
  }
};

/// Packets per flush of the per-engine tick into the shared counter.  A
/// shard's process() can be ~25ns of real work; even one uncontended
/// atomic RMW per packet is a measurable tax at that scale, so the count
/// is kept in a plain member (the engine is single-threaded by contract)
/// and published every kPacketBatch packets and on advance_time().
constexpr std::uint32_t kPacketBatch = 256;

}  // namespace
#endif  // STAT4_TELEMETRY_ENABLED

Stat4Engine::Stat4Engine(OverflowPolicy policy) : policy_(policy) {}

DistId Stat4Engine::add_freq_dist(std::size_t domain_size) {
  DistSlot s;
  s.dist = std::make_unique<FreqDist>(domain_size, policy_);
  invalidate_resolved();
  dists_.push_back(std::move(s));
  return static_cast<DistId>(dists_.size() - 1);
}

DistId Stat4Engine::add_sliding_freq_dist(std::size_t domain_size,
                                          std::size_t window) {
  DistSlot s;
  s.dist = std::make_unique<SlidingFreqDist>(domain_size, window, policy_);
  invalidate_resolved();
  dists_.push_back(std::move(s));
  return static_cast<DistId>(dists_.size() - 1);
}

DistId Stat4Engine::add_interval_window(std::size_t num_intervals,
                                        TimeNs interval_len,
                                        unsigned k_sigma) {
  DistSlot s;
  s.k_sigma = k_sigma;
  s.dist = std::make_unique<IntervalWindow>(num_intervals, interval_len,
                                            k_sigma, policy_);
  invalidate_resolved();
  dists_.push_back(std::move(s));
  return static_cast<DistId>(dists_.size() - 1);
}

DistId Stat4Engine::add_value_stats() {
  DistSlot s;
  s.dist = std::make_unique<RunningStats>(policy_);
  invalidate_resolved();
  dists_.push_back(std::move(s));
  return static_cast<DistId>(dists_.size() - 1);
}

Stat4Engine::DistSlot& Stat4Engine::slot(DistId id) {
  if (id >= dists_.size()) throw UsageError("stat4: unknown distribution id");
  return dists_[id];
}

const Stat4Engine::DistSlot& Stat4Engine::slot(DistId id) const {
  if (id >= dists_.size()) throw UsageError("stat4: unknown distribution id");
  return dists_[id];
}

namespace {
template <typename T, typename Variant>
T& get_dist(Variant& v, const char* kind) {
  auto* p = std::get_if<std::unique_ptr<T>>(&v);
  if (p == nullptr || *p == nullptr) {
    throw UsageError(std::string("stat4: distribution is not a ") + kind);
  }
  return **p;
}
}  // namespace

FreqDist& Stat4Engine::freq(DistId id) {
  return get_dist<FreqDist>(slot(id).dist, "FreqDist");
}
SlidingFreqDist& Stat4Engine::sliding(DistId id) {
  return get_dist<SlidingFreqDist>(slot(id).dist, "SlidingFreqDist");
}
const SlidingFreqDist& Stat4Engine::sliding(DistId id) const {
  return get_dist<SlidingFreqDist>(const_cast<DistSlot&>(slot(id)).dist,
                                   "SlidingFreqDist");
}
const FreqDist& Stat4Engine::freq(DistId id) const {
  return get_dist<FreqDist>(const_cast<DistSlot&>(slot(id)).dist, "FreqDist");
}
IntervalWindow& Stat4Engine::window(DistId id) {
  return get_dist<IntervalWindow>(slot(id).dist, "IntervalWindow");
}
const IntervalWindow& Stat4Engine::window(DistId id) const {
  return get_dist<IntervalWindow>(const_cast<DistSlot&>(slot(id)).dist,
                                  "IntervalWindow");
}
RunningStats& Stat4Engine::values(DistId id) {
  return get_dist<RunningStats>(slot(id).dist, "RunningStats");
}
const RunningStats& Stat4Engine::values(DistId id) const {
  return get_dist<RunningStats>(const_cast<DistSlot&>(slot(id)).dist,
                                "RunningStats");
}

void Stat4Engine::ensure_interval_callback(DistId window_id) {
  DistSlot& s = slot(window_id);
  IntervalWindow& w = get_dist<IntervalWindow>(s.dist, "IntervalWindow");
  w.set_on_interval([this, window_id](const IntervalReport& r) {
    DistSlot& ws = slot(window_id);
    if (ws.latched) return;
    const IntervalWindow& win =
        get_dist<IntervalWindow>(ws.dist, "IntervalWindow");
    // The report's verdict was computed against the pre-insertion history;
    // completed() already includes the closed interval, hence the +1.
    if (win.completed() < ws.min_history + 1) return;
    if (ws.spike_check && r.upper.is_outlier) {
      ws.latched = true;
      emit(AlertKind::kRateSpike, window_id, r.value, r.upper, r.start);
      return;
    }
    if (ws.stall_check) {
      // Lower check against the post-insertion stats: a collapse to ~zero
      // stays a collapse whether or not the empty interval itself joined
      // the distribution.
      const OutlierVerdict low =
          win.stats().lower_outlier(r.value, ws.k_sigma);
      if (low.is_outlier) {
        ws.latched = true;
        emit(AlertKind::kRateStall, window_id, r.value, low, r.start);
      }
    }
  });
}

void Stat4Engine::enable_spike_check(DistId window_id,
                                     std::size_t min_history) {
  DistSlot& s = slot(window_id);
  s.spike_check = true;
  s.min_history = std::max(s.min_history, min_history);
  ensure_interval_callback(window_id);
}

void Stat4Engine::enable_stall_check(DistId window_id,
                                     std::size_t min_history) {
  DistSlot& s = slot(window_id);
  s.stall_check = true;
  s.min_history = std::max(s.min_history, min_history);
  ensure_interval_callback(window_id);
}

void Stat4Engine::enable_value_outlier_check(DistId values_id, Count min_n) {
  DistSlot& s = slot(values_id);
  get_dist<RunningStats>(s.dist, "RunningStats");  // type check
  s.value_check = true;
  s.min_total = min_n;
}

void Stat4Engine::enable_imbalance_check(DistId freq_id, Count min_total) {
  DistSlot& s = slot(freq_id);
  // Either a plain or a sliding frequency distribution qualifies.
  if (!std::holds_alternative<std::unique_ptr<FreqDist>>(s.dist) &&
      !std::holds_alternative<std::unique_ptr<SlidingFreqDist>>(s.dist)) {
    throw UsageError("stat4: distribution is not a frequency distribution");
  }
  s.imbalance_check = true;
  s.min_total = min_total;
}

void Stat4Engine::rearm(DistId id) { slot(id).latched = false; }

BindingId Stat4Engine::add_binding(const BindingEntry& entry) {
  slot(entry.dist);  // validate the target exists
  invalidate_resolved();
  bindings_.emplace_back(entry);
  return static_cast<BindingId>(bindings_.size() - 1);
}

void Stat4Engine::modify_binding(BindingId id, const BindingEntry& entry) {
  if (id >= bindings_.size() || !bindings_[id].has_value()) {
    throw UsageError("stat4: unknown binding id");
  }
  slot(entry.dist);
  invalidate_resolved();
  bindings_[id] = entry;
}

void Stat4Engine::remove_binding(BindingId id) {
  if (id >= bindings_.size() || !bindings_[id].has_value()) {
    throw UsageError("stat4: unknown binding id");
  }
  invalidate_resolved();
  bindings_[id].reset();
}

std::size_t Stat4Engine::active_bindings() const noexcept {
  std::size_t n = 0;
  for (const auto& b : bindings_) {
    if (b.has_value() && b->enabled) ++n;
  }
  return n;
}

void Stat4Engine::apply(const BindingEntry& b, DistSlot& s,
                        const PacketFields& pkt) {
  const Value v = b.extractor.extract(pkt);
  switch (b.kind) {
    case UpdateKind::kFrequencyObserve: {
      Count total = 0;
      Count distinct = 0;
      OutlierVerdict verdict;
      if (auto* sl =
              std::get_if<std::unique_ptr<SlidingFreqDist>>(&s.dist)) {
        (*sl)->observe(v);
        total = (*sl)->total();
        distinct = (*sl)->distinct();
        if (s.imbalance_check) verdict = (*sl)->frequency_outlier(v, s.k_sigma);
      } else {
        FreqDist& d = get_dist<FreqDist>(s.dist, "FreqDist");
        d.observe(v);
        total = d.total();
        distinct = d.distinct();
        if (s.imbalance_check) verdict = d.frequency_outlier(v, s.k_sigma);
      }
      if (s.imbalance_check && !s.latched && total >= s.min_total &&
          distinct >= 2 && verdict.is_outlier) {
        s.latched = true;
        emit(AlertKind::kFrequencyImbalance, b.dist, v, verdict,
             pkt.timestamp);
      }
      break;
    }
    case UpdateKind::kIntervalCount:
      get_dist<IntervalWindow>(s.dist, "IntervalWindow")
          .record(pkt.timestamp, 1);
      break;
    case UpdateKind::kIntervalSum:
      get_dist<IntervalWindow>(s.dist, "IntervalWindow")
          .record(pkt.timestamp, v);
      break;
    case UpdateKind::kValueSample: {
      RunningStats& stats = get_dist<RunningStats>(s.dist, "RunningStats");
      // Check BEFORE inserting so the sample is judged against history.
      if (s.value_check && !s.latched && stats.n() >= s.min_total) {
        const OutlierVerdict verdict = stats.upper_outlier(v, s.k_sigma);
        if (verdict.is_outlier) {
          s.latched = true;
          emit(AlertKind::kValueOutlier, b.dist, v, verdict, pkt.timestamp);
        }
      }
      stats.add(v);
      break;
    }
  }
}

void Stat4Engine::refresh_resolved() {
  resolved_.clear();
  for (const auto& b : bindings_) {
    if (b.has_value() && b->enabled) {
      resolved_.push_back(ResolvedBinding{&*b, &dists_[b->dist]});
    }
  }
  resolved_gen_ = mutation_gen_;
}

void Stat4Engine::process(const PacketFields& pkt) {
  // Per-packet cost: one plain increment + compare on a member the owning
  // thread already has in cache.  The shared striped counter sees one RMW
  // per kPacketBatch packets, and the latency span times the one packet
  // that opens each batch (1-in-256, unbiased for steady traffic) so the
  // clock never enters the other 255 per-packet paths.
  STAT4_TELEMETRY_ONLY(
      const bool t_sampled = (t_tick_ == 0);
      const std::uint64_t t_start = t_sampled ? telemetry::now_ns() : 0;
      if (++t_tick_ == kPacketBatch) {
        EngineMetrics::get().packets.add(t_tick_);
        t_tick_ = 0;
      })
  if (resolved_gen_ != mutation_gen_) refresh_resolved();
  last_time_ = pkt.timestamp;
  for (const ResolvedBinding& rb : resolved_) {
    if (rb.entry->match.matches(pkt)) apply(*rb.entry, *rb.slot, pkt);
  }
  STAT4_TELEMETRY_ONLY(
      if (t_sampled) {
        EngineMetrics::get().process_ns.record(telemetry::now_ns() -
                                               t_start);
      })
}

void Stat4Engine::process_batch(const PacketFields* pkts, std::size_t n) {
  if (n == 0) return;
  STAT4_TELEMETRY_ONLY(
      static telemetry::Histogram& t_batch =
          telemetry::MetricsRegistry::global().histogram(
              "stat4.engine.batch_size");
      t_batch.record(n);
      // Same aggregate accounting as the scalar tick: publish whole
      // kPacketBatch multiples, keep the residue in the plain member.
      const std::uint64_t t_total = t_tick_ + n;
      if (t_total >= kPacketBatch) {
        EngineMetrics::get().packets.add(t_total - (t_total % kPacketBatch));
      }
      t_tick_ = static_cast<std::uint32_t>(t_total % kPacketBatch);)
  if (resolved_gen_ != mutation_gen_) refresh_resolved();
  for (std::size_t i = 0; i < n; ++i) {
    const PacketFields& pkt = pkts[i];
    last_time_ = pkt.timestamp;
    for (const ResolvedBinding& rb : resolved_) {
      if (rb.entry->match.matches(pkt)) apply(*rb.entry, *rb.slot, pkt);
    }
    // An alert sink may mutate bindings mid-batch (the drill-down
    // controller re-binds on alert); the generation check makes the rest
    // of the batch see the mutation exactly as a scalar loop would.
    if (resolved_gen_ != mutation_gen_) [[unlikely]] refresh_resolved();
  }
}

void Stat4Engine::advance_time(TimeNs now) {
  // A natural quiescent point: publish any partial packet batch so counts
  // are exact whenever the workload lets time advance.
  STAT4_TELEMETRY_ONLY(
      if (t_tick_ != 0) {
        EngineMetrics::get().packets.add(t_tick_);
        t_tick_ = 0;
      })
  last_time_ = now;
  for (auto& s : dists_) {
    if (auto* w = std::get_if<std::unique_ptr<IntervalWindow>>(&s.dist)) {
      (*w)->advance_to(now);
    }
  }
}

void Stat4Engine::emit(AlertKind kind, DistId id, Value value,
                       const OutlierVerdict& verdict, TimeNs time) {
  STAT4_TELEMETRY_ONLY(
      static telemetry::Counter& t_alerts =
          telemetry::MetricsRegistry::global().counter(
              "stat4.engine.alerts");
      t_alerts.add();)
  Alert a;
  a.kind = kind;
  a.dist = id;
  a.value = value;
  a.verdict = verdict;
  a.time = time;
  a.seq = alert_seq_++;
  if (alert_sink_) alert_sink_(a);
}

}  // namespace stat4

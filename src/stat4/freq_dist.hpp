// Frequency distributions: one counter per possible value of interest.
//
// The paper's "Approach" (Section 2) keeps one counter per value xi and
// updates counters plus statistical measures on every packet.  A frequency
// distribution is the X whose elements are the frequencies themselves (e.g.
// SYN vs data packets, packets per destination); its incremental update rule
//
//     Xsum   += 1
//     Xsumsq += (f+1)^2 - f^2 = 2f + 1
//     N      += 1   iff f was 0
//
// avoids rescanning the counters.  FreqDist owns the counter array, a
// RunningStats over the frequencies, and any number of attached percentile
// trackers (median, 90th, ...), all updated per observation in O(1).
#pragma once

#include <cstddef>
#include <memory>
#include <vector>

#include "stat4/percentile.hpp"
#include "stat4/running_stats.hpp"
#include "stat4/types.hpp"

namespace stat4 {

class FreqDist {
 public:
  /// Tracks values in [0, domain_size).  domain_size maps to the paper's
  /// STAT_COUNTER_SIZE compile-time macro; here it is a runtime argument.
  explicit FreqDist(std::size_t domain_size,
                    OverflowPolicy policy = OverflowPolicy::kThrow);

  FreqDist(const FreqDist&) = delete;  // trackers hold a pointer to freqs_
  FreqDist& operator=(const FreqDist&) = delete;
  FreqDist(FreqDist&&) = delete;
  FreqDist& operator=(FreqDist&&) = delete;

  /// Observe one occurrence of value v.  Throws UsageError if v is outside
  /// the domain.
  void observe(Value v);

  /// Retract one occurrence of value v (windowed monitoring).  Throws
  /// UsageError if f[v] is already zero.
  void unobserve(Value v);

  /// Attach a percentile tracker; returns its index for later queries.
  /// Trackers see every subsequent observation.
  std::size_t attach_percentile(Percentile p);

  [[nodiscard]] const PercentileTracker& percentile(std::size_t idx) const;
  [[nodiscard]] PercentileTracker& percentile(std::size_t idx);
  [[nodiscard]] std::size_t percentile_count() const noexcept {
    return trackers_.size();
  }

  [[nodiscard]] Count frequency(Value v) const;
  [[nodiscard]] std::size_t domain_size() const noexcept {
    return freqs_.size();
  }
  [[nodiscard]] const std::vector<Count>& frequencies() const noexcept {
    return freqs_;
  }

  /// Statistics of the frequency distribution itself: n() is the number of
  /// distinct observed values, xsum() the total observation count.
  [[nodiscard]] const RunningStats& stats() const noexcept { return stats_; }

  /// Total number of observations ( == stats().xsum() ).
  [[nodiscard]] Count total() const noexcept { return total_; }

  /// Number of distinct values observed ( == stats().n() ).
  [[nodiscard]] Count distinct() const noexcept { return stats_.n(); }

  /// Is value v's frequency an upper outlier among observed frequencies?
  /// The drill-down case study uses this to spot the hot /24 and the hot
  /// destination:  N * f[v] > Xsum + k * sd(NX) + N.  The trailing +N is one
  /// unit of integer-quantization slack so that a perfectly balanced
  /// round-robin stream (sd ~ 0, counters leapfrogging by one) never
  /// self-triggers.
  [[nodiscard]] OutlierVerdict frequency_outlier(Value v,
                                                 unsigned k_sigma = 2) const;

  void reset() noexcept;

 private:
  std::vector<Count> freqs_;
  RunningStats stats_;
  Count total_ = 0;
  std::vector<std::unique_ptr<PercentileTracker>> trackers_;
};

}  // namespace stat4

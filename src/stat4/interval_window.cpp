#include "stat4/interval_window.hpp"

namespace stat4 {

IntervalWindow::IntervalWindow(std::size_t num_intervals, TimeNs interval_len,
                               unsigned k_sigma, OverflowPolicy policy)
    : ring_(num_intervals, 0),
      len_(interval_len),
      k_sigma_(k_sigma),
      stats_(policy) {
  if (num_intervals == 0) {
    throw UsageError("stat4: IntervalWindow needs at least one interval");
  }
  if (interval_len <= 0) {
    throw UsageError("stat4: IntervalWindow interval length must be positive");
  }
}

void IntervalWindow::record(TimeNs now, Value amount) {
  advance_to(now);
  current_ += amount;
}

void IntervalWindow::advance_to(TimeNs now) {
  if (!started_) {
    // The first event anchors the interval grid.
    current_start_ = now - (now % len_);
    started_ = true;
    return;
  }
  if (now < current_start_) {
    throw UsageError("stat4: IntervalWindow time went backwards");
  }
  while (now >= current_start_ + len_) {
    close_interval();
  }
}

void IntervalWindow::close_interval() {
  IntervalReport report;
  report.start = current_start_;
  report.value = current_;
  report.window_primed = primed();
  // Check the finished interval against the *historical* distribution
  // before it joins it — the paper's "rate higher than the mean of the
  // stored distribution plus two standard deviations".
  report.upper = stats_.upper_outlier(current_, k_sigma_);

  if (primed()) {
    // Ring full: override the oldest counter.  This eviction + insertion is
    // the 12-step dependency chain of the paper's resource analysis.
    stats_.replace(ring_[head_], current_);
  } else {
    stats_.add(current_);
  }
  ring_[head_] = current_;
  head_ = (head_ + 1) % ring_.size();
  ++completed_;
  current_ = 0;
  current_start_ += len_;

  if (on_interval_) on_interval_(report);
}

std::vector<Value> IntervalWindow::history() const {
  std::vector<Value> out;
  const std::size_t n = primed() ? ring_.size() : completed_;
  out.reserve(n);
  // Oldest completed value sits at head_ once primed; otherwise at slot 0.
  const std::size_t start = primed() ? head_ : 0;
  for (std::size_t i = 0; i < n; ++i) {
    out.push_back(ring_[(start + i) % ring_.size()]);
  }
  return out;
}

void IntervalWindow::reset() noexcept {
  for (auto& v : ring_) v = 0;
  head_ = 0;
  completed_ = 0;
  started_ = false;
  current_ = 0;
  current_start_ = 0;
  stats_.reset();
}

}  // namespace stat4

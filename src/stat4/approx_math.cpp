#include "stat4/approx_math.hpp"

#include <bit>

namespace stat4 {

int msb_index(std::uint64_t y) noexcept {
  // Precondition y != 0 documented in the header; returning 0 for y == 0
  // keeps the function total without UB.
  if (y == 0) return 0;
  return 63 - std::countl_zero(y);
}

int msb_index_if_ladder(std::uint64_t y) noexcept {
  // Binary search over halves, exactly the structure a P4 program uses as a
  // sequence of ifs on register values (Section 3, "Lazy computation").
  int pos = 0;
  if (y >= (std::uint64_t{1} << 32)) { y >>= 32; pos += 32; }
  if (y >= (std::uint64_t{1} << 16)) { y >>= 16; pos += 16; }
  if (y >= (std::uint64_t{1} << 8))  { y >>= 8;  pos += 8; }
  if (y >= (std::uint64_t{1} << 4))  { y >>= 4;  pos += 4; }
  if (y >= (std::uint64_t{1} << 2))  { y >>= 2;  pos += 2; }
  if (y >= (std::uint64_t{1} << 1))  { pos += 1; }
  return pos;
}

std::uint64_t approx_sqrt(std::uint64_t y) noexcept {
  if (y <= 1) return y;  // sqrt(0)=0, sqrt(1)=1 exactly

  const int e = msb_index(y);                       // exponent
  const std::uint64_t m = y - (std::uint64_t{1} << e);  // mantissa, e bits

  // Shift the concatenated (exponent || mantissa) string right by one.
  // The exponent halves; its dropped parity bit becomes the mantissa MSB.
  const int e1 = e >> 1;  // new exponent
  std::uint64_t m1 = m >> 1;
  if ((e & 1) != 0 && e >= 1) {
    m1 |= std::uint64_t{1} << (e - 1);  // parity bit enters the mantissa
  }

  // Rebuild: MSB at position e1, with the mantissa's top e1 bits beneath it.
  // The mantissa field is e bits wide, so its top e1 bits are m1 >> (e - e1).
  const std::uint64_t result =
      (std::uint64_t{1} << e1) | (m1 >> (e - e1));
  return result;
}

std::uint64_t approx_square(std::uint64_t y) noexcept {
  if (y == 0) return 0;
  const int e = msb_index(y);
  if (e >= 32) {
    // 2^(2e) does not fit in 64 bits; saturate, as a P4 target's
    // fixed-width register would effectively do after a clamp.
    return ~std::uint64_t{0};
  }
  const std::uint64_t r = y - (std::uint64_t{1} << e);
  // 2^(2e) + 2^(e+1) * r, all shifts.
  return (std::uint64_t{1} << (2 * e)) + (r << (e + 1));
}

std::uint64_t approx_log2(std::uint64_t y) noexcept {
  if (y <= 1) return 0;
  const int e = msb_index(y);
  const std::uint64_t m = y - (std::uint64_t{1} << e);  // e mantissa bits
  // Top kLog2FracBits of the mantissa become the fraction (left-aligned
  // when the mantissa is narrower than the fraction field).
  const std::uint64_t frac =
      e >= static_cast<int>(kLog2FracBits)
          ? m >> (static_cast<unsigned>(e) - kLog2FracBits)
          : m << (kLog2FracBits - static_cast<unsigned>(e));
  return (static_cast<std::uint64_t>(e) << kLog2FracBits) | frac;
}

std::uint64_t exact_isqrt(std::uint64_t y) noexcept {
  if (y < 2) return y;
  // Newton's method seeded from the MSB; converges in a handful of rounds.
  std::uint64_t x = std::uint64_t{1} << ((msb_index(y) / 2) + 1);
  while (true) {
    const std::uint64_t next = (x + y / x) / 2;
    if (next >= x) break;
    x = next;
  }
  return x;
}

}  // namespace stat4

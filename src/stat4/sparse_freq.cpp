#include "stat4/sparse_freq.hpp"

#include <bit>

namespace stat4 {

std::uint64_t sparse_hash1(std::uint64_t key) noexcept {
  // SplitMix64 finalizer.
  std::uint64_t z = key + 0x9E3779B97F4A7C15ull;
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
  return z ^ (z >> 31);
}

std::uint64_t sparse_hash2(std::uint64_t key) noexcept {
  // A second independent mix (Murmur3 finalizer constants).
  std::uint64_t z = key ^ 0xC2B2AE3D27D4EB4Full;
  z = (z ^ (z >> 33)) * 0xFF51AFD7ED558CCDull;
  z = (z ^ (z >> 33)) * 0xC4CEB9FE1A85EC53ull;
  return z ^ (z >> 33);
}

SparseFreqDist::SparseFreqDist(std::size_t capacity, unsigned probes,
                               OverflowPolicy policy)
    : probes_(probes), stats_(policy) {
  if (capacity == 0 || !std::has_single_bit(capacity)) {
    throw UsageError("stat4: sparse capacity must be a power of two");
  }
  if (probes == 0 || probes > 8) {
    throw UsageError("stat4: sparse probes must be in [1, 8]");
  }
  slots_.assign(capacity, Slot{});
}

std::size_t SparseFreqDist::probe_index(Value key, unsigned i) const noexcept {
  const std::uint64_t mask = slots_.size() - 1;
  // Double hashing with an odd step so every probe lands differently even
  // when h2 collides on the mask.
  const std::uint64_t h1 = sparse_hash1(key);
  const std::uint64_t h2 = sparse_hash2(key) | 1;
  return static_cast<std::size_t>((h1 + i * h2) & mask);
}

void SparseFreqDist::observe(Value key) {
  // Pass 1: existing entry?
  for (unsigned i = 0; i < probes_; ++i) {
    Slot& s = slots_[probe_index(key, i)];
    if (s.key_plus_one == key + 1) {
      stats_.bump_frequency(s.count);
      ++s.count;
      ++total_;
      return;
    }
  }
  // Pass 2: free slot?
  for (unsigned i = 0; i < probes_; ++i) {
    Slot& s = slots_[probe_index(key, i)];
    if (s.key_plus_one == 0) {
      s.key_plus_one = key + 1;
      stats_.bump_frequency(0);
      s.count = 1;
      ++total_;
      return;
    }
  }
  // All probe positions taken by other keys: counted but not tracked.
  ++overflow_;
}

Count SparseFreqDist::frequency(Value key) const {
  for (unsigned i = 0; i < probes_; ++i) {
    const Slot& s = slots_[probe_index(key, i)];
    if (s.key_plus_one == key + 1) return s.count;
  }
  return 0;
}

OutlierVerdict SparseFreqDist::frequency_outlier(Value key,
                                                 unsigned k_sigma) const {
  OutlierVerdict verdict = stats_.upper_outlier(frequency(key), k_sigma);
  verdict.threshold += static_cast<Accum>(stats_.n());  // quantization slack
  verdict.is_outlier =
      stats_.n() > 0 && verdict.scaled_value > verdict.threshold;
  return verdict;
}

void SparseFreqDist::reset() noexcept {
  for (auto& s : slots_) s = Slot{};
  stats_.reset();
  total_ = 0;
  overflow_ = 0;
}

std::vector<std::pair<Value, Count>> SparseFreqDist::entries() const {
  std::vector<std::pair<Value, Count>> out;
  for (const auto& s : slots_) {
    if (s.key_plus_one != 0) out.emplace_back(s.key_plus_one - 1, s.count);
  }
  return out;
}

}  // namespace stat4

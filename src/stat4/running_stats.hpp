// Online mean / variance / standard deviation of an N-scaled distribution.
//
// This is the heart of Section 2 of the paper.  For a distribution
// X = {x1, ..., xN} the switch tracks NX = {N*x1, ..., N*xN} implicitly by
// maintaining only three registers:
//
//     N        number of values
//     Xsum     sum of the xi            ==  mean(NX)
//     Xsumsq   sum of the xi^2
//
// from which   var(NX)  = N*Xsumsq - Xsum^2
// and          sd(NX)   = approx_sqrt(var(NX))        (Figure 2 algorithm)
//
// No division anywhere.  Anomaly checks compare *relative* quantities in NX
// units: "is the rate x an outlier?" becomes "is N*x > Xsum + 2*sd(NX)?".
//
// The standard deviation is computed lazily (Section 3): updates only touch
// the three integer registers; the sqrt — whose MSB search is the expensive
// part on a switch — runs at read time and is cached until the next update.
#pragma once

#include <optional>

#include "stat4/types.hpp"

namespace stat4 {

/// Result of an outlier test, carrying the values that were compared so that
/// callers (and alert messages) can report the margin.
struct OutlierVerdict {
  bool is_outlier = false;
  Accum scaled_value = 0;  ///< N * x, the tested value in NX units
  Accum threshold = 0;     ///< Xsum +/- k*sd(NX)
};

/// Online tracker of N, Xsum, Xsumsq and derived N-scaled measures.
///
/// Supports the two update disciplines of the paper:
///  * value distributions   — add(x) appends a new value of interest;
///  * windowed distributions — replace(old, new) evicts the oldest counter
///    (the circular-buffer override of the case study) keeping N constant;
///  * frequency distributions — bump_frequency(old_freq) applies the
///    incremental rule Xsum += 1, Xsumsq += 2*old_freq + 1 when one element's
///    frequency rises by one (FreqDist drives this and manages N).
class RunningStats {
 public:
  explicit RunningStats(OverflowPolicy policy = OverflowPolicy::kThrow)
      : policy_(policy) {}

  /// Append a new value of interest x:  N += 1, Xsum += x, Xsumsq += x^2.
  void add(Value x);

  /// Remove a previously added value (N -= 1).  Throws UsageError if the
  /// tracker is empty.  The caller is responsible for only removing values
  /// that were added; the identity accumulators cannot verify membership.
  void remove(Value x);

  /// Evict `old_value` and add `new_value` keeping N fixed — one step of the
  /// case study's circular-buffer rollover.
  void replace(Value old_value, Value new_value);

  /// Frequency-distribution increment: one element's frequency rises from
  /// `old_freq` to `old_freq + 1`.  Applies Xsum += 1, Xsumsq += 2*old_freq+1
  /// and, iff old_freq == 0, N += 1 (a new distinct element appeared) —
  /// exactly the update rule derived in Section 2.
  void bump_frequency(Value old_freq);

  /// Inverse of bump_frequency (frequency falls from old_freq to old_freq-1;
  /// iff old_freq == 1 the element disappears and N -= 1).  Not used by the
  /// paper's switch programs but required for windowed frequency tracking.
  void drop_frequency(Value old_freq);

  void reset() noexcept;

  [[nodiscard]] Count n() const noexcept { return n_; }
  [[nodiscard]] Accum xsum() const noexcept { return xsum_; }
  [[nodiscard]] Accum xsumsq() const noexcept { return xsumsq_; }

  /// Mean of NX — by construction exactly Xsum.
  [[nodiscard]] Accum mean_nx() const noexcept { return xsum_; }

  /// var(NX) = N*Xsumsq - Xsum^2.  Eagerly recomputable, O(1).
  [[nodiscard]] Accum variance_nx() const;

  /// sd(NX) via the paper's approximate square root, cached lazily.
  [[nodiscard]] Value stddev_nx() const;

  /// sd(NX) via exact integer sqrt — baseline for accuracy comparisons.
  [[nodiscard]] Value stddev_nx_exact() const;

  /// Is x an upper outlier:  N*x > Xsum + k_sigma * sd(NX)?
  [[nodiscard]] OutlierVerdict upper_outlier(Value x,
                                             unsigned k_sigma = 2) const;

  /// Is x a lower outlier:  N*x < Xsum - k_sigma * sd(NX)?
  [[nodiscard]] OutlierVerdict lower_outlier(Value x,
                                             unsigned k_sigma = 2) const;

  /// Division-free mean-vs-target check:  mean(X) compared to T becomes
  /// Xsum <=> N*T in NX units.  Returns negative / zero / positive like a
  /// three-way comparison of mean(X) against target.
  [[nodiscard]] int compare_mean_to(Value target) const;

  [[nodiscard]] OverflowPolicy overflow_policy() const noexcept {
    return policy_;
  }

 private:
  void touch() noexcept { sd_cache_.reset(); }

  OverflowPolicy policy_;
  Count n_ = 0;
  Accum xsum_ = 0;
  Accum xsumsq_ = 0;
  mutable std::optional<Value> sd_cache_;  ///< lazy sd(NX) (Section 3)
};

}  // namespace stat4

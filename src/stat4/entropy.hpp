// Online entropy estimation over frequency distributions.
//
// The paper cites Ding et al. [7] for shift-based function estimation and
// names "traffic classification" and DDoS defence among its use cases; the
// canonical statistic tying both together is the (Shannon) entropy of a
// frequency distribution — e.g. of destination addresses: a volumetric
// attack concentrated on one victim makes the entropy COLLAPSE, while
// address-scanning makes it SPIKE, long before either moves a plain rate
// counter.
//
// The identity making this switch-computable without division:
//
//   H(X) = log2(T) - S/T      with  T = total count,
//                                   S = sum_i f_i * log2(f_i)
//
// S updates incrementally per observation (f -> f+1):
//   S += (f+1)*log2(f+1) - f*log2(f)
// with log2 in kLog2FracBits fixed point from approx_log2 — one MSB search
// and shifts per packet, no division, no loop.
//
// The division by T only appears when READING H; on the switch a threshold
// test avoids it entirely:
//
//   H < theta   <=>   S > T * (log2(T) - theta)
//
// which is one multiply + compare.  EntropyEstimator exposes both the
// threshold test (entropy_below) and a controller-side fractional read.
#pragma once

#include <cstdint>

#include "stat4/freq_dist.hpp"
#include "stat4/types.hpp"

namespace stat4 {

class EntropyEstimator {
 public:
  explicit EntropyEstimator(std::size_t domain_size,
                            OverflowPolicy policy = OverflowPolicy::kThrow);

  /// Observe one occurrence of value v; updates S and T in O(1).
  void observe(Value v);

  /// Retract one occurrence (sliding-window usage).
  void unobserve(Value v);

  /// T — total observations.
  [[nodiscard]] Count total() const noexcept { return total_; }

  /// S = sum f_i * log2(f_i), in kLog2FracBits fixed point.
  [[nodiscard]] std::uint64_t weighted_log_sum() const noexcept { return s_; }

  /// The switch-side check:  H < theta  evaluated division-free as
  /// S > T * (log2(T) - theta).  `theta_fp` is the threshold in the same
  /// fixed point as approx_log2 (theta_fp = theta * 2^kLog2FracBits).
  /// Returns false until at least two observations exist.
  [[nodiscard]] bool entropy_below(std::uint64_t theta_fp) const;

  /// Dual check for scans:  H > theta  <=>  S < T * (log2(T) - theta).
  [[nodiscard]] bool entropy_above(std::uint64_t theta_fp) const;

  /// Controller-side fractional read of the entropy estimate, in bits.
  [[nodiscard]] double entropy_bits() const;

  [[nodiscard]] Count frequency(Value v) const { return dist_.frequency(v); }
  [[nodiscard]] std::size_t domain_size() const noexcept {
    return dist_.domain_size();
  }

  void reset() noexcept;

 private:
  FreqDist dist_;
  Count total_ = 0;
  std::uint64_t s_ = 0;  ///< fixed-point sum of f*log2(f)
};

}  // namespace stat4

// Approximate integer arithmetic implementable on P4 targets.
//
// P4 pipelines offer no division, no square root, and (on some hardware) no
// runtime multiplication.  Section 2 of the paper replaces these with
// shift-based approximations:
//
//  * approx_sqrt   -- the Figure 2 algorithm: view the integer as a
//                     pseudo-float (exponent = MSB position, mantissa = bits
//                     below the MSB), shift the concatenated
//                     (exponent || mantissa) string right by one, and rebuild
//                     an integer from the result.  Accuracy is characterized
//                     in Table 2.
//  * approx_square -- squaring by shifts (after Ding et al. [7]), for targets
//                     that cannot multiply two runtime values.
//  * msb_index     -- most-significant-bit position, the building block of
//                     both; Stat4's P4 code finds it with a sequence of ifs,
//                     mirrored here branch-free for the C++ reference and as
//                     an if-ladder in stat4p4.
#pragma once

#include <cstdint>

namespace stat4 {

/// Position of the most significant set bit of `y` (0-indexed).
/// msb_index(1) == 0, msb_index(106) == 6.  Precondition: y != 0.
[[nodiscard]] int msb_index(std::uint64_t y) noexcept;

/// msb_index computed the way the P4 library does it: a fixed sequence of
/// ifs (binary search over halves), with no compiler intrinsics.  Used to
/// cross-check msb_index and mirrored verbatim by the stat4p4 programs.
[[nodiscard]] int msb_index_if_ladder(std::uint64_t y) noexcept;

/// Approximate integer square root (Figure 2 of the paper).
///
/// Algorithm: let e = msb_index(y) and m = the e bits below the MSB
/// (the mantissa).  Shift the concatenated string (e || m) right by one:
/// the new exponent is e' = e >> 1 and the dropped parity bit of e becomes
/// the new mantissa's MSB.  Rebuild the integer with its MSB at position e'
/// and the mantissa's top e' bits copied beneath it.
///
/// The result interpolates between successive powers 2^(2k); e.g.
/// approx_sqrt(106) == 10 (true sqrt is 10.29...).  Accuracy vs the
/// fractional square root is reproduced by bench_table2_sqrt.
///
/// approx_sqrt(0) == 0 by convention.
[[nodiscard]] std::uint64_t approx_sqrt(std::uint64_t y) noexcept;

/// Approximate squaring using only shifts, for hardware targets that cannot
/// square a value unknown at compile time (Section 2, citing [7]).
///
/// With e = msb_index(y) and r = y - 2^e the remainder below the MSB,
///   y^2 = 2^(2e) + 2^(e+1) * r + r^2  ~=  2^(2e) + 2^(e+1) * r
/// i.e. we keep the exact top two terms and drop only r^2 < 2^(2e).
/// The relative error is below 25% and vanishes as y approaches a power of
/// two.  approx_square(0) == 0.
[[nodiscard]] std::uint64_t approx_square(std::uint64_t y) noexcept;

/// Exact integer square root, floor(sqrt(y)) — the baseline Table 2 compares
/// against (together with the fractional value).  Pure integer Newton
/// iteration; exact for all 64-bit inputs.
[[nodiscard]] std::uint64_t exact_isqrt(std::uint64_t y) noexcept;

/// Number of fractional bits in approx_log2's fixed-point result.
inline constexpr unsigned kLog2FracBits = 8;

/// Approximate log2(y) in fixed point with kLog2FracBits fractional bits,
/// using only shifts and masks (the technique of Ding et al. [7], which the
/// paper cites for shift-based function estimation):
///
///   log2(y) ~= msb(y) + mantissa_top_bits / 2^kLog2FracBits
///
/// i.e. the integer part is the MSB position and the fraction is the linear
/// interpolation given by the bits just below the MSB.  Max error ~0.086
/// (at y midway between powers of two, the classic log-linear bound).
/// approx_log2(0) == 0 by convention; approx_log2(1) == 0 exactly.
[[nodiscard]] std::uint64_t approx_log2(std::uint64_t y) noexcept;

}  // namespace stat4

// Sliding-window frequency distributions.
//
// The plain FreqDist accumulates forever, which suits short-lived bindings
// (the drill-down installs, inspects, re-targets).  Long-standing checks —
// "traffic rate across IPs" as a permanent load-balancing monitor — need
// the distribution to reflect only the recent past, or yesterday's totals
// drown today's imbalance.  SlidingFreqDist keeps the last `window`
// observations in a ring and retracts the oldest one per insertion, keeping
// every statistic (and any attached percentile trackers) exact over exactly
// that window.
//
// A switch implements the ring as one more register array indexed by a
// wrapping head pointer; each packet costs one extra register read/write
// plus the decrement path the library already exposes via
// FreqDist::unobserve — the same machinery as the case study's interval
// ring, applied to values instead of time slots.
#pragma once

#include <vector>

#include "stat4/freq_dist.hpp"
#include "stat4/types.hpp"

namespace stat4 {

class SlidingFreqDist {
 public:
  SlidingFreqDist(std::size_t domain_size, std::size_t window,
                  OverflowPolicy policy = OverflowPolicy::kThrow);

  /// Observe `v`; once the window is full, the oldest observation is
  /// retracted in the same step.
  void observe(Value v);

  [[nodiscard]] Count frequency(Value v) const { return dist_.frequency(v); }
  [[nodiscard]] const RunningStats& stats() const noexcept {
    return dist_.stats();
  }
  [[nodiscard]] Count total() const noexcept { return dist_.total(); }
  [[nodiscard]] Count distinct() const noexcept { return dist_.distinct(); }
  [[nodiscard]] std::size_t window() const noexcept { return ring_.size(); }
  [[nodiscard]] bool primed() const noexcept { return filled_; }
  [[nodiscard]] std::size_t domain_size() const noexcept {
    return dist_.domain_size();
  }

  std::size_t attach_percentile(Percentile p) {
    return dist_.attach_percentile(p);
  }
  [[nodiscard]] const PercentileTracker& percentile(std::size_t idx) const {
    return dist_.percentile(idx);
  }

  [[nodiscard]] OutlierVerdict frequency_outlier(Value v,
                                                 unsigned k_sigma = 2) const {
    return dist_.frequency_outlier(v, k_sigma);
  }

  void reset() noexcept;

 private:
  FreqDist dist_;
  std::vector<Value> ring_;
  std::size_t head_ = 0;
  bool filled_ = false;
};

}  // namespace stat4

#include "stat4/sliding_freq.hpp"

namespace stat4 {

SlidingFreqDist::SlidingFreqDist(std::size_t domain_size, std::size_t window,
                                 OverflowPolicy policy)
    : dist_(domain_size, policy), ring_(window, 0) {
  if (window == 0) {
    throw UsageError("stat4: sliding window must be non-empty");
  }
}

void SlidingFreqDist::observe(Value v) {
  if (filled_) {
    // Retract first so that a window-sized burst of one value cannot
    // momentarily exceed the window in the counters.
    dist_.unobserve(ring_[head_]);
  }
  dist_.observe(v);
  ring_[head_] = v;
  head_ = (head_ + 1) % ring_.size();
  if (head_ == 0 && !filled_) filled_ = true;
}

void SlidingFreqDist::reset() noexcept {
  dist_.reset();
  for (auto& r : ring_) r = 0;
  head_ = 0;
  filled_ = false;
}

}  // namespace stat4

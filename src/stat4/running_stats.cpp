#include "stat4/running_stats.hpp"

#include <limits>

#include "stat4/approx_math.hpp"
#include "stat4/checked_arith.hpp"

namespace stat4 {

namespace {

/// Values must fit in Accum after squaring-ish use; reject absurd inputs
/// early with a clear message instead of deep inside an accumulator update.
Accum to_accum(Value x) {
  if (x > static_cast<Value>(std::numeric_limits<Accum>::max())) {
    throw UsageError("stat4: value of interest exceeds accumulator range");
  }
  return static_cast<Accum>(x);
}

}  // namespace

void RunningStats::add(Value x) {
  const Accum xv = to_accum(x);
  const Accum xsq = resolve_overflow(checked_mul(xv, xv), policy_,
                                     /*toward_max=*/true, "add: x^2");
  xsum_ = resolve_overflow(checked_add(xsum_, xv), policy_, true, "add: Xsum");
  xsumsq_ = resolve_overflow(checked_add(xsumsq_, xsq), policy_, true,
                             "add: Xsumsq");
  ++n_;
  touch();
}

void RunningStats::remove(Value x) {
  if (n_ == 0) throw UsageError("stat4: remove() on empty RunningStats");
  const Accum xv = to_accum(x);
  const Accum xsq = resolve_overflow(checked_mul(xv, xv), policy_, true,
                                     "remove: x^2");
  xsum_ = resolve_overflow(checked_sub(xsum_, xv), policy_, false,
                           "remove: Xsum");
  xsumsq_ = resolve_overflow(checked_sub(xsumsq_, xsq), policy_, false,
                             "remove: Xsumsq");
  --n_;
  touch();
}

void RunningStats::replace(Value old_value, Value new_value) {
  if (n_ == 0) throw UsageError("stat4: replace() on empty RunningStats");
  const Accum ov = to_accum(old_value);
  const Accum nv = to_accum(new_value);
  const Accum osq = resolve_overflow(checked_mul(ov, ov), policy_, true,
                                     "replace: old^2");
  const Accum nsq = resolve_overflow(checked_mul(nv, nv), policy_, true,
                                     "replace: new^2");
  xsum_ = resolve_overflow(checked_add(checked_sub(xsum_, ov).value_or(0), nv),
                           policy_, true, "replace: Xsum");
  xsumsq_ = resolve_overflow(
      checked_add(checked_sub(xsumsq_, osq).value_or(0), nsq), policy_, true,
      "replace: Xsumsq");
  touch();
}

void RunningStats::bump_frequency(Value old_freq) {
  const Accum f = to_accum(old_freq);
  // Xsumsq += (f+1)^2 - f^2 = 2f + 1   (Section 2, frequency distributions)
  const Accum delta = resolve_overflow(
      checked_add(checked_mul(Accum{2}, f).value_or(0), Accum{1}), policy_,
      true, "bump_frequency: 2f+1");
  xsum_ = resolve_overflow(checked_add(xsum_, Accum{1}), policy_, true,
                           "bump_frequency: Xsum");
  xsumsq_ = resolve_overflow(checked_add(xsumsq_, delta), policy_, true,
                             "bump_frequency: Xsumsq");
  if (old_freq == 0) ++n_;  // a new distinct element joined the distribution
  touch();
}

void RunningStats::drop_frequency(Value old_freq) {
  if (old_freq == 0) {
    throw UsageError("stat4: drop_frequency() of an absent element");
  }
  if (n_ == 0) throw UsageError("stat4: drop_frequency() on empty stats");
  const Accum f = to_accum(old_freq);
  // Xsumsq += (f-1)^2 - f^2 = -(2f - 1)
  const Accum delta = resolve_overflow(
      checked_sub(checked_mul(Accum{2}, f).value_or(0), Accum{1}), policy_,
      true, "drop_frequency: 2f-1");
  xsum_ = resolve_overflow(checked_sub(xsum_, Accum{1}), policy_, false,
                           "drop_frequency: Xsum");
  xsumsq_ = resolve_overflow(checked_sub(xsumsq_, delta), policy_, false,
                             "drop_frequency: Xsumsq");
  if (old_freq == 1) --n_;  // the element vanished from the distribution
  touch();
}

void RunningStats::reset() noexcept {
  n_ = 0;
  xsum_ = 0;
  xsumsq_ = 0;
  sd_cache_.reset();
}

Accum RunningStats::variance_nx() const {
  if (n_ > static_cast<Count>(std::numeric_limits<Accum>::max())) {
    throw OverflowError("stat4: N exceeds accumulator range");
  }
  const Accum n = static_cast<Accum>(n_);
  const Accum n_xsumsq = resolve_overflow(checked_mul(n, xsumsq_), policy_,
                                          true, "variance: N*Xsumsq");
  const Accum xsum_sq = resolve_overflow(checked_mul(xsum_, xsum_), policy_,
                                         true, "variance: Xsum^2");
  const Accum var = resolve_overflow(checked_sub(n_xsumsq, xsum_sq), policy_,
                                     false, "variance: difference");
  // With exact arithmetic var(NX) >= 0 always; under kSaturate the identity
  // can go slightly negative — clamp, a negative variance is meaningless.
  return var < 0 ? 0 : var;
}

Value RunningStats::stddev_nx() const {
  if (!sd_cache_.has_value()) {
    sd_cache_ = approx_sqrt(static_cast<Value>(variance_nx()));
  }
  return *sd_cache_;
}

Value RunningStats::stddev_nx_exact() const {
  return exact_isqrt(static_cast<Value>(variance_nx()));
}

OutlierVerdict RunningStats::upper_outlier(Value x, unsigned k_sigma) const {
  OutlierVerdict v;
  const Accum n = static_cast<Accum>(n_);
  v.scaled_value = resolve_overflow(checked_mul(n, to_accum(x)), policy_, true,
                                    "outlier: N*x");
  const Accum margin = resolve_overflow(
      checked_mul(static_cast<Accum>(k_sigma),
                  static_cast<Accum>(stddev_nx()))
          ,
      policy_, true, "outlier: k*sd");
  v.threshold = resolve_overflow(checked_add(xsum_, margin), policy_, true,
                                 "outlier: Xsum + k*sd");
  v.is_outlier = n_ > 0 && v.scaled_value > v.threshold;
  return v;
}

OutlierVerdict RunningStats::lower_outlier(Value x, unsigned k_sigma) const {
  OutlierVerdict v;
  const Accum n = static_cast<Accum>(n_);
  v.scaled_value = resolve_overflow(checked_mul(n, to_accum(x)), policy_, true,
                                    "outlier: N*x");
  const Accum margin = resolve_overflow(
      checked_mul(static_cast<Accum>(k_sigma),
                  static_cast<Accum>(stddev_nx())),
      policy_, true, "outlier: k*sd");
  v.threshold = resolve_overflow(checked_sub(xsum_, margin), policy_, false,
                                 "outlier: Xsum - k*sd");
  v.is_outlier = n_ > 0 && v.scaled_value < v.threshold;
  return v;
}

int RunningStats::compare_mean_to(Value target) const {
  const Accum n = static_cast<Accum>(n_);
  const Accum scaled_target = resolve_overflow(
      checked_mul(n, to_accum(target)), policy_, true, "compare: N*T");
  if (xsum_ < scaled_target) return -1;
  if (xsum_ > scaled_target) return 1;
  return 0;
}

}  // namespace stat4

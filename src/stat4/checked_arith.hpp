// Portable checked 64-bit arithmetic helpers.
//
// Stat4 accumulators hold sums and sums of squares of traffic counters; the
// paper keeps them small by storing orders of magnitude, but a library must
// not silently wrap when a caller feeds it raw byte counts.  These helpers
// detect overflow without relying on compiler intrinsics (C++ Core
// Guidelines P.2: write in ISO Standard C++).
#pragma once

#include <limits>
#include <optional>

#include "stat4/types.hpp"

namespace stat4 {

/// a + b if it fits in Accum, std::nullopt otherwise.
[[nodiscard]] constexpr std::optional<Accum> checked_add(Accum a,
                                                         Accum b) noexcept {
  constexpr Accum kMax = std::numeric_limits<Accum>::max();
  constexpr Accum kMin = std::numeric_limits<Accum>::min();
  if (b > 0 && a > kMax - b) return std::nullopt;
  if (b < 0 && a < kMin - b) return std::nullopt;
  return a + b;
}

/// a - b if it fits in Accum, std::nullopt otherwise.
[[nodiscard]] constexpr std::optional<Accum> checked_sub(Accum a,
                                                         Accum b) noexcept {
  constexpr Accum kMax = std::numeric_limits<Accum>::max();
  constexpr Accum kMin = std::numeric_limits<Accum>::min();
  if (b < 0 && a > kMax + b) return std::nullopt;
  if (b > 0 && a < kMin + b) return std::nullopt;
  return a - b;
}

/// a * b if it fits in Accum, std::nullopt otherwise.
[[nodiscard]] constexpr std::optional<Accum> checked_mul(Accum a,
                                                         Accum b) noexcept {
  if (a == 0 || b == 0) return Accum{0};
  constexpr Accum kMax = std::numeric_limits<Accum>::max();
  constexpr Accum kMin = std::numeric_limits<Accum>::min();
  if (a > 0) {
    if (b > 0) {
      if (a > kMax / b) return std::nullopt;
    } else {
      if (b < kMin / a) return std::nullopt;
    }
  } else {
    if (b > 0) {
      if (a < kMin / b) return std::nullopt;
    } else {
      if (a != 0 && b < kMax / a) return std::nullopt;
    }
  }
  return a * b;
}

/// Resolve an optional arithmetic result under an OverflowPolicy.
/// Returns the value, the saturation limit, or throws OverflowError.
/// `toward_max` selects which limit kSaturate clamps to.
[[nodiscard]] inline Accum resolve_overflow(std::optional<Accum> r,
                                            OverflowPolicy policy,
                                            bool toward_max,
                                            const char* op) {
  if (r.has_value()) return *r;
  if (policy == OverflowPolicy::kSaturate) {
    return toward_max ? std::numeric_limits<Accum>::max()
                      : std::numeric_limits<Accum>::min();
  }
  throw OverflowError(std::string("stat4 accumulator overflow in ") + op);
}

}  // namespace stat4

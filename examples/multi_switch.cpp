// Network-wide detection across multiple switches (Section 5).
//
// "A full exploration of how to analyze a wider range of distributions,
// possibly performing statistical analyses across multiple switches, is an
// interesting direction for future work."
//
// Scenario: a server farm is split across two edge switches (A: subnets
// 10.0.1-3, B: subnets 10.0.4-6), each running the Stat4 rate monitor on
// its own traffic.  Two anomalies are injected:
//
//   1. a LOCAL spike to one destination behind switch A — only A alerts;
//      the controller treats it as a single-switch event;
//   2. a DISTRIBUTED surge spread across destinations behind BOTH switches —
//      both alert within one interval of each other; the controller
//      correlates the digests into one network-wide event and reports the
//      combined magnitude.
//
// Usage:  multi_switch [seed]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <vector>

#include "netsim/netsim.hpp"
#include "p4sim/craft.hpp"
#include "stat4p4/stat4p4.hpp"

namespace {

using p4sim::ipv4;
using stat4::kMillisecond;
using stat4::kSecond;
using stat4::TimeNs;

struct Edge {
  // 4-sigma spike checks: with destinations drawn at random, each edge's
  // per-interval count is binomial noise around the mean, and a 2-sigma
  // check probed every interval would eventually self-trigger (the same
  // multiple-comparisons effect as the SYN-flood example).
  explicit Edge(const char* label)
      : name(label), app({4, 256, /*k_sigma=*/4}) {
    app.install_forward(ipv4(10, 0, 0, 0), 8, 1);
    app.install_rate_monitor(ipv4(10, 0, 0, 0), 8, /*dist=*/0,
                             8 * static_cast<std::uint64_t>(kMillisecond),
                             100, 8);
  }
  const char* name;
  stat4p4::MonitorApp app;
};

struct AlertRecord {
  const char* sw;
  TimeNs time;
  std::uint64_t magnitude;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  netsim::Rng rng(seed);
  std::printf("Multi-switch correlation (Section 5), seed %" PRIu64 "\n\n",
              seed);

  netsim::Simulator sim;
  netsim::Network net(sim);
  Edge a("switch-A");
  Edge b("switch-B");

  const auto node_a = net.add_node(std::make_unique<netsim::P4SwitchNode>(a.app.sw()));
  const auto node_b = net.add_node(std::make_unique<netsim::P4SwitchNode>(b.app.sw()));
  const auto sink_a = net.add_node(std::make_unique<netsim::HostNode>());
  const auto sink_b = net.add_node(std::make_unique<netsim::HostNode>());
  net.link(node_a, 1, sink_a, 0, 50'000);
  net.link(node_b, 1, sink_b, 0, 50'000);

  // The "controller": collects alerts from both switches and correlates
  // events that land within one monitoring interval of each other.
  std::vector<AlertRecord> alerts;
  auto hook = [&](Edge& e, netsim::NodeId node) {
    net.node<netsim::P4SwitchNode>(node).set_digest_sink(
        [&](const p4sim::Digest& d) {
          if (d.id == stat4p4::kDigestRateSpike) {
            alerts.push_back({e.name, d.time, d.payload[1]});
            std::printf("t=%8.1f ms  %s: RATE-SPIKE digest (interval count "
                        "%" PRIu64 ")\n",
                        static_cast<double>(d.time) / 1e6, e.name,
                        d.payload[1]);
          }
        });
  };
  hook(a, node_a);
  hook(b, node_b);

  // Baseline: uniform traffic to all 36 destinations, routed to the edge
  // switch owning each destination's subnet.
  auto route = [&](p4sim::Packet pkt) {
    const auto parsed = p4sim::parse(pkt);
    const auto subnet = (parsed.ipv4->dst >> 8) & 0xFF;
    net.inject(subnet <= 3 ? node_a : node_b, 0, std::move(pkt));
  };
  netsim::PacketPump pump(sim, route);
  std::vector<std::uint32_t> all_dests;
  for (unsigned s = 1; s <= 6; ++s) {
    for (unsigned h = 1; h <= 6; ++h) all_dests.push_back(ipv4(10, 0, s, h));
  }
  pump.launch(0, 0, 40'000,
              netsim::uniform_udp_factory(rng, ipv4(1, 1, 1, 1), all_dests));

  // Anomaly 1 at t=1s: local spike behind switch A only.
  const TimeNs local_start = 1 * kSecond;
  pump.launch(local_start, local_start + 500 * kMillisecond, 5'000,
              netsim::fixed_udp_factory(ipv4(2, 2, 2, 2), ipv4(10, 0, 2, 3)));

  // Anomaly 2 at t=3s: distributed surge across BOTH halves of the farm.
  const TimeNs dist_start = 3 * kSecond;
  std::vector<std::uint32_t> half_a{ipv4(10, 0, 1, 1), ipv4(10, 0, 2, 2),
                                    ipv4(10, 0, 3, 3)};
  std::vector<std::uint32_t> half_b{ipv4(10, 0, 4, 4), ipv4(10, 0, 5, 5),
                                    ipv4(10, 0, 6, 6)};
  pump.launch(dist_start, 0, 5'000,
              netsim::uniform_udp_factory(rng, ipv4(3, 3, 3, 3), half_a));
  pump.launch(dist_start, 0, 5'000,
              netsim::uniform_udp_factory(rng, ipv4(3, 3, 3, 3), half_b));

  // Phase 1: run past the local spike; exactly switch A must have alerted.
  sim.run_until(2 * kSecond);
  const auto phase1 = alerts;
  bool ok = phase1.size() == 1 && std::string(phase1[0].sw) == "switch-A";
  std::printf("\nphase 1 (local spike): %zu alert(s), from %s -> %s\n\n",
              phase1.size(), phase1.empty() ? "-" : phase1[0].sw,
              ok ? "correctly localized to switch A" : "UNEXPECTED");

  // Re-arm both switches for phase 2.
  a.app.rearm(0);
  b.app.rearm(0);
  alerts.clear();

  // Phase 2: run past the distributed surge; both switches must alert, and
  // the digests must land within one interval of each other.
  sim.run_until(4 * kSecond);
  pump.stop_all();
  sim.run();

  bool saw_a = false;
  bool saw_b = false;
  TimeNs ta = 0;
  TimeNs tb = 0;
  std::uint64_t combined = 0;
  for (const auto& rec : alerts) {
    if (std::string(rec.sw) == "switch-A" && !saw_a) {
      saw_a = true;
      ta = rec.time;
      combined += rec.magnitude;
    }
    if (std::string(rec.sw) == "switch-B" && !saw_b) {
      saw_b = true;
      tb = rec.time;
      combined += rec.magnitude;
    }
  }
  const bool correlated =
      saw_a && saw_b && std::abs(ta - tb) <= 16 * kMillisecond;
  std::printf("\nphase 2 (distributed surge): A=%s B=%s, digests %.1f ms "
              "apart\n",
              saw_a ? "alerted" : "silent", saw_b ? "alerted" : "silent",
              saw_a && saw_b ? static_cast<double>(std::abs(ta - tb)) / 1e6
                             : -1.0);
  if (correlated) {
    std::printf("controller correlation: ONE network-wide event, combined "
                "magnitude %" PRIu64 " pkts/interval across 2 switches\n",
                combined);
  }
  ok = ok && correlated;
  std::printf("\n%s\n", ok ? "MULTI-SWITCH CORRELATION SUCCEEDED."
                           : "MULTI-SWITCH CORRELATION FAILED");
  return ok ? 0 : 1;
}

// Network-wide detection across multiple switches (Section 5) — on the
// threaded fleet runtime.
//
// "A full exploration of how to analyze a wider range of distributions,
// possibly performing statistical analyses across multiple switches, is an
// interesting direction for future work."
//
// Scenario: a server farm is split across two edge switches (A: subnets
// 10.0.1-3, B: subnets 10.0.4-6).  Each switch runs the Stat4 rate monitor
// ON ITS OWN WORKER THREAD (runtime::FleetRunner) — the Figure 1c shape:
// switches process traffic independently and only anomaly digests travel to
// the controller, which correlates them (control::FleetCorrelator).  Two
// anomalies are injected:
//
//   1. a LOCAL spike to one destination behind switch A — only A alerts;
//      the controller treats it as a single-switch event;
//   2. a DISTRIBUTED surge spread across destinations behind BOTH switches —
//      both alert within one interval of each other; the controller
//      correlates the digests into one network-wide event and reports the
//      combined magnitude.
//
// Usage:  multi_switch [seed]
#include <algorithm>
#include <cinttypes>
#include <cstdio>
#include <cstdlib>
#include <random>
#include <vector>

#include "p4sim/craft.hpp"
#include "runtime/runtime.hpp"
#include "stat4p4/stat4p4.hpp"

namespace {

using p4sim::ipv4;
using stat4::kMillisecond;
using stat4::kSecond;
using stat4::TimeNs;

struct Edge {
  // 4-sigma spike checks: with destinations drawn at random, each edge's
  // per-interval count is binomial noise around the mean, and a 2-sigma
  // check probed every interval would eventually self-trigger (the same
  // multiple-comparisons effect as the SYN-flood example).
  explicit Edge(const char* label)
      : name(label), app({4, 256, /*k_sigma=*/4}) {
    app.install_forward(ipv4(10, 0, 0, 0), 8, 1);
    app.install_rate_monitor(ipv4(10, 0, 0, 0), 8, /*dist=*/0,
                             8 * static_cast<std::uint64_t>(kMillisecond),
                             100, 8);
  }
  const char* name;
  stat4p4::MonitorApp app;
};

struct TimedPacket {
  TimeNs time;
  std::uint32_t src;
  std::uint32_t dst;
};

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 3;
  std::mt19937_64 rng(seed);
  std::printf("Multi-switch correlation (Section 5), seed %" PRIu64
              ", one worker thread per switch\n\n",
              seed);

  Edge a("switch-A");
  Edge b("switch-B");

  runtime::FleetRunner::Config cfg;
  cfg.queue_capacity = 1024;
  cfg.policy = runtime::FleetRunner::Policy::kBlock;  // lossless replay
  runtime::FleetRunner runner(cfg);
  const auto sw_a = runner.add_switch(a.app);
  const auto sw_b = runner.add_switch(b.app);

  // The controller: digests from both switches land — time-ordered — in the
  // fleet correlator, which folds same-kind digests within one window into
  // one event and classifies it local vs network-wide.
  control::FleetCorrelator correlator(16 * kMillisecond);
  std::vector<control::FleetEvent> events;
  correlator.set_event_sink([&](const control::FleetEvent& e) {
    events.push_back(e);
    std::printf("t=%8.1f ms  controller: %s event, %zu switch(es), "
                "combined magnitude %" PRIu64 " pkts/interval\n",
                static_cast<double>(e.last_time) / 1e6,
                e.network_wide() ? "NETWORK-WIDE" : "local",
                e.switches.size(), e.combined_magnitude);
  });
  runner.set_digest_sink([&](control::SwitchId sw, const p4sim::Digest& d) {
    if (d.id == stat4p4::kDigestRateSpike) {
      std::printf("t=%8.1f ms  %s: RATE-SPIKE digest (interval count "
                  "%" PRIu64 ")\n",
                  static_cast<double>(d.time) / 1e6,
                  sw == sw_a ? "switch-A" : "switch-B", d.payload[1]);
    }
  });

  // Build the 4.5 s traffic timeline up front, then replay it through the
  // fleet: ~20k pps baseline to 36 destinations, plus the two anomalies.
  std::vector<std::uint32_t> all_dests;
  for (unsigned s = 1; s <= 6; ++s) {
    for (unsigned h = 1; h <= 6; ++h) all_dests.push_back(ipv4(10, 0, s, h));
  }
  const TimeNs run_end = 4500 * kMillisecond;
  std::vector<TimedPacket> timeline;
  for (TimeNs t = 0; t < run_end;
       t += (40 + static_cast<TimeNs>(rng() % 21)) * 1000) {  // 40-60 us
    timeline.push_back({t, ipv4(1, 1, 1, 1),
                        all_dests[rng() % all_dests.size()]});
  }
  // Anomaly 1 at t=1s: +5k pps local spike behind switch A only.
  for (TimeNs t = 1 * kSecond; t < 1 * kSecond + 500 * kMillisecond;
       t += 200 * 1000) {
    timeline.push_back({t, ipv4(2, 2, 2, 2), ipv4(10, 0, 2, 3)});
  }
  // Anomaly 2 at t=3s: distributed surge across BOTH halves of the farm.
  const std::vector<std::uint32_t> half_a{
      ipv4(10, 0, 1, 1), ipv4(10, 0, 2, 2), ipv4(10, 0, 3, 3)};
  const std::vector<std::uint32_t> half_b{
      ipv4(10, 0, 4, 4), ipv4(10, 0, 5, 5), ipv4(10, 0, 6, 6)};
  for (TimeNs t = 3 * kSecond; t < 3 * kSecond + 800 * kMillisecond;
       t += 200 * 1000) {
    timeline.push_back({t, ipv4(3, 3, 3, 3), half_a[rng() % half_a.size()]});
    timeline.push_back({t, ipv4(3, 3, 3, 3), half_b[rng() % half_b.size()]});
  }
  std::stable_sort(timeline.begin(), timeline.end(),
                   [](const TimedPacket& x, const TimedPacket& y) {
                     return x.time < y.time;
                   });

  // Route each packet to the edge switch owning its destination subnet.
  runner.start();
  auto replay_until = [&, i = std::size_t{0}](TimeNs end) mutable {
    for (; i < timeline.size() && timeline[i].time < end; ++i) {
      const TimedPacket& tp = timeline[i];
      p4sim::Packet pkt =
          p4sim::make_udp_packet(tp.src, tp.dst, 4000, 5000);
      pkt.ingress_ts = tp.time;
      const auto subnet = (tp.dst >> 8) & 0xFF;
      runner.inject(subnet <= 3 ? sw_a : sw_b, std::move(pkt));
    }
  };

  // Phase 1: run past the local spike; exactly switch A must have alerted.
  replay_until(2 * kSecond);
  runner.flush();                // barrier: both switches fully caught up
  runner.drain_into(correlator); // digests ingested in time order
  correlator.advance(2 * kSecond);
  const auto phase1 = events;
  bool ok = phase1.size() == 1 && !phase1[0].network_wide() &&
            phase1[0].switches == std::vector<control::SwitchId>{sw_a};
  std::printf("\nphase 1 (local spike): %zu event(s) -> %s\n\n",
              phase1.size(),
              ok ? "correctly localized to switch A" : "UNEXPECTED");

  // Re-arm both switches for phase 2 — safe here: flush() was a barrier and
  // this thread is the only producer, so the workers are idle.
  a.app.rearm(0);
  b.app.rearm(0);
  events.clear();

  // Phase 2: run past the distributed surge; both switches must alert and
  // the controller must fold the digests into ONE network-wide event.
  replay_until(run_end);
  runner.flush();
  runner.drain_into(correlator);
  correlator.flush();
  runner.stop();

  const bool correlated = events.size() == 1 && events[0].network_wide() &&
                          events[0].switches.size() == 2;
  std::printf("\nphase 2 (distributed surge): %zu event(s)%s\n",
              events.size(),
              correlated ? ", ONE network-wide event across 2 switches"
                         : " UNEXPECTED");
  const auto totals = runner.totals();
  std::printf("fleet totals: %" PRIu64 " packets injected, %" PRIu64
              " delivered, %" PRIu64 " dropped across %zu threads\n",
              totals.sent, totals.delivered, totals.dropped,
              runner.switch_count());
  ok = ok && correlated && totals.delivered == totals.sent;
  std::printf("\n%s\n", ok ? "MULTI-SWITCH CORRELATION SUCCEEDED."
                           : "MULTI-SWITCH CORRELATION FAILED");
  return ok ? 0 : 1;
}

// Emit the P4_16 source of a Stat4 application.
//
// Generates the case-study switch program (or the echo program with
// `--echo`) as a v1model P4_16 translation unit: the exact pipeline the
// simulator validated, rendered for porting back to bmv2/Tofino.
//
// Usage:  emit_p4_source [--echo] [output.p4]
#include <cstdio>
#include <cstring>
#include <fstream>
#include <iostream>

#include "p4gen/emitter.hpp"
#include "p4sim/craft.hpp"
#include "stat4p4/stat4p4.hpp"

int main(int argc, char** argv) {
  bool echo = false;
  const char* path = nullptr;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--echo") == 0) {
      echo = true;
    } else {
      path = argv[i];
    }
  }

  std::string p4;
  if (echo) {
    stat4p4::EchoApp app;
    p4 = p4gen::emit_p4(app.sw(), {"stat4_echo", true, {}});
  } else {
    stat4p4::MonitorApp app;
    app.install_forward(p4sim::ipv4(10, 0, 0, 0), 8, 1);
    app.install_rate_monitor(
        p4sim::ipv4(10, 0, 0, 0), 8, 0,
        8 * static_cast<std::uint64_t>(stat4::kMillisecond), 100, 8);
    stat4p4::FreqBindingSpec per24;
    per24.dst_prefix = p4sim::ipv4(10, 0, 0, 0);
    per24.dst_prefix_len = 8;
    per24.dist = 1;
    per24.shift = 8;
    app.install_freq_binding(per24);
    p4 = p4gen::emit_p4(app.sw(), {"stat4_case_study", true, {}});
  }

  if (path != nullptr) {
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "cannot open %s\n", path);
      return 1;
    }
    out << p4;
    std::printf("wrote %zu bytes of P4_16 to %s\n", p4.size(), path);
  } else {
    std::cout << p4;
  }
  return 0;
}

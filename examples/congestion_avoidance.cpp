// Rerouting before congestion — the Section 5 application sketch:
//
//   "they could enable the data plane to reroute packets before congestion,
//    when traffic starts to surge"
//
// Topology: source -> switch -> {primary link (capacity-limited, short
// queue) -> sink, backup link (fast) -> sink}.  A traffic surge ramps up
// past the primary link's capacity.  Two runs:
//
//   A. plain forwarding: the primary queue overflows and drops packets;
//   B. Stat4 monitoring + in-switch reroute: the rate check fires within
//      one 8 ms interval of the surge starting — while the queue still has
//      headroom — and the reroute stage steers the monitored aggregate onto
//      the backup path; (almost) nothing drops.
//
// Usage:  congestion_avoidance [seed]
#include <cinttypes>
#include <cstdio>
#include <cstdlib>

#include "netsim/netsim.hpp"
#include "p4sim/craft.hpp"
#include "stat4p4/stat4p4.hpp"

namespace {

using p4sim::ipv4;
using stat4::kMillisecond;
using stat4::kSecond;
using stat4::TimeNs;

struct RunResult {
  std::uint64_t delivered_primary = 0;
  std::uint64_t delivered_backup = 0;
  std::uint64_t queue_drops = 0;
  TimeNs reroute_time = -1;
};

RunResult run(bool with_stat4, std::uint64_t seed) {
  netsim::Rng rng(seed);
  netsim::Simulator sim;
  netsim::Network net(sim);

  stat4p4::MonitorApp app;
  app.install_forward(ipv4(10, 0, 0, 0), 8, /*port=*/1);  // primary path
  if (with_stat4) {
    app.install_rate_monitor(ipv4(10, 0, 0, 0), 8, /*dist=*/0,
                             8 * static_cast<std::uint64_t>(kMillisecond),
                             100, /*min_history=*/8);
    stat4p4::FreqBindingSpec match_all;
    match_all.dst_prefix = ipv4(10, 0, 0, 0);
    match_all.dst_prefix_len = 8;
    match_all.dist = 0;   // keyed to the rate monitor's alert latch
    app.install_reroute(match_all, /*alt_port=*/2);  // backup path
  }

  const auto sw = net.add_node(std::make_unique<netsim::P4SwitchNode>(app.sw()));
  const auto src = net.add_node(std::make_unique<netsim::HostNode>());
  const auto sink_primary = net.add_node(std::make_unique<netsim::HostNode>());
  const auto sink_backup = net.add_node(std::make_unique<netsim::HostNode>());

  net.link(src, 0, sw, 0, 10'000);
  // Primary: 100 Mb/s with an 8-packet queue.  At 1000-byte frames that is
  // 12.5k pps of capacity.
  net.link(sw, 1, sink_primary, 0, 10'000, 100'000'000, 8);
  // Backup: 1 Gb/s, plenty.
  net.link(sw, 2, sink_backup, 0, 10'000, 1'000'000'000, 64);

  RunResult result;
  net.node<netsim::P4SwitchNode>(sw).set_digest_sink(
      [&](const p4sim::Digest& d) {
        if (d.id == stat4p4::kDigestRateSpike && result.reroute_time < 0) {
          result.reroute_time = d.time;
        }
      });

  auto& source = net.node<netsim::HostNode>(src);
  netsim::PacketPump pump(sim, [&](p4sim::Packet pkt) {
    source.transmit(0, std::move(pkt));
  });
  std::vector<std::uint32_t> dests;
  for (unsigned h = 1; h <= 16; ++h) dests.push_back(ipv4(10, 0, 1, h));

  // Baseline: 8k pps of 1000-byte frames — 64% of primary capacity.
  pump.launch(0, 0, 125'000,
              netsim::uniform_udp_factory(rng, ipv4(1, 1, 1, 1), dests,
                                          /*pad_to=*/1000));
  // Surge from t=1s: +12k pps, pushing the aggregate to 160% of capacity.
  pump.launch(1 * kSecond, 0, 83'000,
              netsim::uniform_udp_factory(rng, ipv4(2, 2, 2, 2), dests,
                                          /*pad_to=*/1000));

  sim.run_until(3 * kSecond);
  pump.stop_all();
  sim.run();

  result.delivered_primary =
      net.node<netsim::HostNode>(sink_primary).packets_received();
  result.delivered_backup =
      net.node<netsim::HostNode>(sink_backup).packets_received();
  result.queue_drops = net.packets_dropped_queue();
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  const std::uint64_t seed =
      argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 5;
  std::printf("Congestion avoidance (Section 5), seed %" PRIu64 "\n", seed);
  std::puts("primary link: 100 Mb/s, 8-packet queue; surge to 160% of "
            "capacity at t=1s\n");

  const auto plain = run(false, seed);
  const auto stat4 = run(true, seed);

  std::printf("%-28s | %12s | %12s\n", "", "plain", "with Stat4");
  std::puts("-----------------------------+--------------+-------------");
  std::printf("%-28s | %12" PRIu64 " | %12" PRIu64 "\n",
              "delivered via primary", plain.delivered_primary,
              stat4.delivered_primary);
  std::printf("%-28s | %12" PRIu64 " | %12" PRIu64 "\n",
              "delivered via backup", plain.delivered_backup,
              stat4.delivered_backup);
  std::printf("%-28s | %12" PRIu64 " | %12" PRIu64 "\n",
              "packets dropped (queue)", plain.queue_drops,
              stat4.queue_drops);
  if (stat4.reroute_time >= 0) {
    std::printf("\nreroute engaged %.1f ms after surge onset — within one "
                "monitoring interval,\nentirely in the data plane.\n",
                static_cast<double>(stat4.reroute_time - kSecond) / 1e6);
  }

  const bool ok = stat4.queue_drops * 10 < plain.queue_drops &&
                  stat4.delivered_backup > 0 && plain.queue_drops > 0;
  std::printf("\n%s\n",
              ok ? "CONGESTION AVOIDED: early in-switch detection rerouted "
                   "the surge before the queue overflowed."
                 : "UNEXPECTED OUTCOME");
  return ok ? 0 : 1;
}
